//===- bench/bench_barriers.cpp - Experiment E7: write-barrier cost -------===//
///
/// The store-barrier cost profile of Figure 6: a heap store with both
/// barriers vs deletion-only vs insertion-only vs none, while the collector
/// is idle (barriers compiled in but dormant) and while it is active. The
/// claim from §2.3: the barriers are nearly free when objects are already
/// marked or the collector is idle, because the fast path is a plain load
/// and branch.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"

#include <benchmark/benchmark.h>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

struct Fixture {
  explicit Fixture(bool Deletion, bool Insertion) {
    RtConfig Cfg;
    Cfg.HeapObjects = 1024;
    Cfg.NumFields = 2;
    Cfg.DeletionBarrier = Deletion;
    Cfg.InsertionBarrier = Insertion;
    Cfg.Validate = false; // measure the barriers, not the checker
    Rt = std::make_unique<GcRuntime>(Cfg);
    M = Rt->registerMutator();
    Rt->HandshakeServicer = [this] { M->safepoint(); };
    A = static_cast<size_t>(M->alloc());
    B = static_cast<size_t>(M->alloc());
  }
  ~Fixture() {
    while (M->numRoots())
      M->discard(0);
    Rt->deregisterMutator(M);
  }

  /// Put the runtime in the Mark phase with everything marked (steady
  /// state: barriers active, fast paths hit).
  void enterMarkPhaseMarked() {
    // Mid-cycle state is awkward to freeze; emulate the steady state by
    // setting the control variables directly and marking the objects —
    // this is exactly what the mutator view would be after H4.
    bool Fm = Rt->FM.load() == 0 ? true : false;
    Rt->FM.store(Fm ? 1 : 0);
    Rt->FA.store(Fm ? 1 : 0);
    Rt->Phase.store(static_cast<uint32_t>(RtPhase::Mark));
    Rt->heap().mark(M->rootRef(A), Fm, true);
    Rt->heap().mark(M->rootRef(B), Fm, true);
    M->safepoint(); // no-op; view refresh happens below
    RefreshView();
  }

  void RefreshView() {
    // Force a view refresh through a synthetic noop handshake.
    uint32_t Seq = Rt->HsSeq.fetch_add(1) + 1;
    Rt->channelOf(M->index())
        .Request.store(HsChannel::encode(Seq, RtHsType::Noop));
    M->safepoint();
  }

  std::unique_ptr<GcRuntime> Rt;
  MutatorContext *M = nullptr;
  size_t A = 0, B = 0;
};

void storeLoop(benchmark::State &State, Fixture &F, const char *Name) {
  uint32_t Fld = 0;
  for (auto _ : State) {
    F.M->store(F.B, F.A, Fld);
    Fld ^= 1;
  }
  State.SetItemsProcessed(State.iterations());
  bench::Reporter(State, std::string("store/") + Name)
      .counter("barrier_cas", static_cast<double>(F.M->stats().BarrierCas));
}

} // namespace

static void BM_StoreBothBarriersIdle(benchmark::State &State) {
  Fixture F(true, true);
  storeLoop(State, F, "both_idle"); // collector idle: barriers dormant
}
BENCHMARK(BM_StoreBothBarriersIdle);

static void BM_StoreBothBarriersActiveMarked(benchmark::State &State) {
  Fixture F(true, true);
  F.enterMarkPhaseMarked(); // active, but targets already marked: fast path
  storeLoop(State, F, "both_active_marked");
}
BENCHMARK(BM_StoreBothBarriersActiveMarked);

static void BM_StoreDeletionOnlyActive(benchmark::State &State) {
  Fixture F(true, false);
  F.enterMarkPhaseMarked();
  storeLoop(State, F, "deletion_only");
}
BENCHMARK(BM_StoreDeletionOnlyActive);

static void BM_StoreInsertionOnlyActive(benchmark::State &State) {
  Fixture F(false, true);
  F.enterMarkPhaseMarked();
  storeLoop(State, F, "insertion_only");
}
BENCHMARK(BM_StoreInsertionOnlyActive);

static void BM_StoreNoBarriers(benchmark::State &State) {
  Fixture F(false, false);
  F.enterMarkPhaseMarked();
  storeLoop(State, F, "none");
}
BENCHMARK(BM_StoreNoBarriers);

static void BM_LoadNeverHasBarrier(benchmark::State &State) {
  // §2.1: no read barrier — loads cost a field read plus root bookkeeping.
  Fixture F(true, true);
  F.enterMarkPhaseMarked();
  F.M->store(F.B, F.A, 0);
  for (auto _ : State) {
    int Idx = F.M->load(F.A, 0);
    if (Idx >= 0)
      F.M->discard(static_cast<size_t>(Idx));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LoadNeverHasBarrier);

static void BM_AllocThroughput(benchmark::State &State) {
  Fixture F(true, true);
  for (auto _ : State) {
    int Idx = F.M->alloc();
    if (Idx >= 0) {
      F.M->discard(static_cast<size_t>(Idx));
    } else {
      // Heap full of garbage: reclaim it.
      State.PauseTiming();
      F.Rt->collectOnce();
      F.Rt->collectOnce();
      State.ResumeTiming();
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocThroughput);
