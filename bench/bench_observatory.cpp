//===- bench/bench_observatory.cpp - Observatory cost on real cycles ------===//
///
/// \file
/// What live invariant checking costs: cycle time with the observatory off
/// vs on (every handshake boundary parks the world, copies the heap into
/// an immutable snapshot and evaluates the §3.2 suite), and the snapshot
/// window itself as a function of heap occupancy. The export carries the
/// observatory's own counters (invariant.checked / snapshots /
/// snapshot_ns_total / ...) and the trace ring accounting
/// (trace.recorded_total / dropped_total) so BENCH_observatory.json is a
/// self-describing record of a fully-instrumented run — run_benches.sh
/// warns if trace.dropped_total ever goes non-zero.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"
#include "runtime/InvariantObservatory.h"

#include <benchmark/benchmark.h>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

/// Rooted chains totalling \p LiveObjects objects (the snapshot capture
/// copies headers and fields for the whole slab; the §3.2 checks walk the
/// live graph).
void populate(MutatorContext *M, unsigned LiveObjects) {
  unsigned Spine = 0;
  for (unsigned I = 0; I < LiveObjects; ++I) {
    int Idx = M->alloc();
    if (Idx < 0)
      break;
    if (++Spine % 16 != 0 && M->numRoots() >= 2) {
      M->store(M->numRoots() - 2, static_cast<size_t>(Idx), 0);
      M->discard(M->numRoots() - 2);
    }
  }
}

} // namespace

/// Cycle cost with the observatory off (0) and on (1), same live set. The
/// on/off ratio is the headline overhead number for docs/EXPERIMENTS.md.
static void BM_CycleWithObservatory(benchmark::State &State) {
  const bool On = State.range(0) != 0;
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 13;
  Cfg.NumFields = 2;
  Cfg.Observatory = On;
  Cfg.Trace = On; // snapshot begin/end slices land in the ring
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  populate(M, 4096);

  for (auto _ : State) {
    CycleStats CS = Rt.collectOnce();
    benchmark::DoNotOptimize(CS);
  }

  bench::Reporter R(State,
                    std::string("cycle_with_observatory/") + (On ? "1" : "0"));
  const uint64_t Cycles = Rt.stats().Cycles.load();
  R.counter("cycles", static_cast<double>(Cycles));
  if (On) {
    InvariantObservatory *Obs = Rt.observatory();
    const uint64_t Snaps = Obs->snapshotCount();
    R.counter("snapshots_per_cycle",
              Cycles ? static_cast<double>(Snaps) / Cycles : 0.0);
    R.counter("snapshot_us_avg",
              Snaps ? static_cast<double>(Obs->snapshotNsTotal()) / Snaps /
                          1000.0
                    : 0.0);
    R.counter("snapshot_us_max",
              static_cast<double>(Obs->maxSnapshotNs()) / 1000.0);
    R.counter("violations", static_cast<double>(Obs->violationCount()));
    // The observatory's own counters and the ring accounting go into the
    // export verbatim (invariant.*, trace.*).
    Obs->exportMetrics(bench::registry());
    observe::exportTraceMetrics(*Rt.traceSink(), bench::registry());
  }
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CycleWithObservatory)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// The snapshot window alone vs heap occupancy: an audit parks, captures,
/// lifts and checks — the same path every boundary snapshot takes.
static void BM_SnapshotWindowVsLiveSet(benchmark::State &State) {
  const unsigned Live = static_cast<unsigned>(State.range(0));
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 15;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  populate(M, Live);

  for (auto _ : State) {
    GcRuntime::HeapAudit A = Rt.auditHeap();
    benchmark::DoNotOptimize(A);
  }
  bench::Reporter R(State,
                    "snapshot_window_vs_live_set/" + std::to_string(Live));
  R.counter("live", static_cast<double>(Rt.heap().allocatedCount()));
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SnapshotWindowVsLiveSet)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);
