//===- bench/bench_handshake.cpp - Experiments E4/E5: handshake costs -----===//
///
/// The soft-handshake machinery of Figures 3/4 on real threads: full
/// no-op round latency as the mutator count grows, the mutator-side handler
/// cost, and the latency distribution of ragged completion (the collector
/// waits for the slowest mutator, but no mutator ever waits for another).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"
#include "runtime/RtCollector.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

/// Real mutator threads that do nothing but poll safepoints.
struct PollingMutators {
  explicit PollingMutators(GcRuntime &Rt, unsigned N) : Rt(Rt) {
    for (unsigned I = 0; I < N; ++I)
      Ms.push_back(Rt.registerMutator());
    for (unsigned I = 0; I < N; ++I)
      Threads.emplace_back([this, I] {
        while (!Done.load(std::memory_order_relaxed)) {
          Ms[I]->safepoint();
          std::this_thread::yield();
        }
      });
  }
  ~PollingMutators() {
    Done.store(true);
    for (auto &T : Threads)
      T.join();
    for (auto *M : Ms)
      Rt.deregisterMutator(M);
  }
  GcRuntime &Rt;
  std::vector<MutatorContext *> Ms;
  std::vector<std::thread> Threads;
  std::atomic<bool> Done{false};
};

} // namespace

/// One complete no-op handshake round (the unit the collector performs six
/// or more times per cycle) vs the number of mutators.
static void BM_NoopHandshakeRound(benchmark::State &State) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  PollingMutators Muts(Rt, static_cast<unsigned>(State.range(0)));
  RtCollector C(Rt);
  for (auto _ : State)
    Rt.collectOnce();
  bench::Reporter(State,
                  "noop_handshake_round/" + std::to_string(State.range(0)))
      .counter("mutators", static_cast<double>(State.range(0)));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_NoopHandshakeRound)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// The mutator-side handler alone: a synthetic no-op request serviced
/// inline (no collector thread, no waiting).
static void BM_MutatorHandshakeHandler(benchmark::State &State) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  for (auto _ : State) {
    uint32_t Seq = Rt.HsSeq.fetch_add(1) + 1;
    Rt.channelOf(M->index())
        .Request.store(HsChannel::encode(Seq, RtHsType::Noop),
                       std::memory_order_release);
    M->safepoint();
  }
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MutatorHandshakeHandler);

/// Safepoint poll with no pending request: the cost mutators pay at every
/// backward branch / call return.
static void BM_SafepointNoRequest(benchmark::State &State) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  for (auto _ : State)
    M->safepoint();
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SafepointNoRequest);

/// Get-roots round cost as the root-set size grows: the mutator marks all
/// its roots inside the handshake handler.
static void BM_GetRootsHandler(benchmark::State &State) {
  const unsigned NumRoots = static_cast<unsigned>(State.range(0));
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 14;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  for (unsigned I = 0; I < NumRoots; ++I)
    if (M->alloc() < 0)
      State.SkipWithError("heap exhausted");
  bool Fm = false;
  for (auto _ : State) {
    // Flip the sense by hand so every root is unmarked again, then run the
    // get-roots handler.
    Fm = !Fm;
    Rt.FM.store(Fm ? 1 : 0);
    Rt.FA.store(Fm ? 1 : 0);
    Rt.Phase.store(static_cast<uint32_t>(RtPhase::Mark));
    uint32_t Seq = Rt.HsSeq.fetch_add(1) + 1;
    Rt.channelOf(M->index())
        .Request.store(HsChannel::encode(Seq, RtHsType::GetRoots),
                       std::memory_order_release);
    M->safepoint();
    benchmark::DoNotOptimize(Rt.heap().takeShared());
  }
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  bench::Reporter(State, "get_roots_handler/" + std::to_string(NumRoots))
      .counter("roots", static_cast<double>(NumRoots));
  State.SetItemsProcessed(State.iterations() * NumRoots);
}
BENCHMARK(BM_GetRootsHandler)->Arg(16)->Arg(256)->Arg(4096);
