//===- bench/bench_model_checker.cpp - Experiment E1: the headline check --===//
///
/// The verification-side harness: exhaustive-search throughput (states and
/// transitions per second with the full §3.2 invariant suite evaluated at
/// every state), state-space sizes of the finite instances, and
/// time-to-counterexample for the deletion-barrier ablation. The shape to
/// reproduce: the verified configuration exhausts with zero violations;
/// the ablated configuration yields a counterexample quickly.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "explore/Export.h"
#include "explore/ParallelExplorer.h"

#include <benchmark/benchmark.h>

using namespace tsogc;

namespace {

ModelConfig tinyVerified() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  return C;
}

/// The scale-out instance: three mutators (vs the tiny instance's one) —
/// strictly larger along the paper's "any number of mutators" axis, ~129×
/// the tiny instance's state count, still exhaustible in seconds. The
/// scale-out benchmark verifies it in every explorer mode and exports the
/// full-vs-reduced counts.
ModelConfig scaleOut() {
  ModelConfig C = tinyVerified();
  C.NumMutators = 3;
  return C;
}

} // namespace

/// Exhaust the handshake-only instance with the full suite: the smallest
/// end-to-end headline check.
static void BM_ExhaustTinyInstance(benchmark::State &State) {
  GcModel M(tinyVerified());
  InvariantSuite Inv(M);
  ExploreResult Last;
  for (auto _ : State) {
    Last = exploreExhaustive(M, Inv);
    if (!Last.exhaustedCleanly())
      State.SkipWithError("tiny instance must exhaust cleanly");
  }
  bench::Reporter(State, "exhaust_tiny_instance")
      .counter("states", static_cast<double>(Last.StatesVisited));
  // Full exploration statistics land in the export alongside the run's
  // gauges (explore.states, explore.transitions, explore.max_depth, …).
  exportMetrics(Last, 0.0, bench::registry(),
                "exhaust_tiny_instance.explore.");
  State.SetItemsProcessed(State.iterations() * Last.StatesVisited);
}
BENCHMARK(BM_ExhaustTinyInstance)->Unit(benchmark::kMillisecond);

/// Raw exploration throughput on a larger instance (bounded state count):
/// states/second including invariant evaluation.
static void BM_ExplorationThroughput(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 50'000;
  for (auto _ : State) {
    ExploreResult Res = exploreExhaustive(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(Res);
  }
  State.SetItemsProcessed(State.iterations() * Opts.MaxStates);
}
BENCHMARK(BM_ExplorationThroughput)->Unit(benchmark::kMillisecond);

/// Parallel exploration throughput on the same medium instance and state
/// budget as BM_ExplorationThroughput: the worker-count sweep (1/2/4/8).
/// states/sec is items_per_second; compare against the sequential
/// BM_ExplorationThroughput to read off the speedup. Wall-clock time is
/// what matters for a thread sweep, hence UseRealTime.
static void BM_ParallelExplorationThroughput(benchmark::State &State) {
  // Hoisted: the benchmark registers once per worker count, so without the
  // statics every sweep point would rebuild the model (config expansion,
  // program normalization) and the suite — setup cost that has nothing to
  // do with the thread scaling being measured.
  static GcModel M([] {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 3;
    C.NumFields = 1;
    C.BufferBound = 2;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    return C;
  }());
  static InvariantSuite Inv(M);
  ParallelExploreOptions Opts;
  Opts.MaxStates = 50'000;
  Opts.Workers = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    ExploreResult Res = exploreParallel(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(Res);
  }
  bench::Reporter(State,
                  "parallel_exploration/" + std::to_string(Opts.Workers))
      .counter("workers", static_cast<double>(Opts.Workers));
  State.SetItemsProcessed(State.iterations() * Opts.MaxStates);
}
BENCHMARK(BM_ParallelExplorationThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Successor enumeration + canonical encoding: the checker's inner loop.
static void BM_SuccessorsAndEncode(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  GcSystemState S = M.initial();
  std::vector<GcSuccessor> Succs;
  for (auto _ : State) {
    Succs.clear();
    M.system().successors(S, Succs);
    size_t Bytes = 0;
    for (const auto &Succ : Succs)
      Bytes += M.encode(Succ.State).size();
    benchmark::DoNotOptimize(Bytes);
  }
  bench::Reporter(State, "successors_and_encode")
      .counter("succs", static_cast<double>(Succs.size()));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SuccessorsAndEncode);

/// Invariant-suite evaluation cost on a single state.
static void BM_InvariantSuiteEval(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  GcSystemState S = M.initial();
  for (auto _ : State)
    benchmark::DoNotOptimize(Inv.check(S));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InvariantSuiteEval);

/// Time-to-counterexample for the deletion-barrier ablation (DFS, headline
/// property only): the E2 ablation must fail fast.
static void BM_DeletionAblationCounterexample(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  C.DeletionBarrier = false;
  C.MutatorAlloc = false;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 5'000'000;
  uint64_t StatesToBug = 0;
  for (auto _ : State) {
    ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
    if (!Res.Bug)
      State.SkipWithError("ablation must produce a counterexample");
    StatesToBug = Res.StatesVisited;
  }
  bench::Reporter(State, "deletion_ablation_counterexample")
      .counter("states_to_bug", static_cast<double>(StatesToBug));
}
BENCHMARK(BM_DeletionAblationCounterexample)->Unit(benchmark::kMillisecond);

/// State-space scale-out: exhaustively verify the strictly-larger
/// three-mutator instance under every explorer mode — full, ample-set
/// reduction, symmetry canonicalization, 64-bit fingerprints, and the
/// swarm — exporting states / transitions / pruned transitions / visited
/// bytes per mode plus the headline reduction ratios. One iteration: the
/// deliverable is the exported counts, not a timing distribution.
static void BM_ScaleOutAllModes(benchmark::State &State) {
  GcModel M(scaleOut());
  InvariantSuite Inv(M);
  ExploreResult Full, Ample, Sym, Fp;
  for (auto _ : State) {
    ExploreOptions O;
    O.TrackPaths = false;
    Full = exploreExhaustive(M, Inv, O);
    O.AmpleReduction = true;
    Ample = exploreExhaustive(M, Inv, O);
    O.AmpleReduction = false;
    O.SymmetryReduction = true;
    Sym = exploreExhaustive(M, Inv, O);
    O.SymmetryReduction = false;
    O.Fingerprint64 = true;
    Fp = exploreExhaustive(M, Inv, O);
    for (const ExploreResult *R : {&Full, &Ample, &Sym, &Fp})
      if (R->Bug || R->Truncated)
        State.SkipWithError("scale-out instance must exhaust cleanly");
  }
  SwarmOptions SO;
  SO.Walkers = 4;
  SO.Seed = 1;
  SO.BloomBits = 1ull << 26;
  SO.MaxStates = 10'000'000;
  SO.TrackPaths = false;
  ExploreResult Swarm = exploreSwarm(M, Inv, SO);

  auto &Reg = bench::registry();
  exportMetrics(Full, 0.0, Reg, "scale_out.full.explore.");
  exportMetrics(Ample, 0.0, Reg, "scale_out.ample.explore.");
  exportMetrics(Sym, 0.0, Reg, "scale_out.symmetry.explore.");
  exportMetrics(Fp, 0.0, Reg, "scale_out.fp64.explore.");
  exportMetrics(Swarm, 0.0, Reg, "scale_out.swarm.explore.");
  // Headline ratios: transitions the ample set pruned, symmetry's state
  // fold, and the fingerprint memory cut — all relative to the full run.
  Reg.gauge("scale_out.ample.reduction_ratio",
            static_cast<double>(Ample.TransitionsPruned) /
                static_cast<double>(Ample.TransitionsExplored +
                                    Ample.TransitionsPruned));
  Reg.gauge("scale_out.symmetry.fold_ratio",
            static_cast<double>(Full.StatesVisited) /
                static_cast<double>(Sym.StatesVisited));
  Reg.gauge("scale_out.fp64.bytes_ratio",
            static_cast<double>(Full.VisitedBytes) /
                static_cast<double>(Fp.VisitedBytes));
  bench::Reporter Rep(State, "scale_out");
  Rep.counter("states_full", static_cast<double>(Full.StatesVisited));
  Rep.counter("states_symmetry", static_cast<double>(Sym.StatesVisited));
  Rep.counter("pruned_ample", static_cast<double>(Ample.TransitionsPruned));
  State.SetItemsProcessed(State.iterations() * Full.StatesVisited);
}
BENCHMARK(BM_ScaleOutAllModes)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Random-walk throughput with full invariant checking (the probabilistic
/// side of E1).
static void BM_RandomWalkThroughput(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  WalkOptions Opts;
  Opts.Steps = 5'000;
  uint64_t Seed = 1;
  for (auto _ : State) {
    Opts.Seed = Seed++;
    WalkResult Res = exploreRandomWalk(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
  }
  State.SetItemsProcessed(State.iterations() * Opts.Steps);
}
BENCHMARK(BM_RandomWalkThroughput)->Unit(benchmark::kMillisecond);
