//===- bench/bench_model_checker.cpp - Experiment E1: the headline check --===//
///
/// The verification-side harness: exhaustive-search throughput (states and
/// transitions per second with the full §3.2 invariant suite evaluated at
/// every state), state-space sizes of the finite instances, and
/// time-to-counterexample for the deletion-barrier ablation. The shape to
/// reproduce: the verified configuration exhausts with zero violations;
/// the ablated configuration yields a counterexample quickly.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "explore/Export.h"
#include "explore/ParallelExplorer.h"

#include <benchmark/benchmark.h>

using namespace tsogc;

namespace {

ModelConfig tinyVerified() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  return C;
}

} // namespace

/// Exhaust the handshake-only instance with the full suite: the smallest
/// end-to-end headline check.
static void BM_ExhaustTinyInstance(benchmark::State &State) {
  GcModel M(tinyVerified());
  InvariantSuite Inv(M);
  ExploreResult Last;
  for (auto _ : State) {
    Last = exploreExhaustive(M, Inv);
    if (!Last.exhaustedCleanly())
      State.SkipWithError("tiny instance must exhaust cleanly");
  }
  bench::Reporter(State, "exhaust_tiny_instance")
      .counter("states", static_cast<double>(Last.StatesVisited));
  // Full exploration statistics land in the export alongside the run's
  // gauges (explore.states, explore.transitions, explore.max_depth, …).
  exportMetrics(Last, 0.0, bench::registry(),
                "exhaust_tiny_instance.explore.");
  State.SetItemsProcessed(State.iterations() * Last.StatesVisited);
}
BENCHMARK(BM_ExhaustTinyInstance)->Unit(benchmark::kMillisecond);

/// Raw exploration throughput on a larger instance (bounded state count):
/// states/second including invariant evaluation.
static void BM_ExplorationThroughput(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 50'000;
  for (auto _ : State) {
    ExploreResult Res = exploreExhaustive(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(Res);
  }
  State.SetItemsProcessed(State.iterations() * Opts.MaxStates);
}
BENCHMARK(BM_ExplorationThroughput)->Unit(benchmark::kMillisecond);

/// Parallel exploration throughput on the same medium instance and state
/// budget as BM_ExplorationThroughput: the worker-count sweep (1/2/4/8).
/// states/sec is items_per_second; compare against the sequential
/// BM_ExplorationThroughput to read off the speedup. Wall-clock time is
/// what matters for a thread sweep, hence UseRealTime.
static void BM_ParallelExplorationThroughput(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  ParallelExploreOptions Opts;
  Opts.MaxStates = 50'000;
  Opts.Workers = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    ExploreResult Res = exploreParallel(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
    benchmark::DoNotOptimize(Res);
  }
  bench::Reporter(State,
                  "parallel_exploration/" + std::to_string(Opts.Workers))
      .counter("workers", static_cast<double>(Opts.Workers));
  State.SetItemsProcessed(State.iterations() * Opts.MaxStates);
}
BENCHMARK(BM_ParallelExplorationThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Successor enumeration + canonical encoding: the checker's inner loop.
static void BM_SuccessorsAndEncode(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  GcSystemState S = M.initial();
  std::vector<GcSuccessor> Succs;
  for (auto _ : State) {
    Succs.clear();
    M.system().successors(S, Succs);
    size_t Bytes = 0;
    for (const auto &Succ : Succs)
      Bytes += M.encode(Succ.State).size();
    benchmark::DoNotOptimize(Bytes);
  }
  bench::Reporter(State, "successors_and_encode")
      .counter("succs", static_cast<double>(Succs.size()));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SuccessorsAndEncode);

/// Invariant-suite evaluation cost on a single state.
static void BM_InvariantSuiteEval(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  GcSystemState S = M.initial();
  for (auto _ : State)
    benchmark::DoNotOptimize(Inv.check(S));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InvariantSuiteEval);

/// Time-to-counterexample for the deletion-barrier ablation (DFS, headline
/// property only): the E2 ablation must fail fast.
static void BM_DeletionAblationCounterexample(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  C.DeletionBarrier = false;
  C.MutatorAlloc = false;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 5'000'000;
  uint64_t StatesToBug = 0;
  for (auto _ : State) {
    ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
    if (!Res.Bug)
      State.SkipWithError("ablation must produce a counterexample");
    StatesToBug = Res.StatesVisited;
  }
  bench::Reporter(State, "deletion_ablation_counterexample")
      .counter("states_to_bug", static_cast<double>(StatesToBug));
}
BENCHMARK(BM_DeletionAblationCounterexample)->Unit(benchmark::kMillisecond);

/// Random-walk throughput with full invariant checking (the probabilistic
/// side of E1).
static void BM_RandomWalkThroughput(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(C);
  InvariantSuite Inv(M);
  WalkOptions Opts;
  Opts.Steps = 5'000;
  uint64_t Seed = 1;
  for (auto _ : State) {
    Opts.Seed = Seed++;
    WalkResult Res = exploreRandomWalk(M, Inv, Opts);
    if (Res.Bug)
      State.SkipWithError("unexpected violation");
  }
  State.SetItemsProcessed(State.iterations() * Opts.Steps);
}
BENCHMARK(BM_RandomWalkThroughput)->Unit(benchmark::kMillisecond);
