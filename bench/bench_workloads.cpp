//===- bench/bench_workloads.cpp - Application throughput under GC --------===//
///
/// End-to-end mutator throughput for the three workload shapes, with the
/// collector idle, running on-the-fly, and running stop-the-world — the
/// application-level cost side of E11, complementing the pause-time side.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"
#include "workload/Workloads.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

enum class GcMode { Off, OnTheFly, StopTheWorld };

void workloadBench(benchmark::State &State, const char *Kind, GcMode Mode) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 15;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  auto W = wl::makeWorkload(Kind, *M, 99);

  if (Mode != GcMode::Off)
    Rt.startCollector(Mode == GcMode::StopTheWorld);
  else
    Rt.HandshakeServicer = [M] { M->safepoint(); };

  uint64_t Failures = 0;
  for (auto _ : State) {
    if (!W->step()) {
      ++Failures;
      if (Mode == GcMode::Off) {
        // Nobody reclaims; collect inline to keep the workload honest.
        State.PauseTiming();
        Rt.collectOnce();
        Rt.collectOnce();
        State.ResumeTiming();
      } else {
        // Allocation stall: yield so the (single-core) collector thread
        // can reclaim — the time spent is genuine GC back-pressure and
        // stays in the measurement.
        std::this_thread::yield();
      }
    }
  }
  W->teardown();
  if (Mode != GcMode::Off) {
    std::atomic<bool> Done{false};
    std::thread Service([&] {
      while (!Done.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
    Rt.stopCollector();
    Done.store(true);
    Service.join();
  }
  bench::Reporter R(State,
                    std::string("workload/") + Kind + "/" +
                        (Mode == GcMode::Off
                             ? "off"
                             : Mode == GcMode::OnTheFly ? "otf" : "stw"));
  R.counter("alloc_failures", static_cast<double>(Failures));
  R.counter("cycles", static_cast<double>(Rt.stats().Cycles.load()));
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}

} // namespace

#define TSOGC_WORKLOAD_BENCH(KindName, Kind)                                  \
  static void BM_##KindName##_GcOff(benchmark::State &State) {                \
    workloadBench(State, Kind, GcMode::Off);                                  \
  }                                                                           \
  BENCHMARK(BM_##KindName##_GcOff);                                           \
  static void BM_##KindName##_OnTheFly(benchmark::State &State) {             \
    workloadBench(State, Kind, GcMode::OnTheFly);                             \
  }                                                                           \
  BENCHMARK(BM_##KindName##_OnTheFly);                                        \
  static void BM_##KindName##_StopTheWorld(benchmark::State &State) {         \
    workloadBench(State, Kind, GcMode::StopTheWorld);                         \
  }                                                                           \
  BENCHMARK(BM_##KindName##_StopTheWorld);

TSOGC_WORKLOAD_BENCH(ListChurn, "list")
TSOGC_WORKLOAD_BENCH(TreeBuilder, "tree")
TSOGC_WORKLOAD_BENCH(GraphMutator, "graph")
