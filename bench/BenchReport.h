//===- bench/BenchReport.h - Shared bench metrics export -------------------===//
///
/// \file
/// Every bench binary reports through one channel: a Reporter mirrors each
/// per-run counter into both the google-benchmark console table and a
/// process-wide observe::MetricsRegistry, which an atexit hook serializes
/// as schema-versioned JSON (observe::BenchSchema) to $TSOGC_BENCH_JSON.
/// run_benches.sh sets the env var per binary and validates the result;
/// without the env var the hook is inert, so ad-hoc runs behave as before.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_BENCH_BENCHREPORT_H
#define TSOGC_BENCH_BENCHREPORT_H

#include "observe/Export.h"
#include "observe/Metrics.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tsogc::bench {

/// The binary-wide registry flushed at exit.
inline observe::MetricsRegistry &registry() {
  static observe::MetricsRegistry Reg;
  return Reg;
}

/// Idempotently install the exit hook. registry() is touched first so its
/// destructor is sequenced after the hook runs.
inline bool installExporter() {
  static const bool Installed = [] {
    registry();
    std::atexit([] {
      const char *Path = std::getenv("TSOGC_BENCH_JSON");
      if (!Path || !*Path)
        return;
      const char *Name = std::getenv("TSOGC_BENCH_NAME");
      std::string Json = observe::metricsToJson(
          registry(), Name && *Name ? Name : "bench");
      if (!observe::writeTextFile(Path, Json))
        std::fprintf(stderr, "BenchReport: cannot write %s\n", Path);
    });
    return true;
  }();
  return Installed;
}

/// Per-benchmark-run reporting handle. \p Run names this run in the export
/// (include the range argument when the benchmark is parameterized, e.g.
/// "cycle_vs_live_set/4096"); the console counter keeps its short name.
class Reporter {
public:
  Reporter(benchmark::State &State, std::string Run)
      : State(State), Run(std::move(Run)) {
    installExporter();
  }

  void counter(const std::string &Name, double V) {
    State.counters[Name] = V;
    registry().gauge(Run + "." + Name, V);
  }

private:
  benchmark::State &State;
  std::string Run;
};

} // namespace tsogc::bench

#endif // TSOGC_BENCH_BENCHREPORT_H
