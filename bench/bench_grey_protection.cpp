//===- bench/bench_grey_protection.cpp - Experiment E2: Figure 1 ----------===//
///
/// Grey protection and the tricolor invariants as computations: the cost of
/// deciding grey-protection over white chains of growing length (the G →w*
/// W search of Figure 1), strong/weak tricolor evaluation over growing
/// heaps, and the end-to-end weak-tricolor counterexample hunt when the
/// deletion barrier is ablated.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "explore/Explorer.h"
#include "heap/Color.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

/// A heap with one grey anchor, a white chain of length N hanging off it,
/// and a black object pointing at the chain's tail (Figure 1's shape).
Heap figure1Heap(unsigned ChainLen) {
  Heap H(ChainLen + 3, 1);
  // 0 = grey anchor (marked + on work-list), 1..N = white chain,
  // N+1 = black pointing at the tail.
  H.allocAt(R(0), true);
  for (unsigned I = 1; I <= ChainLen; ++I) {
    H.allocAt(R(I), false);
    H.setField(R(I - 1), 0, R(I));
  }
  H.allocAt(R(ChainLen + 1), true);
  H.setField(R(ChainLen + 1), 0, R(ChainLen));
  return H;
}

} // namespace

/// Deciding grey protection for the chain tail: linear in the chain.
static void BM_GreyProtectionChainSearch(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  Heap H = figure1Heap(N);
  ColorView CV(H, true, {R(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(CV.isGreyProtected(R(N)));
  bench::Reporter(State, "grey_protection_chain/" + std::to_string(N))
      .counter("chain", static_cast<double>(N));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GreyProtectionChainSearch)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Weak-tricolor evaluation over the Figure 1 heap: every black object's
/// white targets must be protected.
static void BM_WeakTricolorEval(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  Heap H = figure1Heap(N);
  ColorView CV(H, true, {R(0)});
  for (auto _ : State) {
    bool Ok = true;
    for (Ref B : H.allocatedRefs()) {
      if (!CV.isBlack(B))
        continue;
      for (Ref F : H.object(B).Fields)
        if (!F.isNull() && CV.isWhite(F) && !CV.isGrey(F))
          Ok &= CV.isGreyProtected(F);
    }
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WeakTricolorEval)->Arg(16)->Arg(256)->Arg(4096);

/// Strong-tricolor evaluation scaling with heap size (dense random heap).
static void BM_StrongTricolorEval(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  Heap H(N, 2);
  for (unsigned I = 0; I < N; ++I)
    H.allocAt(R(I), I % 2 == 0);
  for (unsigned I = 0; I + 1 < N; ++I)
    H.setField(R(I), 0, R(I + 1));
  ColorView CV(H, true, {});
  for (auto _ : State) {
    bool Ok = true;
    for (Ref B : H.allocatedRefs()) {
      if (!CV.isBlack(B))
        continue;
      for (Ref F : H.object(B).Fields)
        Ok &= F.isNull() || !CV.isWhite(F) || CV.isGrey(F);
    }
    benchmark::DoNotOptimize(Ok);
  }
  bench::Reporter(State, "strong_tricolor_eval/" + std::to_string(N))
      .counter("objects", static_cast<double>(N));
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_StrongTricolorEval)->Arg(256)->Arg(4096);

/// Reachability closure cost (the headline property's workhorse).
static void BM_ReachabilityClosure(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  Heap H(N, 2);
  SplitMix64 Rng(42);
  for (unsigned I = 0; I < N; ++I)
    H.allocAt(R(I), false);
  for (unsigned I = 0; I < N; ++I) {
    H.setField(R(I), 0, R(static_cast<uint16_t>(Rng.next() % N)));
    H.setField(R(I), 1, R(static_cast<uint16_t>(Rng.next() % N)));
  }
  std::vector<Ref> Roots{R(0)};
  for (auto _ : State)
    benchmark::DoNotOptimize(H.reachableFrom(Roots));
  bench::Reporter(State, "reachability_closure/" + std::to_string(N))
      .counter("objects", static_cast<double>(N));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ReachabilityClosure)->Arg(64)->Arg(1024)->Arg(16384);

/// End-to-end E2: with the deletion barrier ablated, how quickly does the
/// guided weak-tricolor/headline hunt produce the Figure 1 violation.
static void BM_Figure1ViolationHunt(benchmark::State &State) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  C.DeletionBarrier = false;
  C.MutatorAlloc = false;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 5'000'000;
  uint64_t PathLen = 0;
  for (auto _ : State) {
    ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
    if (!Res.Bug)
      State.SkipWithError("expected a Figure 1 violation");
    PathLen = Res.Path.size();
  }
  bench::Reporter(State, "figure1_violation_hunt")
      .counter("trace_len", static_cast<double>(PathLen));
}
BENCHMARK(BM_Figure1ViolationHunt)->Unit(benchmark::kMillisecond);
