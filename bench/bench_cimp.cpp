//===- bench/bench_cimp.cpp - Experiment E8: CIMP semantics cost ----------===//
///
/// Throughput of the Figure 7/8 machinery: control-flow normalization,
/// successor enumeration for local steps and rendezvous, and scaling of
/// enumeration cost with process count (flat parallel composition).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "cimp/System.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace tsogc;
using namespace tsogc::cimp;

namespace {

struct IntDomain {
  using LocalState = int;
  using Request = int;
  using Response = int;
};
using IProg = Program<IntDomain>;

/// A counter process: loop { if even → +1 ; else choice(+1, +3) }.
void buildCounter(IProg &P) {
  CmdId Inc = P.localDet("inc", [](int &S) { ++S; });
  CmdId Inc3 = P.localDet("inc3", [](int &S) { S += 3; });
  CmdId Body = P.ifThenElse([](const int &S) { return S % 2 == 0; }, Inc,
                            P.choice({Inc, Inc3}));
  P.setEntry(P.loop(Body));
}

/// A client/server pair exercising rendezvous.
void buildClient(IProg &P) {
  P.setEntry(P.loop(P.request(
      "ask", [](const int &S) { return S; },
      [](const int &, const int &Rsp, std::vector<int> &Out) {
        Out.push_back(Rsp);
      })));
}
void buildServer(IProg &P) {
  P.setEntry(P.loop(P.response(
      "serve", [](const int &Req, const int &S,
                  std::vector<std::pair<int, int>> &Out) {
        Out.emplace_back(S + 1, Req + 1);
      })));
}

} // namespace

static void BM_NormalizeControlFlow(benchmark::State &State) {
  IProg P;
  buildCounter(P);
  std::vector<CmdId> Stack{P.entry()};
  for (auto _ : State) {
    std::vector<PendingStep<IntDomain>> Steps;
    normalize(P, Stack, 0, Steps);
    benchmark::DoNotOptimize(Steps);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_NormalizeControlFlow);

static void BM_LocalStepSuccessors(benchmark::State &State) {
  IProg P;
  buildCounter(P);
  System<IntDomain> Sys({&P});
  auto S = Sys.initialState({0});
  std::vector<Successor<IntDomain>> Succs;
  for (auto _ : State) {
    Succs.clear();
    Sys.successors(S, Succs);
    benchmark::DoNotOptimize(Succs);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LocalStepSuccessors);

static void BM_RendezvousSuccessors(benchmark::State &State) {
  IProg C, Srv;
  buildClient(C);
  buildServer(Srv);
  System<IntDomain> Sys({&C, &Srv});
  auto S = Sys.initialState({0, 0});
  std::vector<Successor<IntDomain>> Succs;
  for (auto _ : State) {
    Succs.clear();
    Sys.successors(S, Succs);
    benchmark::DoNotOptimize(Succs);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RendezvousSuccessors);

/// Interpreter walk: repeatedly take the first successor.
static void BM_InterpreterSteps(benchmark::State &State) {
  IProg P;
  buildCounter(P);
  System<IntDomain> Sys({&P});
  auto S = Sys.initialState({0});
  std::vector<Successor<IntDomain>> Succs;
  for (auto _ : State) {
    Succs.clear();
    Sys.successors(S, Succs);
    S = std::move(Succs.front().State);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InterpreterSteps);

/// Enumeration cost scales with the number of composed processes.
static void BM_SuccessorsVsProcessCount(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::vector<std::unique_ptr<IProg>> Progs;
  std::vector<const IProg *> Ptrs;
  for (unsigned I = 0; I < N; ++I) {
    Progs.push_back(std::make_unique<IProg>());
    buildCounter(*Progs.back());
    Ptrs.push_back(Progs.back().get());
  }
  System<IntDomain> Sys(Ptrs);
  auto S = Sys.initialState(std::vector<int>(N, 0));
  std::vector<Successor<IntDomain>> Succs;
  for (auto _ : State) {
    Succs.clear();
    Sys.successors(S, Succs);
    benchmark::DoNotOptimize(Succs);
  }
  bench::Reporter(State, "successors_vs_processes/" + std::to_string(N))
      .counter("succs", static_cast<double>(Succs.size()));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SuccessorsVsProcessCount)->RangeMultiplier(2)->Range(1, 16);
