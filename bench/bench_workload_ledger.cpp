//===- bench/bench_workload_ledger.cpp - Ledger service under an SLO ------===//
///
/// \file
/// The "serves heavy traffic" bench: sustained open-loop ledger traffic on
/// the GC-managed heap, measured the way an operator would (open-loop
/// latency percentiles, throughput vs offered load, worst mutator pause,
/// audited floating-garbage ratio) and judged against the committed SLO.
/// Unlike the other benches this one has a verdict: it defines its own
/// main() and exits non-zero when the SLO checker fails, after the atexit
/// hook has exported BENCH_workload_ledger.json — so run_benches.sh both
/// gets the numbers and fails the run.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "workload/ledger/Slo.h"

#include <atomic>
#include <cstdio>

using namespace tsogc;

namespace {

/// Verdicts accumulated across benchmark runs, evaluated in main().
std::atomic<int> SloFailures{0};

ledger::LedgerRunConfig baseConfig() {
  ledger::LedgerRunConfig Cfg;
  Cfg.Rt.HeapObjects = 1u << 14;
  Cfg.Rt.LocalAllocPool = 32; // per-mutator TLABs on the allocation path
  Cfg.Ledger.MaxAccounts = 192;
  Cfg.Ledger.HistoryLimit = 12;
  Cfg.Load.RatePerSec = 8000; // aggregate offered load
  Cfg.Load.PreCreated = 64;
  Cfg.Threads = 2;
  Cfg.Seconds = 1.0;
  Cfg.Seed = 42;
  Cfg.OccupancyTrigger = 0.5;
  return Cfg;
}

void report(benchmark::State &State, const std::string &Run,
            const ledger::LedgerRunResult &R) {
  bench::Reporter Rep(State, Run);
  Rep.counter("throughput_ops_per_sec", R.ThroughputOpsPerSec);
  Rep.counter("offered_ops_per_sec", R.OfferedOpsPerSec);
  Rep.counter("p50_us", R.P50Us);
  Rep.counter("p99_us", R.P99Us);
  Rep.counter("max_us", R.MaxUs);
  Rep.counter("max_pause_ns", static_cast<double>(R.MaxPauseNs));
  Rep.counter("floating_garbage_ratio", R.FloatingGarbageRatio);
  // Console-table names that would collide with exportMetrics' counters of
  // the same run prefix get distinct spellings (the registry refuses to
  // re-register a name under a different metric kind).
  Rep.counter("cycles", static_cast<double>(R.Cycles));
  Rep.counter("applied_ops", static_cast<double>(R.OpsApplied));
  Rep.counter("rejected_ops", static_cast<double>(R.OpsRejected));
  Rep.counter("heap_exhausted", static_cast<double>(R.OpsHeapExhausted));
  // TLAB effectiveness under real traffic: hits / (hits + refills +
  // fallbacks) — the fraction of allocations that never left the thread.
  const double AllocPaths = static_cast<double>(R.TlabHits) +
                            static_cast<double>(R.TlabRefills) +
                            static_cast<double>(R.AllocFallbacks);
  Rep.counter("tlab_hit_rate",
              AllocPaths > 0 ? static_cast<double>(R.TlabHits) / AllocPaths
                             : 0);
  Rep.counter("conservation_ok", R.ConservationOk ? 1 : 0);
  Rep.counter("audit_clean", R.AuditClean ? 1 : 0);
  // The full exportMetrics() payload (per-kind counts, latency histogram)
  // goes straight to the registry under a per-run prefix.
  ledger::exportMetrics(R, bench::registry(), Run + ".");
}

void judge(const std::string &Run, const ledger::LedgerRunResult &R) {
  ledger::SloVerdict V = ledger::checkSlo(ledger::SloTarget{}, R);
  std::fprintf(stderr, "[%s] %s\n", Run.c_str(), V.summary().c_str());
  if (!V.Pass)
    SloFailures.fetch_add(1, std::memory_order_relaxed);
}

/// The headline run: committed default config against the committed SLO.
void BM_LedgerSlo(benchmark::State &State) {
  for (auto _ : State) {
    ledger::LedgerRunResult R = ledger::runLedger(baseConfig());
    report(State, "ledger_slo", R);
    judge("ledger_slo", R);
    State.SetItemsProcessed(static_cast<int64_t>(R.OpsTotal));
  }
}
BENCHMARK(BM_LedgerSlo)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Same traffic under the stop-the-world baseline: the pause SLO is NOT
/// judged here (it would fail by design — that contrast is the point);
/// the numbers are exported for docs/EXPERIMENTS.md.
void BM_LedgerStw(benchmark::State &State) {
  for (auto _ : State) {
    ledger::LedgerRunConfig Cfg = baseConfig();
    Cfg.StopTheWorld = true;
    ledger::LedgerRunResult R = ledger::runLedger(Cfg);
    report(State, "ledger_stw", R);
    State.SetItemsProcessed(static_cast<int64_t>(R.OpsTotal));
  }
}
BENCHMARK(BM_LedgerStw)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

// Our own main (wins over benchmark_main's weak inclusion in the static
// archive): run the benchmarks, then turn SLO failures into the exit code.
// The BenchReport atexit hook still writes the JSON export either way.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int Failures = SloFailures.load(std::memory_order_relaxed);
  if (Failures) {
    std::fprintf(stderr, "bench_workload_ledger: %d SLO violation run(s)\n",
                 Failures);
    return 1;
  }
  return 0;
}
