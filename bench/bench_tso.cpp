//===- bench/bench_tso.cpp - Experiment E9: the x86-TSO substrate ---------===//
///
/// Regenerates the Figure 9 validation data: litmus outcome sets under TSO
/// vs SC (who allows the SB relaxation), enumeration cost, and raw memory-
/// subsystem operation throughput. The qualitative claims to reproduce:
///   * SB shows 4 outcomes under TSO, 3 under SC and with MFENCE;
///   * MP/LB/CoRR anomalies never appear;
///   * buffer bound 1 already exhibits the relaxation.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "litmus/Litmus.h"
#include "tso/MemoryState.h"

#include <benchmark/benchmark.h>

using namespace tsogc;

static void BM_TsoWriteCommit(benchmark::State &State) {
  MemoryState M(2, 4, 4, 1, 8);
  MemLoc L = MemLoc::globalVar(0);
  for (auto _ : State) {
    M.write(0, L, MemVal{1});
    M.commitOldest(0);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TsoWriteCommit);

static void BM_TsoReadForwarded(benchmark::State &State) {
  MemoryState M(2, 4, 4, 1, 8);
  MemLoc L = MemLoc::globalVar(0);
  M.write(0, L, MemVal{7});
  for (auto _ : State)
    benchmark::DoNotOptimize(M.read(0, L));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TsoReadForwarded);

static void BM_TsoReadFromMemory(benchmark::State &State) {
  MemoryState M(2, 4, 4, 1, 8);
  MemLoc L = MemLoc::globalVar(0);
  for (auto _ : State)
    benchmark::DoNotOptimize(M.read(1, L));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TsoReadFromMemory);

static void BM_TsoObjFieldAccess(benchmark::State &State) {
  MemoryState M(2, 1, 8, 2, 8);
  M.heap().allocAt(Ref(0), false);
  M.heap().allocAt(Ref(1), false);
  MemLoc L = MemLoc::objField(Ref(0), 1);
  for (auto _ : State) {
    M.write(0, L, MemVal::fromRef(Ref(1)));
    M.commitOldest(0);
    benchmark::DoNotOptimize(M.read(1, L));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TsoObjFieldAccess);

/// Enumerate a litmus test's outcomes; report outcome count and visited
/// states as counters. Arg: buffer bound (0 = SC).
static void litmusBench(benchmark::State &State, const LitmusTest &T,
                        unsigned Bound) {
  size_t Outcomes = 0;
  LitmusStats Stats;
  for (auto _ : State) {
    auto Os = enumerateOutcomes(T, Bound, Stats);
    Outcomes = Os.size();
    benchmark::DoNotOptimize(Os);
  }
  bench::Reporter R(State, "litmus/" + T.Name + "/" + std::to_string(Bound));
  R.counter("outcomes", static_cast<double>(Outcomes));
  R.counter("states", static_cast<double>(Stats.States));
}

static void BM_LitmusSB_TSO(benchmark::State &State) {
  litmusBench(State, makeSB(), 2);
}
BENCHMARK(BM_LitmusSB_TSO);

static void BM_LitmusSB_SC(benchmark::State &State) {
  litmusBench(State, makeSB(), 0);
}
BENCHMARK(BM_LitmusSB_SC);

static void BM_LitmusSB_Fenced(benchmark::State &State) {
  litmusBench(State, makeSBFenced(), 2);
}
BENCHMARK(BM_LitmusSB_Fenced);

static void BM_LitmusMP(benchmark::State &State) {
  litmusBench(State, makeMP(), 2);
}
BENCHMARK(BM_LitmusMP);

static void BM_LitmusLB(benchmark::State &State) {
  litmusBench(State, makeLB(), 2);
}
BENCHMARK(BM_LitmusLB);

static void BM_LitmusCoRR(benchmark::State &State) {
  litmusBench(State, makeCoRR(), 2);
}
BENCHMARK(BM_LitmusCoRR);

/// Buffer-bound sweep on SB: the relaxation appears at bound 1 and the
/// outcome set stays saturated — deeper buffers only add states.
static void BM_LitmusSB_BoundSweep(benchmark::State &State) {
  const unsigned Bound = static_cast<unsigned>(State.range(0));
  litmusBench(State, makeSB(), Bound);
}
BENCHMARK(BM_LitmusSB_BoundSweep)->DenseRange(0, 4);
