//===- bench/bench_mark.cpp - Experiment E6: the mark procedure (Fig 5) ---===//
///
/// Cost profile of CAS-on-contention marking, the design §2.3 argues for:
///   * the fast path (object already marked) costs a single plain load —
///     orders of magnitude cheaper than the CAS path;
///   * the idle path (collector off) is equally cheap;
///   * under contention, exactly one CAS winner emerges per object and
///     losers fall back to the fast path.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/RtHeap.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

RtConfig cfg(uint32_t Objects) {
  RtConfig C;
  C.HeapObjects = Objects;
  C.NumFields = 1;
  return C;
}

} // namespace

/// Fast path: the object is already marked; mark() is a single load.
static void BM_MarkFastPathAlreadyMarked(benchmark::State &State) {
  RtHeap H(cfg(16));
  RtRef R = H.alloc(true); // marked relative to fm = true
  uint64_t Cas = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(H.mark(R, true, true, &Cas));
  bench::Reporter(State, "mark_fast_path")
      .counter("cas", static_cast<double>(Cas));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MarkFastPathAlreadyMarked);

/// Idle path: collector inactive; the phase test defeats the CAS.
static void BM_MarkIdleCollector(benchmark::State &State) {
  RtHeap H(cfg(16));
  RtRef R = H.alloc(false);
  uint64_t Cas = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(H.mark(R, true, /*BarriersActive=*/false, &Cas));
  bench::Reporter(State, "mark_idle_collector")
      .counter("cas", static_cast<double>(Cas));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MarkIdleCollector);

/// Slow path: fresh unmarked object each iteration; the CAS executes.
static void BM_MarkCasPath(benchmark::State &State) {
  RtHeap H(cfg(1u << 16));
  std::vector<RtRef> Objs;
  for (uint32_t I = 0; I < (1u << 16); ++I)
    Objs.push_back(H.alloc(false));
  size_t I = 0;
  uint64_t Cas = 0;
  bool Fm = true;
  for (auto _ : State) {
    if (I == Objs.size()) {
      // All marked: flip the sense so everything is unmarked again.
      State.PauseTiming();
      Fm = !Fm;
      I = 0;
      State.ResumeTiming();
    }
    benchmark::DoNotOptimize(H.mark(Objs[I++], Fm, true, &Cas));
  }
  bench::Reporter(State, "mark_cas_path")
      .counter("cas_rate", static_cast<double>(Cas) /
                               static_cast<double>(State.iterations()));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MarkCasPath);

/// The Figure 5 race: N threads mark the same batch of objects; count
/// total wins (must equal the number of objects) and CAS attempts.
static void BM_MarkContended(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  const uint32_t Batch = 1024;
  RtHeap H(cfg(Batch));
  std::vector<RtRef> Objs;
  for (uint32_t I = 0; I < Batch; ++I)
    Objs.push_back(H.alloc(false));
  bool Fm = true;
  uint64_t Wins = 0, CasTotal = 0;
  for (auto _ : State) {
    std::atomic<uint64_t> W{0}, CasSum{0};
    std::vector<std::thread> Ts;
    for (unsigned T = 0; T < Threads; ++T)
      Ts.emplace_back([&] {
        uint64_t Cas = 0, MyWins = 0;
        for (RtRef R : Objs)
          if (H.mark(R, Fm, true, &Cas))
            ++MyWins;
        W.fetch_add(MyWins);
        CasSum.fetch_add(Cas);
      });
    for (auto &T : Ts)
      T.join();
    Wins = W.load();
    CasTotal = CasSum.load();
    Fm = !Fm; // reset marks for the next iteration
  }
  bench::Reporter R(State, "mark_contended/" + std::to_string(Threads));
  R.counter("wins", static_cast<double>(Wins));
  R.counter("cas", static_cast<double>(CasTotal));
  State.SetItemsProcessed(State.iterations() * Batch * Threads);
}
BENCHMARK(BM_MarkContended)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

/// Re-marking an already-marked working set (steady-state write barrier on
/// hot objects): pure fast path even while the collector is active.
static void BM_MarkHotWorkingSet(benchmark::State &State) {
  RtHeap H(cfg(256));
  std::vector<RtRef> Objs;
  for (uint32_t I = 0; I < 256; ++I)
    Objs.push_back(H.alloc(false));
  for (RtRef R : Objs)
    H.mark(R, true, true);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H.mark(Objs[I], true, true));
    I = (I + 1) & 255;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MarkHotWorkingSet);
