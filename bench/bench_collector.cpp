//===- bench/bench_collector.cpp - E3/E11/E12: cycles, pauses, floating ---===//
///
/// The collector-level experiments:
///   * E3  — full cycle cost vs live-set size and garbage fraction;
///   * E11 — the design motivation: on-the-fly collection bounds each
///           mutator pause to one handshake handler, while the STW baseline
///           pauses every mutator for the whole mark+sweep. The shape to
///           reproduce: max pause(on-the-fly) ≪ max pause(STW), with
///           comparable or better reclamation;
///   * E12 — floating garbage: objects dropped mid-cycle survive at most
///           one extra cycle (retention then reclamation).
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

/// Build a live set of linked lists (chains of ~16 hanging off rooted
/// heads) plus a pile of immediately-dropped garbage.
void populate(MutatorContext *M, unsigned LiveObjects, unsigned Garbage) {
  unsigned Spine = 0;
  for (unsigned I = 0; I < LiveObjects; ++I) {
    int Idx = M->alloc();
    if (Idx < 0)
      break;
    if (++Spine % 16 != 0 && M->numRoots() >= 2) {
      // new.f0 := previous head, then unroot the previous head: the chain
      // grows with the new node as its rooted head.
      M->store(/*dst=*/M->numRoots() - 2, /*src=*/static_cast<size_t>(Idx),
               0);
      M->discard(M->numRoots() - 2);
    }
  }
  for (unsigned I = 0; I < Garbage; ++I) {
    int Idx = M->alloc();
    if (Idx < 0)
      break;
    M->discard(static_cast<size_t>(Idx));
  }
}

} // namespace

/// E3: cycle time vs heap occupancy (single quiescent mutator).
static void BM_CycleVsLiveSet(benchmark::State &State) {
  const unsigned Live = static_cast<unsigned>(State.range(0));
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 16;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  populate(M, Live, /*Garbage=*/0);
  for (auto _ : State) {
    CycleStats CS = Rt.collectOnce();
    benchmark::DoNotOptimize(CS);
  }
  bench::Reporter R(State, "cycle_vs_live_set/" + std::to_string(Live));
  R.counter("live", static_cast<double>(Rt.heap().allocatedCount()));
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CycleVsLiveSet)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(32768)
    ->Unit(benchmark::kMicrosecond);

/// E3: sweep dominates when most of the heap is garbage.
static void BM_CycleVsGarbage(benchmark::State &State) {
  const unsigned Garbage = static_cast<unsigned>(State.range(0));
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 16;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  uint64_t Freed = 0;
  for (auto _ : State) {
    State.PauseTiming();
    // Fresh round: drop last round's survivors, then a small live set plus
    // the garbage pile.
    while (M->numRoots() > 0)
      M->discard(0);
    populate(M, 64, Garbage);
    State.ResumeTiming();
    // Garbage dropped while idle carries last cycle's sense: the flip makes
    // it white and this (measured) cycle reclaims it.
    CycleStats CS = Rt.collectOnce();
    Freed += CS.ObjectsFreed;
  }
  bench::Reporter R(State, "cycle_vs_garbage/" + std::to_string(Garbage));
  R.counter("freed_per_cycle", static_cast<double>(Freed) /
                                   static_cast<double>(State.iterations()));
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}
BENCHMARK(BM_CycleVsGarbage)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

/// E11: max mutator pause, on-the-fly vs stop-the-world, with working
/// mutator threads. Reported as counters (nanoseconds).
static void pauseComparison(benchmark::State &State, bool StopTheWorld) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 15;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  const unsigned NumMuts = 2;
  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < NumMuts; ++I)
    Ms.push_back(Rt.registerMutator());

  std::atomic<bool> Done{false};
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I < NumMuts; ++I)
    Workers.emplace_back([&, I] {
      Xoshiro256 Rng(I + 1);
      MutatorContext *M = Ms[I];
      while (!Done.load(std::memory_order_relaxed)) {
        M->safepoint();
        size_t N = M->numRoots();
        if (N < 64) {
          if (M->alloc() < 0 && N > 0)
            M->discard(Rng.nextBelow(N));
        } else if (N >= 2 && Rng.nextBool(0.3)) {
          M->store(Rng.nextBelow(N), Rng.nextBelow(N), 0);
        } else {
          M->discard(Rng.nextBelow(N));
        }
      }
      while (M->numRoots())
        M->discard(0);
    });

  uint64_t Cycles = 0;
  for (auto _ : State) {
    if (StopTheWorld)
      Rt.collectStw();
    else
      Rt.collectOnce();
    ++Cycles;
  }
  Done.store(true);
  // Keep servicing handshakes until workers exit (none pending now).
  for (auto &T : Workers)
    T.join();
  // The pause a mutator sees is the handshake handler under on-the-fly
  // collection and the whole park under STW; maxPauseNs() covers both
  // (MaxHandshakeNs alone under-reported STW once park waits moved to
  // their own stat).
  uint64_t MaxPause = 0, TotalHs = 0, TotalParks = 0;
  for (auto *M : Ms) {
    MaxPause = std::max(MaxPause, M->stats().maxPauseNs());
    TotalHs += M->stats().HandshakesSeen;
    TotalParks += M->stats().Parks;
  }
  for (auto *M : Ms)
    Rt.deregisterMutator(M);
  bench::Reporter R(State,
                    StopTheWorld ? "pause_stw" : "pause_on_the_fly");
  R.counter("max_pause_ns", static_cast<double>(MaxPause));
  R.counter("handshakes", static_cast<double>(TotalHs));
  R.counter("parks", static_cast<double>(TotalParks));
  R.counter("freed", static_cast<double>(Rt.stats().TotalFreed.load()));
  State.SetItemsProcessed(Cycles);
}

static void BM_PauseOnTheFly(benchmark::State &State) {
  pauseComparison(State, /*StopTheWorld=*/false);
}
BENCHMARK(BM_PauseOnTheFly)->Unit(benchmark::kMillisecond)->Iterations(30);

static void BM_PauseStopTheWorld(benchmark::State &State) {
  pauseComparison(State, /*StopTheWorld=*/true);
}
BENCHMARK(BM_PauseStopTheWorld)->Unit(benchmark::kMillisecond)->Iterations(30);

/// E12: floating garbage — objects that become unreachable *after* the
/// snapshot (their roots were already marked) survive the current cycle
/// and die in the next. The handshake servicer drops the roots right after
/// the get-roots round completes, i.e. mid-cycle behind the snapshot.
static void BM_FloatingGarbageTwoCycles(benchmark::State &State) {
  RtConfig Cfg;
  Cfg.HeapObjects = 4096;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  const unsigned K = 256;
  uint64_t RootsMarkedBase = 0;
  Rt.HandshakeServicer = [&] {
    M->safepoint();
    // Once this cycle's root marking has run, drop everything: the objects
    // are unreachable from now on but sit behind the snapshot.
    if (M->stats().RootsMarked >= RootsMarkedBase + K && M->numRoots() > 0)
      while (M->numRoots() > 0)
        M->discard(0);
  };
  uint64_t FloatedTotal = 0, Cycles = 0;
  for (auto _ : State) {
    State.PauseTiming();
    for (unsigned I = 0; I < K; ++I)
      if (M->alloc() < 0)
        State.SkipWithError("heap exhausted");
    RootsMarkedBase = M->stats().RootsMarked;
    State.ResumeTiming();
    CycleStats C1 = Rt.collectOnce(); // snapshot retains them: they float
    CycleStats C2 = Rt.collectOnce(); // reclaimed here
    FloatedTotal += C2.ObjectsFreed;
    Cycles += 2;
    if (C1.ObjectsFreed != 0)
      State.SkipWithError("snapshot garbage freed too early");
    if (Rt.heap().allocatedCount() != 0)
      State.SkipWithError("garbage survived two cycles");
  }
  bench::Reporter R(State, "floating_garbage_two_cycles");
  R.counter("floated_per_round",
            static_cast<double>(FloatedTotal) /
                std::max<double>(1.0, static_cast<double>(State.iterations())));
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(Cycles);
}
BENCHMARK(BM_FloatingGarbageTwoCycles)->Unit(benchmark::kMicrosecond);
