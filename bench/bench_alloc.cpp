//===- bench/bench_alloc.cpp - Allocation fast-path latency ----------------===//
///
/// \file
/// The allocator scale-out bench: mean allocation latency (ns/op) at 1, 2,
/// 4 and 8 mutator threads, for the three allocation designs stacked in
/// the runtime —
///
///   alloc_global : no thread-local reserve; every allocation takes the
///                  shared path (recycled-list lock or bump CAS).
///   alloc_pool   : the original §4 scatter pool at the heap level —
///                  reserveBatch refills a per-thread vector of singles.
///   alloc_tlab   : the shipped design: MutatorContext TLABs, a CAS-free
///                  bump through a contiguous run claimed by reserveRun.
///
/// Exports the tsogc-bench-v1 JSON (BENCH_alloc.json via run_benches.sh)
/// with ns_per_op per run plus the canonical alloc.* counters from the
/// headline single-thread TLAB run. `--smoke` shrinks the heap so the
/// ctest smoke finishes in well under a second. Exits non-zero if any
/// allocation fails despite the reserved capacity margin — exhaustion
/// here means refill accounting went wrong, not that the bench was sized
/// too small.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/GcRuntime.h"
#include "runtime/RtObserve.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

bool Smoke = false;

/// Any allocation failure across all runs: turned into the exit code.
std::atomic<uint64_t> TotalFailures{0};

constexpr uint32_t PoolSlots = 64;

uint32_t heapObjects() { return Smoke ? 1u << 14 : 1u << 18; }

RtConfig allocCfg(uint32_t Pool) {
  RtConfig C;
  C.HeapObjects = heapObjects();
  C.NumFields = 1;
  C.LocalAllocPool = Pool;
  return C;
}

/// Per-thread allocation quota: an equal share of the slab minus the slack
/// that can legitimately sit reserved in peers' TLABs when the music stops.
uint32_t quotaPerThread(unsigned Threads) {
  return heapObjects() / Threads - PoolSlots - 8;
}

struct AllocBenchResult {
  double NsPerOp = 0;
  uint64_t Allocs = 0;
  uint64_t Failures = 0;
  uint64_t TlabHits = 0;
  uint64_t TlabRefills = 0;
  uint64_t Fallbacks = 0;
};

/// Time \p Threads mutators allocating their quota through MutatorContext
/// (the real fast path, including root bookkeeping). No collector runs:
/// this isolates allocation latency.
AllocBenchResult runMutatorAlloc(unsigned Threads, uint32_t Pool) {
  GcRuntime Rt(allocCfg(Pool));
  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < Threads; ++I)
    Ms.push_back(Rt.registerMutator());
  const uint32_t Quota = quotaPerThread(Threads);
  std::vector<uint64_t> Ns(Threads, 0);
  std::vector<uint64_t> Fails(Threads, 0);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = Ms[T];
      const auto T0 = std::chrono::steady_clock::now();
      for (uint32_t I = 0; I < Quota; ++I) {
        int R = M->alloc();
        if (R >= 0)
          M->discard(static_cast<size_t>(R));
        else
          ++Fails[T];
      }
      Ns[T] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
    });
  for (std::thread &T : Ts)
    T.join();
  for (MutatorContext *M : Ms)
    Rt.deregisterMutator(M); // folds the TLAB counters into Rt.stats()

  AllocBenchResult R;
  uint64_t TotalNs = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    TotalNs += Ns[T];
    R.Failures += Fails[T];
  }
  R.Allocs = static_cast<uint64_t>(Quota) * Threads - R.Failures;
  R.NsPerOp = R.Allocs ? static_cast<double>(TotalNs) /
                             static_cast<double>(R.Allocs)
                       : 0;
  R.TlabHits = Rt.stats().TotalTlabHits.load(std::memory_order_relaxed);
  R.TlabRefills = Rt.stats().TotalTlabRefills.load(std::memory_order_relaxed);
  R.Fallbacks = Rt.stats().TotalAllocFallbacks.load(std::memory_order_relaxed);
  TotalFailures.fetch_add(R.Failures, std::memory_order_relaxed);
  return R;
}

/// The original scatter-pool design, at the heap level: a per-thread
/// vector of single slots refilled by reserveBatch, consumed with
/// allocFromReserved. What the TLAB replaced — kept as the comparison arm.
AllocBenchResult runScatterPoolAlloc(unsigned Threads) {
  RtHeap H(allocCfg(0));
  const uint32_t Quota = quotaPerThread(Threads);
  std::vector<uint64_t> Ns(Threads, 0);
  std::vector<uint64_t> Fails(Threads, 0);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      std::vector<RtRef> Pool;
      const auto T0 = std::chrono::steady_clock::now();
      for (uint32_t I = 0; I < Quota; ++I) {
        if (Pool.empty() && H.reserveBatch(Pool, PoolSlots) == 0) {
          ++Fails[T];
          continue;
        }
        H.allocFromReserved(Pool.back(), false);
        Pool.pop_back();
      }
      Ns[T] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
    });
  for (std::thread &T : Ts)
    T.join();
  AllocBenchResult R;
  uint64_t TotalNs = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    TotalNs += Ns[T];
    R.Failures += Fails[T];
  }
  R.Allocs = static_cast<uint64_t>(Quota) * Threads - R.Failures;
  R.NsPerOp = R.Allocs ? static_cast<double>(TotalNs) /
                             static_cast<double>(R.Allocs)
                       : 0;
  TotalFailures.fetch_add(R.Failures, std::memory_order_relaxed);
  return R;
}

void report(benchmark::State &State, const std::string &Run,
            const AllocBenchResult &R, bool Tlab) {
  bench::Reporter Rep(State, Run);
  Rep.counter("ns_per_op", R.NsPerOp);
  Rep.counter("allocs", static_cast<double>(R.Allocs));
  Rep.counter("failures", static_cast<double>(R.Failures));
  if (Tlab) {
    Rep.counter("tlab_hits", static_cast<double>(R.TlabHits));
    Rep.counter("tlab_refills", static_cast<double>(R.TlabRefills));
    Rep.counter("fallbacks", static_cast<double>(R.Fallbacks));
    Rep.counter("hit_rate",
                R.Allocs ? static_cast<double>(R.TlabHits) /
                               static_cast<double>(R.Allocs)
                         : 0);
  }
  State.SetItemsProcessed(static_cast<int64_t>(R.Allocs));
}

void BM_AllocTlab(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    AllocBenchResult R = runMutatorAlloc(Threads, PoolSlots);
    report(State, "alloc_tlab/" + std::to_string(Threads), R, true);
    if (Threads == 1) {
      // The canonical alloc.* rows (docs/OBSERVABILITY.md) come from the
      // headline single-thread run.
      RtStats Canon;
      Canon.TotalTlabHits.store(R.TlabHits, std::memory_order_relaxed);
      Canon.TotalTlabRefills.store(R.TlabRefills, std::memory_order_relaxed);
      Canon.TotalAllocFallbacks.store(R.Fallbacks, std::memory_order_relaxed);
      exportAllocMetrics(Canon, bench::registry());
    }
  }
}
BENCHMARK(BM_AllocTlab)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AllocPool(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    AllocBenchResult R = runScatterPoolAlloc(Threads);
    report(State, "alloc_pool/" + std::to_string(Threads), R, false);
  }
}
BENCHMARK(BM_AllocPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AllocGlobal(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    AllocBenchResult R = runMutatorAlloc(Threads, /*Pool=*/0);
    report(State, "alloc_global/" + std::to_string(Threads), R, false);
  }
}
BENCHMARK(BM_AllocGlobal)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: strip --smoke before google-benchmark sees it, and turn
// allocation failures into the exit code (see file header).
int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "--smoke") {
      Smoke = true;
      for (int J = I; J + 1 < argc; ++J)
        argv[J] = argv[J + 1];
      --argc;
      --I;
    }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const uint64_t Failures = TotalFailures.load(std::memory_order_relaxed);
  if (Failures) {
    std::fprintf(stderr,
                 "bench_alloc: %llu allocation(s) failed with capacity to "
                 "spare — refill accounting is broken\n",
                 static_cast<unsigned long long>(Failures));
    return 1;
  }
  return 0;
}
