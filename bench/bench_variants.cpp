//===- bench/bench_variants.cpp - §4 Observations and extensions, costed --===//
///
/// Ablation benches for the design variants the paper sketches in §4:
///   * merged initialization handshakes (two fewer rounds per cycle) —
///     measured as idle-cycle latency;
///   * insertion-barrier elision after root marking — measured as the
///     store cost against unmarked targets in the post-snapshot phase;
///   * per-mutator allocation pools — measured as contended allocation
///     throughput vs the global free-list lock.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

/// Idle-cycle latency: dominated by the handshake rounds, so the merged
/// variant should come in at roughly 4/6 of the baseline.
static void cycleLatency(benchmark::State &State, bool Merged) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.MergedInitHandshakes = Merged;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  uint64_t Rounds = 0, Cycles = 0;
  for (auto _ : State) {
    CycleStats CS = Rt.collectOnce();
    Rounds += CS.HandshakeRounds;
    ++Cycles;
  }
  Rt.deregisterMutator(M);
  bench::Reporter(State,
                  Merged ? "cycle_merged_handshakes" : "cycle_baseline")
      .counter("rounds_per_cycle",
               static_cast<double>(Rounds) / static_cast<double>(Cycles));
  State.SetItemsProcessed(Cycles);
}

static void BM_CycleBaselineHandshakes(benchmark::State &State) {
  cycleLatency(State, /*Merged=*/false);
}
BENCHMARK(BM_CycleBaselineHandshakes)->Unit(benchmark::kMicrosecond);

static void BM_CycleMergedHandshakes(benchmark::State &State) {
  cycleLatency(State, /*Merged=*/true);
}
BENCHMARK(BM_CycleMergedHandshakes)->Unit(benchmark::kMicrosecond);

/// Store cost against *unmarked* targets after this mutator's roots were
/// marked: the elision variant replaces the insertion CAS with a branch.
static void postSnapshotStore(benchmark::State &State, bool Elide) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 14;
  Cfg.NumFields = 1;
  Cfg.InsertionBarrierElideAfterRoots = Elide;
  Cfg.Validate = false;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  // A src object and a pool of target objects.
  int Src = M->alloc();
  std::vector<size_t> Targets;
  for (int I = 0; I < 1024; ++I) {
    int T = M->alloc();
    if (T >= 0)
      Targets.push_back(static_cast<size_t>(T));
  }
  // Emulate the post-root-marking window: mark phase, roots marked. The
  // targets are then force-unmarked before every store (instrumentation),
  // so the insertion barrier always faces the worst case — a white target,
  // i.e. a CAS per store unless elided.
  bool Fm = Rt.FM.load() == 0;
  Rt.FM.store(Fm ? 1 : 0);
  Rt.FA.store(Fm ? 1 : 0);
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Mark));
  uint32_t Seq = Rt.HsSeq.fetch_add(1) + 1;
  Rt.channelOf(M->index())
      .Request.store(HsChannel::encode(Seq, RtHsType::GetRoots));
  M->safepoint();
  Rt.heap().takeShared();
  size_t I = 0;
  for (auto _ : State) {
    RtRef T = M->rootRef(Targets[I]);
    Rt.heap().setMarkFlagRaw(T, !Fm); // present as unmarked (white)
    M->store(Targets[I], static_cast<size_t>(Src), 0);
    I = (I + 1) & 1023;
  }
  bench::Reporter(State, Elide ? "post_snapshot_store_elided"
                               : "post_snapshot_store_barrier")
      .counter("barrier_cas", static_cast<double>(M->stats().BarrierCas));
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  State.SetItemsProcessed(State.iterations());
}

static void BM_PostSnapshotStoreWithInsertionBarrier(benchmark::State &State) {
  postSnapshotStore(State, /*Elide=*/false);
}
BENCHMARK(BM_PostSnapshotStoreWithInsertionBarrier);

static void BM_PostSnapshotStoreElided(benchmark::State &State) {
  postSnapshotStore(State, /*Elide=*/true);
}
BENCHMARK(BM_PostSnapshotStoreElided);

/// Contended allocation: N threads allocate and discard; pool size 0 takes
/// the global lock per allocation, larger pools amortize it.
static void contendedAlloc(benchmark::State &State, uint32_t Pool,
                           unsigned Threads) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 17;
  Cfg.NumFields = 1;
  Cfg.LocalAllocPool = Pool;
  Cfg.Validate = false;
  // No collector runs here, so total allocations must fit the slab.
  const uint64_t OpsPerThread = 20'000;
  uint64_t Total = 0;
  for (auto _ : State) {
    GcRuntime Rt(Cfg);
    std::vector<MutatorContext *> Ms;
    for (unsigned T = 0; T < Threads; ++T)
      Ms.push_back(Rt.registerMutator());
    std::vector<std::thread> Ts;
    for (unsigned T = 0; T < Threads; ++T)
      Ts.emplace_back([&, T] {
        MutatorContext *M = Ms[T];
        for (uint64_t I = 0; I < OpsPerThread; ++I) {
          int Idx = M->alloc();
          if (Idx >= 0)
            M->discard(static_cast<size_t>(Idx));
        }
      });
    for (auto &T : Ts)
      T.join();
    for (auto *M : Ms)
      Rt.deregisterMutator(M);
    Total += OpsPerThread * Threads;
  }
  State.SetItemsProcessed(Total);
}

static void BM_AllocGlobalLock(benchmark::State &State) {
  contendedAlloc(State, 0, static_cast<unsigned>(State.range(0)));
}
BENCHMARK(BM_AllocGlobalLock)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

static void BM_AllocLocalPool64(benchmark::State &State) {
  contendedAlloc(State, 64, static_cast<unsigned>(State.range(0)));
}
BENCHMARK(BM_AllocLocalPool64)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
