//===- bench/bench_mark_throughput.cpp - Parallel mark scaling ------------===//
///
/// Mark/sweep throughput of RtConfig::MarkWorkers ∈ {1, 2, 4, 8}: a fixed
/// pointer-dense graph (many chains, so the work-stealing stripes always
/// have chains to expose) is collected repeatedly, and the cycle's marking
/// rate is reported as mark_objects_per_sec, alongside the steal-protocol
/// counters and the mutator's worst observed pause.
///
/// Scaling caveat: on a single-core host the workers time-slice one CPU,
/// so objects/s stays flat (or dips slightly, paying the dispatch and
/// termination-barrier overhead); the speedup criterion is a multi-core
/// measurement. The per-worker counters still prove the work actually
/// distributes. See EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "runtime/GcRuntime.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

constexpr uint32_t NumChains = 512;
constexpr uint32_t ChainLen = 256;

RtConfig cfg(uint32_t Workers) {
  RtConfig C;
  C.HeapObjects = NumChains * ChainLen + 1024;
  C.NumFields = 2;
  C.MarkWorkers = Workers;
  C.Validate = false; // measure the collector, not the checker
  return C;
}

/// Build NumChains f0-linked chains of ChainLen nodes, heads rooted.
void buildGraph(MutatorContext *M) {
  for (uint32_t C = 0; C < NumChains; ++C) {
    const int Head = M->alloc();
    for (uint32_t I = 1; I < ChainLen; ++I) {
      int Node = M->alloc();
      // node.f0 = head, then swap-with-back discard leaves the new node at
      // the old head's root index.
      M->store(static_cast<size_t>(Head), static_cast<size_t>(Node), 0);
      M->discard(static_cast<size_t>(Head));
    }
  }
}

} // namespace

static void BM_MarkThroughput(benchmark::State &State) {
  const uint32_t Workers = static_cast<uint32_t>(State.range(0));
  GcRuntime Rt(cfg(Workers));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  buildGraph(M);

  const uint64_t LiveObjects = NumChains * ChainLen;
  uint64_t MarkNsTotal = 0, Marked = 0, Stolen = 0, StealFails = 0,
           Published = 0, Rounds = 0;
  for (auto _ : State) {
    CycleStats CS = Rt.collectOnce();
    MarkNsTotal += CS.MarkNs;
    Marked += CS.ObjectsMarked;
    Stolen += CS.ChainsStolen;
    StealFails += CS.StealFails;
    Published += CS.ChainsPublished;
    Rounds += CS.TerminationRounds;
    benchmark::DoNotOptimize(CS.ObjectsRetained);
  }

  bench::Reporter R(State, "mark_throughput/" + std::to_string(Workers));
  const double Iters = static_cast<double>(State.iterations());
  R.counter("mark_objects_per_sec",
            MarkNsTotal ? static_cast<double>(Marked) * 1e9 /
                              static_cast<double>(MarkNsTotal)
                        : 0.0);
  R.counter("mark_workers", static_cast<double>(Workers));
  R.counter("live_objects", static_cast<double>(LiveObjects));
  R.counter("mark_ns_per_cycle",
            static_cast<double>(MarkNsTotal) / Iters);
  R.counter("chains_stolen_per_cycle", static_cast<double>(Stolen) / Iters);
  R.counter("steal_fails_per_cycle",
            static_cast<double>(StealFails) / Iters);
  R.counter("chains_published_per_cycle",
            static_cast<double>(Published) / Iters);
  R.counter("termination_rounds_per_cycle",
            static_cast<double>(Rounds) / Iters);
  // The worst collector-induced mutator pause: the handshake protocol is
  // identical for every MarkWorkers value, so this must stay flat.
  R.counter("mutator_max_pause_ns",
            static_cast<double>(M->stats().maxPauseNs()));
  State.SetItemsProcessed(static_cast<int64_t>(Marked));

  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}
BENCHMARK(BM_MarkThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
