//===- examples/onthefly_vs_stw.cpp - The design motivation, measured -----===//
///
/// \file
/// Runs the same mutator workload twice — once with the on-the-fly
/// collector (ragged soft handshakes) and once with the stop-the-world
/// baseline — and prints the mutator pause distribution and throughput of
/// each. The paper's motivation (§1, §2 "On-the-Fly"): stop-the-world
/// "imposes relatively long and unpredictable pauses"; the on-the-fly
/// design bounds each pause to one handshake handler.
///
/// Run: onthefly_vs_stw [mutators] [seconds]
///
//===----------------------------------------------------------------------===//

#include "runtime/GcRuntime.h"
#include "support/Random.h"
#include "support/Stats.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

struct RunResult {
  uint64_t Ops = 0;
  uint64_t Cycles = 0;
  uint64_t Freed = 0;
  uint64_t MaxPauseNs = 0;
  double AvgPauseNs = 0;
  uint64_t Handshakes = 0;
};

RunResult runWorkload(bool StopTheWorld, unsigned NumMuts, double Seconds) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 15;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);

  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < NumMuts; ++I)
    Ms.push_back(Rt.registerMutator());

  std::atomic<bool> Done{false};
  std::vector<uint64_t> Ops(NumMuts, 0);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumMuts; ++I)
    Threads.emplace_back([&, I] {
      Xoshiro256 Rng(100 + I);
      MutatorContext *M = Ms[I];
      uint64_t N = 0;
      while (!Done.load(std::memory_order_relaxed)) {
        M->safepoint();
        size_t R = M->numRoots();
        if (R < 48) {
          if (M->alloc() < 0 && R > 0)
            M->discard(Rng.nextBelow(R));
        } else if (Rng.nextBool(0.4) && R >= 2) {
          M->store(Rng.nextBelow(R), Rng.nextBelow(R),
                   static_cast<uint32_t>(Rng.nextBelow(2)));
        } else {
          M->discard(Rng.nextBelow(R));
        }
        ++N;
      }
      while (M->numRoots())
        M->discard(0);
      Ops[I] = N;
    });

  Rt.startCollector(StopTheWorld);
  std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  Rt.stopCollector();
  Done.store(true);
  for (auto &T : Threads)
    T.join();

  RunResult Res;
  for (uint64_t N : Ops)
    Res.Ops += N;
  Res.Cycles = Rt.stats().Cycles.load();
  Res.Freed = Rt.stats().TotalFreed.load();
  uint64_t TotalPause = 0, Pauses = 0;
  for (auto *M : Ms) {
    // maxPauseNs covers both pause shapes: handshake handlers under
    // on-the-fly collection, whole parks under the STW baseline (park
    // time is accounted separately from handshake time since the stats
    // split — reading MaxHandshakeNs alone hides the STW pauses).
    Res.MaxPauseNs = std::max(Res.MaxPauseNs, M->stats().maxPauseNs());
    TotalPause += M->stats().HandshakeNs + M->stats().ParkNs;
    Res.Handshakes += M->stats().HandshakesSeen;
    Pauses += M->stats().HandshakesSeen + M->stats().Parks;
  }
  Res.AvgPauseNs =
      Pauses ? static_cast<double>(TotalPause) / static_cast<double>(Pauses)
             : 0.0;
  for (auto *M : Ms)
    Rt.deregisterMutator(M);
  return Res;
}

void report(const char *Name, const RunResult &R, double Seconds) {
  std::printf("%-14s ops=%-10llu ops/s=%-10.0f cycles=%-5llu freed=%-8llu "
              "handshakes=%-5llu avg pause=%8.2f us   MAX PAUSE=%10.2f us\n",
              Name, static_cast<unsigned long long>(R.Ops),
              static_cast<double>(R.Ops) / Seconds,
              static_cast<unsigned long long>(R.Cycles),
              static_cast<unsigned long long>(R.Freed),
              static_cast<unsigned long long>(R.Handshakes),
              R.AvgPauseNs / 1000.0,
              static_cast<double>(R.MaxPauseNs) / 1000.0);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumMuts = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 2;
  double Seconds = Argc > 2 ? std::atof(Argv[2]) : 2.0;

  std::printf("workload: %u mutator thread(s), %.1fs per configuration, "
              "32768-object heap\n\n", NumMuts, Seconds);

  RunResult Otf = runWorkload(/*StopTheWorld=*/false, NumMuts, Seconds);
  report("on-the-fly", Otf, Seconds);

  RunResult Stw = runWorkload(/*StopTheWorld=*/true, NumMuts, Seconds);
  report("stop-world", Stw, Seconds);

  if (Stw.MaxPauseNs > 0 && Otf.MaxPauseNs > 0)
    std::printf("\nmax-pause ratio (stop-world / on-the-fly): %.0fx\n",
                static_cast<double>(Stw.MaxPauseNs) /
                    static_cast<double>(Otf.MaxPauseNs));
  std::printf("the on-the-fly collector's pauses are individual handshake "
              "handlers;\nthe stop-the-world baseline parks every mutator "
              "for the whole mark+sweep.\n");
  return 0;
}
