//===- examples/model_explore.cpp - Exhaustively check a model instance ---===//
///
/// \file
/// Builds a small instance of GC ∥ M1 ∥ … ∥ Sys, exhaustively enumerates its
/// reachable states, and evaluates the full §3.2 invariant suite in every
/// one — the reproduction of the paper's headline theorem on a finite
/// instance. Command-line knobs select the instance size and ablations.
///
/// Usage: model_explore [mutators] [refs] [fields] [bufferBound]
///                      [--no-deletion-barrier] [--no-insertion-barrier]
///                      [--sc] [--max-states N] [--heap empty|single|chain|pair]
///                      [--dfs] [--headline-only] [--tso-handshakes]
///                      [--merged-handshakes] [--json FILE] [--dot FILE]
///                      [--compact]   (hash-compacted visited set)
///                      [--seq]       (sequential explorer; --dfs implies it)
///                      [--workers N] (parallel worker threads; 0 = all cores)
///
/// Defaults to the parallel explorer with one worker per core; the larger
/// default instance (4 refs) is affordable because of it.
///
//===----------------------------------------------------------------------===//

#include "explore/ParallelExplorer.h"

#include "explore/Export.h"
#include "invariants/Describe.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tsogc;

int main(int Argc, char **Argv) {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 4;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 2;

  ExploreOptions Opts;
  Opts.MaxStates = 20'000'000;
  bool HeadlineOnly = false;
  bool Sequential = false;
  unsigned Workers = 0; // 0 = hardware concurrency
  const char *JsonPath = nullptr;
  const char *DotPath = nullptr;

  int Pos = 0;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--headline-only")) {
      HeadlineOnly = true;
    } else if (!std::strcmp(Argv[I], "--dfs")) {
      Opts.Dfs = true;
      Sequential = true; // DFS order is a sequential-explorer notion
    } else if (!std::strcmp(Argv[I], "--seq")) {
      Sequential = true;
    } else if (!std::strcmp(Argv[I], "--workers") && I + 1 < Argc) {
      Workers = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (!std::strcmp(Argv[I], "--compact")) {
      Opts.CompactVisited = true;
    } else if (!std::strcmp(Argv[I], "--scout")) {
      Opts.CompactVisited = true;
      Opts.TrackPaths = false;
    } else if (!std::strcmp(Argv[I], "--no-alloc")) {
      Cfg.MutatorAlloc = false;
    } else if (!std::strcmp(Argv[I], "--no-discard")) {
      Cfg.MutatorDiscard = false;
    } else if (!std::strcmp(Argv[I], "--no-load")) {
      Cfg.MutatorLoad = false;
    } else if (!std::strcmp(Argv[I], "--tso-handshakes")) {
      Cfg.TsoHandshakes = true;
    } else if (!std::strcmp(Argv[I], "--merged-handshakes")) {
      Cfg.MergedInitHandshakes = true;
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--dot") && I + 1 < Argc) {
      DotPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--no-deletion-barrier")) {
      Cfg.DeletionBarrier = false;
    } else if (!std::strcmp(Argv[I], "--no-insertion-barrier")) {
      Cfg.InsertionBarrier = false;
    } else if (!std::strcmp(Argv[I], "--sc")) {
      Cfg.BufferBound = 0;
    } else if (!std::strcmp(Argv[I], "--max-states") && I + 1 < Argc) {
      Opts.MaxStates = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--heap") && I + 1 < Argc) {
      const char *H = Argv[++I];
      if (!std::strcmp(H, "empty"))
        Cfg.InitialHeap = ModelConfig::InitHeap::Empty;
      else if (!std::strcmp(H, "single"))
        Cfg.InitialHeap = ModelConfig::InitHeap::SingleRoot;
      else if (!std::strcmp(H, "chain"))
        Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
      else if (!std::strcmp(H, "pair"))
        Cfg.InitialHeap = ModelConfig::InitHeap::SharedPair;
    } else {
      unsigned V = static_cast<unsigned>(std::atoi(Argv[I]));
      switch (Pos++) {
      case 0:
        Cfg.NumMutators = V;
        break;
      case 1:
        Cfg.NumRefs = V;
        break;
      case 2:
        Cfg.NumFields = V;
        break;
      case 3:
        Cfg.BufferBound = V;
        break;
      }
    }
  }

  std::printf("instance: %u mutator(s), %u refs, %u field(s), "
              "buffer bound %u%s, deletion=%s insertion=%s\n",
              Cfg.NumMutators, Cfg.NumRefs, Cfg.NumFields, Cfg.BufferBound,
              Cfg.BufferBound == 0 ? " (SC)" : "",
              Cfg.DeletionBarrier ? "on" : "OFF",
              Cfg.InsertionBarrier ? "on" : "OFF");

  GcModel M(Cfg);
  InvariantSuite Inv(M);
  StateChecker Check =
      HeadlineOnly ? headlineChecker(Inv) : fullSuiteChecker(Inv);

  auto T0 = std::chrono::steady_clock::now();
  ExploreResult Res;
  if (Sequential) {
    Res = exploreExhaustive(M, Check, Opts);
  } else {
    ParallelExploreOptions POpts;
    POpts.MaxStates = Opts.MaxStates;
    POpts.CompactVisited = Opts.CompactVisited;
    POpts.TrackPaths = Opts.TrackPaths;
    POpts.Workers = Workers;
    Res = exploreParallel(M, Check, POpts);
  }
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();

  std::printf("states=%llu transitions=%llu maxDepth=%u time=%.1fs "
              "(%.0f states/s)\n",
              static_cast<unsigned long long>(Res.StatesVisited),
              static_cast<unsigned long long>(Res.TransitionsExplored),
              Res.MaxDepthSeen, Secs,
              Secs > 0 ? static_cast<double>(Res.StatesVisited) / Secs : 0.0);

  if (JsonPath) {
    if (std::FILE *F = std::fopen(JsonPath, "w")) {
      std::string J = exploreResultToJson(M, Res);
      std::fwrite(J.data(), 1, J.size(), F);
      std::fclose(F);
      std::printf("result written to %s\n", JsonPath);
    }
  }
  if (DotPath && Res.BadState) {
    if (std::FILE *F = std::fopen(DotPath, "w")) {
      std::string Dot = heapToDot(M, *Res.BadState);
      std::fwrite(Dot.data(), 1, Dot.size(), F);
      std::fclose(F);
      std::printf("violating heap written to %s (graphviz)\n", DotPath);
    }
  }
  if (Res.Bug) {
    std::printf("\nINVARIANT VIOLATED: %s\n  %s\n\ntrace (%zu steps):\n",
                Res.Bug->Name.c_str(), Res.Bug->Detail.c_str(),
                Res.Path.size());
    size_t Start = Res.Path.size() > 60 ? Res.Path.size() - 60 : 0;
    if (Start)
      std::printf("  ... (%zu earlier steps elided)\n", Start);
    for (size_t I = Start; I < Res.Path.size(); ++I)
      std::printf("  %3zu. %s\n", I + 1, Res.Path[I].c_str());
    std::printf("\nviolating state:\n%s\n",
                describeState(M, *Res.BadState).c_str());
    return 1;
  }
  if (Res.Truncated) {
    std::printf("search truncated at the state limit; no violation found in "
                "the explored prefix\n");
    return 2;
  }
  std::printf("OK: reachable state space exhausted, every invariant holds "
              "in every state\n");
  return 0;
}
