//===- examples/counterexample_hunt.cpp - Why the barriers are needed -----===//
///
/// \file
/// The contrapositive of the paper's theorem, demonstrated: remove a write
/// barrier and the explorer produces a concrete interleaving in which the
/// collector frees an object that is still reachable from a mutator root.
/// With both barriers the same searches come back clean.
///
/// Run: counterexample_hunt [deletion|insertion]
///      counterexample_hunt replay <choice,choice,...>   (replay a recorded
///      successor-index trace; bad indices are reported, not aborted on)
///
//===----------------------------------------------------------------------===//

#include "explore/Guided.h"
#include "explore/ParallelExplorer.h"
#include "invariants/Describe.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tsogc;

namespace {

void printTrace(const GcModel &M, const ExploreResult &Res) {
  std::printf("\nSAFETY VIOLATED: %s — %s\n", Res.Bug->Name.c_str(),
              Res.Bug->Detail.c_str());
  std::printf("counterexample trace (%zu steps, last 40 shown):\n",
              Res.Path.size());
  size_t Start = Res.Path.size() > 40 ? Res.Path.size() - 40 : 0;
  for (size_t I = Start; I < Res.Path.size(); ++I)
    std::printf("  %4zu. %s\n", I + 1, Res.Path[I].c_str());
  std::printf("\nviolating state:\n%s", describeState(M, *Res.BadState).c_str());
}

/// Deletion-barrier hunt: plain DFS finds the Figure 1 scenario — a white
/// object hidden from the collector by overwriting the only edge to it.
int huntDeletion() {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  // Buffer bound 2 (was 1): the deeper TSO interleavings are affordable now
  // that the control exhaustion runs on the parallel explorer.
  Cfg.BufferBound = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.DeletionBarrier = false;
  Cfg.MutatorAlloc = false;

  std::printf("hunting with the DELETION barrier removed "
              "(1 mutator, chain heap, TSO buffer bound 2, DFS over all "
              "interleavings)...\n");
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 10'000'000;
  ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
  if (!Res.Bug) {
    std::printf("no violation found (unexpected)\n");
    return 1;
  }
  std::printf("violation after %llu states\n",
              static_cast<unsigned long long>(Res.StatesVisited));
  printTrace(M, Res);

  // Control: the same search with the barrier restored exhausts cleanly.
  // The full-suite exhaustion runs on the parallel explorer (one worker per
  // core), which is what makes the grown instance affordable here.
  Cfg.DeletionBarrier = true;
  GcModel MSafe(Cfg);
  InvariantSuite InvSafe(MSafe);
  std::printf("\ncontrol run with the barrier restored (exhausting the full "
              "state space, full invariant suite, all cores)...\n");
  ParallelExploreOptions POpts;
  POpts.MaxStates = Opts.MaxStates;
  ExploreResult Safe = exploreParallel(MSafe, InvSafe, POpts);
  std::printf("states=%llu violation=%s truncated=%s\n",
              static_cast<unsigned long long>(Safe.StatesVisited),
              Safe.Bug ? Safe.Bug->Name.c_str() : "none",
              Safe.Truncated ? "yes" : "no");
  return Safe.exhaustedCleanly() ? 0 : 1;
}

/// Insertion-barrier hunt: guided to the §2 scenario — a white allocation
/// stored into a black (never-rescanned) object and dropped from the roots.
int huntInsertion() {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  Cfg.InsertionBarrier = false;

  std::printf("hunting with the INSERTION barrier removed (guided to the "
              "white-allocation-into-black-object scenario)...\n");
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  GuidedDriver D(M);

  auto Neutral = [](const std::string &L) {
    if (L.rfind("p0:", 0) == 0 ||
        L.find("sys-dequeue-write-buffer") != std::string::npos)
      return true;
    return L.find(":mut:hs-") != std::string::npos ||
           L.find(":mut:root") != std::string::npos;
  };
  auto MutDone = [&M](HsRound R) {
    return [&M, R](const GcSystemState &S) {
      return M.mutator(S, 0).CompletedRound == R;
    };
  };

  bool Ok = D.advance(Neutral, MutDone(HsRound::H3PhaseInit));
  Ok = Ok && D.take("p1:mut:alloc"); // W: white (stale fA view)
  std::printf("  allocated W=r1 white while fA view is stale: %s\n",
              Ok ? "ok" : "FAILED");
  Ok = Ok && D.advance(Neutral, MutDone(HsRound::H4PhaseMark));
  Ok = Ok && D.take("p1:mut:alloc"); // B: black
  std::printf("  allocated B=r2 black after the fA flip: %s\n",
              Ok ? "ok" : "FAILED");
  Ok = Ok && D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == Ref(1) && Mu.TmpSrc == Ref(2);
  });
  auto StoreSteps = [&Neutral](const std::string &L) {
    return Neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  Ok = Ok && D.advance(StoreSteps, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull() &&
           M.sysState(S).Mem.heap().field(Ref(2), 0) == Ref(1);
  });
  std::printf("  stored W into B.f with no insertion barrier: %s\n",
              Ok ? "ok" : "FAILED");
  Ok = Ok && D.take("p1:mut:discard", [](const GcSystemState &S) {
    return asMutator(S[1].Local).Roots.count(Ref(1)) == 0;
  });
  std::printf("  dropped W from the roots (only B.f holds it now): %s\n",
              Ok ? "ok" : "FAILED");
  Ok = Ok && D.advance(Neutral, MutDone(HsRound::H5GetRoots));
  std::printf("  root marking done; B already marked, never rescanned: %s\n",
              Ok ? "ok" : "FAILED");
  if (!Ok)
    return 1;

  auto Violated = [&Inv](const GcSystemState &S) {
    return Inv.checkSafetyHeadline(S).has_value();
  };
  if (D.advance(Neutral, Violated, 500'000)) {
    auto V = Inv.checkSafetyHeadline(D.state());
    std::printf("\nSAFETY VIOLATED: %s — %s\n", V->Name.c_str(),
                V->Detail.c_str());
    std::printf("\nviolating state:\n%s",
                describeState(M, D.state()).c_str());
    std::printf("\nW (=r1) was freed by the sweep although roots → B → W.\n");
    return 0;
  }
  std::printf("no violation (unexpected with the barrier removed)\n");
  return 1;
}

/// Replay a recorded successor-index trace against the default (verified)
/// model and print every state it passes through. A bad index — a trace
/// recorded against a different configuration, or simply corrupt — is
/// reported with its step position instead of aborting the process.
int replayTrace(const char *Spec) {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 1;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;

  std::vector<uint32_t> Choices;
  for (const char *P = Spec; *P;) {
    char *End = nullptr;
    Choices.push_back(static_cast<uint32_t>(std::strtoul(P, &End, 10)));
    if (End == P) {
      std::printf("bad choice list near '%s'\n", P);
      return 1;
    }
    P = *End == ',' ? End + 1 : End;
  }

  GcModel M(Cfg);
  ReplayResult R = replayChoices(M, Choices);
  std::printf("replaying %zu choice(s): %zu state(s) reached\n",
              Choices.size(), R.States.size());
  std::printf("\nfinal state:\n%s", describeState(M, R.States.back()).c_str());
  if (!R.ok()) {
    std::printf("\nBAD TRACE: %s\n", R.Error->c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 3 && !std::strcmp(Argv[1], "replay"))
    return replayTrace(Argv[2]);
  bool Deletion = Argc < 2 || std::strcmp(Argv[1], "insertion") != 0;
  return Deletion ? huntDeletion() : huntInsertion();
}
