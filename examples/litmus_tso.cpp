//===- examples/litmus_tso.cpp - Exploring the x86-TSO substrate ----------===//
///
/// \file
/// Enumerates the final outcomes of the classic litmus tests against the
/// Figure 9 memory-system encoding, under TSO and under the SC ablation,
/// and prints them next to the published x86-TSO verdicts (Sewell et al.).
///
/// Run: litmus_tso [bufferBound]
///
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"

#include <cstdio>
#include <cstdlib>

using namespace tsogc;

namespace {

void show(const LitmusTest &T, unsigned Bound, const char *Expect) {
  LitmusStats Stats;
  auto Outcomes = enumerateOutcomes(T, Bound, Stats);
  std::printf("%-10s bound=%u  states=%-6llu outcomes=%zu   expected: %s\n",
              T.Name.c_str(), Bound,
              static_cast<unsigned long long>(Stats.States), Outcomes.size(),
              Expect);
  for (const LitmusOutcome &O : Outcomes)
    std::printf("    %s\n", outcomeToString(O).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Bound = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 2;

  std::printf("x86-TSO litmus outcomes (store buffers bound %u; bound 0 = "
              "sequential consistency)\n\n", Bound);

  std::printf("-- SB: t0{x:=1; r0:=y}  t1{y:=1; r0:=x} --\n");
  show(makeSB(), Bound, "r0=r0=0 ALLOWED under TSO (the relaxation)");
  show(makeSB(), 0, "r0=r0=0 forbidden under SC");

  std::printf("\n-- SB+MFENCE: fences between store and load --\n");
  show(makeSBFenced(), Bound, "r0=r0=0 forbidden (MFENCE restores SC)");

  std::printf("\n-- MP: t0{x:=1; y:=1}  t1{r0:=y; r1:=x} --\n");
  show(makeMP(), Bound, "r0=1 ∧ r1=0 forbidden (TSO keeps store order)");

  std::printf("\n-- LB: t0{r0:=x; y:=1}  t1{r1:=y; x:=1} --\n");
  show(makeLB(), Bound, "r0=1 ∧ r1=1 forbidden (no load-store reordering)");

  std::printf("\n-- CoRR: t0{x:=1}  t1{r0:=x; r1:=x} --\n");
  show(makeCoRR(), Bound, "r0=1 ∧ r1=0 forbidden (read coherence)");

  std::printf("\nThese verdicts match the published x86-TSO model; the same "
              "memory subsystem underlies the GC model.\n");
  return 0;
}
