//===- examples/ledger_service.cpp - The ledger under live verification ---===//
///
/// \file
/// Run the ledger service workload from the command line: open-loop
/// traffic on the GC-managed heap, an operator-style report (latency
/// percentiles, throughput vs offered, worst mutator pause, audited
/// floating garbage, conservation), and the SLO verdict as the exit code.
///
/// Run: ledger_service [options]
///   --threads N     mutator threads               (default 2)
///   --seconds S     measured duration             (default 2.0)
///   --rate R        aggregate offered ops/sec     (default 8000)
///   --accounts N    account id space              (default 192)
///   --seed S        load-generator seed           (default 42)
///   --stw           stop-the-world baseline collector
///   --soak          run under the §3.2 invariant observatory
///   --fuzz SEED     also enable the schedule fuzzer (implies --soak)
///   --trace FILE    write a Chrome trace_event timeline
///
/// --soak is the live-verification mode: every quiescent boundary the
/// observatory snapshots the runtime and checks the §3.2 invariant suite
/// against real ledger traffic; any violation fails the run. With --fuzz
/// the schedule fuzzer perturbs safepoints and handshake handlers so the
/// soak explores more interleavings per second.
///
//===----------------------------------------------------------------------===//

#include "observe/Export.h"
#include "runtime/InvariantObservatory.h"
#include "support/Stats.h"
#include "workload/ledger/Slo.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tsogc;

int main(int Argc, char **Argv) {
  ledger::LedgerRunConfig Cfg;
  Cfg.Rt.HeapObjects = 1u << 14;
  Cfg.Ledger.MaxAccounts = 192;
  Cfg.Ledger.HistoryLimit = 12;
  Cfg.Load.RatePerSec = 8000;
  Cfg.Load.PreCreated = 64;
  Cfg.Threads = 2;
  Cfg.Seconds = 2.0;
  Cfg.OccupancyTrigger = 0.5;

  bool Soak = false;
  const char *TracePath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    auto Val = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) == 0 && I + 1 < Argc)
        return Argv[++I];
      return nullptr;
    };
    if (const char *V = Val("--threads"))
      Cfg.Threads = static_cast<unsigned>(std::atoi(V));
    else if (const char *V = Val("--seconds"))
      Cfg.Seconds = std::atof(V);
    else if (const char *V = Val("--rate"))
      Cfg.Load.RatePerSec = std::atof(V);
    else if (const char *V = Val("--accounts"))
      Cfg.Ledger.MaxAccounts = static_cast<uint32_t>(std::atoi(V));
    else if (const char *V = Val("--seed"))
      Cfg.Seed = static_cast<uint64_t>(std::atoll(V));
    else if (const char *V = Val("--fuzz")) {
      Soak = true;
      Cfg.Rt.FuzzSchedules = static_cast<uint32_t>(std::atoll(V));
    } else if (const char *V = Val("--trace")) {
      TracePath = V;
      Cfg.Rt.Trace = true;
    } else if (std::strcmp(Argv[I], "--stw") == 0)
      Cfg.StopTheWorld = true;
    else if (std::strcmp(Argv[I], "--soak") == 0)
      Soak = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", Argv[I]);
      return 2;
    }
  }
  Cfg.Rt.Observatory = Soak;

  std::printf("ledger: %u threads, %.1fs, %.0f ops/s offered, %u accounts%s%s%s\n\n",
              Cfg.Threads, Cfg.Seconds, Cfg.Load.RatePerSec,
              Cfg.Ledger.MaxAccounts, Cfg.StopTheWorld ? ", STW" : "",
              Soak ? ", observatory" : "",
              Cfg.Rt.FuzzSchedules != 0 ? ", fuzzed schedules" : "");

  ledger::LedgerHarness H(Cfg);
  ledger::LedgerRunResult R = H.run();

  std::printf("traffic:  %llu ops (%llu applied, %llu rejected, %llu "
              "heap-exhausted) in %.2fs\n",
              (unsigned long long)R.OpsTotal, (unsigned long long)R.OpsApplied,
              (unsigned long long)R.OpsRejected,
              (unsigned long long)R.OpsHeapExhausted, R.DurationSec);
  std::printf("          throughput %.0f ops/s of %.0f offered\n",
              R.ThroughputOpsPerSec, R.OfferedOpsPerSec);
  std::printf("latency:  p50 %.0fus  p99 %.0fus  max %.0fus  mean %.0fus "
              "(open-loop: queueing included)\n",
              R.P50Us, R.P99Us, R.MaxUs, R.MeanUs);
  std::printf("gc:       %llu cycles, worst mutator pause %.1fus\n",
              (unsigned long long)R.Cycles,
              static_cast<double>(R.MaxPauseNs) / 1e3);
  std::printf("heap:     %u live, %u floating (ratio %.3f), audit %s",
              R.LiveObjects, R.FloatingGarbage, R.FloatingGarbageRatio,
              R.AuditClean ? "clean" : "NOT CLEAN");
  if (R.Drained)
    std::printf("; after drain: %u unreclaimed (%s)",
                R.UnreclaimedAfterDrain, R.DrainedClean ? "clean" : "DIRTY");
  std::printf("\nledger:   sum(balances) %llu vs minted %llu — %s\n",
              (unsigned long long)R.SumBalances,
              (unsigned long long)R.MintedTotal,
              R.ConservationOk ? "conserved" : "VIOLATED");
  if (Soak)
    std::printf("§3.2:     %llu snapshots, %llu invariant checks, %llu "
                "violations\n",
                (unsigned long long)R.Snapshots,
                (unsigned long long)R.InvariantChecks,
                (unsigned long long)R.InvariantViolations);

  // Latency histogram for the curious.
  Histogram Hist(0.0, 5000.0, 25);
  for (double L : R.LatenciesUs)
    Hist.add(L);
  std::printf("\nop latency histogram (us):\n%s", Hist.render(44).c_str());

  if (Soak) {
    if (auto *Obs = H.runtime().observatory()) {
      for (const auto &V : Obs->violations())
        std::fprintf(stderr, "VIOLATION: %s\n", V.Name.c_str());
    }
  }
  if (TracePath) {
    std::string Json = observe::traceToChromeJson(*H.runtime().traceSink());
    if (observe::writeTextFile(TracePath, Json))
      std::printf("\nwrote trace timeline to %s\n", TracePath);
    else
      std::fprintf(stderr, "cannot write trace to %s\n", TracePath);
  }

  ledger::SloTarget Target;
  if (Cfg.StopTheWorld) {
    // The baseline exists to document its pauses, not to pass them.
    Target.MaxPauseUs = 1e9;
  }
  ledger::SloVerdict Verdict = ledger::checkSlo(Target, R);
  std::printf("\n%s\n", Verdict.summary().c_str());
  if (Soak && R.InvariantViolations > 0)
    return 3;
  return Verdict.Pass ? 0 : 1;
}
