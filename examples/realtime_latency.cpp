//===- examples/realtime_latency.cpp - Mutator latency under collection ---===//
///
/// \file
/// The real-time story, measured from the application's seat: run a
/// workload (list churn / tree building / graph mutation) and record the
/// latency of every mutator step while the collector runs continuously —
/// once on-the-fly, once stop-the-world. Prints the step-latency histogram
/// and tail percentiles of each. The shape the paper's design targets:
/// the on-the-fly tail stays flat (a step is never blocked behind a whole
/// collection), the stop-the-world tail absorbs full mark+sweep pauses.
///
/// Run: realtime_latency [list|tree|graph] [seconds] [--trace FILE]
///
/// With --trace, the on-the-fly configuration runs with event tracing on
/// and writes a Chrome trace_event JSON (open in chrome://tracing or
/// https://ui.perfetto.dev) showing every cycle, phase transition,
/// handshake and sweep batch on a per-thread timeline.
///
//===----------------------------------------------------------------------===//

#include "observe/Export.h"
#include "runtime/GcRuntime.h"
#include "support/Stats.h"
#include "workload/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

struct LatencyResult {
  Histogram Hist{0.0, 50.0, 25}; // microseconds
  RunningStat Stat;
  double P50 = 0, P99 = 0, P999 = 0, Max = 0;
  uint64_t Steps = 0;
  uint64_t Cycles = 0;
  double MaxGcPauseUs = 0; ///< Max handshake-handler time: the pause the
                           ///< collector itself imposes, immune to OS
                           ///< scheduling noise.
};

LatencyResult run(const std::string &Kind, bool StopTheWorld, double Seconds,
                  const char *TracePath = nullptr) {
  RtConfig Cfg;
  Cfg.HeapObjects = 1u << 15;
  Cfg.NumFields = 2;
  Cfg.Trace = TracePath != nullptr;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  auto W = wl::makeWorkload(Kind, *M, 42);

  LatencyResult Res;
  Rt.startCollector(StopTheWorld);
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration<double>(Seconds);
  while (std::chrono::steady_clock::now() < End) {
    auto T0 = std::chrono::steady_clock::now();
    W->step();
    auto T1 = std::chrono::steady_clock::now();
    double Us =
        std::chrono::duration<double, std::micro>(T1 - T0).count();
    Res.Hist.add(Us);
    Res.Stat.add(Us);
    Res.Max = std::max(Res.Max, Us);
    ++Res.Steps;
  }
  W->teardown();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Res.Cycles = Rt.stats().Cycles.load();
  Res.P50 = Res.Hist.quantile(0.50);
  Res.P99 = Res.Hist.quantile(0.99);
  Res.P999 = Res.Hist.quantile(0.999);
  // Handshake handlers and (under STW) whole parks are the pauses the
  // collector imposes; maxPauseNs covers both.
  Res.MaxGcPauseUs = static_cast<double>(M->stats().maxPauseNs()) / 1000.0;
  Rt.deregisterMutator(M);
  if (TracePath) {
    // Collector stopped, mutator deregistered: the rings are quiescent.
    std::string Json = observe::traceToChromeJson(*Rt.traceSink());
    if (observe::writeTextFile(TracePath, Json))
      std::printf("wrote %llu trace events to %s\n",
                  static_cast<unsigned long long>(
                      Rt.traceSink()->totalRecorded()),
                  TracePath);
    else
      std::fprintf(stderr, "cannot write trace to %s\n", TracePath);
  }
  return Res;
}

void report(const char *Name, const LatencyResult &R) {
  std::printf("%-14s steps=%-10llu cycles=%-5llu mean=%6.2fus  p50<%5.1fus  "
              "p99<%5.1fus  p99.9<%5.1fus  max=%8.1fus\n",
              Name, static_cast<unsigned long long>(R.Steps),
              static_cast<unsigned long long>(R.Cycles), R.Stat.mean(),
              R.P50, R.P99, R.P999, R.Max);
  std::printf("%-14s   max GC-imposed pause (handshake handler): %.2f us\n",
              "", R.MaxGcPauseUs);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *TracePath = nullptr;
  std::vector<const char *> Pos;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc)
      TracePath = Argv[++I];
    else
      Pos.push_back(Argv[I]);
  }
  std::string Kind = Pos.size() > 0 ? Pos[0] : "list";
  double Seconds = Pos.size() > 1 ? std::atof(Pos[1]) : 2.0;

  std::printf("workload '%s', %.1fs per configuration; step latency as the "
              "application sees it\n\n", Kind.c_str(), Seconds);

  LatencyResult Otf = run(Kind, /*StopTheWorld=*/false, Seconds, TracePath);
  report("on-the-fly", Otf);
  LatencyResult Stw = run(Kind, /*StopTheWorld=*/true, Seconds);
  report("stop-world", Stw);

  std::printf("\non-the-fly step-latency histogram (us):\n%s",
              Otf.Hist.render(44).c_str());
  std::printf("\nstop-world step-latency histogram (us):\n%s",
              Stw.Hist.render(44).c_str());
  std::printf("\nGC-imposed worst-case pause ratio (stop-world / "
              "on-the-fly): %.0fx\n",
              Otf.MaxGcPauseUs > 0 ? Stw.MaxGcPauseUs / Otf.MaxGcPauseUs
                                   : 0.0);
  std::printf("(raw step maxima also include OS preemption; on a single "
              "hardware thread that\n noise dominates both "
              "configurations — the handshake-handler pause isolates "
              "what\n the collector itself imposes.)\n");
  return 0;
}
