//===- examples/quickstart.cpp - First steps with the runtime collector ---===//
///
/// \file
/// Minimal end-to-end use of the on-the-fly collector: create a runtime,
/// register a mutator, build linked structures through the barriered heap
/// API (Figure 6), run collection cycles concurrently, and read the stats.
///
/// Run: quickstart
///
//===----------------------------------------------------------------------===//

#include "runtime/GcRuntime.h"

#include <cstdio>
#include <thread>

using namespace tsogc::rt;

int main() {
  // 1. Configure a heap: 4096 objects of 2 reference fields each, both
  //    write barriers on (the verified algorithm), validation enabled.
  RtConfig Cfg;
  Cfg.HeapObjects = 4096;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);

  // 2. Register this thread as a mutator and start the collector thread.
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector();

  // 3. Mutate: build chains of objects, drop some, keep others. Every
  //    iteration polls the GC-safe point, where soft handshakes are
  //    serviced (the only collector-induced pause this thread ever takes).
  std::printf("building 100 lists of 50 nodes while collecting...\n");
  for (int List = 0; List < 100; ++List) {
    M->safepoint();
    int Head = M->alloc();
    if (Head < 0) {
      std::this_thread::yield(); // heap momentarily full; let the
      continue;                  // collector thread reclaim
    }
    const size_t HeadIdx = static_cast<size_t>(Head);
    for (int I = 0; I < 49; ++I) {
      M->safepoint();
      int Node = M->alloc();
      if (Node < 0) {
        std::this_thread::yield();
        break;
      }
      // node.field0 := head — both barriers run inside store() — then the
      // new node becomes the rooted head. discard() swaps the last root
      // (the new node) into the vacated slot, so HeadIdx stays the head.
      M->store(/*dst=*/HeadIdx, /*src=*/static_cast<size_t>(Node), 0);
      M->discard(HeadIdx);
    }
    // Keep every 10th list alive, abandon the rest.
    if (List % 10 != 0 && M->numRoots() > 0)
      M->discard(M->numRoots() - 1);
  }

  // 4. Stop the collector thread, servicing handshakes until it exits,
  //    then run two inline cycles so all remaining garbage is reclaimed.
  std::atomic<bool> Stopped{false};
  std::thread Stopper([&] {
    Rt.stopCollector();
    Stopped.store(true);
  });
  while (!Stopped.load()) {
    M->safepoint();
    std::this_thread::yield();
  }
  Stopper.join();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  Rt.collectOnce();
  Rt.collectOnce();

  // 5. Inspect what happened.
  const RtStats &S = Rt.stats();
  std::printf("cycles:            %llu\n",
              static_cast<unsigned long long>(S.Cycles.load()));
  std::printf("objects freed:     %llu\n",
              static_cast<unsigned long long>(S.TotalFreed.load()));
  std::printf("marked by GC:      %llu\n",
              static_cast<unsigned long long>(S.TotalMarkedByCollector.load()));
  std::printf("live objects now:  %u\n", Rt.heap().allocatedCount());
  std::printf("mutator stats:     %llu allocs, %llu stores, %llu barrier "
              "greys, %llu handshakes, max pause %.1f us\n",
              static_cast<unsigned long long>(M->stats().Allocs),
              static_cast<unsigned long long>(M->stats().Stores),
              static_cast<unsigned long long>(M->stats().BarrierMarks),
              static_cast<unsigned long long>(M->stats().HandshakesSeen),
              static_cast<double>(M->stats().MaxHandshakeNs) / 1000.0);

  // 6. Surviving lists are still intact: walk one through validated loads
  //    (any unsafe free would have aborted with a diagnostic).
  if (M->numRoots() > 0) {
    unsigned Len = 1;
    size_t Cur = 0;
    size_t Guard = M->numRoots();
    for (int Next; (Next = M->load(Cur, 0)) >= 0 && Len < 64; ++Len)
      Cur = static_cast<size_t>(Next);
    (void)Guard;
    std::printf("walked a surviving list of %u nodes — all live\n", Len);
  }
  while (M->numRoots() > 0)
    M->discard(0);
  Rt.deregisterMutator(M);
  std::printf("done.\n");
  return 0;
}
