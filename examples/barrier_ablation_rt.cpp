//===- examples/barrier_ablation_rt.cpp - The §3.2 race, caught live ------===//
///
/// \file
/// Reproduces the paper's deletion-barrier ablation on real hardware. The
/// model explorer proves that without the deletion barrier a mutator can
/// hide a live object from the collector: load a reference out of a field
/// (no read barrier — §2.1), overwrite the field, and hold the object only
/// in its roots after the get-roots handshake already passed. The collector
/// never learns of it and sweeps a reachable object.
///
/// This program runs exactly that adversary against the real runtime with
/// the invariant observatory on. In `ablated` mode (deletion barrier off)
/// the observatory catches the §3.2 violations the explorer predicts —
/// "reachable-snapshot" once roots are collected, "free-precondition" at
/// sweep, "safety-headline" after the object is freed. In `stock` mode the
/// same schedule produces zero violations: the deletion barrier greys the
/// hidden object.
///
/// Run: barrier_ablation_rt stock|ablated [workers] [cycles] [fuzz-seed]
/// Exit status 0 iff the mode's expectation held (ablated: at least one
/// violation; stock: none).
///
//===----------------------------------------------------------------------===//

#include "runtime/GcRuntime.h"
#include "runtime/InvariantObservatory.h"
#include "runtime/RtObserve.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

/// The adversary: one attempt per cycle. Wait for this cycle's get-roots
/// handshake, then race the collector — load B.f0 into a root (no
/// barrier), overwrite B.f0, and hold the loaded object only in the root
/// set the collector has already scanned.
void adversary(GcRuntime &Rt, MutatorContext *M, unsigned Attempts,
               std::atomic<bool> &Done) {
  // Permanent root B with B.f0 = W: the object the race will hide.
  int B = M->alloc();
  int W = M->alloc();
  M->store(static_cast<size_t>(W), static_cast<size_t>(B), 0);
  M->discard(static_cast<size_t>(W));

  for (unsigned A = 0; A < Attempts; ++A) {
    // Phase 1: service handshakes until our roots have been collected
    // (the get-roots round bumps RootsMarked — B is white each cycle).
    const uint64_t Roots0 = M->stats().RootsMarked;
    while (M->stats().RootsMarked == Roots0)
      M->safepoint();

    // Phase 2: the racy window, with no safepoint inside. The observatory
    // parks us at the H5 boundary, which waits for our NEXT safepoint —
    // so the H5 snapshot always sees the post-race state.
    int Ri = M->load(static_cast<size_t>(B), 0); // W rooted, no barrier
    int Xi = M->alloc();
    if (Xi >= 0) {
      // Ablated: the old B.f0 (= W) is overwritten un-greyed; W is now
      // reachable only through Ri, which the collector already scanned.
      M->store(static_cast<size_t>(Xi), static_cast<size_t>(B), 0);
      M->discard(static_cast<size_t>(Xi));
    }

    // Phase 3: hold Ri across mark and sweep — the §3.2 safety property
    // says W must survive; the ablation frees it under us.
    const uint64_t Cycle0 = Rt.stats().Cycles.load(std::memory_order_relaxed);
    while (Rt.stats().Cycles.load(std::memory_order_relaxed) == Cycle0)
      M->safepoint();
    // Drop the (possibly dangling) root before the next get-roots round
    // would validate it; discard itself never dereferences.
    if (Ri >= 0)
      M->discard(static_cast<size_t>(Ri));
  }
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  Done.store(true, std::memory_order_release);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2 || (std::strcmp(Argv[1], "stock") != 0 &&
                   std::strcmp(Argv[1], "ablated") != 0)) {
    std::fprintf(stderr,
                 "usage: %s stock|ablated [workers] [cycles] [fuzz-seed]\n",
                 Argv[0]);
    return 2;
  }
  const bool Ablated = std::strcmp(Argv[1], "ablated") == 0;
  const unsigned Workers =
      Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 1;
  const unsigned Attempts =
      Argc > 3 ? static_cast<unsigned>(std::atoi(Argv[3])) : 20;
  const uint32_t FuzzSeed =
      Argc > 4 ? static_cast<uint32_t>(std::atoi(Argv[4])) : 0;

  RtConfig Cfg;
  Cfg.HeapObjects = 4096;
  Cfg.NumFields = 2;
  Cfg.MarkWorkers = Workers;
  Cfg.DeletionBarrier = !Ablated;
  Cfg.Observatory = true;
  Cfg.FuzzSchedules = FuzzSeed;
  Cfg.FuzzMaxDelayUs = 50;
  // Validation stays on: the example holds the dangling root without
  // dereferencing it, so the observatory — not the epoch check — is what
  // reports the unsafe free.
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();

#ifdef TSOGC_ABLATE_DELETION_BARRIER
  std::printf("note: built with TSOGC_ABLATE_DELETION_BARRIER — the "
              "deletion barrier is compiled out; 'stock' mode is ablated "
              "too.\n");
#endif
  std::printf("mode=%s workers=%u attempts=%u fuzz-seed=%u\n",
              Ablated ? "ablated" : "stock", Workers, Attempts, FuzzSeed);

  std::atomic<bool> Done{false};
  std::thread T([&] { adversary(Rt, M, Attempts, Done); });
  while (!Done.load(std::memory_order_acquire))
    Rt.collectOnce();
  T.join();

  InvariantObservatory *Obs = Rt.observatory();
  auto Violations = Obs->violations();

  std::printf("\ncycles=%llu snapshots=%llu checked=%llu violations=%llu\n",
              static_cast<unsigned long long>(Rt.stats().Cycles.load()),
              static_cast<unsigned long long>(Obs->snapshotCount()),
              static_cast<unsigned long long>(Obs->checked()),
              static_cast<unsigned long long>(Obs->violationCount()));
  const uint64_t Snaps = Obs->snapshotCount();
  std::printf("snapshot overhead: avg=%.1f us max=%.1f us (stop window, "
              "measured)\n",
              Snaps ? static_cast<double>(Obs->snapshotNsTotal()) /
                          static_cast<double>(Snaps) / 1000.0
                    : 0.0,
              static_cast<double>(Obs->maxSnapshotNs()) / 1000.0);

  for (size_t I = 0; I < Violations.size() && I < 8; ++I) {
    const auto &V = Violations[I];
    std::printf("violation[%zu]: %s at %s (cycle %llu): %s\n", I,
                V.Name.c_str(), observe::rtHsBoundaryName(V.Boundary),
                static_cast<unsigned long long>(V.Cycle), V.Detail.c_str());
  }
  if (Violations.size() > 8)
    std::printf("... (%zu more)\n", Violations.size() - 8);
  if (!Violations.empty())
    std::printf("\nfirst violation state dump:\n%s",
                Violations.front().Dump.c_str());

  std::printf("\nmodel correspondence: the exhaustive explorer "
              "(model_explore --no-deletion-barrier) proves this ablation "
              "unsafe — it trips the in-flight marked-deletions ghost "
              "first, and the persistent boundary violations it implies "
              "(reachable-snapshot, free-precondition, safety-headline) "
              "are the ones the observatory reproduces on hardware "
              "(docs/MODEL_CORRESPONDENCE.md).\n");

  const bool Expect = Ablated ? !Violations.empty() : Violations.empty();
  std::printf("%s: expected %s, observed %llu violation(s)\n",
              Expect ? "PASS" : "FAIL",
              Ablated ? "at least one violation" : "no violations",
              static_cast<unsigned long long>(Violations.size()));
  return Expect ? 0 : 1;
}
