//===- cimp/System.h - Flat parallel composition (Figure 8) --------------===//
///
/// \file
/// The CIMP system semantics: a map from process names to local states,
/// stepped by interleaving process-local τ transitions and sender/receiver
/// rendezvous pairs. Successor enumeration is deterministic (processes in
/// index order, branches in program order), so a trace can be replayed as a
/// sequence of successor indices.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_CIMP_SYSTEM_H
#define TSOGC_CIMP_SYSTEM_H

#include "cimp/Cimp.h"

#include <string>
#include <vector>

namespace tsogc::cimp {

/// Global state: one ProcState per process (Figure 8's map s).
template <typename D> using SystemState = std::vector<ProcState<D>>;

/// One enabled transition out of a system state.
template <typename D> struct Successor {
  /// Human-readable description, e.g. "m0:mark-cas <-> sys:mem".
  std::string Label;
  /// Acting process, and its atomic command.
  uint8_t P = 0;
  CmdId PCmd = InvalidCmd;
  /// Rendezvous partner (receiver), if any.
  bool IsRendezvous = false;
  uint8_t Q = 0;
  CmdId QCmd = InvalidCmd;
  /// The complete post-state.
  SystemState<D> State;
};

/// A parallel composition of CIMP processes over one domain. Holds
/// non-owning pointers to the per-process programs, which must outlive it.
template <typename D> class System {
public:
  using L = typename D::LocalState;
  using Rsp = typename D::Response;

  explicit System(std::vector<const Program<D> *> Progs)
      : Programs(std::move(Progs)) {
    TSOGC_CHECK(!Programs.empty(), "system needs at least one process");
    TSOGC_CHECK(Programs.size() < 250, "too many processes");
  }

  unsigned numProcs() const { return static_cast<unsigned>(Programs.size()); }
  const Program<D> &program(unsigned P) const { return *Programs[P]; }

  /// Initial state: every process at its program's entry with the given
  /// local data state.
  SystemState<D> initialState(std::vector<L> Locals) const {
    TSOGC_CHECK(Locals.size() == Programs.size(),
                "one initial local state per process");
    SystemState<D> S;
    S.reserve(Locals.size());
    for (size_t P = 0; P < Locals.size(); ++P) {
      ProcState<D> PS;
      PS.Stack.push_back(Programs[P]->entry());
      PS.Local = std::move(Locals[P]);
      S.push_back(std::move(PS));
    }
    return S;
  }

  /// Enumerate all successors of \p S in deterministic order.
  ///
  /// Const-thread-safe: reads only the (immutable) program arenas and \p S,
  /// with all normalization scratch in locals, so concurrent calls on the
  /// same System from parallel explorer workers are safe. Domain callbacks
  /// (LocalFn/ActFn/RespFn/RecvFn) must uphold this by not mutating
  /// captured state — the GC domain's never do.
  void successors(const SystemState<D> &S,
                  std::vector<Successor<D>> &Out) const {
    // Normalized heads per process, computed once.
    std::vector<std::vector<PendingStep<D>>> Heads(S.size());
    for (size_t P = 0; P < S.size(); ++P)
      normalize(*Programs[P], S[P].Stack, S[P].Local, Heads[P]);

    for (size_t P = 0; P < S.size(); ++P) {
      for (const PendingStep<D> &Step : Heads[P]) {
        const auto &C = Programs[P]->cmd(Step.Head);
        switch (C.Kind) {
        case CmdKind::LocalOp:
          emitLocal(S, static_cast<uint8_t>(P), Step, Out);
          break;
        case CmdKind::Request:
          // Pair with every Response head of every other process.
          for (size_t Q = 0; Q < S.size(); ++Q) {
            if (Q == P)
              continue;
            for (const PendingStep<D> &RStep : Heads[Q])
              if (Programs[Q]->cmd(RStep.Head).Kind == CmdKind::Response)
                emitRendezvous(S, static_cast<uint8_t>(P), Step,
                               static_cast<uint8_t>(Q), RStep, Out);
          }
          break;
        case CmdKind::Response:
          // Handled from the requesting side.
          break;
        default:
          TSOGC_UNREACHABLE("normalize returned a non-atomic head");
        }
      }
    }
  }

  /// Convenience: successors as a fresh vector.
  std::vector<Successor<D>> successors(const SystemState<D> &S) const {
    std::vector<Successor<D>> Out;
    successors(S, Out);
    return Out;
  }

private:
  void emitLocal(const SystemState<D> &S, uint8_t P,
                 const PendingStep<D> &Step,
                 std::vector<Successor<D>> &Out) const {
    const auto &C = Programs[P]->cmd(Step.Head);
    std::vector<L> Nexts;
    C.Local(S[P].Local, Nexts);
    for (L &Next : Nexts) {
      Successor<D> Succ;
      Succ.Label = format("p%u:%s", P, C.Label.c_str());
      Succ.P = P;
      Succ.PCmd = Step.Head;
      Succ.State = S;
      Succ.State[P].Stack = Step.Continuation;
      Succ.State[P].Local = std::move(Next);
      Out.push_back(std::move(Succ));
    }
  }

  void emitRendezvous(const SystemState<D> &S, uint8_t P,
                      const PendingStep<D> &PStep, uint8_t Q,
                      const PendingStep<D> &QStep,
                      std::vector<Successor<D>> &Out) const {
    const auto &PC = Programs[P]->cmd(PStep.Head);
    const auto &QC = Programs[Q]->cmd(QStep.Head);
    auto Alpha = PC.Act(S[P].Local);
    std::vector<std::pair<L, Rsp>> Resps;
    QC.Resp(Alpha, S[Q].Local, Resps);
    for (auto &[QLocal, Beta] : Resps) {
      std::vector<L> PNexts;
      PC.Recv(S[P].Local, Beta, PNexts);
      for (L &PNext : PNexts) {
        Successor<D> Succ;
        Succ.Label = format("p%u:%s <-> p%u:%s", P, PC.Label.c_str(), Q,
                            QC.Label.c_str());
        Succ.P = P;
        Succ.PCmd = PStep.Head;
        Succ.IsRendezvous = true;
        Succ.Q = Q;
        Succ.QCmd = QStep.Head;
        Succ.State = S;
        Succ.State[P].Stack = PStep.Continuation;
        Succ.State[P].Local = std::move(PNext);
        Succ.State[Q].Stack = QStep.Continuation;
        Succ.State[Q].Local = QLocal;
        Out.push_back(std::move(Succ));
      }
    }
  }

  std::vector<const Program<D> *> Programs;
};

} // namespace tsogc::cimp

#endif // TSOGC_CIMP_SYSTEM_H
