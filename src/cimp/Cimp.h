//===- cimp/Cimp.h - The CIMP process language (Figures 7 and 8) ---------===//
///
/// \file
/// CIMP is the small imperative language the paper uses as the contract
/// between run-time system designers and the formal model: IMP plus
/// process-algebra-style rendezvous, control and data nondeterminism, and
/// flat parallel composition. This is a deep embedding of its commands and
/// an executable version of the small-step semantics:
///
///   * local state per process, no shared global state;
///   * LOCALOP R — nondeterministic local update (R is set-valued);
///   * REQUEST act val / RESPONSE act — two processes rendezvous: the
///     sender computes α from its local state, the receiver
///     nondeterministically produces (s', β) from (α, s), and the sender
///     then folds β into its own state (Figure 7);
///   * sequential composition via frame stacks; IF/WHILE/LOOP/CHOICE.
///
/// Successor enumeration implements the system semantics of Figure 8:
/// interleaving of process-local τ steps and sender/receiver rendezvous
/// pairs. Control-flow unfolding (Seq, If, While, Loop) reads only the local
/// state, so it is folded into the following atomic action, matching the
/// evaluation-context semantics the paper derives "in terms of atomic
/// actions".
///
/// The embedding is templated over a Domain D supplying:
///   D::LocalState  — copyable, equality-comparable local data state;
///   D::Request     — the α values;
///   D::Response    — the β values.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_CIMP_CIMP_H
#define TSOGC_CIMP_CIMP_H

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tsogc::cimp {

/// Index of a command within its Program's arena.
using CmdId = uint32_t;
inline constexpr CmdId InvalidCmd = ~0u;

enum class CmdKind : uint8_t {
  LocalOp,  ///< {l} LOCALOP R
  Request,  ///< {l} REQUEST act val
  Response, ///< {l} RESPONSE act
  Seq,      ///< c1 ;; c2 ;; …
  Choice,   ///< nondeterministic choice (⊔)
  If,       ///< IF b THEN c1 ELSE c2
  While,    ///< WHILE b DO c
  Loop,     ///< LOOP c (forever)
  Nop       ///< skip: consumed during normalization, not an atomic step
};

/// A CIMP program: an arena of commands plus an entry point. Programs are
/// built once per model configuration and shared by all explorations; control
/// state is a stack of CmdIds into the arena, so states serialize compactly.
template <typename D> class Program {
public:
  using L = typename D::LocalState;
  using Req = typename D::Request;
  using Rsp = typename D::Response;

  /// Set-valued local update: append successor local states.
  using LocalFn = std::function<void(const L &, std::vector<L> &)>;
  /// Boolean expression over the local state.
  using GuardFn = std::function<bool(const L &)>;
  /// The sender's act: α as a function of its local state.
  using ActFn = std::function<Req(const L &)>;
  /// The sender's val: fold β into the local state (set-valued).
  using RecvFn =
      std::function<void(const L &, const Rsp &, std::vector<L> &)>;
  /// The receiver's act: enumerate (s', β) pairs for a given α.
  using RespFn = std::function<void(const Req &, const L &,
                                    std::vector<std::pair<L, Rsp>> &)>;

  struct Command {
    CmdKind Kind;
    std::string Label;
    LocalFn Local;
    GuardFn Guard;
    ActFn Act;
    RecvFn Recv;
    RespFn Resp;
    std::vector<CmdId> Children;
  };

  /// {Label} LOCALOP Fn — nondeterministic local step.
  CmdId localOp(std::string Label, LocalFn Fn) {
    Command C;
    C.Kind = CmdKind::LocalOp;
    C.Label = std::move(Label);
    C.Local = std::move(Fn);
    return push(std::move(C));
  }

  /// Deterministic local step (common case).
  CmdId localDet(std::string Label, std::function<void(L &)> Fn) {
    return localOp(std::move(Label), [Fn](const L &S, std::vector<L> &Out) {
      L Next = S;
      Fn(Next);
      Out.push_back(std::move(Next));
    });
  }

  /// A no-op (the paper's nop). Skips are erased during control-flow
  /// normalization: they are not atomic steps and create no interleaving
  /// points (stuttering equivalence).
  CmdId nop(std::string Label) {
    Command C;
    C.Kind = CmdKind::Nop;
    C.Label = std::move(Label);
    return push(std::move(C));
  }

  /// {Label} REQUEST Act Recv.
  CmdId request(std::string Label, ActFn Act, RecvFn Recv) {
    Command C;
    C.Kind = CmdKind::Request;
    C.Label = std::move(Label);
    C.Act = std::move(Act);
    C.Recv = std::move(Recv);
    return push(std::move(C));
  }

  /// Request that ignores the response value.
  CmdId requestIgnore(std::string Label, ActFn Act) {
    return request(std::move(Label), std::move(Act),
                   [](const L &S, const Rsp &, std::vector<L> &Out) {
                     Out.push_back(S);
                   });
  }

  /// {Label} RESPONSE Resp.
  CmdId response(std::string Label, RespFn Resp) {
    Command C;
    C.Kind = CmdKind::Response;
    C.Label = std::move(Label);
    C.Resp = std::move(Resp);
    return push(std::move(C));
  }

  /// c1 ;; c2 ;; …
  CmdId seq(std::vector<CmdId> Cs) {
    TSOGC_CHECK(!Cs.empty(), "empty Seq");
    if (Cs.size() == 1)
      return Cs.front();
    Command C;
    C.Kind = CmdKind::Seq;
    C.Children = std::move(Cs);
    return push(std::move(C));
  }

  /// Nondeterministic choice among alternatives.
  CmdId choice(std::vector<CmdId> Alts) {
    TSOGC_CHECK(!Alts.empty(), "empty Choice");
    Command C;
    C.Kind = CmdKind::Choice;
    C.Children = std::move(Alts);
    return push(std::move(C));
  }

  CmdId ifThenElse(GuardFn G, CmdId Then, CmdId Else) {
    Command C;
    C.Kind = CmdKind::If;
    C.Guard = std::move(G);
    C.Children = {Then, Else};
    return push(std::move(C));
  }

  /// IF b THEN c (empty else).
  CmdId ifThen(GuardFn G, CmdId Then) {
    return ifThenElse(std::move(G), Then, nop("skip"));
  }

  CmdId whileLoop(GuardFn G, CmdId Body) {
    Command C;
    C.Kind = CmdKind::While;
    C.Guard = std::move(G);
    C.Children = {Body};
    return push(std::move(C));
  }

  /// Non-terminating loop.
  CmdId loop(CmdId Body) {
    Command C;
    C.Kind = CmdKind::Loop;
    C.Children = {Body};
    return push(std::move(C));
  }

  void setEntry(CmdId C) { Entry = C; }
  CmdId entry() const { return Entry; }

  const Command &cmd(CmdId Id) const {
    TSOGC_CHECK(Id < Cmds.size(), "command id out of range");
    return Cmds[Id];
  }
  size_t size() const { return Cmds.size(); }

  /// Render the command tree rooted at \p Id, for tests and documentation.
  std::string dump(CmdId Id, unsigned Indent = 0) const {
    std::string Pad(Indent * 2, ' ');
    const Command &C = cmd(Id);
    switch (C.Kind) {
    case CmdKind::LocalOp:
      return Pad + "{" + C.Label + "} LOCALOP\n";
    case CmdKind::Request:
      return Pad + "{" + C.Label + "} REQUEST\n";
    case CmdKind::Response:
      return Pad + "{" + C.Label + "} RESPONSE\n";
    case CmdKind::Seq: {
      std::string Out = Pad + "SEQ\n";
      for (CmdId Ch : C.Children)
        Out += dump(Ch, Indent + 1);
      return Out;
    }
    case CmdKind::Choice: {
      std::string Out = Pad + "CHOICE\n";
      for (CmdId Ch : C.Children)
        Out += dump(Ch, Indent + 1);
      return Out;
    }
    case CmdKind::If:
      return Pad + "IF\n" + dump(C.Children[0], Indent + 1) + Pad + "ELSE\n" +
             dump(C.Children[1], Indent + 1);
    case CmdKind::While:
      return Pad + "WHILE\n" + dump(C.Children[0], Indent + 1);
    case CmdKind::Loop:
      return Pad + "LOOP\n" + dump(C.Children[0], Indent + 1);
    case CmdKind::Nop:
      return Pad + "{" + C.Label + "} SKIP\n";
    }
    TSOGC_UNREACHABLE("bad CmdKind");
  }

private:
  CmdId push(Command C) {
    Cmds.push_back(std::move(C));
    return static_cast<CmdId>(Cmds.size() - 1);
  }

  std::vector<Command> Cmds;
  CmdId Entry = InvalidCmd;
};

/// The local state of one process: a frame stack of pending commands plus
/// the data state (Figure 7 pairs exactly these).
template <typename D> struct ProcState {
  std::vector<CmdId> Stack; ///< Top = back.
  typename D::LocalState Local;

  bool terminated() const { return Stack.empty(); }
  bool operator==(const ProcState &O) const = default;
};

/// A normalized head: the next atomic command plus the continuation stack
/// that remains after it executes.
template <typename D> struct PendingStep {
  CmdId Head;
  std::vector<CmdId> Continuation;
};

/// Unfold control flow until atomic heads are exposed. Branches only at
/// Choice; If/While guards are deterministic in the local state.
template <typename D>
void normalize(const Program<D> &Prog, std::vector<CmdId> Stack,
               const typename D::LocalState &Local,
               std::vector<PendingStep<D>> &Out, unsigned Depth = 0) {
  TSOGC_CHECK(Depth < 4096,
              "control-flow normalization diverged (loop with no atomic op?)");
  while (!Stack.empty()) {
    CmdId Top = Stack.back();
    const auto &C = Prog.cmd(Top);
    switch (C.Kind) {
    case CmdKind::LocalOp:
    case CmdKind::Request:
    case CmdKind::Response: {
      Stack.pop_back();
      Out.push_back(PendingStep<D>{Top, std::move(Stack)});
      return;
    }
    case CmdKind::Seq:
      Stack.pop_back();
      for (auto It = C.Children.rbegin(); It != C.Children.rend(); ++It)
        Stack.push_back(*It);
      break;
    case CmdKind::Choice: {
      Stack.pop_back();
      for (CmdId Alt : C.Children) {
        std::vector<CmdId> Branch = Stack;
        Branch.push_back(Alt);
        normalize(Prog, std::move(Branch), Local, Out, Depth + 1);
      }
      return;
    }
    case CmdKind::If: {
      bool B = C.Guard(Local);
      Stack.pop_back();
      Stack.push_back(B ? C.Children[0] : C.Children[1]);
      break;
    }
    case CmdKind::While: {
      bool B = C.Guard(Local);
      if (!B) {
        Stack.pop_back();
        break;
      }
      // Keep the While frame beneath a fresh body instance.
      Stack.push_back(C.Children[0]);
      ++Depth;
      TSOGC_CHECK(Depth < 4096, "while-loop normalization diverged");
      break;
    }
    case CmdKind::Loop:
      Stack.push_back(C.Children[0]);
      ++Depth;
      TSOGC_CHECK(Depth < 4096, "loop normalization diverged");
      break;
    case CmdKind::Nop:
      Stack.pop_back();
      break;
    }
  }
  // Empty stack: the process has terminated; no steps.
}

} // namespace tsogc::cimp

#endif // TSOGC_CIMP_CIMP_H
