//===- heap/Color.h - The tricolor abstraction (§2.1, §3.2) --------------===//
///
/// \file
/// Executable interpretation of colors from §3.2:
///   white — not marked on the heap,
///   grey  — on a work-list or some process's ghost_honorary_grey,
///   black — marked on the heap and not grey.
/// Because marking is not atomic under TSO+CAS, white and grey overlap
/// transiently (during the CAS window); black is disjoint from both.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_HEAP_COLOR_H
#define TSOGC_HEAP_COLOR_H

#include "heap/Heap.h"

#include <vector>

namespace tsogc {

enum class Color : uint8_t {
  White, ///< Unmarked: a candidate for reclamation.
  Grey,  ///< Known reached, not yet processed (on a work-list / honorary).
  Black, ///< Reached and processed.
};

/// A view over a heap assigning colors. GreyRefs is the union of all
/// work-lists and all ghost_honorary_grey registers; MarkSense is the
/// authoritative fM.
class ColorView {
public:
  ColorView(const Heap &H, bool MarkSense, std::vector<Ref> GreyRefs);

  /// True iff \p R is on some work-list or honorary grey.
  bool isGrey(Ref R) const;

  /// True iff \p R is unmarked relative to the mark sense. Note that a grey
  /// object can still be white during the CAS window.
  bool isWhite(Ref R) const;

  /// True iff \p R is marked and not grey.
  bool isBlack(Ref R) const;

  /// The dominant color for reporting: grey wins over white/black
  /// (the ghost state resolves the overlap exactly as in the paper).
  Color color(Ref R) const;

  /// True iff \p R is grey-protected: grey itself, or white and reachable
  /// from some grey object via a chain of white objects (Figure 1).
  bool isGreyProtected(Ref R) const;

  const Heap &heap() const { return H; }
  bool markSense() const { return MarkSense; }
  const std::vector<Ref> &greys() const { return Greys; }

private:
  const Heap &H;
  bool MarkSense;
  std::vector<Ref> Greys; // sorted, deduplicated, nulls removed
};

} // namespace tsogc

#endif // TSOGC_HEAP_COLOR_H
