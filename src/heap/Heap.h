//===- heap/Heap.h - The model heap: a partial map Ref -> Object ---------===//
///
/// \file
/// The heap of §3.1: a partial map from references to objects, where an
/// object is a GC mark plus a partial map from fields to Ref ∪ {NULL}.
/// The domain of the map tracks free references; allocation inserts at an
/// arbitrary free reference, free removes. Reachability ("a path always goes
/// via the heap", §3.2) is computed here.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_HEAP_HEAP_H
#define TSOGC_HEAP_HEAP_H

#include "heap/Ref.h"

#include <string>
#include <vector>

namespace tsogc {

/// An allocated object: one mark flag and a fixed tuple of reference fields.
struct Object {
  /// The mark bit. Its interpretation (black/white) is relative to the
  /// current mark sense fM; see Color.h.
  bool MarkFlag = false;

  /// Reference fields; entries may be null.
  std::vector<Ref> Fields;

  explicit Object(unsigned NumFields, bool Flag = false)
      : MarkFlag(Flag), Fields(NumFields, Ref::null()) {}
  Object() = default;

  bool operator==(const Object &O) const = default;
};

/// A bounded-universe heap. The reference universe {0..NumRefs-1} is fixed
/// at construction (the paper's arbitrary finite R for a model instance);
/// each slot is either free or holds an object.
class Heap {
public:
  Heap(unsigned NumRefs, unsigned NumFields);

  unsigned numRefs() const { return static_cast<unsigned>(Slots.size()); }
  unsigned numFields() const { return NumFields; }

  /// True iff \p R is non-null and currently allocated (the paper's
  /// valid_ref predicate).
  bool isValid(Ref R) const;

  /// Number of allocated objects.
  unsigned numAllocated() const { return AllocatedCount; }

  /// All currently allocated references, in index order.
  std::vector<Ref> allocatedRefs() const;

  /// Some free reference, or null if the heap is full. Deterministic
  /// (lowest index) — the model's nondeterministic choice of allocation
  /// target is exercised via allocAt over freeRefs().
  Ref firstFreeRef() const;

  /// All free references.
  std::vector<Ref> freeRefs() const;

  /// Allocate a fresh object at free slot \p R with mark \p Flag and all
  /// fields null. \p R must be free.
  void allocAt(Ref R, bool Flag);

  /// Remove the object at \p R from the heap. \p R must be valid.
  void free(Ref R);

  /// Accessors; all require isValid(R).
  bool markFlag(Ref R) const;
  void setMarkFlag(Ref R, bool Flag);
  Ref field(Ref R, FieldId F) const;
  void setField(Ref R, FieldId F, Ref Value);
  const Object &object(Ref R) const;

  /// The set of references reachable from \p Roots by following heap fields
  /// (reflexive-transitive). Null and dangling roots are ignored: a root that
  /// is not backed by an object reaches nothing, but *is* itself reported if
  /// non-null, because the safety property quantifies over reachable
  /// references, which includes the roots themselves.
  std::vector<Ref> reachableFrom(const std::vector<Ref> &Roots) const;

  /// True iff \p Target is reachable from \p From via a chain of objects
  /// whose mark flag differs from \p MarkSense (a "white chain" in the sense
  /// of Figure 1), including the zero-length chain (From == Target). Both
  /// intermediate objects and Target must be white; From itself is the grey
  /// anchor and may have any color.
  bool whiteReachable(Ref From, Ref Target, bool MarkSense) const;

  /// Append a canonical byte encoding (for model-checker visited sets).
  void encode(std::string &Out) const;

  bool operator==(const Heap &H) const = default;

private:
  struct Slot {
    bool Allocated = false;
    Object Obj;
    bool operator==(const Slot &S) const = default;
  };

  unsigned NumFields;
  unsigned AllocatedCount = 0;
  std::vector<Slot> Slots;
};

} // namespace tsogc

#endif // TSOGC_HEAP_HEAP_H
