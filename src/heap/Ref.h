//===- heap/Ref.h - References and field identifiers ---------------------===//
///
/// \file
/// The paper fixes an arbitrary non-empty set of references R and treats the
/// heap as a partial map from R to objects (§3.1). In the executable model R
/// is {0, …, NumRefs-1}; Ref is a value type over that set with a distinct
/// null, matching "R ∪ {NULL}" for field contents.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_HEAP_REF_H
#define TSOGC_HEAP_REF_H

#include <cstdint>
#include <functional>

namespace tsogc {

/// A heap reference, or null. Small and trivially copyable so model states
/// stay compact.
class Ref {
public:
  /// Constructs the null reference.
  constexpr Ref() : Index(NullIndex) {}

  /// Constructs a reference to slot \p Idx.
  constexpr explicit Ref(uint16_t Idx) : Index(Idx) {}

  static constexpr Ref null() { return Ref(); }

  constexpr bool isNull() const { return Index == NullIndex; }
  constexpr uint16_t index() const { return Index; }

  friend constexpr bool operator==(Ref A, Ref B) { return A.Index == B.Index; }
  friend constexpr bool operator!=(Ref A, Ref B) { return A.Index != B.Index; }
  friend constexpr bool operator<(Ref A, Ref B) { return A.Index < B.Index; }

  /// Raw encoding for state serialization.
  constexpr uint16_t raw() const { return Index; }
  static constexpr Ref fromRaw(uint16_t Raw) {
    Ref R;
    R.Index = Raw;
    return R;
  }

private:
  static constexpr uint16_t NullIndex = 0xffff;
  uint16_t Index;
};

/// Field selector within an object. Objects in the model have a fixed small
/// number of reference fields (non-reference payloads are abstracted away,
/// §3.1).
using FieldId = uint8_t;

} // namespace tsogc

template <> struct std::hash<tsogc::Ref> {
  size_t operator()(tsogc::Ref R) const noexcept {
    return std::hash<uint16_t>()(R.raw());
  }
};

#endif // TSOGC_HEAP_REF_H
