//===- heap/Heap.cpp ------------------------------------------------------===//

#include "heap/Heap.h"

#include "support/Assert.h"

#include <algorithm>

using namespace tsogc;

Heap::Heap(unsigned NumRefs, unsigned NumFields)
    : NumFields(NumFields), Slots(NumRefs) {
  TSOGC_CHECK(NumRefs > 0, "the reference universe must be non-empty");
  TSOGC_CHECK(NumRefs < 0xffff, "reference universe exceeds Ref encoding");
}

bool Heap::isValid(Ref R) const {
  return !R.isNull() && R.index() < Slots.size() && Slots[R.index()].Allocated;
}

std::vector<Ref> Heap::allocatedRefs() const {
  std::vector<Ref> Out;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (Slots[I].Allocated)
      Out.push_back(Ref(static_cast<uint16_t>(I)));
  return Out;
}

Ref Heap::firstFreeRef() const {
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (!Slots[I].Allocated)
      return Ref(static_cast<uint16_t>(I));
  return Ref::null();
}

std::vector<Ref> Heap::freeRefs() const {
  std::vector<Ref> Out;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (!Slots[I].Allocated)
      Out.push_back(Ref(static_cast<uint16_t>(I)));
  return Out;
}

void Heap::allocAt(Ref R, bool Flag) {
  TSOGC_CHECK(!R.isNull() && R.index() < Slots.size() &&
                  !Slots[R.index()].Allocated,
              "allocAt requires a free reference");
  Slots[R.index()].Allocated = true;
  Slots[R.index()].Obj = Object(NumFields, Flag);
  ++AllocatedCount;
}

void Heap::free(Ref R) {
  TSOGC_CHECK(isValid(R), "free requires a valid reference");
  Slots[R.index()].Allocated = false;
  Slots[R.index()].Obj = Object();
  --AllocatedCount;
}

bool Heap::markFlag(Ref R) const {
  TSOGC_CHECK(isValid(R), "markFlag requires a valid reference");
  return Slots[R.index()].Obj.MarkFlag;
}

void Heap::setMarkFlag(Ref R, bool Flag) {
  TSOGC_CHECK(isValid(R), "setMarkFlag requires a valid reference");
  Slots[R.index()].Obj.MarkFlag = Flag;
}

Ref Heap::field(Ref R, FieldId F) const {
  TSOGC_CHECK(isValid(R), "field requires a valid reference");
  TSOGC_CHECK(F < NumFields, "field index out of range");
  return Slots[R.index()].Obj.Fields[F];
}

void Heap::setField(Ref R, FieldId F, Ref Value) {
  TSOGC_CHECK(isValid(R), "setField requires a valid reference");
  TSOGC_CHECK(F < NumFields, "field index out of range");
  Slots[R.index()].Obj.Fields[F] = Value;
}

const Object &Heap::object(Ref R) const {
  TSOGC_CHECK(isValid(R), "object requires a valid reference");
  return Slots[R.index()].Obj;
}

std::vector<Ref> Heap::reachableFrom(const std::vector<Ref> &Roots) const {
  std::vector<bool> Seen(Slots.size() + 1, false);
  std::vector<Ref> Work;
  std::vector<Ref> Out;
  auto Visit = [&](Ref R) {
    if (R.isNull())
      return;
    // Dangling refs index Slots.size() bucket? They still have valid indices
    // into Seen because the universe is fixed.
    if (Seen[R.index()])
      return;
    Seen[R.index()] = true;
    Out.push_back(R);
    Work.push_back(R);
  };
  for (Ref R : Roots)
    Visit(R);
  while (!Work.empty()) {
    Ref R = Work.back();
    Work.pop_back();
    if (!isValid(R))
      continue; // A dangling reference reaches nothing further.
    for (Ref F : Slots[R.index()].Obj.Fields)
      Visit(F);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool Heap::whiteReachable(Ref From, Ref Target, bool MarkSense) const {
  if (From.isNull() || Target.isNull())
    return false;
  if (From == Target)
    return true;
  if (!isValid(From))
    return false;
  std::vector<bool> Seen(Slots.size(), false);
  std::vector<Ref> Work{From};
  Seen[From.index()] = true;
  while (!Work.empty()) {
    Ref R = Work.back();
    Work.pop_back();
    if (!isValid(R))
      continue;
    for (Ref F : Slots[R.index()].Obj.Fields) {
      if (F.isNull() || Seen[F.index()])
        continue;
      if (F == Target)
        return true;
      // Continue only through white objects: the chain G →w* W of Figure 1.
      if (isValid(F) && Slots[F.index()].Obj.MarkFlag != MarkSense) {
        Seen[F.index()] = true;
        Work.push_back(F);
      }
    }
  }
  return false;
}

void Heap::encode(std::string &Out) const {
  for (const Slot &S : Slots) {
    if (!S.Allocated) {
      Out.push_back('\0');
      continue;
    }
    Out.push_back(static_cast<char>(S.Obj.MarkFlag ? 2 : 1));
    for (Ref F : S.Obj.Fields) {
      Out.push_back(static_cast<char>(F.raw() & 0xff));
      Out.push_back(static_cast<char>(F.raw() >> 8));
    }
  }
}
