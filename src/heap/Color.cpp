//===- heap/Color.cpp ------------------------------------------------------===//

#include "heap/Color.h"

#include <algorithm>

using namespace tsogc;

ColorView::ColorView(const Heap &H, bool MarkSense, std::vector<Ref> GreyRefs)
    : H(H), MarkSense(MarkSense), Greys(std::move(GreyRefs)) {
  Greys.erase(std::remove(Greys.begin(), Greys.end(), Ref::null()),
              Greys.end());
  std::sort(Greys.begin(), Greys.end());
  Greys.erase(std::unique(Greys.begin(), Greys.end()), Greys.end());
}

bool ColorView::isGrey(Ref R) const {
  return std::binary_search(Greys.begin(), Greys.end(), R);
}

bool ColorView::isWhite(Ref R) const {
  if (!H.isValid(R))
    return false;
  return H.markFlag(R) != MarkSense;
}

bool ColorView::isBlack(Ref R) const {
  if (!H.isValid(R))
    return false;
  return H.markFlag(R) == MarkSense && !isGrey(R);
}

Color ColorView::color(Ref R) const {
  if (isGrey(R))
    return Color::Grey;
  return isWhite(R) ? Color::White : Color::Black;
}

bool ColorView::isGreyProtected(Ref R) const {
  if (isGrey(R))
    return true;
  if (!isWhite(R))
    return false;
  for (Ref G : Greys)
    if (H.whiteReachable(G, R, MarkSense))
      return true;
  return false;
}
