//===- gcmodel/GcDomain.h - CIMP domain for the GC model ------------------===//
///
/// \file
/// The request/response alphabet between software threads and the system
/// process (Figure 9 plus allocation and handshake plumbing, §3.1), and the
/// local data states of the three process kinds. Ghost fields — state from
/// which modeled code never reads, used only by the invariant checker — are
/// marked as such; they mirror the paper's ghost_honorary_grey and
/// handshake-counting ghost state (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_GCDOMAIN_H
#define TSOGC_GCMODEL_GCDOMAIN_H

#include "gcmodel/GcTypes.h"
#include "tso/MemoryState.h"

#include <set>
#include <string>
#include <variant>
#include <vector>

namespace tsogc {

/// Requests (the α values of REQUEST commands).
enum class ReqKind : uint8_t {
  Read,         ///< TSO load of Loc.
  Write,        ///< TSO store of Val to Loc.
  Mfence,       ///< Blocks until the requester's buffer is drained.
  Lock,         ///< Acquire the bus lock (start of a locked instruction).
  Unlock,       ///< Release it; requires a drained buffer (commits the CAS).
  Alloc,        ///< Atomic allocation at a free ref with mark AllocFlag.
  Free,         ///< Atomic removal of Loc.R from the heap (sweep).
  HeapSnapshot, ///< dom(heap), for the sweep loop.
  HsInitiate,   ///< Collector sets the pending bit of mutator Mut.
  HsPollAll,    ///< Collector polls: are all pending bits clear?
  HsGetType,    ///< Mutator polls its own bit; also yields type and round.
  HsComplete,   ///< Mutator clears its bit, transferring Refs into shared W.
  TakeW,        ///< Collector drains the shared work-list into its own.
};

const char *reqKindName(ReqKind K);

struct GcRequest {
  ProcId From = 0;
  ReqKind Kind = ReqKind::Read;
  MemLoc Loc;
  MemVal Val;
  bool AllocFlag = false;          ///< Alloc: the requester's fA view.
  uint8_t Mut = 0;                 ///< HsInitiate / HsGetType / HsComplete.
  HsType Hs = HsType::Noop;        ///< HsInitiate.
  HsRound Round = HsRound::None;   ///< HsInitiate (ghost).
  std::vector<Ref> Refs;           ///< HsComplete: the transferred Wm.
  /// TSO-handshake refinement: this Write is a handshake-request store;
  /// update the round/pending ghosts in the same atomic step.
  bool GhostHsInitiate = false;
};

/// Responses (the β values of RESPONSE commands).
struct GcResponse {
  MemVal Val;                      ///< Read result / Alloc result.
  bool Flag = false;               ///< HsPollAll / HsGetType pending bit.
  std::vector<Ref> Refs;           ///< TakeW / HeapSnapshot payload.
  HsType Hs = HsType::Noop;        ///< HsGetType.
  HsRound Round = HsRound::None;   ///< HsGetType (ghost).
};

/// Scratch registers for one activation of the mark procedure (Figure 5).
/// Shared by the collector and the mutators.
struct MarkScratch {
  Ref Target;                ///< The ref argument of mark().
  bool FlagRead = false;     ///< Result of the unsynchronized load (line 3).
  bool Winner = false;       ///< CAS outcome (lines 7/11).
  /// Ghost: set between the CAS's flag store and the work-list insertion
  /// (Fig 5 lines 9 and 14). An object here is grey even though it is
  /// not yet on any work-list.
  Ref GhostHonoraryGrey;

  bool operator==(const MarkScratch &O) const = default;
  void encode(std::string &Out) const;
};

/// The collector's thread-local state (registers/stack of Figure 2).
struct CollectorLocal {
  // Authoritative copies of the control variables: the collector is their
  // only writer, so its local values lead the TSO-visible ones.
  bool FM = false;
  bool FA = false;
  GcPhase Phase = GcPhase::Idle;

  std::set<Ref> W;              ///< The collector's work-list.
  MarkScratch MS;

  // Mark-loop scratch.
  Ref Src;                      ///< Grey object being scanned.
  uint8_t Fld = 0;              ///< Field cursor within Src.

  // Sweep scratch.
  std::vector<Ref> SweepRefs;   ///< refs := heap (Fig 2 line 38).
  bool SweepFlagRead = false;

  // Handshake scratch.
  uint8_t HsMutIdx = 0;
  bool HsAllDone = false;
  // TSO-handshake refinement: round sequence number (mod 8) and the last
  // acknowledgement word read while polling.
  uint8_t HsSeq = 0;
  uint8_t HsAckSeen = 0;

  // Ghost: completed collection cycles.
  uint32_t CycleCount = 0;

  bool operator==(const CollectorLocal &O) const = default;
  void encode(std::string &Out) const;
};

/// A mutator's thread-local state (Figure 6 plus handshake handling).
struct MutatorLocal {
  std::set<Ref> Roots;          ///< roots_m: stack and register contents.
  std::set<Ref> WM;             ///< W_m: private work-list.

  // Local copies of the control state, refreshed at each handshake (§2:
  // handshakes ensure "an up-to-date view of the collector control state";
  // between handshakes these may be stale).
  bool FMLocal = false;
  bool FALocal = false;
  GcPhase PhaseLocal = GcPhase::Idle;

  MarkScratch MS;

  // Operation scratch (chosen nondeterministically at op start; the ops of
  // Figure 6 contain no GC-safe points, so they run to completion before
  // the next handshake poll).
  Ref TmpSrc;
  Ref TmpDst;
  uint8_t TmpFld = 0;
  /// The reference loaded by the deletion barrier; a root for reachability
  /// purposes while the Store is in flight (§3.2).
  Ref DeletedRef;

  // Handshake scratch.
  std::vector<Ref> RootMarkQueue; ///< Roots still to mark during GetRoots.
  bool HsBitSet = false;          ///< Last polled value of the pending bit.
  // TSO-handshake refinement: the request word read by the last poll and
  // the last request word this mutator completed.
  uint16_t HsReqWord = 0;
  uint16_t HsLastHandled = 0;
  HsType HsPendingType = HsType::Noop;
  HsRound HsPendingRound = HsRound::None;

  // Ghost: the last handshake round this mutator completed.
  HsRound CompletedRound = HsRound::None;

  bool operator==(const MutatorLocal &O) const = default;
  void encode(std::string &Out) const;
};

/// The system process's data state: TSO memory (with the embedded heap),
/// the handshake registers, and the shared work-list staging area.
struct SysLocal {
  MemoryState Mem;

  std::set<Ref> SharedW;        ///< Work transferred, awaiting TakeW.
  HsType CurType = HsType::Noop;
  std::vector<bool> HsPending;  ///< One bit per mutator.

  // Ghost: most recently initiated round.
  HsRound CurRound = HsRound::None;

  explicit SysLocal(const ModelConfig &Cfg)
      : Mem(Cfg.NumMutators + 1, Cfg.numGlobals(), Cfg.NumRefs,
            Cfg.NumFields, Cfg.BufferBound),
        HsPending(Cfg.NumMutators, false) {}

  bool operator==(const SysLocal &O) const = default;
  void encode(std::string &Out) const;
};

/// The CIMP domain tying it together. Process layout: 0 = collector,
/// 1..NumMutators = mutators, NumMutators+1 = system.
struct GcDomain {
  using LocalState = std::variant<CollectorLocal, MutatorLocal, SysLocal>;
  using Request = GcRequest;
  using Response = GcResponse;
};

using GcLocal = GcDomain::LocalState;

/// Typed accessors over the variant (abort on kind mismatch).
CollectorLocal &asCollector(GcLocal &L);
const CollectorLocal &asCollector(const GcLocal &L);
MutatorLocal &asMutator(GcLocal &L);
const MutatorLocal &asMutator(const GcLocal &L);
SysLocal &asSys(GcLocal &L);
const SysLocal &asSys(const GcLocal &L);

/// Canonical encoding of any local state (dispatches on the alternative).
void encodeLocal(const GcLocal &L, std::string &Out);

namespace detail {
void encodeRefSet(const std::set<Ref> &S, std::string &Out);
void encodeRefVec(const std::vector<Ref> &V, std::string &Out);
} // namespace detail

} // namespace tsogc

#endif // TSOGC_GCMODEL_GCDOMAIN_H
