//===- gcmodel/Mutator.cpp -------------------------------------------------===//

#include "gcmodel/Mutator.h"

#include "gcmodel/Collector.h"

using namespace tsogc;
using cimp::CmdId;

namespace {

/// Mutator-side view for the shared mark procedure: the local (possibly
/// stale) fM copy, the barrier gate "phase != Idle" on the local phase view,
/// and the private work-list W_m.
MarkAccess mutatorMarkAccess(ProcId Self) {
  MarkAccess A;
  A.Self = Self;
  A.MS = [](GcLocal &L) -> MarkScratch & { return asMutator(L).MS; };
  A.MSC = [](const GcLocal &L) -> const MarkScratch & {
    return asMutator(L).MS;
  };
  A.FM = [](const GcLocal &L) { return asMutator(L).FMLocal; };
  A.Enabled = [](const GcLocal &L) {
    return asMutator(L).PhaseLocal != GcPhase::Idle;
  };
  A.PushWork = [](GcLocal &L, Ref R) { asMutator(L).WM.insert(R); };
  return A;
}

/// Load(src ∈ roots, fld): roots := roots ∪ {src.fld}.
CmdId buildLoad(GcProg &Prog, const ModelConfig &Cfg, ProcId Self) {
  CmdId Choose = Prog.localOp(
      "mut:choose-load",
      [NF = Cfg.NumFields](const GcLocal &L, std::vector<GcLocal> &Out) {
        const MutatorLocal &M = asMutator(L);
        for (Ref Src : M.Roots)
          for (unsigned F = 0; F < NF; ++F) {
            GcLocal Next = L;
            MutatorLocal &N = asMutator(Next);
            N.TmpSrc = Src;
            N.TmpFld = static_cast<uint8_t>(F);
            Out.push_back(std::move(Next));
          }
      });
  CmdId DoLoad = reqRead(
      Prog, Self, "mut:load",
      [](const GcLocal &L) {
        const MutatorLocal &M = asMutator(L);
        return MemLoc::objField(M.TmpSrc, M.TmpFld);
      },
      [](GcLocal &L, MemVal V) {
        MutatorLocal &M = asMutator(L);
        Ref R = V.asRef();
        if (!R.isNull())
          M.Roots.insert(R);
        // Release the dead argument registers so the visited set does not
        // split states on them.
        M.TmpSrc = Ref::null();
        M.TmpFld = 0;
      });
  return Prog.seq({Choose, DoLoad});
}

/// Store(dst ∈ roots, src ∈ roots, fld): deletion barrier on the old value
/// of src.fld, insertion barrier on dst, then the TSO store src.fld := dst.
CmdId buildStore(GcProg &Prog, const ModelConfig &Cfg, ProcId Self) {
  MarkAccess A = mutatorMarkAccess(Self);

  CmdId Choose = Prog.localOp(
      "mut:choose-store",
      [NF = Cfg.NumFields](const GcLocal &L, std::vector<GcLocal> &Out) {
        const MutatorLocal &M = asMutator(L);
        for (Ref Dst : M.Roots)
          for (Ref Src : M.Roots)
            for (unsigned F = 0; F < NF; ++F) {
              GcLocal Next = L;
              MutatorLocal &N = asMutator(Next);
              N.TmpDst = Dst;
              N.TmpSrc = Src;
              N.TmpFld = static_cast<uint8_t>(F);
              Out.push_back(std::move(Next));
            }
      });

  std::vector<CmdId> Seq{Choose};

  if (Cfg.DeletionBarrier) {
    // mark(src.fld, W_m): read the present field value (which may not be
    // the value actually overwritten — §3.2 "Marking"), hold it as a ghost
    // root for the duration, and mark it.
    CmdId ReadOld = reqRead(
        Prog, Self, "mut:del-barrier-read",
        [](const GcLocal &L) {
          const MutatorLocal &M = asMutator(L);
          return MemLoc::objField(M.TmpSrc, M.TmpFld);
        },
        [](GcLocal &L, MemVal V) {
          MutatorLocal &M = asMutator(L);
          M.DeletedRef = V.asRef();
          M.MS.Target = V.asRef();
        });
    Seq.push_back(ReadOld);
    Seq.push_back(buildMarkSeq(Prog, A, "mut:del"));
  }

  if (Cfg.InsertionBarrier) {
    // mark(dst, W_m).
    CmdId SetTarget = Prog.localDet("mut:ins-barrier-target", [](GcLocal &L) {
      MutatorLocal &M = asMutator(L);
      M.MS.Target = M.TmpDst;
    });
    Seq.push_back(SetTarget);
    MarkAccess InsA = A;
    if (Cfg.InsertionBarrierElideAfterRoots) {
      // §4 conjecture 2: the extra branch — skip the insertion CAS once
      // this mutator's roots have been marked this cycle.
      InsA.Enabled = [](const GcLocal &L) {
        const MutatorLocal &M = asMutator(L);
        return M.PhaseLocal != GcPhase::Idle &&
               M.CompletedRound != HsRound::H5GetRoots &&
               M.CompletedRound != HsRound::H6GetWork;
      };
    }
    Seq.push_back(buildMarkSeq(Prog, InsA, "mut:ins"));
  }

  // src.fld := dst. The pending write's value is a TSO-buffer root until it
  // commits; the deletion-barrier ghost root is released here.
  CmdId DoStore = reqWrite(
      Prog, Self, "mut:store",
      [](const GcLocal &L) {
        const MutatorLocal &M = asMutator(L);
        return MemLoc::objField(M.TmpSrc, M.TmpFld);
      },
      [](const GcLocal &L) { return MemVal::fromRef(asMutator(L).TmpDst); },
      [](GcLocal &L) {
        MutatorLocal &M = asMutator(L);
        M.DeletedRef = Ref::null();
        M.TmpSrc = Ref::null();
        M.TmpDst = Ref::null();
        M.TmpFld = 0;
      });
  Seq.push_back(DoStore);

  return Prog.seq(std::move(Seq));
}

/// Alloc: an atomic system action; the new object is marked with the
/// mutator's local view of fA and becomes a root.
CmdId buildAlloc(GcProg &Prog, ProcId Self) {
  return Prog.request(
      "mut:alloc",
      [Self](const GcLocal &L) {
        GcRequest Req;
        Req.From = Self;
        Req.Kind = ReqKind::Alloc;
        Req.AllocFlag = asMutator(L).FALocal;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &Rsp, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        Ref R = Rsp.Val.asRef();
        if (!R.isNull())
          asMutator(Next).Roots.insert(R);
        Out.push_back(std::move(Next));
      });
}

/// Discard(ref ∈ roots): roots := roots \ {ref}.
CmdId buildDiscard(GcProg &Prog) {
  return Prog.localOp(
      "mut:discard", [](const GcLocal &L, std::vector<GcLocal> &Out) {
        const MutatorLocal &M = asMutator(L);
        for (Ref R : M.Roots) {
          GcLocal Next = L;
          asMutator(Next).Roots.erase(R);
          Out.push_back(std::move(Next));
        }
      });
}

/// Shared handler tail across both handshake encodings: refresh the
/// control-state views, mark roots when requested, store-fence, and
/// complete (transfer the private work-list and update the ghosts).
CmdId buildHandshakeWork(GcProg &Prog, ProcId Self, unsigned Index) {
  MarkAccess A = mutatorMarkAccess(Self);

  CmdId FenceAccept =
      reqSimple(Prog, Self, ReqKind::Mfence, "mut:hs-fence-accept");

  auto ReadCtrl = [&](const char *Label, uint8_t Var,
                      std::function<void(MutatorLocal &, MemVal)> Apply) {
    return reqRead(
        Prog, Self, Label,
        [Var](const GcLocal &) { return MemLoc::globalVar(Var); },
        [Apply](GcLocal &L, MemVal V) { Apply(asMutator(L), V); });
  };
  CmdId ReadFM = ReadCtrl("mut:hs-read-fM", GVarFM,
                          [](MutatorLocal &M, MemVal V) {
                            M.FMLocal = V.asBool();
                          });
  CmdId ReadFA = ReadCtrl("mut:hs-read-fA", GVarFA,
                          [](MutatorLocal &M, MemVal V) {
                            M.FALocal = V.asBool();
                          });
  CmdId ReadPhase = ReadCtrl("mut:hs-read-phase", GVarPhase,
                             [](MutatorLocal &M, MemVal V) {
                               M.PhaseLocal = static_cast<GcPhase>(V.asByte());
                             });

  CmdId SnapRoots = Prog.localDet("mut:hs-snap-roots", [](GcLocal &L) {
    MutatorLocal &M = asMutator(L);
    M.RootMarkQueue.assign(M.Roots.begin(), M.Roots.end());
  });
  CmdId TakeNext = Prog.localDet("mut:hs-next-root", [](GcLocal &L) {
    MutatorLocal &M = asMutator(L);
    M.MS.Target = M.RootMarkQueue.back();
    M.RootMarkQueue.pop_back();
  });
  CmdId MarkRoot = buildMarkSeq(Prog, A, "mut:root");
  CmdId MarkAllRoots = Prog.whileLoop(
      [](const GcLocal &L) { return !asMutator(L).RootMarkQueue.empty(); },
      Prog.seq({TakeNext, MarkRoot}));
  CmdId RootsWork = Prog.ifThen(
      [](const GcLocal &L) {
        return asMutator(L).HsPendingType == HsType::GetRoots;
      },
      Prog.seq({SnapRoots, MarkAllRoots}));

  CmdId FenceFinish =
      reqSimple(Prog, Self, ReqKind::Mfence, "mut:hs-fence-finish");

  CmdId Complete = Prog.request(
      "mut:hs-complete",
      [Self, Index](const GcLocal &L) {
        const MutatorLocal &M = asMutator(L);
        GcRequest Req;
        Req.From = Self;
        Req.Kind = ReqKind::HsComplete;
        Req.Mut = static_cast<uint8_t>(Index);
        if (M.HsPendingType != HsType::Noop)
          Req.Refs.assign(M.WM.begin(), M.WM.end());
        return Req;
      },
      [](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        MutatorLocal &M = asMutator(Next);
        if (M.HsPendingType != HsType::Noop)
          M.WM.clear();
        M.CompletedRound = M.HsPendingRound; // ghost
        M.HsBitSet = false;
        M.HsPendingType = HsType::Noop;
        M.HsPendingRound = HsRound::None;
        Out.push_back(std::move(Next));
      });

  return Prog.seq({FenceAccept, ReadFM, ReadFA, ReadPhase, RootsWork,
                   FenceFinish, Complete});
}

/// TSO-refined poll (§3.1's atomicity refinement): read the request word
/// from TSO memory; on a fresh word, run the handler, then store the ack
/// word — an ordinary buffered TSO store the collector observes once it
/// commits.
CmdId buildTsoHandshakePoll(GcProg &Prog, ProcId Self, unsigned Index) {
  CmdId Poll = reqRead(
      Prog, Self, "mut:hs-poll",
      [Index](const GcLocal &) {
        return MemLoc::globalVar(gvarHsReq(Index));
      },
      [](GcLocal &L, MemVal V) {
        MutatorLocal &M = asMutator(L);
        M.HsReqWord = V.Raw;
        if (M.HsReqWord != M.HsLastHandled) {
          M.HsBitSet = true;
          M.HsPendingType = hsword::typeOf(M.HsReqWord);
          M.HsPendingRound = hsword::roundOf(M.HsReqWord);
        } else {
          M.HsBitSet = false;
        }
      });

  CmdId Work = buildHandshakeWork(Prog, Self, Index);

  CmdId Ack = reqWrite(
      Prog, Self, "mut:hs-store-ack",
      [Index](const GcLocal &) {
        return MemLoc::globalVar(gvarHsAck(Index));
      },
      [](const GcLocal &L) {
        return MemVal{
            static_cast<uint16_t>(hsword::seqOf(asMutator(L).HsReqWord))};
      },
      [](GcLocal &L) {
        MutatorLocal &M = asMutator(L);
        M.HsLastHandled = M.HsReqWord;
      });

  return Prog.seq({Poll, Prog.ifThen([](const GcLocal &L) {
                     return asMutator(L).HsBitSet;
                   },
                                      Prog.seq({Work, Ack}))});
}

/// The mutator side of a soft handshake: poll the pending bit; when set,
/// load-fence, refresh the local control-state copies, perform the
/// requested work (mark own roots for get-roots), store-fence, and complete
/// by transferring the private work-list (for get-roots/get-work).
CmdId buildHandshakePoll(GcProg &Prog, ProcId Self, unsigned Index) {
  CmdId Poll = Prog.request(
      "mut:hs-poll",
      [Self, Index](const GcLocal &) {
        GcRequest Req;
        Req.From = Self;
        Req.Kind = ReqKind::HsGetType;
        Req.Mut = static_cast<uint8_t>(Index);
        return Req;
      },
      [](const GcLocal &L, const GcResponse &Rsp, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        MutatorLocal &M = asMutator(Next);
        M.HsBitSet = Rsp.Flag;
        // Latch the request only when the bit is set; otherwise the stale
        // type/round would needlessly distinguish states.
        M.HsPendingType = Rsp.Flag ? Rsp.Hs : HsType::Noop;
        M.HsPendingRound = Rsp.Flag ? Rsp.Round : HsRound::None;
        Out.push_back(std::move(Next));
      });

  CmdId Handle = buildHandshakeWork(Prog, Self, Index);

  return Prog.seq({Poll, Prog.ifThen([](const GcLocal &L) {
                     return asMutator(L).HsBitSet;
                   },
                                      Handle)});
}

} // namespace

void tsogc::buildMutatorProgram(GcProg &Prog, const ModelConfig &Cfg,
                                unsigned Index) {
  const ProcId Self = mutatorPid(Index);

  std::vector<CmdId> Alts;
  Alts.push_back(Cfg.TsoHandshakes
                     ? buildTsoHandshakePoll(Prog, Self, Index)
                     : buildHandshakePoll(Prog, Self, Index));
  if (Cfg.MutatorLoad)
    Alts.push_back(buildLoad(Prog, Cfg, Self));
  if (Cfg.MutatorStore)
    Alts.push_back(buildStore(Prog, Cfg, Self));
  if (Cfg.MutatorAlloc)
    Alts.push_back(buildAlloc(Prog, Self));
  if (Cfg.MutatorDiscard)
    Alts.push_back(buildDiscard(Prog));
  if (Cfg.MutatorMfence)
    Alts.push_back(reqSimple(Prog, Self, ReqKind::Mfence, "mut:mfence"));

  Prog.setEntry(Prog.loop(Prog.choice(std::move(Alts))));
}
