//===- gcmodel/MarkSeq.h - The mark procedure (Figure 5) and req builders -===//
///
/// \file
/// One builder for the mark(ref, w) procedure shared by the collector's
/// marking loop, the mutators' write barriers, and root marking — exactly as
/// Figure 5 is shared in the paper. Also the small request-command builders
/// (TSO read/write/fence/lock) used by both thread programs.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_MARKSEQ_H
#define TSOGC_GCMODEL_MARKSEQ_H

#include "cimp/Cimp.h"
#include "gcmodel/GcDomain.h"

#include <functional>

namespace tsogc {

using GcProg = cimp::Program<GcDomain>;

/// Fence/lock/unlock request (no payload, void response).
cimp::CmdId reqSimple(GcProg &Prog, ProcId Self, ReqKind Kind,
                      std::string Label);

/// TSO store: location and value computed from the local state at issue
/// time; \p After (optional) runs on the local state in the same atomic
/// step (used to set ghost state "simultaneously" with the store).
cimp::CmdId reqWrite(GcProg &Prog, ProcId Self, std::string Label,
                     std::function<MemLoc(const GcLocal &)> Loc,
                     std::function<MemVal(const GcLocal &)> Val,
                     std::function<void(GcLocal &)> After = nullptr);

/// TSO load: \p Apply folds the returned value into the local state.
cimp::CmdId reqRead(GcProg &Prog, ProcId Self, std::string Label,
                    std::function<MemLoc(const GcLocal &)> Loc,
                    std::function<void(GcLocal &, MemVal)> Apply);

/// How the mark procedure accesses the enclosing process's state. The
/// target reference must be placed in the MarkScratch before entry.
struct MarkAccess {
  ProcId Self = 0;
  /// The scratch registers of Figure 5.
  std::function<MarkScratch &(GcLocal &)> MS;
  std::function<const MarkScratch &(const GcLocal &)> MSC;
  /// The process's local copy of fM (authoritative for the collector).
  std::function<bool(const GcLocal &)> FM;
  /// Fig 5 line 4: "if phase != Idle", evaluated on the process's local
  /// view of phase. Constantly true for the collector's mark loop.
  std::function<bool(const GcLocal &)> Enabled;
  /// Insert a won reference into the process's work-list (W or W_m).
  std::function<void(GcLocal &, Ref)> PushWork;
};

/// Build mark(MS.Target, w):
///   expected := not fM;                        (line 2)
///   if flag(target) = expected                 (plain TSO load, line 3)
///     if phase != Idle                         (line 4)
///       LOCK; re-read flag;                    (lines 5-6)
///       if still expected: flag := fM, ghost_honorary_grey := target,
///                          winner := true      (lines 7-9)
///       else winner := false;                  (lines 10-11)
///       UNLOCK                                 (flushes the CAS store)
///       if winner: w := w ∪ {target}, ghost := null   (lines 12-14)
/// A null target is a no-op.
cimp::CmdId buildMarkSeq(GcProg &Prog, const MarkAccess &A, std::string Tag);

} // namespace tsogc

#endif // TSOGC_GCMODEL_MARKSEQ_H
