//===- gcmodel/GcModel.cpp -------------------------------------------------===//

#include "gcmodel/GcModel.h"

#include "gcmodel/Mutator.h"
#include "gcmodel/SysProcess.h"
#include "support/Assert.h"

using namespace tsogc;

GcModel::GcModel(ModelConfig C) : Cfg(C) {
  TSOGC_CHECK(Cfg.NumMutators >= 1 && Cfg.NumMutators <= 8,
              "model supports 1..8 mutators");
  TSOGC_CHECK(Cfg.NumRefs >= 1, "need at least one reference");
  TSOGC_CHECK(Cfg.NumFields >= 1, "need at least one field");

  buildCollectorProgram(CollectorProg, Cfg);
  for (unsigned I = 0; I < Cfg.NumMutators; ++I) {
    MutatorProgs.push_back(std::make_unique<GcProg>());
    buildMutatorProgram(*MutatorProgs.back(), Cfg, I);
  }
  buildSysProgram(SysProg, Cfg);

  std::vector<const GcProg *> Progs;
  Progs.push_back(&CollectorProg);
  for (const auto &P : MutatorProgs)
    Progs.push_back(P.get());
  Progs.push_back(&SysProg);
  Sys = std::make_unique<cimp::System<GcDomain>>(std::move(Progs));
}

GcSystemState GcModel::initial() const {
  SysLocal S(Cfg);

  // Build the initial heap; fM = fA = false, so "black" is flag == false.
  // Roots shared by every mutator.
  std::vector<Ref> InitRoots;
  Heap &H = S.Mem.heap();
  auto AllocBlack = [&H](uint16_t Idx) {
    Ref R(Idx);
    H.allocAt(R, /*Flag=*/false);
    return R;
  };
  switch (Cfg.InitialHeap) {
  case ModelConfig::InitHeap::Empty:
    break;
  case ModelConfig::InitHeap::SingleRoot:
    InitRoots.push_back(AllocBlack(0));
    break;
  case ModelConfig::InitHeap::Chain: {
    TSOGC_CHECK(Cfg.NumRefs >= 2, "Chain initial heap needs two refs");
    Ref R0 = AllocBlack(0);
    Ref R1 = AllocBlack(1);
    H.setField(R0, 0, R1);
    InitRoots.push_back(R0);
    break;
  }
  case ModelConfig::InitHeap::SharedPair: {
    TSOGC_CHECK(Cfg.NumRefs >= 2, "SharedPair initial heap needs two refs");
    InitRoots.push_back(AllocBlack(0));
    InitRoots.push_back(AllocBlack(1));
    break;
  }
  }

  std::vector<GcLocal> Locals;
  Locals.emplace_back(CollectorLocal{});
  for (unsigned I = 0; I < Cfg.NumMutators; ++I) {
    MutatorLocal M;
    M.Roots.insert(InitRoots.begin(), InitRoots.end());
    Locals.emplace_back(std::move(M));
  }
  Locals.emplace_back(std::move(S));

  return Sys->initialState(std::move(Locals));
}

std::string GcModel::encode(const GcSystemState &S) const {
  std::string Out;
  Out.reserve(256);
  for (const auto &PS : S) {
    Out.push_back(static_cast<char>(PS.Stack.size()));
    for (cimp::CmdId Id : PS.Stack) {
      Out.push_back(static_cast<char>(Id & 0xff));
      Out.push_back(static_cast<char>((Id >> 8) & 0xff));
    }
    encodeLocal(PS.Local, Out);
  }
  return Out;
}

const CollectorLocal &GcModel::collector(const GcSystemState &S) {
  return asCollector(S[CollectorPid].Local);
}

const MutatorLocal &GcModel::mutator(const GcSystemState &S,
                                     unsigned Index) const {
  TSOGC_CHECK(Index < Cfg.NumMutators, "mutator index out of range");
  return asMutator(S[mutatorPid(Index)].Local);
}

const SysLocal &GcModel::sysState(const GcSystemState &S) const {
  return asSys(S[sysPid(Cfg)].Local);
}

std::vector<std::string> GcModel::nextLabels(const GcSystemState &S,
                                             unsigned P) const {
  const GcProg &Prog = *static_cast<const GcProg *>(&Sys->program(P));
  std::vector<cimp::PendingStep<GcDomain>> Heads;
  cimp::normalize(Prog, S[P].Stack, S[P].Local, Heads);
  std::vector<std::string> Out;
  for (const auto &H : Heads)
    Out.push_back(Prog.cmd(H.Head).Label);
  return Out;
}

bool GcModel::atLabel(const GcSystemState &S, unsigned P,
                      const std::string &Label) const {
  for (const std::string &L : nextLabels(S, P))
    if (L == Label)
      return true;
  return false;
}

std::string GcModel::procName(unsigned P) const {
  if (P == CollectorPid)
    return "gc";
  if (P == sysPid(Cfg))
    return "sys";
  return format("mut%u", P - 1);
}
