//===- gcmodel/GcTypes.h - Shared enums and configuration ----------------===//
///
/// \file
/// Phases, handshake types/rounds, and the model configuration knobs. The
/// collector has phases Idle, Init, Mark, Sweep (Figures 2 and 3); handshake
/// rounds follow Figure 2's six per-cycle rounds (four no-ops bracketing the
/// control-variable updates, one get-roots, and one-or-more get-work rounds
/// for mark-loop termination).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_GCTYPES_H
#define TSOGC_GCMODEL_GCTYPES_H

#include <cstdint>

namespace tsogc {

/// Collector control phase. Stored in TSO memory as a byte.
enum class GcPhase : uint8_t { Idle = 0, Init = 1, Mark = 2, Sweep = 3 };

const char *gcPhaseName(GcPhase P);

/// The work a handshake requests from each mutator (§2, Figure 3).
enum class HsType : uint8_t {
  Noop = 0,     ///< Acknowledge a control-state change.
  GetRoots = 1, ///< Mark own roots into the private work-list, transfer it.
  GetWork = 2,  ///< Transfer the private work-list (mark-loop termination).
};

const char *hsTypeName(HsType T);

/// Ghost state: which handshake round of the cycle. The paper's handshake
/// phases (hp_Idle, hp_IdleInit, hp_InitMark, hp_IdleMarkSweep, §3.2)
/// correspond to the windows between these rounds:
///   hp_Idle          ≈ [H1Idle, H2FlipFM)   — also the pre-first-cycle None
///   hp_IdleInit      ≈ [H2FlipFM, H3PhaseInit)
///   hp_InitMark      ≈ [H3PhaseInit, H5GetRoots)   (spanning H4PhaseMark)
///   hp_IdleMarkSweep ≈ [H5GetRoots, next cycle's H1Idle)
enum class HsRound : uint8_t {
  None = 0,    ///< Before the first handshake of the run.
  H1Idle,      ///< Noop round during Idle (Fig 2 lines 3-4).
  H2FlipFM,    ///< Noop round after the fM flip (lines 6-7).
  H3PhaseInit, ///< Noop round after phase := Init (lines 9-10).
  H4PhaseMark, ///< Noop round after phase := Mark, fA := fM (lines 13-14).
  H5GetRoots,  ///< Root-marking round (lines 15-20).
  H6GetWork,   ///< Mark-loop termination round (lines 31-34), repeats.
};

const char *hsRoundName(HsRound R);

/// Indices of the shared control variables in TSO memory (§3.1: fA, fM and
/// phase are all subject to TSO).
inline constexpr uint8_t GVarFM = 0;
inline constexpr uint8_t GVarFA = 1;
inline constexpr uint8_t GVarPhase = 2;
inline constexpr unsigned NumGcGlobals = 3;

/// Atomicity-refined handshakes (§3.1 "we ignore the effects of TSO on the
/// handshake state … straightforward to resolve during a later atomicity
/// refinement step" — resolved here): per-mutator request and
/// acknowledgement words living in TSO memory. The request word packs
/// (sequence mod 8, round ghost, type); the ack word carries the sequence.
inline constexpr uint8_t gvarHsReq(unsigned Mut) {
  return static_cast<uint8_t>(NumGcGlobals + 2 * Mut);
}
inline constexpr uint8_t gvarHsAck(unsigned Mut) {
  return static_cast<uint8_t>(NumGcGlobals + 2 * Mut + 1);
}

namespace hsword {
inline constexpr uint16_t encode(uint8_t Seq, HsRound Round, HsType Type) {
  return static_cast<uint16_t>(((Seq & 7u) << 6) |
                               (static_cast<unsigned>(Round) << 3) |
                               static_cast<unsigned>(Type));
}
inline constexpr uint8_t seqOf(uint16_t W) { return (W >> 6) & 7u; }
inline constexpr HsRound roundOf(uint16_t W) {
  return static_cast<HsRound>((W >> 3) & 7u);
}
inline constexpr HsType typeOf(uint16_t W) {
  return static_cast<HsType>(W & 7u);
}
} // namespace hsword

/// A finite model instance plus algorithm ablation switches.
struct ModelConfig {
  /// Number of mutator processes (the safety claim is for any number; the
  /// explorer checks finite instances).
  unsigned NumMutators = 1;
  /// Size of the reference universe R.
  unsigned NumRefs = 3;
  /// Reference fields per object.
  unsigned NumFields = 1;
  /// Store-buffer capacity per hardware thread; 0 selects the
  /// sequential-consistency ablation (writes commit immediately).
  unsigned BufferBound = 2;

  /// Ablations. The verified algorithm has both barriers enabled; turning
  /// one off lets the explorer find the safety counterexamples that justify
  /// them (Figure 1 for deletion, §2 "On-the-Fly" for insertion).
  bool DeletionBarrier = true;
  bool InsertionBarrier = true;

  /// Enumerate every free slot on allocation (the paper's "arbitrary free
  /// reference"). Off by default: slot choice is symmetric, and the
  /// deterministic lowest-free-slot rule keeps exhaustive runs tractable.
  bool AllocNondet = false;

  /// §4 "Observations", conjecture 1: "two of the initialization
  /// handshakes can be removed on x86-TSO". When set, the collector runs
  /// H1 (idle), then flips fM *and* sets phase := Init under a single
  /// no-op round (H3), then sets phase := Mark and fA := fM acknowledged
  /// directly by the root-marking round — the H2 and H4 rounds disappear.
  /// The exhaustive checker validates the conjecture on finite instances.
  bool MergedInitHandshakes = false;

  /// §4 "Observations", conjecture 2: elide the insertion barrier once the
  /// mutator's own roots have been marked (it is needed only "while the
  /// snapshot is being constructed"), in exchange for an extra branch in
  /// the store barrier.
  bool InsertionBarrierElideAfterRoots = false;

  /// Atomicity refinement of the handshake mechanism: request and ack
  /// words become ordinary TSO memory cells (buffered stores, plain
  /// loads), instead of registers inside the system process. Work-list
  /// transfer stays a system action (the paper keeps work-lists out of TSO
  /// by the disjointness argument). The refined protocol is checked
  /// exhaustively in tests/refined_handshake_test.cpp.
  bool TsoHandshakes = false;

  /// Number of TSO global variables for this configuration.
  unsigned numGlobals() const {
    return TsoHandshakes ? NumGcGlobals + 2 * NumMutators : NumGcGlobals;
  }

  /// Which Figure 6 operations the mutators may perform. Narrowing the mix
  /// focuses exhaustive runs on particular interference patterns.
  bool MutatorLoad = true;
  bool MutatorStore = true;
  bool MutatorAlloc = true;
  bool MutatorDiscard = true;
  /// Allow spontaneous mutator MFENCE steps (adds no behaviours beyond the
  /// nondeterministic commit steps; off by default).
  bool MutatorMfence = false;

  /// Initial heap shapes (all objects start black: flag == fM == fA).
  enum class InitHeap : uint8_t {
    Empty,      ///< No objects; mutators must allocate.
    SingleRoot, ///< One object, rooted by every mutator.
    Chain,      ///< r0 -> r1 via field 0; every mutator roots r0 only.
    SharedPair, ///< r0, r1 both rooted by every mutator, no edges.
  };
  InitHeap InitialHeap = InitHeap::Chain;

  unsigned numProcs() const { return NumMutators + 2; }
};

} // namespace tsogc

#endif // TSOGC_GCMODEL_GCTYPES_H
