//===- gcmodel/GcDomain.cpp ------------------------------------------------===//

#include "gcmodel/GcDomain.h"

#include "support/Assert.h"

using namespace tsogc;

const char *tsogc::gcPhaseName(GcPhase P) {
  switch (P) {
  case GcPhase::Idle:
    return "Idle";
  case GcPhase::Init:
    return "Init";
  case GcPhase::Mark:
    return "Mark";
  case GcPhase::Sweep:
    return "Sweep";
  }
  return "<bad-phase>";
}

const char *tsogc::hsTypeName(HsType T) {
  switch (T) {
  case HsType::Noop:
    return "noop";
  case HsType::GetRoots:
    return "get-roots";
  case HsType::GetWork:
    return "get-work";
  }
  return "<bad-hs-type>";
}

const char *tsogc::hsRoundName(HsRound R) {
  switch (R) {
  case HsRound::None:
    return "none";
  case HsRound::H1Idle:
    return "H1-idle";
  case HsRound::H2FlipFM:
    return "H2-flip-fM";
  case HsRound::H3PhaseInit:
    return "H3-phase-init";
  case HsRound::H4PhaseMark:
    return "H4-phase-mark";
  case HsRound::H5GetRoots:
    return "H5-get-roots";
  case HsRound::H6GetWork:
    return "H6-get-work";
  }
  return "<bad-round>";
}

const char *tsogc::reqKindName(ReqKind K) {
  switch (K) {
  case ReqKind::Read:
    return "read";
  case ReqKind::Write:
    return "write";
  case ReqKind::Mfence:
    return "mfence";
  case ReqKind::Lock:
    return "lock";
  case ReqKind::Unlock:
    return "unlock";
  case ReqKind::Alloc:
    return "alloc";
  case ReqKind::Free:
    return "free";
  case ReqKind::HeapSnapshot:
    return "heap-snapshot";
  case ReqKind::HsInitiate:
    return "hs-initiate";
  case ReqKind::HsPollAll:
    return "hs-poll-all";
  case ReqKind::HsGetType:
    return "hs-get-type";
  case ReqKind::HsComplete:
    return "hs-complete";
  case ReqKind::TakeW:
    return "take-w";
  }
  return "<bad-req>";
}

void tsogc::detail::encodeRefSet(const std::set<Ref> &S, std::string &Out) {
  Out.push_back(static_cast<char>(S.size()));
  for (Ref R : S) {
    Out.push_back(static_cast<char>(R.raw() & 0xff));
    Out.push_back(static_cast<char>(R.raw() >> 8));
  }
}

void tsogc::detail::encodeRefVec(const std::vector<Ref> &V, std::string &Out) {
  Out.push_back(static_cast<char>(V.size()));
  for (Ref R : V) {
    Out.push_back(static_cast<char>(R.raw() & 0xff));
    Out.push_back(static_cast<char>(R.raw() >> 8));
  }
}

static void encodeRef(Ref R, std::string &Out) {
  Out.push_back(static_cast<char>(R.raw() & 0xff));
  Out.push_back(static_cast<char>(R.raw() >> 8));
}

void MarkScratch::encode(std::string &Out) const {
  encodeRef(Target, Out);
  Out.push_back(static_cast<char>((FlagRead ? 1 : 0) | (Winner ? 2 : 0)));
  encodeRef(GhostHonoraryGrey, Out);
}

void CollectorLocal::encode(std::string &Out) const {
  Out.push_back(static_cast<char>((FM ? 1 : 0) | (FA ? 2 : 0) |
                                  (static_cast<unsigned>(Phase) << 2) |
                                  (HsAllDone ? 16 : 0) |
                                  (SweepFlagRead ? 32 : 0)));
  detail::encodeRefSet(W, Out);
  MS.encode(Out);
  encodeRef(Src, Out);
  Out.push_back(static_cast<char>(Fld));
  detail::encodeRefVec(SweepRefs, Out);
  Out.push_back(static_cast<char>(HsMutIdx));
  Out.push_back(static_cast<char>(HsSeq));
  Out.push_back(static_cast<char>(HsAckSeen));
  // CycleCount is ghost *and* monotone; including it would make every cycle
  // a fresh state and unbounded. Deliberately excluded from the encoding
  // but NOT from operator== (exhaustive runs bound cycles separately).
}

void MutatorLocal::encode(std::string &Out) const {
  detail::encodeRefSet(Roots, Out);
  detail::encodeRefSet(WM, Out);
  Out.push_back(static_cast<char>((FMLocal ? 1 : 0) | (FALocal ? 2 : 0) |
                                  (static_cast<unsigned>(PhaseLocal) << 2)));
  MS.encode(Out);
  encodeRef(TmpSrc, Out);
  encodeRef(TmpDst, Out);
  Out.push_back(static_cast<char>(TmpFld));
  encodeRef(DeletedRef, Out);
  detail::encodeRefVec(RootMarkQueue, Out);
  Out.push_back(static_cast<char>(HsBitSet ? 1 : 0));
  Out.push_back(static_cast<char>(HsReqWord & 0xff));
  Out.push_back(static_cast<char>(HsReqWord >> 8));
  Out.push_back(static_cast<char>(HsLastHandled & 0xff));
  Out.push_back(static_cast<char>(HsLastHandled >> 8));
  Out.push_back(static_cast<char>(HsPendingType));
  Out.push_back(static_cast<char>(HsPendingRound));
  Out.push_back(static_cast<char>(CompletedRound));
}

void SysLocal::encode(std::string &Out) const {
  Mem.encode(Out);
  detail::encodeRefSet(SharedW, Out);
  Out.push_back(static_cast<char>(CurType));
  uint8_t Bits = 0;
  for (size_t I = 0; I < HsPending.size(); ++I)
    if (HsPending[I])
      Bits |= static_cast<uint8_t>(1u << (I & 7));
  Out.push_back(static_cast<char>(Bits));
  Out.push_back(static_cast<char>(CurRound));
}

CollectorLocal &tsogc::asCollector(GcLocal &L) {
  auto *P = std::get_if<CollectorLocal>(&L);
  TSOGC_CHECK(P, "expected a collector local state");
  return *P;
}
const CollectorLocal &tsogc::asCollector(const GcLocal &L) {
  const auto *P = std::get_if<CollectorLocal>(&L);
  TSOGC_CHECK(P, "expected a collector local state");
  return *P;
}
MutatorLocal &tsogc::asMutator(GcLocal &L) {
  auto *P = std::get_if<MutatorLocal>(&L);
  TSOGC_CHECK(P, "expected a mutator local state");
  return *P;
}
const MutatorLocal &tsogc::asMutator(const GcLocal &L) {
  const auto *P = std::get_if<MutatorLocal>(&L);
  TSOGC_CHECK(P, "expected a mutator local state");
  return *P;
}
SysLocal &tsogc::asSys(GcLocal &L) {
  auto *P = std::get_if<SysLocal>(&L);
  TSOGC_CHECK(P, "expected the system local state");
  return *P;
}
const SysLocal &tsogc::asSys(const GcLocal &L) {
  const auto *P = std::get_if<SysLocal>(&L);
  TSOGC_CHECK(P, "expected the system local state");
  return *P;
}

void tsogc::encodeLocal(const GcLocal &L, std::string &Out) {
  if (const auto *C = std::get_if<CollectorLocal>(&L)) {
    Out.push_back(1);
    C->encode(Out);
    return;
  }
  if (const auto *M = std::get_if<MutatorLocal>(&L)) {
    Out.push_back(2);
    M->encode(Out);
    return;
  }
  Out.push_back(3);
  asSys(L).encode(Out);
}
