//===- gcmodel/GcModel.h - GC ∥ M1 ∥ … ∥ Mn ∥ Sys --------------------------===//
///
/// \file
/// Assembles the full model of §3.1: the collector, any (finite) number of
/// mutators, and the reactive system process encapsulating x86-TSO,
/// allocation, and the handshake structure. Provides the initial state and
/// the canonical state encoding used by the explorer's visited set.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_GCMODEL_H
#define TSOGC_GCMODEL_GCMODEL_H

#include "cimp/System.h"
#include "gcmodel/Collector.h"
#include "gcmodel/GcDomain.h"

#include <memory>

namespace tsogc {

using GcSystemState = cimp::SystemState<GcDomain>;
using GcSuccessor = cimp::Successor<GcDomain>;

/// Thread-safety: once constructed, a GcModel is immutable. Its const
/// interface — `initial()`, `encode()`, `system().successors()`, the typed
/// views and label queries — only reads the command arenas and the state it
/// is handed, with all scratch held in locals, so any number of explorer
/// worker threads may call it concurrently on the same instance (the
/// parallel explorer relies on this; `tests/parallel_explorer_test.cpp`
/// race-checks it under -DTSOGC_SANITIZE=thread).
class GcModel {
public:
  explicit GcModel(ModelConfig Cfg);

  GcModel(const GcModel &) = delete;
  GcModel &operator=(const GcModel &) = delete;

  const ModelConfig &config() const { return Cfg; }
  const cimp::System<GcDomain> &system() const { return *Sys; }

  /// The initial global state: collector at the top of its loop, mutators
  /// in their op loops, memory holding the configured initial heap with
  /// every object black and every local control-state copy in sync.
  GcSystemState initial() const;

  /// Canonical byte encoding of a global state (control stacks + data).
  std::string encode(const GcSystemState &S) const;

  /// Typed views into a global state.
  static const CollectorLocal &collector(const GcSystemState &S);
  const MutatorLocal &mutator(const GcSystemState &S, unsigned Index) const;
  const SysLocal &sysState(const GcSystemState &S) const;

  /// Process display name ("gc", "mut0", "sys").
  std::string procName(unsigned P) const;

  /// The labels of process \p P's next atomic commands in \p S (after
  /// control-flow normalization) — the paper's "at p ℓ" predicate: process
  /// P is *at* location ℓ iff ℓ appears here. Branching (Choice) can yield
  /// several labels.
  std::vector<std::string> nextLabels(const GcSystemState &S,
                                      unsigned P) const;

  /// True iff process \p P is at a location labelled \p Label.
  bool atLabel(const GcSystemState &S, unsigned P,
               const std::string &Label) const;

private:
  ModelConfig Cfg;
  GcProg CollectorProg;
  std::vector<std::unique_ptr<GcProg>> MutatorProgs;
  GcProg SysProg;
  std::unique_ptr<cimp::System<GcDomain>> Sys;
};

} // namespace tsogc

#endif // TSOGC_GCMODEL_GCMODEL_H
