//===- gcmodel/Collector.h - The collector process (Figures 2 and 10) ----===//
///
/// \file
/// Builds the CIMP program of the garbage collector: the non-terminating
/// control loop whose every iteration performs one mark-sweep cycle, with
/// the six handshake rounds, the marking loop with its termination
/// handshakes, and the sweep, as in Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_COLLECTOR_H
#define TSOGC_GCMODEL_COLLECTOR_H

#include "gcmodel/MarkSeq.h"

namespace tsogc {

/// Process id of the collector.
inline constexpr ProcId CollectorPid = 0;

/// Process id of the system process for a given configuration.
inline ProcId sysPid(const ModelConfig &Cfg) {
  return static_cast<ProcId>(Cfg.NumMutators + 1);
}

/// Process id of mutator \p Index (0-based).
inline ProcId mutatorPid(unsigned Index) {
  return static_cast<ProcId>(Index + 1);
}

/// Construct the collector program into \p Prog and set its entry point.
void buildCollectorProgram(GcProg &Prog, const ModelConfig &Cfg);

} // namespace tsogc

#endif // TSOGC_GCMODEL_COLLECTOR_H
