//===- gcmodel/Mutator.h - The mutator process (Figure 6) -----------------===//
///
/// \file
/// Builds a mutator's CIMP program: a maximally nondeterministic choice
/// among Load, Store (with both write barriers), Alloc, Discard, an optional
/// MFENCE, and the mutator side of the soft handshakes. Every client of the
/// collector is intended to be a refinement of this process (§3.1).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_MUTATOR_H
#define TSOGC_GCMODEL_MUTATOR_H

#include "gcmodel/MarkSeq.h"

namespace tsogc {

/// Construct the program of mutator \p Index (0-based; pid = Index + 1)
/// into \p Prog and set its entry point.
void buildMutatorProgram(GcProg &Prog, const ModelConfig &Cfg,
                         unsigned Index);

} // namespace tsogc

#endif // TSOGC_GCMODEL_MUTATOR_H
