//===- gcmodel/SysProcess.cpp ----------------------------------------------===//

#include "gcmodel/SysProcess.h"

#include "support/Assert.h"

using namespace tsogc;
using cimp::Program;

namespace {

void emit(std::vector<std::pair<GcLocal, GcResponse>> &Out, SysLocal S,
          GcResponse R = GcResponse()) {
  Out.emplace_back(GcLocal(std::move(S)), std::move(R));
}

} // namespace

void tsogc::respondSys(const ModelConfig &Cfg, const GcRequest &Req,
                       const SysLocal &S,
                       std::vector<std::pair<GcLocal, GcResponse>> &Out) {
  const ProcId P = Req.From;
  switch (Req.Kind) {
  case ReqKind::Read: {
    if (S.Mem.isBlocked(P))
      return;
    GcResponse R;
    R.Val = S.Mem.read(P, Req.Loc);
    emit(Out, S, std::move(R));
    return;
  }
  case ReqKind::Write: {
    if (S.Mem.isBlocked(P) || S.Mem.bufferFull(P))
      return;
    SysLocal Next = S;
    Next.Mem.write(P, Req.Loc, Req.Val);
    if (Req.GhostHsInitiate) {
      // TSO-handshake refinement: the request store doubles as the ghost
      // round advance (the bit is "pending" from the instant of issue).
      TSOGC_CHECK(Req.Mut < Next.HsPending.size(),
                  "handshake target out of range");
      Next.HsPending[Req.Mut] = true;
      Next.CurType = Req.Hs;
      Next.CurRound = Req.Round;
    }
    emit(Out, std::move(Next));
    return;
  }
  case ReqKind::Mfence:
    // MFENCE completes only once the issuing thread's buffer has drained;
    // the request stays blocked until commit steps empty it.
    if (S.Mem.isBlocked(P) || !S.Mem.canFence(P))
      return;
    emit(Out, S);
    return;
  case ReqKind::Lock:
    if (S.Mem.lockOwner() != MemoryState::NoOwner)
      return;
    {
      SysLocal Next = S;
      Next.Mem.acquireLock(P);
      emit(Out, std::move(Next));
    }
    return;
  case ReqKind::Unlock:
    // Unlock requires a drained buffer: this is what makes the locked
    // CMPXCHG's store globally visible before the instruction retires.
    if (!S.Mem.lockHeldBy(P) || !S.Mem.bufferEmpty(P))
      return;
    {
      SysLocal Next = S;
      Next.Mem.releaseLock(P);
      emit(Out, std::move(Next));
    }
    return;
  case ReqKind::Alloc: {
    if (S.Mem.isBlocked(P))
      return;
    std::vector<Ref> Slots;
    if (Cfg.AllocNondet) {
      Slots = S.Mem.heap().freeRefs();
    } else {
      Ref Slot = S.Mem.heap().firstFreeRef();
      if (!Slot.isNull())
        Slots.push_back(Slot);
    }
    if (Slots.empty()) {
      // Heap full: respond with null rather than blocking, so a full heap
      // cannot deadlock the handshake protocol.
      GcResponse R;
      R.Val = MemVal::fromRef(Ref::null());
      emit(Out, S, std::move(R));
      return;
    }
    for (Ref Slot : Slots) {
      SysLocal Next = S;
      Next.Mem.heap().allocAt(Slot, Req.AllocFlag);
      GcResponse R;
      R.Val = MemVal::fromRef(Slot);
      emit(Out, std::move(Next), std::move(R));
    }
    return;
  }
  case ReqKind::Free: {
    if (S.Mem.isBlocked(P))
      return;
    TSOGC_CHECK(S.Mem.heap().isValid(Req.Loc.R),
                "sweep freed a reference twice");
    SysLocal Next = S;
    Next.Mem.heap().free(Req.Loc.R);
    emit(Out, std::move(Next));
    return;
  }
  case ReqKind::HeapSnapshot: {
    GcResponse R;
    R.Refs = S.Mem.heap().allocatedRefs();
    emit(Out, S, std::move(R));
    return;
  }
  case ReqKind::HsInitiate: {
    TSOGC_CHECK(Req.Mut < S.HsPending.size(), "handshake target out of range");
    TSOGC_CHECK(!S.HsPending[Req.Mut],
                "handshake initiated while still pending");
    SysLocal Next = S;
    Next.HsPending[Req.Mut] = true;
    Next.CurType = Req.Hs;
    Next.CurRound = Req.Round;
    emit(Out, std::move(Next));
    return;
  }
  case ReqKind::HsPollAll: {
    GcResponse R;
    R.Flag = true;
    for (bool B : S.HsPending)
      if (B)
        R.Flag = false;
    emit(Out, S, std::move(R));
    return;
  }
  case ReqKind::HsGetType: {
    TSOGC_CHECK(Req.Mut < S.HsPending.size(), "handshake poll out of range");
    GcResponse R;
    R.Flag = S.HsPending[Req.Mut];
    R.Hs = S.CurType;
    R.Round = S.CurRound;
    emit(Out, S, std::move(R));
    return;
  }
  case ReqKind::HsComplete: {
    TSOGC_CHECK(Req.Mut < S.HsPending.size(), "handshake ack out of range");
    TSOGC_CHECK(S.HsPending[Req.Mut], "handshake completed twice");
    SysLocal Next = S;
    Next.HsPending[Req.Mut] = false;
    Next.SharedW.insert(Req.Refs.begin(), Req.Refs.end());
    emit(Out, std::move(Next));
    return;
  }
  case ReqKind::TakeW: {
    SysLocal Next = S;
    GcResponse R;
    R.Refs.assign(Next.SharedW.begin(), Next.SharedW.end());
    Next.SharedW.clear();
    emit(Out, std::move(Next), std::move(R));
    return;
  }
  }
  TSOGC_UNREACHABLE("bad ReqKind");
}

void tsogc::buildSysProgram(Program<GcDomain> &Prog, const ModelConfig &Cfg) {
  // Response branch: one RESPONSE command handling the whole alphabet; the
  // nondeterministic sum over request shapes of Figure 9 is realized by the
  // dispatch inside respondSys.
  cimp::CmdId Respond = Prog.response(
      "sys", [Cfg](const GcRequest &Req, const GcLocal &L,
                   std::vector<std::pair<GcLocal, GcResponse>> &Out) {
        respondSys(Cfg, Req, asSys(L), Out);
      });

  // Internal branch: sys-dequeue-write-buffer — commit the oldest pending
  // write of any unblocked software thread.
  cimp::CmdId Commit = Prog.localOp(
      "sys-dequeue-write-buffer",
      [Cfg](const GcLocal &L, std::vector<GcLocal> &Out) {
        const SysLocal &S = asSys(L);
        for (unsigned P = 0; P < Cfg.NumMutators + 1; ++P) {
          if (S.Mem.bufferEmpty(static_cast<ProcId>(P)) ||
              S.Mem.isBlocked(static_cast<ProcId>(P)))
            continue;
          SysLocal Next = S;
          Next.Mem.commitOldest(static_cast<ProcId>(P));
          Out.push_back(GcLocal(std::move(Next)));
        }
      });

  Prog.setEntry(Prog.loop(Prog.choice({Respond, Commit})));
}
