//===- gcmodel/SysProcess.h - The reactive system process (Figure 9) -----===//
///
/// \file
/// Builds the CIMP program of the system component: a non-terminating
/// nondeterministic choice between responding to one software-thread request
/// (memory operations under x86-TSO, allocation, free, handshake plumbing,
/// work-list transfer) and the internal step that commits the oldest pending
/// write of some unblocked thread (sys-dequeue-write-buffer).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_GCMODEL_SYSPROCESS_H
#define TSOGC_GCMODEL_SYSPROCESS_H

#include "cimp/Cimp.h"
#include "gcmodel/GcDomain.h"

namespace tsogc {

/// Construct the system program into \p Prog and set its entry point.
void buildSysProgram(cimp::Program<GcDomain> &Prog, const ModelConfig &Cfg);

/// The response function proper, exposed for unit testing: given a request
/// and the system's data state, enumerate (new state, response) pairs.
/// An empty result means the request is blocked (e.g. MFENCE with a
/// non-empty buffer).
void respondSys(const ModelConfig &Cfg, const GcRequest &Req,
                const SysLocal &S,
                std::vector<std::pair<GcLocal, GcResponse>> &Out);

} // namespace tsogc

#endif // TSOGC_GCMODEL_SYSPROCESS_H
