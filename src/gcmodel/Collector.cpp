//===- gcmodel/Collector.cpp -----------------------------------------------===//

#include "gcmodel/Collector.h"

#include "support/Assert.h"

using namespace tsogc;
using cimp::CmdId;

namespace {

/// Collector-side view for the shared mark procedure: authoritative fM,
/// always-enabled CAS (the collector only marks during its Mark phase), and
/// the collector's own work-list W.
MarkAccess collectorMarkAccess() {
  MarkAccess A;
  A.Self = CollectorPid;
  A.MS = [](GcLocal &L) -> MarkScratch & { return asCollector(L).MS; };
  A.MSC = [](const GcLocal &L) -> const MarkScratch & {
    return asCollector(L).MS;
  };
  A.FM = [](const GcLocal &L) { return asCollector(L).FM; };
  A.Enabled = [](const GcLocal &) { return true; };
  A.PushWork = [](GcLocal &L, Ref R) { asCollector(L).W.insert(R); };
  return A;
}

/// TSO-refined round (the §3.1 atomicity refinement): the request words
/// are ordinary TSO stores (buffered!), acknowledgements are plain TSO
/// loads of the per-mutator ack words. The collector bumps its sequence
/// number (mod 8), fences, stores each mutator's request word, then polls
/// the ack words until every one carries the new sequence, and fences.
CmdId buildTsoHandshakeRound(GcProg &Prog, const ModelConfig &Cfg,
                             HsType Type, HsRound Round) {
  std::string Tag = hsRoundName(Round);

  // Bump the sequence and reset the loop counter, fused with the store
  // fence that precedes initiation (§2.4).
  CmdId FenceBefore = Prog.request(
      Tag + ":fence-initiate",
      [](const GcLocal &) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::Mfence;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        CollectorLocal &C = asCollector(Next);
        C.HsSeq = static_cast<uint8_t>((C.HsSeq + 1) & 7);
        C.HsMutIdx = 0;
        Out.push_back(std::move(Next));
      });

  // Store the request word of each mutator (a plain TSO store; the ghost
  // round advances at issue time, inside the same rendezvous).
  CmdId StoreReq = Prog.request(
      Tag + ":store-request",
      [Type, Round](const GcLocal &L) {
        const CollectorLocal &C = asCollector(L);
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::Write;
        Req.Loc = MemLoc::globalVar(gvarHsReq(C.HsMutIdx));
        Req.Val = MemVal{hsword::encode(C.HsSeq, Round, Type)};
        Req.GhostHsInitiate = true;
        Req.Mut = C.HsMutIdx;
        Req.Hs = Type;
        Req.Round = Round;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        ++asCollector(Next).HsMutIdx;
        Out.push_back(std::move(Next));
      });
  CmdId StoreAll = Prog.whileLoop(
      [N = Cfg.NumMutators](const GcLocal &L) {
        return asCollector(L).HsMutIdx < N;
      },
      StoreReq);

  // Poll the ack word of each mutator in turn until it carries this
  // round's sequence.
  CmdId ResetIdx = Prog.localDet(Tag + ":reset-poll", [](GcLocal &L) {
    CollectorLocal &C = asCollector(L);
    C.HsMutIdx = 0;
    C.HsAckSeen = static_cast<uint8_t>((C.HsSeq + 1) & 7); // ≠ HsSeq
  });
  CmdId ReadAck = reqRead(
      Prog, CollectorPid, Tag + ":poll-ack",
      [](const GcLocal &L) {
        return MemLoc::globalVar(gvarHsAck(asCollector(L).HsMutIdx));
      },
      [](GcLocal &L, MemVal V) {
        asCollector(L).HsAckSeen = static_cast<uint8_t>(V.Raw & 7);
      });
  CmdId NextMut = Prog.ifThen(
      [](const GcLocal &L) {
        const CollectorLocal &C = asCollector(L);
        return C.HsAckSeen == C.HsSeq;
      },
      Prog.localDet(Tag + ":ack-ok", [](GcLocal &L) {
        CollectorLocal &C = asCollector(L);
        ++C.HsMutIdx;
        C.HsAckSeen = static_cast<uint8_t>((C.HsSeq + 1) & 7);
      }));
  CmdId PollLoop = Prog.whileLoop(
      [N = Cfg.NumMutators](const GcLocal &L) {
        return asCollector(L).HsMutIdx < N;
      },
      Prog.seq({ReadAck, NextMut}));

  CmdId FenceAfter =
      reqSimple(Prog, CollectorPid, ReqKind::Mfence, Tag + ":fence-complete");

  return Prog.seq({FenceBefore, StoreAll, ResetIdx, PollLoop, FenceAfter});
}

/// One round of soft handshakes (Figure 4): store fence; set each mutator's
/// pending bit in index order; poll until all bits clear; load fence.
CmdId buildHandshakeRound(GcProg &Prog, const ModelConfig &Cfg, HsType Type,
                          HsRound Round) {
  if (Cfg.TsoHandshakes)
    return buildTsoHandshakeRound(Prog, Cfg, Type, Round);
  std::string Tag = hsRoundName(Round);

  // Store fence before initiating; the loop counters are reset in the same
  // atomic step (they are invisible to other processes).
  CmdId FenceBefore = Prog.request(
      Tag + ":fence-initiate",
      [](const GcLocal &) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::Mfence;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        CollectorLocal &C = asCollector(Next);
        C.HsMutIdx = 0;
        C.HsAllDone = false;
        Out.push_back(std::move(Next));
      });

  CmdId InitiateOne = Prog.request(
      Tag + ":initiate",
      [Type, Round](const GcLocal &L) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::HsInitiate;
        Req.Mut = asCollector(L).HsMutIdx;
        Req.Hs = Type;
        Req.Round = Round;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        ++asCollector(Next).HsMutIdx;
        Out.push_back(std::move(Next));
      });
  CmdId InitiateAll = Prog.whileLoop(
      [N = Cfg.NumMutators](const GcLocal &L) {
        return asCollector(L).HsMutIdx < N;
      },
      InitiateOne);

  CmdId PollOnce = Prog.request(
      Tag + ":poll",
      [](const GcLocal &) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::HsPollAll;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &Rsp, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        asCollector(Next).HsAllDone = Rsp.Flag;
        Out.push_back(std::move(Next));
      });
  CmdId PollLoop = Prog.whileLoop(
      [](const GcLocal &L) { return !asCollector(L).HsAllDone; }, PollOnce);

  CmdId FenceAfter =
      reqSimple(Prog, CollectorPid, ReqKind::Mfence, Tag + ":fence-complete");

  return Prog.seq({FenceBefore, InitiateAll, PollLoop, FenceAfter});
}

/// Load the system's staged work-list into the collector's W.
CmdId buildTakeW(GcProg &Prog, const char *Tag) {
  return Prog.request(
      std::string(Tag) + ":take-w",
      [](const GcLocal &) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::TakeW;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &Rsp, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        asCollector(Next).W.insert(Rsp.Refs.begin(), Rsp.Refs.end());
        Out.push_back(std::move(Next));
      });
}

/// TSO store of one control variable from the collector's local copy.
CmdId buildCtrlWrite(GcProg &Prog, const char *Tag, uint8_t Var) {
  return reqWrite(
      Prog, CollectorPid, std::string(Tag),
      [Var](const GcLocal &) { return MemLoc::globalVar(Var); },
      [Var](const GcLocal &L) {
        const CollectorLocal &C = asCollector(L);
        switch (Var) {
        case GVarFM:
          return MemVal::fromBool(C.FM);
        case GVarFA:
          return MemVal::fromBool(C.FA);
        case GVarPhase:
          return MemVal::fromByte(static_cast<uint8_t>(C.Phase));
        }
        TSOGC_UNREACHABLE("bad control variable");
      });
}

/// The marking loop (Figure 2 lines 24-34, Figure 10): drain W, scanning
/// each grey source's fields through mark; between drains run get-work
/// handshake rounds until a round leaves W empty.
CmdId buildMarkLoop(GcProg &Prog, const ModelConfig &Cfg) {
  MarkAccess A = collectorMarkAccess();

  CmdId PickSrc = Prog.localDet("mark:pick-src", [](GcLocal &L) {
    CollectorLocal &C = asCollector(L);
    TSOGC_CHECK(!C.W.empty(), "mark loop entered with an empty work-list");
    C.Src = *C.W.begin();
    C.Fld = 0;
  });

  CmdId LoadField = reqRead(
      Prog, CollectorPid, "mark:load-field",
      [](const GcLocal &L) {
        const CollectorLocal &C = asCollector(L);
        return MemLoc::objField(C.Src, C.Fld);
      },
      [](GcLocal &L, MemVal V) { asCollector(L).MS.Target = V.asRef(); });
  CmdId MarkField = buildMarkSeq(Prog, A, "gc");
  CmdId NextField = Prog.localDet("mark:next-field",
                                  [](GcLocal &L) { ++asCollector(L).Fld; });
  CmdId ScanFields = Prog.whileLoop(
      [NF = Cfg.NumFields](const GcLocal &L) {
        return asCollector(L).Fld < NF;
      },
      Prog.seq({LoadField, MarkField, NextField}));

  // Blacken: W := W \ {src} (Fig 2 line 30).
  CmdId Blacken = Prog.localDet("mark:blacken", [](GcLocal &L) {
    CollectorLocal &C = asCollector(L);
    C.W.erase(C.Src);
    C.Src = Ref::null();
  });

  CmdId Drain = Prog.whileLoop(
      [](const GcLocal &L) { return !asCollector(L).W.empty(); },
      Prog.seq({PickSrc, ScanFields, Blacken}));

  CmdId TerminationRound =
      buildHandshakeRound(Prog, Cfg, HsType::GetWork, HsRound::H6GetWork);
  CmdId TakeWork = buildTakeW(Prog, "H6-get-work");

  return Prog.whileLoop(
      [](const GcLocal &L) { return !asCollector(L).W.empty(); },
      Prog.seq({Drain, TerminationRound, TakeWork}));
}

/// The sweep (Figure 2 lines 37-45): snapshot dom(heap), then free every
/// object whose (TSO-read) flag differs from fM.
CmdId buildSweep(GcProg &Prog) {
  CmdId Snapshot = Prog.request(
      "sweep:snapshot",
      [](const GcLocal &) {
        GcRequest Req;
        Req.From = CollectorPid;
        Req.Kind = ReqKind::HeapSnapshot;
        return Req;
      },
      [](const GcLocal &L, const GcResponse &Rsp, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        asCollector(Next).SweepRefs = Rsp.Refs;
        Out.push_back(std::move(Next));
      });

  CmdId ReadFlag = reqRead(
      Prog, CollectorPid, "sweep:read-flag",
      [](const GcLocal &L) {
        return MemLoc::objFlag(asCollector(L).SweepRefs.back());
      },
      [](GcLocal &L, MemVal V) { asCollector(L).SweepFlagRead = V.asBool(); });

  CmdId FreeOne = Prog.requestIgnore("sweep:free", [](const GcLocal &L) {
    GcRequest Req;
    Req.From = CollectorPid;
    Req.Kind = ReqKind::Free;
    Req.Loc = MemLoc::objFlag(asCollector(L).SweepRefs.back());
    return Req;
  });
  CmdId MaybeFree = Prog.ifThen(
      [](const GcLocal &L) {
        const CollectorLocal &C = asCollector(L);
        return C.SweepFlagRead != C.FM; // ref ∈ White (Fig 2 line 41).
      },
      FreeOne);

  CmdId Advance = Prog.localDet("sweep:advance", [](GcLocal &L) {
    CollectorLocal &C = asCollector(L);
    C.SweepRefs.pop_back();
    C.SweepFlagRead = false;
  });

  CmdId Walk = Prog.whileLoop(
      [](const GcLocal &L) { return !asCollector(L).SweepRefs.empty(); },
      Prog.seq({ReadFlag, MaybeFree, Advance}));

  return Prog.seq({Snapshot, Walk});
}

} // namespace

void tsogc::buildCollectorProgram(GcProg &Prog, const ModelConfig &Cfg) {
  // Lines 3-4: idle round — every mutator learns the collector is idle.
  CmdId H1 = buildHandshakeRound(Prog, Cfg, HsType::Noop, HsRound::H1Idle);

  // Line 5: flip the sense of the marks; heap turns from black to white.
  CmdId FlipFM = Prog.localDet(
      "flip-fM", [](GcLocal &L) { asCollector(L).FM = !asCollector(L).FM; });
  CmdId WriteFM = buildCtrlWrite(Prog, "write-fM", GVarFM);
  CmdId H2 = buildHandshakeRound(Prog, Cfg, HsType::Noop, HsRound::H2FlipFM);

  // Line 8: phase := Init — mutator write barriers become enabled as each
  // mutator learns of it.
  CmdId SetInit = Prog.localDet(
      "phase-init", [](GcLocal &L) { asCollector(L).Phase = GcPhase::Init; });
  CmdId WriteInit = buildCtrlWrite(Prog, "write-phase-init", GVarPhase);
  CmdId H3 =
      buildHandshakeRound(Prog, Cfg, HsType::Noop, HsRound::H3PhaseInit);

  // Lines 11-12: phase := Mark; fA := fM — newly allocated objects become
  // black, as late as possible to limit floating garbage.
  CmdId SetMark = Prog.localDet(
      "phase-mark", [](GcLocal &L) { asCollector(L).Phase = GcPhase::Mark; });
  CmdId WriteMark = buildCtrlWrite(Prog, "write-phase-mark", GVarPhase);
  CmdId SetFA = Prog.localDet(
      "set-fA", [](GcLocal &L) { asCollector(L).FA = asCollector(L).FM; });
  CmdId WriteFA = buildCtrlWrite(Prog, "write-fA", GVarFA);
  CmdId H4 =
      buildHandshakeRound(Prog, Cfg, HsType::Noop, HsRound::H4PhaseMark);

  // Lines 15-20: root marking round; afterwards reachable_snapshot_inv
  // holds for every mutator.
  CmdId H5 =
      buildHandshakeRound(Prog, Cfg, HsType::GetRoots, HsRound::H5GetRoots);
  CmdId TakeRoots = buildTakeW(Prog, "H5-get-roots");

  CmdId MarkLoop = buildMarkLoop(Prog, Cfg);

  // Lines 37-45: sweep. Grey = ∅ ∧ reachable_snapshot_inv ⇒ every white
  // object is unreachable.
  CmdId SetSweep = Prog.localDet("phase-sweep", [](GcLocal &L) {
    asCollector(L).Phase = GcPhase::Sweep;
  });
  CmdId WriteSweep = buildCtrlWrite(Prog, "write-phase-sweep", GVarPhase);
  CmdId Sweep = buildSweep(Prog);

  // Line 46: back to idle; ghost cycle counter for the two-cycle property.
  CmdId SetIdle = Prog.localDet("phase-idle", [](GcLocal &L) {
    CollectorLocal &C = asCollector(L);
    C.Phase = GcPhase::Idle;
    ++C.CycleCount;
  });
  CmdId WriteIdle = buildCtrlWrite(Prog, "write-phase-idle", GVarPhase);

  CmdId Cycle;
  if (Cfg.MergedInitHandshakes) {
    // §4 conjecture 1: drop the H2 and H4 rounds. One no-op round (H3)
    // acknowledges both the fM flip and the barrier installation; the
    // root-marking round itself acknowledges phase := Mark and the fA
    // flip (its initiation fence commits them first).
    Cycle = Prog.seq({H1, FlipFM, WriteFM, SetInit, WriteInit, H3, SetMark,
                      WriteMark, SetFA, WriteFA, H5, TakeRoots, MarkLoop,
                      SetSweep, WriteSweep, Sweep, SetIdle, WriteIdle});
  } else {
    Cycle = Prog.seq({H1, FlipFM, WriteFM, H2, SetInit, WriteInit, H3,
                      SetMark, WriteMark, SetFA, WriteFA, H4, H5, TakeRoots,
                      MarkLoop, SetSweep, WriteSweep, Sweep, SetIdle,
                      WriteIdle});
  }

  Prog.setEntry(Prog.loop(Cycle));
}
