//===- gcmodel/MarkSeq.cpp -------------------------------------------------===//

#include "gcmodel/MarkSeq.h"

using namespace tsogc;
using cimp::CmdId;

CmdId tsogc::reqSimple(GcProg &Prog, ProcId Self, ReqKind Kind,
                       std::string Label) {
  return Prog.requestIgnore(std::move(Label), [Self, Kind](const GcLocal &) {
    GcRequest Req;
    Req.From = Self;
    Req.Kind = Kind;
    return Req;
  });
}

CmdId tsogc::reqWrite(GcProg &Prog, ProcId Self, std::string Label,
                      std::function<MemLoc(const GcLocal &)> Loc,
                      std::function<MemVal(const GcLocal &)> Val,
                      std::function<void(GcLocal &)> After) {
  return Prog.request(
      std::move(Label),
      [Self, Loc, Val](const GcLocal &L) {
        GcRequest Req;
        Req.From = Self;
        Req.Kind = ReqKind::Write;
        Req.Loc = Loc(L);
        Req.Val = Val(L);
        return Req;
      },
      [After](const GcLocal &L, const GcResponse &, std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        if (After)
          After(Next);
        Out.push_back(std::move(Next));
      });
}

CmdId tsogc::reqRead(GcProg &Prog, ProcId Self, std::string Label,
                     std::function<MemLoc(const GcLocal &)> Loc,
                     std::function<void(GcLocal &, MemVal)> Apply) {
  return Prog.request(
      std::move(Label),
      [Self, Loc](const GcLocal &L) {
        GcRequest Req;
        Req.From = Self;
        Req.Kind = ReqKind::Read;
        Req.Loc = Loc(L);
        return Req;
      },
      [Apply](const GcLocal &L, const GcResponse &Rsp,
              std::vector<GcLocal> &Out) {
        GcLocal Next = L;
        Apply(Next, Rsp.Val);
        Out.push_back(std::move(Next));
      });
}

CmdId tsogc::buildMarkSeq(GcProg &Prog, const MarkAccess &A, std::string Tag) {
  auto TargetLoc = [A](const GcLocal &L) {
    return MemLoc::objFlag(A.MSC(L).Target);
  };

  // Lines 2-3: the unsynchronized flag load. "expected := not fM" (line 2)
  // needs no register of its own: the local fM copy cannot change during a
  // mutator operation (operations are free of GC-safe points) nor during
  // the collector's marking, so guards compute it on demand.
  CmdId LoadFlag = reqRead(Prog, A.Self, Tag + ":mark-load-flag", TargetLoc,
                           [A](GcLocal &L, MemVal V) {
                             MarkScratch &MS = A.MS(L);
                             MS.FlagRead = V.asBool();
                             MS.Winner = false;
                           });

  // Lines 5-11: the locked CMPXCHG, spelled out as in the x86-TSO model:
  // LOCK; re-read; conditional store (+ ghost honorary grey); UNLOCK.
  CmdId Lock = reqSimple(Prog, A.Self, ReqKind::Lock, Tag + ":mark-cas-lock");
  CmdId ReRead =
      reqRead(Prog, A.Self, Tag + ":mark-cas-read", TargetLoc,
              [A](GcLocal &L, MemVal V) { A.MS(L).FlagRead = V.asBool(); });
  CmdId StoreFlag = reqWrite(
      Prog, A.Self, Tag + ":mark-cas-store", TargetLoc,
      [A](const GcLocal &L) { return MemVal::fromBool(A.FM(L)); },
      [A](GcLocal &L) {
        MarkScratch &MS = A.MS(L);
        MS.Winner = true;
        MS.GhostHonoraryGrey = MS.Target; // Fig 5 line 9.
      });
  CmdId Lose = Prog.localDet(Tag + ":mark-cas-lose",
                             [A](GcLocal &L) { A.MS(L).Winner = false; });
  CmdId CasBody = Prog.ifThenElse(
      [A](const GcLocal &L) {
        return A.MSC(L).FlagRead == !A.FM(L); // We win (line 6).
      },
      StoreFlag, Lose);
  CmdId Unlock =
      reqSimple(Prog, A.Self, ReqKind::Unlock, Tag + ":mark-cas-unlock");

  // Lines 12-14: the winner, and only the winner, publishes the grey.
  CmdId Publish = Prog.ifThen(
      [A](const GcLocal &L) { return A.MSC(L).Winner; },
      Prog.localDet(Tag + ":mark-publish", [A](GcLocal &L) {
        MarkScratch &MS = A.MS(L);
        A.PushWork(L, MS.Target);
        MS.GhostHonoraryGrey = Ref::null(); // Fig 5 line 14.
      }));

  CmdId Cas = Prog.seq({Lock, ReRead, CasBody, Unlock, Publish});

  // Line 4: attempt the CAS only when the collector is active (as seen
  // through this process's possibly-stale local view).
  CmdId GuardedCas = Prog.ifThen(A.Enabled, Cas);

  // Line 3: attempt anything only if the plain load saw "unmarked".
  CmdId SlowPath = Prog.ifThen(
      [A](const GcLocal &L) { return A.MSC(L).FlagRead == !A.FM(L); },
      GuardedCas);

  // The scratch registers are live only for the duration of the procedure;
  // the invariant checker treats the target as a root and the visited set
  // would otherwise split states on dead values, so reset them on exit.
  CmdId Done = Prog.localDet(Tag + ":mark-done", [A](GcLocal &L) {
    MarkScratch &MS = A.MS(L);
    TSOGC_CHECK(MS.GhostHonoraryGrey.isNull(),
                "honorary grey still set when mark finished");
    MS = MarkScratch();
  });

  CmdId Body = Prog.seq({LoadFlag, SlowPath, Done});

  // mark(NULL) is a no-op (field loads and deletion-barrier reads can
  // yield null).
  return Prog.ifThen(
      [A](const GcLocal &L) { return !A.MSC(L).Target.isNull(); }, Body);
}
