//===- support/StringUtils.h - printf-style std::string formatting -------===//
///
/// \file
/// Small string helpers. The library avoids iostreams; everything renders
/// through these helpers or std::snprintf.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_STRINGUTILS_H
#define TSOGC_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace tsogc {

/// printf into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, const char *Sep);

} // namespace tsogc

#endif // TSOGC_SUPPORT_STRINGUTILS_H
