//===- support/Random.h - Deterministic PRNGs for exploration ------------===//
///
/// \file
/// Seedable pseudo-random number generators. Random exploration of the model
/// must be reproducible from a seed, so every randomized component takes one
/// of these by reference instead of using global entropy.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_RANDOM_H
#define TSOGC_SUPPORT_RANDOM_H

#include <cstdint>

namespace tsogc {

/// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the workhorse generator for randomized walks.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P = 0.5);

private:
  uint64_t S[4];
};

} // namespace tsogc

#endif // TSOGC_SUPPORT_RANDOM_H
