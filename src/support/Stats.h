//===- support/Stats.h - Running statistics and histograms ---------------===//
///
/// \file
/// Lightweight statistics used by the benchmark harnesses and the runtime
/// collector's instrumentation (cycle times, pause times, barrier counts).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_STATS_H
#define TSOGC_SUPPORT_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace tsogc {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
public:
  void add(double X);

  uint64_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }

  /// Render as "n=… mean=… sd=… min=… max=…".
  std::string summary() const;

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Fixed-bucket histogram over [Lo, Hi) with overflow/underflow buckets.
class Histogram {
public:
  Histogram(double Lo, double Hi, unsigned NumBuckets);

  void add(double X);

  uint64_t total() const { return Total; }
  uint64_t bucketCount(unsigned I) const { return Buckets[I]; }
  unsigned numBuckets() const { return static_cast<unsigned>(Buckets.size()); }

  /// Value below which \p Q of the mass lies (bucket-resolution estimate).
  double quantile(double Q) const;

  /// Multi-line ASCII rendering for example programs.
  std::string render(unsigned Width = 40) const;

private:
  double Lo, Hi;
  std::vector<uint64_t> Buckets;
  uint64_t Underflow = 0;
  uint64_t Overflow = 0;
  uint64_t Total = 0;
};

} // namespace tsogc

#endif // TSOGC_SUPPORT_STATS_H
