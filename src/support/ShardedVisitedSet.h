//===- support/ShardedVisitedSet.h - Lock-striped visited set ------------===//
///
/// \file
/// A concurrent insert-only map from canonical state keys to dense node ids,
/// sharded by key hash so parallel workers contend only when they land on
/// the same stripe. Each shard pairs its key map with a metadata arena; a
/// node id packs (shard, arena index), so per-node metadata — the explorer's
/// parent/label records — lives next to the keys that own it and path
/// reconstruction can walk shards by index without any global table.
///
/// Concurrency contract:
///   * insert() is safe from any number of threads;
///   * size(), meta() and forEachMeta() require quiescence (no concurrent
///     insert) — the explorer only calls them after its workers have joined.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_SHARDEDVISITEDSET_H
#define TSOGC_SUPPORT_SHARDEDVISITEDSET_H

#include "support/Assert.h"
#include "support/HashCombine.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tsogc {

template <typename Meta> class ShardedVisitedSet {
public:
  /// Node ids pack the shard into the top bits and the arena index into the
  /// low IndexBits; 2^40 states per shard is far beyond what fits in memory.
  static constexpr unsigned IndexBits = 40;
  static constexpr uint64_t InvalidId = ~0ull;

  explicit ShardedVisitedSet(unsigned NumShards) {
    TSOGC_CHECK(NumShards >= 1 && NumShards <= (1u << 14),
                "shard count out of range");
    Shards.reserve(NumShards);
    for (unsigned I = 0; I < NumShards; ++I)
      Shards.push_back(std::make_unique<Shard>());
  }

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  unsigned shardOf(const std::string &Key) const {
    // Fresh seed so the stripe choice is independent of both the digest
    // seeds used by hash compaction and unordered_map's own bucket hash.
    return static_cast<uint64_t>(
               hashBytes(Key.data(), Key.size(), 0x1f83d9abfb41bd6bULL)) %
           Shards.size();
  }

  /// Insert \p Key if absent, constructing its metadata from \p M.
  /// Returns {node id, inserted-now}. Thread-safe.
  std::pair<uint64_t, bool> insert(std::string Key, Meta M) {
    unsigned SI = shardOf(Key);
    Shard &S = *Shards[SI];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto [It, Fresh] = S.Map.emplace(std::move(Key),
                                     static_cast<uint64_t>(S.Arena.size()));
    if (Fresh)
      S.Arena.push_back(std::move(M));
    return {packId(SI, It->second), Fresh};
  }

  /// Fingerprint mode: insert by 64-bit state fingerprint, storing 8 bytes
  /// per visited state instead of a full encoding or 16-byte digest. Same
  /// id/metadata semantics as insert(); thread-safe. A fingerprint
  /// collision silently merges two distinct states, so explorations keyed
  /// this way report ExploreResult::ProbabilisticVerdict. Use one keying
  /// (insert or insertFp) consistently per set instance: the two key maps
  /// are disjoint.
  std::pair<uint64_t, bool> insertFp(uint64_t Fp, Meta M) {
    // Stripe seed distinct from shardOf's so neither keying's distribution
    // correlates with the other's.
    unsigned SI = static_cast<unsigned>(hashMix(0x9b05688c2b3e6c1fULL, Fp) %
                                        Shards.size());
    Shard &S = *Shards[SI];
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto [It, Fresh] =
        S.FpMap.emplace(Fp, static_cast<uint64_t>(S.Arena.size()));
    if (Fresh)
      S.Arena.push_back(std::move(M));
    return {packId(SI, It->second), Fresh};
  }

  /// Metadata of a previously inserted node. Quiescent use only: a
  /// concurrent insert into the same shard may reallocate the arena.
  const Meta &meta(uint64_t Id) const {
    const Shard &S = *Shards[Id >> IndexBits];
    uint64_t Idx = Id & ((1ull << IndexBits) - 1);
    TSOGC_CHECK(Idx < S.Arena.size(), "node id out of range");
    return S.Arena[Idx];
  }

  /// Total nodes across all shards. Quiescent use only.
  uint64_t size() const {
    uint64_t N = 0;
    for (const auto &S : Shards)
      N += S->Arena.size();
    return N;
  }

  /// Visit every node's metadata, shard by shard. Quiescent use only.
  template <typename Fn> void forEachMeta(Fn F) const {
    for (unsigned SI = 0; SI < Shards.size(); ++SI) {
      const Shard &S = *Shards[SI];
      for (uint64_t I = 0; I < S.Arena.size(); ++I)
        F(packId(SI, I), S.Arena[I]);
    }
  }

  /// Occupancy and footprint accounting. Quiescent use only.
  struct Stats {
    uint64_t Nodes = 0;         ///< Total entries across both keyings.
    uint64_t ExactKeyBytes = 0; ///< Payload bytes of exact string keys.
    uint64_t MemoryBytes = 0;   ///< Estimated total footprint (see below).
    uint64_t MaxShardNodes = 0; ///< Largest single shard (occupancy skew).
  };

  /// Estimate the set's memory footprint: key payloads, per-entry map node
  /// overhead, bucket arrays, and the metadata arenas. An estimate — the
  /// allocator's real overhead varies — but computed identically for exact,
  /// compacted and fingerprint keyings, so mode-vs-mode comparisons (the
  /// point of fingerprint mode) are apples-to-apples. Quiescent use only.
  Stats stats() const {
    // Node-based unordered_map entry: next link + cached hash + the pair.
    constexpr uint64_t ExactNode =
        2 * sizeof(void *) + sizeof(std::pair<const std::string, uint64_t>);
    constexpr uint64_t FpNode =
        2 * sizeof(void *) + sizeof(std::pair<const uint64_t, uint64_t>);
    Stats St;
    for (const auto &SP : Shards) {
      const Shard &S = *SP;
      uint64_t ShardNodes = S.Map.size() + S.FpMap.size();
      St.Nodes += ShardNodes;
      St.MaxShardNodes = std::max(St.MaxShardNodes, ShardNodes);
      for (const auto &[Key, Idx] : S.Map) {
        (void)Idx;
        St.ExactKeyBytes += Key.capacity();
      }
      St.MemoryBytes += S.Map.size() * ExactNode;
      St.MemoryBytes += S.FpMap.size() * FpNode;
      St.MemoryBytes +=
          (S.Map.bucket_count() + S.FpMap.bucket_count()) * sizeof(void *);
      St.MemoryBytes += S.Arena.capacity() * sizeof(Meta);
    }
    St.MemoryBytes += St.ExactKeyBytes;
    return St;
  }

  /// Shorthand for stats().MemoryBytes. Quiescent use only.
  uint64_t memoryBytes() const { return stats().MemoryBytes; }

private:
  static uint64_t packId(unsigned ShardIdx, uint64_t ArenaIdx) {
    TSOGC_CHECK(ArenaIdx < (1ull << IndexBits), "arena index overflow");
    return (static_cast<uint64_t>(ShardIdx) << IndexBits) | ArenaIdx;
  }

  /// Padded to a cache line so neighbouring shard locks do not false-share.
  struct alignas(64) Shard {
    std::mutex Mu;
    std::unordered_map<std::string, uint64_t> Map;
    std::unordered_map<uint64_t, uint64_t> FpMap; ///< Fingerprint keying.
    std::vector<Meta> Arena;
  };

  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace tsogc

#endif // TSOGC_SUPPORT_SHARDEDVISITEDSET_H
