//===- support/Assert.h - Fatal-error and unreachable helpers ------------===//
//
// Part of the relaxing-safely reproduction of Gammie, Hosking & Engelhardt,
// "Relaxing Safely: Verified On-the-Fly Garbage Collection for x86-TSO"
// (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error reporting used across the library. The library never
/// throws; invariant violations abort with a message, mirroring the
/// assert-liberally style the verification work demands.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_ASSERT_H
#define TSOGC_SUPPORT_ASSERT_H

#include <cassert>

namespace tsogc {

/// Print \p Msg (with file/line context) to stderr and abort.
///
/// Used for violated preconditions that must be diagnosed even in release
/// builds (e.g. a model-checker state decoding mismatch).
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   int Line);

/// Mark a point in control flow that the enclosing invariants make
/// impossible. Aborts with a diagnostic when reached.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    int Line);

} // namespace tsogc

/// Abort with \p Msg if \p Cond is false, in all build modes.
#define TSOGC_CHECK(Cond, Msg)                                                 \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::tsogc::reportFatalError(Msg, __FILE__, __LINE__);                      \
  } while (false)

/// Document control flow that cannot be reached if the model is coherent.
#define TSOGC_UNREACHABLE(Msg)                                                 \
  ::tsogc::reportUnreachable(Msg, __FILE__, __LINE__)

#endif // TSOGC_SUPPORT_ASSERT_H
