//===- support/HashCombine.h - Order-dependent hash mixing ---------------===//
///
/// \file
/// A small, deterministic hash-combining facility used to fingerprint model
/// states. The explorer stores full canonical encodings for exactness; these
/// hashes only pick the bucket, so quality matters more than
/// cryptographic strength.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_SUPPORT_HASHCOMBINE_H
#define TSOGC_SUPPORT_HASHCOMBINE_H

#include <cstddef>
#include <cstdint>

namespace tsogc {

/// Mix one 64-bit value into a running hash (xxHash-style avalanche).
inline uint64_t hashMix(uint64_t Seed, uint64_t Value) {
  const uint64_t Prime = 0x9e3779b97f4a7c15ULL;
  uint64_t H = Seed ^ (Value + Prime + (Seed << 6) + (Seed >> 2));
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

/// Hash an arbitrary byte range.
inline uint64_t hashBytes(const void *Data, size_t Len, uint64_t Seed = 0) {
  const auto *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed ^ (Len * 0x9e3779b97f4a7c15ULL);
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    uint64_t W = 0;
    for (int B = 0; B < 8; ++B)
      W |= static_cast<uint64_t>(P[I + B]) << (8 * B);
    H = hashMix(H, W);
  }
  uint64_t Tail = 0;
  for (int B = 0; I < Len; ++I, ++B)
    Tail |= static_cast<uint64_t>(P[I]) << (8 * B);
  if (Len % 8 != 0)
    H = hashMix(H, Tail);
  return H;
}

} // namespace tsogc

#endif // TSOGC_SUPPORT_HASHCOMBINE_H
