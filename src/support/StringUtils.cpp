//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace tsogc;

std::string tsogc::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

std::string tsogc::join(const std::vector<std::string> &Parts,
                        const char *Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
