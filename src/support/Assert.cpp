//===- support/Assert.cpp ------------------------------------------------===//

#include "support/Assert.h"

#include <cstdio>
#include <cstdlib>

void tsogc::reportFatalError(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "fatal error: %s:%d: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

void tsogc::reportUnreachable(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "unreachable executed: %s:%d: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}
