//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace tsogc;

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::summary() const {
  return format("n=%llu mean=%.3f sd=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(N), mean(), stddev(), min(),
                max());
}

Histogram::Histogram(double Lo, double Hi, unsigned NumBuckets)
    : Lo(Lo), Hi(Hi), Buckets(NumBuckets, 0) {
  TSOGC_CHECK(Lo < Hi, "histogram range must be non-empty");
  TSOGC_CHECK(NumBuckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double X) {
  ++Total;
  if (X < Lo) {
    ++Underflow;
    return;
  }
  if (X >= Hi) {
    ++Overflow;
    return;
  }
  double Frac = (X - Lo) / (Hi - Lo);
  auto I = static_cast<size_t>(Frac * static_cast<double>(Buckets.size()));
  I = std::min(I, Buckets.size() - 1);
  ++Buckets[I];
}

double Histogram::quantile(double Q) const {
  if (Total == 0)
    return Lo;
  auto Target = static_cast<uint64_t>(Q * static_cast<double>(Total));
  uint64_t Seen = Underflow;
  if (Seen > Target)
    return Lo;
  double BucketWidth = (Hi - Lo) / static_cast<double>(Buckets.size());
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen > Target)
      return Lo + BucketWidth * static_cast<double>(I + 1);
  }
  return Hi;
}

std::string Histogram::render(unsigned Width) const {
  uint64_t Peak = 1;
  for (uint64_t C : Buckets)
    Peak = std::max(Peak, C);
  double BucketWidth = (Hi - Lo) / static_cast<double>(Buckets.size());
  std::string Out;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    double BLo = Lo + BucketWidth * static_cast<double>(I);
    auto Bar = static_cast<unsigned>(
        (static_cast<double>(Buckets[I]) / static_cast<double>(Peak)) * Width);
    Out += format("[%10.3f) %8llu |", BLo,
                  static_cast<unsigned long long>(Buckets[I]));
    Out.append(Bar, '#');
    Out += '\n';
  }
  if (Underflow || Overflow)
    Out += format("underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(Underflow),
                  static_cast<unsigned long long>(Overflow));
  return Out;
}
