//===- support/Random.cpp -------------------------------------------------===//

#include "support/Random.h"

#include "support/Assert.h"

using namespace tsogc;

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Xoshiro256::Xoshiro256(uint64_t Seed) {
  SplitMix64 SM(Seed);
  for (auto &Word : S)
    Word = SM.next();
}

uint64_t Xoshiro256::next() {
  const uint64_t Result = rotl(S[1] * 5, 7) * 9;
  const uint64_t T = S[1] << 17;
  S[2] ^= S[0];
  S[3] ^= S[1];
  S[1] ^= S[2];
  S[0] ^= S[3];
  S[2] ^= T;
  S[3] = rotl(S[3], 45);
  return Result;
}

uint64_t Xoshiro256::nextBelow(uint64_t Bound) {
  TSOGC_CHECK(Bound != 0, "nextBelow requires a non-zero bound");
  // Rejection sampling to avoid modulo bias; the loop terminates quickly
  // because the acceptance probability is at least 1/2.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Xoshiro256::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::nextBool(double P) { return nextDouble() < P; }
