//===- runtime/RtStats.h - Runtime collector instrumentation --------------===//
///
/// \file
/// Counters and timing collected by the runtime collector and mutators:
/// cycle durations, per-handshake latencies, barrier activity, and the
/// marking split between collector and mutators. These feed the benchmark
/// harnesses for experiments E4, E6, E7, E11, E12.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTSTATS_H
#define TSOGC_RUNTIME_RTSTATS_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace tsogc::rt {

/// Mutator-side counters (owned by one thread; plain fields).
struct MutStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Allocs = 0;
  uint64_t AllocFailures = 0;
  /// TLAB traffic (zero when RtConfig::LocalAllocPool == 0): allocations
  /// served lock-free from the thread-local run/pool, refill operations
  /// (one RtHeap::reserveRun each), and refill failures that fell back to
  /// a direct global allocation.
  uint64_t TlabHits = 0;
  uint64_t TlabRefills = 0;
  uint64_t AllocFallbacks = 0;
  uint64_t BarrierMarks = 0;   ///< Greys published by this mutator's barriers.
  uint64_t BarrierCas = 0;     ///< CAS slow paths taken in barriers.
  uint64_t HandshakesSeen = 0;
  uint64_t RootsMarked = 0;
  /// Nanoseconds spent inside handshake handlers (the mutator's only
  /// collector-induced pauses under on-the-fly collection — experiment
  /// E11). Park waits are *not* included; they live in ParkNs.
  uint64_t HandshakeNs = 0;
  uint64_t MaxHandshakeNs = 0;
  /// Stop-the-world parks: how often this mutator was parked and how long
  /// it spent blocked between the park acknowledgement and the release
  /// request. Counted exactly once per park (the resume handshake's own
  /// handling time goes to HandshakeNs like any other handler).
  uint64_t Parks = 0;
  uint64_t ParkNs = 0;
  uint64_t MaxParkNs = 0;

  /// The worst collector-imposed pause from this mutator's seat: a
  /// handshake handler under on-the-fly collection, a whole park under the
  /// STW baseline.
  uint64_t maxPauseNs() const { return std::max(MaxHandshakeNs, MaxParkNs); }
};

/// One mark worker's contribution to a parallel cycle (worker 0 is the
/// collector thread itself). Owned by one worker during the cycle; read
/// and merged only after the workers have joined.
struct MarkWorkerStats {
  uint64_t Marked = 0;          ///< Greys this worker scanned.
  uint64_t Cas = 0;             ///< Mark CAS slow paths taken.
  uint64_t ChainsTaken = 0;     ///< Chains taken from the worker's own stripe.
  uint64_t ChainsStolen = 0;    ///< Chains stolen from another stripe.
  uint64_t StealFails = 0;      ///< Full stripe scans that found nothing.
  uint64_t ChainsPublished = 0; ///< Overflow chains published for stealing.
  uint64_t ObjectsFreed = 0;    ///< Freed in this worker's sweep shard.
  uint64_t ObjectsRetained = 0; ///< Retained in this worker's sweep shard.
};

/// Collector-side per-cycle record.
struct CycleStats {
  uint64_t CycleNs = 0;
  uint64_t SweepNs = 0;
  uint64_t MarkNs = 0;
  uint64_t HandshakeRounds = 0;
  uint64_t TerminationRounds = 0; ///< get-work rounds (≥1 per cycle).
  uint64_t ObjectsMarked = 0;     ///< Greys processed by the collector.
  uint64_t ObjectsFreed = 0;
  uint64_t ObjectsRetained = 0;   ///< Marked objects surviving the sweep.
  uint64_t CollectorCas = 0;
  /// Work transfer: non-empty chains taken off the shared list, and link
  /// hops spent locating a splice point. The collector splices through its
  /// tracked WorkTail, so SpliceWalkSteps must stay 0 — the counter pins
  /// the O(1) contract (the old implementation walked the whole incoming
  /// chain here, O(n²) per cycle).
  uint64_t SharedChainsTaken = 0;
  uint64_t SpliceWalkSteps = 0;
  /// Mark/sweep parallelism actually used this cycle (1 = the verified
  /// single-GC-thread path; the per-worker vector is then empty).
  uint64_t MarkWorkersUsed = 1;
  uint64_t ChainsStolen = 0;    ///< Steals across stripes (sum of workers).
  uint64_t StealFails = 0;      ///< Empty full-stripe scans (sum of workers).
  uint64_t ChainsPublished = 0; ///< Overflow chains published (sum).
  /// Per-worker breakdown for parallel cycles (size == MarkWorkersUsed
  /// when > 1). Worker 0 is the collector thread.
  std::vector<MarkWorkerStats> Workers;
  /// Invariant-observatory activity during this cycle: boundary snapshots
  /// taken, total nanoseconds spent in their stop windows (park round +
  /// copy + checks + resume round), and new invariant violations found.
  uint64_t Snapshots = 0;
  uint64_t SnapshotNs = 0;
  uint64_t InvariantViolations = 0;
};

/// Aggregate, shared between threads.
struct RtStats {
  std::atomic<uint64_t> Cycles{0};
  std::atomic<uint64_t> TotalFreed{0};
  std::atomic<uint64_t> TotalMarkedByCollector{0};
  std::atomic<uint64_t> TotalBarrierMarks{0};
  std::atomic<uint64_t> TotalTerminationRounds{0};
  std::atomic<uint64_t> TotalCycleNs{0};
  std::atomic<uint64_t> MaxCycleNs{0};
  std::atomic<uint64_t> TotalChainsStolen{0};
  std::atomic<uint64_t> TotalSnapshots{0};
  std::atomic<uint64_t> TotalSnapshotNs{0};
  std::atomic<uint64_t> TotalInvariantViolations{0};
  /// Allocator scale-out totals, folded in from each mutator's MutStats at
  /// deregistration (live mutators' counts are not yet included).
  std::atomic<uint64_t> TotalTlabHits{0};
  std::atomic<uint64_t> TotalTlabRefills{0};
  std::atomic<uint64_t> TotalAllocFallbacks{0};

  /// Fold a departing mutator's allocator counters into the aggregate
  /// (GcRuntime::deregisterMutator).
  void recordMutator(const MutStats &M) {
    TotalTlabHits.fetch_add(M.TlabHits, std::memory_order_relaxed);
    TotalTlabRefills.fetch_add(M.TlabRefills, std::memory_order_relaxed);
    TotalAllocFallbacks.fetch_add(M.AllocFallbacks,
                                  std::memory_order_relaxed);
  }

  void recordCycle(const CycleStats &C) {
    Cycles.fetch_add(1, std::memory_order_relaxed);
    TotalFreed.fetch_add(C.ObjectsFreed, std::memory_order_relaxed);
    TotalMarkedByCollector.fetch_add(C.ObjectsMarked,
                                     std::memory_order_relaxed);
    TotalTerminationRounds.fetch_add(C.TerminationRounds,
                                     std::memory_order_relaxed);
    TotalChainsStolen.fetch_add(C.ChainsStolen, std::memory_order_relaxed);
    TotalSnapshots.fetch_add(C.Snapshots, std::memory_order_relaxed);
    TotalSnapshotNs.fetch_add(C.SnapshotNs, std::memory_order_relaxed);
    TotalInvariantViolations.fetch_add(C.InvariantViolations,
                                       std::memory_order_relaxed);
    TotalCycleNs.fetch_add(C.CycleNs, std::memory_order_relaxed);
    uint64_t Prev = MaxCycleNs.load(std::memory_order_relaxed);
    while (C.CycleNs > Prev &&
           !MaxCycleNs.compare_exchange_weak(Prev, C.CycleNs,
                                             std::memory_order_relaxed)) {
    }
  }
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTSTATS_H
