//===- runtime/MutatorContext.h - Per-thread mutator interface ------------===//
///
/// \file
/// The heap access protocol of Figure 6 for real threads. Each mutator
/// thread owns a MutatorContext providing Load / Store (with both write
/// barriers) / Alloc / Discard over a shadow-stack of roots, plus the
/// safepoint poll that services soft handshakes (Figures 3, 4).
///
/// Root handles carry the object's allocation epoch: if the collector ever
/// freed a reachable object, the very next access through a stale handle
/// aborts with a diagnostic instead of silently touching recycled memory.
/// This is the runtime's teeth for the headline safety property.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_MUTATORCONTEXT_H
#define TSOGC_RUNTIME_MUTATORCONTEXT_H

#include "observe/Trace.h"
#include "runtime/RtHeap.h"
#include "runtime/RtStats.h"
#include "runtime/ScheduleFuzzer.h"

#include <atomic>
#include <vector>

namespace tsogc::rt {

class GcRuntime;
struct HsChannel;

/// A rooted reference plus the epoch observed when it was acquired.
struct RootHandle {
  RtRef Ref = RtNull;
  uint32_t Epoch = 0;
};

class MutatorContext {
public:
  /// Created via GcRuntime::registerMutator(); use from one thread only.
  /// \p Trace is this thread's event ring (null when tracing is off).
  MutatorContext(GcRuntime &Rt, unsigned Index,
                 observe::TraceBuffer *Trace = nullptr);

  unsigned index() const { return Index; }
  const MutStats &stats() const { return Stats; }
  const RtConfig &config() const { return Heap.config(); }

  //===-- The mutator operations of Figure 6 ------------------------------===//

  /// roots := roots ∪ {src.fld}. Returns the index of the new root in the
  /// shadow stack, or -1 if the field was null.
  int load(size_t SrcRootIdx, uint32_t Field);

  /// src.fld := dst, with the deletion barrier on the old value and the
  /// insertion barrier on dst (both subject to the configured ablations).
  void store(size_t DstRootIdx, size_t SrcRootIdx, uint32_t Field);

  /// src.fld := null. The deletion barrier fires on the overwritten value
  /// exactly as in store; there is no insertion barrier because null needs
  /// no protection. This is how an application severs an edge (e.g. the
  /// ledger workload truncating a history chain).
  void storeNull(size_t SrcRootIdx, uint32_t Field);

  /// Validated read/write of the object's GC-inert payload word
  /// (RtHeap::dataWord). No barrier — the payload holds no references.
  uint64_t loadData(size_t RootIdx);
  void storeData(size_t RootIdx, uint64_t V);

  /// Allocate an object marked with the local allocation color; the new
  /// reference becomes a root. Returns its root index or -1 if the heap is
  /// exhausted. With RtConfig::LocalAllocPool > 0 the fast path is a
  /// CAS-free bump through this thread's TLAB run; the allocation color is
  /// re-read from the local fA view at every bump, so a TLAB claimed
  /// before an allocation-color flip cannot mint wrongly-colored objects
  /// after it (the handshake that flipped fA also refreshed the view).
  int alloc();

  /// roots := roots \ {roots[Idx]} (swap-with-back removal).
  void discard(size_t RootIdx);

  /// roots := roots ∪ {R}: adopt a reference received out of band (a
  /// global, a message) as a root. Like load, adoption carries no barrier;
  /// the handle takes the object's current epoch. Returns the root index,
  /// or -1 for RtNull.
  int adoptRoot(RtRef R);

  /// GC-safe point: poll for and service a pending handshake. Call this at
  /// "backward branches and call returns" — i.e. regularly, and never
  /// in the middle of a load/store/alloc (the API guarantees that).
  void safepoint();

  //===-- Introspection ----------------------------------------------------===//

  size_t numRoots() const { return Roots.size(); }
  const RootHandle &root(size_t Idx) const { return Roots[Idx]; }

  /// Direct validated dereference used by tests.
  RtRef rootRef(size_t Idx) const { return Roots[Idx].Ref; }

  /// Return the unused TLAB tail and any allocation-pool slots to the heap
  /// (called by deregistration; harmless when the pool is disabled or
  /// empty). Reserved slots are invisible to the sweep, so a departing
  /// mutator that skips this leaks them until process exit.
  void releaseAllocPool();

private:
  friend class RtCollector;
  friend class StwCollector;
  friend class GcRuntime; // deregistration publishes the worklist

  /// Validate a root handle before any access through it.
  void checkHandle(const RootHandle &H, const char *What) const;

  /// Fault injection: yield at a racy point with probability
  /// 1/TortureLevel (no-op when torture is off).
  void maybeYield();

  /// The mark procedure with work-list publication (Fig 5 lines 12-13).
  void barrierMark(RtRef R);

  /// Handshake handler (the mutator side of Figure 4).
  void handleHandshake(uint32_t Request);

  /// Refresh the local control-state copies from the shared variables.
  void refreshView();

  /// Mark all roots into the private work-list (get-roots handshake).
  void markOwnRoots();

  /// Transfer the private work-list chain to the shared list.
  void transferWorklist();

  GcRuntime &Rt;
  RtHeap &Heap;
  unsigned Index;

  /// Per-thread event ring (null ⇒ tracing off; every hook is then a
  /// single null test).
  observe::TraceBuffer *Trace = nullptr;

  /// This mutator's handshake channel, cached at registration. The slot
  /// object is stable for the runtime's lifetime, but the registry vector
  /// holding it is not: another thread registering can reallocate it, so
  /// safepoints must never index the registry (GcRuntime::channelOf).
  HsChannel *Chan = nullptr;

  // Local copies of the collector control state (refreshed at handshakes).
  bool FmLocal = false;
  bool FaLocal = false;
  RtPhase PhaseLocal = RtPhase::Idle;

  // Shadow stack of roots.
  std::vector<RootHandle> Roots;

  // Private work-list: intrusive chain through the heap's WorkNext links.
  RtRef WorkHead = RtNull;
  RtRef WorkTail = RtNull;

  uint32_t LastHandledRequest = 0;

  /// True between this cycle's get-roots handshake and the next idle
  /// round; drives the §4 insertion-barrier elision branch.
  bool RootsMarkedThisCycle = false;

  /// The allocation slow path: refill the TLAB/pool (retrying once — the
  /// quarter cap races with peers draining the lists) and fall back to a
  /// direct heap allocation before reporting exhaustion.
  RtRef allocSlowPath();

  /// §4 allocation-pool extension, scaled out to a TLAB: a contiguous run
  /// of reserved-but-unallocated slots this thread bump-allocates through
  /// without synchronization. Refilled via RtHeap::reserveRun; the unused
  /// tail is returned to the heap on deregistration.
  RtRef TlabBase = RtNull;
  uint32_t TlabPos = 0;
  uint32_t TlabLen = 0;

  /// Scattered reserved singles (fragmented-heap overflow from reserveRun's
  /// scatter top-up). Drained after the TLAB run, returned on deregister.
  std::vector<RtRef> AllocPool;

  /// Cheap per-thread PRNG state for torture-mode yield decisions.
  uint64_t TortureRng = 0;

  /// Schedule fuzzer (inert unless RtConfig::FuzzSchedules): perturbs
  /// safepoint polls and handshake handlers.
  ScheduleFuzzer Fuzz;

  MutStats Stats;
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_MUTATORCONTEXT_H
