//===- runtime/InvariantObservatory.h - Live §3.2 invariant checking ------===//
///
/// \file
/// The runtime invariant observatory: at handshake boundaries (and the
/// configurable SweepBegin/CycleEnd cycle points) the collector snapshots
/// the quiescent heap/color/phase/worklist state (GcRuntime::captureSnapshot),
/// lifts it into the model's abstract domain (invariants/RtAdapter.h), and
/// evaluates the boundary-gated §3.2 suite — the model checker's invariant,
/// replayed against the real threads on real hardware.
///
/// On a violation the observatory keeps a structured record: the shared
/// violation name (matching the explorer's prediction vocabulary), the
/// offending reference, the boundary/cycle/phase, and a rendered state dump
/// (invariants/Describe.h) with per-mutator roots and worklists. Every
/// check emits metrics (invariant.checked / violations / snapshot_ns) and,
/// when tracing is on, SnapshotBegin/End and InvariantViolation events into
/// the collector's trace ring.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_INVARIANTOBSERVATORY_H
#define TSOGC_RUNTIME_INVARIANTOBSERVATORY_H

#include "invariants/Violation.h"
#include "observe/Metrics.h"
#include "observe/Snapshot.h"
#include "runtime/RtTypes.h"

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace tsogc::rt {

class GcRuntime;

class InvariantObservatory {
public:
  /// One detected violation, with everything a §3.2 post-mortem needs.
  struct ViolationRecord {
    std::string Name;   ///< Shared with the model suite ("valid-refs", ...).
    std::string Detail; ///< Which reference/edge broke the invariant.
    std::string Dump;   ///< describeSnapshot rendering of the state.
    observe::RtHsBoundary Boundary = observe::RtHsBoundary::Audit;
    uint64_t Cycle = 0;
    uint8_t Phase = 0;
    uint32_t OffendingRef = ~0u; ///< Parsed from Detail; RtNull if none.
  };

  explicit InvariantObservatory(GcRuntime &Rt) : Rt(Rt) {}

  /// Period gate: true when cycle ordinal \p Cycle should be observed.
  bool shouldSample(uint64_t Cycle) const;

  /// Capture + lift + check at boundary \p B. The caller owns quiescence
  /// (see GcRuntime::captureSnapshot) and passes its private chain head.
  /// Returns the number of new violations (0 or 1: first failure wins per
  /// snapshot) and accounts the capture+check cost. Thread-safe against
  /// concurrent violations() readers; checks themselves never overlap (one
  /// collector).
  unsigned checkNow(observe::RtHsBoundary B, RtRef CollectorWorkHead);

  /// Copies of all violation records so far.
  std::vector<ViolationRecord> violations() const;

  uint64_t checked() const {
    return Checked.load(std::memory_order_relaxed);
  }
  uint64_t snapshotCount() const {
    return Snapshots.load(std::memory_order_relaxed);
  }
  uint64_t violationCount() const {
    return ViolationTotal.load(std::memory_order_relaxed);
  }
  uint64_t snapshotNsTotal() const {
    return SnapshotNsTotal.load(std::memory_order_relaxed);
  }
  uint64_t maxSnapshotNs() const {
    return MaxSnapshotNs.load(std::memory_order_relaxed);
  }

  /// Register the observatory's counters: "<Prefix>checked",
  /// "<Prefix>snapshots", "<Prefix>violations", "<Prefix>snapshot_ns_total",
  /// "<Prefix>max_snapshot_ns".
  void exportMetrics(observe::MetricsRegistry &Reg,
                     const std::string &Prefix = "invariant.") const;

private:
  GcRuntime &Rt;

  std::atomic<uint64_t> Checked{0};
  std::atomic<uint64_t> Snapshots{0};
  std::atomic<uint64_t> ViolationTotal{0};
  std::atomic<uint64_t> SnapshotNsTotal{0};
  std::atomic<uint64_t> MaxSnapshotNs{0};

  mutable std::mutex Mutex;
  std::vector<ViolationRecord> Violations;
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_INVARIANTOBSERVATORY_H
