//===- runtime/MarkerPool.cpp ----------------------------------------------===//

#include "runtime/MarkerPool.h"

using namespace tsogc::rt;

MarkerPool::MarkerPool(GcRuntime &Rt, unsigned Workers, bool Fm)
    : Rt(Rt), Heap(Rt.heap()), Workers(Workers), Fm(Fm), States(Workers) {
  TSOGC_CHECK(Workers >= 1, "pool needs at least the calling thread");
  TSOGC_CHECK(Workers <= Heap.sharedStripes(),
              "worker count exceeds shared-work stripes (MarkWorkers "
              "mismatch between config and pool)");
  // Resolve trace buffers on the calling thread: TraceSink::createBuffer
  // takes a lock, and helper W always reuses the same tid-stamped ring
  // across cycles.
  for (unsigned W = 0; W < Workers; ++W) {
    States[W].Trace = Rt.markWorkerTrace(W);
    States[W].Fuzz.seed(Rt.config().FuzzSchedules, /*Salt=*/0x2000 + W,
                        Rt.config().FuzzMaxDelayUs);
  }
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back([this, W] { workerMain(W); });
}

MarkerPool::~MarkerPool() { finish(); }

void MarkerPool::dispatch(Cmd C) {
  DoneCount.store(0, std::memory_order_relaxed);
  NumIdle.store(0, std::memory_order_relaxed);
  RoundDone.store(false, std::memory_order_relaxed);
  CmdWord.store(static_cast<uint32_t>(C), std::memory_order_relaxed);
  // The bump publishes everything above; helpers acquire it.
  Epoch.fetch_add(1, std::memory_order_seq_cst);
}

void MarkerPool::awaitHelpers() {
  while (DoneCount.load(std::memory_order_acquire) != Workers - 1)
    std::this_thread::yield();
}

void MarkerPool::workerMain(unsigned W) {
  uint32_t SeenEpoch = 0;
  for (;;) {
    // Dispatches are strictly sequential (the collector awaits DoneCount
    // between them), so the epoch only ever advances by one.
    while (Epoch.load(std::memory_order_acquire) == SeenEpoch)
      std::this_thread::yield();
    ++SeenEpoch;
    Cmd C = static_cast<Cmd>(CmdWord.load(std::memory_order_relaxed));
    if (C == Cmd::Exit) {
      DoneCount.fetch_add(1, std::memory_order_release);
      return;
    }
    if (C == Cmd::Drain)
      drainLoop(W);
    else
      sweepShard(W);
    DoneCount.fetch_add(1, std::memory_order_release);
  }
}

void MarkerPool::drainRound() {
  ++Round;
  dispatch(Cmd::Drain);
  drainLoop(0);
  awaitHelpers();
}

void MarkerPool::sweepParallel() {
  dispatch(Cmd::Sweep);
  sweepShard(0);
  awaitHelpers();
}

void MarkerPool::finish() {
  if (Finished)
    return;
  Finished = true;
  if (!Threads.empty()) {
    dispatch(Cmd::Exit);
    awaitHelpers();
  }
  for (std::thread &T : Threads)
    T.join();
}

void MarkerPool::scan(unsigned W, RtRef Src) {
  WorkerState &S = States[W];
  ++S.Stats.Marked;
  const uint32_t NumFields = Heap.config().NumFields;
  for (uint32_t F = 0; F < NumFields; ++F) {
    RtRef Child = Heap.field(Src, F);
    if (Child == RtNull)
      continue;
    // The same Figure 5 mark as everywhere else: the CAS admits exactly
    // one winner, so two workers racing on Child cannot both push it.
    if (Heap.mark(Child, Fm, /*BarriersActive=*/true, &S.Stats.Cas))
      S.Priv.push_back(Child);
  }
  maybePublish(W);
}

void MarkerPool::maybePublish(unsigned W) {
  WorkerState &S = States[W];
  if (S.Priv.size() < PublishThreshold || Heap.hasShared(W))
    return;
  RtRef Head = RtNull, Tail = RtNull;
  for (size_t I = 0; I < PublishChunk; ++I) {
    RtRef R = S.Priv.back();
    S.Priv.pop_back();
    Heap.setWorkNext(R, Head);
    if (Head == RtNull)
      Tail = R;
    Head = R;
  }
  Heap.spliceShared(Head, Tail, W);
  ++S.Stats.ChainsPublished;
}

bool MarkerPool::takeFromStripes(unsigned W) {
  WorkerState &S = States[W];
  S.Fuzz.maybeDelay(); // fuzz: reorder steals across workers
  const unsigned N = Heap.sharedStripes();
  for (unsigned I = 0; I < N; ++I) {
    const unsigned Stripe = (W + I) % N;
    RtRef Chain = Heap.takeShared(Stripe);
    if (Chain == RtNull)
      continue;
    if (Stripe == W % N)
      ++S.Stats.ChainsTaken;
    else
      ++S.Stats.ChainsStolen;
    // Unlink the whole chain into the private stack; the links must be
    // cleared before scanning (a scanned object's link is dead storage).
    while (Chain != RtNull) {
      RtRef Next = Heap.workNext(Chain);
      Heap.setWorkNext(Chain, RtNull);
      S.Priv.push_back(Chain);
      Chain = Next;
    }
    return true;
  }
  ++S.Stats.StealFails;
  return false;
}

void MarkerPool::drainLoop(unsigned W) {
  WorkerState &S = States[W];
  observe::trace(S.Trace, observe::EventKind::MarkWorkerBegin, W, Round);
  for (;;) {
    while (!S.Priv.empty()) {
      RtRef Src = S.Priv.back();
      S.Priv.pop_back();
      scan(W, Src);
    }
    if (takeFromStripes(W))
      continue;
    // Out of work: join the idle set and wait for either more stripes to
    // fill or the round to be declared over. Worker 0 doubles as the
    // detector. The decision races benignly with a concurrent splice (a
    // worker may leave the idle set and empty a stripe between the two
    // reads below): every worker still drains its private stack before
    // exiting, and anything left on a stripe is caught by the caller's
    // post-handshake anySharedWork() check, which starts another round.
    NumIdle.fetch_add(1, std::memory_order_seq_cst);
    bool Exit = false;
    for (;;) {
      if (RoundDone.load(std::memory_order_acquire)) {
        Exit = true;
        break;
      }
      if (W == 0 && NumIdle.load(std::memory_order_seq_cst) == Workers &&
          !Heap.anySharedWork()) {
        RoundDone.store(true, std::memory_order_release);
        Exit = true;
        break;
      }
      if (Heap.anySharedWork()) {
        NumIdle.fetch_sub(1, std::memory_order_seq_cst);
        break; // back to stealing
      }
      std::this_thread::yield();
    }
    if (Exit)
      break;
  }
  observe::trace(S.Trace, observe::EventKind::MarkWorkerEnd, W,
                 static_cast<uint32_t>(S.Stats.Marked));
}

void MarkerPool::sweepShard(unsigned W) {
  WorkerState &S = States[W];
  // Shard the used slab only: slots above the bump watermark have never
  // been allocated, and any virgin run claimed during this sweep is
  // allocated with the current mark sense, so skipping it is equivalent.
  const uint64_t Cap = std::min(Heap.capacity(), Heap.bumpWatermark());
  const RtRef Lo = static_cast<RtRef>(Cap * W / Workers);
  const RtRef Hi = static_cast<RtRef>(Cap * (W + 1) / Workers);
  std::vector<RtRef> Freed;
  for (RtRef R = Lo; R < Hi; ++R) {
    uint32_t H = Heap.header(R);
    if (!hdr::allocated(H))
      continue;
    if (hdr::mark(H) != Fm) {
      Heap.freeNoRecycle(R, S.Trace);
      Freed.push_back(R);
      ++S.Stats.ObjectsFreed;
    } else {
      ++S.Stats.ObjectsRetained;
    }
  }
  if (!Freed.empty())
    Heap.returnFreeSlots(Freed);
}

void MarkerPool::mergeInto(CycleStats &CS) const {
  CS.MarkWorkersUsed = Workers;
  CS.Workers.clear();
  CS.Workers.reserve(Workers);
  for (const WorkerState &S : States) {
    CS.Workers.push_back(S.Stats);
    CS.ObjectsMarked += S.Stats.Marked;
    CS.CollectorCas += S.Stats.Cas;
    CS.SharedChainsTaken += S.Stats.ChainsTaken + S.Stats.ChainsStolen;
    CS.ChainsStolen += S.Stats.ChainsStolen;
    CS.StealFails += S.Stats.StealFails;
    CS.ChainsPublished += S.Stats.ChainsPublished;
    CS.ObjectsFreed += S.Stats.ObjectsFreed;
    CS.ObjectsRetained += S.Stats.ObjectsRetained;
  }
}
