//===- runtime/MarkerPool.h - Parallel mark/sweep worker pool -------------===//
///
/// \file
/// A pool of RtConfig::MarkWorkers workers serving one collection cycle.
/// Worker 0 is the calling (collector) thread; the constructor spawns the
/// other Workers-1 as helper threads that park between rounds.
///
/// Marking: each worker drains a private grey stack, scanning fields
/// through the same CAS-on-contention RtHeap::mark the serial collector
/// uses — the CAS admits exactly one winner per object, which is what makes
/// concurrent marking sound without further coordination. Workers publish
/// overflow chains onto their own shared-work stripe and steal whole chains
/// from other stripes when dry. A drain round ends when every worker is
/// idle and all stripes are empty; the detection is conservative (a chain
/// spliced concurrently with the decision may survive the round), which is
/// safe because the caller re-checks anySharedWork() after the get-work
/// handshake — the exact termination structure of the serial Figure 2 loop,
/// with drainRound() standing in for drainWorklist().
///
/// Sweeping: disjoint contiguous slab shards, lock-free header clears
/// (freeNoRecycle) batched into one free-list push per shard.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_MARKERPOOL_H
#define TSOGC_RUNTIME_MARKERPOOL_H

#include "runtime/GcRuntime.h"
#include "runtime/ScheduleFuzzer.h"

#include <thread>

namespace tsogc::rt {

class MarkerPool {
public:
  /// \p Fm is the cycle's mark sense (already flipped by the caller).
  MarkerPool(GcRuntime &Rt, unsigned Workers, bool Fm);
  ~MarkerPool(); // joins the helpers if finish() was not called

  MarkerPool(const MarkerPool &) = delete;
  MarkerPool &operator=(const MarkerPool &) = delete;

  /// One drain round: all workers mark until global quiescence (every
  /// worker idle, every stripe observed empty). Runs on the caller.
  void drainRound();

  /// Sweep the slab in Workers disjoint shards. Runs on the caller.
  void sweepParallel();

  /// Retire the helper threads (idempotent; also run by the destructor).
  void finish();

  /// Fold the per-worker counters into \p CS (totals + Workers vector).
  void mergeInto(CycleStats &CS) const;

private:
  enum class Cmd : uint32_t { Drain, Sweep, Exit };

  /// Publish policy: with at least PublishThreshold private greys and an
  /// empty own stripe, expose a chain of PublishChunk for stealing.
  static constexpr size_t PublishThreshold = 32;
  static constexpr size_t PublishChunk = 16;

  struct alignas(64) WorkerState {
    std::vector<RtRef> Priv;              ///< Private grey stack.
    MarkWorkerStats Stats;
    observe::TraceBuffer *Trace = nullptr;
    /// Schedule fuzzer (inert unless RtConfig::FuzzSchedules): perturbs
    /// this worker's steal attempts.
    ScheduleFuzzer Fuzz;
  };

  void workerMain(unsigned W);
  void drainLoop(unsigned W);
  void sweepShard(unsigned W);
  void scan(unsigned W, RtRef Src);
  void maybePublish(unsigned W);
  bool takeFromStripes(unsigned W);
  void dispatch(Cmd C);
  void awaitHelpers();

  GcRuntime &Rt;
  RtHeap &Heap;
  const unsigned Workers;
  const bool Fm;

  std::vector<WorkerState> States;
  std::vector<std::thread> Threads;

  /// Round dispatch: helpers spin (yielding) on Epoch; each bump publishes
  /// CmdWord and the reset barrier state below, and releases one round.
  std::atomic<uint32_t> Epoch{0};
  std::atomic<uint32_t> CmdWord{0};
  /// Helpers done with the current dispatch (collector awaits Workers-1).
  std::atomic<uint32_t> DoneCount{0};
  /// Termination barrier for drain rounds: workers out of work.
  std::atomic<uint32_t> NumIdle{0};
  std::atomic<bool> RoundDone{false};

  uint32_t Round = 0; ///< Drain-round ordinal (trace events).
  bool Finished = false;
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_MARKERPOOL_H
