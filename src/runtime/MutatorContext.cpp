//===- runtime/MutatorContext.cpp ------------------------------------------===//

#include "runtime/MutatorContext.h"

#include "runtime/GcRuntime.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

MutatorContext::MutatorContext(GcRuntime &Rt, unsigned Index,
                               observe::TraceBuffer *Trace)
    : Rt(Rt), Heap(Rt.heap()), Index(Index), Trace(Trace) {
  TortureRng = 0x9e3779b97f4a7c15ULL * (Index + 1);
  Fuzz.seed(Rt.heap().config().FuzzSchedules, /*Salt=*/Index,
            Rt.heap().config().FuzzMaxDelayUs);
  // A mutator registered while the collector is mid-cycle would join with
  // stale views; registration is specified to happen while the collector is
  // idle, so syncing with the current shared values is exact.
  refreshView();
  // Cache the channel address now, under the registry lock: the slot is
  // stable, the registry vector is not (concurrent registration moves it).
  Chan = &Rt.channelOf(Index);
  // A reused slot's channel may still hold the previous occupant's last
  // request; it was addressed to the old generation (the collector skips
  // this slot for it), so start from it instead of replaying it.
  LastHandledRequest = Chan->Request.load(std::memory_order_acquire);
}

void MutatorContext::maybeYield() {
  const uint32_t Level = Heap.config().TortureLevel;
  if (Level == 0)
    return;
  // xorshift64*: cheap enough to sit inside the barriers.
  TortureRng ^= TortureRng >> 12;
  TortureRng ^= TortureRng << 25;
  TortureRng ^= TortureRng >> 27;
  if ((TortureRng * 0x2545f4914f6cdd1dULL >> 32) % Level == 0)
    std::this_thread::yield();
}

void MutatorContext::checkHandle(const RootHandle &H, const char *What) const {
  if (!Heap.config().Validate)
    return;
  uint32_t Hd = Heap.header(H.Ref);
  if (!hdr::allocated(Hd) || hdr::epoch(Hd) != H.Epoch)
    reportFatalError(
        format("GC SAFETY VIOLATION: %s through root handle to freed object "
               "%u (epoch %u, now %u, allocated=%d)",
               What, H.Ref, H.Epoch, hdr::epoch(Hd), hdr::allocated(Hd) ? 1 : 0)
            .c_str(),
        __FILE__, __LINE__);
}

int MutatorContext::load(size_t SrcRootIdx, uint32_t Field) {
  const RootHandle &Src = Roots[SrcRootIdx];
  checkHandle(Src, "load");
  ++Stats.Loads;
  RtRef V = Heap.field(Src.Ref, Field);
  if (V == RtNull)
    return -1;
  // Loads carry no barrier (§2.1: a read barrier would be too expensive);
  // the loaded reference simply becomes a root.
  Roots.push_back(RootHandle{V, Heap.epoch(V)});
  checkHandle(Roots.back(), "load-acquire");
  return static_cast<int>(Roots.size() - 1);
}

void MutatorContext::store(size_t DstRootIdx, size_t SrcRootIdx,
                           uint32_t Field) {
  const RootHandle &Dst = Roots[DstRootIdx];
  const RootHandle &Src = Roots[SrcRootIdx];
  checkHandle(Dst, "store-dst");
  checkHandle(Src, "store-src");
  ++Stats.Stores;
  const RtConfig &Cfg = Heap.config();
  // Deletion barrier: mark the reference about to be overwritten (Fig 6
  // line 8). Note the read and the overwrite are not atomic — under racy
  // stores by other mutators the marked reference may not be the one
  // actually overwritten, exactly as the model permits.
  // TSOGC_ABLATE_DELETION_BARRIER compiles the barrier out entirely — the
  // build-level counterpart of RtConfig::DeletionBarrier = false, for the
  // barrier-ablation experiments (the observatory catches the resulting
  // §3.2 violations on real hardware; see examples/barrier_ablation_rt).
#ifdef TSOGC_ABLATE_DELETION_BARRIER
  constexpr bool DeletionBarrierOn = false;
#else
  const bool DeletionBarrierOn = Cfg.DeletionBarrier;
#endif
  if (DeletionBarrierOn) {
    RtRef Old = Heap.field(Src.Ref, Field);
    maybeYield(); // torture: widen the read-to-mark window (§3.2's race)
    if (Old != RtNull)
      barrierMark(Old);
  }
  // Insertion barrier: mark the target being stored (Fig 6 line 9). The
  // §4 elision variant adds one branch: skip it once this mutator's roots
  // have been marked this cycle.
  if (Cfg.InsertionBarrier &&
      !(Cfg.InsertionBarrierElideAfterRoots && RootsMarkedThisCycle))
    barrierMark(Dst.Ref);
  maybeYield(); // torture: between the barriers and the store itself
  Heap.setField(Src.Ref, Field, Dst.Ref);
}

void MutatorContext::storeNull(size_t SrcRootIdx, uint32_t Field) {
  const RootHandle &Src = Roots[SrcRootIdx];
  checkHandle(Src, "store-null-src");
  ++Stats.Stores;
#ifdef TSOGC_ABLATE_DELETION_BARRIER
  constexpr bool DeletionBarrierOn = false;
#else
  const bool DeletionBarrierOn = Heap.config().DeletionBarrier;
#endif
  // Severing an edge is precisely the case the deletion barrier exists
  // for (Fig 1: an unmarked object can become hidden behind the
  // snapshot); null itself needs no insertion barrier.
  if (DeletionBarrierOn) {
    RtRef Old = Heap.field(Src.Ref, Field);
    maybeYield();
    if (Old != RtNull)
      barrierMark(Old);
  }
  maybeYield();
  Heap.setField(Src.Ref, Field, RtNull);
}

uint64_t MutatorContext::loadData(size_t RootIdx) {
  const RootHandle &H = Roots[RootIdx];
  checkHandle(H, "load-data");
  return Heap.dataWord(H.Ref);
}

void MutatorContext::storeData(size_t RootIdx, uint64_t V) {
  const RootHandle &H = Roots[RootIdx];
  checkHandle(H, "store-data");
  Heap.setDataWord(H.Ref, V);
}

int MutatorContext::alloc() {
  ++Stats.Allocs;
  // New objects take the allocation color from the *local* fA view; stale
  // views are what the H3/H4 rounds are for. FaLocal is re-read at every
  // bump — never snapshotted per refill batch — so a TLAB claimed while
  // the collector was idle allocates black once the mark phase's rounds
  // have refreshed this thread's view.
  RtRef R;
  if (Heap.config().LocalAllocPool == 0) {
    R = Heap.alloc(FaLocal, Trace);
  } else if (TlabPos < TlabLen) {
    // §4 extension, scaled out: CAS-free bump through the reserved run.
    R = Heap.allocFromReserved(TlabBase + TlabPos, FaLocal, Trace);
    ++TlabPos;
    ++Stats.TlabHits;
  } else if (!AllocPool.empty()) {
    R = Heap.allocFromReserved(AllocPool.back(), FaLocal, Trace);
    AllocPool.pop_back();
    ++Stats.TlabHits;
  } else {
    R = allocSlowPath();
  }
  if (R == RtNull) {
    ++Stats.AllocFailures;
    return -1;
  }
  Roots.push_back(RootHandle{R, Heap.epoch(R)});
  return static_cast<int>(Roots.size() - 1);
}

RtRef MutatorContext::allocSlowPath() {
  const uint32_t PoolSize = Heap.config().LocalAllocPool;
  // Two refill attempts: reserveRun applies the quarter-of-free cap from
  // the counts current at claim time, but a peer can still drain the lists
  // between the virgin-space CAS and the lock, so an empty first answer is
  // retried once before concluding anything.
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    RtHeap::FreeRun Run = Heap.reserveRun(PoolSize, &AllocPool);
    if (Run.Len != 0) {
      TlabBase = Run.Base;
      TlabPos = 0;
      TlabLen = Run.Len;
      ++Stats.TlabRefills;
      observe::trace(Trace, observe::EventKind::TlabRefill, Run.Base,
                     Run.Len);
      RtRef R = Heap.allocFromReserved(TlabBase + TlabPos, FaLocal, Trace);
      ++TlabPos;
      return R;
    }
    if (!AllocPool.empty()) {
      // The scatter top-up found singles even though no run was left.
      ++Stats.TlabRefills;
      RtRef R = Heap.allocFromReserved(AllocPool.back(), FaLocal, Trace);
      AllocPool.pop_back();
      return R;
    }
  }
  // Both refills came back empty: fall back to a direct allocation (a
  // sweep shard may return slots at any moment) rather than reporting
  // exhaustion while peers hold slack.
  ++Stats.AllocFallbacks;
  return Heap.alloc(FaLocal, Trace);
}

void MutatorContext::releaseAllocPool() {
  if (TlabPos < TlabLen) {
    Heap.unreserveRun(
        RtHeap::FreeRun{TlabBase + TlabPos, TlabLen - TlabPos});
  }
  TlabBase = RtNull;
  TlabPos = TlabLen = 0;
  if (AllocPool.empty())
    return;
  Heap.unreserve(AllocPool);
  AllocPool.clear();
}

int MutatorContext::adoptRoot(RtRef R) {
  if (R == RtNull)
    return -1;
  Roots.push_back(RootHandle{R, Heap.epoch(R)});
  checkHandle(Roots.back(), "adopt");
  return static_cast<int>(Roots.size() - 1);
}

void MutatorContext::discard(size_t RootIdx) {
  TSOGC_CHECK(RootIdx < Roots.size(), "discard of a non-existent root");
  Roots[RootIdx] = Roots.back();
  Roots.pop_back();
}

void MutatorContext::barrierMark(RtRef R) {
  maybeYield(); // torture: just before the unsynchronized flag load
  const bool Active = PhaseLocal != RtPhase::Idle;
  if (Heap.mark(R, FmLocal, Active, &Stats.BarrierCas)) {
    ++Stats.BarrierMarks;
    observe::trace(Trace, observe::EventKind::BarrierMark, R);
    // Winner publishes the grey on the private work-list (Fig 5 line 13).
    Heap.setWorkNext(R, WorkHead);
    WorkHead = R;
    if (WorkTail == RtNull)
      WorkTail = R;
  }
}

void MutatorContext::refreshView() {
  FmLocal = Rt.FM.load(std::memory_order_relaxed) != 0;
  FaLocal = Rt.FA.load(std::memory_order_relaxed) != 0;
  PhaseLocal =
      static_cast<RtPhase>(Rt.Phase.load(std::memory_order_relaxed));
}

void MutatorContext::markOwnRoots() {
  for (const RootHandle &H : Roots) {
    checkHandle(H, "root-mark");
    if (Heap.mark(H.Ref, FmLocal, /*BarriersActive=*/true,
                  &Stats.BarrierCas)) {
      ++Stats.RootsMarked;
      Heap.setWorkNext(H.Ref, WorkHead);
      WorkHead = H.Ref;
      if (WorkTail == RtNull)
        WorkTail = H.Ref;
    }
  }
}

void MutatorContext::transferWorklist() {
  if (WorkHead == RtNull)
    return;
  // The slot index spreads concurrent transfers across the shared-work
  // stripes (one stripe with MarkWorkers == 1: the original single list).
  Heap.spliceShared(WorkHead, WorkTail, Index);
  WorkHead = WorkTail = RtNull;
}

void MutatorContext::safepoint() {
  Fuzz.maybeDelay(); // fuzz: perturb when this thread observes requests
  HsChannel &Ch = *Chan;
  uint32_t Req = Ch.Request.load(std::memory_order_acquire);
  if (Req == LastHandledRequest)
    return;
  handleHandshake(Req);
}

void MutatorContext::handleHandshake(uint32_t Req) {
  HsChannel &Ch = *Chan;
  uint64_t T0 = nowNs();
  ++Stats.HandshakesSeen;

  // Load fence at acceptance (§2.4). The acquire load of Request plus this
  // fence order every earlier collector store before our view refresh.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  RtHsType Type = HsChannel::typeOf(Req);
  observe::trace(Trace, observe::EventKind::HandshakeRequest,
                 HsChannel::seqOf(Req), 0, static_cast<uint8_t>(Type));
  refreshView();
  maybeYield(); // torture: after the view refresh, before the work
  Fuzz.maybeDelay(); // fuzz: stretch the accept-to-ack window

  switch (Type) {
  case RtHsType::None:
  case RtHsType::Noop:
    if (PhaseLocal == RtPhase::Idle)
      RootsMarkedThisCycle = false; // a new cycle is beginning
    break;
  case RtHsType::GetRoots:
    markOwnRoots();
    transferWorklist();
    RootsMarkedThisCycle = true;
    break;
  case RtHsType::GetWork:
    transferWorklist();
    break;
  case RtHsType::Park: {
    // Stop-the-world baseline: acknowledge (we are parked), then block
    // until a new request arrives, and handle it (the resume no-op).
    LastHandledRequest = Req;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    Ch.Acked.store(HsChannel::seqOf(Req), std::memory_order_release);
    observe::trace(Trace, observe::EventKind::HandshakeAck,
                   HsChannel::seqOf(Req), 0, static_cast<uint8_t>(Type));
    // The handler's own work ends at the park acknowledgement; only that
    // span counts as handshake time. The blocked wait is accounted once,
    // under ParkNs — the recursive handler for the resume request times
    // itself like any other handshake (previously the park wait and the
    // resume handler were double-counted into HandshakeNs).
    uint64_t Dt = nowNs() - T0;
    Stats.HandshakeNs += Dt;
    Stats.MaxHandshakeNs = std::max(Stats.MaxHandshakeNs, Dt);
    observe::trace(Trace, observe::EventKind::ParkBegin,
                   HsChannel::seqOf(Req));
    uint64_t P0 = nowNs();
    uint32_t Next;
    while ((Next = Ch.Request.load(std::memory_order_acquire)) == Req)
      std::this_thread::yield();
    uint64_t ParkDt = nowNs() - P0;
    ++Stats.Parks;
    Stats.ParkNs += ParkDt;
    Stats.MaxParkNs = std::max(Stats.MaxParkNs, ParkDt);
    observe::trace(Trace, observe::EventKind::ParkEnd,
                   HsChannel::seqOf(Next));
    handleHandshake(Next);
    return;
  }
  }

  // Store fence at completion, then acknowledge.
  LastHandledRequest = Req;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Ch.Acked.store(HsChannel::seqOf(Req), std::memory_order_release);
  observe::trace(Trace, observe::EventKind::HandshakeAck,
                 HsChannel::seqOf(Req), 0, static_cast<uint8_t>(Type));

  uint64_t Dt = nowNs() - T0;
  Stats.HandshakeNs += Dt;
  Stats.MaxHandshakeNs = std::max(Stats.MaxHandshakeNs, Dt);
}
