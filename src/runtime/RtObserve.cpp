//===- runtime/RtObserve.cpp -----------------------------------------------===//

#include "runtime/RtObserve.h"

using namespace tsogc;
using namespace tsogc::rt;

void tsogc::rt::exportMetrics(const RtStats &S, observe::MetricsRegistry &Reg,
                              const std::string &Prefix) {
  Reg.counter(Prefix + "cycles", S.Cycles.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "freed_total",
              S.TotalFreed.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "marked_by_collector_total",
              S.TotalMarkedByCollector.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "barrier_marks_total",
              S.TotalBarrierMarks.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "termination_rounds_total",
              S.TotalTerminationRounds.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "cycle_ns_total",
              S.TotalCycleNs.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "max_cycle_ns",
              S.MaxCycleNs.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "chains_stolen_total",
              S.TotalChainsStolen.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "snapshots_total",
              S.TotalSnapshots.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "snapshot_ns_total",
              S.TotalSnapshotNs.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "invariant_violations_total",
              S.TotalInvariantViolations.load(std::memory_order_relaxed));
}

void tsogc::rt::exportAllocMetrics(const RtStats &S,
                                   observe::MetricsRegistry &Reg,
                                   const std::string &Prefix) {
  Reg.counter(Prefix + "tlab_hits",
              S.TotalTlabHits.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "refills",
              S.TotalTlabRefills.load(std::memory_order_relaxed));
  Reg.counter(Prefix + "fallbacks",
              S.TotalAllocFallbacks.load(std::memory_order_relaxed));
}

void tsogc::rt::exportMetrics(const CycleStats &C,
                              observe::MetricsRegistry &Reg,
                              const std::string &Prefix) {
  Reg.counter(Prefix + "cycle_ns", C.CycleNs);
  Reg.counter(Prefix + "mark_ns", C.MarkNs);
  Reg.counter(Prefix + "sweep_ns", C.SweepNs);
  Reg.counter(Prefix + "handshake_rounds", C.HandshakeRounds);
  Reg.counter(Prefix + "termination_rounds", C.TerminationRounds);
  Reg.counter(Prefix + "objects_marked", C.ObjectsMarked);
  Reg.counter(Prefix + "objects_freed", C.ObjectsFreed);
  Reg.counter(Prefix + "objects_retained", C.ObjectsRetained);
  Reg.counter(Prefix + "collector_cas", C.CollectorCas);
  Reg.counter(Prefix + "shared_chains_taken", C.SharedChainsTaken);
  Reg.counter(Prefix + "splice_walk_steps", C.SpliceWalkSteps);
  Reg.counter(Prefix + "mark_workers", C.MarkWorkersUsed);
  Reg.counter(Prefix + "chains_stolen", C.ChainsStolen);
  Reg.counter(Prefix + "steal_fails", C.StealFails);
  Reg.counter(Prefix + "chains_published", C.ChainsPublished);
  Reg.counter(Prefix + "snapshots", C.Snapshots);
  Reg.counter(Prefix + "snapshot_ns", C.SnapshotNs);
  Reg.counter(Prefix + "invariant_violations", C.InvariantViolations);
  for (size_t W = 0; W < C.Workers.size(); ++W) {
    const MarkWorkerStats &S = C.Workers[W];
    const std::string P = Prefix + "worker." + std::to_string(W) + ".";
    Reg.counter(P + "marked", S.Marked);
    Reg.counter(P + "cas", S.Cas);
    Reg.counter(P + "chains_taken", S.ChainsTaken);
    Reg.counter(P + "chains_stolen", S.ChainsStolen);
    Reg.counter(P + "steal_fails", S.StealFails);
    Reg.counter(P + "chains_published", S.ChainsPublished);
    Reg.counter(P + "objects_freed", S.ObjectsFreed);
    Reg.counter(P + "objects_retained", S.ObjectsRetained);
  }
}

void tsogc::rt::exportMetrics(const MutStats &M, observe::MetricsRegistry &Reg,
                              const std::string &Prefix) {
  Reg.counter(Prefix + "loads", M.Loads);
  Reg.counter(Prefix + "stores", M.Stores);
  Reg.counter(Prefix + "allocs", M.Allocs);
  Reg.counter(Prefix + "alloc_failures", M.AllocFailures);
  Reg.counter(Prefix + "tlab_hits", M.TlabHits);
  Reg.counter(Prefix + "tlab_refills", M.TlabRefills);
  Reg.counter(Prefix + "alloc_fallbacks", M.AllocFallbacks);
  Reg.counter(Prefix + "barrier_marks", M.BarrierMarks);
  Reg.counter(Prefix + "barrier_cas", M.BarrierCas);
  Reg.counter(Prefix + "handshakes_seen", M.HandshakesSeen);
  Reg.counter(Prefix + "roots_marked", M.RootsMarked);
  Reg.counter(Prefix + "handshake_ns", M.HandshakeNs);
  Reg.counter(Prefix + "max_handshake_ns", M.MaxHandshakeNs);
  Reg.counter(Prefix + "parks", M.Parks);
  Reg.counter(Prefix + "park_ns", M.ParkNs);
  Reg.counter(Prefix + "max_park_ns", M.MaxParkNs);
  Reg.counter(Prefix + "max_pause_ns", M.maxPauseNs());
}
