//===- runtime/RtHeap.h - Slab heap with atomic headers and fields --------===//
///
/// \file
/// The shared-memory heap of the runtime collector: a fixed slab of objects,
/// each with an atomic header (allocated + mark + epoch), atomic reference
/// fields, and an intrusive work-list link (Schism keeps the work-list link
/// in the object header; so do we).
///
/// Free space lives in two places. Virgin space — slots never yet allocated
/// — sits above a shared bump cursor and is claimed in contiguous runs with
/// a single CAS (RtHeap::reserveRun), the backbone of the per-mutator TLABs
/// (the §4 thread-local allocation-pool extension). Recycled slots returned
/// by the sweep are binned into size-class free-run lists segregated by run
/// length, so refills after the virgin space is gone still hand back the
/// longest contiguous run available. Reserved slots are unallocated and
/// therefore invisible to the sweep.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTHEAP_H
#define TSOGC_RUNTIME_RTHEAP_H

#include "observe/Trace.h"
#include "runtime/RtTypes.h"
#include "support/Assert.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

namespace tsogc::rt {

class RtHeap {
public:
  explicit RtHeap(const RtConfig &Cfg);

  const RtConfig &config() const { return Cfg; }
  uint32_t capacity() const { return Cfg.HeapObjects; }

  /// Number of currently allocated objects (approximate under concurrency).
  uint32_t allocatedCount() const {
    return AllocCount.load(std::memory_order_relaxed);
  }

  /// Pop a free object and initialize it: allocated, mark = \p MarkFlag,
  /// fields null. Returns RtNull when the slab is exhausted.
  /// Thread-safe (the model's atomic allocation, §3.1). \p Trace, when
  /// non-null, receives an Alloc event attributed to the calling thread.
  RtRef alloc(bool MarkFlag, observe::TraceBuffer *Trace = nullptr);

  /// A contiguous run of slab slots [Base, Base + Len): the unit a TLAB is
  /// made of. Len == 0 means no run.
  struct FreeRun {
    RtRef Base = RtNull;
    uint32_t Len = 0;
  };

  /// Reserve a contiguous run of up to \p Want free slots for a
  /// thread-local allocation buffer (the §4 extension). Reserved slots are
  /// invisible to other allocators and, being unallocated, ignored by the
  /// sweep. The virgin-space fast path claims the run with a single CAS on
  /// the shared bump cursor — no lock; once virgin space is exhausted the
  /// size-class free-run lists are consulted under the free lock.
  ///
  /// The claim is capped at a quarter of the free slots remaining so a
  /// near-exhaustion refill cannot strand the whole tail in one thread's
  /// TLAB. The cap is computed from the counts current *at claim time*
  /// (inside the CAS loop / under the lock), never from a stale snapshot —
  /// a refill returns an empty run only when there is truly nothing left.
  ///
  /// When the best recycled run is shorter than the capped \p Want and
  /// \p Scatter is non-null, the refill tops \p Scatter up with scattered
  /// single slots under the same lock acquisition, so fragmented heaps
  /// still amortize the lock over a batch.
  FreeRun reserveRun(unsigned Want, std::vector<RtRef> *Scatter = nullptr);

  /// Return the unused tail of a reserved run (TLAB retirement).
  void unreserveRun(FreeRun Run);

  /// Reserve up to \p N free slots (not necessarily contiguous) for a
  /// thread-local allocation pool. Appends to \p Out; returns the number
  /// reserved.
  unsigned reserveBatch(std::vector<RtRef> &Out, unsigned N);

  /// Return unused reserved slots to the global free list.
  void unreserve(const std::vector<RtRef> &Slots);

  /// Turn a reserved slot into a live object without synchronization: the
  /// slot is owned by the calling thread, and on TSO the reference can
  /// only escape after the initializing stores, so no fence is needed
  /// (§4 "Representations"). Defined inline: this is the TLAB bump path's
  /// entire body, and the cross-TU call cost is measurable at bench_alloc
  /// scale.
  RtRef allocFromReserved(RtRef R, bool MarkFlag,
                          observe::TraceBuffer *Trace = nullptr) {
    // Initialize fields before publishing the allocated bit. On TSO the
    // publication order suffices (§4: no MFENCE needed at allocation
    // because the reference can only escape after the initializing
    // stores commit).
    for (uint32_t F = 0; F < Cfg.NumFields; ++F)
      Fields[fieldIndex(R, F)].store(RtNull, std::memory_order_relaxed);
    Data[R].store(0, std::memory_order_relaxed);
    WorkNext[R].store(RtNull, std::memory_order_relaxed);
    uint32_t H = Headers[R].load(std::memory_order_relaxed);
    TSOGC_CHECK(!hdr::allocated(H), "free-list slot already allocated");
    Headers[R].store(hdr::withMark(H, MarkFlag) | hdr::AllocBit,
                     std::memory_order_release);
    AllocCount.fetch_add(1, std::memory_order_relaxed);
    observe::trace(Trace, observe::EventKind::Alloc, R, 0, MarkFlag ? 1 : 0);
    return R;
  }

  /// Sweep-side free: clears allocated, bumps the epoch, returns the slot
  /// to the free list. Collector only. \p Trace, when non-null, receives a
  /// Free event attributed to the calling (collector) thread.
  void free(RtRef R, observe::TraceBuffer *Trace = nullptr);

  /// The parallel sweep's two-step free: freeNoRecycle does everything
  /// free() does except the free-list push (header cleared, epoch bumped,
  /// count decremented) so sweep shards run lock-free; the caller batches
  /// the slots and hands them to returnFreeSlots — one lock per shard
  /// instead of one per object.
  void freeNoRecycle(RtRef R, observe::TraceBuffer *Trace = nullptr);
  void returnFreeSlots(const std::vector<RtRef> &Slots);

  /// Free slots currently available to allocators: unclaimed virgin space
  /// plus the recycled size-class lists (excludes reserved TLAB/pool
  /// slots). Takes the free-list lock; callers use it for refill policy,
  /// not on per-allocation fast paths.
  size_t freeListSize();

  /// One past the highest slot ever claimed from virgin space. Slots at or
  /// above it have never been allocated, so sweeps stop here instead of
  /// walking the whole slab. Monotonic; a racing virgin claim can only add
  /// slots that are allocated with the current mark sense (allocate-black
  /// during Sweep), which a sweep must retain anyway — skipping them is
  /// equivalent.
  uint32_t bumpWatermark() const {
    return std::min(Bump.load(std::memory_order_acquire), Cfg.HeapObjects);
  }

  /// Raw header access.
  uint32_t header(RtRef R) const {
    return Headers[R].load(std::memory_order_relaxed);
  }
  bool isAllocated(RtRef R) const { return hdr::allocated(header(R)); }
  bool markFlag(RtRef R) const { return hdr::mark(header(R)); }
  uint32_t epoch(RtRef R) const { return hdr::epoch(header(R)); }

  /// The mark procedure of Figure 5: plain load; if the object appears
  /// unmarked and \p BarriersActive, attempt the CAS; the winner (and only
  /// the winner) returns true and must push the object onto its work-list.
  /// \p CasAttempts is incremented when the slow path executes (for the
  /// Figure 5 cost experiments).
  bool mark(RtRef R, bool FmLocal, bool BarriersActive,
            uint64_t *CasAttempts = nullptr);

  /// Field accessors. Plain (relaxed) accesses: all ordering is provided by
  /// barriers, CAS and handshake fences, exactly as in §2.4.
  RtRef field(RtRef R, uint32_t F) const {
    return Fields[fieldIndex(R, F)].load(std::memory_order_relaxed);
  }
  void setField(RtRef R, uint32_t F, RtRef V) {
    Fields[fieldIndex(R, F)].store(V, std::memory_order_relaxed);
  }

  /// Per-object payload word (non-reference data: a balance, a sequence
  /// number). GC-inert — never traced, never part of reachability — and
  /// zeroed at allocation before the allocated bit is published, so a
  /// freshly allocated object always reads 0. Plain (relaxed) accesses
  /// like the reference fields: application-level ordering is the
  /// application's business (the ledger workload serializes payload
  /// writers with per-account locks).
  uint64_t dataWord(RtRef R) const {
    return Data[R].load(std::memory_order_relaxed);
  }
  void setDataWord(RtRef R, uint64_t V) {
    Data[R].store(V, std::memory_order_relaxed);
  }

  /// Instrumentation backdoor for tests and benchmarks: force the mark bit
  /// of a live object. Never used by the collector or the barriers.
  void setMarkFlagRaw(RtRef R, bool Mark) {
    uint32_t H = Headers[R].load(std::memory_order_relaxed);
    Headers[R].store(hdr::withMark(H, Mark), std::memory_order_relaxed);
  }

  /// Intrusive work-list link (one per object, like Schism's header word).
  RtRef workNext(RtRef R) const {
    return WorkNext[R].load(std::memory_order_relaxed);
  }
  void setWorkNext(RtRef R, RtRef V) {
    WorkNext[R].store(V, std::memory_order_relaxed);
  }

  /// Lock-free transfer target, generalized to MarkWorkers stripes: splice
  /// a whole private chain onto stripe Hint % stripes (the atomic
  /// W := W ∪ W_m of Figure 2 line 20). Mutators pass their slot index so
  /// concurrent transfers spread across stripes; mark worker W publishes
  /// overflow chains to stripe W, which is where its peers steal from.
  /// With MarkWorkers == 1 there is exactly one stripe and the behavior is
  /// the original single shared list.
  void spliceShared(RtRef Head, RtRef Tail, unsigned Hint = 0);

  /// Consumer side: atomically take the entire chain of one stripe.
  RtRef takeShared(unsigned Stripe = 0) {
    return SharedWork[Stripe % SharedWork.size()].exchange(
        RtNull, std::memory_order_acq_rel);
  }

  /// Read one stripe's chain head without consuming it. For quiescent-world
  /// introspection only (snapshot capture): with mutators parked and no
  /// cycle running nothing splices concurrently, so walking the chain via
  /// workNext is stable.
  RtRef sharedHead(unsigned Stripe) const {
    return SharedWork[Stripe % SharedWork.size()].load(
        std::memory_order_acquire);
  }

  /// Peek one stripe / all stripes for pending transfer chains. The peek
  /// only steers control flow (steal targets, termination re-checks); any
  /// actual consumption goes through takeShared's acquire exchange.
  bool hasShared(unsigned Stripe) const {
    return SharedWork[Stripe % SharedWork.size()].load(
               std::memory_order_acquire) != RtNull;
  }
  bool anySharedWork() const {
    for (const auto &Cell : SharedWork)
      if (Cell.load(std::memory_order_acquire) != RtNull)
        return true;
    return false;
  }

  unsigned sharedStripes() const {
    return static_cast<unsigned>(SharedWork.size());
  }

private:
  uint32_t fieldIndex(RtRef R, uint32_t F) const {
    TSOGC_CHECK(R < Cfg.HeapObjects && F < Cfg.NumFields,
                "field access out of range");
    return R * Cfg.NumFields + F;
  }

  RtConfig Cfg;
  std::vector<std::atomic<uint32_t>> Headers;
  std::vector<std::atomic<RtRef>> Fields;
  std::vector<std::atomic<uint64_t>> Data;
  std::vector<std::atomic<RtRef>> WorkNext;
  /// One transfer-list head per mark-worker stripe (size ≥ 1).
  std::vector<std::atomic<RtRef>> SharedWork;

  /// Size-class count for the recycled free-run lists: class k holds runs
  /// of length [2^k, 2^(k+1)), the last class open-ended.
  static constexpr unsigned NumSizeClasses = 5;
  static unsigned classOf(uint32_t Len) {
    unsigned C = 0;
    while (C + 1 < NumSizeClasses && Len >= (2u << C))
      ++C;
    return C;
  }

  //===-- All Locked helpers require FreeMutex held ----------------------===//

  /// Bin a run into its size class.
  void pushRunLocked(FreeRun Run);
  /// Pop one slot, preferring the smallest runs (big runs stay whole for
  /// TLAB refills). RtNull when every class is empty.
  RtRef popOneLocked();
  /// Pop the best-fitting run for \p Want: the first run in the smallest
  /// class that can hold Want (split at Want, remainder re-binned), else
  /// the longest run available. Len == 0 when every class is empty.
  FreeRun popRunLocked(unsigned Want);

  /// Claim up to \p Want contiguous virgin slots by CAS on the bump
  /// cursor; lock-free. \p CapQuarter additionally caps the claim at a
  /// quarter of the slots still free (virgin + recycled) at claim time.
  FreeRun claimVirgin(unsigned Want, bool CapQuarter = false);

  // The recycled-slot side of allocation keeps the model's coarseness: a
  // mutex guards the size-class run lists — the same single-atomic-action
  // abstraction the paper grants itself (§3.1), documented in DESIGN.md.
  // The virgin-space side (the bump cursor) is CAS-only.
  std::mutex FreeMutex;
  std::vector<FreeRun> FreeRuns[NumSizeClasses];
  /// Slots across all FreeRuns entries. Written under FreeMutex; read
  /// relaxed by the refill-cap policy (a stale read only skews the cap).
  std::atomic<uint32_t> FreeSlotCount{0};
  /// First never-claimed virgin slot (== HeapObjects when exhausted).
  std::atomic<uint32_t> Bump{0};
  std::atomic<uint32_t> AllocCount{0};
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTHEAP_H
