//===- runtime/RtHeap.h - Slab heap with atomic headers and fields --------===//
///
/// \file
/// The shared-memory heap of the runtime collector: a fixed slab of objects,
/// each with an atomic header (allocated + mark + epoch), atomic reference
/// fields, and an intrusive work-list link (Schism keeps the work-list link
/// in the object header; so do we). Allocation pops a free list; sweep
/// pushes freed objects back and bumps their epoch.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTHEAP_H
#define TSOGC_RUNTIME_RTHEAP_H

#include "observe/Trace.h"
#include "runtime/RtTypes.h"
#include "support/Assert.h"

#include <atomic>
#include <mutex>
#include <vector>

namespace tsogc::rt {

class RtHeap {
public:
  explicit RtHeap(const RtConfig &Cfg);

  const RtConfig &config() const { return Cfg; }
  uint32_t capacity() const { return Cfg.HeapObjects; }

  /// Number of currently allocated objects (approximate under concurrency).
  uint32_t allocatedCount() const {
    return AllocCount.load(std::memory_order_relaxed);
  }

  /// Pop a free object and initialize it: allocated, mark = \p MarkFlag,
  /// fields null. Returns RtNull when the slab is exhausted.
  /// Thread-safe (the model's atomic allocation, §3.1). \p Trace, when
  /// non-null, receives an Alloc event attributed to the calling thread.
  RtRef alloc(bool MarkFlag, observe::TraceBuffer *Trace = nullptr);

  /// Reserve up to \p N free slots for a thread-local allocation pool (the
  /// §4 extension). Reserved slots are invisible to other allocators and,
  /// being unallocated, ignored by the sweep. Appends to \p Out; returns
  /// the number reserved.
  unsigned reserveBatch(std::vector<RtRef> &Out, unsigned N);

  /// Return unused reserved slots to the global free list.
  void unreserve(const std::vector<RtRef> &Slots);

  /// Turn a reserved slot into a live object without synchronization: the
  /// slot is owned by the calling thread, and on TSO the reference can
  /// only escape after the initializing stores, so no fence is needed
  /// (§4 "Representations").
  RtRef allocFromReserved(RtRef R, bool MarkFlag,
                          observe::TraceBuffer *Trace = nullptr);

  /// Sweep-side free: clears allocated, bumps the epoch, returns the slot
  /// to the free list. Collector only. \p Trace, when non-null, receives a
  /// Free event attributed to the calling (collector) thread.
  void free(RtRef R, observe::TraceBuffer *Trace = nullptr);

  /// The parallel sweep's two-step free: freeNoRecycle does everything
  /// free() does except the free-list push (header cleared, epoch bumped,
  /// count decremented) so sweep shards run lock-free; the caller batches
  /// the slots and hands them to returnFreeSlots — one lock per shard
  /// instead of one per object.
  void freeNoRecycle(RtRef R, observe::TraceBuffer *Trace = nullptr);
  void returnFreeSlots(const std::vector<RtRef> &Slots);

  /// Free slots currently on the global list (excludes reserved pool
  /// slots). Takes the free-list lock; callers use it for refill policy,
  /// not on per-allocation fast paths.
  size_t freeListSize();

  /// Raw header access.
  uint32_t header(RtRef R) const {
    return Headers[R].load(std::memory_order_relaxed);
  }
  bool isAllocated(RtRef R) const { return hdr::allocated(header(R)); }
  bool markFlag(RtRef R) const { return hdr::mark(header(R)); }
  uint32_t epoch(RtRef R) const { return hdr::epoch(header(R)); }

  /// The mark procedure of Figure 5: plain load; if the object appears
  /// unmarked and \p BarriersActive, attempt the CAS; the winner (and only
  /// the winner) returns true and must push the object onto its work-list.
  /// \p CasAttempts is incremented when the slow path executes (for the
  /// Figure 5 cost experiments).
  bool mark(RtRef R, bool FmLocal, bool BarriersActive,
            uint64_t *CasAttempts = nullptr);

  /// Field accessors. Plain (relaxed) accesses: all ordering is provided by
  /// barriers, CAS and handshake fences, exactly as in §2.4.
  RtRef field(RtRef R, uint32_t F) const {
    return Fields[fieldIndex(R, F)].load(std::memory_order_relaxed);
  }
  void setField(RtRef R, uint32_t F, RtRef V) {
    Fields[fieldIndex(R, F)].store(V, std::memory_order_relaxed);
  }

  /// Per-object payload word (non-reference data: a balance, a sequence
  /// number). GC-inert — never traced, never part of reachability — and
  /// zeroed at allocation before the allocated bit is published, so a
  /// freshly allocated object always reads 0. Plain (relaxed) accesses
  /// like the reference fields: application-level ordering is the
  /// application's business (the ledger workload serializes payload
  /// writers with per-account locks).
  uint64_t dataWord(RtRef R) const {
    return Data[R].load(std::memory_order_relaxed);
  }
  void setDataWord(RtRef R, uint64_t V) {
    Data[R].store(V, std::memory_order_relaxed);
  }

  /// Instrumentation backdoor for tests and benchmarks: force the mark bit
  /// of a live object. Never used by the collector or the barriers.
  void setMarkFlagRaw(RtRef R, bool Mark) {
    uint32_t H = Headers[R].load(std::memory_order_relaxed);
    Headers[R].store(hdr::withMark(H, Mark), std::memory_order_relaxed);
  }

  /// Intrusive work-list link (one per object, like Schism's header word).
  RtRef workNext(RtRef R) const {
    return WorkNext[R].load(std::memory_order_relaxed);
  }
  void setWorkNext(RtRef R, RtRef V) {
    WorkNext[R].store(V, std::memory_order_relaxed);
  }

  /// Lock-free transfer target, generalized to MarkWorkers stripes: splice
  /// a whole private chain onto stripe Hint % stripes (the atomic
  /// W := W ∪ W_m of Figure 2 line 20). Mutators pass their slot index so
  /// concurrent transfers spread across stripes; mark worker W publishes
  /// overflow chains to stripe W, which is where its peers steal from.
  /// With MarkWorkers == 1 there is exactly one stripe and the behavior is
  /// the original single shared list.
  void spliceShared(RtRef Head, RtRef Tail, unsigned Hint = 0);

  /// Consumer side: atomically take the entire chain of one stripe.
  RtRef takeShared(unsigned Stripe = 0) {
    return SharedWork[Stripe % SharedWork.size()].exchange(
        RtNull, std::memory_order_acq_rel);
  }

  /// Read one stripe's chain head without consuming it. For quiescent-world
  /// introspection only (snapshot capture): with mutators parked and no
  /// cycle running nothing splices concurrently, so walking the chain via
  /// workNext is stable.
  RtRef sharedHead(unsigned Stripe) const {
    return SharedWork[Stripe % SharedWork.size()].load(
        std::memory_order_acquire);
  }

  /// Peek one stripe / all stripes for pending transfer chains. The peek
  /// only steers control flow (steal targets, termination re-checks); any
  /// actual consumption goes through takeShared's acquire exchange.
  bool hasShared(unsigned Stripe) const {
    return SharedWork[Stripe % SharedWork.size()].load(
               std::memory_order_acquire) != RtNull;
  }
  bool anySharedWork() const {
    for (const auto &Cell : SharedWork)
      if (Cell.load(std::memory_order_acquire) != RtNull)
        return true;
    return false;
  }

  unsigned sharedStripes() const {
    return static_cast<unsigned>(SharedWork.size());
  }

private:
  uint32_t fieldIndex(RtRef R, uint32_t F) const {
    TSOGC_CHECK(R < Cfg.HeapObjects && F < Cfg.NumFields,
                "field access out of range");
    return R * Cfg.NumFields + F;
  }

  RtConfig Cfg;
  std::vector<std::atomic<uint32_t>> Headers;
  std::vector<std::atomic<RtRef>> Fields;
  std::vector<std::atomic<uint64_t>> Data;
  std::vector<std::atomic<RtRef>> WorkNext;
  /// One transfer-list head per mark-worker stripe (size ≥ 1).
  std::vector<std::atomic<RtRef>> SharedWork;

  // Allocation is the model's single atomic action; a mutex keeps it
  // simple — the same coarseness the paper grants itself (§3.1, "the
  // coarsest and least defensible abstraction"), documented in DESIGN.md.
  std::mutex FreeMutex;
  std::vector<RtRef> FreeList;
  std::atomic<uint32_t> AllocCount{0};
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTHEAP_H
