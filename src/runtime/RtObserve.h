//===- runtime/RtObserve.h - Runtime stats → metrics registry -------------===//
///
/// \file
/// Bridges the runtime's plain stat structs (RtStats, CycleStats, MutStats)
/// into an observe::MetricsRegistry under stable dotted names, so every
/// bench and example exports the same schema (observe/Export.h) instead of
/// hand-rolled counter plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTOBSERVE_H
#define TSOGC_RUNTIME_RTOBSERVE_H

#include "observe/Metrics.h"
#include "runtime/RtStats.h"

#include <string>

namespace tsogc::rt {

/// Register the aggregate collector stats as counters/gauges named
/// "<Prefix>cycles", "<Prefix>freed_total", ... (Prefix typically "gc.").
void exportMetrics(const RtStats &S, observe::MetricsRegistry &Reg,
                   const std::string &Prefix = "gc.");

/// Register one cycle's record ("<Prefix>cycle_ns", "<Prefix>marked", ...).
void exportMetrics(const CycleStats &C, observe::MetricsRegistry &Reg,
                   const std::string &Prefix = "cycle.");

/// Register one mutator's counters ("<Prefix>allocs", "<Prefix>park_ns",
/// ...). Includes the derived max_pause_ns (see MutStats::maxPauseNs).
void exportMetrics(const MutStats &M, observe::MetricsRegistry &Reg,
                   const std::string &Prefix = "mut.");

/// Register the allocator scale-out aggregates ("alloc.tlab_hits",
/// "alloc.refills", "alloc.fallbacks") — the TLAB counters folded into
/// RtStats from deregistered mutators.
void exportAllocMetrics(const RtStats &S, observe::MetricsRegistry &Reg,
                        const std::string &Prefix = "alloc.");

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTOBSERVE_H
