//===- runtime/RtCollector.h - The collector cycle (Figure 2, real) -------===//
///
/// \file
/// One mark-sweep cycle over real threads: the six handshake rounds of
/// Figure 2, the marking loop with get-work termination rounds, and the
/// sweep. Also the stop-the-world baseline cycle, which parks every mutator
/// for the whole mark+sweep (experiment E11's comparison point).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTCOLLECTOR_H
#define TSOGC_RUNTIME_RTCOLLECTOR_H

#include "runtime/GcRuntime.h"
#include "runtime/ScheduleFuzzer.h"

namespace tsogc::rt {

class RtCollector {
public:
  explicit RtCollector(GcRuntime &Rt)
      : Rt(Rt), Heap(Rt.heap()), Trace(Rt.collectorTrace()) {
    Fuzz.seed(Rt.config().FuzzSchedules, /*Salt=*/0x6c01,
              Rt.config().FuzzMaxDelayUs);
  }

  /// Run one on-the-fly collection cycle on the calling thread.
  CycleStats runCycle();

  /// Run one stop-the-world cycle: park all mutators, mark from their
  /// roots, sweep, release.
  CycleStats runStwCycle();

  /// Park the world and audit reachability (see GcRuntime::auditHeap).
  GcRuntime::HeapAudit audit();

private:
  /// One round of soft handshakes (Figure 4): store fence, set every
  /// active mutator's request, await all acknowledgements, load fence.
  void handshakeRound(RtHsType Type);

  /// Drain the collector's work-list, scanning fields through mark.
  void drainWorklist(CycleStats &CS);

  /// Take every shared-work stripe into the collector's private chain.
  /// O(1) per stripe in the cycle's steady state (the collector polls with
  /// an empty list); accounts every splice in CS.SharedChainsTaken and any
  /// fallback chain walk in CS.SpliceWalkSteps.
  bool takeSharedWork(CycleStats &CS);

  /// Absorb one taken chain into the private list (the splice cases behind
  /// takeSharedWork). Returns false for an empty chain.
  bool absorbChain(RtRef Chain, CycleStats &CS);

  /// Push one grey onto the front of the private list, keeping WorkTail.
  void pushWork(RtRef R) {
    if (WorkHead == RtNull)
      WorkTail = R;
    Heap.setWorkNext(R, WorkHead);
    WorkHead = R;
  }

  /// Sweep the slab: free every allocated object whose mark differs from
  /// the current sense.
  void sweep(CycleStats &CS);

  /// Park/resume for the STW baseline.
  void parkAllMutators();
  void resumeAllMutators();

  /// Observatory hook at a handshake boundary or cycle point: when the
  /// observatory is on and sampling this cycle, stop the mutators (a
  /// park/resume pair — skipped when the world is already stopped or a
  /// HandshakeServicer makes the runtime single-threaded), snapshot, and
  /// evaluate the §3.2 suite. The whole window is timed into CS.SnapshotNs;
  /// the park/resume rounds are NOT counted in CS.HandshakeRounds (they are
  /// observation overhead, not part of the algorithm).
  void observatoryBoundary(observe::RtHsBoundary B, CycleStats &CS,
                           bool WorldStopped = false);

  GcRuntime &Rt;
  RtHeap &Heap;

  /// The collector thread's event ring (null when tracing is off).
  observe::TraceBuffer *Trace = nullptr;

  // Collector-private authoritative control copies (it is the only writer
  // of the shared variables).
  bool Fm = false;

  // Collector work-list: intrusive chain. WorkTail is the chain's last
  // element while the list was built purely by single pushes; it is RtNull
  // when the list is empty OR when the tail is unknown (the list absorbed a
  // shared chain whose tail was never walked). Draining to empty restores
  // tracking, so the takeSharedWork fast path stays O(1) across a cycle.
  RtRef WorkHead = RtNull;
  RtRef WorkTail = RtNull;

  // Per-round slot-generation snapshot (see handshakeRound). A member so
  // the ~6 rounds per cycle share one allocation instead of mallocing each.
  std::vector<uint32_t> GenSnapshot;

  /// Schedule fuzzer (inert unless RtConfig::FuzzSchedules): perturbs the
  /// collector between handshake rounds.
  ScheduleFuzzer Fuzz;

  /// Whether the observatory samples this cycle (period gate, resolved
  /// once per cycle so every boundary in a sampled cycle is covered).
  bool ObserveCycle = false;

  uint32_t HsSeq = 0;
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTCOLLECTOR_H
