//===- runtime/RtHeap.cpp --------------------------------------------------===//

#include "runtime/RtHeap.h"

#include <algorithm>

using namespace tsogc::rt;

RtHeap::RtHeap(const RtConfig &C)
    : Cfg(C), Headers(C.HeapObjects),
      Fields(static_cast<size_t>(C.HeapObjects) * C.NumFields),
      Data(C.HeapObjects), WorkNext(C.HeapObjects),
      SharedWork(std::max(1u, C.MarkWorkers)) {
  TSOGC_CHECK(C.HeapObjects > 0 && C.HeapObjects < RtNull,
              "bad heap capacity");
  TSOGC_CHECK(C.NumFields > 0, "objects need at least one field");
  for (auto &H : Headers)
    H.store(0, std::memory_order_relaxed);
  for (auto &F : Fields)
    F.store(RtNull, std::memory_order_relaxed);
  for (auto &D : Data)
    D.store(0, std::memory_order_relaxed);
  for (auto &N : WorkNext)
    N.store(RtNull, std::memory_order_relaxed);
  for (auto &Cell : SharedWork)
    Cell.store(RtNull, std::memory_order_relaxed);
  FreeList.reserve(C.HeapObjects);
  // LIFO free list; lowest indices allocated first.
  for (uint32_t I = C.HeapObjects; I > 0; --I)
    FreeList.push_back(I - 1);
}

RtRef RtHeap::alloc(bool MarkFlag, observe::TraceBuffer *Trace) {
  RtRef R;
  {
    std::lock_guard<std::mutex> Lock(FreeMutex);
    if (FreeList.empty())
      return RtNull;
    R = FreeList.back();
    FreeList.pop_back();
  }
  return allocFromReserved(R, MarkFlag, Trace);
}

unsigned RtHeap::reserveBatch(std::vector<RtRef> &Out, unsigned N) {
  std::lock_guard<std::mutex> Lock(FreeMutex);
  unsigned Taken = 0;
  while (Taken < N && !FreeList.empty()) {
    Out.push_back(FreeList.back());
    FreeList.pop_back();
    ++Taken;
  }
  return Taken;
}

void RtHeap::unreserve(const std::vector<RtRef> &Slots) {
  std::lock_guard<std::mutex> Lock(FreeMutex);
  for (RtRef R : Slots) {
    TSOGC_CHECK(!hdr::allocated(Headers[R].load(std::memory_order_relaxed)),
                "unreserving an allocated slot");
    FreeList.push_back(R);
  }
}

RtRef RtHeap::allocFromReserved(RtRef R, bool MarkFlag,
                                observe::TraceBuffer *Trace) {
  // Initialize fields before publishing the allocated bit. On TSO the
  // publication order suffices (§4: no MFENCE needed at allocation because
  // the reference can only escape after the initializing stores commit).
  for (uint32_t F = 0; F < Cfg.NumFields; ++F)
    Fields[fieldIndex(R, F)].store(RtNull, std::memory_order_relaxed);
  Data[R].store(0, std::memory_order_relaxed);
  WorkNext[R].store(RtNull, std::memory_order_relaxed);
  uint32_t H = Headers[R].load(std::memory_order_relaxed);
  TSOGC_CHECK(!hdr::allocated(H), "free-list slot already allocated");
  Headers[R].store(hdr::withMark(H, MarkFlag) | hdr::AllocBit,
                   std::memory_order_release);
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::Alloc, R, 0, MarkFlag ? 1 : 0);
  return R;
}

void RtHeap::free(RtRef R, observe::TraceBuffer *Trace) {
  freeNoRecycle(R, Trace);
  std::lock_guard<std::mutex> Lock(FreeMutex);
  FreeList.push_back(R);
}

void RtHeap::freeNoRecycle(RtRef R, observe::TraceBuffer *Trace) {
  uint32_t H = Headers[R].load(std::memory_order_relaxed);
  TSOGC_CHECK(hdr::allocated(H), "double free");
  // Clear allocated, bump epoch; stale root handles now fail validation.
  uint32_t NewH = (H & hdr::MarkBit) | ((hdr::epoch(H) + 1) << hdr::EpochShift);
  Headers[R].store(NewH, std::memory_order_release);
  AllocCount.fetch_sub(1, std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::Free, R);
}

void RtHeap::returnFreeSlots(const std::vector<RtRef> &Slots) {
  std::lock_guard<std::mutex> Lock(FreeMutex);
  for (RtRef R : Slots) {
    TSOGC_CHECK(!hdr::allocated(Headers[R].load(std::memory_order_relaxed)),
                "recycling an allocated slot");
    FreeList.push_back(R);
  }
}

size_t RtHeap::freeListSize() {
  std::lock_guard<std::mutex> Lock(FreeMutex);
  return FreeList.size();
}

bool RtHeap::mark(RtRef R, bool FmLocal, bool BarriersActive,
                  uint64_t *CasAttempts) {
  if (R == RtNull)
    return false;
  // Fig 5 line 3: the unsynchronized load; in the common case the object is
  // already marked and no synchronization executes at all.
  uint32_t H = Headers[R].load(std::memory_order_relaxed);
  const bool Expected = !FmLocal;
  if (hdr::mark(H) != Expected)
    return false;
  // Fig 5 line 4: barriers disabled while the collector is idle.
  if (!BarriersActive)
    return false;
  // The CAS: strong, with an implied full fence (x86 locked CMPXCHG).
  if (CasAttempts)
    ++*CasAttempts;
  for (;;) {
    uint32_t Want = hdr::withMark(H, FmLocal);
    if (Headers[R].compare_exchange_strong(H, Want,
                                           std::memory_order_seq_cst)) {
      return true; // We won; the caller publishes the grey.
    }
    // H reloaded by the failed CAS. If the mark bit flipped, another thread
    // won (Fig 5 lines 10-11). Epoch/alloc churn cannot occur while we hold
    // a reference that keeps the object live, but re-check defensively.
    if (hdr::mark(H) != Expected)
      return false;
  }
}

void RtHeap::spliceShared(RtRef Head, RtRef Tail, unsigned Hint) {
  TSOGC_CHECK(Head != RtNull && Tail != RtNull, "splicing an empty chain");
  std::atomic<RtRef> &Cell = SharedWork[Hint % SharedWork.size()];
  RtRef Old = Cell.load(std::memory_order_relaxed);
  for (;;) {
    WorkNext[Tail].store(Old, std::memory_order_relaxed);
    if (Cell.compare_exchange_weak(Old, Head, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return;
  }
}
