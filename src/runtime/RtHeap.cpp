//===- runtime/RtHeap.cpp --------------------------------------------------===//

#include "runtime/RtHeap.h"

#include <algorithm>

using namespace tsogc::rt;

RtHeap::RtHeap(const RtConfig &C)
    : Cfg(C), Headers(C.HeapObjects),
      Fields(static_cast<size_t>(C.HeapObjects) * C.NumFields),
      Data(C.HeapObjects), WorkNext(C.HeapObjects),
      SharedWork(std::max(1u, C.MarkWorkers)) {
  TSOGC_CHECK(C.HeapObjects > 0 && C.HeapObjects < RtNull,
              "bad heap capacity");
  TSOGC_CHECK(C.NumFields > 0, "objects need at least one field");
  for (auto &H : Headers)
    H.store(0, std::memory_order_relaxed);
  for (auto &F : Fields)
    F.store(RtNull, std::memory_order_relaxed);
  for (auto &D : Data)
    D.store(0, std::memory_order_relaxed);
  for (auto &N : WorkNext)
    N.store(RtNull, std::memory_order_relaxed);
  for (auto &Cell : SharedWork)
    Cell.store(RtNull, std::memory_order_relaxed);
  // The whole slab starts as virgin space above the bump cursor; the
  // recycled size-class lists start empty. Lowest indices allocated first,
  // as with the original LIFO free list.
}

void RtHeap::pushRunLocked(FreeRun Run) {
  if (Run.Len == 0)
    return;
  FreeRuns[classOf(Run.Len)].push_back(Run);
  FreeSlotCount.fetch_add(Run.Len, std::memory_order_relaxed);
}

RtRef RtHeap::popOneLocked() {
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    if (FreeRuns[C].empty())
      continue;
    FreeRun Run = FreeRuns[C].back();
    FreeRuns[C].pop_back();
    FreeSlotCount.fetch_sub(Run.Len, std::memory_order_relaxed);
    // Take the run's last slot; the shortened remainder is re-binned (it
    // may drop a class).
    RtRef R = Run.Base + Run.Len - 1;
    Run.Len -= 1;
    pushRunLocked(Run);
    return R;
  }
  return RtNull;
}

RtHeap::FreeRun RtHeap::popRunLocked(unsigned Want) {
  // Best fit: the smallest class guaranteed to hold Want is classOf(Want)
  // (whose runs may still be shorter — check), then upward.
  for (unsigned C = classOf(Want); C < NumSizeClasses; ++C) {
    for (size_t I = FreeRuns[C].size(); I > 0; --I) {
      FreeRun &Cand = FreeRuns[C][I - 1];
      if (Cand.Len < Want)
        continue;
      FreeRun Out{Cand.Base, Want};
      FreeRun Rest{Cand.Base + Want, Cand.Len - Want};
      Cand = FreeRuns[C].back();
      FreeRuns[C].pop_back();
      FreeSlotCount.fetch_sub(Out.Len + Rest.Len, std::memory_order_relaxed);
      pushRunLocked(Rest);
      return Out;
    }
  }
  // Nothing long enough: hand back the longest run there is.
  for (unsigned C = NumSizeClasses; C > 0; --C) {
    if (FreeRuns[C - 1].empty())
      continue;
    FreeRun Out = FreeRuns[C - 1].back();
    FreeRuns[C - 1].pop_back();
    FreeSlotCount.fetch_sub(Out.Len, std::memory_order_relaxed);
    return Out;
  }
  return FreeRun{};
}

RtHeap::FreeRun RtHeap::claimVirgin(unsigned Want, bool CapQuarter) {
  uint32_t B = Bump.load(std::memory_order_relaxed);
  while (B < Cfg.HeapObjects) {
    uint32_t Len = std::min<uint32_t>(Want, Cfg.HeapObjects - B);
    if (CapQuarter) {
      // Cap from the counts current at THIS claim attempt (B is fresh from
      // the CAS), not from any earlier snapshot: reserving the whole tail
      // would strand it in one thread's TLAB and fail every peer's
      // allocation while free memory sits idle.
      const uint32_t Free = (Cfg.HeapObjects - B) +
                            FreeSlotCount.load(std::memory_order_relaxed);
      Len = std::min(Len, std::max(1u, Free / 4));
    }
    if (Bump.compare_exchange_weak(B, B + Len, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return FreeRun{B, Len};
  }
  return FreeRun{};
}

RtRef RtHeap::alloc(bool MarkFlag, observe::TraceBuffer *Trace) {
  RtRef R;
  {
    std::lock_guard<std::mutex> Lock(FreeMutex);
    R = popOneLocked();
  }
  if (R == RtNull) {
    FreeRun V = claimVirgin(1);
    if (V.Len == 0)
      return RtNull;
    R = V.Base;
  }
  return allocFromReserved(R, MarkFlag, Trace);
}

RtHeap::FreeRun RtHeap::reserveRun(unsigned Want,
                                   std::vector<RtRef> *Scatter) {
  TSOGC_CHECK(Want > 0, "reserving an empty run");
  // Virgin space first: one CAS, no lock.
  FreeRun V = claimVirgin(Want, /*CapQuarter=*/true);
  if (V.Len != 0)
    return V;
  std::lock_guard<std::mutex> Lock(FreeMutex);
  // Same quarter cap, from the exact count under the lock.
  const uint32_t Free = FreeSlotCount.load(std::memory_order_relaxed);
  if (Free == 0)
    return FreeRun{};
  const unsigned Capped =
      std::min<unsigned>(Want, std::max(1u, Free / 4));
  FreeRun Run = popRunLocked(Capped);
  if (Scatter && Run.Len < Capped) {
    // Fragmented heap: the best run is short. Top the caller's scatter
    // pool up under the same lock so the refill still amortizes it.
    for (unsigned I = Run.Len; I < Capped; ++I) {
      RtRef R = popOneLocked();
      if (R == RtNull)
        break;
      Scatter->push_back(R);
    }
  }
  return Run;
}

void RtHeap::unreserveRun(FreeRun Run) {
  if (Run.Len == 0)
    return;
  std::lock_guard<std::mutex> Lock(FreeMutex);
  for (uint32_t I = 0; I < Run.Len; ++I)
    TSOGC_CHECK(!hdr::allocated(
                    Headers[Run.Base + I].load(std::memory_order_relaxed)),
                "unreserving an allocated TLAB slot");
  pushRunLocked(Run);
}

unsigned RtHeap::reserveBatch(std::vector<RtRef> &Out, unsigned N) {
  unsigned Taken = 0;
  {
    std::lock_guard<std::mutex> Lock(FreeMutex);
    while (Taken < N) {
      RtRef R = popOneLocked();
      if (R == RtNull)
        break;
      Out.push_back(R);
      ++Taken;
    }
  }
  while (Taken < N) {
    FreeRun V = claimVirgin(N - Taken);
    if (V.Len == 0)
      break;
    for (uint32_t I = 0; I < V.Len; ++I)
      Out.push_back(V.Base + I);
    Taken += V.Len;
  }
  return Taken;
}

void RtHeap::unreserve(const std::vector<RtRef> &Slots) {
  if (Slots.empty())
    return;
  std::lock_guard<std::mutex> Lock(FreeMutex);
  // Coalesce ascending neighbors within the batch; anything else goes back
  // as singleton runs (the class lists re-aggregate nothing across calls).
  FreeRun Run{};
  for (RtRef R : Slots) {
    TSOGC_CHECK(!hdr::allocated(Headers[R].load(std::memory_order_relaxed)),
                "unreserving an allocated slot");
    if (Run.Len != 0 && R == Run.Base + Run.Len) {
      ++Run.Len;
      continue;
    }
    pushRunLocked(Run);
    Run = FreeRun{R, 1};
  }
  pushRunLocked(Run);
}

void RtHeap::free(RtRef R, observe::TraceBuffer *Trace) {
  freeNoRecycle(R, Trace);
  std::lock_guard<std::mutex> Lock(FreeMutex);
  pushRunLocked(FreeRun{R, 1});
}

void RtHeap::freeNoRecycle(RtRef R, observe::TraceBuffer *Trace) {
  uint32_t H = Headers[R].load(std::memory_order_relaxed);
  TSOGC_CHECK(hdr::allocated(H), "double free");
  // Clear allocated, bump epoch; stale root handles now fail validation.
  uint32_t NewH = (H & hdr::MarkBit) | ((hdr::epoch(H) + 1) << hdr::EpochShift);
  Headers[R].store(NewH, std::memory_order_release);
  AllocCount.fetch_sub(1, std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::Free, R);
}

void RtHeap::returnFreeSlots(const std::vector<RtRef> &Slots) {
  if (Slots.empty())
    return;
  std::lock_guard<std::mutex> Lock(FreeMutex);
  // Sweep shards visit slots in ascending order, so consecutively freed
  // garbage coalesces back into long runs here — the size-class lists get
  // TLAB-grade runs instead of singles.
  FreeRun Run{};
  for (RtRef R : Slots) {
    TSOGC_CHECK(!hdr::allocated(Headers[R].load(std::memory_order_relaxed)),
                "recycling an allocated slot");
    if (Run.Len != 0 && R == Run.Base + Run.Len) {
      ++Run.Len;
      continue;
    }
    pushRunLocked(Run);
    Run = FreeRun{R, 1};
  }
  pushRunLocked(Run);
}

size_t RtHeap::freeListSize() {
  std::lock_guard<std::mutex> Lock(FreeMutex);
  return FreeSlotCount.load(std::memory_order_relaxed) +
         (Cfg.HeapObjects - bumpWatermark());
}

bool RtHeap::mark(RtRef R, bool FmLocal, bool BarriersActive,
                  uint64_t *CasAttempts) {
  if (R == RtNull)
    return false;
  // Fig 5 line 3: the unsynchronized load; in the common case the object is
  // already marked and no synchronization executes at all.
  uint32_t H = Headers[R].load(std::memory_order_relaxed);
  const bool Expected = !FmLocal;
  if (hdr::mark(H) != Expected)
    return false;
  // Fig 5 line 4: barriers disabled while the collector is idle.
  if (!BarriersActive)
    return false;
  // The CAS: strong, with an implied full fence (x86 locked CMPXCHG).
  if (CasAttempts)
    ++*CasAttempts;
  for (;;) {
    uint32_t Want = hdr::withMark(H, FmLocal);
    if (Headers[R].compare_exchange_strong(H, Want,
                                           std::memory_order_seq_cst)) {
      return true; // We won; the caller publishes the grey.
    }
    // H reloaded by the failed CAS. If the mark bit flipped, another thread
    // won (Fig 5 lines 10-11). Epoch/alloc churn cannot occur while we hold
    // a reference that keeps the object live, but re-check defensively.
    if (hdr::mark(H) != Expected)
      return false;
  }
}

void RtHeap::spliceShared(RtRef Head, RtRef Tail, unsigned Hint) {
  TSOGC_CHECK(Head != RtNull && Tail != RtNull, "splicing an empty chain");
  std::atomic<RtRef> &Cell = SharedWork[Hint % SharedWork.size()];
  RtRef Old = Cell.load(std::memory_order_relaxed);
  for (;;) {
    WorkNext[Tail].store(Old, std::memory_order_relaxed);
    if (Cell.compare_exchange_weak(Old, Head, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return;
  }
}
