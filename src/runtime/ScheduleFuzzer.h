//===- runtime/ScheduleFuzzer.h - Seeded schedule perturbation ------------===//
///
/// \file
/// The runtime analogue of the model checker's exhaustive interleaving: a
/// per-thread seeded RNG that injects randomized delays at the algorithm's
/// scheduling points — mutator safepoints and handshake handlers, the
/// collector between handshake rounds, mark workers at steal points. Where
/// TortureLevel yields (one scheduler quantum), the fuzzer sleeps for up to
/// RtConfig::FuzzMaxDelayUs, stretching race windows by orders of magnitude
/// so boundary snapshots (InvariantObservatory) sample genuinely different
/// interleavings across runs with different seeds — and identical ones when
/// the seed is fixed.
///
/// Inert (one compare) unless RtConfig::FuzzSchedules is non-zero.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_SCHEDULEFUZZER_H
#define TSOGC_RUNTIME_SCHEDULEFUZZER_H

#include <chrono>
#include <cstdint>
#include <thread>

namespace tsogc::rt {

struct ScheduleFuzzer {
  uint64_t Rng = 0;
  uint32_t MaxUs = 0;

  /// Derive this thread's stream from the shared seed and a per-thread
  /// salt (slot index, worker id). Seed 0 disables the fuzzer entirely.
  void seed(uint32_t Seed, uint64_t Salt, uint32_t MaxDelayUs) {
    MaxUs = Seed != 0 ? MaxDelayUs : 0;
    Rng = (0x9e3779b97f4a7c15ULL * (Seed + 1)) ^
          ((Salt + 1) * 0xbf58476d1ce4e5b9ULL);
    if (Rng == 0)
      Rng = 1;
  }

  /// With probability ~1/8, stall for 0..MaxUs microseconds (a 0-draw
  /// degrades to a bare yield). xorshift64*: the same generator the
  /// torture-mode yields use.
  void maybeDelay() {
    if (MaxUs == 0)
      return;
    Rng ^= Rng >> 12;
    Rng ^= Rng << 25;
    Rng ^= Rng >> 27;
    const uint64_t R = Rng * 0x2545f4914f6cdd1dULL;
    if ((R >> 61) != 0)
      return;
    const uint32_t Us = static_cast<uint32_t>(R >> 32) % (MaxUs + 1);
    if (Us == 0)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(Us));
  }
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_SCHEDULEFUZZER_H
