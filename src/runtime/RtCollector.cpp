//===- runtime/RtCollector.cpp ---------------------------------------------===//

#include "runtime/RtCollector.h"

#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

void RtCollector::handshakeRound(RtHsType Type) {
  auto Slots = Rt.activeSlots();
  uint32_t Seq = Rt.HsSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t Req = HsChannel::encode(Seq, Type);

  // Store fence when the collector initiates a round (§2.4): every control
  // variable write is globally visible before any mutator sees its bit.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (auto *S : Slots)
    S->Channel.Request.store(Req, std::memory_order_release);

  for (auto *S : Slots) {
    while (S->Channel.Acked.load(std::memory_order_acquire) != Seq) {
      if (!S->Active.load(std::memory_order_acquire))
        break; // Deregistered mid-round; it has no roots (checked).
      if (Rt.HandshakeServicer)
        Rt.HandshakeServicer();
      else
        std::this_thread::yield();
    }
  }
  // Load fence after all acknowledgements (§2.4).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

bool RtCollector::takeSharedWork() {
  RtRef Chain = Heap.takeShared();
  if (Chain == RtNull)
    return false;
  // Append our current list behind the incoming chain.
  RtRef Tail = Chain;
  while (Heap.workNext(Tail) != RtNull)
    Tail = Heap.workNext(Tail);
  Heap.setWorkNext(Tail, WorkHead);
  WorkHead = Chain;
  return true;
}

void RtCollector::drainWorklist(CycleStats &CS) {
  while (WorkHead != RtNull) {
    RtRef Src = WorkHead;
    WorkHead = Heap.workNext(Src);
    Heap.setWorkNext(Src, RtNull);
    ++CS.ObjectsMarked;
    // Scan the grey source: mark every child, collecting new greys
    // (Fig 2 lines 27-30).
    for (uint32_t F = 0; F < Heap.config().NumFields; ++F) {
      RtRef Child = Heap.field(Src, F);
      if (Child == RtNull)
        continue;
      if (Heap.mark(Child, Fm, /*BarriersActive=*/true, &CS.CollectorCas)) {
        Heap.setWorkNext(Child, WorkHead);
        WorkHead = Child;
      }
    }
    // Dropping Src from the list blackens it: marked and not grey.
  }
}

void RtCollector::sweep(CycleStats &CS) {
  for (RtRef R = 0; R < Heap.capacity(); ++R) {
    uint32_t H = Heap.header(R);
    if (!hdr::allocated(H))
      continue;
    if (hdr::mark(H) != Fm) {
      // ref ∈ White ∧ reachable_snapshot_inv ⇒ ref ∉ reachable
      // (Fig 2 lines 41-44).
      Heap.free(R);
      ++CS.ObjectsFreed;
    } else {
      ++CS.ObjectsRetained;
    }
  }
}

CycleStats RtCollector::runCycle() {
  CycleStats CS;
  uint64_t T0 = nowNs();
  Fm = Rt.FM.load(std::memory_order_relaxed) != 0;

  // Lines 3-4: everyone sees Idle; heap uniformly black.
  handshakeRound(RtHsType::Noop);
  ++CS.HandshakeRounds;

  const bool Merged = Heap.config().MergedInitHandshakes;

  // Line 5: flip the mark sense — the heap becomes white.
  Fm = !Fm;
  Rt.FM.store(Fm ? 1 : 0, std::memory_order_relaxed);
  if (!Merged) {
    handshakeRound(RtHsType::Noop);
    ++CS.HandshakeRounds;
  }

  // Line 8: barriers on. In the merged variant (§4 conjecture 1) this one
  // round acknowledges both the flip and the barrier installation.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Init),
                 std::memory_order_relaxed);
  handshakeRound(RtHsType::Noop);
  ++CS.HandshakeRounds;

  // Lines 11-12: phase := Mark, allocate black from here. In the merged
  // variant the get-roots round itself acknowledges these writes.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Mark),
                 std::memory_order_relaxed);
  Rt.FA.store(Fm ? 1 : 0, std::memory_order_relaxed);
  if (!Merged) {
    handshakeRound(RtHsType::Noop);
    ++CS.HandshakeRounds;
  }

  // Lines 15-20: gather the mutators' marked roots.
  uint64_t TM = nowNs();
  handshakeRound(RtHsType::GetRoots);
  ++CS.HandshakeRounds;
  takeSharedWork();

  // Lines 24-34: the marking loop with get-work termination rounds.
  for (;;) {
    drainWorklist(CS);
    handshakeRound(RtHsType::GetWork);
    ++CS.HandshakeRounds;
    ++CS.TerminationRounds;
    if (!takeSharedWork())
      break; // A full round reported no work: no greys remain anywhere.
  }
  CS.MarkNs = nowNs() - TM;

  // Lines 37-45: sweep.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Sweep),
                 std::memory_order_relaxed);
  uint64_t TS = nowNs();
  sweep(CS);
  CS.SweepNs = nowNs() - TS;

  // Line 46.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Idle),
                 std::memory_order_relaxed);
  CS.CycleNs = nowNs() - T0;
  return CS;
}

GcRuntime::HeapAudit RtCollector::audit() {
  GcRuntime::HeapAudit A;
  parkAllMutators();

  // Mark-free BFS over the parked heap using a side bitmap (the audit must
  // not disturb the mark bits the real collector owns).
  std::vector<bool> Seen(Heap.capacity(), false);
  std::vector<RtRef> Work;
  auto Visit = [&](RtRef R, bool IsRoot) {
    if (R == RtNull)
      return;
    if (!Heap.isAllocated(R)) {
      if (IsRoot)
        ++A.DanglingRoots;
      else
        ++A.DanglingFields;
      return;
    }
    if (Seen[R])
      return;
    Seen[R] = true;
    Work.push_back(R);
  };
  for (auto *S : Rt.activeSlots())
    for (const RootHandle &H : S->Ctx->Roots)
      Visit(H.Ref, /*IsRoot=*/true);
  while (!Work.empty()) {
    RtRef R = Work.back();
    Work.pop_back();
    ++A.Reachable;
    for (uint32_t F = 0; F < Heap.config().NumFields; ++F)
      Visit(Heap.field(R, F), /*IsRoot=*/false);
  }
  for (RtRef R = 0; R < Heap.capacity(); ++R)
    if (Heap.isAllocated(R) && !Seen[R])
      ++A.Unreachable;

  resumeAllMutators();
  return A;
}

void RtCollector::parkAllMutators() { handshakeRound(RtHsType::Park); }

void RtCollector::resumeAllMutators() { handshakeRound(RtHsType::Noop); }

CycleStats RtCollector::runStwCycle() {
  CycleStats CS;
  uint64_t T0 = nowNs();
  Fm = Rt.FM.load(std::memory_order_relaxed) != 0;

  // Stop the world: every mutator parks inside its handshake handler.
  parkAllMutators();
  ++CS.HandshakeRounds;

  // With the world stopped the collector owns everything: flip the sense,
  // mark from all roots, sweep.
  Fm = !Fm;
  Rt.FM.store(Fm ? 1 : 0, std::memory_order_relaxed);
  Rt.FA.store(Fm ? 1 : 0, std::memory_order_relaxed);

  uint64_t TM = nowNs();
  for (auto *S : Rt.activeSlots()) {
    MutatorContext &M = *S->Ctx;
    for (const RootHandle &H : M.Roots)
      if (Heap.mark(H.Ref, Fm, /*BarriersActive=*/true, &CS.CollectorCas)) {
        Heap.setWorkNext(H.Ref, WorkHead);
        WorkHead = H.Ref;
      }
  }
  drainWorklist(CS);
  CS.MarkNs = nowNs() - TM;

  uint64_t TS = nowNs();
  sweep(CS);
  CS.SweepNs = nowNs() - TS;

  resumeAllMutators();
  ++CS.HandshakeRounds;
  CS.CycleNs = nowNs() - T0;
  return CS;
}
