//===- runtime/RtCollector.cpp ---------------------------------------------===//

#include "runtime/RtCollector.h"

#include "invariants/RtAdapter.h"
#include "runtime/InvariantObservatory.h"
#include "runtime/MarkerPool.h"

#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

void RtCollector::handshakeRound(RtHsType Type) {
  auto Slots = Rt.activeSlots();
  uint32_t Seq = Rt.HsSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t Req = HsChannel::encode(Seq, Type);

  // Snapshot each slot's occupancy generation before addressing it. A slot
  // deregistered mid-round — and possibly re-registered by a new thread —
  // changes generation; its channel state then belongs to a mutator this
  // round never addressed, so nothing read from it may satisfy the wait.
  GenSnapshot.resize(Slots.size());
  for (size_t I = 0; I < Slots.size(); ++I)
    GenSnapshot[I] = Slots[I]->Generation.load(std::memory_order_acquire);

  // Store fence when the collector initiates a round (§2.4): every control
  // variable write is globally visible before any mutator sees its bit.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (auto *S : Slots)
    S->Channel.Request.store(Req, std::memory_order_release);
  observe::trace(Trace, observe::EventKind::HandshakeRequest, Seq,
                 static_cast<uint32_t>(Slots.size()),
                 static_cast<uint8_t>(Type));

  for (size_t I = 0; I < Slots.size(); ++I) {
    auto *S = Slots[I];
    for (;;) {
      // Fast path: Acked == Seq can only mean THIS round's request was
      // acknowledged (HsSeq is globally monotonic, so any stale ack is
      // strictly below Seq) — even if the acker then deregistered.
      if (S->Channel.Acked.load(std::memory_order_acquire) == Seq)
        break;
      // Not acked yet: validate occupancy before waiting on. Once the
      // generation moved (or the slot went inactive) the occupant we
      // addressed is gone — it had no roots (checked at deregistration) —
      // and waiting on its successor would hang the round forever (the
      // successor starts from the current request and never acknowledges
      // it).
      if (S->Generation.load(std::memory_order_acquire) != GenSnapshot[I] ||
          !S->Active.load(std::memory_order_acquire))
        break;
      if (Rt.HandshakeServicer)
        Rt.HandshakeServicer();
      else
        std::this_thread::yield();
    }
  }
  // Load fence after all acknowledgements (§2.4).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Fuzz.maybeDelay(); // fuzz: stretch the window between rounds
}

void RtCollector::observatoryBoundary(observe::RtHsBoundary B,
                                      CycleStats &CS, bool WorldStopped) {
  InvariantObservatory *Obs = Rt.observatory();
  if (!Obs || !ObserveCycle)
    return;
  const uint64_t T0 = nowNs();
  observe::trace(Trace, observe::EventKind::SnapshotBegin,
                 static_cast<uint32_t>(Obs->snapshotCount()), 0,
                 static_cast<uint8_t>(B));
  // Quiescence: park everyone unless the world is already stopped, or a
  // HandshakeServicer is installed — then the mutators run on this very
  // thread (a park would self-deadlock inside the servicer) and the world
  // is quiescent whenever the collector runs at all.
  const bool Park = !WorldStopped && !Rt.HandshakeServicer;
  if (Park)
    handshakeRound(RtHsType::Park);
  const unsigned NewViolations = Obs->checkNow(B, WorkHead);
  if (Park)
    handshakeRound(RtHsType::Noop);
  const uint64_t Dt = nowNs() - T0;
  CS.Snapshots += 1;
  CS.SnapshotNs += Dt;
  CS.InvariantViolations += NewViolations;
  observe::trace(Trace, observe::EventKind::SnapshotEnd, NewViolations,
                 static_cast<uint32_t>(
                     Dt > 0xffffffffull ? 0xffffffffull : Dt),
                 static_cast<uint8_t>(B));
}

bool RtCollector::takeSharedWork(CycleStats &CS) {
  // The serial collector owns all stripes (the parallel path never gets
  // here); with the default MarkWorkers == 1 there is exactly one and
  // this loop is the original single take.
  bool Got = false;
  for (unsigned S = 0; S < Heap.sharedStripes(); ++S)
    if (absorbChain(Heap.takeShared(S), CS))
      Got = true;
  return Got;
}

bool RtCollector::absorbChain(RtRef Chain, CycleStats &CS) {
  if (Chain == RtNull)
    return false;
  ++CS.SharedChainsTaken;
  if (WorkHead == RtNull) {
    // The cycle's steady state: the collector polls for shared work only
    // after draining its own list. Adopt the chain whole — its tail is
    // unknown (untracked), and never needed unless another splice lands
    // before the next drain.
    WorkHead = Chain;
    WorkTail = RtNull;
  } else if (WorkTail != RtNull) {
    // Our tail is tracked: append the incoming chain behind it in O(1).
    // (Marking order is irrelevant; every chained object gets scanned.)
    Heap.setWorkNext(WorkTail, Chain);
    WorkTail = RtNull; // The combined tail is the chain's, unknown.
  } else {
    // Both tails unknown — only reachable if a caller splices twice
    // without draining. Walk the *incoming* chain once; the counter keeps
    // this path honest (tests pin it at zero for the collector cycle).
    RtRef Tail = Chain;
    while (Heap.workNext(Tail) != RtNull) {
      Tail = Heap.workNext(Tail);
      ++CS.SpliceWalkSteps;
    }
    Heap.setWorkNext(Tail, WorkHead);
    WorkHead = Chain;
  }
  return true;
}

void RtCollector::drainWorklist(CycleStats &CS) {
  while (WorkHead != RtNull) {
    RtRef Src = WorkHead;
    WorkHead = Heap.workNext(Src);
    if (WorkHead == RtNull)
      WorkTail = RtNull; // Empty again: tail tracking restarts.
    Heap.setWorkNext(Src, RtNull);
    ++CS.ObjectsMarked;
    // Scan the grey source: mark every child, collecting new greys
    // (Fig 2 lines 27-30).
    for (uint32_t F = 0; F < Heap.config().NumFields; ++F) {
      RtRef Child = Heap.field(Src, F);
      if (Child == RtNull)
        continue;
      if (Heap.mark(Child, Fm, /*BarriersActive=*/true, &CS.CollectorCas))
        pushWork(Child);
    }
    // Dropping Src from the list blackens it: marked and not grey.
  }
}

void RtCollector::sweep(CycleStats &CS) {
  // Slots above the bump watermark were never allocated; slots a racing
  // virgin claim allocates past the value read here carry the current mark
  // sense (allocate-black) and would be retained anyway — skipping them is
  // equivalent and keeps the sweep proportional to the used slab. Reserved
  // TLAB runs below the watermark are unallocated and skipped per-slot.
  const RtRef Cap = std::min(Heap.capacity(), Heap.bumpWatermark());
  if (!Trace) {
    // Untraced hot path: the sweep visits every slab slot, so even one
    // extra compare per ref is measurable on sweep-dominated cycles.
    for (RtRef R = 0; R < Cap; ++R) {
      uint32_t H = Heap.header(R);
      if (!hdr::allocated(H))
        continue;
      if (hdr::mark(H) != Fm) {
        // ref ∈ White ∧ reachable_snapshot_inv ⇒ ref ∉ reachable
        // (Fig 2 lines 41-44).
        Heap.free(R);
        ++CS.ObjectsFreed;
      } else {
        ++CS.ObjectsRetained;
      }
    }
    return;
  }
  // Traced sweep: one SweepBatch event per slab chunk keeps the ring
  // shallow while still showing sweep progress on a timeline.
  constexpr RtRef BatchRefs = 4096;
  uint32_t BatchFreed = 0, BatchRetained = 0;
  for (RtRef R = 0; R < Cap; ++R) {
    uint32_t H = Heap.header(R);
    if (hdr::allocated(H)) {
      if (hdr::mark(H) != Fm) {
        Heap.free(R, Trace);
        ++CS.ObjectsFreed;
        ++BatchFreed;
      } else {
        ++CS.ObjectsRetained;
        ++BatchRetained;
      }
    }
    if ((R + 1) % BatchRefs == 0 || R + 1 == Cap) {
      if (BatchFreed || BatchRetained)
        observe::trace(Trace, observe::EventKind::SweepBatch, BatchFreed,
                       BatchRetained);
      BatchFreed = BatchRetained = 0;
    }
  }
}

CycleStats RtCollector::runCycle() {
  CycleStats CS;
  uint64_t T0 = nowNs();
  Fm = Rt.FM.load(std::memory_order_relaxed) != 0;
  ObserveCycle =
      Rt.observatory() &&
      Rt.observatory()->shouldSample(
          Rt.stats().Cycles.load(std::memory_order_relaxed));
  observe::trace(Trace, observe::EventKind::CycleBegin, 0, 0, Fm ? 1 : 0);

  // Lines 3-4: everyone sees Idle; heap uniformly black.
  handshakeRound(RtHsType::Noop);
  ++CS.HandshakeRounds;
  observatoryBoundary(observe::RtHsBoundary::H1Idle, CS);

  const bool Merged = Heap.config().MergedInitHandshakes;

  // Line 5: flip the mark sense — the heap becomes white.
  Fm = !Fm;
  Rt.FM.store(Fm ? 1 : 0, std::memory_order_relaxed);
  if (!Merged) {
    handshakeRound(RtHsType::Noop);
    ++CS.HandshakeRounds;
    observatoryBoundary(observe::RtHsBoundary::H2FlipFM, CS);
  }

  // Line 8: barriers on. In the merged variant (§4 conjecture 1) this one
  // round acknowledges both the flip and the barrier installation.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Init),
                 std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::PhaseTransition,
                 static_cast<uint32_t>(RtPhase::Init));
  handshakeRound(RtHsType::Noop);
  ++CS.HandshakeRounds;
  observatoryBoundary(observe::RtHsBoundary::H3PhaseInit, CS);

  // Lines 11-12: phase := Mark, allocate black from here. In the merged
  // variant the get-roots round itself acknowledges these writes.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Mark),
                 std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::PhaseTransition,
                 static_cast<uint32_t>(RtPhase::Mark));
  Rt.FA.store(Fm ? 1 : 0, std::memory_order_relaxed);
  if (!Merged) {
    handshakeRound(RtHsType::Noop);
    ++CS.HandshakeRounds;
    observatoryBoundary(observe::RtHsBoundary::H4PhaseMark, CS);
  }

  // Lines 15-20: gather the mutators' marked roots.
  uint64_t TM = nowNs();
  observe::trace(Trace, observe::EventKind::MarkBegin);
  handshakeRound(RtHsType::GetRoots);
  ++CS.HandshakeRounds;
  observatoryBoundary(observe::RtHsBoundary::H5GetRoots, CS);

  const unsigned Workers = Heap.config().MarkWorkers;
  if (Workers > 1) {
    // Parallel marking: a drain round (all workers to quiescence over the
    // work-stealing stripes) replaces drainWorklist, and the stripes are
    // consumed by the workers directly, so the termination structure of
    // lines 24-34 is unchanged — drain, get-work handshake, check for
    // transferred work, repeat until a full round surfaces none.
    MarkerPool Pool(Rt, Workers, Fm);
    for (;;) {
      Pool.drainRound();
      handshakeRound(RtHsType::GetWork);
      ++CS.HandshakeRounds;
      ++CS.TerminationRounds;
      // Workers are quiescent between drain rounds (idle with empty
      // private stacks), so every remaining grey sits in the stripes.
      observatoryBoundary(observe::RtHsBoundary::H6GetWork, CS);
      if (!Heap.anySharedWork())
        break; // A full round reported no work: no greys remain anywhere.
    }
    CS.MarkNs = nowNs() - TM;
    observe::trace(Trace, observe::EventKind::MarkEnd, CS.ObjectsMarked);

    // Lines 37-45: sweep, sharded over disjoint slab ranges.
    Rt.Phase.store(static_cast<uint32_t>(RtPhase::Sweep),
                   std::memory_order_relaxed);
    observe::trace(Trace, observe::EventKind::PhaseTransition,
                   static_cast<uint32_t>(RtPhase::Sweep));
    observatoryBoundary(observe::RtHsBoundary::SweepBegin, CS);
    uint64_t TS = nowNs();
    Pool.sweepParallel();
    CS.SweepNs = nowNs() - TS;
    Pool.finish();
    Pool.mergeInto(CS);
  } else {
    takeSharedWork(CS);

    // Lines 24-34: the marking loop with get-work termination rounds.
    for (;;) {
      drainWorklist(CS);
      handshakeRound(RtHsType::GetWork);
      ++CS.HandshakeRounds;
      ++CS.TerminationRounds;
      observatoryBoundary(observe::RtHsBoundary::H6GetWork, CS);
      if (!takeSharedWork(CS))
        break; // A full round reported no work: no greys remain anywhere.
    }
    CS.MarkNs = nowNs() - TM;
    observe::trace(Trace, observe::EventKind::MarkEnd, CS.ObjectsMarked);

    // Lines 37-45: sweep.
    Rt.Phase.store(static_cast<uint32_t>(RtPhase::Sweep),
                   std::memory_order_relaxed);
    observe::trace(Trace, observe::EventKind::PhaseTransition,
                   static_cast<uint32_t>(RtPhase::Sweep));
    observatoryBoundary(observe::RtHsBoundary::SweepBegin, CS);
    uint64_t TS = nowNs();
    sweep(CS);
    CS.SweepNs = nowNs() - TS;
  }

  // Line 46.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Idle),
                 std::memory_order_relaxed);
  observe::trace(Trace, observe::EventKind::PhaseTransition,
                 static_cast<uint32_t>(RtPhase::Idle));
  observatoryBoundary(observe::RtHsBoundary::CycleEnd, CS);
  CS.CycleNs = nowNs() - T0;
  observe::trace(Trace, observe::EventKind::CycleEnd, CS.ObjectsFreed,
                 CS.ObjectsRetained);
  return CS;
}

GcRuntime::HeapAudit RtCollector::audit() {
  // Snapshot while parked, then analyze after releasing the world: the
  // audit shares the observatory's capture + translation (captureSnapshot →
  // liftSnapshot → rtAudit), so the stopped window pays only the copy and
  // the two verdicts cannot drift.
  const bool Park = !Rt.HandshakeServicer;
  if (Park)
    parkAllMutators();
  observe::RtSnapshot Snap =
      Rt.captureSnapshot(observe::RtHsBoundary::Audit, WorkHead);
  if (Park)
    resumeAllMutators();

  RtAbstractState A = liftSnapshot(Snap);
  RtAuditCounts C = rtAudit(A);
  GcRuntime::HeapAudit Out;
  Out.Reachable = static_cast<uint32_t>(C.Reachable);
  Out.Unreachable = static_cast<uint32_t>(C.Unreachable);
  Out.DanglingRoots = static_cast<uint32_t>(C.DanglingRoots);
  Out.DanglingFields = static_cast<uint32_t>(C.DanglingFields);
  Out.WorklistEntries = static_cast<uint32_t>(C.WorklistEntries);
  Out.DanglingWorklist = static_cast<uint32_t>(C.DanglingWorklist);
  Out.UnmarkedWorklist = static_cast<uint32_t>(C.UnmarkedWorklist);
  return Out;
}

void RtCollector::parkAllMutators() { handshakeRound(RtHsType::Park); }

void RtCollector::resumeAllMutators() { handshakeRound(RtHsType::Noop); }

CycleStats RtCollector::runStwCycle() {
  CycleStats CS;
  uint64_t T0 = nowNs();
  Fm = Rt.FM.load(std::memory_order_relaxed) != 0;
  ObserveCycle =
      Rt.observatory() &&
      Rt.observatory()->shouldSample(
          Rt.stats().Cycles.load(std::memory_order_relaxed));
  observe::trace(Trace, observe::EventKind::CycleBegin, 0, 0, Fm ? 1 : 0);

  // Stop the world: every mutator parks inside its handshake handler.
  parkAllMutators();
  ++CS.HandshakeRounds;

  // Discard any stale transfer chains (a mutator deregistering between
  // cycles publishes its residual greys; on-the-fly cycles consume them,
  // but STW marking restarts from roots). The entries are already marked,
  // so dropping the chain loses nothing — but leaving the links intact
  // across this cycle's sweep would dangle them into freed slots.
  for (unsigned S = 0; S < Heap.sharedStripes(); ++S) {
    RtRef Stale = Heap.takeShared(S);
    while (Stale != RtNull) {
      RtRef Next = Heap.workNext(Stale);
      Heap.setWorkNext(Stale, RtNull);
      Stale = Next;
    }
  }

  // With the world stopped the collector owns everything: flip the sense,
  // mark from all roots, sweep.
  Fm = !Fm;
  Rt.FM.store(Fm ? 1 : 0, std::memory_order_relaxed);
  Rt.FA.store(Fm ? 1 : 0, std::memory_order_relaxed);

  uint64_t TM = nowNs();
  observe::trace(Trace, observe::EventKind::MarkBegin);
  for (auto *S : Rt.activeSlots()) {
    MutatorContext &M = *S->Ctx;
    for (const RootHandle &H : M.Roots)
      if (Heap.mark(H.Ref, Fm, /*BarriersActive=*/true, &CS.CollectorCas))
        pushWork(H.Ref);
  }
  drainWorklist(CS);
  CS.MarkNs = nowNs() - TM;
  observe::trace(Trace, observe::EventKind::MarkEnd, CS.ObjectsMarked);

  // The world is already stopped: structural checks only (phases/colors
  // are collector-private here, not protocol state).
  observatoryBoundary(observe::RtHsBoundary::Stw, CS, /*WorldStopped=*/true);

  uint64_t TS = nowNs();
  sweep(CS);
  CS.SweepNs = nowNs() - TS;

  observatoryBoundary(observe::RtHsBoundary::Stw, CS, /*WorldStopped=*/true);

  resumeAllMutators();
  ++CS.HandshakeRounds;
  CS.CycleNs = nowNs() - T0;
  observe::trace(Trace, observe::EventKind::CycleEnd, CS.ObjectsFreed,
                 CS.ObjectsRetained);
  return CS;
}
