//===- runtime/InvariantObservatory.cpp ------------------------------------===//

#include "runtime/InvariantObservatory.h"

#include "invariants/Describe.h"
#include "invariants/RtAdapter.h"
#include "runtime/GcRuntime.h"

#include <cctype>
#include <chrono>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The checkers name the offending reference "r<N>" in their detail text;
/// pull the first one out so the record (and the trace event) carries it in
/// machine-readable form.
uint32_t parseOffendingRef(const std::string &Detail) {
  for (size_t I = 0; I + 1 < Detail.size(); ++I) {
    if (Detail[I] != 'r' ||
        !std::isdigit(static_cast<unsigned char>(Detail[I + 1])))
      continue;
    if (I > 0 && (std::isalnum(static_cast<unsigned char>(Detail[I - 1])) ||
                  Detail[I - 1] == '_'))
      continue; // inside a word ("r2" of "for2get") — not a ref
    uint64_t V = 0;
    for (size_t J = I + 1;
         J < Detail.size() &&
         std::isdigit(static_cast<unsigned char>(Detail[J]));
         ++J)
      V = V * 10 + static_cast<uint64_t>(Detail[J] - '0');
    return static_cast<uint32_t>(V);
  }
  return observe::RtSnapNull;
}

} // namespace

bool InvariantObservatory::shouldSample(uint64_t Cycle) const {
  const uint32_t Period = Rt.config().ObservatoryPeriod;
  return Period <= 1 || (Cycle % Period) == 0;
}

unsigned InvariantObservatory::checkNow(observe::RtHsBoundary B,
                                        RtRef CollectorWorkHead) {
  const uint64_t T0 = nowNs();
  observe::RtSnapshot Snap = Rt.captureSnapshot(B, CollectorWorkHead);
  RtAbstractState A = liftSnapshot(Snap);
  std::optional<Violation> V = checkSnapshot(A);
  const uint64_t Dt = nowNs() - T0;

  Checked.fetch_add(1, std::memory_order_relaxed);
  Snapshots.fetch_add(1, std::memory_order_relaxed);
  SnapshotNsTotal.fetch_add(Dt, std::memory_order_relaxed);
  uint64_t Prev = MaxSnapshotNs.load(std::memory_order_relaxed);
  while (Dt > Prev && !MaxSnapshotNs.compare_exchange_weak(
                          Prev, Dt, std::memory_order_relaxed)) {
  }
  if (!V)
    return 0;

  ViolationTotal.fetch_add(1, std::memory_order_relaxed);
  ViolationRecord R;
  R.Name = V->Name;
  R.Detail = V->Detail;
  R.Boundary = B;
  R.Cycle = Snap.Cycle;
  R.Phase = Snap.Phase;
  const uint32_t Offender = parseOffendingRef(V->Detail);
  R.OffendingRef = Offender;
  R.Dump = describeSnapshot(Snap, Offender);
  size_t Ordinal;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Violations.push_back(std::move(R));
    Ordinal = Violations.size();
  }
  observe::trace(Rt.collectorTrace(),
                 observe::EventKind::InvariantViolation,
                 static_cast<uint32_t>(Ordinal), Offender,
                 static_cast<uint8_t>(B));
  return 1;
}

std::vector<InvariantObservatory::ViolationRecord>
InvariantObservatory::violations() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Violations;
}

void InvariantObservatory::exportMetrics(observe::MetricsRegistry &Reg,
                                         const std::string &Prefix) const {
  Reg.counter(Prefix + "checked", checked());
  Reg.counter(Prefix + "snapshots", snapshotCount());
  Reg.counter(Prefix + "violations", violationCount());
  Reg.counter(Prefix + "snapshot_ns_total", snapshotNsTotal());
  Reg.counter(Prefix + "max_snapshot_ns", maxSnapshotNs());
}
