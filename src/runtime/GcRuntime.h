//===- runtime/GcRuntime.h - The runtime: heap + threads + control --------===//
///
/// \file
/// The facade owning the slab heap, the shared collector control variables
/// (fM, fA, phase — the three variables of Figure 2), the mutator registry
/// with per-mutator handshake channels, and the collector thread. The
/// memory-ordering discipline follows §2.4: plain (relaxed) heap accesses,
/// sequentially-consistent CAS for marking, and the four handshake fences
/// (store fence at initiation, load fence at acceptance, store fence at
/// completion, load fence after all acknowledgements).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_GCRUNTIME_H
#define TSOGC_RUNTIME_GCRUNTIME_H

#include "observe/Snapshot.h"
#include "observe/Trace.h"
#include "runtime/MutatorContext.h"
#include "runtime/RtHeap.h"
#include "runtime/RtStats.h"

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tsogc::rt {

class InvariantObservatory;

/// One mutator's handshake mailbox. Request encodes (sequence << 3 | type);
/// Acked holds the last acknowledged sequence number.
struct HsChannel {
  std::atomic<uint32_t> Request{0};
  std::atomic<uint32_t> Acked{0};

  static uint32_t encode(uint32_t Seq, RtHsType T) {
    return (Seq << 3) | static_cast<uint32_t>(T);
  }
  static uint32_t seqOf(uint32_t Req) { return Req >> 3; }
  static RtHsType typeOf(uint32_t Req) {
    return static_cast<RtHsType>(Req & 7);
  }
};

class GcRuntime {
public:
  explicit GcRuntime(const RtConfig &Cfg);
  ~GcRuntime();

  GcRuntime(const GcRuntime &) = delete;
  GcRuntime &operator=(const GcRuntime &) = delete;

  RtHeap &heap() { return Heap; }
  const RtConfig &config() const { return Heap.config(); }
  RtStats &stats() { return Stats; }

  /// Register the calling thread as a mutator. Mutators must call
  /// safepoint() regularly once the collector is running, and must
  /// deregister (with an empty root set) before destruction of the runtime.
  /// Registration reuses the slot (and index) of a previously deregistered
  /// mutator when one exists, so thread churn does not grow the registry;
  /// the returned context stays valid until the slot is reused.
  MutatorContext *registerMutator();
  void deregisterMutator(MutatorContext *M);

  /// The event-trace sink (null unless RtConfig::Trace is on). Export via
  /// observe::traceToChromeJson at quiescence.
  observe::TraceSink *traceSink() { return Trace.get(); }

  /// The collector thread's trace buffer (null when tracing is off).
  observe::TraceBuffer *collectorTrace() { return CollectorTraceBuf; }

  /// Mark worker W's trace buffer (created lazily; null when tracing is
  /// off). Worker 0 is the collector thread and shares its buffer; helpers
  /// get rings stamped observe::MarkWorkerTidBase + W. Collector-thread
  /// only (cycles never overlap, so the cache needs no lock).
  observe::TraceBuffer *markWorkerTrace(unsigned W);

  /// Run one on-the-fly collection cycle on the calling thread.
  CycleStats collectOnce();

  /// Run one stop-the-world mark-sweep cycle (the baseline of E11).
  CycleStats collectStw();

  /// When the background collector runs. The paper omits scheduling
  /// ("we omit scheduling decisions"); this is the minimal policy an
  /// adopting runtime needs.
  struct CollectorPolicy {
    bool StopTheWorld = false;
    /// Trigger a cycle when allocated objects exceed this fraction of the
    /// slab (0 = run back-to-back cycles continuously).
    double OccupancyTrigger = 0.0;
    /// Idle poll period while below the trigger.
    unsigned IdlePollUs = 50;
  };

  /// Start/stop a background collector thread.
  void startCollector(bool StopTheWorld = false) {
    CollectorPolicy P;
    P.StopTheWorld = StopTheWorld;
    startCollector(P);
  }
  void startCollector(const CollectorPolicy &Policy);
  void stopCollector();

  /// Per-cycle records (guarded; copy out).
  std::vector<CycleStats> cycleLog();

  /// Result of a whole-heap verification pass.
  struct HeapAudit {
    uint32_t Reachable = 0;   ///< Objects reachable from some root.
    uint32_t Unreachable = 0; ///< Allocated but unreachable (future garbage).
    uint32_t DanglingRoots = 0;  ///< Roots whose object is gone (GC bug).
    uint32_t DanglingFields = 0; ///< Reachable fields pointing at freed
                                 ///< slots (GC bug).
    /// Worklist/color agreement (the structural half of the model's
    /// valid_W_inv): entries across every grey worklist — private mutator
    /// chains, the collector chain, the shared transfer stripes.
    uint32_t WorklistEntries = 0;
    uint32_t DanglingWorklist = 0; ///< Entries naming freed slots (GC bug).
    /// Entries not marked with the current sense while the phase is Init
    /// or Mark (a grey must have won its mark CAS before publication).
    uint32_t UnmarkedWorklist = 0;
    bool clean() const {
      return DanglingRoots == 0 && DanglingFields == 0 &&
             DanglingWorklist == 0 && UnmarkedWorklist == 0;
    }
  };

  /// Stop the world and audit the heap: every reference reachable from any
  /// mutator root must name an allocated object — the runtime analogue of
  /// the model's valid_refs_inv, independent of the per-access epoch
  /// checks — and every grey-worklist entry must agree with the color
  /// protocol (allocated; marked while a cycle is in Init/Mark). The audit
  /// reuses the observatory's snapshot translation (captureSnapshot →
  /// invariants/RtAdapter.h), so the two verdicts cannot drift. Requires
  /// mutator threads at safepoints (they are parked for the audit) and must
  /// not race a running collector cycle; call it from the collector's
  /// thread context or between cycles.
  HeapAudit auditHeap();

  /// Copy the entire quiescent runtime state — heap headers and fields,
  /// control variables, every mutator's roots and private worklist, the
  /// collector chain and the shared stripes — into an immutable snapshot
  /// for the invariant suite. The caller owns quiescence: every mutator
  /// parked (or single-threaded via HandshakeServicer) and no marking
  /// concurrently active. \p CollectorWorkHead is the calling collector's
  /// private chain head (RtNull outside a cycle).
  observe::RtSnapshot captureSnapshot(observe::RtHsBoundary Boundary,
                                      RtRef CollectorWorkHead = RtNull);

  /// The invariant observatory (null unless RtConfig::Observatory).
  InvariantObservatory *observatory() { return Observatory.get(); }

  //===-- Shared control state (used by MutatorContext and collectors) ----===//

  std::atomic<uint32_t> FM{0};
  std::atomic<uint32_t> FA{0};
  std::atomic<uint32_t> Phase{static_cast<uint32_t>(RtPhase::Idle)};
  std::atomic<uint32_t> HsSeq{0};

  /// Optional hook invoked while the collector awaits handshake
  /// acknowledgements. Single-threaded deterministic tests set this to
  /// service the mutators' safepoints from the collector's thread; normal
  /// multi-threaded operation leaves it empty. Not usable with
  /// stop-the-world cycles (a parked mutator blocks inside its handler).
  std::function<void()> HandshakeServicer;

  struct MutatorSlot {
    std::unique_ptr<MutatorContext> Ctx;
    HsChannel Channel;
    std::atomic<bool> Active{false};
    /// Occupancy generation: bumped on every register and deregister of
    /// this slot. The collector snapshots it when initiating a handshake
    /// round and re-validates it while awaiting the acknowledgement, so a
    /// slot freed (and possibly re-registered) mid-round can never satisfy
    /// the round with a stale Acked value.
    std::atomic<uint32_t> Generation{0};
    /// Per-slot trace ring (non-owning; the sink owns it). Null when
    /// tracing is off. Reused along with the slot.
    observe::TraceBuffer *TraceBuf = nullptr;
  };

  /// Snapshot of slots for handshake rounds (stable storage; slots are
  /// never destroyed until runtime teardown).
  std::vector<MutatorSlot *> activeSlots();

  /// Unsynchronized registry index — call only while no other thread can
  /// register (the vector's backing array moves on growth). Runtime-internal
  /// paths cache the channel pointer at registration instead; this accessor
  /// is for tests and benches driving the protocol with a quiescent registry.
  HsChannel &channelOf(unsigned Index) { return Slots[Index]->Channel; }

private:
  friend class MutatorContext;

  RtHeap Heap;
  RtStats Stats;

  /// Created in the constructor iff RtConfig::Observatory.
  std::unique_ptr<InvariantObservatory> Observatory;

  /// Created in the constructor iff RtConfig::Trace; buffers hang off it.
  std::unique_ptr<observe::TraceSink> Trace;
  observe::TraceBuffer *CollectorTraceBuf = nullptr;
  /// Lazily-created helper mark-worker buffers, index W-1 (collector
  /// thread only; see markWorkerTrace).
  std::vector<observe::TraceBuffer *> MarkWorkerTraceBufs;

  std::mutex RegistryMutex;
  std::vector<std::unique_ptr<MutatorSlot>> Slots;

  std::mutex LogMutex;
  std::vector<CycleStats> Log;

  std::thread CollectorThread;
  std::atomic<bool> CollectorRunning{false};

  void recordCycle(const CycleStats &C);
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_GCRUNTIME_H
