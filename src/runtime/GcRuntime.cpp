//===- runtime/GcRuntime.cpp -----------------------------------------------===//

#include "runtime/GcRuntime.h"

#include "runtime/RtCollector.h"

#include <chrono>

using namespace tsogc::rt;

GcRuntime::GcRuntime(const RtConfig &Cfg) : Heap(Cfg) {}

GcRuntime::~GcRuntime() { stopCollector(); }

MutatorContext *GcRuntime::registerMutator() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  auto Slot = std::make_unique<MutatorSlot>();
  unsigned Index = static_cast<unsigned>(Slots.size());
  Slot->Ctx = std::make_unique<MutatorContext>(*this, Index);
  Slot->Active.store(true, std::memory_order_release);
  Slots.push_back(std::move(Slot));
  return Slots.back()->Ctx.get();
}

void GcRuntime::deregisterMutator(MutatorContext *M) {
  TSOGC_CHECK(M->numRoots() == 0,
              "mutators must drop their roots before deregistering");
  // Service any in-flight handshake, then leave. If a request lands in the
  // gap, the collector observes Active == false and skips this mutator.
  M->safepoint();
  M->releaseAllocPool();
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Slots[M->index()]->Active.store(false, std::memory_order_release);
}

std::vector<GcRuntime::MutatorSlot *> GcRuntime::activeSlots() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  std::vector<MutatorSlot *> Out;
  for (auto &S : Slots)
    if (S->Active.load(std::memory_order_acquire))
      Out.push_back(S.get());
  return Out;
}

CycleStats GcRuntime::collectOnce() {
  RtCollector C(*this);
  CycleStats CS = C.runCycle();
  recordCycle(CS);
  return CS;
}

CycleStats GcRuntime::collectStw() {
  RtCollector C(*this);
  CycleStats CS = C.runStwCycle();
  recordCycle(CS);
  return CS;
}

void GcRuntime::startCollector(const CollectorPolicy &Policy) {
  TSOGC_CHECK(!CollectorRunning.load(), "collector already running");
  TSOGC_CHECK(Policy.OccupancyTrigger >= 0.0 &&
                  Policy.OccupancyTrigger <= 1.0,
              "occupancy trigger must be a fraction");
  CollectorRunning.store(true);
  CollectorThread = std::thread([this, Policy] {
    const auto Threshold = static_cast<uint32_t>(
        Policy.OccupancyTrigger * static_cast<double>(Heap.capacity()));
    while (CollectorRunning.load(std::memory_order_relaxed)) {
      if (Threshold != 0 && Heap.allocatedCount() < Threshold) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(Policy.IdlePollUs));
        continue;
      }
      if (Policy.StopTheWorld)
        collectStw();
      else
        collectOnce();
    }
  });
}

void GcRuntime::stopCollector() {
  if (!CollectorThread.joinable())
    return;
  CollectorRunning.store(false);
  CollectorThread.join();
}

GcRuntime::HeapAudit GcRuntime::auditHeap() {
  RtCollector C(*this);
  return C.audit();
}

std::vector<CycleStats> GcRuntime::cycleLog() {
  std::lock_guard<std::mutex> Lock(LogMutex);
  return Log;
}

void GcRuntime::recordCycle(const CycleStats &C) {
  Stats.recordCycle(C);
  std::lock_guard<std::mutex> Lock(LogMutex);
  Log.push_back(C);
}
