//===- runtime/GcRuntime.cpp -----------------------------------------------===//

#include "runtime/GcRuntime.h"

#include "runtime/InvariantObservatory.h"
#include "runtime/RtCollector.h"

#include <chrono>

using namespace tsogc::rt;

GcRuntime::GcRuntime(const RtConfig &Cfg) : Heap(Cfg) {
  if (Cfg.Trace) {
    Trace = std::make_unique<observe::TraceSink>(Cfg.TraceBufferEvents);
    CollectorTraceBuf = Trace->createBuffer(observe::CollectorTid);
  }
  if (Cfg.Observatory)
    Observatory = std::make_unique<InvariantObservatory>(*this);
}

GcRuntime::~GcRuntime() { stopCollector(); }

MutatorContext *GcRuntime::registerMutator() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  // Reuse the lowest deregistered slot so thread churn does not grow the
  // registry (and handshake rounds stay proportional to live mutators).
  MutatorSlot *Slot = nullptr;
  unsigned Index = 0;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (!Slots[I]->Active.load(std::memory_order_acquire)) {
      Slot = Slots[I].get();
      Index = I;
      break;
    }
  if (!Slot) {
    Index = static_cast<unsigned>(Slots.size());
    Slots.push_back(std::make_unique<MutatorSlot>());
    Slot = Slots.back().get();
    if (Trace)
      Slot->TraceBuf = Trace->createBuffer(static_cast<uint16_t>(Index));
  }
  // Bump the generation before going active: a collector round initiated
  // against the previous occupant sees the mismatch and skips the slot.
  Slot->Generation.fetch_add(1, std::memory_order_release);
  Slot->Ctx = std::make_unique<MutatorContext>(*this, Index, Slot->TraceBuf);
  Slot->Active.store(true, std::memory_order_release);
  return Slot->Ctx.get();
}

void GcRuntime::deregisterMutator(MutatorContext *M) {
  TSOGC_CHECK(M->numRoots() == 0,
              "mutators must drop their roots before deregistering");
  // Service any in-flight handshake, then leave. If a request lands in the
  // gap, the collector observes the generation bump (or Active == false)
  // and skips this mutator.
  M->safepoint();
  // The deletion barrier may have greyed objects since the last get-work
  // handshake; once the slot goes inactive no round will ever collect
  // them, and abandoning the chain loses the greys — the collector then
  // sweeps objects the barrier proved reachable. Publish them now.
  M->transferWorklist();
  // Likewise the unused TLAB tail and pool slots: reserved slots are
  // invisible to the sweep, so abandoning them here would leak them until
  // process exit.
  M->releaseAllocPool();
  Stats.recordMutator(M->stats());
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Slots[M->index()]->Active.store(false, std::memory_order_release);
  Slots[M->index()]->Generation.fetch_add(1, std::memory_order_release);
}

std::vector<GcRuntime::MutatorSlot *> GcRuntime::activeSlots() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  std::vector<MutatorSlot *> Out;
  for (auto &S : Slots)
    if (S->Active.load(std::memory_order_acquire))
      Out.push_back(S.get());
  return Out;
}

CycleStats GcRuntime::collectOnce() {
  RtCollector C(*this);
  CycleStats CS = C.runCycle();
  recordCycle(CS);
  return CS;
}

CycleStats GcRuntime::collectStw() {
  RtCollector C(*this);
  CycleStats CS = C.runStwCycle();
  recordCycle(CS);
  return CS;
}

void GcRuntime::startCollector(const CollectorPolicy &Policy) {
  TSOGC_CHECK(!CollectorRunning.load(), "collector already running");
  TSOGC_CHECK(Policy.OccupancyTrigger >= 0.0 &&
                  Policy.OccupancyTrigger <= 1.0,
              "occupancy trigger must be a fraction");
  CollectorRunning.store(true);
  CollectorThread = std::thread([this, Policy] {
    // A positive trigger must stay a trigger: on tiny heaps the product
    // truncates to 0, which the loop below reads as "collect
    // continuously" — clamp to one object so the collector idles until
    // something is actually allocated.
    auto Threshold = static_cast<uint32_t>(
        Policy.OccupancyTrigger * static_cast<double>(Heap.capacity()));
    if (Policy.OccupancyTrigger > 0.0 && Threshold == 0)
      Threshold = 1;
    while (CollectorRunning.load(std::memory_order_relaxed)) {
      if (Threshold != 0 && Heap.allocatedCount() < Threshold) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(Policy.IdlePollUs));
        continue;
      }
      if (Policy.StopTheWorld)
        collectStw();
      else
        collectOnce();
    }
  });
}

void GcRuntime::stopCollector() {
  if (!CollectorThread.joinable())
    return;
  CollectorRunning.store(false);
  CollectorThread.join();
}

tsogc::observe::TraceBuffer *GcRuntime::markWorkerTrace(unsigned W) {
  if (!Trace)
    return nullptr;
  if (W == 0)
    return CollectorTraceBuf;
  if (MarkWorkerTraceBufs.size() < W)
    MarkWorkerTraceBufs.resize(W, nullptr);
  observe::TraceBuffer *&B = MarkWorkerTraceBufs[W - 1];
  if (!B)
    B = Trace->createBuffer(
        static_cast<uint16_t>(observe::MarkWorkerTidBase + W));
  return B;
}

GcRuntime::HeapAudit GcRuntime::auditHeap() {
  RtCollector C(*this);
  return C.audit();
}

tsogc::observe::RtSnapshot
GcRuntime::captureSnapshot(observe::RtHsBoundary Boundary,
                           RtRef CollectorWorkHead) {
  namespace ob = tsogc::observe;
  const auto T0 = std::chrono::steady_clock::now();
  ob::RtSnapshot S;
  S.Boundary = Boundary;
  S.Cycle = Stats.Cycles.load(std::memory_order_relaxed);
  S.TimeNs = ob::traceNowNs();
  S.FM = FM.load(std::memory_order_relaxed) != 0;
  S.FA = FA.load(std::memory_order_relaxed) != 0;
  S.Phase = static_cast<uint8_t>(Phase.load(std::memory_order_relaxed));
  S.InsertionElide = config().InsertionBarrierElideAfterRoots;
  S.Capacity = Heap.capacity();
  S.NumFields = config().NumFields;

  // Dense heap copy. The world is quiescent: every mutator is blocked in a
  // park handler (its ack fence drained its store buffer and the
  // collector's acquire of the ack ordered those writes before this read)
  // or being serviced from this very thread.
  S.Allocated.resize(S.Capacity);
  S.Marks.resize(S.Capacity);
  S.Fields.assign(static_cast<size_t>(S.Capacity) * S.NumFields,
                  ob::RtSnapNull);
  for (RtRef R = 0; R < S.Capacity; ++R) {
    const uint32_t H = Heap.header(R);
    if (!hdr::allocated(H))
      continue;
    S.Allocated[R] = 1;
    S.Marks[R] = hdr::mark(H) ? 1 : 0;
    for (uint32_t F = 0; F < S.NumFields; ++F)
      S.Fields[static_cast<size_t>(R) * S.NumFields + F] = Heap.field(R, F);
  }

  // Worklists are intrusive chains; walking them is stable at quiescence.
  auto WalkChain = [this](RtRef Head, std::vector<uint32_t> &Out) {
    for (RtRef R = Head; R != RtNull; R = Heap.workNext(R))
      Out.push_back(R);
  };

  for (auto *Slot : activeSlots()) {
    MutatorContext &M = *Slot->Ctx;
    ob::RtSnapshotMutator Mu;
    Mu.Index = M.index();
    Mu.Roots.reserve(M.Roots.size());
    for (const RootHandle &H : M.Roots)
      Mu.Roots.push_back(H.Ref);
    WalkChain(M.WorkHead, Mu.Worklist);
    S.Mutators.push_back(std::move(Mu));
  }

  WalkChain(CollectorWorkHead, S.CollectorWorklist);

  S.SharedStripes.resize(Heap.sharedStripes());
  for (unsigned I = 0; I < Heap.sharedStripes(); ++I)
    WalkChain(Heap.sharedHead(I), S.SharedStripes[I]);

  S.CaptureNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  return S;
}

std::vector<CycleStats> GcRuntime::cycleLog() {
  std::lock_guard<std::mutex> Lock(LogMutex);
  return Log;
}

void GcRuntime::recordCycle(const CycleStats &C) {
  Stats.recordCycle(C);
  std::lock_guard<std::mutex> Lock(LogMutex);
  Log.push_back(C);
}
