//===- runtime/RtTypes.h - Runtime collector basic types ------------------===//
///
/// \file
/// Object references, header encoding, and configuration for the runtime
/// (real-threads) incarnation of the verified collector. The runtime mirrors
/// the model: mark-sense flags fM/fA, phase variable, four no-op handshake
/// rounds plus get-roots and get-work rounds, CAS-on-contention marking
/// (Figure 5), and both write barriers (Figure 6).
///
/// Objects are dense slab indices rather than raw pointers: this keeps the
/// heap compact and lets the validation layer detect unsafe frees precisely
/// via per-object epochs (a freed-then-reused slot changes epoch; a stale
/// root handle trips the check instead of silently reading recycled memory).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_RUNTIME_RTTYPES_H
#define TSOGC_RUNTIME_RTTYPES_H

#include <cstdint>

namespace tsogc::rt {

/// A heap reference: a slab index, or RtNull.
using RtRef = uint32_t;
inline constexpr RtRef RtNull = ~0u;

/// Object header bit layout (one 32-bit atomic per object):
///   bit 0      allocated
///   bit 1      mark flag (interpreted relative to fM)
///   bits 2-31  epoch, bumped on every free (validation)
namespace hdr {
inline constexpr uint32_t AllocBit = 1u << 0;
inline constexpr uint32_t MarkBit = 1u << 1;
inline constexpr uint32_t EpochShift = 2;

inline bool allocated(uint32_t H) { return (H & AllocBit) != 0; }
inline bool mark(uint32_t H) { return (H & MarkBit) != 0; }
inline uint32_t epoch(uint32_t H) { return H >> EpochShift; }
inline uint32_t withMark(uint32_t H, bool M) {
  return M ? (H | MarkBit) : (H & ~MarkBit);
}
} // namespace hdr

/// Collector phase; stored in one std::atomic shared variable, read by
/// mutators only at handshakes (local copies elsewhere), as in the model.
enum class RtPhase : uint8_t { Idle = 0, Init, Mark, Sweep };

/// Handshake work requests (Figure 3).
enum class RtHsType : uint8_t {
  None = 0,
  Noop,
  GetRoots,
  GetWork,
  Park, ///< Stop-the-world baseline only: block until released.
};

struct RtConfig {
  /// Slab capacity in objects.
  uint32_t HeapObjects = 1u << 14;
  /// Reference fields per object.
  uint32_t NumFields = 2;

  /// Barrier ablations (both on = the verified algorithm).
  bool DeletionBarrier = true;
  bool InsertionBarrier = true;

  /// §4 "Observations" variants, model-checked in tests/observations_test:
  /// drop the H2/H4 no-op rounds (two fewer handshakes per cycle), and
  /// elide the insertion barrier once this mutator's roots are marked.
  bool MergedInitHandshakes = false;
  bool InsertionBarrierElideAfterRoots = false;

  /// Check per-access that targets are live with matching epochs; any
  /// unsafe free by the collector trips an assertion in the mutator.
  bool Validate = true;

  /// Fault-injection for stress testing: when non-zero, mutators yield the
  /// CPU with probability 1/TortureLevel at the algorithm's racy points
  /// (between the barrier read and the store, around the marking CAS,
  /// after the handshake view refresh). This widens the race windows the
  /// verification reasons about, so latent ordering bugs surface under
  /// test instead of in production.
  uint32_t TortureLevel = 0;

  /// §4 extension ("devised but not yet verified" in the paper): mutators
  /// gather pools of unallocated references from which to perform
  /// fine-grained allocation without synchronizing. 0 disables the pool
  /// (every allocation takes the global free-list lock); N > 0 refills a
  /// thread-local pool of N slots per lock acquisition. Refills are capped
  /// to a fraction of the remaining free slots so near-exhaustion pools
  /// cannot strand the whole free list in one thread's reserve.
  uint32_t LocalAllocPool = 0;

  /// Collector-side mark/sweep parallelism. 1 (the default) keeps the
  /// verified single-GC-thread cycle byte-for-byte. N > 1 marks with a
  /// pool of N workers (the calling collector thread plus N-1 helpers)
  /// over work-stealing grey worklists, and sweeps disjoint slab shards in
  /// parallel. The handshake protocol — and therefore the mutator-visible
  /// pause profile — is identical in both modes; only the cycle's internal
  /// throughput changes. Also sizes the heap's shared-work stripes.
  uint32_t MarkWorkers = 1;

  /// Event tracing (observe/Trace.h): when on, the runtime records typed
  /// events — handshake request/ack, phase transitions, barrier marks,
  /// alloc/free, sweep batches — into per-thread ring buffers exportable as
  /// Chrome trace_event JSON. When off (the default) no buffers exist and
  /// every hook point is a single null-pointer test.
  bool Trace = false;

  /// Per-thread trace ring capacity in events (rounded up to a power of
  /// two). Older events are overwritten when a ring wraps.
  uint32_t TraceBufferEvents = 1u << 14;

  /// Invariant observatory (runtime/InvariantObservatory.h): snapshot the
  /// heap/phase/worklist state at handshake boundaries and evaluate the
  /// model's §3.2 invariant suite against it live. Snapshots briefly stop
  /// the mutators (a park/resume pair around the copy) unless the world is
  /// already quiescent; the cost is measured and exported. Off by default.
  bool Observatory = false;

  /// Check every Nth cycle when the observatory is on (1 = every cycle).
  uint32_t ObservatoryPeriod = 1;

  /// Schedule fuzzer seed (runtime/ScheduleFuzzer.h): non-zero seeds
  /// randomized delays at mutator safepoints, collector round boundaries
  /// and mark-worker steal points, widening the race windows boundary
  /// snapshots sample. Identical seeds reproduce identical delay streams
  /// per thread. 0 (the default) disables all injection.
  uint32_t FuzzSchedules = 0;

  /// Upper bound on one injected delay, in microseconds.
  uint32_t FuzzMaxDelayUs = 100;
};

} // namespace tsogc::rt

#endif // TSOGC_RUNTIME_RTTYPES_H
