//===- explore/Export.h - DOT and JSON export of model states ----------===//
///
/// \file
/// Renders model heaps as Graphviz DOT (colored by the tricolor
/// abstraction, exactly the visual language of Figure 1) and global states
/// plus counterexample traces as JSON, so violations found by the explorer
/// can be inspected outside the terminal.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_EXPORT_H
#define TSOGC_EXPLORE_EXPORT_H

#include "explore/Explorer.h"
#include "invariants/GcPredicates.h"
#include "observe/Metrics.h"

#include <string>

namespace tsogc {

/// Graphviz rendering of the heap in \p S: one node per object, colored
/// white/grey/black per the §3.2 interpretation; root edges from per-
/// mutator pseudo-nodes; buffered (uncommitted) field writes as dashed
/// edges.
std::string heapToDot(const GcModel &M, const GcSystemState &S);

/// JSON rendering of one global state: control state, per-mutator views
/// and roots, heap contents, buffers, handshake registers.
std::string stateToJson(const GcModel &M, const GcSystemState &S);

/// JSON rendering of an exploration result: statistics, the violation (if
/// any), the transition-label path, and the bad state.
std::string exploreResultToJson(const GcModel &M, const ExploreResult &Res);

/// Register an exploration's statistics into \p Reg under
/// "<Prefix>states", "<Prefix>transitions", ... plus the derived
/// "<Prefix>states_per_sec" gauge when \p ElapsedSec is positive. Feeds
/// the shared bench/export schema (observe/Export.h).
void exportMetrics(const ExploreResult &Res, double ElapsedSec,
                   observe::MetricsRegistry &Reg,
                   const std::string &Prefix = "explore.");

} // namespace tsogc

#endif // TSOGC_EXPLORE_EXPORT_H
