//===- explore/Guided.cpp --------------------------------------------------===//

#include "explore/Guided.h"

#include <deque>
#include <unordered_set>

using namespace tsogc;

bool GuidedDriver::advance(const LabelFilter &Allowed, const StatePred &Goal,
                           uint64_t MaxStates) {
  if (Goal(State))
    return true;
  std::unordered_set<std::string> Visited;
  std::deque<GcSystemState> Frontier;
  Visited.insert(M.encode(State));
  Frontier.push_back(State);

  std::vector<GcSuccessor> Succs;
  while (!Frontier.empty() && Visited.size() < MaxStates) {
    GcSystemState S = std::move(Frontier.front());
    Frontier.pop_front();
    Succs.clear();
    M.system().successors(S, Succs);
    for (GcSuccessor &Succ : Succs) {
      if (!Allowed(Succ.Label))
        continue;
      if (!Visited.insert(M.encode(Succ.State)).second)
        continue;
      if (Goal(Succ.State)) {
        State = std::move(Succ.State);
        return true;
      }
      Frontier.push_back(std::move(Succ.State));
    }
  }
  return false;
}

bool GuidedDriver::take(const std::string &LabelSubstr,
                        const StatePred &Accept) {
  std::vector<GcSuccessor> Succs = M.system().successors(State);
  for (GcSuccessor &Succ : Succs) {
    if (Succ.Label.find(LabelSubstr) == std::string::npos)
      continue;
    if (Accept && !Accept(Succ.State))
      continue;
    State = std::move(Succ.State);
    return true;
  }
  return false;
}

GuidedDriver::LabelFilter
GuidedDriver::labelContainsAnyOf(std::vector<std::string> Subs) {
  return [Subs = std::move(Subs)](const std::string &L) {
    for (const std::string &S : Subs)
      if (L.find(S) != std::string::npos)
        return true;
    return false;
  };
}
