//===- explore/ParallelExplorer.h - Parallel exhaustive exploration -------===//
///
/// \file
/// A work-sharing pool of worker threads expanding the frontier of the
/// model's reachable state space concurrently, with the visited set sharded
/// into lock-striped stripes keyed by the state-encoding hash. The
/// executable counterpart of the paper's induction over _⇒_, scaled across
/// cores: on a full exhaustion it visits exactly the states the sequential
/// `exploreExhaustive` visits (the reachable set is order-independent), so
/// the sequential explorer remains the oracle and the two are compared by a
/// differential test.
///
/// Determinism contract (see docs/MODEL_CORRESPONDENCE.md):
///   * StatesVisited / TransitionsExplored / verdict are deterministic on a
///     full exhaustion;
///   * a reported counterexample path is always a valid transition-label
///     path from the initial state, but — unlike sequential BFS — not
///     necessarily a shortest one, and which violation is reported first is
///     racy across runs (first-violation-wins);
///   * truncation at MaxStates is racy in *which* states form the explored
///     prefix, though the count itself is capped deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_PARALLELEXPLORER_H
#define TSOGC_EXPLORE_PARALLELEXPLORER_H

#include "explore/Explorer.h"
#include "observe/Trace.h"

namespace tsogc {

struct ParallelExploreOptions {
  /// Stop after counting this many distinct states (0 = unlimited). Unlike
  /// the sequential explorer, the set of states forming the truncated
  /// prefix is racy; the count itself is capped at MaxStates.
  uint64_t MaxStates = 2'000'000;
  /// Stop expanding beyond this depth (0 = unlimited).
  unsigned MaxDepth = 0;
  /// Hash compaction (SPIN-style): store a 128-bit digest per visited
  /// state instead of the full canonical encoding. Same digest as the
  /// sequential explorer (exploreVisitKey), so compacted runs agree too.
  bool CompactVisited = false;
  /// Record parent/label metadata for counterexample paths.
  bool TrackPaths = true;
  /// Same three reduction/compression modes as the sequential
  /// ExploreOptions, keyed identically (Reduction.h / Fingerprint.h), so
  /// reduced parallel runs remain differentially comparable against
  /// reduced sequential ones.
  bool AmpleReduction = false;
  bool SymmetryReduction = false;
  bool Fingerprint64 = false;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned Workers = 0;
  /// Lock stripes of the sharded visited set; more stripes, less contention.
  unsigned Shards = 64;
  /// States per work batch handed to a worker (amortizes queue locking).
  unsigned Batch = 32;
  /// Optional event sink: each worker records a FrontierProgress event per
  /// batch (A = global states visited, B = batch size) into its own ring.
  /// Null disables tracing entirely.
  observe::TraceSink *Trace = nullptr;
};

/// Parallel exhaustive search over the reachable states of \p M, evaluating
/// \p Check in every state. Requires the const-thread-safety of
/// `GcModel::encode` / `cimp::System::successors` (documented on GcModel)
/// and a \p Check safe to invoke concurrently (the InvariantSuite checkers
/// are: they only read the suite and the state they are handed).
ExploreResult exploreParallel(const GcModel &M, const StateChecker &Check,
                              const ParallelExploreOptions &Opts = {});
inline ExploreResult exploreParallel(const GcModel &M,
                                     const InvariantSuite &Inv,
                                     const ParallelExploreOptions &Opts = {}) {
  return exploreParallel(M, fullSuiteChecker(Inv), Opts);
}

struct SwarmOptions {
  /// Independent randomized-order walkers. With one walker the claimed
  /// state count is exact (no claim races); with several it is an upper
  /// bound within the claim-race slack documented on StripedBloomFilter.
  unsigned Walkers = 4;
  /// Base seed; each walker derives a disjoint stream from it.
  uint64_t Seed = 1;
  /// Stop after claiming this many states globally (0 = unlimited).
  uint64_t MaxStates = 2'000'000;
  /// Bits in the shared bloom visited summary. Size it at ≥64× the
  /// expected state count to keep the false-positive rate (reported in
  /// ExploreResult::BloomEstFpRate) negligible.
  uint64_t BloomBits = 1ull << 24;
  /// After this many consecutive fruitless re-dives from the initial
  /// state, a walker concludes the space is exhausted and retires.
  unsigned FruitlessRedives = 3;
  /// Apply the ample-set reduction / symmetry canonicalization while
  /// walking (same selectors as the exhaustive modes).
  bool AmpleReduction = false;
  bool SymmetryReduction = false;
  bool TrackPaths = true;
  observe::TraceSink *Trace = nullptr;
};

/// Swarm exploration: N walkers run randomized-order depth-first dives
/// from the initial state, sharing only a striped bloom-filter summary of
/// claimed states. Every state a walker claims it also expands, so on
/// quiescence the claimed set is closed under successors — exhaustive
/// *modulo bloom false positives and claim races*, which is why results
/// always carry ProbabilisticVerdict (with the bloom accounting filled
/// in). Violations are definite and come with a replayable path/choices.
ExploreResult exploreSwarm(const GcModel &M, const StateChecker &Check,
                           const SwarmOptions &Opts = {});
inline ExploreResult exploreSwarm(const GcModel &M, const InvariantSuite &Inv,
                                  const SwarmOptions &Opts = {}) {
  return exploreSwarm(M, fullSuiteChecker(Inv), Opts);
}

} // namespace tsogc

#endif // TSOGC_EXPLORE_PARALLELEXPLORER_H
