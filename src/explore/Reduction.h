//===- explore/Reduction.h - Partial-order and symmetry reduction ---------===//
///
/// \file
/// State-space reduction for the GC model explorer, after Abe & Ugawa et
/// al.'s state-explosion treatment for model checking under relaxed memory
/// (their case study is likewise a concurrent GC):
///
///   * `Reducer` — an ample-set partial-order reduction. At a state where
///     some mutator's *entire* next-step set is a single provably invisible
///     pure-local scratch step (insertion-barrier target latch, root-queue
///     snapshot, root-queue pop), only that step is expanded; every other
///     interleaving of it with the remaining processes commutes to the same
///     states and the same checker verdicts. Handshake rendezvous, barrier
///     memory operations and every system step stay fully interleaved.
///     This reduction is *sound* for checkers that cannot observe those
///     scratch fields — the bundled §3.2 suite and the headline checker
///     qualify; see docs/MODEL_CORRESPONDENCE.md "Reduction soundness" for
///     the C0–C3 argument and the exact visibility caveat.
///
///   * mutator symmetry — `canonicalEncoding` folds states that differ only
///     by a permutation of the identical-program mutators (process state,
///     store-buffer contents, handshake words, roots) onto one canonical
///     representative. The collector's handshake iteration is index-ordered,
///     so the model is only *virtually* symmetric; this mode is therefore
///     opt-in, probabilistic in claim, and differentially validated rather
///     than proved (same doc section).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_REDUCTION_H
#define TSOGC_EXPLORE_REDUCTION_H

#include "gcmodel/GcModel.h"

#include <string>
#include <vector>

namespace tsogc {

/// The classes of mutator steps eligible as singleton ample sets. Each is a
/// deterministic LocalOp touching only the acting mutator's mark/handshake
/// scratch, invisible to the invariant suite when the eligibility predicate
/// holds (Reduction.cpp).
enum class AmpleClass : uint8_t {
  None = 0,
  InsBarrierTarget, ///< "mut:ins-barrier-target": MS.Target := TmpDst.
  SnapRoots,        ///< "mut:hs-snap-roots": RootMarkQueue := Roots.
  NextRoot,         ///< "mut:hs-next-root": MS.Target := pop(RootMarkQueue).
};

/// Ample-set selector for one model instance. Immutable after construction
/// and const-thread-safe (reads only the model's command arenas and the
/// state it is handed), so parallel explorer workers may share one.
class Reducer {
public:
  explicit Reducer(const GcModel &M);

  /// Choose the transitions of \p S to expand. \p Succs must be the full
  /// deterministic successor enumeration of \p S. On reduction, \p Keep
  /// receives the single chosen index and the return value is true; else
  /// \p Keep receives every index and the return value is false. Indices
  /// into the full enumeration are preserved so recorded choices replay
  /// through `replayChoices` unchanged.
  bool reduce(const GcSystemState &S, const std::vector<GcSuccessor> &Succs,
              std::vector<uint32_t> &Keep) const;

private:
  bool eligibleStep(const GcSystemState &S, unsigned MutIndex,
                    AmpleClass K) const;

  const GcModel &Md;
  /// Per mutator slot, a dense CmdId-indexed table of ample classes for
  /// that slot's program arena.
  std::vector<std::vector<AmpleClass>> Eligible;
};

/// The state with identical-program mutators renamed by \p Perm (source
/// mutator i becomes mutator Perm[i]): process states, HsPending bits,
/// handshake memory words, store buffers (with buffered handshake-word
/// targets renamed) and the bus-lock owner all move together. \p Perm must
/// be a permutation of {0, …, NumMutators-1}.
GcSystemState permuteMutators(const GcModel &M, const GcSystemState &S,
                              const std::vector<unsigned> &Perm);

/// Lexicographically minimal `M.encode` over all mutator permutations of
/// \p S — the symmetry-canonical visited-set key. Cost is NumMutators!
/// encodings per call; intended for the small mutator counts exhaustive
/// runs use.
std::string canonicalEncoding(const GcModel &M, const GcSystemState &S);

} // namespace tsogc

#endif // TSOGC_EXPLORE_REDUCTION_H
