//===- explore/Explorer.cpp ------------------------------------------------===//

#include "explore/Explorer.h"

#include "explore/Fingerprint.h"
#include "explore/Reduction.h"
#include "support/Assert.h"
#include "support/HashCombine.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <deque>
#include <numeric>
#include <unordered_map>

using namespace tsogc;

namespace {

/// Bookkeeping for path reconstruction: each visited state records its
/// predecessor's index, the label of the incoming transition, and that
/// transition's index in the full successor enumeration (for replay).
struct VisitInfo {
  uint64_t Parent;
  std::string Label;
  unsigned Depth;
  uint32_t Choice;
};

/// Rough per-entry footprint of the node-based visited map beyond the key
/// bytes themselves: bucket pointer, node link/hash, and the value slot.
constexpr uint64_t VisitedNodeOverhead =
    sizeof(void *) * 3 + sizeof(std::pair<const std::string, uint64_t>);

} // namespace

StateChecker tsogc::fullSuiteChecker(const InvariantSuite &Inv) {
  return [&Inv](const GcSystemState &S) { return Inv.check(S); };
}

StateChecker tsogc::headlineChecker(const InvariantSuite &Inv) {
  return
      [&Inv](const GcSystemState &S) { return Inv.checkSafetyHeadline(S); };
}

std::string tsogc::exploreVisitKey(const std::string &Enc, bool Compact) {
  if (!Compact)
    return Enc;
  uint64_t H1 = hashBytes(Enc.data(), Enc.size(), 0x6a09e667f3bcc908ULL);
  uint64_t H2 = hashBytes(Enc.data(), Enc.size(), 0xbb67ae8584caa73bULL);
  std::string Key(16, '\0');
  for (int I = 0; I < 8; ++I) {
    Key[I] = static_cast<char>(H1 >> (8 * I));
    Key[8 + I] = static_cast<char>(H2 >> (8 * I));
  }
  return Key;
}

std::string tsogc::exploreVisitKey64(const std::string &Enc) {
  uint64_t Fp = fingerprint64(Enc);
  std::string Key(8, '\0');
  for (int I = 0; I < 8; ++I)
    Key[I] = static_cast<char>(Fp >> (8 * I));
  return Key;
}

ExploreResult tsogc::detail::exhaustiveImpl(const InitFn &Init,
                                            const SuccsFn &Successors,
                                            const EncodeFn &Encode,
                                            const StateChecker &Check,
                                            const ExploreOptions &Opts,
                                            const ReduceFn &Reduce) {
  ExploreResult Res;
  Res.ProbabilisticVerdict =
      Opts.CompactVisited || Opts.Fingerprint64 || Opts.SymmetryReduction;

  // Visited set: canonical encoding -> dense index. Node metadata and the
  // frontier states are kept densely indexed. With CompactVisited the key
  // is a 128-bit digest of the encoding instead of the encoding itself;
  // with Fingerprint64, a 64-bit one.
  std::unordered_map<std::string, uint64_t> Visited;
  std::vector<VisitInfo> Info;
  std::deque<std::pair<GcSystemState, uint64_t>> Frontier;

  auto VisitKey = [&Opts, &Encode](const GcSystemState &S) {
    std::string Enc = Encode(S);
    return Opts.Fingerprint64 ? exploreVisitKey64(Enc)
                              : exploreVisitKey(Enc, Opts.CompactVisited);
  };

  GcSystemState InitState = Init();
  {
    auto [It, Fresh] = Visited.emplace(VisitKey(InitState), 0);
    Res.VisitedBytes += It->first.capacity() + VisitedNodeOverhead;
    (void)Fresh;
  }
  if (Opts.TrackPaths)
    Info.push_back(VisitInfo{0, "<init>", 0, 0});
  std::vector<unsigned> DepthOnly; // used when paths are off
  if (!Opts.TrackPaths)
    DepthOnly.push_back(0);
  Res.StatesVisited = 1;

  auto DepthOf = [&](uint64_t Idx) {
    return Opts.TrackPaths ? Info[Idx].Depth : DepthOnly[Idx];
  };
  auto Fail = [&](std::optional<Violation> V, const GcSystemState &S,
                  uint64_t Idx) {
    Res.Bug = std::move(V);
    Res.BadState = S;
    if (!Opts.TrackPaths)
      return;
    std::vector<std::string> Path;
    std::vector<uint32_t> Choices;
    for (uint64_t I = Idx; I != 0; I = Info[I].Parent) {
      Path.push_back(Info[I].Label);
      Choices.push_back(Info[I].Choice);
    }
    Res.Path.assign(Path.rbegin(), Path.rend());
    Res.Choices.assign(Choices.rbegin(), Choices.rend());
  };

  if (auto V = Check(InitState)) {
    Fail(std::move(V), InitState, 0);
    return Res;
  }
  Frontier.emplace_back(std::move(InitState), 0);

  // Once the state budget is exhausted, the current state's remaining
  // successors are still deduplicated and *checked* (a violation exactly one
  // transition past the budget boundary must not be silently missed) — they
  // are merely not counted or expanded further.
  bool BudgetHit = false;
  std::vector<GcSuccessor> Succs;
  std::vector<uint32_t> Keep;
  while (!Frontier.empty()) {
    auto [S, Idx] = Opts.Dfs ? std::move(Frontier.back())
                             : std::move(Frontier.front());
    if (Opts.Dfs)
      Frontier.pop_back();
    else
      Frontier.pop_front();
    const unsigned Depth = DepthOf(Idx);
    if (Opts.MaxDepth && Depth >= Opts.MaxDepth) {
      Res.Truncated = true;
      continue;
    }

    Succs.clear();
    Successors(S, Succs);
    if (Reduce) {
      Reduce(S, Succs, Keep);
      Res.TransitionsPruned += Succs.size() - Keep.size();
    } else {
      Keep.resize(Succs.size());
      std::iota(Keep.begin(), Keep.end(), 0u);
    }
    for (uint32_t Choice : Keep) {
      GcSuccessor &Succ = Succs[Choice];
      ++Res.TransitionsExplored;
      std::string Key = VisitKey(Succ.State);
      auto [It, Fresh] = Visited.emplace(
          std::move(Key), Opts.TrackPaths ? Info.size() : DepthOnly.size());
      if (!Fresh)
        continue;
      Res.VisitedBytes += It->first.capacity() + VisitedNodeOverhead;
      uint64_t NewIdx = It->second;
      if (Opts.TrackPaths)
        Info.push_back(VisitInfo{Idx, Succ.Label, Depth + 1, Choice});
      else
        DepthOnly.push_back(Depth + 1);
      if (!BudgetHit)
        ++Res.StatesVisited;
      Res.MaxDepthSeen = std::max(Res.MaxDepthSeen, Depth + 1);

      if (auto V = Check(Succ.State)) {
        Fail(std::move(V), Succ.State, NewIdx);
        return Res;
      }
      if (!BudgetHit && Opts.MaxStates && Res.StatesVisited >= Opts.MaxStates) {
        BudgetHit = true;
        Res.Truncated = true;
      }
      if (!BudgetHit)
        Frontier.emplace_back(std::move(Succ.State), NewIdx);
    }
    if (BudgetHit)
      return Res;
  }
  return Res;
}

ExploreResult tsogc::exploreExhaustive(const GcModel &M,
                                       const StateChecker &Check,
                                       const ExploreOptions &Opts) {
  detail::EncodeFn Encode =
      Opts.SymmetryReduction
          ? detail::EncodeFn([&M](const GcSystemState &S) {
              return canonicalEncoding(M, S);
            })
          : detail::EncodeFn(
                [&M](const GcSystemState &S) { return M.encode(S); });
  detail::ReduceFn Reduce;
  std::optional<Reducer> Red;
  if (Opts.AmpleReduction) {
    Red.emplace(M);
    Reduce = [&Red](const GcSystemState &S,
                    const std::vector<GcSuccessor> &Succs,
                    std::vector<uint32_t> &Keep) {
      return Red->reduce(S, Succs, Keep);
    };
  }
  return detail::exhaustiveImpl(
      [&M] { return M.initial(); },
      [&M](const GcSystemState &S, std::vector<GcSuccessor> &Out) {
        M.system().successors(S, Out);
      },
      Encode, Check, Opts, Reduce);
}

WalkResult tsogc::detail::randomWalkImpl(const InitFn &Init,
                                         const SuccsFn &Successors,
                                         const StateChecker &Check,
                                         const WalkOptions &Opts) {
  WalkResult Res;
  Xoshiro256 Rng(Opts.Seed);

  GcSystemState S = Init();
  if (auto V = Check(S)) {
    Res.Bug = std::move(V);
    Res.BadState = std::move(S);
    return Res;
  }

  std::deque<std::string> Tail;
  std::vector<GcSuccessor> Succs;
  for (uint64_t Step = 0; Step < Opts.Steps; ++Step) {
    Succs.clear();
    Successors(S, Succs);
    if (Succs.empty()) {
      // The GC model has no terminal states; restarting keeps long walks
      // useful even for intentionally crippled configurations. The tail is
      // cleared so it never splices pre-restart labels onto a walk that now
      // begins at the initial state again — a trace that would replay to
      // nothing.
      ++Res.Deadlocks;
      Tail.clear();
      S = Init();
      continue;
    }
    GcSuccessor &Pick = Succs[Rng.nextBelow(Succs.size())];
    Tail.push_back(Pick.Label);
    if (Tail.size() > Opts.TraceTail)
      Tail.pop_front();
    S = std::move(Pick.State);
    ++Res.StepsTaken;
    if (auto V = Check(S)) {
      Res.Bug = std::move(V);
      Res.BadState = std::move(S);
      break;
    }
  }
  Res.TailPath.assign(Tail.begin(), Tail.end());
  return Res;
}

WalkResult tsogc::exploreRandomWalk(const GcModel &M,
                                    const StateChecker &Check,
                                    const WalkOptions &Opts) {
  return detail::randomWalkImpl(
      [&M] { return M.initial(); },
      [&M](const GcSystemState &S, std::vector<GcSuccessor> &Out) {
        M.system().successors(S, Out);
      },
      Check, Opts);
}

ReplayResult tsogc::replayChoices(const GcModel &M,
                                  const std::vector<uint32_t> &Choices) {
  ReplayResult Res;
  Res.States.push_back(M.initial());
  std::vector<GcSuccessor> Succs;
  for (size_t Step = 0; Step < Choices.size(); ++Step) {
    Succs.clear();
    M.system().successors(Res.States.back(), Succs);
    uint32_t C = Choices[Step];
    if (C >= Succs.size()) {
      Res.Error = format("replay choice %u out of range at step %zu "
                         "(state has %zu successors)",
                         C, Step, Succs.size());
      return Res;
    }
    Res.States.push_back(std::move(Succs[C].State));
  }
  return Res;
}
