//===- explore/ParallelExplorer.cpp ---------------------------------------===//

#include "explore/ParallelExplorer.h"

#include "support/ShardedVisitedSet.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace tsogc;

namespace {

/// Per-state metadata in the sharded set's per-shard arenas: the incoming
/// edge (parent node id + transition label) and the depth at first
/// discovery. Path reconstruction walks Parent links shard-by-index after
/// the workers have joined.
struct NodeMeta {
  uint64_t Parent = ShardedVisitedSet<int>::InvalidId;
  uint32_t Depth = 0;
  std::string Label; // empty when TrackPaths is off
};

using VisitedSet = ShardedVisitedSet<NodeMeta>;

struct WorkItem {
  GcSystemState State;
  uint64_t Id = 0;
  uint32_t Depth = 0;
};

using Batch = std::vector<WorkItem>;

/// A mutex/condvar work-sharing queue with quiescence detection: a worker
/// that finds the queue empty while no other worker is busy declares the
/// search complete. Stop-requests (violation found, budget exhausted)
/// clear pending work so the pool drains promptly.
class WorkQueue {
public:
  void push(Batch B) {
    if (B.empty())
      return;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Quit)
        return;
      Q.push_back(std::move(B));
    }
    Cv.notify_one();
  }

  /// Blocks until work is available or the search is over. Returns false
  /// when the pool is done. The caller owes a call to taskDone() for every
  /// successful pop.
  bool pop(Batch &Out) {
    std::unique_lock<std::mutex> Lock(Mu);
    while (Q.empty() && Busy > 0 && !Quit)
      Cv.wait(Lock);
    if (Quit || Q.empty())
      return quitLocked();
    Out = std::move(Q.front());
    Q.pop_front();
    ++Busy;
    return true;
  }

  void taskDone() {
    std::lock_guard<std::mutex> Lock(Mu);
    --Busy;
    if (Busy == 0 && Q.empty())
      quitLocked();
  }

  void requestStop() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Quit = true;
      Q.clear();
    }
    Cv.notify_all();
  }

private:
  bool quitLocked() {
    Quit = true;
    Cv.notify_all();
    return false;
  }

  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Batch> Q;
  unsigned Busy = 0;
  bool Quit = false;
};

/// Shared exploration context: the sharded visited set, the global state
/// budget, and the first-violation-wins record.
struct Shared {
  const GcModel &M;
  const StateChecker &Check;
  const ParallelExploreOptions &Opts;
  VisitedSet Visited;
  WorkQueue Queue;

  std::atomic<uint64_t> StatesVisited{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Truncated{false};

  std::mutex BugMu;
  std::optional<Violation> Bug;
  std::optional<GcSystemState> BadState;
  uint64_t BadId = VisitedSet::InvalidId;

  Shared(const GcModel &M, const StateChecker &Check,
         const ParallelExploreOptions &Opts)
      : M(M), Check(Check), Opts(Opts), Visited(Opts.Shards) {}

  void recordViolation(Violation V, const GcSystemState &S, uint64_t Id) {
    {
      std::lock_guard<std::mutex> Lock(BugMu);
      if (!Bug) {
        Bug = std::move(V);
        BadState = S;
        BadId = Id;
      }
    }
    Stop.store(true, std::memory_order_release);
    Queue.requestStop();
  }

  /// Count one fresh state against the budget. Returns false when the state
  /// is over budget: it was still deduplicated and will still be checked —
  /// a violation one transition past the boundary must not be missed — but
  /// is not counted or expanded.
  bool countFresh() {
    uint64_t C = StatesVisited.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Opts.MaxStates)
      return true;
    if (C < Opts.MaxStates)
      return true;
    Truncated.store(true, std::memory_order_relaxed);
    Stop.store(true, std::memory_order_release);
    Queue.requestStop();
    if (C > Opts.MaxStates) {
      StatesVisited.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

/// Per-worker scratch: reusable successor buffer, outgoing batch, and
/// locally accumulated counters merged after the join.
struct Worker {
  Shared &Sh;
  observe::TraceBuffer *Trace = nullptr;
  std::vector<GcSuccessor> Succs;
  Batch Out;
  uint64_t Transitions = 0;
  uint32_t MaxDepthSeen = 0;

  explicit Worker(Shared &Sh) : Sh(Sh) {}

  void flush() {
    if (!Out.empty()) {
      Batch B;
      B.swap(Out);
      Sh.Queue.push(std::move(B));
    }
  }

  void expand(WorkItem &Item) {
    const ParallelExploreOptions &Opts = Sh.Opts;
    if (Opts.MaxDepth && Item.Depth >= Opts.MaxDepth) {
      Sh.Truncated.store(true, std::memory_order_relaxed);
      return;
    }
    Succs.clear();
    Sh.M.system().successors(Item.State, Succs);
    Transitions += Succs.size();
    for (GcSuccessor &Succ : Succs) {
      std::string Key = exploreVisitKey(Sh.M.encode(Succ.State),
                                        Opts.CompactVisited);
      NodeMeta Meta;
      Meta.Parent = Item.Id;
      Meta.Depth = Item.Depth + 1;
      if (Opts.TrackPaths)
        Meta.Label = Succ.Label;
      auto [Id, Fresh] = Sh.Visited.insert(std::move(Key), std::move(Meta));
      if (!Fresh)
        continue;
      MaxDepthSeen = std::max(MaxDepthSeen, Item.Depth + 1);
      bool InBudget = Sh.countFresh();
      if (auto V = Sh.Check(Succ.State)) {
        Sh.recordViolation(std::move(*V), Succ.State, Id);
        return;
      }
      if (InBudget && !Sh.Stop.load(std::memory_order_acquire)) {
        Out.push_back(WorkItem{std::move(Succ.State), Id, Item.Depth + 1});
        if (Out.size() >= Sh.Opts.Batch)
          flush();
      }
    }
  }

  void run() {
    Batch B;
    while (Sh.Queue.pop(B)) {
      for (WorkItem &Item : B) {
        if (Sh.Stop.load(std::memory_order_acquire))
          break;
        expand(Item);
      }
      observe::trace(Trace, observe::EventKind::FrontierProgress,
                     static_cast<uint32_t>(
                         Sh.StatesVisited.load(std::memory_order_relaxed)),
                     static_cast<uint32_t>(B.size()));
      B.clear();
      flush();
      Sh.Queue.taskDone();
    }
  }
};

} // namespace

ExploreResult tsogc::exploreParallel(const GcModel &M,
                                     const StateChecker &Check,
                                     const ParallelExploreOptions &Opts) {
  unsigned Workers = Opts.Workers ? Opts.Workers
                                  : std::max(1u, std::thread::hardware_concurrency());

  Shared Sh(M, Check, Opts);
  ExploreResult Res;

  GcSystemState Init = M.initial();
  NodeMeta InitMeta;
  InitMeta.Label = "<init>";
  auto [InitId, InitFresh] = Sh.Visited.insert(
      exploreVisitKey(M.encode(Init), Opts.CompactVisited),
      std::move(InitMeta));
  (void)InitFresh;
  Sh.StatesVisited.store(1, std::memory_order_relaxed);
  Res.StatesVisited = 1;
  if (auto V = Check(Init)) {
    Res.Bug = std::move(V);
    Res.BadState = std::move(Init);
    return Res;
  }

  Batch First;
  First.push_back(WorkItem{std::move(Init), InitId, 0});
  Sh.Queue.push(std::move(First));

  std::vector<Worker> Ctxs;
  Ctxs.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I) {
    Ctxs.emplace_back(Sh);
    if (Opts.Trace)
      Ctxs.back().Trace = Opts.Trace->createBuffer(static_cast<uint16_t>(I));
  }
  std::vector<std::thread> Threads;
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([&Ctxs, I] { Ctxs[I].run(); });
  for (std::thread &T : Threads)
    T.join();

  Res.StatesVisited = Sh.StatesVisited.load(std::memory_order_relaxed);
  Res.Truncated = Sh.Truncated.load(std::memory_order_relaxed);
  for (const Worker &W : Ctxs) {
    Res.TransitionsExplored += W.Transitions;
    Res.MaxDepthSeen = std::max(Res.MaxDepthSeen, W.MaxDepthSeen);
  }
  if (Sh.Bug) {
    Res.Bug = std::move(Sh.Bug);
    Res.BadState = std::move(Sh.BadState);
    if (Opts.TrackPaths && Sh.BadId != VisitedSet::InvalidId) {
      // Workers have joined: the arenas are quiescent; walk parent links.
      std::vector<std::string> Path;
      for (uint64_t I = Sh.BadId;
           Sh.Visited.meta(I).Parent != VisitedSet::InvalidId;
           I = Sh.Visited.meta(I).Parent)
        Path.push_back(Sh.Visited.meta(I).Label);
      Res.Path.assign(Path.rbegin(), Path.rend());
    }
  }
  return Res;
}
