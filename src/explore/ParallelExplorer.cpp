//===- explore/ParallelExplorer.cpp ---------------------------------------===//

#include "explore/ParallelExplorer.h"

#include "explore/Fingerprint.h"
#include "explore/Reduction.h"
#include "support/Random.h"
#include "support/ShardedVisitedSet.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>

using namespace tsogc;

namespace {

/// Per-state metadata in the sharded set's per-shard arenas: the incoming
/// edge (parent node id + transition label + full-enumeration successor
/// index) and the depth at first discovery. Path reconstruction walks
/// Parent links shard-by-index after the workers have joined.
struct NodeMeta {
  uint64_t Parent = ShardedVisitedSet<int>::InvalidId;
  uint32_t Depth = 0;
  uint32_t Choice = 0;
  std::string Label; // empty when TrackPaths is off
};

using VisitedSet = ShardedVisitedSet<NodeMeta>;

struct WorkItem {
  GcSystemState State;
  uint64_t Id = 0;
  uint32_t Depth = 0;
};

using Batch = std::vector<WorkItem>;

/// A mutex/condvar work-sharing queue with quiescence detection: a worker
/// that finds the queue empty while no other worker is busy declares the
/// search complete. Stop-requests (violation found, budget exhausted)
/// clear pending work so the pool drains promptly.
class WorkQueue {
public:
  void push(Batch B) {
    if (B.empty())
      return;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Quit)
        return;
      Q.push_back(std::move(B));
    }
    Cv.notify_one();
  }

  /// Blocks until work is available or the search is over. Returns false
  /// when the pool is done. The caller owes a call to taskDone() for every
  /// successful pop.
  bool pop(Batch &Out) {
    std::unique_lock<std::mutex> Lock(Mu);
    while (Q.empty() && Busy > 0 && !Quit)
      Cv.wait(Lock);
    if (Quit || Q.empty())
      return quitLocked();
    Out = std::move(Q.front());
    Q.pop_front();
    ++Busy;
    return true;
  }

  void taskDone() {
    std::lock_guard<std::mutex> Lock(Mu);
    --Busy;
    if (Busy == 0 && Q.empty())
      quitLocked();
  }

  void requestStop() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Quit = true;
      Q.clear();
    }
    Cv.notify_all();
  }

private:
  bool quitLocked() {
    Quit = true;
    Cv.notify_all();
    return false;
  }

  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Batch> Q;
  unsigned Busy = 0;
  bool Quit = false;
};

/// Shared exploration context: the sharded visited set, the global state
/// budget, and the first-violation-wins record.
struct Shared {
  const GcModel &M;
  const StateChecker &Check;
  const ParallelExploreOptions &Opts;
  VisitedSet Visited;
  WorkQueue Queue;
  std::optional<Reducer> Red; ///< Engaged iff Opts.AmpleReduction.

  std::atomic<uint64_t> StatesVisited{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Truncated{false};

  std::mutex BugMu;
  std::optional<Violation> Bug;
  std::optional<GcSystemState> BadState;
  uint64_t BadId = VisitedSet::InvalidId;

  Shared(const GcModel &M, const StateChecker &Check,
         const ParallelExploreOptions &Opts)
      : M(M), Check(Check), Opts(Opts), Visited(Opts.Shards) {
    if (Opts.AmpleReduction)
      Red.emplace(M);
  }

  /// Insert a state into the visited set under the configured keying
  /// (symmetry-canonical encoding, then fingerprint / digest / exact key).
  std::pair<uint64_t, bool> visit(const GcSystemState &S, NodeMeta Meta) {
    std::string Enc =
        Opts.SymmetryReduction ? canonicalEncoding(M, S) : M.encode(S);
    if (Opts.Fingerprint64)
      return Visited.insertFp(fingerprint64(Enc), std::move(Meta));
    return Visited.insert(exploreVisitKey(Enc, Opts.CompactVisited),
                          std::move(Meta));
  }

  void recordViolation(Violation V, const GcSystemState &S, uint64_t Id) {
    {
      std::lock_guard<std::mutex> Lock(BugMu);
      if (!Bug) {
        Bug = std::move(V);
        BadState = S;
        BadId = Id;
      }
    }
    Stop.store(true, std::memory_order_release);
    Queue.requestStop();
  }

  /// Count one fresh state against the budget. Returns false when the state
  /// is over budget: it was still deduplicated and will still be checked —
  /// a violation one transition past the boundary must not be missed — but
  /// is not counted or expanded.
  bool countFresh() {
    uint64_t C = StatesVisited.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Opts.MaxStates)
      return true;
    if (C < Opts.MaxStates)
      return true;
    Truncated.store(true, std::memory_order_relaxed);
    Stop.store(true, std::memory_order_release);
    Queue.requestStop();
    if (C > Opts.MaxStates) {
      StatesVisited.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

/// Per-worker scratch: reusable successor buffer, outgoing batch, and
/// locally accumulated counters merged after the join.
struct Worker {
  Shared &Sh;
  observe::TraceBuffer *Trace = nullptr;
  std::vector<GcSuccessor> Succs;
  std::vector<uint32_t> Keep;
  Batch Out;
  uint64_t Transitions = 0;
  uint64_t Pruned = 0;
  uint32_t MaxDepthSeen = 0;

  explicit Worker(Shared &Sh) : Sh(Sh) {}

  void flush() {
    if (!Out.empty()) {
      Batch B;
      B.swap(Out);
      Sh.Queue.push(std::move(B));
    }
  }

  void expand(WorkItem &Item) {
    const ParallelExploreOptions &Opts = Sh.Opts;
    if (Opts.MaxDepth && Item.Depth >= Opts.MaxDepth) {
      Sh.Truncated.store(true, std::memory_order_relaxed);
      return;
    }
    Succs.clear();
    Sh.M.system().successors(Item.State, Succs);
    if (Sh.Red) {
      Sh.Red->reduce(Item.State, Succs, Keep);
      Pruned += Succs.size() - Keep.size();
    } else {
      Keep.resize(Succs.size());
      std::iota(Keep.begin(), Keep.end(), 0u);
    }
    Transitions += Keep.size();
    for (uint32_t Choice : Keep) {
      GcSuccessor &Succ = Succs[Choice];
      NodeMeta Meta;
      Meta.Parent = Item.Id;
      Meta.Depth = Item.Depth + 1;
      Meta.Choice = Choice;
      if (Opts.TrackPaths)
        Meta.Label = Succ.Label;
      auto [Id, Fresh] = Sh.visit(Succ.State, std::move(Meta));
      if (!Fresh)
        continue;
      MaxDepthSeen = std::max(MaxDepthSeen, Item.Depth + 1);
      bool InBudget = Sh.countFresh();
      if (auto V = Sh.Check(Succ.State)) {
        Sh.recordViolation(std::move(*V), Succ.State, Id);
        return;
      }
      if (InBudget && !Sh.Stop.load(std::memory_order_acquire)) {
        Out.push_back(WorkItem{std::move(Succ.State), Id, Item.Depth + 1});
        if (Out.size() >= Sh.Opts.Batch)
          flush();
      }
    }
  }

  void run() {
    Batch B;
    while (Sh.Queue.pop(B)) {
      for (WorkItem &Item : B) {
        if (Sh.Stop.load(std::memory_order_acquire))
          break;
        expand(Item);
      }
      observe::trace(Trace, observe::EventKind::FrontierProgress,
                     static_cast<uint32_t>(
                         Sh.StatesVisited.load(std::memory_order_relaxed)),
                     static_cast<uint32_t>(B.size()));
      B.clear();
      flush();
      Sh.Queue.taskDone();
    }
  }
};

} // namespace

ExploreResult tsogc::exploreParallel(const GcModel &M,
                                     const StateChecker &Check,
                                     const ParallelExploreOptions &Opts) {
  unsigned Workers = Opts.Workers ? Opts.Workers
                                  : std::max(1u, std::thread::hardware_concurrency());

  Shared Sh(M, Check, Opts);
  ExploreResult Res;
  Res.ProbabilisticVerdict =
      Opts.CompactVisited || Opts.Fingerprint64 || Opts.SymmetryReduction;

  GcSystemState Init = M.initial();
  NodeMeta InitMeta;
  InitMeta.Label = "<init>";
  auto [InitId, InitFresh] = Sh.visit(Init, std::move(InitMeta));
  (void)InitFresh;
  Sh.StatesVisited.store(1, std::memory_order_relaxed);
  Res.StatesVisited = 1;
  if (auto V = Check(Init)) {
    Res.Bug = std::move(V);
    Res.BadState = std::move(Init);
    return Res;
  }

  Batch First;
  First.push_back(WorkItem{std::move(Init), InitId, 0});
  Sh.Queue.push(std::move(First));

  std::vector<Worker> Ctxs;
  Ctxs.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I) {
    Ctxs.emplace_back(Sh);
    if (Opts.Trace)
      Ctxs.back().Trace = Opts.Trace->createBuffer(static_cast<uint16_t>(I));
  }
  std::vector<std::thread> Threads;
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([&Ctxs, I] { Ctxs[I].run(); });
  for (std::thread &T : Threads)
    T.join();

  Res.StatesVisited = Sh.StatesVisited.load(std::memory_order_relaxed);
  Res.Truncated = Sh.Truncated.load(std::memory_order_relaxed);
  for (const Worker &W : Ctxs) {
    Res.TransitionsExplored += W.Transitions;
    Res.TransitionsPruned += W.Pruned;
    Res.MaxDepthSeen = std::max(Res.MaxDepthSeen, W.MaxDepthSeen);
  }
  Res.VisitedBytes = Sh.Visited.memoryBytes();
  if (Sh.Bug) {
    Res.Bug = std::move(Sh.Bug);
    Res.BadState = std::move(Sh.BadState);
    if (Opts.TrackPaths && Sh.BadId != VisitedSet::InvalidId) {
      // Workers have joined: the arenas are quiescent; walk parent links.
      std::vector<std::string> Path;
      std::vector<uint32_t> Choices;
      for (uint64_t I = Sh.BadId;
           Sh.Visited.meta(I).Parent != VisitedSet::InvalidId;
           I = Sh.Visited.meta(I).Parent) {
        Path.push_back(Sh.Visited.meta(I).Label);
        Choices.push_back(Sh.Visited.meta(I).Choice);
      }
      Res.Path.assign(Path.rbegin(), Path.rend());
      Res.Choices.assign(Choices.rbegin(), Choices.rend());
    }
  }
  return Res;
}

//===----------------------------------------------------------------------===//
// Swarm exploration
//===----------------------------------------------------------------------===//
//
// Each walker runs randomized-order depth-first dives over its own private
// stack; the only shared structure is the bloom summary of claimed states.
// Invariant kept by every walker: a state it claims (bloom-fresh, counted)
// is pushed on its stack and later fully expanded — so when all walkers
// retire with drained stacks, the claimed set is closed under (kept)
// successors. That closure is what makes the sweep exhaustive *modulo* the
// two probabilistic failure modes surfaced in the result: bloom false
// positives (a fresh state reads as claimed) and cross-walker claim races
// (two walkers both claim one state; counts become an upper bound).
//
// Walker w staggers its start by diving w random steps from the initial
// state before draining its stack, so late walkers do not immediately starve
// on a frontier the first walker already claimed. A walker whose stack
// drains re-dives from the initial state through random paths, claiming any
// state the swarm missed; after FruitlessRedives consecutive dives that
// claim nothing, it retires.

namespace {

struct SwarmNode {
  uint32_t Parent = ~0u;
  uint32_t Choice = 0;
  uint32_t Depth = 0;
  std::string Label; // empty when TrackPaths is off
};

struct SwarmShared {
  const GcModel &M;
  const StateChecker &Check;
  const SwarmOptions &Opts;
  StripedBloomFilter Bloom;
  std::optional<Reducer> Red;

  std::atomic<uint64_t> Claimed{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Truncated{false};

  std::mutex BugMu;
  std::optional<Violation> Bug;
  std::optional<GcSystemState> BadState;
  std::vector<std::string> BugPath;
  std::vector<uint32_t> BugChoices;

  SwarmShared(const GcModel &M, const StateChecker &Check,
              const SwarmOptions &Opts)
      : M(M), Check(Check), Opts(Opts), Bloom(Opts.BloomBits) {
    if (Opts.AmpleReduction)
      Red.emplace(M);
  }

  uint64_t fpOf(const GcSystemState &S) const {
    return fingerprint64(Opts.SymmetryReduction ? canonicalEncoding(M, S)
                                                : M.encode(S));
  }

  /// Count one claimed state against the global budget (same over-budget
  /// handling as the exhaustive pool: the state was still checked).
  bool countClaim() {
    uint64_t C = Claimed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Opts.MaxStates || C < Opts.MaxStates)
      return true;
    Truncated.store(true, std::memory_order_relaxed);
    Stop.store(true, std::memory_order_release);
    if (C > Opts.MaxStates) {
      Claimed.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

struct SwarmWalker {
  SwarmShared &Sh;
  unsigned Index;
  Xoshiro256 Rng;
  observe::TraceBuffer *Trace = nullptr;

  struct StackItem {
    GcSystemState State;
    uint32_t Node = 0;
  };
  std::vector<SwarmNode> Arena; ///< Node 0 = the initial state.
  std::vector<StackItem> Stack;
  std::vector<GcSuccessor> Succs;
  std::vector<uint32_t> Keep;
  uint64_t Transitions = 0;
  uint64_t Pruned = 0;
  uint32_t MaxDepthSeen = 0;

  SwarmWalker(SwarmShared &Sh, unsigned Index)
      : Sh(Sh), Index(Index),
        Rng(SplitMix64(Sh.Opts.Seed ^
                       (0x9e3779b97f4a7c15ULL * (Index + 1)))
                .next()) {}

  uint32_t addNode(uint32_t Parent, uint32_t Choice, const std::string &Label) {
    SwarmNode N;
    N.Parent = Parent;
    N.Choice = Choice;
    N.Depth = Parent == ~0u ? 0 : Arena[Parent].Depth + 1;
    if (Sh.Opts.TrackPaths)
      N.Label = Label;
    MaxDepthSeen = std::max(MaxDepthSeen, N.Depth);
    Arena.push_back(std::move(N));
    return static_cast<uint32_t>(Arena.size() - 1);
  }

  void fail(Violation V, const GcSystemState &S, uint32_t Node) {
    std::vector<std::string> Path;
    std::vector<uint32_t> Choices;
    if (Sh.Opts.TrackPaths)
      for (uint32_t I = Node; Arena[I].Parent != ~0u; I = Arena[I].Parent) {
        Path.push_back(Arena[I].Label);
        Choices.push_back(Arena[I].Choice);
      }
    {
      std::lock_guard<std::mutex> Lock(Sh.BugMu);
      if (!Sh.Bug) {
        Sh.Bug = std::move(V);
        Sh.BadState = S;
        Sh.BugPath.assign(Path.rbegin(), Path.rend());
        Sh.BugChoices.assign(Choices.rbegin(), Choices.rend());
      }
    }
    Sh.Stop.store(true, std::memory_order_release);
  }

  /// Enumerate (and optionally reduce) the successors of \p S into Succs,
  /// filling Keep with the full-enumeration indices to consider.
  void enumerate(const GcSystemState &S) {
    Succs.clear();
    Sh.M.system().successors(S, Succs);
    if (Sh.Red) {
      Sh.Red->reduce(S, Succs, Keep);
      Pruned += Succs.size() - Keep.size();
    } else {
      Keep.resize(Succs.size());
      std::iota(Keep.begin(), Keep.end(), 0u);
    }
  }

  /// Claim one successor: bloom-test, count, check, and push for later
  /// expansion. Returns false when a violation ended the search.
  bool claim(GcSuccessor &Succ, uint32_t Choice, uint32_t Parent) {
    ++Transitions;
    if (!Sh.Bloom.testAndSet(Sh.fpOf(Succ.State)))
      return true; // already summarized (or a bloom false positive)
    uint32_t Node = addNode(Parent, Choice, Succ.Label);
    bool InBudget = Sh.countClaim();
    if (auto V = Sh.Check(Succ.State)) {
      fail(std::move(*V), Succ.State, Node);
      return false;
    }
    if (InBudget && !Sh.Stop.load(std::memory_order_acquire))
      Stack.push_back(StackItem{std::move(Succ.State), Node});
    return true;
  }

  /// Expand a claimed state: claim every kept successor, in random order
  /// (the stack then pops them back in that order's reverse — a randomized
  /// DFS).
  bool expand(StackItem Item) {
    enumerate(Item.State);
    for (size_t I = Keep.size(); I > 1; --I)
      std::swap(Keep[I - 1], Keep[Rng.nextBelow(I)]);
    for (uint32_t Choice : Keep)
      if (!claim(Succs[Choice], Choice, Item.Node))
        return false;
    return true;
  }

  /// Random walk of up to \p Steps transitions from the initial state,
  /// claiming en route. Fresh claims are pushed by claim(); unclaimed
  /// territory may lie beyond already-claimed states, so the walk keeps
  /// going through them.
  void dive(uint64_t Steps) {
    GcSystemState S = Sh.M.initial();
    uint32_t Node = 0;
    for (uint64_t I = 0; I < Steps; ++I) {
      if (Sh.Stop.load(std::memory_order_acquire))
        return;
      enumerate(S);
      if (Keep.empty())
        return;
      uint32_t Choice = Keep[Rng.nextBelow(Keep.size())];
      GcSuccessor &Succ = Succs[Choice];
      size_t ArenaBefore = Arena.size();
      if (!claim(Succ, Choice, Node))
        return; // violation recorded
      if (Arena.size() > ArenaBefore) {
        // Fresh: claim() moved the state onto the stack (unless over
        // budget, in which case the walk cannot usefully continue).
        Node = static_cast<uint32_t>(Arena.size() - 1);
        if (Stack.empty() || Stack.back().Node != Node)
          return;
        S = Stack.back().State; // copy: the stack entry will be expanded
      } else {
        Node = addNode(Node, Choice, Succ.Label);
        S = std::move(Succ.State);
      }
    }
  }

  void run() {
    addNode(~0u, 0, "<init>");
    if (Index == 0) {
      // Walker 0 owns the initial state's expansion (the main thread
      // claimed and checked it); the claimed set stays closed under
      // successors.
      Stack.push_back(StackItem{Sh.M.initial(), 0});
    } else {
      dive(Index); // staggered start
    }
    unsigned Fruitless = 0;
    while (!Sh.Stop.load(std::memory_order_acquire)) {
      if (Stack.empty()) {
        if (Fruitless >= Sh.Opts.FruitlessRedives)
          break;
        size_t StackBefore = Stack.size();
        dive(1 + Rng.nextBelow(64));
        observe::trace(
            Trace, observe::EventKind::FrontierProgress,
            static_cast<uint32_t>(
                Sh.Claimed.load(std::memory_order_relaxed)),
            static_cast<uint32_t>(Stack.size()));
        // A dive was fruitful iff it claimed something, i.e. grew the
        // stack (every in-budget fresh claim is pushed; nothing else
        // pushes).
        if (Stack.size() > StackBefore)
          Fruitless = 0;
        else
          ++Fruitless;
        continue;
      }
      StackItem Item = std::move(Stack.back());
      Stack.pop_back();
      if (!expand(std::move(Item)))
        break;
    }
  }
};

} // namespace

ExploreResult tsogc::exploreSwarm(const GcModel &M, const StateChecker &Check,
                                  const SwarmOptions &Opts) {
  SwarmShared Sh(M, Check, Opts);
  ExploreResult Res;
  Res.ProbabilisticVerdict = true;

  GcSystemState Init = M.initial();
  Sh.Bloom.testAndSet(Sh.fpOf(Init));
  Sh.Claimed.store(1, std::memory_order_relaxed);
  Res.StatesVisited = 1;
  if (auto V = Check(Init)) {
    Res.Bug = std::move(V);
    Res.BadState = std::move(Init);
    Res.BloomBits = Sh.Bloom.bits();
    Res.BloomBitsSet = Sh.Bloom.bitCount();
    Res.BloomEstFpRate = Sh.Bloom.estimatedFalsePositiveRate();
    return Res;
  }

  unsigned Walkers = std::max(1u, Opts.Walkers);
  std::vector<std::unique_ptr<SwarmWalker>> Ctxs;
  Ctxs.reserve(Walkers);
  for (unsigned I = 0; I < Walkers; ++I) {
    Ctxs.push_back(std::make_unique<SwarmWalker>(Sh, I));
    if (Opts.Trace)
      Ctxs.back()->Trace = Opts.Trace->createBuffer(static_cast<uint16_t>(I));
  }
  std::vector<std::thread> Threads;
  Threads.reserve(Walkers);
  for (unsigned I = 0; I < Walkers; ++I)
    Threads.emplace_back([&Ctxs, I] { Ctxs[I]->run(); });
  for (std::thread &T : Threads)
    T.join();

  Res.StatesVisited = Sh.Claimed.load(std::memory_order_relaxed);
  Res.Truncated = Sh.Truncated.load(std::memory_order_relaxed);
  for (const auto &W : Ctxs) {
    Res.TransitionsExplored += W->Transitions;
    Res.TransitionsPruned += W->Pruned;
    Res.MaxDepthSeen = std::max(Res.MaxDepthSeen, W->MaxDepthSeen);
  }
  Res.BloomBits = Sh.Bloom.bits();
  Res.BloomBitsSet = Sh.Bloom.bitCount();
  Res.BloomEstFpRate = Sh.Bloom.estimatedFalsePositiveRate();
  Res.VisitedBytes = Sh.Bloom.bits() / 8;
  if (Sh.Bug) {
    Res.Bug = std::move(Sh.Bug);
    Res.BadState = std::move(Sh.BadState);
    Res.Path = std::move(Sh.BugPath);
    Res.Choices = std::move(Sh.BugChoices);
  }
  return Res;
}
