//===- explore/Explorer.h - Explicit-state exploration ---------------------===//
///
/// \file
/// Exhaustive breadth-first exploration of the model's reachable states with
/// invariant checking at every state — the executable counterpart of the
/// paper's induction over the _⇒_ relation, on finite instances. On a
/// violation, reconstructs the transition-label path from the initial state
/// (the counterexample trace).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_EXPLORER_H
#define TSOGC_EXPLORE_EXPLORER_H

#include "gcmodel/GcModel.h"
#include "invariants/InvariantSuite.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace tsogc {

struct ExploreOptions {
  /// Stop after visiting this many distinct states (0 = unlimited).
  uint64_t MaxStates = 2'000'000;
  /// Stop expanding beyond this depth (0 = unlimited).
  unsigned MaxDepth = 0;
  /// Depth-first instead of breadth-first. DFS reaches deep violations
  /// (e.g. barrier-ablation counterexamples, which need a full collection
  /// cycle) far sooner; BFS yields shortest counterexample traces.
  bool Dfs = false;
  /// Hash compaction (SPIN-style): store a 128-bit digest per visited
  /// state instead of the full canonical encoding, cutting memory ~10×.
  /// A digest collision would silently prune a state; with a good 128-bit
  /// hash the probability over N states is ~N²/2¹²⁸ (≪ 10⁻²⁰ at 10⁹
  /// states). Exhaustive *verification* runs in this repository default to
  /// exact storage; compaction is for scouting larger instances.
  bool CompactVisited = false;
  /// Record parent/label metadata for counterexample paths. Turning this
  /// off (scouting mode) saves ~50 bytes per state; a violation is then
  /// reported with an empty path.
  bool TrackPaths = true;
  /// Ample-set partial-order reduction (explore/Reduction.h): at states
  /// where a mutator's entire next-step set is one provably invisible
  /// local scratch step, expand only that step. Sound for the bundled
  /// checkers (which cannot observe mutator mark/handshake scratch); see
  /// docs/MODEL_CORRESPONDENCE.md "Reduction soundness" before combining
  /// with a custom StateChecker.
  bool AmpleReduction = false;
  /// Key the visited set on the lexicographically minimal encoding over
  /// all mutator permutations, collapsing symmetric states. The model is
  /// only *virtually* symmetric (the collector's handshake scratch names
  /// mutator indices), so results carry ProbabilisticVerdict; validated
  /// differentially, not proved.
  bool SymmetryReduction = false;
  /// Store a 64-bit fingerprint per visited state instead of the full
  /// encoding (or the 128-bit CompactVisited digest). Another ~2× memory
  /// cut over CompactVisited at a collision probability of ~N²/2⁶⁴;
  /// results carry ProbabilisticVerdict.
  bool Fingerprint64 = false;
};

struct ExploreResult {
  uint64_t StatesVisited = 0;
  uint64_t TransitionsExplored = 0;
  unsigned MaxDepthSeen = 0;
  /// Transitions the ample-set reduction declined to expand (0 when
  /// AmpleReduction is off). TransitionsExplored + TransitionsPruned is
  /// the full-enumeration transition count along the states actually
  /// visited.
  uint64_t TransitionsPruned = 0;
  /// Estimated bytes held by the visited set at the end of the run — the
  /// quantity the fingerprint/compaction modes exist to shrink.
  uint64_t VisitedBytes = 0;
  /// True if the state or depth limit stopped the search before the
  /// frontier emptied (the reachable set was not exhausted).
  bool Truncated = false;
  /// True when a clean exhaustion is a probabilistic claim rather than a
  /// proof: hash compaction or 64-bit fingerprints could collide, and
  /// symmetry canonicalization / swarm bloom summaries could fold a
  /// distinct state away. Sound modes (no reduction, or AmpleReduction
  /// alone) leave this false. A found violation is always definite — the
  /// violating state and its path are in hand either way.
  bool ProbabilisticVerdict = false;
  /// Swarm mode only: the shared bloom summary's size, set-bit count, and
  /// estimated false-positive rate at the final fill (the probability a
  /// fresh state was wrongly treated as visited, per query).
  uint64_t BloomBits = 0;
  uint64_t BloomBitsSet = 0;
  double BloomEstFpRate = 0.0;
  /// First invariant violation found, if any.
  std::optional<Violation> Bug;
  /// Transition labels from the initial state to the violating state.
  std::vector<std::string> Path;
  /// Successor indices (into the *full* deterministic enumeration) from
  /// the initial state to the violating state — replayable through
  /// replayChoices even for runs that pruned transitions. Filled exactly
  /// when Path is.
  std::vector<uint32_t> Choices;
  /// The violating state itself.
  std::optional<GcSystemState> BadState;

  bool exhaustedCleanly() const { return !Bug && !Truncated; }
};

/// A state predicate for exploration: nullopt = fine, otherwise the
/// violated property.
using StateChecker = std::function<std::optional<Violation>(const GcSystemState &)>;

/// The visited-set key for an encoded state: the encoding itself, or its
/// 128-bit digest under hash compaction. Shared by the sequential and
/// parallel explorers so their visited sets agree bit-for-bit.
std::string exploreVisitKey(const std::string &Enc, bool Compact);

/// The Fingerprint64 visited-set key: the 64-bit fingerprint of the
/// encoding as an 8-byte little-endian string. Shared by both explorers.
std::string exploreVisitKey64(const std::string &Enc);

/// The full §3.2 suite as a checker.
StateChecker fullSuiteChecker(const InvariantSuite &Inv);

/// Only the headline safety property (used by barrier-ablation hunts, where
/// auxiliary invariants break long before an actual unsafe free).
StateChecker headlineChecker(const InvariantSuite &Inv);

/// Breadth-first exhaustive search with a visited set keyed on the model's
/// canonical state encoding.
ExploreResult exploreExhaustive(const GcModel &M, const StateChecker &Check,
                                const ExploreOptions &Opts = {});
inline ExploreResult exploreExhaustive(const GcModel &M,
                                       const InvariantSuite &Inv,
                                       const ExploreOptions &Opts = {}) {
  return exploreExhaustive(M, fullSuiteChecker(Inv), Opts);
}

struct WalkOptions {
  uint64_t Steps = 50'000;
  uint64_t Seed = 1;
  /// Keep at most this many trailing transition labels for reporting.
  unsigned TraceTail = 200;
};

struct WalkResult {
  uint64_t StepsTaken = 0;
  std::optional<Violation> Bug;
  /// The last TraceTail transition labels before the violation (or walk
  /// end). Never spans a deadlock restart: the tail is cleared whenever the
  /// walk restarts from M.initial(), so these labels always replay from the
  /// initial state (provided the tail did not overflow TraceTail).
  std::vector<std::string> TailPath;
  std::optional<GcSystemState> BadState;
  /// Number of states with no successors encountered (the model should
  /// have none; reported for diagnosis).
  uint64_t Deadlocks = 0;
};

/// Uniform-random walk with invariant checking at every step; probabilistic
/// coverage of instances too large to exhaust.
WalkResult exploreRandomWalk(const GcModel &M, const StateChecker &Check,
                             const WalkOptions &Opts = {});
inline WalkResult exploreRandomWalk(const GcModel &M,
                                    const InvariantSuite &Inv,
                                    const WalkOptions &Opts = {}) {
  return exploreRandomWalk(M, fullSuiteChecker(Inv), Opts);
}

struct ReplayResult {
  /// Every state visited by the replay, including the initial one. On
  /// failure, holds the valid prefix (states up to the bad step).
  std::vector<GcSystemState> States;
  /// Set when a choice index was out of range: which step failed, the bad
  /// index, and how many successors the state actually had.
  std::optional<std::string> Error;

  bool ok() const { return !Error; }
};

/// Deterministic replay: from the initial state, repeatedly take the
/// successor with the given index. An out-of-range index yields a
/// diagnosable ReplayResult::Error naming the step instead of aborting, so
/// drivers can report bad traces gracefully.
ReplayResult replayChoices(const GcModel &M,
                           const std::vector<uint32_t> &Choices);

namespace detail {

/// The exploration cores are written against an abstract model — an
/// initial-state thunk, a successor enumerator and a canonical encoder —
/// so tests can drive them with synthetic systems (deliberate deadlocks,
/// planted boundary violations) that the GC model itself never exhibits.
using InitFn = std::function<GcSystemState()>;
using SuccsFn =
    std::function<void(const GcSystemState &, std::vector<GcSuccessor> &)>;
using EncodeFn = std::function<std::string(const GcSystemState &)>;
/// Transition selector: given a state and its full successor enumeration,
/// fill the indices to expand; return true iff anything was pruned. An
/// empty function expands everything.
using ReduceFn = std::function<bool(
    const GcSystemState &, const std::vector<GcSuccessor> &,
    std::vector<uint32_t> &)>;

ExploreResult exhaustiveImpl(const InitFn &Init, const SuccsFn &Succs,
                             const EncodeFn &Encode, const StateChecker &Check,
                             const ExploreOptions &Opts,
                             const ReduceFn &Reduce = {});
WalkResult randomWalkImpl(const InitFn &Init, const SuccsFn &Succs,
                          const StateChecker &Check, const WalkOptions &Opts);

} // namespace detail

} // namespace tsogc

#endif // TSOGC_EXPLORE_EXPLORER_H
