//===- explore/Fingerprint.h - Compressed visited-state summaries --------===//
///
/// \file
/// State fingerprinting for the explorer's scale-out modes: a 64-bit digest
/// of the canonical state encoding (SPIN-style hash compaction, one notch
/// more aggressive than the 128-bit `exploreVisitKey` digest) and a striped
/// atomic bloom filter used as the shared visited summary of swarm
/// exploration. Both are *probabilistic*: a digest collision or a bloom
/// false positive silently prunes a state, so every result produced through
/// them carries `ExploreResult::ProbabilisticVerdict` (see
/// docs/MODEL_CORRESPONDENCE.md "Reduction soundness").
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_FINGERPRINT_H
#define TSOGC_EXPLORE_FINGERPRINT_H

#include "support/Assert.h"
#include "support/HashCombine.h"

#include <atomic>
#include <memory>
#include <string>

namespace tsogc {

/// 64-bit fingerprint of a canonical state encoding. Seeded independently
/// of the two 128-bit-digest seeds (exploreVisitKey) and of the visited-set
/// stripe seed, so the fingerprint, the compaction digest and the shard
/// choice stay pairwise independent.
inline uint64_t fingerprint64(const std::string &Enc) {
  return hashBytes(Enc.data(), Enc.size(), 0x510e527fade682d1ULL);
}

/// A fixed-size concurrent bloom filter over 64-bit fingerprints: the
/// shared visited summary of swarm exploration. Two probe positions per
/// fingerprint (double hashing), set with relaxed fetch_or on striped
/// atomic words — no locks, no resizing.
///
/// Concurrency contract: testAndSet() is safe from any number of threads.
/// The statistics (bitCount and friends) sweep the words non-atomically
/// relative to each other and are meant for quiescent post-run accounting.
///
/// Accounting caveats, both surfaced to callers through ExploreResult:
///   * a false positive (all probed bits set by *other* fingerprints)
///     silently drops a state — estimatedFalsePositiveRate() bounds how
///     likely that was at the observed fill;
///   * two threads racing testAndSet on the same fresh fingerprint can
///     both see a bit flip (each on a different probe word) and both
///     claim it. Claims are therefore an upper bound on distinct
///     fingerprints; single-walker runs are exact.
class StripedBloomFilter {
public:
  /// \p Bits is rounded up to a multiple of 64 (minimum 128).
  explicit StripedBloomFilter(uint64_t Bits) {
    if (Bits < 128)
      Bits = 128;
    NumWords = (Bits + 63) / 64;
    Words = std::make_unique<std::atomic<uint64_t>[]>(NumWords);
    for (uint64_t I = 0; I < NumWords; ++I)
      Words[I].store(0, std::memory_order_relaxed);
  }

  uint64_t bits() const { return NumWords * 64; }

  /// Set both probe positions of \p Fp. Returns true iff this call flipped
  /// at least one bit (the fingerprint was not already summarized).
  bool testAndSet(uint64_t Fp) {
    bool Fresh = false;
    uint64_t Probe = Fp;
    // Second probe stride: odd, fingerprint-derived, so distinct
    // fingerprints sharing a first probe rarely share the second.
    const uint64_t Stride = hashMix(0x243f6a8885a308d3ULL, Fp) | 1;
    for (int K = 0; K < NumProbes; ++K, Probe += Stride) {
      uint64_t Bit = Probe % bits();
      uint64_t Mask = 1ull << (Bit & 63);
      uint64_t Prev = Words[Bit >> 6].fetch_or(Mask, std::memory_order_relaxed);
      Fresh |= (Prev & Mask) == 0;
    }
    return Fresh;
  }

  /// Number of set bits. Quiescent accounting only.
  uint64_t bitCount() const {
    uint64_t N = 0;
    for (uint64_t I = 0; I < NumWords; ++I) {
      uint64_t W = Words[I].load(std::memory_order_relaxed);
      while (W) {
        W &= W - 1;
        ++N;
      }
    }
    return N;
  }

  double fillRatio() const {
    return static_cast<double>(bitCount()) / static_cast<double>(bits());
  }

  /// Probability that a *fresh* fingerprint would have been reported as
  /// seen at the current fill: fill^k with k probe positions.
  double estimatedFalsePositiveRate() const {
    double F = fillRatio();
    double R = 1.0;
    for (int K = 0; K < NumProbes; ++K)
      R *= F;
    return R;
  }

  static constexpr int NumProbes = 2;

private:
  std::unique_ptr<std::atomic<uint64_t>[]> Words;
  uint64_t NumWords = 0;
};

} // namespace tsogc

#endif // TSOGC_EXPLORE_FINGERPRINT_H
