//===- explore/Export.cpp -----------------------------------------------===//

#include "explore/Export.h"

#include "support/StringUtils.h"

using namespace tsogc;

namespace {

std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size() + 2);
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string refJson(Ref R) {
  return R.isNull() ? "null" : format("%u", R.index());
}

std::string refSetJson(const std::set<Ref> &S) {
  std::vector<std::string> Parts;
  for (Ref R : S)
    Parts.push_back(refJson(R));
  return "[" + join(Parts, ",") + "]";
}

} // namespace

std::string tsogc::heapToDot(const GcModel &M, const GcSystemState &S) {
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();
  ColorView CV = colorView(M, S);

  std::string Out = "digraph heap {\n  rankdir=LR;\n"
                    "  node [shape=circle, style=filled];\n";

  // Objects, colored per the tricolor interpretation. Grey-and-white
  // overlap (the CAS window) renders as grey with a dashed border.
  for (Ref R : H.allocatedRefs()) {
    const char *Fill = "white";
    std::string Extra;
    if (CV.isGrey(R)) {
      Fill = "grey";
      if (CV.isWhite(R))
        Extra = ", style=\"filled,dashed\"";
    } else if (CV.isBlack(R)) {
      Fill = "black";
      Extra = ", fontcolor=white";
    }
    Out += format("  r%u [fillcolor=%s%s];\n", R.index(), Fill,
                  Extra.c_str());
  }

  // Committed heap edges.
  for (Ref R : H.allocatedRefs())
    for (unsigned F = 0; F < H.numFields(); ++F) {
      Ref T = H.field(R, static_cast<FieldId>(F));
      if (!T.isNull())
        Out += format("  r%u -> r%u [label=f%u];\n", R.index(), T.index(), F);
    }

  // Pending (buffered) field writes: dashed edges from the would-be source.
  for (unsigned P = 0; P <= M.config().NumMutators; ++P)
    for (const PendingWrite &W : Sys.Mem.buffer(static_cast<ProcId>(P))) {
      if (W.Loc.Kind != MemLocKind::ObjField || W.Val.asRef().isNull())
        continue;
      Out += format("  r%u -> r%u [style=dashed, color=red, "
                    "label=\"buf(%s)\"];\n",
                    W.Loc.R.index(), W.Val.asRef().index(),
                    M.procName(P).c_str());
    }

  // Roots: one box per mutator.
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Out += format("  mut%u [shape=box, fillcolor=lightblue];\n", I);
    for (Ref R : Mu.Roots)
      Out += format("  mut%u -> r%u;\n", I, R.index());
    if (!Mu.DeletedRef.isNull())
      Out += format("  mut%u -> r%u [style=dotted, label=del];\n", I,
                    Mu.DeletedRef.index());
  }
  Out += "}\n";
  return Out;
}

std::string tsogc::stateToJson(const GcModel &M, const GcSystemState &S) {
  const CollectorLocal &C = GcModel::collector(S);
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();

  std::string Out = "{";
  Out += format("\"collector\":{\"phase\":\"%s\",\"fM\":%s,\"fA\":%s,"
                "\"W\":%s,\"cycle\":%u},",
                gcPhaseName(C.Phase), C.FM ? "true" : "false",
                C.FA ? "true" : "false", refSetJson(C.W).c_str(),
                C.CycleCount);

  Out += "\"mutators\":[";
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    if (I)
      Out += ",";
    Out += format("{\"roots\":%s,\"WM\":%s,\"phaseView\":\"%s\","
                  "\"completed\":\"%s\"}",
                  refSetJson(Mu.Roots).c_str(), refSetJson(Mu.WM).c_str(),
                  gcPhaseName(Mu.PhaseLocal),
                  hsRoundName(Mu.CompletedRound));
  }
  Out += "],";

  Out += "\"heap\":[";
  bool First = true;
  for (Ref R : H.allocatedRefs()) {
    if (!First)
      Out += ",";
    First = false;
    std::vector<std::string> Fs;
    for (Ref F : H.object(R).Fields)
      Fs.push_back(refJson(F));
    Out += format("{\"ref\":%u,\"mark\":%s,\"fields\":[%s]}", R.index(),
                  H.markFlag(R) ? "true" : "false", join(Fs, ",").c_str());
  }
  Out += "],";

  Out += format("\"round\":\"%s\",\"lock\":%d}", hsRoundName(Sys.CurRound),
                Sys.Mem.lockOwner());
  return Out;
}

std::string tsogc::exploreResultToJson(const GcModel &M,
                                       const ExploreResult &Res) {
  std::string Out = "{";
  Out += format("\"states\":%llu,\"transitions\":%llu,\"maxDepth\":%u,"
                "\"truncated\":%s,",
                static_cast<unsigned long long>(Res.StatesVisited),
                static_cast<unsigned long long>(Res.TransitionsExplored),
                Res.MaxDepthSeen, Res.Truncated ? "true" : "false");
  if (Res.Bug) {
    Out += format("\"violation\":{\"name\":\"%s\",\"detail\":\"%s\"},",
                  jsonEscape(Res.Bug->Name).c_str(),
                  jsonEscape(Res.Bug->Detail).c_str());
    std::vector<std::string> Steps;
    for (const std::string &L : Res.Path)
      Steps.push_back("\"" + jsonEscape(L) + "\"");
    Out += "\"trace\":[" + join(Steps, ",") + "],";
    Out += "\"badState\":" + stateToJson(M, *Res.BadState);
  } else {
    Out += "\"violation\":null";
  }
  Out += "}";
  return Out;
}

void tsogc::exportMetrics(const ExploreResult &Res, double ElapsedSec,
                          observe::MetricsRegistry &Reg,
                          const std::string &Prefix) {
  Reg.counter(Prefix + "states", Res.StatesVisited);
  Reg.counter(Prefix + "transitions", Res.TransitionsExplored);
  Reg.counter(Prefix + "max_depth", Res.MaxDepthSeen);
  Reg.counter(Prefix + "truncated", Res.Truncated ? 1 : 0);
  Reg.counter(Prefix + "violation", Res.Bug ? 1 : 0);
  Reg.counter(Prefix + "path_len",
              static_cast<uint64_t>(Res.Path.size()));
  // Reduction/compression accounting (zero / false outside those modes).
  Reg.counter(Prefix + "transitions_pruned", Res.TransitionsPruned);
  Reg.counter(Prefix + "visited_bytes", Res.VisitedBytes);
  Reg.counter(Prefix + "probabilistic", Res.ProbabilisticVerdict ? 1 : 0);
  if (Res.BloomBits) {
    Reg.counter(Prefix + "bloom_bits", Res.BloomBits);
    Reg.counter(Prefix + "bloom_bits_set", Res.BloomBitsSet);
    Reg.gauge(Prefix + "bloom_est_fp_rate", Res.BloomEstFpRate);
  }
  if (ElapsedSec > 0.0) {
    Reg.gauge(Prefix + "elapsed_sec", ElapsedSec);
    Reg.gauge(Prefix + "states_per_sec",
              static_cast<double>(Res.StatesVisited) / ElapsedSec);
  }
}
