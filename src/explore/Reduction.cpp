//===- explore/Reduction.cpp ----------------------------------------------===//

#include "explore/Reduction.h"

#include "gcmodel/Collector.h"

#include <algorithm>
#include <numeric>

using namespace tsogc;

//===----------------------------------------------------------------------===//
// Ample-set partial-order reduction
//===----------------------------------------------------------------------===//
//
// The ample set at S is either all of succ(S) or the full transition set of
// one mutator j, which the selector only accepts when that set is a single
// deterministic LocalOp from the table below. The standard conditions:
//
//  C0 (non-emptiness)  — we pick an existing successor.
//  C1 (dependence)     — the step reads/writes only mutator j's own scratch
//     (MS.Target / RootMarkQueue); no other process reads a mutator's local
//     state except through a rendezvous *with j*, and j has no rendezvous
//     enabled (its whole head set is this LocalOp). So every transition of
//     every other process is independent of the ample step, and no
//     j-transition outside the ample set exists at all.
//  C2 (invisibility)   — the eligibility predicate below ensures the step
//     does not change any atom the invariant suite can observe; see
//     eligibleStep.
//  C3 (cycle proviso)  — after InsBarrierTarget or NextRoot the mutator's
//     next head is the mark request "…mark-load-flag" (the freshly latched
//     target is non-null), which is never ample; after SnapRoots it is
//     either NextRoot (then the above) or the handshake fence. So one
//     mutator contributes at most two consecutive ample steps, and ample
//     steps never advance the collector or the system process. A cycle of
//     the reduced graph made only of ample steps would have to advance some
//     mutator forever without ever reaching a non-ample head — impossible.
//     Hence every cycle contains a fully expanded state.
//
// docs/MODEL_CORRESPONDENCE.md "Reduction soundness" carries the full prose
// argument, including the checker-visibility caveat: the reduction is sound
// for checkers blind to mutator mark/handshake scratch (the bundled suite
// is), not for arbitrary StateCheckers.

Reducer::Reducer(const GcModel &M) : Md(M) {
  const ModelConfig &Cfg = M.config();
  Eligible.resize(Cfg.NumMutators);
  for (unsigned I = 0; I < Cfg.NumMutators; ++I) {
    const GcProg &Prog = M.system().program(mutatorPid(I));
    std::vector<AmpleClass> &Table = Eligible[I];
    Table.assign(Prog.size(), AmpleClass::None);
    for (cimp::CmdId Id = 0; Id < Prog.size(); ++Id) {
      const auto &C = Prog.cmd(Id);
      if (C.Kind != cimp::CmdKind::LocalOp)
        continue;
      if (C.Label == "mut:ins-barrier-target")
        Table[Id] = AmpleClass::InsBarrierTarget;
      else if (C.Label == "mut:hs-snap-roots")
        Table[Id] = AmpleClass::SnapRoots;
      else if (C.Label == "mut:hs-next-root")
        Table[Id] = AmpleClass::NextRoot;
    }
  }
}

bool Reducer::eligibleStep(const GcSystemState &S, unsigned MutIndex,
                           AmpleClass K) const {
  // C2: the only checker-visible atoms these steps can touch are the
  // mutator's contribution to the extended root set (GcPredicates):
  //
  //   Roots ∪ {DeletedRef} ∪ {MS.Target} ∪ RootMarkQueue
  //         ∪ {values of pending own-buffer field writes}
  //
  // The step is invisible iff that union is unchanged, i.e. every ref the
  // step drops from one member is still covered by the rest. Everything
  // else the suite reads (heap, flags, work-lists, ghosts, collector and
  // sys state, buffered writes themselves) is untouched by construction.
  const MutatorLocal &Mu = Md.mutator(S, MutIndex);
  const SysLocal &Sys = Md.sysState(S);
  const std::vector<PendingWrite> &Buf = Sys.Mem.buffer(mutatorPid(MutIndex));

  auto InPendingWrites = [&](Ref R) {
    for (const PendingWrite &W : Buf)
      if (W.Loc.Kind == MemLocKind::ObjField && W.Val.asRef() == R)
        return true;
    return false;
  };
  auto InQueue = [&](Ref R) {
    return std::find(Mu.RootMarkQueue.begin(), Mu.RootMarkQueue.end(), R) !=
           Mu.RootMarkQueue.end();
  };
  // Cover excluding MS.Target and (optionally) the queue — the member the
  // step overwrites cannot cover itself.
  auto CoveredBase = [&](Ref R) {
    return R.isNull() || Mu.Roots.count(R) != 0 || R == Mu.DeletedRef ||
           InPendingWrites(R);
  };

  switch (K) {
  case AmpleClass::InsBarrierTarget:
    // MS.Target := TmpDst. Unchanged union iff the old target stays
    // covered and the new target was already in it. (TmpDst ∈ Roots by
    // construction of the store op, but check rather than assume.)
    if (Mu.TmpDst == Mu.MS.Target)
      return true;
    return (CoveredBase(Mu.MS.Target) || InQueue(Mu.MS.Target)) &&
           (CoveredBase(Mu.TmpDst) || InQueue(Mu.TmpDst));
  case AmpleClass::NextRoot:
    // MS.Target := queue.back(); pop. The popped ref moves from the queue
    // into MS.Target, staying in the union; only the old target needs
    // outside cover.
    return CoveredBase(Mu.MS.Target) || InQueue(Mu.MS.Target);
  case AmpleClass::SnapRoots:
    // RootMarkQueue := Roots. The new queue is a subset of Roots; every
    // old entry must be covered without the queue itself.
    for (Ref R : Mu.RootMarkQueue)
      if (!CoveredBase(R) && R != Mu.MS.Target)
        return false;
    return true;
  case AmpleClass::None:
    break;
  }
  return false;
}

bool Reducer::reduce(const GcSystemState &S,
                     const std::vector<GcSuccessor> &Succs,
                     std::vector<uint32_t> &Keep) const {
  const unsigned N = Md.config().NumMutators;
  for (unsigned J = 0; J < N; ++J) {
    const ProcId Pid = mutatorPid(J);
    // Mutator j's transitions within the full enumeration. Mutators have
    // no Response commands, so j participates only as the acting process.
    int Only = -1;
    bool Multiple = false;
    for (size_t I = 0; I < Succs.size(); ++I) {
      if (Succs[I].P != Pid)
        continue;
      if (Only >= 0) {
        Multiple = true;
        break;
      }
      Only = static_cast<int>(I);
    }
    if (Multiple || Only < 0)
      continue;
    const GcSuccessor &Sc = Succs[static_cast<size_t>(Only)];
    if (Sc.IsRendezvous)
      continue;
    if (Sc.PCmd >= Eligible[J].size())
      continue;
    const AmpleClass K = Eligible[J][Sc.PCmd];
    if (K == AmpleClass::None)
      continue;
    // All-or-nothing: the single successor must be j's *entire* head set.
    // An enabled-but-partnerless Request head (e.g. a fence waiting on a
    // drained buffer) produces no successor, so count heads, not
    // successors.
    if (Md.nextLabels(S, Pid).size() != 1)
      continue;
    if (!eligibleStep(S, J, K))
      continue;
    Keep.assign(1, static_cast<uint32_t>(Only));
    return true;
  }
  Keep.resize(Succs.size());
  std::iota(Keep.begin(), Keep.end(), 0u);
  return false;
}

//===----------------------------------------------------------------------===//
// Mutator symmetry
//===----------------------------------------------------------------------===//

GcSystemState tsogc::permuteMutators(const GcModel &M, const GcSystemState &S,
                                     const std::vector<unsigned> &Perm) {
  const ModelConfig &Cfg = M.config();
  const unsigned N = Cfg.NumMutators;
  TSOGC_CHECK(Perm.size() == N, "permutation arity mismatch");

  GcSystemState Out = S;
  // Mutator process states (control stack + locals) move wholesale: the
  // per-slot program arenas are structurally identical, so a stack of
  // CmdIds is valid in any slot, and MutatorLocal carries no self-index.
  for (unsigned I = 0; I < N; ++I)
    Out[mutatorPid(Perm[I])] = S[mutatorPid(I)];

  SysLocal &Sys = asSys(Out[sysPid(Cfg)].Local);
  const SysLocal &Old = asSys(S[sysPid(Cfg)].Local);

  // Per-mutator handshake registers inside the system process.
  for (unsigned I = 0; I < N; ++I)
    Sys.HsPending[Perm[I]] = Old.HsPending[I];

  // TSO-refined handshakes: the per-mutator request/ack words are ordinary
  // memory cells and must be renamed both in shared memory and in every
  // store buffer (the collector buffers request-word stores, mutators
  // buffer their own ack stores).
  auto RemapBuffer = [&](std::vector<PendingWrite> B) {
    if (Cfg.TsoHandshakes)
      for (PendingWrite &W : B) {
        if (W.Loc.Kind != MemLocKind::GlobalVar || W.Loc.Var < NumGcGlobals)
          continue;
        const unsigned Slot = W.Loc.Var - NumGcGlobals;
        const unsigned Mut = Slot / 2;
        W.Loc.Var = (Slot & 1) ? gvarHsAck(Perm[Mut]) : gvarHsReq(Perm[Mut]);
      }
    return B;
  };
  if (Cfg.TsoHandshakes)
    for (unsigned I = 0; I < N; ++I) {
      Sys.Mem.memoryWrite(
          MemLoc::globalVar(gvarHsReq(Perm[I])),
          Old.Mem.memoryRead(MemLoc::globalVar(gvarHsReq(I))));
      Sys.Mem.memoryWrite(
          MemLoc::globalVar(gvarHsAck(Perm[I])),
          Old.Mem.memoryRead(MemLoc::globalVar(gvarHsAck(I))));
    }
  // Store buffers travel with their owning hardware thread (memory procs
  // are 0 = collector plus the mutators; the system process owns none).
  Sys.Mem.setBuffer(CollectorPid, RemapBuffer(Old.Mem.buffer(CollectorPid)));
  for (unsigned I = 0; I < N; ++I)
    Sys.Mem.setBuffer(mutatorPid(Perm[I]),
                      RemapBuffer(Old.Mem.buffer(mutatorPid(I))));

  // Bus lock held by a mutator follows it.
  const int Owner = Old.Mem.lockOwner();
  if (Owner >= static_cast<int>(mutatorPid(0)) &&
      Owner <= static_cast<int>(mutatorPid(N - 1)))
    Sys.Mem.setLockOwner(
        mutatorPid(Perm[static_cast<unsigned>(Owner) - mutatorPid(0)]));

  // Deliberately NOT remapped: CollectorLocal's HsMutIdx/HsSeq/HsAckSeen.
  // The collector iterates mutators in index order, so its scratch names
  // mutator indices; renaming them would desynchronize its control
  // position. This is exactly why the model is only virtually symmetric —
  // see docs/MODEL_CORRESPONDENCE.md "Reduction soundness".
  return Out;
}

std::string tsogc::canonicalEncoding(const GcModel &M,
                                     const GcSystemState &S) {
  const unsigned N = M.config().NumMutators;
  std::string Best = M.encode(S);
  if (N < 2)
    return Best;
  std::vector<unsigned> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0u);
  while (std::next_permutation(Perm.begin(), Perm.end())) {
    std::string E = M.encode(permuteMutators(M, S, Perm));
    if (E < Best)
      Best = std::move(E);
  }
  return Best;
}
