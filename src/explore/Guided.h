//===- explore/Guided.h - Label-guided scenario search ---------------------===//
///
/// \file
/// A scenario driver for reproducing specific interleavings from the paper
/// (e.g. the insertion-barrier violation, or the hp_InitMark
/// deletion-barrier defeat of §3.2). The driver holds a current state and
/// advances it by bounded BFS over a *restricted* transition relation:
/// only transitions whose labels pass a filter are taken, and the search
/// stops at the first state satisfying a goal predicate. Scripting a
/// scenario is then a sequence of advance() calls; each narrows the
/// schedule enough that the needle interleaving is found in milliseconds
/// where blind search fails.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_EXPLORE_GUIDED_H
#define TSOGC_EXPLORE_GUIDED_H

#include "explore/Explorer.h"

namespace tsogc {

class GuidedDriver {
public:
  using LabelFilter = std::function<bool(const std::string &)>;
  using StatePred = std::function<bool(const GcSystemState &)>;

  explicit GuidedDriver(const GcModel &M) : M(M), State(M.initial()) {}

  const GcSystemState &state() const { return State; }

  /// BFS from the current state using only transitions whose label passes
  /// \p Allowed, until a state satisfying \p Goal is found (which becomes
  /// the current state) or \p MaxStates distinct states were seen.
  /// Returns true on success.
  bool advance(const LabelFilter &Allowed, const StatePred &Goal,
               uint64_t MaxStates = 200'000);

  /// Take one enabled transition whose label contains \p LabelSubstr and
  /// whose post-state satisfies \p Accept (if given). Returns true if such
  /// a transition was enabled right now.
  bool take(const std::string &LabelSubstr, const StatePred &Accept = {});

  /// Convenience filters.
  static LabelFilter labelContainsAnyOf(std::vector<std::string> Subs);

private:
  const GcModel &M;
  GcSystemState State;
};

} // namespace tsogc

#endif // TSOGC_EXPLORE_GUIDED_H
