//===- invariants/InvariantSuite.h - The global invariant of §3.2 --------===//
///
/// \file
/// The executable counterpart of the paper's single global invariant: a
/// conjunction of universal assertions and assertions gated on handshake
/// phase (the "system-wide program counter" built from the handshake ghost
/// state). The explorer evaluates the whole suite in every reachable state;
/// this is the model-checking analogue of the paper's induction over _⇒_.
///
/// Individual checks are public so unit tests can exercise their gating and
/// so ablation experiments can report which invariant breaks first.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_INVARIANTSUITE_H
#define TSOGC_INVARIANTS_INVARIANTSUITE_H

#include "invariants/GcPredicates.h"
#include "invariants/Violation.h"

#include <optional>
#include <string>

namespace tsogc {

class InvariantSuite {
public:
  explicit InvariantSuite(const GcModel &M) : M(M) {}

  /// Evaluate the full conjunction; first failure wins.
  std::optional<Violation> check(const GcSystemState &S) const;

  /// The headline theorem: every reference reachable from a mutator root
  /// has an object in the heap (valid_refs over mutator roots).
  std::optional<Violation> checkSafetyHeadline(const GcSystemState &S) const;

  /// valid_refs_inv over the extended root set (adds TSO-buffer roots, the
  /// deletion-barrier ghost root, work-lists, scan scratch).
  std::optional<Violation> checkValidRefs(const GcSystemState &S) const;

  /// Strong tricolor: no committed heap edge from a black object to a white
  /// object (§2.1). Ungated: the algorithm maintains it at every state.
  std::optional<Violation> checkStrongTricolor(const GcSystemState &S) const;

  /// Weak tricolor: every white object referenced by a black object is
  /// grey-protected (Figure 1). Implied by the strong invariant.
  std::optional<Violation> checkWeakTricolor(const GcSystemState &S) const;

  /// valid_W_inv: work-list entries (and honorary greys of processes not
  /// holding the TSO lock) are marked on the heap; pending flag stores use
  /// fM; work-lists are pairwise disjoint.
  std::optional<Violation> checkValidW(const GcSystemState &S) const;

  /// hp_Idle: while the collector phase is Idle, the heap is uniformly
  /// flag == fA (black before the flip, white after) and there are no greys.
  std::optional<Violation> checkIdleUniform(const GcSystemState &S) const;

  /// hp_IdleInit: in the H2 window there are no marked objects and no greys.
  /// hp_InitMark: in the H3 window there are no black references; in the H4
  /// window none until the fA write commits.
  std::optional<Violation> checkNoBlackWindows(const GcSystemState &S) const;

  /// marked_insertions for every mutator past the phase-Init handshake
  /// (within the current cycle).
  std::optional<Violation> checkMarkedInsertions(const GcSystemState &S) const;

  /// marked_deletions for all mutators once the root-marking round began.
  std::optional<Violation> checkMarkedDeletions(const GcSystemState &S) const;

  /// reachable_snapshot_inv: for each mutator that completed root marking,
  /// everything it can reach is black or grey-protected.
  std::optional<Violation>
  checkReachableSnapshot(const GcSystemState &S) const;

  /// Grey = ∅ during sweep (the mark-termination conclusion, Figure 10).
  std::optional<Violation> checkSweepNoGrey(const GcSystemState &S) const;

  /// The paper's at-p-ℓ assertion for Fig 2 line 42: when the collector is
  /// *at* the free instruction, the target is white and unreachable — the
  /// strongest statement of sweep correctness, checked at the exact
  /// control location instead of after the fact.
  std::optional<Violation> checkFreePrecondition(const GcSystemState &S) const;

  /// The handshake-phase relation: each mutator has completed the current
  /// round or its predecessor, consistently with its pending bit.
  std::optional<Violation> checkHandshakeRelation(const GcSystemState &S) const;

  /// Mutator control-state views are exactly as stale as their last
  /// completed handshake allows (Figure 3).
  std::optional<Violation> checkMutatorViews(const GcSystemState &S) const;

private:
  const GcModel &M;
};

} // namespace tsogc

#endif // TSOGC_INVARIANTS_INVARIANTSUITE_H
