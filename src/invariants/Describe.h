//===- invariants/Describe.h - Human-readable state rendering ------------===//
///
/// \file
/// Pretty-printing of global model states for counterexample traces and the
/// example programs.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_DESCRIBE_H
#define TSOGC_INVARIANTS_DESCRIBE_H

#include "gcmodel/GcModel.h"
#include "observe/Snapshot.h"

#include <string>

namespace tsogc {

/// Multi-line rendering of a global state: collector control state and W,
/// per-mutator roots/work-list/views, heap contents, store buffers, lock,
/// and handshake registers.
std::string describeState(const GcModel &M, const GcSystemState &S);

/// The runtime counterpart, used by the invariant observatory's violation
/// dumps: collector control line, per-mutator roots and private worklists,
/// collector worklist and shared stripes, then the heap. Heap rendering is
/// capped at \p MaxObjects (the runtime slab holds thousands); \p FocusRef,
/// when not RtSnapNull, is always rendered along with every object whose
/// fields reference it, cap or no cap.
std::string describeSnapshot(const observe::RtSnapshot &Snap,
                             uint32_t FocusRef = observe::RtSnapNull,
                             unsigned MaxObjects = 64);

} // namespace tsogc

#endif // TSOGC_INVARIANTS_DESCRIBE_H
