//===- invariants/Describe.h - Human-readable state rendering ------------===//
///
/// \file
/// Pretty-printing of global model states for counterexample traces and the
/// example programs.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_DESCRIBE_H
#define TSOGC_INVARIANTS_DESCRIBE_H

#include "gcmodel/GcModel.h"

#include <string>

namespace tsogc {

/// Multi-line rendering of a global state: collector control state and W,
/// per-mutator roots/work-list/views, heap contents, store buffers, lock,
/// and handshake registers.
std::string describeState(const GcModel &M, const GcSystemState &S);

} // namespace tsogc

#endif // TSOGC_INVARIANTS_DESCRIBE_H
