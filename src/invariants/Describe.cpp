//===- invariants/Describe.cpp ---------------------------------------------===//

#include "invariants/Describe.h"

#include "support/StringUtils.h"

using namespace tsogc;

static std::string refName(Ref R) {
  if (R.isNull())
    return "null";
  return format("r%u", R.index());
}

static std::string refSet(const std::set<Ref> &S) {
  std::vector<std::string> Parts;
  for (Ref R : S)
    Parts.push_back(refName(R));
  return "{" + join(Parts, ",") + "}";
}

std::string tsogc::describeState(const GcModel &M, const GcSystemState &S) {
  const CollectorLocal &C = GcModel::collector(S);
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();

  std::string Out;
  Out += format("gc: phase=%s fM=%d fA=%d W=%s cycle=%u\n",
                gcPhaseName(C.Phase), C.FM ? 1 : 0, C.FA ? 1 : 0,
                refSet(C.W).c_str(), C.CycleCount);

  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Out += format(
        "mut%u: roots=%s Wm=%s view(phase=%s fM=%d fA=%d) done=%s", I,
        refSet(Mu.Roots).c_str(), refSet(Mu.WM).c_str(),
        gcPhaseName(Mu.PhaseLocal), Mu.FMLocal ? 1 : 0, Mu.FALocal ? 1 : 0,
        hsRoundName(Mu.CompletedRound));
    if (!Mu.DeletedRef.isNull())
      Out += " deleted=" + refName(Mu.DeletedRef);
    if (!Mu.MS.GhostHonoraryGrey.isNull())
      Out += " honorary=" + refName(Mu.MS.GhostHonoraryGrey);
    Out += '\n';
  }

  Out += "heap:";
  for (Ref R : H.allocatedRefs()) {
    Out += format(" r%u[%d](", R.index(), H.markFlag(R) ? 1 : 0);
    std::vector<std::string> Fs;
    for (Ref F : H.object(R).Fields)
      Fs.push_back(refName(F));
    Out += join(Fs, ",") + ")";
  }
  Out += format("\nmem: fM=%u fA=%u phase=%s lock=%d round=%s type=%s",
                Sys.Mem.memoryRead(MemLoc::globalVar(GVarFM)).Raw,
                Sys.Mem.memoryRead(MemLoc::globalVar(GVarFA)).Raw,
                gcPhaseName(static_cast<GcPhase>(
                    Sys.Mem.memoryRead(MemLoc::globalVar(GVarPhase))
                        .asByte())),
                Sys.Mem.lockOwner(), hsRoundName(Sys.CurRound),
                hsTypeName(Sys.CurType));
  Out += " pending=[";
  for (bool B : Sys.HsPending)
    Out += B ? '1' : '0';
  Out += format("] sharedW=%s\n", refSet(Sys.SharedW).c_str());

  for (unsigned P = 0; P <= M.config().NumMutators; ++P) {
    const auto &Buf = Sys.Mem.buffer(static_cast<ProcId>(P));
    if (Buf.empty())
      continue;
    Out += format("buf[%s]:", M.procName(P).c_str());
    for (const PendingWrite &W : Buf)
      Out += format(" %s:=%s", W.Loc.toString().c_str(),
                    W.Val.toString().c_str());
    Out += '\n';
  }
  return Out;
}
