//===- invariants/Describe.cpp ---------------------------------------------===//

#include "invariants/Describe.h"

#include "support/StringUtils.h"

using namespace tsogc;

static std::string refName32(uint32_t R) {
  if (R == observe::RtSnapNull)
    return "null";
  return format("r%u", R);
}

static std::string refList32(const std::vector<uint32_t> &Refs) {
  std::vector<std::string> Parts;
  Parts.reserve(Refs.size());
  for (uint32_t R : Refs)
    Parts.push_back(refName32(R));
  return "{" + join(Parts, ",") + "}";
}

static std::string refName(Ref R) {
  if (R.isNull())
    return "null";
  return format("r%u", R.index());
}

static std::string refSet(const std::set<Ref> &S) {
  std::vector<std::string> Parts;
  for (Ref R : S)
    Parts.push_back(refName(R));
  return "{" + join(Parts, ",") + "}";
}

std::string tsogc::describeState(const GcModel &M, const GcSystemState &S) {
  const CollectorLocal &C = GcModel::collector(S);
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();

  std::string Out;
  Out += format("gc: phase=%s fM=%d fA=%d W=%s cycle=%u\n",
                gcPhaseName(C.Phase), C.FM ? 1 : 0, C.FA ? 1 : 0,
                refSet(C.W).c_str(), C.CycleCount);

  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Out += format(
        "mut%u: roots=%s Wm=%s view(phase=%s fM=%d fA=%d) done=%s", I,
        refSet(Mu.Roots).c_str(), refSet(Mu.WM).c_str(),
        gcPhaseName(Mu.PhaseLocal), Mu.FMLocal ? 1 : 0, Mu.FALocal ? 1 : 0,
        hsRoundName(Mu.CompletedRound));
    if (!Mu.DeletedRef.isNull())
      Out += " deleted=" + refName(Mu.DeletedRef);
    if (!Mu.MS.GhostHonoraryGrey.isNull())
      Out += " honorary=" + refName(Mu.MS.GhostHonoraryGrey);
    Out += '\n';
  }

  Out += "heap:";
  for (Ref R : H.allocatedRefs()) {
    Out += format(" r%u[%d](", R.index(), H.markFlag(R) ? 1 : 0);
    std::vector<std::string> Fs;
    for (Ref F : H.object(R).Fields)
      Fs.push_back(refName(F));
    Out += join(Fs, ",") + ")";
  }
  Out += format("\nmem: fM=%u fA=%u phase=%s lock=%d round=%s type=%s",
                Sys.Mem.memoryRead(MemLoc::globalVar(GVarFM)).Raw,
                Sys.Mem.memoryRead(MemLoc::globalVar(GVarFA)).Raw,
                gcPhaseName(static_cast<GcPhase>(
                    Sys.Mem.memoryRead(MemLoc::globalVar(GVarPhase))
                        .asByte())),
                Sys.Mem.lockOwner(), hsRoundName(Sys.CurRound),
                hsTypeName(Sys.CurType));
  Out += " pending=[";
  for (bool B : Sys.HsPending)
    Out += B ? '1' : '0';
  Out += format("] sharedW=%s\n", refSet(Sys.SharedW).c_str());

  for (unsigned P = 0; P <= M.config().NumMutators; ++P) {
    const auto &Buf = Sys.Mem.buffer(static_cast<ProcId>(P));
    if (Buf.empty())
      continue;
    Out += format("buf[%s]:", M.procName(P).c_str());
    for (const PendingWrite &W : Buf)
      Out += format(" %s:=%s", W.Loc.toString().c_str(),
                    W.Val.toString().c_str());
    Out += '\n';
  }
  return Out;
}

std::string tsogc::describeSnapshot(const observe::RtSnapshot &Snap,
                                    uint32_t FocusRef, unsigned MaxObjects) {
  static const char *PhaseNames[] = {"Idle", "Init", "Mark", "Sweep"};
  const char *Phase =
      Snap.Phase < 4 ? PhaseNames[Snap.Phase] : "?";

  std::string Out;
  Out += format("snapshot @ %s: cycle=%llu phase=%s fM=%d fA=%d%s\n",
                observe::rtHsBoundaryName(Snap.Boundary),
                static_cast<unsigned long long>(Snap.Cycle), Phase,
                Snap.FM ? 1 : 0, Snap.FA ? 1 : 0,
                Snap.InsertionElide ? " elide-insertion" : "");

  for (const observe::RtSnapshotMutator &Mu : Snap.Mutators)
    Out += format("mut%u: roots=%s Wm=%s\n", Mu.Index,
                  refList32(Mu.Roots).c_str(),
                  refList32(Mu.Worklist).c_str());
  Out += format("gc W=%s\n", refList32(Snap.CollectorWorklist).c_str());
  for (unsigned I = 0; I < Snap.SharedStripes.size(); ++I)
    if (!Snap.SharedStripes[I].empty())
      Out += format("shared W[%u]=%s\n", I,
                    refList32(Snap.SharedStripes[I]).c_str());

  // Render up to MaxObjects allocated objects; always include the focus ref
  // and every object referencing it, so the offending neighborhood survives
  // the cap.
  auto MentionsFocus = [&](uint32_t R) {
    if (FocusRef == observe::RtSnapNull)
      return false;
    if (R == FocusRef)
      return true;
    for (uint32_t F = 0; F < Snap.NumFields; ++F)
      if (Snap.fieldAt(R, F) == FocusRef)
        return true;
    return false;
  };
  Out += "heap:";
  unsigned Shown = 0, Skipped = 0;
  for (uint32_t R = 0; R < Snap.Capacity; ++R) {
    if (!Snap.Allocated[R])
      continue;
    if (Shown >= MaxObjects && !MentionsFocus(R)) {
      ++Skipped;
      continue;
    }
    ++Shown;
    Out += format(" r%u[%d](", R, Snap.Marks[R] ? 1 : 0);
    std::vector<std::string> Fs;
    for (uint32_t F = 0; F < Snap.NumFields; ++F)
      Fs.push_back(refName32(Snap.fieldAt(R, F)));
    Out += join(Fs, ",") + ")";
  }
  if (Skipped)
    Out += format(" ... (%u more)", Skipped);
  Out += '\n';
  return Out;
}
