//===- invariants/RtAdapter.cpp --------------------------------------------===//

#include "invariants/RtAdapter.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace tsogc;
using namespace tsogc::observe;

namespace {

std::optional<Violation> fail(const char *Name, std::string Detail) {
  return Violation{Name, std::move(Detail)};
}

/// Runtime refs live in the same fixed universe as the snapshot's slab
/// (every alloc() result is a slab index); anything else is corruption the
/// lift refuses to paper over.
Ref liftRef(uint32_t V, uint32_t Capacity) {
  if (V == RtSnapNull)
    return Ref::null();
  TSOGC_CHECK(V < Capacity, "snapshot reference outside the slab universe");
  return Ref(static_cast<uint16_t>(V));
}

bool isMarked(const RtAbstractState &A, Ref R) {
  return A.H.isValid(R) && A.H.markFlag(R) == A.FM;
}

/// The grey-protected set, computed once: a ref is protected iff it is grey
/// or white and reachable from some grey via a chain of white objects
/// (Figure 1). One forward BFS from the greys replaces the model's per-ref
/// isGreyProtected search — snapshots quantify over the whole heap, so the
/// closure pays for itself immediately.
std::vector<uint8_t> greyProtectedSet(const RtAbstractState &A) {
  std::vector<uint8_t> Prot(A.H.numRefs(), 0);
  std::vector<Ref> Work;
  for (Ref G : A.Greys) {
    if (G.isNull() || Prot[G.index()])
      continue;
    Prot[G.index()] = 1;
    if (A.H.isValid(G))
      Work.push_back(G);
  }
  while (!Work.empty()) {
    Ref R = Work.back();
    Work.pop_back();
    for (Ref F : A.H.object(R).Fields) {
      if (F.isNull() || !A.H.isValid(F) || Prot[F.index()])
        continue;
      if (A.H.markFlag(F) == A.FM)
        continue; // Chains extend through white objects only.
      Prot[F.index()] = 1;
      Work.push_back(F);
    }
  }
  return Prot;
}

} // namespace

RtAbstractState tsogc::liftSnapshot(const RtSnapshot &Snap) {
  TSOGC_CHECK(Snap.Capacity > 0 && Snap.Capacity <= 0xFFFE,
              "snapshot capacity exceeds the model Ref universe");
  RtAbstractState A;
  A.H = Heap(Snap.Capacity, Snap.NumFields);
  A.FM = Snap.FM;
  A.FA = Snap.FA;
  A.Phase = Snap.Phase;
  A.Boundary = Snap.Boundary;
  A.Cycle = Snap.Cycle;
  A.InsertionElide = Snap.InsertionElide;

  for (uint32_t R = 0; R < Snap.Capacity; ++R) {
    if (!Snap.Allocated[R])
      continue;
    Ref MR(static_cast<uint16_t>(R));
    A.H.allocAt(MR, Snap.Marks[R] != 0);
    for (uint32_t F = 0; F < Snap.NumFields; ++F)
      A.H.setField(MR, F, liftRef(Snap.fieldAt(R, F), Snap.Capacity));
  }

  auto LiftList = [&](const std::vector<uint32_t> &In, std::string Name) {
    std::vector<Ref> Out;
    Out.reserve(In.size());
    for (uint32_t V : In)
      Out.push_back(liftRef(V, Snap.Capacity));
    A.Greys.insert(A.Greys.end(), Out.begin(), Out.end());
    A.Worklists.push_back(std::move(Out));
    A.WorklistNames.push_back(std::move(Name));
  };

  for (const RtSnapshotMutator &Mu : Snap.Mutators) {
    for (uint32_t V : Mu.Roots)
      A.Roots.push_back(liftRef(V, Snap.Capacity));
    LiftList(Mu.Worklist, format("W_m%u", Mu.Index));
  }
  LiftList(Snap.CollectorWorklist, "gc W");
  for (unsigned I = 0; I < Snap.SharedStripes.size(); ++I)
    LiftList(Snap.SharedStripes[I], format("shared W[%u]", I));
  return A;
}

std::optional<Violation> tsogc::rtCheckValidRefs(const RtAbstractState &A) {
  const Heap &H = A.H;
  for (Ref R : A.Roots)
    if (!R.isNull() && !H.isValid(R))
      return fail("safety-headline",
                  format("mutator root r%u has no object", R.index()));
  for (Ref B : H.allocatedRefs())
    for (Ref F : H.object(B).Fields)
      if (!F.isNull() && !H.isValid(F))
        return fail("valid-refs",
                    format("field of r%u references freed r%u", B.index(),
                           F.index()));
  for (unsigned L = 0; L < A.Worklists.size(); ++L)
    for (Ref R : A.Worklists[L])
      if (!H.isValid(R))
        return fail("valid-refs",
                    format("%s entry r%u has no object",
                           A.WorklistNames[L].c_str(), R.index()));
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckValidW(const RtAbstractState &A,
                                              bool RequireMarked) {
  if (RequireMarked)
    for (unsigned L = 0; L < A.Worklists.size(); ++L)
      for (Ref R : A.Worklists[L])
        if (!isMarked(A, R))
          return fail("valid-W",
                      format("%s entry r%u is not marked",
                             A.WorklistNames[L].c_str(), R.index()));

  // Pairwise disjoint: the intrusive WorkNext chain gives every object at
  // most one successor, and the mark CAS admits one publisher — a duplicate
  // means a splice or steal tore a chain.
  std::vector<int> Owner(A.H.numRefs(), -1);
  for (unsigned L = 0; L < A.Worklists.size(); ++L)
    for (Ref R : A.Worklists[L]) {
      if (R.isNull())
        continue;
      if (Owner[R.index()] >= 0)
        return fail("valid-W",
                    format("r%u appears on both %s and %s", R.index(),
                           A.WorklistNames[Owner[R.index()]].c_str(),
                           A.WorklistNames[L].c_str()));
      Owner[R.index()] = static_cast<int>(L);
    }
  return std::nullopt;
}

std::optional<Violation>
tsogc::rtCheckStrongTricolor(const RtAbstractState &A) {
  ColorView CV(A.H, A.FM, A.Greys);
  for (Ref B : A.H.allocatedRefs()) {
    if (!CV.isBlack(B))
      continue;
    for (Ref F : A.H.object(B).Fields)
      if (!F.isNull() && CV.isWhite(F) && !CV.isGrey(F))
        return fail("strong-tricolor",
                    format("black r%u points to white r%u", B.index(),
                           F.index()));
  }
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckWeakTricolor(const RtAbstractState &A) {
  ColorView CV(A.H, A.FM, A.Greys);
  std::vector<uint8_t> Prot = greyProtectedSet(A);
  for (Ref B : A.H.allocatedRefs()) {
    if (!CV.isBlack(B))
      continue;
    for (Ref F : A.H.object(B).Fields) {
      if (F.isNull() || !CV.isWhite(F) || CV.isGrey(F))
        continue;
      if (!Prot[F.index()])
        return fail("weak-tricolor",
                    format("white r%u (referenced by black r%u) is not "
                           "grey-protected",
                           F.index(), B.index()));
    }
  }
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckNoMarked(const RtAbstractState &A) {
  for (Ref R : A.H.allocatedRefs())
    if (A.H.markFlag(R) == A.FM)
      return fail("no-black-window",
                  format("marked r%u exists during H2", R.index()));
  for (Ref G : A.Greys)
    if (!G.isNull())
      return fail("no-black-window",
                  format("grey r%u exists during H2", G.index()));
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckNoBlack(const RtAbstractState &A) {
  ColorView CV(A.H, A.FM, A.Greys);
  for (Ref R : A.H.allocatedRefs())
    if (CV.isBlack(R))
      return fail("no-black-window",
                  format("black r%u exists during H3 (hp_InitMark)",
                         R.index()));
  return std::nullopt;
}

std::optional<Violation>
tsogc::rtCheckReachableSnapshot(const RtAbstractState &A) {
  std::vector<uint8_t> Prot = greyProtectedSet(A);
  for (Ref R : A.H.reachableFrom(A.Roots)) {
    if (!A.H.isValid(R))
      return fail("reachable-snapshot",
                  format("a mutator reaches dangling r%u", R.index()));
    if (A.H.markFlag(R) != A.FM && !Prot[R.index()])
      return fail("reachable-snapshot",
                  format("a mutator reaches white unprotected r%u",
                         R.index()));
  }
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckSweepNoGrey(const RtAbstractState &A) {
  for (unsigned L = 0; L < A.Worklists.size(); ++L)
    if (!A.Worklists[L].empty())
      return fail("sweep-no-grey",
                  format("%s holds r%u during sweep",
                         A.WorklistNames[L].c_str(),
                         A.Worklists[L].front().index()));
  return std::nullopt;
}

std::optional<Violation>
tsogc::rtCheckFreePrecondition(const RtAbstractState &A) {
  // Everything white at SweepBegin is about to be freed; none of it may be
  // reachable (the at-p-ℓ assertion of Fig 2 line 42, hoisted to the start
  // of the sweep — the sweep takes no further locks and frees exactly the
  // white set, so checking all of it here is the same statement).
  for (Ref R : A.H.reachableFrom(A.Roots)) {
    if (!A.H.isValid(R))
      continue; // valid-refs reports dangling separately.
    if (A.H.markFlag(R) != A.FM)
      return fail("free-precondition",
                  format("sweep is about to free reachable white r%u",
                         R.index()));
  }
  return std::nullopt;
}

std::optional<Violation> tsogc::rtCheckIdleUniform(const RtAbstractState &A) {
  for (Ref R : A.H.allocatedRefs())
    if (A.H.markFlag(R) != A.FA)
      return fail("idle-uniform",
                  format("r%u breaks heap uniformity during Idle",
                         R.index()));
  for (Ref G : A.Greys)
    if (!G.isNull())
      return fail("idle-uniform",
                  format("grey r%u exists during Idle", G.index()));
  return std::nullopt;
}

std::optional<Violation> tsogc::checkSnapshot(const RtAbstractState &A) {
  using B = RtHsBoundary;
  // The marked-entries half of valid-W holds from the moment worklists can
  // first be non-empty in a cycle (H3 onwards; the H1/H2/CycleEnd windows
  // require *empty* lists via their own checks). Audit/Stw snapshots can
  // land in any phase, so gate on the phase instead.
  bool RequireMarked = false;
  switch (A.Boundary) {
  case B::H3PhaseInit:
  case B::H4PhaseMark:
  case B::H5GetRoots:
  case B::H6GetWork:
  case B::SweepBegin:
    RequireMarked = true;
    break;
  case B::Audit:
  case B::Stw:
    RequireMarked = A.Phase == 1 || A.Phase == 2; // Init or Mark.
    break;
  default:
    break;
  }

  if (auto V = rtCheckValidRefs(A))
    return V;
  if (auto V = rtCheckValidW(A, RequireMarked))
    return V;

  switch (A.Boundary) {
  case B::H1Idle:
  case B::CycleEnd:
    return rtCheckIdleUniform(A);
  case B::H2FlipFM:
    return rtCheckNoMarked(A);
  case B::H3PhaseInit:
    return rtCheckNoBlack(A);
  case B::H4PhaseMark:
    return A.InsertionElide ? rtCheckWeakTricolor(A)
                            : rtCheckStrongTricolor(A);
  case B::H5GetRoots:
  case B::H6GetWork:
    if (auto V = A.InsertionElide ? rtCheckWeakTricolor(A)
                                  : rtCheckStrongTricolor(A))
      return V;
    return rtCheckReachableSnapshot(A);
  case B::SweepBegin:
    if (auto V = rtCheckSweepNoGrey(A))
      return V;
    return rtCheckFreePrecondition(A);
  case B::Audit:
  case B::Stw:
    return std::nullopt; // Structural checks only: any phase is possible.
  }
  return std::nullopt;
}

RtAuditCounts tsogc::rtAudit(const RtAbstractState &A) {
  RtAuditCounts C;
  const Heap &H = A.H;
  std::vector<uint8_t> Seen(H.numRefs(), 0);
  std::vector<Ref> Stack;
  auto Visit = [&](Ref R, bool IsRoot) {
    if (R.isNull())
      return;
    if (!H.isValid(R)) {
      (IsRoot ? C.DanglingRoots : C.DanglingFields) += 1;
      return;
    }
    if (!Seen[R.index()]) {
      Seen[R.index()] = 1;
      Stack.push_back(R);
    }
  };
  for (Ref R : A.Roots)
    Visit(R, /*IsRoot=*/true);
  while (!Stack.empty()) {
    Ref R = Stack.back();
    Stack.pop_back();
    ++C.Reachable;
    for (Ref F : H.object(R).Fields)
      Visit(F, /*IsRoot=*/false);
  }
  for (Ref R : H.allocatedRefs())
    if (!Seen[R.index()])
      ++C.Unreachable;

  const bool CheckMarked = A.Phase == 1 || A.Phase == 2; // Init or Mark.
  for (const std::vector<Ref> &L : A.Worklists)
    for (Ref R : L) {
      ++C.WorklistEntries;
      if (!H.isValid(R))
        ++C.DanglingWorklist;
      else if (CheckMarked && H.markFlag(R) != A.FM)
        ++C.UnmarkedWorklist;
    }
  return C;
}
