//===- invariants/RtAdapter.h - §3.2 invariants over runtime snapshots ----===//
///
/// \file
/// The bridge that lets one invariant suite police both worlds: it lifts an
/// observe::RtSnapshot (a quiescent copy of the real collector's heap,
/// control variables, roots and worklists) into the same abstract domain the
/// model checker explores — a heap/Heap.h partial map plus a ColorView — and
/// re-evaluates the §3.2 suite over it.
///
/// Which checks apply depends on where the snapshot was taken. The model
/// gates assertions on the handshake ghost round; here the snapshot's
/// RtHsBoundary plays that role. The TSO-buffer components of the model
/// invariants (marked_insertions / marked_deletions over pending writes)
/// have no snapshot counterpart by construction: parked mutators sit between
/// Figure 6 operations and their acknowledgement fences drained the store
/// buffers, so those clauses reduce to the committed-heap checks below
/// (strong-tricolor / reachable-snapshot). Violation names are shared with
/// the model suite verbatim so a hardware detection can be matched against
/// the explorer's prediction.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_RTADAPTER_H
#define TSOGC_INVARIANTS_RTADAPTER_H

#include "heap/Color.h"
#include "invariants/Violation.h"
#include "observe/Snapshot.h"

#include <optional>
#include <string>
#include <vector>

namespace tsogc {

/// A runtime snapshot lifted into the model's abstract domain. Worklists
/// keeps per-list identity (for disjointness and diagnostics); Greys is
/// their union, which is exactly the model's grey set — the runtime has no
/// honorary-grey window at a boundary because nobody is mid-CAS while the
/// world is quiescent.
struct RtAbstractState {
  Heap H;
  bool FM = false;
  bool FA = false;
  uint8_t Phase = 0; ///< Numeric RtPhase: 0 Idle, 1 Init, 2 Mark, 3 Sweep.
  observe::RtHsBoundary Boundary = observe::RtHsBoundary::Audit;
  uint64_t Cycle = 0;
  bool InsertionElide = false;

  /// Union of all mutator shadow-stack roots (the roots of the headline
  /// safety property).
  std::vector<Ref> Roots;

  std::vector<std::vector<Ref>> Worklists;
  std::vector<std::string> WorklistNames;
  std::vector<Ref> Greys;

  RtAbstractState() : H(1, 1) {}
};

/// Translate a snapshot. Requires Snap.Capacity <= 0xFFFE (the model Ref
/// universe is uint16_t-indexed); the default runtime heap fits.
RtAbstractState liftSnapshot(const observe::RtSnapshot &Snap);

/// Evaluate the boundary-gated suite; first failure wins. Every boundary
/// checks valid-refs and valid-W; the rest follows the model's gating:
///
///   H1Idle / CycleEnd   idle-uniform (heap uniformly fA-colored, no greys)
///   H2FlipFM            no marked objects, no greys      (hp_IdleInit)
///   H3PhaseInit         no black objects                 (hp_InitMark)
///   H4..H6              strong-tricolor (weak under insertion elision)
///   H5 / H6             reachable-snapshot
///   SweepBegin          sweep-no-grey, free-precondition
///   Audit / Stw         structural checks only (any phase is possible)
std::optional<Violation> checkSnapshot(const RtAbstractState &A);

//===-- Individual checks (public for unit tests and ablation reports) ----===//

/// Mutator roots are backed by objects ("safety-headline"); so are all heap
/// fields and worklist entries ("valid-refs").
std::optional<Violation> rtCheckValidRefs(const RtAbstractState &A);

/// Worklists are pairwise disjoint; when \p RequireMarked, every entry is
/// marked with the current sense (it was published by a completed CAS).
std::optional<Violation> rtCheckValidW(const RtAbstractState &A,
                                       bool RequireMarked);

/// No heap edge from a black object to a white one.
std::optional<Violation> rtCheckStrongTricolor(const RtAbstractState &A);

/// Every white object referenced by a black one is grey-protected.
std::optional<Violation> rtCheckWeakTricolor(const RtAbstractState &A);

/// H2 window: the flip turned the heap white — nothing marked, nothing grey.
std::optional<Violation> rtCheckNoMarked(const RtAbstractState &A);

/// H3 window: marked implies grey (no blacks before fA flips).
std::optional<Violation> rtCheckNoBlack(const RtAbstractState &A);

/// Everything reachable from the (already marked) roots is black or
/// grey-protected — the snapshot property that makes black mutators safe.
std::optional<Violation> rtCheckReachableSnapshot(const RtAbstractState &A);

/// Mark termination: no greys anywhere once the sweep begins.
std::optional<Violation> rtCheckSweepNoGrey(const RtAbstractState &A);

/// Nothing the sweep is about to free (white at SweepBegin) is reachable.
std::optional<Violation> rtCheckFreePrecondition(const RtAbstractState &A);

/// Idle heap is uniformly colored fA with no greys.
std::optional<Violation> rtCheckIdleUniform(const RtAbstractState &A);

//===-- Audit counts ------------------------------------------------------===//

/// Structural audit over a lifted snapshot; GcRuntime::auditHeap reports
/// these so the audit and the observatory share one translation and cannot
/// drift. Dangling* count per-edge (a root and a field referencing the same
/// dead object both count); Reachable counts objects once.
struct RtAuditCounts {
  uint64_t Reachable = 0;
  uint64_t Unreachable = 0;
  uint64_t DanglingRoots = 0;
  uint64_t DanglingFields = 0;
  uint64_t WorklistEntries = 0;
  uint64_t DanglingWorklist = 0;
  /// Entries not marked with the current sense; only counted while the
  /// snapshot phase is Init or Mark (outside a cycle stale-sense residue
  /// is legal only on an empty list, which contributes nothing).
  uint64_t UnmarkedWorklist = 0;
};

RtAuditCounts rtAudit(const RtAbstractState &A);

} // namespace tsogc

#endif // TSOGC_INVARIANTS_RTADAPTER_H
