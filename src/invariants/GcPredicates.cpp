//===- invariants/GcPredicates.cpp -----------------------------------------===//

#include "invariants/GcPredicates.h"

using namespace tsogc;

std::vector<Ref> tsogc::greyRefs(const GcModel &M, const GcSystemState &S) {
  std::vector<Ref> Out;
  const CollectorLocal &C = GcModel::collector(S);
  Out.insert(Out.end(), C.W.begin(), C.W.end());
  if (!C.MS.GhostHonoraryGrey.isNull())
    Out.push_back(C.MS.GhostHonoraryGrey);
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Out.insert(Out.end(), Mu.WM.begin(), Mu.WM.end());
    if (!Mu.MS.GhostHonoraryGrey.isNull())
      Out.push_back(Mu.MS.GhostHonoraryGrey);
  }
  const SysLocal &Sys = M.sysState(S);
  Out.insert(Out.end(), Sys.SharedW.begin(), Sys.SharedW.end());
  return Out;
}

std::vector<Ref> tsogc::mutatorRoots(const GcModel &M,
                                     const GcSystemState &S) {
  std::vector<Ref> Out;
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Out.insert(Out.end(), Mu.Roots.begin(), Mu.Roots.end());
  }
  return Out;
}

std::vector<Ref> tsogc::extendedRoots(const GcModel &M,
                                      const GcSystemState &S) {
  std::vector<Ref> Out = mutatorRoots(M, S);
  auto Push = [&Out](Ref R) {
    if (!R.isNull())
      Out.push_back(R);
  };
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Push(Mu.DeletedRef);
    Push(Mu.MS.Target);
    for (Ref R : Mu.RootMarkQueue)
      Push(R);
    for (Ref R : pendingInsertions(M, S, mutatorPid(I)))
      Push(R);
  }
  const CollectorLocal &C = GcModel::collector(S);
  Push(C.Src);
  Push(C.MS.Target);
  std::vector<Ref> Greys = greyRefs(M, S);
  Out.insert(Out.end(), Greys.begin(), Greys.end());
  return Out;
}

std::vector<Ref> tsogc::pendingInsertions(const GcModel &M,
                                          const GcSystemState &S, ProcId P) {
  std::vector<Ref> Out;
  const SysLocal &Sys = M.sysState(S);
  for (const PendingWrite &W : Sys.Mem.buffer(P)) {
    if (W.Loc.Kind != MemLocKind::ObjField)
      continue;
    Ref R = W.Val.asRef();
    if (!R.isNull())
      Out.push_back(R);
  }
  return Out;
}

std::vector<Ref> tsogc::pendingDeletions(const GcModel &M,
                                         const GcSystemState &S, ProcId P) {
  std::vector<Ref> Out;
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();
  // Shadow the fields this buffer touches, in buffer (program) order.
  std::vector<std::pair<MemLoc, Ref>> Shadow;
  auto Lookup = [&](MemLoc Loc) -> Ref {
    for (auto It = Shadow.rbegin(); It != Shadow.rend(); ++It)
      if (It->first == Loc)
        return It->second;
    if (H.isValid(Loc.R))
      return H.field(Loc.R, Loc.Field);
    return Ref::null();
  };
  for (const PendingWrite &W : Sys.Mem.buffer(P)) {
    if (W.Loc.Kind != MemLocKind::ObjField)
      continue;
    Ref Deleted = Lookup(W.Loc);
    if (!Deleted.isNull())
      Out.push_back(Deleted);
    Shadow.emplace_back(W.Loc, W.Val.asRef());
  }
  return Out;
}

ColorView tsogc::colorView(const GcModel &M, const GcSystemState &S) {
  const SysLocal &Sys = M.sysState(S);
  const CollectorLocal &C = GcModel::collector(S);
  return ColorView(Sys.Mem.heap(), C.FM, greyRefs(M, S));
}
