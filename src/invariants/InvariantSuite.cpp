//===- invariants/InvariantSuite.cpp ---------------------------------------===//

#include "invariants/InvariantSuite.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace tsogc;

namespace {

std::optional<Violation> fail(const char *Name, std::string Detail) {
  return Violation{Name, std::move(Detail)};
}

bool isMarked(const Heap &H, Ref R, bool FM) {
  return H.isValid(R) && H.markFlag(R) == FM;
}

} // namespace

std::optional<Violation>
InvariantSuite::checkSafetyHeadline(const GcSystemState &S) const {
  const Heap &H = M.sysState(S).Mem.heap();
  for (Ref R : H.reachableFrom(mutatorRoots(M, S)))
    if (!H.isValid(R))
      return fail("safety-headline",
                  format("reachable reference r%u has no object", R.index()));
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkValidRefs(const GcSystemState &S) const {
  const Heap &H = M.sysState(S).Mem.heap();
  for (Ref R : H.reachableFrom(extendedRoots(M, S)))
    if (!H.isValid(R))
      return fail("valid-refs",
                  format("extended-reachable r%u has no object", R.index()));
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkStrongTricolor(const GcSystemState &S) const {
  // Under the §4 insertion-elision variant, black-to-white edges are
  // permitted by design once a mutator's roots are marked; safety then
  // rests on the weak invariant (the white target stays grey-protected).
  if (M.config().InsertionBarrierElideAfterRoots)
    return std::nullopt;
  ColorView CV = colorView(M, S);
  const Heap &H = CV.heap();
  for (Ref B : H.allocatedRefs()) {
    if (!CV.isBlack(B))
      continue;
    for (Ref F : H.object(B).Fields)
      if (!F.isNull() && CV.isWhite(F) && !CV.isGrey(F))
        return fail("strong-tricolor",
                    format("black r%u points to white r%u", B.index(),
                           F.index()));
  }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkWeakTricolor(const GcSystemState &S) const {
  ColorView CV = colorView(M, S);
  const Heap &H = CV.heap();
  for (Ref B : H.allocatedRefs()) {
    if (!CV.isBlack(B))
      continue;
    for (Ref F : H.object(B).Fields) {
      if (F.isNull() || !CV.isWhite(F) || CV.isGrey(F))
        continue;
      if (!CV.isGreyProtected(F))
        return fail("weak-tricolor",
                    format("white r%u (referenced by black r%u) is not "
                           "grey-protected",
                           F.index(), B.index()));
    }
  }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkValidW(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  const Heap &H = Sys.Mem.heap();
  const CollectorLocal &C = GcModel::collector(S);
  const bool FM = C.FM;

  // Gather (owner, refs) work-lists; owner NoOwner for the staging list.
  struct Entry {
    int Owner;
    std::vector<Ref> Refs;
    const char *What;
  };
  std::vector<Entry> Lists;
  Lists.push_back({CollectorPid,
                   std::vector<Ref>(C.W.begin(), C.W.end()), "gc W"});
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    Lists.push_back({static_cast<int>(mutatorPid(I)),
                     std::vector<Ref>(Mu.WM.begin(), Mu.WM.end()), "W_m"});
  }
  Lists.push_back({-1, std::vector<Ref>(Sys.SharedW.begin(),
                                        Sys.SharedW.end()),
                   "shared W"});

  // Work-list entries are marked on the heap (they were published by a
  // completed CAS).
  for (const Entry &E : Lists)
    for (Ref R : E.Refs)
      if (!isMarked(H, R, FM))
        return fail("valid-W", format("%s entry r%u is not marked", E.What,
                                      R.index()));

  // Honorary greys are marked unless their owner still holds the TSO lock
  // (the CAS store may be uncommitted).
  auto CheckGhost = [&](Ref G, ProcId Owner) -> std::optional<Violation> {
    if (G.isNull() || Sys.Mem.lockHeldBy(Owner))
      return std::nullopt;
    if (!isMarked(H, G, FM))
      return fail("valid-W",
                  format("honorary grey r%u (proc %u, lock not held) is "
                         "not marked",
                         G.index(), Owner));
    return std::nullopt;
  };
  if (auto V = CheckGhost(C.MS.GhostHonoraryGrey, CollectorPid))
    return V;
  for (unsigned I = 0; I < M.config().NumMutators; ++I)
    if (auto V = CheckGhost(M.mutator(S, I).MS.GhostHonoraryGrey,
                            mutatorPid(I)))
      return V;

  // Pending flag stores use fM.
  for (unsigned P = 0; P <= M.config().NumMutators; ++P)
    for (const PendingWrite &W : Sys.Mem.buffer(static_cast<ProcId>(P)))
      if (W.Loc.Kind == MemLocKind::ObjFlag && W.Val.asBool() != FM)
        return fail("valid-W",
                    format("pending mark on r%u uses the wrong sense",
                           W.Loc.R.index()));

  // Work-lists are pairwise disjoint.
  std::vector<Ref> Seen;
  for (const Entry &E : Lists)
    for (Ref R : E.Refs) {
      if (std::find(Seen.begin(), Seen.end(), R) != Seen.end())
        return fail("valid-W",
                    format("r%u appears on two work-lists", R.index()));
      Seen.push_back(R);
    }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkIdleUniform(const GcSystemState &S) const {
  const CollectorLocal &C = GcModel::collector(S);
  if (C.Phase != GcPhase::Idle)
    return std::nullopt;
  const Heap &H = M.sysState(S).Mem.heap();
  for (Ref R : H.allocatedRefs())
    if (H.markFlag(R) != C.FA)
      return fail("idle-uniform",
                  format("r%u breaks heap uniformity during Idle",
                         R.index()));
  if (!greyRefs(M, S).empty())
    return fail("idle-uniform", "grey references exist during Idle");
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkNoBlackWindows(const GcSystemState &S) const {
  const CollectorLocal &C = GcModel::collector(S);
  const SysLocal &Sys = M.sysState(S);
  const HsRound Cur = Sys.CurRound;
  ColorView CV = colorView(M, S);
  const Heap &H = Sys.Mem.heap();

  auto NoBlack = [&](const char *Window) -> std::optional<Violation> {
    for (Ref R : H.allocatedRefs())
      if (CV.isBlack(R))
        return fail("no-black-window",
                    format("black r%u exists during %s", R.index(), Window));
    return std::nullopt;
  };

  if (Cur == HsRound::H2FlipFM) {
    // hp_IdleInit: the flip turned the heap white; nothing is marked and
    // nothing is grey (all barrier views are still Idle).
    for (Ref R : H.allocatedRefs())
      if (H.markFlag(R) == C.FM)
        return fail("no-black-window",
                    format("marked r%u exists during H2", R.index()));
    if (!greyRefs(M, S).empty())
      return fail("no-black-window", "grey references exist during H2");
    return std::nullopt;
  }
  if (Cur == HsRound::H3PhaseInit)
    return NoBlack("H3 (hp_InitMark)");
  if (Cur == HsRound::H4PhaseMark &&
      Sys.Mem.memoryRead(MemLoc::globalVar(GVarFA)).asBool() != C.FA)
    return NoBlack("H4 before the fA store committed");
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkMarkedInsertions(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  // The §4 insertion-elision variant deliberately leaves post-root-marking
  // insertions unmarked.
  if (M.config().InsertionBarrierElideAfterRoots)
    return std::nullopt;
  if (roundOrder(Sys.CurRound) < roundOrder(HsRound::H3PhaseInit))
    return std::nullopt;
  const Heap &H = Sys.Mem.heap();
  const bool FM = GcModel::collector(S).FM;
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    if (roundOrder(Mu.CompletedRound) < roundOrder(HsRound::H3PhaseInit))
      continue;
    for (Ref R : pendingInsertions(M, S, mutatorPid(I)))
      if (!isMarked(H, R, FM))
        return fail("marked-insertions",
                    format("mut%u has a pending insertion of unmarked r%u",
                           I, R.index()));
  }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkMarkedDeletions(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  if (roundOrder(Sys.CurRound) < roundOrder(HsRound::H5GetRoots))
    return std::nullopt;
  const Heap &H = Sys.Mem.heap();
  const bool FM = GcModel::collector(S).FM;
  for (unsigned I = 0; I < M.config().NumMutators; ++I)
    for (Ref R : pendingDeletions(M, S, mutatorPid(I)))
      if (!isMarked(H, R, FM))
        return fail("marked-deletions",
                    format("mut%u is about to overwrite unmarked r%u", I,
                           R.index()));
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkReachableSnapshot(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  const HsRound Cur = Sys.CurRound;
  if (Cur != HsRound::H5GetRoots && Cur != HsRound::H6GetWork)
    return std::nullopt;
  ColorView CV = colorView(M, S);
  const Heap &H = Sys.Mem.heap();
  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    if (Mu.CompletedRound != HsRound::H5GetRoots &&
        Mu.CompletedRound != HsRound::H6GetWork)
      continue;
    // This mutator is black: its roots will not be rescanned. Everything it
    // can reach — including values it holds in flight — must be in the
    // snapshot: black, or white but grey-protected.
    std::vector<Ref> Roots(Mu.Roots.begin(), Mu.Roots.end());
    if (!Mu.DeletedRef.isNull())
      Roots.push_back(Mu.DeletedRef);
    for (Ref R : pendingInsertions(M, S, mutatorPid(I)))
      Roots.push_back(R);
    Roots.insert(Roots.end(), Mu.WM.begin(), Mu.WM.end());
    if (!Mu.MS.GhostHonoraryGrey.isNull())
      Roots.push_back(Mu.MS.GhostHonoraryGrey);
    for (Ref R : H.reachableFrom(Roots)) {
      if (!H.isValid(R))
        return fail("reachable-snapshot",
                    format("mut%u reaches dangling r%u", I, R.index()));
      if (!CV.isBlack(R) && !CV.isGreyProtected(R))
        return fail("reachable-snapshot",
                    format("mut%u reaches white unprotected r%u", I,
                           R.index()));
    }
  }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkSweepNoGrey(const GcSystemState &S) const {
  if (GcModel::collector(S).Phase != GcPhase::Sweep)
    return std::nullopt;
  std::vector<Ref> Greys = greyRefs(M, S);
  if (!Greys.empty())
    return fail("sweep-no-grey",
                format("r%u is grey during sweep", Greys.front().index()));
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkFreePrecondition(const GcSystemState &S) const {
  if (GcModel::collector(S).Phase != GcPhase::Sweep)
    return std::nullopt;
  if (!M.atLabel(S, CollectorPid, "sweep:free"))
    return std::nullopt;
  const CollectorLocal &C = GcModel::collector(S);
  TSOGC_CHECK(!C.SweepRefs.empty(), "at sweep:free with no sweep cursor");
  Ref Target = C.SweepRefs.back();
  ColorView CV = colorView(M, S);
  if (!CV.isWhite(Target))
    return fail("free-precondition",
                format("about to free non-white r%u", Target.index()));
  const Heap &H = M.sysState(S).Mem.heap();
  for (Ref R : H.reachableFrom(extendedRoots(M, S)))
    if (R == Target)
      return fail("free-precondition",
                  format("about to free reachable r%u", Target.index()));
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkHandshakeRelation(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  const HsRound Cur = Sys.CurRound;

  const bool Merged = M.config().MergedInitHandshakes;
  auto IsPrev = [Cur, Merged](HsRound R) {
    switch (Cur) {
    case HsRound::None:
      return R == HsRound::None;
    case HsRound::H1Idle:
      return R == HsRound::None || R == HsRound::H5GetRoots ||
             R == HsRound::H6GetWork;
    case HsRound::H2FlipFM:
      return R == HsRound::H1Idle;
    case HsRound::H3PhaseInit:
      // In the merged-handshake variant H3 directly follows H1.
      return R == HsRound::H2FlipFM || (Merged && R == HsRound::H1Idle);
    case HsRound::H4PhaseMark:
      return R == HsRound::H3PhaseInit;
    case HsRound::H5GetRoots:
      // In the merged variant H5 directly follows H3.
      return R == HsRound::H4PhaseMark ||
             (Merged && R == HsRound::H3PhaseInit);
    case HsRound::H6GetWork:
      return R == HsRound::H5GetRoots || R == HsRound::H6GetWork;
    }
    return false;
  };

  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    if (Sys.HsPending[I]) {
      if (!IsPrev(Mu.CompletedRound))
        return fail("handshake-relation",
                    format("mut%u pending in %s but completed %s", I,
                           hsRoundName(Cur),
                           hsRoundName(Mu.CompletedRound)));
    } else if (Mu.CompletedRound != Cur && !IsPrev(Mu.CompletedRound)) {
      return fail("handshake-relation",
                  format("mut%u idle in %s but completed %s", I,
                         hsRoundName(Cur), hsRoundName(Mu.CompletedRound)));
    }
  }
  return std::nullopt;
}

std::optional<Violation>
InvariantSuite::checkMutatorViews(const GcSystemState &S) const {
  const SysLocal &Sys = M.sysState(S);
  const CollectorLocal &C = GcModel::collector(S);
  const unsigned CurOrd = roundOrder(Sys.CurRound);

  for (unsigned I = 0; I < M.config().NumMutators; ++I) {
    const MutatorLocal &Mu = M.mutator(S, I);
    const unsigned Done = roundOrder(Mu.CompletedRound);

    // While a mutator's pending bit is set it may be anywhere inside the
    // handshake handler, with the view partially refreshed; the exact view
    // relation only holds between handshakes.
    if (Sys.HsPending[I])
      continue;

    // The phase view is a function of the last completed round (Figure 3).
    GcPhase Expected = GcPhase::Idle;
    if (Mu.CompletedRound == HsRound::H3PhaseInit)
      Expected = GcPhase::Init;
    else if (Done >= roundOrder(HsRound::H4PhaseMark))
      Expected = GcPhase::Mark;
    if (Mu.PhaseLocal != Expected)
      return fail("mutator-views",
                  format("mut%u completed %s but sees phase %s", I,
                         hsRoundName(Mu.CompletedRound),
                         gcPhaseName(Mu.PhaseLocal)));

    // fM view: current-cycle H2 onwards sees the new sense.
    if (CurOrd >= roundOrder(HsRound::H2FlipFM) &&
        Done >= roundOrder(HsRound::H2FlipFM) && Mu.FMLocal != C.FM)
      return fail("mutator-views",
                  format("mut%u has a stale fM after H2", I));

    // fA view: the collector changes fA between the H3 and H4 rounds, so
    // inside that window a view may be one flip behind. Outside it — before
    // the change (up to H2) and once the mutator has completed H4 — the
    // view must agree with the collector's fA.
    if (CurOrd <= roundOrder(HsRound::H2FlipFM)) {
      if (Mu.FALocal != C.FA)
        return fail("mutator-views",
                    format("mut%u has a stale fA before H3", I));
    } else if (CurOrd >= roundOrder(HsRound::H4PhaseMark) &&
               Done >= roundOrder(HsRound::H4PhaseMark)) {
      if (Mu.FALocal != C.FA)
        return fail("mutator-views",
                    format("mut%u completed H4 but has a stale fA", I));
    }
  }
  return std::nullopt;
}

std::optional<Violation> InvariantSuite::check(const GcSystemState &S) const {
  if (auto V = checkSafetyHeadline(S))
    return V;
  if (auto V = checkValidRefs(S))
    return V;
  if (auto V = checkStrongTricolor(S))
    return V;
  if (auto V = checkWeakTricolor(S))
    return V;
  if (auto V = checkValidW(S))
    return V;
  if (auto V = checkIdleUniform(S))
    return V;
  if (auto V = checkNoBlackWindows(S))
    return V;
  if (auto V = checkMarkedInsertions(S))
    return V;
  if (auto V = checkMarkedDeletions(S))
    return V;
  if (auto V = checkReachableSnapshot(S))
    return V;
  if (auto V = checkSweepNoGrey(S))
    return V;
  if (auto V = checkFreePrecondition(S))
    return V;
  if (auto V = checkHandshakeRelation(S))
    return V;
  if (auto V = checkMutatorViews(S))
    return V;
  return std::nullopt;
}
