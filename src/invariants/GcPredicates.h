//===- invariants/GcPredicates.h - State observations for §3.2 -----------===//
///
/// \file
/// Helper observations over a global model state: the grey set (work-lists
/// plus honorary greys), the extended root set (mutator roots, the
/// deletion-barrier ghost root, and references pending in TSO store buffers,
/// §3.2 "Collector Predicates"), and per-mutator insertion/deletion views of
/// the store buffers.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_GCPREDICATES_H
#define TSOGC_INVARIANTS_GCPREDICATES_H

#include "gcmodel/GcModel.h"
#include "heap/Color.h"

#include <vector>

namespace tsogc {

/// All grey references: the collector's W, every W_m, the shared staging
/// work-list, and every process's ghost_honorary_grey.
std::vector<Ref> greyRefs(const GcModel &M, const GcSystemState &S);

/// The mutators' roots only (the roots of the headline safety property).
std::vector<Ref> mutatorRoots(const GcModel &M, const GcSystemState &S);

/// Extended roots for the inductive valid-refs invariant: mutator roots,
/// in-flight mark targets and deletion-barrier ghosts, values of pending
/// field writes in TSO buffers ("we treat references in TSO store buffers
/// as extra roots"), the collector's scan scratch, and all greys.
std::vector<Ref> extendedRoots(const GcModel &M, const GcSystemState &S);

/// Values being inserted by writes pending in process \p P's store buffer
/// (writes to object fields).
std::vector<Ref> pendingInsertions(const GcModel &M, const GcSystemState &S,
                                   ProcId P);

/// References that pending writes of process \p P will overwrite: for each
/// buffered field write, the field's value just before that write lands
/// (committed heap value, shadowed through P's earlier buffered writes).
std::vector<Ref> pendingDeletions(const GcModel &M, const GcSystemState &S,
                                  ProcId P);

/// A ColorView for the state: heap from shared memory, mark sense from the
/// collector's authoritative fM, greys from greyRefs.
ColorView colorView(const GcModel &M, const GcSystemState &S);

/// Total order on handshake rounds for gating (None=0 … H6=6).
inline unsigned roundOrder(HsRound R) { return static_cast<unsigned>(R); }

} // namespace tsogc

#endif // TSOGC_INVARIANTS_GCPREDICATES_H
