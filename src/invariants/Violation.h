//===- invariants/Violation.h - A failed invariant ------------------------===//
///
/// \file
/// The one value every checker in this directory returns on failure: which
/// invariant broke and a human-readable account of how. Split out of
/// InvariantSuite.h so checkers that do not need the full model state
/// (notably the runtime-snapshot adapters in RtAdapter.h) can report the
/// same way without depending on gcmodel/.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_INVARIANTS_VIOLATION_H
#define TSOGC_INVARIANTS_VIOLATION_H

#include <string>

namespace tsogc {

/// A failed invariant: which one and why. Names are stable identifiers
/// shared between the model suite and the runtime adapters ("valid-refs",
/// "strong-tricolor", "valid-W", "reachable-snapshot", ...), so an ablation
/// caught on hardware can be matched against the explorer's prediction.
struct Violation {
  std::string Name;
  std::string Detail;
};

} // namespace tsogc

#endif // TSOGC_INVARIANTS_VIOLATION_H
