//===- workload/ledger/Slo.cpp --------------------------------------------===//

#include "workload/ledger/Slo.h"

#include <cstdio>

using namespace tsogc;
using namespace tsogc::ledger;

std::string SloVerdict::summary() const {
  if (Pass)
    return "SLO PASS";
  std::string S = "SLO FAIL: ";
  for (size_t I = 0; I < Violations.size(); ++I) {
    if (I)
      S += "; ";
    S += Violations[I];
  }
  return S;
}

SloVerdict tsogc::ledger::checkSlo(const SloTarget &T,
                                   const LedgerRunResult &R) {
  SloVerdict V;
  auto Fail = [&V](const std::string &Msg) {
    V.Pass = false;
    V.Violations.push_back(Msg);
  };
  auto FailF = [&Fail](const char *Fmt, double Got, double Bound) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), Fmt, Got, Bound);
    Fail(Buf);
  };

  if (R.P50Us > T.MaxP50Us)
    FailF("p50 %.0fus > %.0fus", R.P50Us, T.MaxP50Us);
  if (R.P99Us > T.MaxP99Us)
    FailF("p99 %.0fus > %.0fus", R.P99Us, T.MaxP99Us);
  if (R.MaxUs > T.MaxOpUs)
    FailF("max op %.0fus > %.0fus", R.MaxUs, T.MaxOpUs);
  const double PauseUs = static_cast<double>(R.MaxPauseNs) / 1e3;
  if (PauseUs > T.MaxPauseUs)
    FailF("max mutator pause %.0fus > %.0fus", PauseUs, T.MaxPauseUs);
  const double MinThroughput = T.MinThroughputFraction * R.OfferedOpsPerSec;
  if (R.ThroughputOpsPerSec < MinThroughput)
    FailF("throughput %.0f ops/s < %.0f ops/s", R.ThroughputOpsPerSec,
          MinThroughput);
  if (R.FloatingGarbageRatio > T.MaxFloatingGarbageRatio)
    FailF("floating-garbage ratio %.3f > %.3f", R.FloatingGarbageRatio,
          T.MaxFloatingGarbageRatio);
  if (R.OpsTotal > 0) {
    const double ExhaustedFrac =
        static_cast<double>(R.OpsHeapExhausted) / R.OpsTotal;
    if (ExhaustedFrac > T.MaxHeapExhaustedFraction)
      FailF("heap-exhausted fraction %.4f > %.4f", ExhaustedFrac,
            T.MaxHeapExhaustedFraction);
  } else {
    Fail("no operations completed");
  }
  if (T.RequireConservation && !R.ConservationOk)
    Fail("conservation violated: sum(balances) " +
         std::to_string(R.SumBalances) + " != minted " +
         std::to_string(R.MintedTotal));
  if (T.RequireCleanAudit && !R.AuditClean)
    Fail("shutdown heap audit not clean");
  if (R.InvariantViolations > T.MaxInvariantViolations)
    Fail("invariant violations " + std::to_string(R.InvariantViolations) +
         " > " + std::to_string(T.MaxInvariantViolations));
  return V;
}
