//===- workload/ledger/Ledger.cpp -----------------------------------------===//

#include "workload/ledger/Ledger.h"

#include "support/Assert.h"

#include <thread>

using namespace tsogc;
using namespace tsogc::ledger;
using rt::MutatorContext;
using rt::RtNull;
using rt::RtRef;

const char *tsogc::ledger::opResultName(OpResult R) {
  switch (R) {
  case OpResult::Ok:
    return "ok";
  case OpResult::NoSuchAccount:
    return "no-such-account";
  case OpResult::AccountExists:
    return "account-exists";
  case OpResult::InvalidAmount:
    return "invalid-amount";
  case OpResult::InsufficientFunds:
    return "insufficient-funds";
  case OpResult::SelfTransfer:
    return "self-transfer";
  case OpResult::HeapExhausted:
    return "heap-exhausted";
  }
  return "unknown";
}

LedgerService::LedgerService(const LedgerConfig &C)
    : Cfg(C), Table(C.MaxAccounts), Locks(new SpinLock[C.MaxAccounts]) {
  TSOGC_CHECK(C.MaxAccounts > 0, "ledger needs a non-empty id space");
  TSOGC_CHECK(C.HistoryLimit > 0, "history limit must be positive");
  for (auto &Cell : Table)
    Cell.store(RtNull, std::memory_order_relaxed);
}

void LedgerService::lockAccount(MutatorContext &M, AccountId Id) {
  while (Locks[Id].F.test_and_set(std::memory_order_acquire)) {
    // Keep acknowledging handshakes while blocked: a spinning thread must
    // never stall a collector round (or an observatory park) behind an
    // application lock.
    M.safepoint();
    std::this_thread::yield();
  }
}

void LedgerService::unlockAccount(AccountId Id) {
  Locks[Id].F.clear(std::memory_order_release);
}

int LedgerService::adoptAccount(MutatorContext &M, AccountId Id) const {
  if (Id >= Cfg.MaxAccounts)
    return -1;
  RtRef R = Table[Id].load(std::memory_order_acquire);
  if (R == RtNull)
    return -1;
  // The owning worker keeps every published account rooted for the
  // service's lifetime, so the adopted handle always validates.
  return M.adoptRoot(R);
}

OpResult LedgerService::createAccount(MutatorContext &M, AccountId Id) {
  if (Id >= Cfg.MaxAccounts)
    return OpResult::NoSuchAccount;
  if (Table[Id].load(std::memory_order_acquire) != RtNull)
    return OpResult::AccountExists;

  const size_t Mark = M.numRoots();
  int Acct = M.alloc();
  if (Acct < 0)
    return OpResult::HeapExhausted;
  int Entry = M.alloc();
  if (Entry < 0) {
    M.discard(M.numRoots() - 1); // the account slot becomes garbage
    return OpResult::HeapExhausted;
  }
  M.storeData(static_cast<size_t>(Acct), Id);
  M.storeData(static_cast<size_t>(Entry), Cfg.InitialBalance);
  M.store(static_cast<size_t>(Entry), static_cast<size_t>(Acct), 0);
  M.discard(static_cast<size_t>(Entry));

  // Publish only the fully initialized account. Losing the race unroots
  // our copy (instant garbage) and reports the collision.
  RtRef Expected = RtNull;
  if (!Table[Id].compare_exchange_strong(
          Expected, M.rootRef(static_cast<size_t>(Acct)),
          std::memory_order_acq_rel)) {
    M.discard(M.numRoots() - 1);
    return OpResult::AccountExists;
  }
  TSOGC_CHECK(M.numRoots() == Mark + 1, "create must add exactly one root");
  Minted.fetch_add(Cfg.InitialBalance, std::memory_order_relaxed);
  NumAccounts.fetch_add(1, std::memory_order_relaxed);
  return OpResult::Ok;
}

OpResult LedgerService::transfer(MutatorContext &M, AccountId From,
                                 AccountId To, uint64_t Amount,
                                 uint64_t Seq) {
  if (From == To)
    return OpResult::SelfTransfer;
  if (Amount == 0)
    return OpResult::InvalidAmount;
  if (From >= Cfg.MaxAccounts || To >= Cfg.MaxAccounts ||
      Table[From].load(std::memory_order_acquire) == RtNull ||
      Table[To].load(std::memory_order_acquire) == RtNull)
    return OpResult::NoSuchAccount;

  const AccountId Lo = From < To ? From : To;
  const AccountId Hi = From < To ? To : From;
  lockAccount(M, Lo);
  lockAccount(M, Hi);

  const size_t Mark = M.numRoots();
  auto Unwind = [&] {
    while (M.numRoots() > Mark)
      M.discard(M.numRoots() - 1);
    unlockAccount(Hi);
    unlockAccount(Lo);
  };

  int F = adoptAccount(M, From);
  int T = adoptAccount(M, To);
  TSOGC_CHECK(F >= 0 && T >= 0, "published account vanished");

  // Authoritative balance re-check under the locks (validate() outside the
  // locks may have seen a stale entry).
  int Ef = M.load(static_cast<size_t>(F), 0);
  int Et = M.load(static_cast<size_t>(T), 0);
  TSOGC_CHECK(Ef >= 0 && Et >= 0, "account without a balance entry");
  const uint64_t FromBal = M.loadData(static_cast<size_t>(Ef));
  const uint64_t ToBal = M.loadData(static_cast<size_t>(Et));
  if (FromBal < Amount) {
    Unwind();
    return OpResult::InsufficientFunds;
  }

  // Allocate everything before mutating anything, so heap exhaustion
  // cannot leave a half-applied transfer.
  int Nf = M.alloc();
  int Nt = Nf >= 0 ? M.alloc() : -1;
  int Hf = Nt >= 0 ? M.alloc() : -1;
  int Ht = Hf >= 0 ? M.alloc() : -1;
  if (Ht < 0) {
    Unwind();
    return OpResult::HeapExhausted;
  }
  M.storeData(static_cast<size_t>(Nf), FromBal - Amount);
  M.storeData(static_cast<size_t>(Nt), ToBal + Amount);
  M.storeData(static_cast<size_t>(Hf), packHistory(Seq, Amount));
  M.storeData(static_cast<size_t>(Ht), packHistory(Seq, Amount));

  // Push the history nodes (newest first), then install the fresh balance
  // entries; the displaced entries become floating garbage for the cycle
  // in flight. Every edge write below runs both write barriers.
  int OldHf = M.load(static_cast<size_t>(F), 1);
  if (OldHf >= 0)
    M.store(static_cast<size_t>(OldHf), static_cast<size_t>(Hf), 0);
  M.store(static_cast<size_t>(Hf), static_cast<size_t>(F), 1);
  int OldHt = M.load(static_cast<size_t>(T), 1);
  if (OldHt >= 0)
    M.store(static_cast<size_t>(OldHt), static_cast<size_t>(Ht), 0);
  M.store(static_cast<size_t>(Ht), static_cast<size_t>(T), 1);

  M.store(static_cast<size_t>(Nf), static_cast<size_t>(F), 0);
  M.store(static_cast<size_t>(Nt), static_cast<size_t>(T), 0);

  Unwind();
  return OpResult::Ok;
}

OpResult LedgerService::trimHistory(MutatorContext &M, AccountId Id,
                                    uint32_t *TrimmedOut) {
  if (TrimmedOut)
    *TrimmedOut = 0;
  if (Id >= Cfg.MaxAccounts ||
      Table[Id].load(std::memory_order_acquire) == RtNull)
    return OpResult::NoSuchAccount;

  lockAccount(M, Id); // history is mutated under the account lock
  const size_t Mark = M.numRoots();
  int A = adoptAccount(M, Id);
  TSOGC_CHECK(A >= 0, "published account vanished");

  // Walk to the HistoryLimit-th node (newest first).
  int Cur = M.load(static_cast<size_t>(A), 1);
  uint32_t Kept = Cur >= 0 ? 1 : 0;
  while (Cur >= 0 && Kept < Cfg.HistoryLimit) {
    int Next = M.load(static_cast<size_t>(Cur), 0);
    if (Next < 0)
      break;
    Cur = Next;
    ++Kept;
  }
  uint32_t Trimmed = 0;
  if (Cur >= 0 && Kept == Cfg.HistoryLimit) {
    // Count the tail (rooted through these loads until we unwind), then
    // sever it: the deletion barrier inside storeNull greys the tail head
    // so a cycle already past its snapshot cannot lose it — this is the
    // op that manufactures floating garbage by design.
    int Tail = M.load(static_cast<size_t>(Cur), 0);
    for (int N = Tail; N >= 0; N = M.load(static_cast<size_t>(N), 0))
      ++Trimmed;
    if (Trimmed > 0)
      M.storeNull(static_cast<size_t>(Cur), 0);
  }

  while (M.numRoots() > Mark)
    M.discard(M.numRoots() - 1);
  unlockAccount(Id);
  if (TrimmedOut)
    *TrimmedOut = Trimmed;
  return OpResult::Ok;
}

OpResult LedgerService::queryBalance(MutatorContext &M, AccountId Id,
                                     uint64_t *BalanceOut) {
  if (Id >= Cfg.MaxAccounts ||
      Table[Id].load(std::memory_order_acquire) == RtNull)
    return OpResult::NoSuchAccount;

  // Lock-free read path: balance entries are immutable, so adopting the
  // account and chasing .f0 yields a consistent (if momentarily stale)
  // balance; the entry stays live while rooted even if displaced.
  const size_t Mark = M.numRoots();
  int A = adoptAccount(M, Id);
  TSOGC_CHECK(A >= 0, "published account vanished");
  int E = M.load(static_cast<size_t>(A), 0);
  TSOGC_CHECK(E >= 0, "account without a balance entry");
  uint64_t Bal = M.loadData(static_cast<size_t>(E));

  // Touch the recent history — the page a statement query would render.
  int Cur = M.load(static_cast<size_t>(A), 1);
  for (unsigned I = 0; Cur >= 0 && I < 4; ++I) {
    (void)M.loadData(static_cast<size_t>(Cur));
    Cur = M.load(static_cast<size_t>(Cur), 0);
  }

  while (M.numRoots() > Mark)
    M.discard(M.numRoots() - 1);
  if (BalanceOut)
    *BalanceOut = Bal;
  return OpResult::Ok;
}

uint64_t LedgerService::sumBalances(MutatorContext &M) const {
  uint64_t Sum = 0;
  for (AccountId Id = 0; Id < Cfg.MaxAccounts; ++Id) {
    const size_t Mark = M.numRoots();
    int A = adoptAccount(M, Id);
    if (A < 0)
      continue;
    int E = M.load(static_cast<size_t>(A), 0);
    TSOGC_CHECK(E >= 0, "account without a balance entry");
    Sum += M.loadData(static_cast<size_t>(E));
    while (M.numRoots() > Mark)
      M.discard(M.numRoots() - 1);
  }
  return Sum;
}

uint32_t LedgerService::historyLength(MutatorContext &M,
                                      AccountId Id) const {
  const size_t Mark = M.numRoots();
  int A = adoptAccount(M, Id);
  if (A < 0)
    return 0;
  uint32_t Len = 0;
  for (int Cur = M.load(static_cast<size_t>(A), 1); Cur >= 0;
       Cur = M.load(static_cast<size_t>(Cur), 0))
    ++Len;
  while (M.numRoots() > Mark)
    M.discard(M.numRoots() - 1);
  return Len;
}
