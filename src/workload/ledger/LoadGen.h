//===- workload/ledger/LoadGen.h - Open-loop request generator ------------===//
///
/// \file
/// Deterministic open-loop load generation for the ledger service. Each
/// worker thread owns one LoadGen stream; a stream is fully determined by
/// (config, seed, stream index), so two runs with the same parameters see
/// byte-identical request sequences — schedule nondeterminism lives only
/// in the runtime, never in the offered load.
///
/// Open-loop means arrivals follow a Poisson process at the configured
/// rate regardless of service speed: each request carries a scheduled
/// ArrivalNs, and the harness measures latency from that scheduled arrival,
/// so queueing delay under overload is part of the number (the
/// coordinated-omission-safe convention).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_LEDGER_LOADGEN_H
#define TSOGC_WORKLOAD_LEDGER_LOADGEN_H

#include "support/Random.h"
#include "workload/ledger/Ops.h"

namespace tsogc::ledger {

/// Operation mix weights (normalized internally; need not sum to 1).
struct OpMix {
  double Create = 0.04;
  double Transfer = 0.60;
  double TrimHistory = 0.08;
  double Query = 0.28;
};

struct LoadGenConfig {
  /// Arrival rate for THIS stream, requests per second.
  double RatePerSec = 5000.0;
  OpMix Mix;
  /// Ids [0, PreCreated) are assumed created before traffic starts (the
  /// harness's warm-up creates them).
  uint32_t PreCreated = 64;
  /// Id space bound; create targets beyond it degrade to queries.
  uint32_t MaxAccounts = 256;
  /// Key skew: with probability HotFraction an op targets the hot set
  /// [0, HotAccounts) — a few celebrity accounts absorbing most traffic.
  double HotFraction = 0.8;
  uint32_t HotAccounts = 8;
  /// Transfer amounts are uniform in [MinAmount, MaxAmount].
  uint64_t MinAmount = 1;
  uint64_t MaxAmount = 50;
};

class LoadGen {
public:
  /// \p Stream of \p NumStreams partitions the create id space: stream s
  /// creates ids PreCreated + s + k*NumStreams, so creates never collide
  /// across streams and each account has a unique owning stream.
  LoadGen(const LoadGenConfig &Cfg, uint64_t Seed, uint32_t Stream = 0,
          uint32_t NumStreams = 1);

  /// Produce the next scheduled request. Deterministic: depends only on
  /// construction parameters and call count.
  OpRequest next();

  uint64_t issued() const { return Seq; }
  uint32_t createdByMe() const { return CreatedByMe; }

private:
  AccountId pickAccount();
  OpKind pickKind();

  LoadGenConfig Cfg;
  Xoshiro256 Rng;
  uint32_t Stream;
  uint32_t NumStreams;
  uint64_t Seq = 0;
  double ClockNs = 0.0;
  uint32_t CreatedByMe = 0;
};

} // namespace tsogc::ledger

#endif // TSOGC_WORKLOAD_LEDGER_LOADGEN_H
