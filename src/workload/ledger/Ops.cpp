//===- workload/ledger/Ops.cpp --------------------------------------------===//

#include "workload/ledger/Ops.h"

using namespace tsogc;
using namespace tsogc::ledger;
using rt::MutatorContext;
using rt::RtNull;

const char *tsogc::ledger::opKindName(OpKind K) {
  switch (K) {
  case OpKind::CreateAccount:
    return "create";
  case OpKind::Transfer:
    return "transfer";
  case OpKind::TrimHistory:
    return "trim";
  case OpKind::QueryBalance:
    return "query";
  }
  return "unknown";
}

OpResult CreateAccountFrame::validate(LedgerService &Svc, MutatorContext &) {
  if (Req.A >= Svc.config().MaxAccounts)
    return OpResult::NoSuchAccount;
  if (Svc.accountRef(Req.A) != RtNull)
    return OpResult::AccountExists;
  return OpResult::Ok;
}

OpResult CreateAccountFrame::apply(LedgerService &Svc, MutatorContext &M) {
  return Svc.createAccount(M, Req.A);
}

OpResult TransferFrame::validate(LedgerService &Svc, MutatorContext &M) {
  if (Req.A == Req.B)
    return OpResult::SelfTransfer;
  if (Req.Amount == 0)
    return OpResult::InvalidAmount;
  if (Req.A >= Svc.config().MaxAccounts || Req.B >= Svc.config().MaxAccounts ||
      Svc.accountRef(Req.A) == RtNull || Svc.accountRef(Req.B) == RtNull)
    return OpResult::NoSuchAccount;
  // Advisory funds precheck on the lock-free read path; apply() re-checks
  // under the account locks, so a stale pass here only costs a lock round.
  uint64_t Bal = 0;
  if (Svc.queryBalance(M, Req.A, &Bal) != OpResult::Ok)
    return OpResult::NoSuchAccount;
  if (Bal < Req.Amount)
    return OpResult::InsufficientFunds;
  return OpResult::Ok;
}

OpResult TransferFrame::apply(LedgerService &Svc, MutatorContext &M) {
  return Svc.transfer(M, Req.A, Req.B, Req.Amount, Req.Seq);
}

OpResult TrimHistoryFrame::validate(LedgerService &Svc, MutatorContext &) {
  if (Req.A >= Svc.config().MaxAccounts || Svc.accountRef(Req.A) == RtNull)
    return OpResult::NoSuchAccount;
  return OpResult::Ok;
}

OpResult TrimHistoryFrame::apply(LedgerService &Svc, MutatorContext &M) {
  return Svc.trimHistory(M, Req.A, &Trimmed);
}

OpResult QueryBalanceFrame::validate(LedgerService &Svc, MutatorContext &) {
  if (Req.A >= Svc.config().MaxAccounts || Svc.accountRef(Req.A) == RtNull)
    return OpResult::NoSuchAccount;
  return OpResult::Ok;
}

OpResult QueryBalanceFrame::apply(LedgerService &Svc, MutatorContext &M) {
  return Svc.queryBalance(M, Req.A, &Balance);
}

OpResult tsogc::ledger::executeOp(LedgerService &Svc, MutatorContext &M,
                                  const OpRequest &Req) {
  switch (Req.Kind) {
  case OpKind::CreateAccount: {
    CreateAccountFrame F(Req);
    OpResult R = F.validate(Svc, M);
    return R == OpResult::Ok ? F.apply(Svc, M) : R;
  }
  case OpKind::Transfer: {
    TransferFrame F(Req);
    OpResult R = F.validate(Svc, M);
    return R == OpResult::Ok ? F.apply(Svc, M) : R;
  }
  case OpKind::TrimHistory: {
    TrimHistoryFrame F(Req);
    OpResult R = F.validate(Svc, M);
    return R == OpResult::Ok ? F.apply(Svc, M) : R;
  }
  case OpKind::QueryBalance: {
    QueryBalanceFrame F(Req);
    OpResult R = F.validate(Svc, M);
    return R == OpResult::Ok ? F.apply(Svc, M) : R;
  }
  }
  return OpResult::InvalidAmount;
}
