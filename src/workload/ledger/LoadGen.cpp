//===- workload/ledger/LoadGen.cpp ----------------------------------------===//

#include "workload/ledger/LoadGen.h"

#include "support/Assert.h"

#include <cmath>

using namespace tsogc;
using namespace tsogc::ledger;

namespace {
/// Mix the stream index into the seed so sibling streams are independent.
uint64_t streamSeed(uint64_t Seed, uint32_t Stream) {
  SplitMix64 S(Seed + 0x5851f42d4c957f2dULL * (Stream + 1));
  return S.next();
}
} // namespace

LoadGen::LoadGen(const LoadGenConfig &C, uint64_t Seed, uint32_t Stream,
                 uint32_t NumStreams)
    : Cfg(C), Rng(streamSeed(Seed, Stream)), Stream(Stream),
      NumStreams(NumStreams ? NumStreams : 1) {
  TSOGC_CHECK(Cfg.RatePerSec > 0, "open-loop rate must be positive");
  TSOGC_CHECK(Cfg.MaxAmount >= Cfg.MinAmount, "bad amount range");
}

OpKind LoadGen::pickKind() {
  const double Total =
      Cfg.Mix.Create + Cfg.Mix.Transfer + Cfg.Mix.TrimHistory + Cfg.Mix.Query;
  TSOGC_CHECK(Total > 0, "operation mix has no mass");
  double X = Rng.nextDouble() * Total;
  if ((X -= Cfg.Mix.Create) < 0)
    return OpKind::CreateAccount;
  if ((X -= Cfg.Mix.Transfer) < 0)
    return OpKind::Transfer;
  if ((X -= Cfg.Mix.TrimHistory) < 0)
    return OpKind::TrimHistory;
  return OpKind::QueryBalance;
}

AccountId LoadGen::pickAccount() {
  // Conservative watermark of ids known to exist: the pre-created block
  // plus this stream's own creates (other streams' creates may also exist;
  // targeting one early merely yields a NoSuchAccount response).
  uint32_t Watermark = Cfg.PreCreated + CreatedByMe * NumStreams;
  if (Watermark > Cfg.MaxAccounts)
    Watermark = Cfg.MaxAccounts;
  if (Watermark == 0)
    Watermark = 1;
  const uint32_t Hot = Cfg.HotAccounts < Watermark ? Cfg.HotAccounts : Watermark;
  if (Hot > 0 && Rng.nextBool(Cfg.HotFraction))
    return static_cast<AccountId>(Rng.nextBelow(Hot));
  return static_cast<AccountId>(Rng.nextBelow(Watermark));
}

OpRequest LoadGen::next() {
  OpRequest Req;
  // Poisson arrivals: exponential inter-arrival via inverse transform.
  const double U = Rng.nextDouble();
  const double DtSec = -std::log1p(-U) / Cfg.RatePerSec;
  ClockNs += DtSec * 1e9;
  Req.ArrivalNs = static_cast<uint64_t>(ClockNs);
  Req.Seq = Seq++;

  OpKind K = pickKind();
  if (K == OpKind::CreateAccount) {
    const uint64_t NextId =
        static_cast<uint64_t>(Cfg.PreCreated) + Stream +
        static_cast<uint64_t>(CreatedByMe) * NumStreams;
    if (NextId >= Cfg.MaxAccounts) {
      K = OpKind::QueryBalance; // id space exhausted; keep the arrival
    } else {
      Req.Kind = OpKind::CreateAccount;
      Req.A = static_cast<AccountId>(NextId);
      ++CreatedByMe;
      return Req;
    }
  }

  Req.Kind = K;
  Req.A = pickAccount();
  if (K == OpKind::Transfer) {
    Req.B = pickAccount();
    if (Req.B == Req.A) // nudge off the diagonal; self-transfers reject
      Req.B = (Req.A + 1) % (Cfg.PreCreated ? Cfg.PreCreated : 1);
    Req.Amount =
        Cfg.MinAmount + Rng.nextBelow(Cfg.MaxAmount - Cfg.MinAmount + 1);
  }
  return Req;
}
