//===- workload/ledger/Slo.h - Service-level objective checking -----------===//
///
/// \file
/// The SLO a ledger deployment would pin on a dashboard, checked against a
/// LedgerRunResult. Latency bounds are on the open-loop numbers (queueing
/// included); throughput is relative to offered load; the GC-facing terms
/// (max pause, floating-garbage ratio, clean audit, zero §3.2 invariant
/// violations) are what this repo exists to bound. The committed defaults
/// are deliberately loose — they must pass on a 1-core CI container under
/// schedule fuzzing; docs/WORKLOADS.md discusses tightening them on real
/// hardware.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_LEDGER_SLO_H
#define TSOGC_WORKLOAD_LEDGER_SLO_H

#include "workload/ledger/Harness.h"

namespace tsogc::ledger {

struct SloTarget {
  double MaxP50Us = 10'000;      ///< 10 ms median.
  double MaxP99Us = 100'000;     ///< 100 ms tail.
  double MaxOpUs = 1'000'000;    ///< 1 s worst op (queueing included).
  double MaxPauseUs = 50'000;    ///< 50 ms worst mutator pause.
  /// Completed (applied + rejected) ops must be at least this fraction of
  /// the offered open-loop load.
  double MinThroughputFraction = 0.5;
  /// Unreachable / allocated at shutdown, before the drain cycles.
  double MaxFloatingGarbageRatio = 0.9;
  /// GC back-pressure drops as a fraction of all requests.
  double MaxHeapExhaustedFraction = 0.01;
  bool RequireConservation = true; ///< sum(balances) == minted.
  bool RequireCleanAudit = true;   ///< No dangling roots/fields/worklists.
  uint64_t MaxInvariantViolations = 0; ///< §3.2 observatory verdict.
};

struct SloVerdict {
  bool Pass = true;
  std::vector<std::string> Violations;

  /// "SLO PASS" or "SLO FAIL: <violation>; <violation>; ...".
  std::string summary() const;
};

SloVerdict checkSlo(const SloTarget &T, const LedgerRunResult &R);

} // namespace tsogc::ledger

#endif // TSOGC_WORKLOAD_LEDGER_SLO_H
