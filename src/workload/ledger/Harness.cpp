//===- workload/ledger/Harness.cpp ----------------------------------------===//

#include "workload/ledger/Harness.h"

#include "runtime/InvariantObservatory.h"
#include "support/Assert.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

using namespace tsogc;
using namespace tsogc::ledger;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-worker measurement slot, written by the worker thread during its
/// run and read by the main thread only after MeasureDone.
struct WorkerSlot {
  std::vector<double> LatenciesUs;
  uint64_t AppliedByKind[NumOpKinds] = {};
  uint64_t ResultCounts[7] = {};
  rt::MutStats Stats;
  std::atomic<bool> Ready{false};
  std::atomic<bool> MeasureDone{false};
};

/// Exact quantile of \p V (destructively reordered). Q in [0, 1].
double quantileUs(std::vector<double> &V, double Q) {
  if (V.empty())
    return 0.0;
  size_t K = static_cast<size_t>(Q * (V.size() - 1));
  std::nth_element(V.begin(), V.begin() + K, V.end());
  return V[K];
}

} // namespace

LedgerHarness::LedgerHarness(const LedgerRunConfig &C)
    : Cfg([&C] {
        LedgerRunConfig R = C;
        // Keep the two id spaces consistent: the generator targets the
        // ledger's account table.
        R.Load.MaxAccounts = R.Ledger.MaxAccounts;
        if (R.Load.PreCreated > R.Ledger.MaxAccounts)
          R.Load.PreCreated = R.Ledger.MaxAccounts;
        if (R.Threads == 0)
          R.Threads = 1;
        return R;
      }()),
      Rt(Cfg.Rt), Svc(Cfg.Ledger) {}

LedgerRunResult LedgerHarness::run() {
  const unsigned N = Cfg.Threads;
  std::vector<WorkerSlot> Slots(N);
  std::atomic<bool> Go{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> ExitFlag{false};
  std::atomic<uint64_t> T0{0};

  LoadGenConfig PerStream = Cfg.Load;
  PerStream.RatePerSec = Cfg.Load.RatePerSec / N;

  // Measurement teardown, shared by both exits of the op loop: snapshot
  // the stats, then sit in a service phase — accounts stay rooted and
  // handshakes keep being acknowledged while the main thread audits and
  // drains — until told to drop everything and deregister.
  auto Finish = [&](WorkerSlot &Slot, rt::MutatorContext *M) {
    Slot.Stats = M->stats();
    Slot.MeasureDone.store(true, std::memory_order_release);
    while (!ExitFlag.load(std::memory_order_acquire)) {
      M->safepoint();
      std::this_thread::yield();
    }
    while (M->numRoots() > 0)
      M->discard(M->numRoots() - 1);
    Rt.deregisterMutator(M);
  };

  auto Worker = [&](unsigned W) {
    rt::MutatorContext *M = Rt.registerMutator();
    WorkerSlot &Slot = Slots[W];

    // Warm-up: create this worker's share of the pre-created block. The
    // collector is not running yet, so these need no handshake service;
    // the accounts stay rooted in this context until teardown.
    for (AccountId Id = W; Id < Cfg.Load.PreCreated; Id += N) {
      OpResult R = Svc.createAccount(*M, Id);
      TSOGC_CHECK(R == OpResult::Ok, "warm-up create failed");
    }
    Slot.Ready.store(true, std::memory_order_release);
    while (!Go.load(std::memory_order_acquire))
      std::this_thread::yield();

    LoadGen Gen(PerStream, Cfg.Seed, W, N);
    const uint64_t Start = T0.load(std::memory_order_acquire);
    while (!StopFlag.load(std::memory_order_relaxed)) {
      OpRequest Req = Gen.next();
      const uint64_t Target = Start + Req.ArrivalNs;
      // Open-loop pacing: wait for the scheduled arrival (servicing
      // handshakes meanwhile). Under overload Target is already past and
      // the op runs immediately — the queueing delay lands in its latency.
      bool Stopped = false;
      for (;;) {
        if (StopFlag.load(std::memory_order_relaxed)) {
          Stopped = true;
          break;
        }
        const uint64_t Now = nowNs();
        if (Now >= Target)
          break;
        M->safepoint();
        if (Target - Now > 50'000)
          std::this_thread::yield();
      }
      if (Stopped)
        break;

      OpResult R = executeOp(Svc, *M, Req);
      const uint64_t End = nowNs();
      Slot.LatenciesUs.push_back(
          static_cast<double>(End > Target ? End - Target : 0) / 1e3);
      ++Slot.ResultCounts[static_cast<unsigned>(R)];
      if (R == OpResult::Ok)
        ++Slot.AppliedByKind[static_cast<unsigned>(Req.Kind)];
      else if (R == OpResult::HeapExhausted)
        std::this_thread::yield(); // back-pressure: let the collector run
      M->safepoint();
    }
    Finish(Slot, M);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned W = 0; W < N; ++W)
    Threads.emplace_back(Worker, W);

  for (auto &S : Slots)
    while (!S.Ready.load(std::memory_order_acquire))
      std::this_thread::yield();

  rt::GcRuntime::CollectorPolicy Policy;
  Policy.StopTheWorld = Cfg.StopTheWorld;
  Policy.OccupancyTrigger = Cfg.OccupancyTrigger;
  Rt.startCollector(Policy);

  T0.store(nowNs(), std::memory_order_release);
  Go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(Cfg.Seconds));
  StopFlag.store(true, std::memory_order_relaxed);

  for (auto &S : Slots)
    while (!S.MeasureDone.load(std::memory_order_acquire))
      std::this_thread::yield();
  const double DurationSec =
      static_cast<double>(nowNs() - T0.load(std::memory_order_relaxed)) / 1e9;

  // -- shutdown audit + conservation ------------------------------------
  Rt.stopCollector();

  LedgerRunResult R;
  R.DurationSec = DurationSec;
  R.OfferedOpsPerSec = Cfg.Load.RatePerSec;

  auto Audit = Rt.auditHeap();
  R.LiveObjects = Audit.Reachable;
  R.FloatingGarbage = Audit.Unreachable;
  const uint32_t Allocated = Audit.Reachable + Audit.Unreachable;
  R.FloatingGarbageRatio =
      Allocated ? static_cast<double>(Audit.Unreachable) / Allocated : 0.0;
  R.AuditClean = Audit.clean();

  {
    // The collector is idle, so the main thread may register a context of
    // its own for the conservation walk (workers are parked at safepoints
    // in their service phase and still hold every account root).
    rt::MutatorContext *Main = Rt.registerMutator();
    R.SumBalances = Svc.sumBalances(*Main);
    R.MintedTotal = Svc.mintedTotal();
    R.ConservationOk = R.SumBalances == R.MintedTotal;
    while (Main->numRoots() > 0)
      Main->discard(Main->numRoots() - 1);
    Rt.deregisterMutator(Main);
  }

  if (Cfg.DrainAfterRun) {
    // Two forced cycles reclaim everything the shutdown audit saw as
    // floating (trimmed history tails, displaced balance entries).
    Rt.collectOnce();
    Rt.collectOnce();
    auto Audit2 = Rt.auditHeap();
    R.Drained = true;
    R.UnreclaimedAfterDrain = Audit2.Unreachable;
    R.DrainedClean = Audit2.clean() && Audit2.Unreachable == 0;
  }

  ExitFlag.store(true, std::memory_order_release);
  for (auto &Th : Threads)
    Th.join();

  // -- aggregation -------------------------------------------------------
  for (unsigned W = 0; W < N; ++W) {
    WorkerSlot &S = Slots[W];
    for (unsigned K = 0; K < NumOpKinds; ++K)
      R.AppliedByKind[K] += S.AppliedByKind[K];
    for (unsigned I = 0; I < 7; ++I)
      R.ResultCounts[I] += S.ResultCounts[I];
    R.LatenciesUs.insert(R.LatenciesUs.end(), S.LatenciesUs.begin(),
                         S.LatenciesUs.end());
    R.MaxPauseNs = std::max(R.MaxPauseNs, S.Stats.maxPauseNs());
    R.AllocFailures += S.Stats.AllocFailures;
    R.TlabHits += S.Stats.TlabHits;
    R.TlabRefills += S.Stats.TlabRefills;
    R.AllocFallbacks += S.Stats.AllocFallbacks;
  }
  R.OpsApplied = R.ResultCounts[static_cast<unsigned>(OpResult::Ok)];
  R.OpsHeapExhausted =
      R.ResultCounts[static_cast<unsigned>(OpResult::HeapExhausted)];
  R.OpsTotal = R.LatenciesUs.size();
  R.OpsRejected = R.OpsTotal - R.OpsApplied - R.OpsHeapExhausted;
  R.ThroughputOpsPerSec =
      DurationSec > 0 ? (R.OpsTotal - R.OpsHeapExhausted) / DurationSec : 0;

  if (!R.LatenciesUs.empty()) {
    std::vector<double> Scratch = R.LatenciesUs;
    R.P50Us = quantileUs(Scratch, 0.50);
    R.P99Us = quantileUs(Scratch, 0.99);
    R.MaxUs = *std::max_element(Scratch.begin(), Scratch.end());
    R.MeanUs = std::accumulate(Scratch.begin(), Scratch.end(), 0.0) /
               static_cast<double>(Scratch.size());
  }

  R.Cycles = Rt.stats().Cycles.load(std::memory_order_relaxed);
  if (auto *Obs = Rt.observatory()) {
    R.Snapshots = Obs->snapshotCount();
    R.InvariantChecks = Obs->checked();
    R.InvariantViolations = Obs->violationCount();
  }
  return R;
}

LedgerRunResult tsogc::ledger::runLedger(const LedgerRunConfig &Cfg) {
  LedgerHarness H(Cfg);
  return H.run();
}

void tsogc::ledger::exportMetrics(const LedgerRunResult &R,
                                  observe::MetricsRegistry &Reg,
                                  const std::string &Prefix) {
  Reg.gauge(Prefix + "duration_sec", R.DurationSec);
  Reg.gauge(Prefix + "offered_ops_per_sec", R.OfferedOpsPerSec);
  Reg.gauge(Prefix + "throughput_ops_per_sec", R.ThroughputOpsPerSec);
  Reg.counter(Prefix + "ops_total", R.OpsTotal);
  Reg.counter(Prefix + "ops_applied", R.OpsApplied);
  Reg.counter(Prefix + "ops_rejected", R.OpsRejected);
  Reg.counter(Prefix + "ops_heap_exhausted", R.OpsHeapExhausted);
  for (unsigned K = 0; K < NumOpKinds; ++K)
    Reg.counter(Prefix + "applied_" + opKindName(static_cast<OpKind>(K)),
                R.AppliedByKind[K]);
  Reg.gauge(Prefix + "p50_us", R.P50Us);
  Reg.gauge(Prefix + "p99_us", R.P99Us);
  Reg.gauge(Prefix + "max_us", R.MaxUs);
  Reg.gauge(Prefix + "mean_us", R.MeanUs);
  Reg.gauge(Prefix + "max_pause_ns", static_cast<double>(R.MaxPauseNs));
  Reg.counter(Prefix + "gc_cycles", R.Cycles);
  Reg.counter(Prefix + "alloc_failures", R.AllocFailures);
  Reg.counter(Prefix + "tlab_hits", R.TlabHits);
  Reg.counter(Prefix + "tlab_refills", R.TlabRefills);
  Reg.counter(Prefix + "alloc_fallbacks", R.AllocFallbacks);
  Reg.gauge(Prefix + "live_objects", R.LiveObjects);
  Reg.gauge(Prefix + "floating_garbage", R.FloatingGarbage);
  Reg.gauge(Prefix + "floating_garbage_ratio", R.FloatingGarbageRatio);
  Reg.gauge(Prefix + "audit_clean", R.AuditClean ? 1 : 0);
  Reg.gauge(Prefix + "conservation_ok", R.ConservationOk ? 1 : 0);
  Reg.counter(Prefix + "invariant_checks", R.InvariantChecks);
  Reg.counter(Prefix + "invariant_violations", R.InvariantViolations);
  for (double L : R.LatenciesUs)
    Reg.observeSample(Prefix + "latency_us", L, 0.0, 50'000.0, 100);
}
