//===- workload/ledger/Ledger.h - Transaction service over the GC heap ----===//
///
/// \file
/// The ledger service: a production-shaped account/transaction store living
/// entirely on the GC-managed slab heap, the ROADMAP's "serves heavy
/// traffic" workload. The object graph (shapes after stellar-core's
/// ledger/transaction split):
///
/// ```
///   Account        payload = account id
///     .f0 ───────▶ BalanceEntry   payload = balance (immutable; every
///     .f1 ──┐                     transfer installs a fresh entry, the old
///            │                    one becomes garbage)
///            ▼
///          HistNode  payload = (op seq << 20 | amount)
///            .f0 ──▶ HistNode ──▶ …   (newest first; TrimHistory severs
///                                      the chain at HistoryLimit, turning
///                                      the tail into garbage)
/// ```
///
/// Accounts are created once and never destroyed; the creating worker keeps
/// the account rooted for the service's lifetime, so a published table ref
/// is always live and any thread may adopt it (MutatorContext::adoptRoot)
/// for the duration of one operation. Balance updates are serialized by
/// per-account spinlocks acquired in index order (application-level
/// concurrency control — the GC protocol neither knows nor cares); the
/// spin loop polls the safepoint so a waiting thread never stalls a
/// handshake round.
///
/// Every mutation goes through the Figure 6 API — alloc / store /
/// storeNull with both write barriers — so sustained ledger traffic is
/// exactly the mutator load the verified collector must survive, and the
/// §3.2 invariant observatory can watch it live (examples/ledger_service
/// --soak).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_LEDGER_LEDGER_H
#define TSOGC_WORKLOAD_LEDGER_LEDGER_H

#include "runtime/MutatorContext.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tsogc::ledger {

using AccountId = uint32_t;

struct LedgerConfig {
  /// Account id space: ids are in [0, MaxAccounts).
  uint32_t MaxAccounts = 256;
  /// TrimHistory cuts an account's history chain back to this many nodes.
  uint32_t HistoryLimit = 16;
  /// Balance minted into every newly created account.
  uint64_t InitialBalance = 1000;
};

/// Outcome of one operation. Validation rejections (NoSuchAccount,
/// InsufficientFunds, ...) are normal service responses, not errors;
/// HeapExhausted is GC back-pressure (the caller should yield and retry
/// or drop the op).
enum class OpResult : uint8_t {
  Ok = 0,
  NoSuchAccount,
  AccountExists,
  InvalidAmount,
  InsufficientFunds,
  SelfTransfer,
  HeapExhausted,
};

const char *opResultName(OpResult R);

/// The shared service state: the account table (side index into the GC
/// heap — reachability is still carried by mutator roots), the per-account
/// locks, and the conservation ledger (total minted, for the
/// sum-of-balances invariant).
class LedgerService {
public:
  explicit LedgerService(const LedgerConfig &Cfg);

  const LedgerConfig &config() const { return Cfg; }

  /// Published heap ref of account \p Id, or RtNull if not (yet) created.
  rt::RtRef accountRef(AccountId Id) const {
    return Table[Id].load(std::memory_order_acquire);
  }

  uint32_t numAccounts() const {
    return NumAccounts.load(std::memory_order_relaxed);
  }

  /// Total balance ever minted (sum of initial balances of all created
  /// accounts). Transfers must preserve sum(balances) == minted.
  uint64_t mintedTotal() const {
    return Minted.load(std::memory_order_relaxed);
  }

  //===-- Service primitives (called by the op frames) --------------------===//
  //
  // Each primitive runs against the calling thread's MutatorContext, leaves
  // the context's root stack exactly as it found it (temporaries are
  // discarded LIFO), and never calls safepoint() itself — the worker owns
  // the per-op safepoint cadence.

  /// Create account \p Id with the configured initial balance. The new
  /// account object stays rooted in \p M (the caller's context) — callers
  /// route creates to the account's owning worker, which holds the root
  /// until service teardown. Appends the permanent root index to the
  /// context's stack (the only primitive that grows it).
  OpResult createAccount(rt::MutatorContext &M, AccountId Id);

  /// Move \p Amount from \p From to \p To: fresh balance entries for both
  /// sides plus one history node each, all under the two account locks.
  OpResult transfer(rt::MutatorContext &M, AccountId From, AccountId To,
                    uint64_t Amount, uint64_t Seq);

  /// Cut \p Id's history back to HistoryLimit nodes; the severed tail
  /// becomes garbage. \p TrimmedOut (optional) receives the cut length.
  OpResult trimHistory(rt::MutatorContext &M, AccountId Id,
                       uint32_t *TrimmedOut = nullptr);

  /// Read \p Id's balance and touch its recent history (the read path a
  /// statement query would take). \p BalanceOut receives the balance.
  OpResult queryBalance(rt::MutatorContext &M, AccountId Id,
                        uint64_t *BalanceOut = nullptr);

  //===-- Quiescent introspection (tests, conservation checks) ------------===//

  /// Sum of all account balances via validated loads from \p M. Call at
  /// application quiescence (no concurrent transfers); the GC may run.
  uint64_t sumBalances(rt::MutatorContext &M) const;

  /// Length of \p Id's history chain (0 if the account does not exist).
  uint32_t historyLength(rt::MutatorContext &M, AccountId Id) const;

private:
  /// Test-and-set spinlock; the spin polls \p M's safepoint so a blocked
  /// thread keeps acknowledging handshakes.
  struct SpinLock {
    std::atomic_flag F = ATOMIC_FLAG_INIT;
  };
  void lockAccount(rt::MutatorContext &M, AccountId Id);
  void unlockAccount(AccountId Id);

  /// Adopt account \p Id as a root of \p M; returns the root index or -1
  /// if the account does not exist.
  int adoptAccount(rt::MutatorContext &M, AccountId Id) const;

  LedgerConfig Cfg;
  std::vector<std::atomic<rt::RtRef>> Table;
  std::unique_ptr<SpinLock[]> Locks;
  std::atomic<uint64_t> Minted{0};
  std::atomic<uint32_t> NumAccounts{0};
};

/// Packed history payload: (sequence << 20) | min(amount, 2^20 - 1).
inline uint64_t packHistory(uint64_t Seq, uint64_t Amount) {
  const uint64_t AmtMask = (1ull << 20) - 1;
  return (Seq << 20) | (Amount < AmtMask ? Amount : AmtMask);
}

} // namespace tsogc::ledger

#endif // TSOGC_WORKLOAD_LEDGER_LEDGER_H
