//===- workload/ledger/Harness.h - Multi-threaded ledger run harness ------===//
///
/// \file
/// Drives the ledger service with N mutator threads under open-loop load
/// and the on-the-fly collector, and measures what a service operator
/// would: per-op latency (from *scheduled* arrival, so queueing under
/// overload counts), throughput against offered load, the worst
/// collector-imposed mutator pause, and the floating-garbage ratio at
/// shutdown (audited, not estimated). The result feeds the SLO checker
/// (Slo.h) and the bench/metrics export.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_LEDGER_HARNESS_H
#define TSOGC_WORKLOAD_LEDGER_HARNESS_H

#include "observe/Metrics.h"
#include "runtime/GcRuntime.h"
#include "workload/ledger/LoadGen.h"

#include <string>
#include <vector>

namespace tsogc::ledger {

struct LedgerRunConfig {
  /// Runtime configuration (heap size, barriers, observatory, fuzzer...).
  rt::RtConfig Rt;
  LedgerConfig Ledger;
  /// Load shape. RatePerSec here is the AGGREGATE offered rate; the
  /// harness splits it evenly across threads. PreCreated/MaxAccounts are
  /// overwritten from \p Ledger to keep the two configs consistent.
  LoadGenConfig Load;
  unsigned Threads = 2;
  double Seconds = 2.0;
  uint64_t Seed = 42;
  /// Collector policy for the background thread.
  bool StopTheWorld = false;
  double OccupancyTrigger = 0.5;
  /// After measurement, run two forced cycles and re-audit to check the
  /// trimmed/displaced garbage was actually reclaimed.
  bool DrainAfterRun = true;
};

struct LedgerRunResult {
  //===-- Traffic ---------------------------------------------------------===//
  uint64_t OpsTotal = 0;         ///< Every request issued during measurement.
  uint64_t OpsApplied = 0;       ///< OpResult::Ok.
  uint64_t OpsRejected = 0;      ///< Validation rejections (normal responses).
  uint64_t OpsHeapExhausted = 0; ///< GC back-pressure drops.
  uint64_t AppliedByKind[NumOpKinds] = {};
  uint64_t ResultCounts[7] = {}; ///< Indexed by OpResult.

  //===-- Latency / throughput -------------------------------------------===//
  double DurationSec = 0;
  double OfferedOpsPerSec = 0;
  double ThroughputOpsPerSec = 0; ///< Applied + rejected per second.
  double P50Us = 0, P99Us = 0, MaxUs = 0, MeanUs = 0; ///< Exact quantiles.
  std::vector<double> LatenciesUs; ///< Merged raw samples (unsorted).

  //===-- Runtime ---------------------------------------------------------===//
  uint64_t MaxPauseNs = 0; ///< Worst MutStats::maxPauseNs() across workers.
  uint64_t Cycles = 0;
  uint64_t AllocFailures = 0;
  //===-- Allocator (zeros when RtConfig::LocalAllocPool is 0) ------------===//
  uint64_t TlabHits = 0;       ///< Bump/pool fast-path allocations.
  uint64_t TlabRefills = 0;    ///< reserveRun refills across workers.
  uint64_t AllocFallbacks = 0; ///< Slow-path direct heap allocations.

  //===-- Shutdown audit --------------------------------------------------===//
  uint32_t LiveObjects = 0;
  uint32_t FloatingGarbage = 0; ///< Allocated-but-unreachable at shutdown.
  double FloatingGarbageRatio = 0; ///< Unreachable / allocated.
  bool AuditClean = false;
  bool Drained = false; ///< DrainAfterRun ran.
  uint32_t UnreclaimedAfterDrain = 0;
  bool DrainedClean = false;

  //===-- Conservation ----------------------------------------------------===//
  uint64_t MintedTotal = 0;
  uint64_t SumBalances = 0;
  bool ConservationOk = false;

  //===-- Observatory (zeros when RtConfig::Observatory is off) ----------===//
  uint64_t Snapshots = 0;
  uint64_t InvariantChecks = 0;
  uint64_t InvariantViolations = 0;
};

/// Owns the runtime + service so callers (the example's --trace export,
/// tests poking at the observatory) can inspect them after run().
class LedgerHarness {
public:
  explicit LedgerHarness(const LedgerRunConfig &Cfg);

  /// One measured run: warm-up creates, open-loop traffic for
  /// Cfg.Seconds, shutdown audit + conservation check (+ drain).
  /// Call at most once per harness.
  LedgerRunResult run();

  rt::GcRuntime &runtime() { return Rt; }
  LedgerService &service() { return Svc; }
  const LedgerRunConfig &config() const { return Cfg; }

private:
  LedgerRunConfig Cfg;
  rt::GcRuntime Rt;
  LedgerService Svc;
};

/// Convenience wrapper when the runtime is not needed afterwards.
LedgerRunResult runLedger(const LedgerRunConfig &Cfg);

/// Export the headline numbers as `<Prefix>*` gauges plus a latency
/// histogram sample (`<Prefix>latency_us`) into \p Reg.
void exportMetrics(const LedgerRunResult &R, observe::MetricsRegistry &Reg,
                   const std::string &Prefix = "ledger.");

} // namespace tsogc::ledger

#endif // TSOGC_WORKLOAD_LEDGER_HARNESS_H
