//===- workload/ledger/Ops.h - Operation frames (validate/apply split) ----===//
///
/// \file
/// Requests and operation frames for the ledger service. Following the
/// stellar-core transaction-frame shape, every operation is a small frame
/// with a validate() precheck (cheap, lock-free, may observe stale state)
/// and an apply() that acquires the authoritative locks and re-validates
/// before mutating. A validation rejection is a normal service response —
/// it is counted, latency-tracked, and returned to the client, never
/// treated as an error.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_LEDGER_OPS_H
#define TSOGC_WORKLOAD_LEDGER_OPS_H

#include "workload/ledger/Ledger.h"

namespace tsogc::ledger {

enum class OpKind : uint8_t {
  CreateAccount = 0,
  Transfer,
  TrimHistory,
  QueryBalance,
};
constexpr unsigned NumOpKinds = 4;

const char *opKindName(OpKind K);

/// One scheduled client request, produced by the load generator.
struct OpRequest {
  OpKind Kind = OpKind::QueryBalance;
  AccountId A = 0;      ///< Primary account (creator / from / target).
  AccountId B = 0;      ///< Secondary account (transfer destination).
  uint64_t Amount = 0;  ///< Transfer amount.
  uint64_t Seq = 0;     ///< Per-stream request ordinal (history packing).
  uint64_t ArrivalNs = 0; ///< Open-loop arrival offset from stream start.
};

/// Base frame: validate (advisory, lock-free) then apply (authoritative).
/// Frames are stack-constructed per request; they hold no heap roots across
/// the validate/apply boundary.
class OpFrame {
public:
  explicit OpFrame(const OpRequest &Req) : Req(Req) {}
  virtual ~OpFrame() = default;

  /// Cheap precheck against possibly-stale state. A frame that fails
  /// validation is rejected without ever taking a lock.
  virtual OpResult validate(LedgerService &Svc, rt::MutatorContext &M) = 0;

  /// Execute against authoritative state. Pre-condition: validate()
  /// returned Ok (apply still re-checks anything racy under its locks).
  virtual OpResult apply(LedgerService &Svc, rt::MutatorContext &M) = 0;

  const OpRequest &request() const { return Req; }

protected:
  OpRequest Req;
};

class CreateAccountFrame : public OpFrame {
public:
  using OpFrame::OpFrame;
  OpResult validate(LedgerService &Svc, rt::MutatorContext &M) override;
  OpResult apply(LedgerService &Svc, rt::MutatorContext &M) override;
};

class TransferFrame : public OpFrame {
public:
  using OpFrame::OpFrame;
  OpResult validate(LedgerService &Svc, rt::MutatorContext &M) override;
  OpResult apply(LedgerService &Svc, rt::MutatorContext &M) override;
};

class TrimHistoryFrame : public OpFrame {
public:
  using OpFrame::OpFrame;
  OpResult validate(LedgerService &Svc, rt::MutatorContext &M) override;
  OpResult apply(LedgerService &Svc, rt::MutatorContext &M) override;
  uint32_t trimmed() const { return Trimmed; }

private:
  uint32_t Trimmed = 0;
};

class QueryBalanceFrame : public OpFrame {
public:
  using OpFrame::OpFrame;
  OpResult validate(LedgerService &Svc, rt::MutatorContext &M) override;
  OpResult apply(LedgerService &Svc, rt::MutatorContext &M) override;
  uint64_t balance() const { return Balance; }

private:
  uint64_t Balance = 0;
};

/// Stack-construct the frame for \p Req, run validate, and on Ok run
/// apply. This is the single entry point the harness workers use.
OpResult executeOp(LedgerService &Svc, rt::MutatorContext &M,
                   const OpRequest &Req);

} // namespace tsogc::ledger

#endif // TSOGC_WORKLOAD_LEDGER_OPS_H
