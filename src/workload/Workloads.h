//===- workload/Workloads.h - Realistic mutator workloads -----------------===//
///
/// \file
/// Reusable mutator behaviors over the runtime's Figure 6 API, shared by
/// the stress tests, benchmarks, and examples. Each workload owns a
/// strategy for exercising the heap access protocol the way an application
/// would: list churn (allocation-heavy, the embedded/real-time pattern the
/// paper's introduction motivates), tree building (deeper shapes, more
/// tracing work), and random graph mutation (barrier-heavy, maximally racy
/// when run from several threads over shared roots).
///
/// A workload never blocks and calls safepoint() exactly once per step, so
/// its step latency distribution is a direct read on mutator-visible GC
/// interference.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_WORKLOAD_WORKLOADS_H
#define TSOGC_WORKLOAD_WORKLOADS_H

#include "runtime/MutatorContext.h"
#include "support/Random.h"

#include <memory>
#include <string>

namespace tsogc::wl {

/// One mutator-thread workload. step() performs a small unit of work
/// (including one safepoint); teardown() drops all roots.
class Workload {
public:
  virtual ~Workload();

  /// Perform one unit of work. Returns false if the workload could not
  /// make progress (heap exhausted) — callers typically just keep going,
  /// letting the collector catch up.
  virtual bool step() = 0;

  /// Drop every root this workload holds.
  virtual void teardown() = 0;

  virtual const char *name() const = 0;
};

/// Builds singly linked lists, keeps a bounded set of them alive, abandons
/// the rest. Allocation-dominated; garbage is produced in bursts.
class ListChurn : public Workload {
public:
  ListChurn(rt::MutatorContext &M, uint64_t Seed, unsigned ListLen = 32,
            unsigned KeepLists = 4);
  bool step() override;
  void teardown() override;
  const char *name() const override { return "list-churn"; }

private:
  rt::MutatorContext &M;
  Xoshiro256 Rng;
  unsigned ListLen;
  unsigned KeepLists;
  int CurHead = -1;   ///< Root index of the list under construction.
  unsigned CurLen = 0;
};

/// Builds binary trees (requires ≥ 2 fields), replacing a random kept tree
/// when the nursery is full. Produces deep tracing work for the collector.
class TreeBuilder : public Workload {
public:
  TreeBuilder(rt::MutatorContext &M, uint64_t Seed, unsigned Depth = 5,
              unsigned KeepTrees = 3);
  bool step() override;
  void teardown() override;
  const char *name() const override { return "tree-builder"; }

private:
  /// Builds a complete tree of the given depth; returns its root index or
  /// -1 on exhaustion.
  int buildTree(unsigned Depth);

  rt::MutatorContext &M;
  Xoshiro256 Rng;
  unsigned Depth;
  unsigned KeepTrees;
};

/// Random edge rewiring over a bounded working set: store-dominated, the
/// worst case for write barriers, and racy when several instances share a
/// heap.
class GraphMutator : public Workload {
public:
  GraphMutator(rt::MutatorContext &M, uint64_t Seed,
               unsigned WorkingSet = 24);
  bool step() override;
  void teardown() override;
  const char *name() const override { return "graph-mutator"; }

private:
  rt::MutatorContext &M;
  Xoshiro256 Rng;
  unsigned WorkingSet;
};

/// Factory by name ("list", "tree", "graph"), for example CLIs.
std::unique_ptr<Workload> makeWorkload(const std::string &Name,
                                       rt::MutatorContext &M, uint64_t Seed);

} // namespace tsogc::wl

#endif // TSOGC_WORKLOAD_WORKLOADS_H
