//===- workload/Workloads.cpp ----------------------------------------------===//

#include "workload/Workloads.h"

#include "support/Assert.h"

using namespace tsogc;
using namespace tsogc::wl;
using rt::MutatorContext;

Workload::~Workload() = default;

//===----------------------------------------------------------------------===//
// ListChurn
//===----------------------------------------------------------------------===//

ListChurn::ListChurn(MutatorContext &M, uint64_t Seed, unsigned ListLen,
                     unsigned KeepLists)
    : M(M), Rng(Seed), ListLen(ListLen), KeepLists(KeepLists) {}

bool ListChurn::step() {
  M.safepoint();
  if (CurHead < 0) {
    CurHead = M.alloc();
    CurLen = 1;
    return CurHead >= 0;
  }
  if (CurLen < ListLen) {
    int Node = M.alloc();
    if (Node < 0)
      return false;
    // node.f0 := head; the new node becomes the rooted head (discard swaps
    // the last root — the node — into the vacated slot).
    M.store(static_cast<size_t>(CurHead), static_cast<size_t>(Node), 0);
    M.discard(static_cast<size_t>(CurHead));
    ++CurLen;
    return true;
  }
  // List finished: keep up to KeepLists heads rooted, abandon the oldest
  // beyond that (bulk garbage for the collector).
  CurHead = -1;
  CurLen = 0;
  while (M.numRoots() > KeepLists)
    M.discard(Rng.nextBelow(M.numRoots()));
  return true;
}

void ListChurn::teardown() {
  while (M.numRoots() > 0)
    M.discard(0);
  CurHead = -1;
}

//===----------------------------------------------------------------------===//
// TreeBuilder
//===----------------------------------------------------------------------===//

TreeBuilder::TreeBuilder(MutatorContext &M, uint64_t Seed, unsigned Depth,
                         unsigned KeepTrees)
    : M(M), Rng(Seed), Depth(Depth), KeepTrees(KeepTrees) {
  TSOGC_CHECK(M.numRoots() == 0, "TreeBuilder wants a fresh mutator");
}

int TreeBuilder::buildTree(unsigned D) {
  int Node = M.alloc();
  if (Node < 0 || D == 0)
    return Node;
  for (uint32_t F = 0; F < 2; ++F) {
    int Child = buildTree(D - 1);
    if (Child < 0)
      break;
    // node.fF := child, then unroot the child (it lives via the edge).
    M.store(static_cast<size_t>(Child), static_cast<size_t>(Node), F);
    // The child is the most recent root; Node's index is unaffected.
    TSOGC_CHECK(static_cast<size_t>(Child) == M.numRoots() - 1,
                "tree build root discipline broken");
    M.discard(static_cast<size_t>(Child));
  }
  return Node;
}

bool TreeBuilder::step() {
  M.safepoint();
  int Root = buildTree(Depth);
  if (Root < 0) {
    // Exhausted mid-build: drop partial work.
    while (M.numRoots() > KeepTrees)
      M.discard(M.numRoots() - 1);
    return false;
  }
  while (M.numRoots() > KeepTrees)
    M.discard(Rng.nextBelow(M.numRoots()));
  return true;
}

void TreeBuilder::teardown() {
  while (M.numRoots() > 0)
    M.discard(0);
}

//===----------------------------------------------------------------------===//
// GraphMutator
//===----------------------------------------------------------------------===//

GraphMutator::GraphMutator(MutatorContext &M, uint64_t Seed,
                           unsigned WorkingSet)
    : M(M), Rng(Seed), WorkingSet(WorkingSet) {}

bool GraphMutator::step() {
  M.safepoint();
  size_t N = M.numRoots();
  if (N < WorkingSet) {
    return M.alloc() >= 0;
  }
  uint64_t Pick = Rng.nextBelow(100);
  if (Pick < 60 && N >= 2) {
    // Rewire a random edge: both barriers fire.
    uint32_t F = static_cast<uint32_t>(Rng.nextBelow(M.config().NumFields));
    M.store(Rng.nextBelow(N), Rng.nextBelow(N), F);
    return true;
  }
  if (Pick < 80) {
    // Chase an edge into the roots, then trim.
    int Idx = M.load(Rng.nextBelow(N), 0);
    if (Idx >= 0 && M.numRoots() > WorkingSet)
      M.discard(static_cast<size_t>(Idx));
    return true;
  }
  // Replace a working-set member.
  M.discard(Rng.nextBelow(N));
  return M.alloc() >= 0;
}

void GraphMutator::teardown() {
  while (M.numRoots() > 0)
    M.discard(0);
}

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

std::unique_ptr<Workload> tsogc::wl::makeWorkload(const std::string &Name,
                                                  MutatorContext &M,
                                                  uint64_t Seed) {
  if (Name == "tree")
    return std::make_unique<TreeBuilder>(M, Seed);
  if (Name == "graph")
    return std::make_unique<GraphMutator>(M, Seed);
  return std::make_unique<ListChurn>(M, Seed);
}
