//===- observe/Metrics.cpp -------------------------------------------------===//

#include "observe/Metrics.h"

#include "support/Assert.h"

#include <algorithm>

using namespace tsogc::observe;

const char *tsogc::observe::metricKindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "unknown";
}

Metric &MetricsRegistry::upsert(const std::string &Name, MetricKind Kind) {
  auto It = IndexOf.find(Name);
  if (It != IndexOf.end()) {
    Metric &M = Metrics[It->second];
    TSOGC_CHECK(M.Kind == Kind, "metric re-registered with a different kind");
    return M;
  }
  IndexOf.emplace(Name, Metrics.size());
  Metrics.emplace_back();
  Metrics.back().Name = Name;
  Metrics.back().Kind = Kind;
  return Metrics.back();
}

void MetricsRegistry::counter(const std::string &Name, uint64_t Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  upsert(Name, MetricKind::Counter).Counter = Value;
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  upsert(Name, MetricKind::Counter).Counter += Delta;
}

void MetricsRegistry::gauge(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  upsert(Name, MetricKind::Gauge).Gauge = Value;
}

void MetricsRegistry::observeSample(const std::string &Name, double Value,
                                    double Lo, double Hi,
                                    unsigned NumBuckets) {
  TSOGC_CHECK(Hi > Lo && NumBuckets > 0, "bad histogram bounds");
  std::lock_guard<std::mutex> Lock(Mutex);
  Metric &M = upsert(Name, MetricKind::Histogram);
  HistogramData &H = M.Hist;
  if (H.Buckets.empty()) {
    H.Lo = Lo;
    H.Hi = Hi;
    H.Buckets.assign(NumBuckets, 0);
  }
  if (Value < H.Lo) {
    ++H.Underflow;
  } else if (Value >= H.Hi) {
    ++H.Overflow;
  } else {
    auto I = static_cast<size_t>((Value - H.Lo) / (H.Hi - H.Lo) *
                                 static_cast<double>(H.Buckets.size()));
    ++H.Buckets[std::min(I, H.Buckets.size() - 1)];
  }
  if (H.Count == 0) {
    H.Min = H.Max = Value;
  } else {
    H.Min = std::min(H.Min, Value);
    H.Max = std::max(H.Max, Value);
  }
  ++H.Count;
  H.Sum += Value;
}

std::vector<Metric> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Metrics;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Metrics.empty();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Metrics.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Metrics.clear();
  IndexOf.clear();
}
