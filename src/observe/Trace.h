//===- observe/Trace.h - Low-overhead GC event tracing --------------------===//
///
/// \file
/// Typed event tracing shared by the real runtime and the model explorer:
/// each traced thread owns a single-producer lock-free ring buffer of
/// fixed-size TraceEvent records stamped with steady-clock nanoseconds.
/// Recording is one relaxed index load, one struct store, and one release
/// index store — cheap enough to sit inside the write barriers.
///
/// When tracing is disabled (RtConfig::Trace off) no buffers exist and every
/// hook point reduces to a single null-pointer test via trace(); defining
/// TSOGC_DISABLE_TRACE removes even that branch at compile time.
///
/// Buffers are rings: when a producer outruns the capacity the oldest
/// events are overwritten (dropped() reports how many). Readers must only
/// snapshot at quiescence — after the traced threads have stopped or
/// between collection cycles — which is when exports happen.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_OBSERVE_TRACE_H
#define TSOGC_OBSERVE_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tsogc::observe {

/// What happened. Payload fields A/B and Arg are event-specific; see
/// docs/OBSERVABILITY.md for the full schema.
enum class EventKind : uint8_t {
  CycleBegin,        ///< Collector: cycle started. A = cycle ordinal.
  CycleEnd,          ///< Collector: cycle finished. A = objects freed.
  PhaseTransition,   ///< Collector: shared phase store. Arg = new RtPhase.
  HandshakeRequest,  ///< A = sequence, B = slots addressed, Arg = RtHsType.
  HandshakeAck,      ///< A = sequence, Arg = RtHsType. Mutator side: this
                     ///< thread acknowledged; collector side: round done.
  BarrierMark,       ///< Mutator write barrier won a mark. A = ref.
  Alloc,             ///< A = ref, Arg = allocation mark flag.
  TlabRefill,        ///< Mutator claimed a TLAB run. A = run base, B = len.
  Free,              ///< Sweep freed an object. A = ref.
  SweepBatch,        ///< A = objects freed in batch, B = objects scanned.
  MarkBegin,         ///< Collector: marking loop entered.
  MarkEnd,           ///< Collector: marking loop terminated. A = marked.
  ParkBegin,         ///< Mutator parked (STW baseline). A = sequence.
  ParkEnd,           ///< Mutator released. A = resuming sequence.
  FrontierProgress,  ///< Explorer worker: A = states visited (truncated to
                     ///< 32 bits), B = current batch size.
  MarkWorkerBegin,   ///< Mark worker entered a drain round. A = worker id,
                     ///< B = round ordinal within the cycle.
  MarkWorkerEnd,     ///< Mark worker went idle for the round. A = worker
                     ///< id, B = objects scanned so far this cycle.
  SnapshotBegin,     ///< Observatory: stop window opening. A = snapshot
                     ///< ordinal, Arg = RtHsBoundary.
  SnapshotEnd,       ///< Observatory: checks done, world resumed. A = new
                     ///< violations, B = window ns (saturated), Arg =
                     ///< RtHsBoundary.
  InvariantViolation, ///< Observatory: a §3.2 check failed. A = violation
                      ///< ordinal, B = offending ref (or ~0), Arg =
                      ///< RtHsBoundary.
};

/// Human-readable name for an event kind (stable; part of the export
/// schema).
const char *eventKindName(EventKind K);

/// One traced event: 24 bytes, POD.
struct TraceEvent {
  uint64_t TimeNs = 0; ///< steady_clock nanoseconds since epoch.
  uint32_t A = 0;      ///< Primary payload (ref / seq / count).
  uint32_t B = 0;      ///< Secondary payload.
  uint16_t Tid = 0;    ///< Logical thread: mutator index, CollectorTid, …
  EventKind Kind = EventKind::CycleBegin;
  uint8_t Arg = 0;     ///< Small payload (phase / handshake type / flag).
};

/// Logical thread id of the collector in trace output (mutator slots use
/// their registry index; explorer workers their worker index).
inline constexpr uint16_t CollectorTid = 0xffff;

/// Logical thread ids of the collector's mark workers: worker W records
/// under MarkWorkerTidBase + W (worker 0 is the collector thread itself
/// and shares CollectorTid).
inline constexpr uint16_t MarkWorkerTidBase = 0xff00;

/// Steady-clock nanoseconds (the single clock all events share).
uint64_t traceNowNs();

/// Single-producer ring buffer of TraceEvents. One writer thread calls
/// record(); readers snapshot at quiescence.
class TraceBuffer {
public:
  /// \p CapacityPow2 is rounded up to a power of two (min 64).
  TraceBuffer(uint16_t Tid, size_t CapacityPow2);

  uint16_t tid() const { return Tid; }

  /// Append one event (producer thread only).
  void record(EventKind K, uint32_t A = 0, uint32_t B = 0, uint8_t Arg = 0) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    TraceEvent &E = Ring[H & Mask];
    E.TimeNs = traceNowNs();
    E.A = A;
    E.B = B;
    E.Tid = Tid;
    E.Kind = K;
    E.Arg = Arg;
    Head.store(H + 1, std::memory_order_release);
  }

  /// Total events ever recorded (monotonic).
  uint64_t recorded() const { return Head.load(std::memory_order_acquire); }

  /// Events lost to ring wraparound.
  uint64_t dropped() const {
    uint64_t H = recorded();
    return H > Ring.size() ? H - Ring.size() : 0;
  }

  /// Retained events, oldest first. Only meaningful at quiescence (no
  /// concurrent record()); a racing producer can tear the oldest slots.
  std::vector<TraceEvent> snapshot() const;

private:
  std::vector<TraceEvent> Ring;
  uint64_t Mask;
  uint16_t Tid;
  std::atomic<uint64_t> Head{0};
};

/// The hook-point primitive: a no-op when the thread has no buffer (tracing
/// disabled), a ring append otherwise.
#ifdef TSOGC_DISABLE_TRACE
inline void trace(TraceBuffer *, EventKind, uint32_t = 0, uint32_t = 0,
                  uint8_t = 0) {}
#else
inline void trace(TraceBuffer *Buf, EventKind K, uint32_t A = 0,
                  uint32_t B = 0, uint8_t Arg = 0) {
  if (Buf)
    Buf->record(K, A, B, Arg);
}
#endif

/// Owns the per-thread buffers of one traced subsystem (a runtime instance
/// or an explorer run). Buffer creation is mutex-guarded; recording is not.
class TraceSink {
public:
  explicit TraceSink(size_t BufferCapacity = 1u << 14)
      : Capacity(BufferCapacity) {}

  /// Create (and own) a buffer for logical thread \p Tid.
  TraceBuffer *createBuffer(uint16_t Tid);

  /// All buffers created so far (stable pointers; buffers are never
  /// destroyed before the sink).
  std::vector<const TraceBuffer *> buffers() const;

  /// Sum of events recorded / dropped across buffers.
  uint64_t totalRecorded() const;
  uint64_t totalDropped() const;

private:
  mutable std::mutex Mutex;
  size_t Capacity;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
};

} // namespace tsogc::observe

#endif // TSOGC_OBSERVE_TRACE_H
