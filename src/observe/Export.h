//===- observe/Export.h - JSON export of metrics and traces ---------------===//
///
/// \file
/// Machine-readable output for the observability layer:
///
///   * metricsToJson — the stable, schema-versioned document run_benches.sh
///     writes to BENCH_*.json (schema "tsogc-bench-v1");
///   * traceToChromeJson — a Chrome trace_event file (load in
///     chrome://tracing or Perfetto) rendering collector phases and
///     handshakes as duration slices and everything else as instants;
///   * validateJson — a minimal structural JSON parser used by tests and
///     tooling to reject malformed output without external dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_OBSERVE_EXPORT_H
#define TSOGC_OBSERVE_EXPORT_H

#include "observe/Metrics.h"
#include "observe/Trace.h"

#include <string>

namespace tsogc::observe {

/// Schema tag embedded in every metrics export; bump on breaking change.
inline constexpr const char *BenchSchema = "tsogc-bench-v1";

/// Schema tag for the raw (non-Chrome) trace export.
inline constexpr const char *TraceSchema = "tsogc-trace-v1";

/// Render the registry as one JSON document:
/// {"schema":"tsogc-bench-v1","name":<Name>,"metrics":{...}}.
std::string metricsToJson(const MetricsRegistry &Registry,
                          const std::string &Name);

/// Render every buffer in the sink in Chrome trace_event format. Call at
/// quiescence only (see TraceBuffer::snapshot).
std::string traceToChromeJson(const TraceSink &Sink);

/// Register the sink's own health counters into \p Reg:
/// "<Prefix>recorded_total", "<Prefix>dropped_total" (ring-wraparound loss;
/// non-zero means exported traces are evidence with holes — run_benches.sh
/// warns on it) and "<Prefix>buffers". Call at quiescence like any export.
void exportTraceMetrics(const TraceSink &Sink, MetricsRegistry &Reg,
                        const std::string &Prefix = "trace.");

/// Structural validation: true iff \p Text is one complete JSON value.
/// Accepts the full JSON grammar; no semantic interpretation.
bool validateJson(const std::string &Text);

/// Write \p Content to \p Path (truncating). Returns false on I/O error.
bool writeTextFile(const std::string &Path, const std::string &Content);

} // namespace tsogc::observe

#endif // TSOGC_OBSERVE_EXPORT_H
