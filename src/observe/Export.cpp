//===- observe/Export.cpp --------------------------------------------------===//

#include "observe/Export.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>

using namespace tsogc;
using namespace tsogc::observe;

namespace {

std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size() + 2);
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string numJson(double V) {
  // %.17g round-trips doubles but prints NaN/Inf, which JSON forbids.
  if (V != V || V > 1.7e308 || V < -1.7e308)
    return "null";
  return format("%.17g", V);
}

std::string histJson(const HistogramData &H) {
  std::vector<std::string> Buckets;
  Buckets.reserve(H.Buckets.size());
  for (uint64_t B : H.Buckets)
    Buckets.push_back(format("%llu", static_cast<unsigned long long>(B)));
  return format("{\"lo\":%s,\"hi\":%s,\"buckets\":[%s],\"underflow\":%llu,"
                "\"overflow\":%llu,\"count\":%llu,\"sum\":%s,\"min\":%s,"
                "\"max\":%s}",
                numJson(H.Lo).c_str(), numJson(H.Hi).c_str(),
                join(Buckets, ",").c_str(),
                static_cast<unsigned long long>(H.Underflow),
                static_cast<unsigned long long>(H.Overflow),
                static_cast<unsigned long long>(H.Count),
                numJson(H.Sum).c_str(), numJson(H.Min).c_str(),
                numJson(H.Max).c_str());
}

} // namespace

std::string tsogc::observe::metricsToJson(const MetricsRegistry &Registry,
                                          const std::string &Name) {
  std::string Out = format("{\"schema\":\"%s\",\"name\":\"%s\",\"metrics\":{",
                           BenchSchema, jsonEscape(Name).c_str());
  bool First = true;
  for (const Metric &M : Registry.snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("\"%s\":{\"kind\":\"%s\",", jsonEscape(M.Name).c_str(),
                  metricKindName(M.Kind));
    switch (M.Kind) {
    case MetricKind::Counter:
      Out += format("\"value\":%llu}",
                    static_cast<unsigned long long>(M.Counter));
      break;
    case MetricKind::Gauge:
      Out += format("\"value\":%s}", numJson(M.Gauge).c_str());
      break;
    case MetricKind::Histogram:
      Out += format("\"value\":%s}", histJson(M.Hist).c_str());
      break;
    }
  }
  Out += "}}";
  return Out;
}

std::string tsogc::observe::traceToChromeJson(const TraceSink &Sink) {
  // Merge-and-sort all buffers so the output is stable and viewers that
  // care about event order (B/E nesting) are happy.
  std::vector<TraceEvent> Events;
  for (const TraceBuffer *B : Sink.buffers()) {
    std::vector<TraceEvent> S = B->snapshot();
    Events.insert(Events.end(), S.begin(), S.end());
  }
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &X, const TraceEvent &Y) {
                     return X.TimeNs < Y.TimeNs;
                   });
  uint64_t Base = Events.empty() ? 0 : Events.front().TimeNs;

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    const char *Ph = "i";
    const char *Name = eventKindName(E.Kind);
    switch (E.Kind) {
    case EventKind::CycleBegin:
      Ph = "B";
      Name = "cycle";
      break;
    case EventKind::CycleEnd:
      Ph = "E";
      Name = "cycle";
      break;
    case EventKind::MarkBegin:
      Ph = "B";
      Name = "mark";
      break;
    case EventKind::MarkEnd:
      Ph = "E";
      Name = "mark";
      break;
    case EventKind::ParkBegin:
      Ph = "B";
      Name = "park";
      break;
    case EventKind::ParkEnd:
      Ph = "E";
      Name = "park";
      break;
    case EventKind::MarkWorkerBegin:
      Ph = "B";
      Name = "mark_worker";
      break;
    case EventKind::MarkWorkerEnd:
      Ph = "E";
      Name = "mark_worker";
      break;
    case EventKind::SnapshotBegin:
      Ph = "B";
      Name = "snapshot";
      break;
    case EventKind::SnapshotEnd:
      Ph = "E";
      Name = "snapshot";
      break;
    default:
      break;
    }
    if (!First)
      Out += ",";
    First = false;
    double TsUs = static_cast<double>(E.TimeNs - Base) / 1000.0;
    Out += format("{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,"
                  "\"tid\":%u",
                  Name, Ph, TsUs, E.Tid);
    if (std::string(Ph) == "i")
      Out += ",\"s\":\"t\"";
    Out += format(",\"args\":{\"a\":%u,\"b\":%u,\"arg\":%u}}", E.A, E.B,
                  E.Arg);
  }
  Out += format("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":"
                "\"%s\",\"dropped\":%llu}}",
                TraceSchema,
                static_cast<unsigned long long>(Sink.totalDropped()));
  return Out;
}

void tsogc::observe::exportTraceMetrics(const TraceSink &Sink,
                                        MetricsRegistry &Reg,
                                        const std::string &Prefix) {
  Reg.counter(Prefix + "recorded_total", Sink.totalRecorded());
  Reg.counter(Prefix + "dropped_total", Sink.totalDropped());
  Reg.counter(Prefix + "buffers",
              static_cast<uint64_t>(Sink.buffers().size()));
}

//===-- Minimal structural JSON parser ------------------------------------===//

namespace {

struct JsonParser {
  const char *P;
  const char *End;
  unsigned Depth = 0;
  static constexpr unsigned MaxDepth = 256;

  void ws() {
    while (P < End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool lit(const char *S) {
    size_t N = std::char_traits<char>::length(S);
    if (static_cast<size_t>(End - P) < N ||
        std::char_traits<char>::compare(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }

  bool string() {
    if (P >= End || *P != '"')
      return false;
    ++P;
    while (P < End) {
      unsigned char C = static_cast<unsigned char>(*P);
      if (C == '"') {
        ++P;
        return true;
      }
      if (C == '\\') {
        ++P;
        if (P >= End)
          return false;
        char E = *P;
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P >= End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
        ++P;
      } else if (C < 0x20) {
        return false;
      } else {
        ++P;
      }
    }
    return false;
  }

  bool number() {
    const char *Start = P;
    if (P < End && *P == '-')
      ++P;
    if (P >= End || !std::isdigit(static_cast<unsigned char>(*P)))
      return false;
    while (P < End && std::isdigit(static_cast<unsigned char>(*P)))
      ++P;
    if (P < End && *P == '.') {
      ++P;
      if (P >= End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P < End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    if (P < End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P < End && (*P == '+' || *P == '-'))
        ++P;
      if (P >= End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P < End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    return P > Start;
  }

  bool value() {
    if (++Depth > MaxDepth)
      return false;
    ws();
    bool Ok = false;
    if (P >= End) {
      Ok = false;
    } else if (*P == '{') {
      Ok = object();
    } else if (*P == '[') {
      Ok = array();
    } else if (*P == '"') {
      Ok = string();
    } else if (lit("true") || lit("false") || lit("null")) {
      Ok = true;
    } else {
      Ok = number();
    }
    --Depth;
    return Ok;
  }

  bool object() {
    ++P; // '{'
    ws();
    if (P < End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      ws();
      if (!string())
        return false;
      ws();
      if (P >= End || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      ws();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++P; // '['
    ws();
    if (P < End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      ws();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
};

} // namespace

bool tsogc::observe::validateJson(const std::string &Text) {
  JsonParser J{Text.data(), Text.data() + Text.size()};
  if (!J.value())
    return false;
  J.ws();
  return J.P == J.End;
}

bool tsogc::observe::writeTextFile(const std::string &Path,
                                   const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Content << "\n";
  return static_cast<bool>(Out);
}
