//===- observe/Metrics.h - Named counters, gauges and histograms ----------===//
///
/// \file
/// A registry of named metrics that the runtime's stat structs (RtStats,
/// CycleStats, MutStats) and the explorer's ExploreResult register into,
/// replacing the per-bench ad-hoc counter plumbing. Insertion order is
/// preserved so exports are stable and diffable; access is mutex-guarded
/// (registration happens at reporting time, not on hot paths — hot paths
/// use the plain stat structs and the trace ring).
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_OBSERVE_METRICS_H
#define TSOGC_OBSERVE_METRICS_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsogc::observe {

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

const char *metricKindName(MetricKind K);

/// Fixed-bucket histogram payload (mirrors support/Histogram, flattened
/// for export).
struct HistogramData {
  double Lo = 0.0;
  double Hi = 0.0;
  std::vector<uint64_t> Buckets;
  uint64_t Underflow = 0;
  uint64_t Overflow = 0;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

struct Metric {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Counter = 0;
  double Gauge = 0.0;
  HistogramData Hist;
};

class MetricsRegistry {
public:
  /// Set a monotonic counter to an absolute value.
  void counter(const std::string &Name, uint64_t Value);

  /// Accumulate into a counter.
  void addCounter(const std::string &Name, uint64_t Delta);

  /// Set a point-in-time gauge.
  void gauge(const std::string &Name, double Value);

  /// Add one sample to a histogram over [Lo, Hi) with \p NumBuckets
  /// equal-width buckets (bounds are fixed by the first call per name).
  void observeSample(const std::string &Name, double Value, double Lo,
                     double Hi, unsigned NumBuckets);

  /// Copy out every metric in registration order.
  std::vector<Metric> snapshot() const;

  bool empty() const;
  size_t size() const;
  void clear();

private:
  Metric &upsert(const std::string &Name, MetricKind Kind);

  mutable std::mutex Mutex;
  std::vector<Metric> Metrics;
  std::unordered_map<std::string, size_t> IndexOf;
};

} // namespace tsogc::observe

#endif // TSOGC_OBSERVE_METRICS_H
