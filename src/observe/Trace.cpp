//===- observe/Trace.cpp ---------------------------------------------------===//

#include "observe/Trace.h"

#include <chrono>

using namespace tsogc::observe;

const char *tsogc::observe::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::CycleBegin:
    return "cycle_begin";
  case EventKind::CycleEnd:
    return "cycle_end";
  case EventKind::PhaseTransition:
    return "phase_transition";
  case EventKind::HandshakeRequest:
    return "handshake_request";
  case EventKind::HandshakeAck:
    return "handshake_ack";
  case EventKind::BarrierMark:
    return "barrier_mark";
  case EventKind::Alloc:
    return "alloc";
  case EventKind::TlabRefill:
    return "tlab_refill";
  case EventKind::Free:
    return "free";
  case EventKind::SweepBatch:
    return "sweep_batch";
  case EventKind::MarkBegin:
    return "mark_begin";
  case EventKind::MarkEnd:
    return "mark_end";
  case EventKind::ParkBegin:
    return "park_begin";
  case EventKind::ParkEnd:
    return "park_end";
  case EventKind::FrontierProgress:
    return "frontier_progress";
  case EventKind::MarkWorkerBegin:
    return "mark_worker_begin";
  case EventKind::MarkWorkerEnd:
    return "mark_worker_end";
  case EventKind::SnapshotBegin:
    return "snapshot_begin";
  case EventKind::SnapshotEnd:
    return "snapshot_end";
  case EventKind::InvariantViolation:
    return "invariant_violation";
  }
  return "unknown";
}

uint64_t tsogc::observe::traceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

size_t roundUpPow2(size_t N) {
  size_t P = 64;
  while (P < N)
    P <<= 1;
  return P;
}

} // namespace

TraceBuffer::TraceBuffer(uint16_t Tid, size_t CapacityPow2)
    : Ring(roundUpPow2(CapacityPow2)), Mask(Ring.size() - 1), Tid(Tid) {}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  uint64_t H = Head.load(std::memory_order_acquire);
  uint64_t N = H < Ring.size() ? H : Ring.size();
  std::vector<TraceEvent> Out;
  Out.reserve(N);
  for (uint64_t I = H - N; I < H; ++I)
    Out.push_back(Ring[I & Mask]);
  return Out;
}

TraceBuffer *TraceSink::createBuffer(uint16_t Tid) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Buffers.push_back(std::make_unique<TraceBuffer>(Tid, Capacity));
  return Buffers.back().get();
}

std::vector<const TraceBuffer *> TraceSink::buffers() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<const TraceBuffer *> Out;
  Out.reserve(Buffers.size());
  for (const auto &B : Buffers)
    Out.push_back(B.get());
  return Out;
}

uint64_t TraceSink::totalRecorded() const {
  uint64_t Sum = 0;
  for (const TraceBuffer *B : buffers())
    Sum += B->recorded();
  return Sum;
}

uint64_t TraceSink::totalDropped() const {
  uint64_t Sum = 0;
  for (const TraceBuffer *B : buffers())
    Sum += B->dropped();
  return Sum;
}
