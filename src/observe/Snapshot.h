//===- observe/Snapshot.h - Immutable runtime heap/phase snapshots --------===//
///
/// \file
/// The data contract between the live collector and the §3.2 invariant
/// suite: an RtSnapshot is a plain-data copy of everything the abstract
/// model quantifies over — heap headers and fields, the collector control
/// variables (fM, fA, phase), every root set, and every grey worklist
/// (collector chain, per-mutator private chains, shared transfer stripes).
///
/// Snapshots are taken only while the world is quiescent: during an existing
/// park, inside a brief stop-the-mutators window at a handshake boundary, or
/// with the single-threaded HandshakeServicer hook in force. Mutators park
/// inside their safepoint handlers, never in the middle of a Figure 6
/// operation, and the park acknowledgement fences drain their TSO store
/// buffers — so by the time the copy runs, the buffered-store components of
/// the model invariants (marked_insertions / marked_deletions over pending
/// writes) have degenerated to their committed-heap forms. That is what lets
/// invariants/RtAdapter.h evaluate the suite over this struct alone.
///
/// This header deliberately depends on nothing but the standard library: it
/// is consumed both by src/runtime/ (the producer) and src/invariants/ (the
/// checker), and must not drag either one's dependencies into the other.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_OBSERVE_SNAPSHOT_H
#define TSOGC_OBSERVE_SNAPSHOT_H

#include <cstdint>
#include <vector>

namespace tsogc::observe {

/// Where in the cycle a snapshot was taken. The H1..H6 values mirror the
/// model's HsRound ghost (gcmodel/GcTypes.h): boundary HK means "the round-K
/// handshake just completed, every mutator acknowledged it". SweepBegin and
/// CycleEnd are the two configurable cycle points outside the handshake
/// ladder; Audit and Stw tag captures made for GcRuntime::auditHeap and
/// inside a stop-the-world cycle's existing park.
enum class RtHsBoundary : uint8_t {
  H1Idle = 0,  ///< After the first no-op round (phase Idle, pre-flip).
  H2FlipFM,    ///< After the round acknowledging the fM flip.
  H3PhaseInit, ///< After the round acknowledging phase := Init.
  H4PhaseMark, ///< After the round acknowledging phase := Mark and fA.
  H5GetRoots,  ///< After the get-roots round: all roots marked.
  H6GetWork,   ///< After a get-work termination round.
  SweepBegin,  ///< Marking terminated; the sweep has not freed anything yet.
  CycleEnd,    ///< After the sweep, phase back to Idle.
  Audit,       ///< GcRuntime::auditHeap capture (any phase).
  Stw,         ///< Inside a stop-the-world cycle's park window.
};

/// Stable display name ("h5-get-roots", "sweep-begin", ...).
inline const char *rtHsBoundaryName(RtHsBoundary B) {
  switch (B) {
  case RtHsBoundary::H1Idle:
    return "h1-idle";
  case RtHsBoundary::H2FlipFM:
    return "h2-flip-fm";
  case RtHsBoundary::H3PhaseInit:
    return "h3-phase-init";
  case RtHsBoundary::H4PhaseMark:
    return "h4-phase-mark";
  case RtHsBoundary::H5GetRoots:
    return "h5-get-roots";
  case RtHsBoundary::H6GetWork:
    return "h6-get-work";
  case RtHsBoundary::SweepBegin:
    return "sweep-begin";
  case RtHsBoundary::CycleEnd:
    return "cycle-end";
  case RtHsBoundary::Audit:
    return "audit";
  case RtHsBoundary::Stw:
    return "stw";
  }
  return "unknown";
}

/// Null reference encoding inside a snapshot (matches the runtime's RtNull).
inline constexpr uint32_t RtSnapNull = ~0u;

/// One mutator's contribution: its shadow-stack roots (epochs dropped — the
/// abstraction has no epochs) and its private grey worklist, head first.
struct RtSnapshotMutator {
  uint32_t Index = 0;
  std::vector<uint32_t> Roots;
  std::vector<uint32_t> Worklist;
};

/// The immutable capture. Heap state is dense (indexed by slab ref) so the
/// copy is two memcpy-shaped loops; worklists are materialized by walking
/// the intrusive WorkNext chains, which is safe precisely because the world
/// is quiescent.
struct RtSnapshot {
  RtHsBoundary Boundary = RtHsBoundary::Audit;
  uint64_t Cycle = 0;  ///< Completed-cycle count at capture time.
  uint64_t TimeNs = 0; ///< steady-clock capture timestamp.

  // Collector control variables (the three shared variables of Figure 2),
  // read on the collector thread — the only writer.
  bool FM = false;
  bool FA = false;
  uint8_t Phase = 0; ///< Numeric RtPhase: 0 Idle, 1 Init, 2 Mark, 3 Sweep.

  /// The §4 insertion-barrier elision is configured: the strong tricolor
  /// invariant is deliberately given up for the weak one (Figure 1).
  bool InsertionElide = false;

  uint32_t Capacity = 0;
  uint32_t NumFields = 0;

  /// Dense heap copy, all sized by Capacity (Fields by Capacity*NumFields).
  std::vector<uint8_t> Allocated; ///< 0/1 per slab slot.
  std::vector<uint8_t> Marks;     ///< Raw mark bit per slot.
  std::vector<uint32_t> Fields;   ///< RtSnapNull for null fields.

  std::vector<RtSnapshotMutator> Mutators;
  std::vector<uint32_t> CollectorWorklist;
  std::vector<std::vector<uint32_t>> SharedStripes;

  /// Cost of the copy-out itself (the full stop window, including the
  /// park/resume rounds around it, is accounted by the caller).
  uint64_t CaptureNs = 0;

  uint32_t fieldAt(uint32_t R, uint32_t F) const {
    return Fields[R * NumFields + F];
  }
  bool allocatedAt(uint32_t R) const {
    return R < Capacity && Allocated[R] != 0;
  }
};

} // namespace tsogc::observe

#endif // TSOGC_OBSERVE_SNAPSHOT_H
