//===- litmus/Litmus.h - x86-TSO litmus tests over CIMP -------------------===//
///
/// \file
/// Classic litmus tests (SB, MP, LB, SB+MFENCE, CoRR) expressed as CIMP
/// processes against the same memory-system process shape as the GC model's
/// Figure 9 encoding. Enumerating their final-state outcomes validates the
/// TSO substrate against the published x86-TSO results of Sewell et al.:
///
///   SB  (store buffering):  r0 = r1 = 0 allowed under TSO, not under SC.
///   SB+MFENCE:              r0 = r1 = 0 forbidden.
///   MP  (message passing):  r0 = 1 ∧ r1 = 0 forbidden under TSO
///                           (stores commit in order; loads are not
///                            reordered with older loads).
///   LB  (load buffering):   r0 = 1 ∧ r1 = 1 forbidden (no load-store
///                            reordering on TSO).
///   CoRR (read coherence):  a reader never sees a location go backwards.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_LITMUS_LITMUS_H
#define TSOGC_LITMUS_LITMUS_H

#include <cstdint>
#include <tuple>
#include <set>
#include <string>
#include <vector>

namespace tsogc {

/// One hardware thread of a litmus test: straight-line instructions.
struct LitmusInstr {
  enum class Kind : uint8_t { Store, Load, Mfence } K = Kind::Store;
  uint8_t Var = 0;   ///< Global variable index.
  uint16_t Val = 0;  ///< Store value.
  uint8_t Reg = 0;   ///< Load destination register.
};

struct LitmusThread {
  std::vector<LitmusInstr> Code;
};

/// A litmus test: named threads plus the number of registers per thread.
struct LitmusTest {
  std::string Name;
  unsigned NumVars = 2;
  unsigned NumRegsPerThread = 2;
  std::vector<LitmusThread> Threads;
};

/// A final outcome: per-thread register files plus the final shared-memory
/// values, observed after all threads terminated and all buffers drained.
struct LitmusOutcome {
  std::vector<std::vector<uint16_t>> Regs;
  std::vector<uint16_t> FinalMem;

  bool operator==(const LitmusOutcome &O) const = default;
  bool operator<(const LitmusOutcome &O) const {
    return std::tie(Regs, FinalMem) < std::tie(O.Regs, O.FinalMem);
  }
};

/// Enumerate all reachable final outcomes of \p T.
/// \p BufferBound 0 selects SC mode (no store buffers).
std::set<LitmusOutcome> enumerateOutcomes(const LitmusTest &T,
                                          unsigned BufferBound);

/// Number of distinct states visited by the last enumerateOutcomes-style
/// run, for benchmark reporting.
struct LitmusStats {
  uint64_t States = 0;
  uint64_t Transitions = 0;
};
std::set<LitmusOutcome> enumerateOutcomes(const LitmusTest &T,
                                          unsigned BufferBound,
                                          LitmusStats &Stats);

/// The classic tests.
LitmusTest makeSB();        ///< Store buffering.
LitmusTest makeSBFenced();  ///< SB with MFENCE between store and load.
LitmusTest makeMP();        ///< Message passing.
LitmusTest makeLB();        ///< Load buffering.
LitmusTest makeCoRR();      ///< Coherent read-read.
LitmusTest makeIRIW();      ///< Independent reads of independent writes:
                            ///< the two readers may not disagree on the
                            ///< order of the writes (TSO is multi-copy
                            ///< atomic).
LitmusTest makeR();         ///< R: write-write vs write-read ordering.
LitmusTest makeS();         ///< S: store ordering against a read.
LitmusTest make2Plus2W();   ///< 2+2W: cross-located store pairs; the final
                            ///< values may not both be the *first* store
                            ///< of each thread (coherence + FIFO buffers).

/// Render an outcome as "t0:[r0=…,r1=…] t1:[…]".
std::string outcomeToString(const LitmusOutcome &O);

} // namespace tsogc

#endif // TSOGC_LITMUS_LITMUS_H
