//===- litmus/Litmus.cpp ---------------------------------------------------===//

#include "litmus/Litmus.h"

#include "cimp/System.h"
#include "support/Assert.h"
#include "support/StringUtils.h"
#include "tso/MemoryState.h"

#include <memory>
#include <unordered_set>
#include <variant>

using namespace tsogc;

namespace {

/// CIMP domain for litmus tests: each hardware thread has a register file
/// and a program counter baked into control state; the memory process wraps
/// MemoryState exactly as the GC model's system does.
struct LitmusLocal {
  std::vector<uint16_t> Regs;
  bool operator==(const LitmusLocal &O) const = default;
};

struct LitmusMem {
  MemoryState Mem;
  explicit LitmusMem(unsigned Threads, unsigned Vars, unsigned Bound)
      : Mem(Threads, Vars, /*NumRefs=*/1, /*NumFields=*/1, Bound) {}
  bool operator==(const LitmusMem &O) const = default;
};

struct LDomain {
  struct Request {
    ProcId From = 0;
    enum class Kind : uint8_t { Read, Write, Mfence, Drained } K = Kind::Read;
    uint8_t Var = 0;
    uint16_t Val = 0;
  };
  struct Response {
    uint16_t Val = 0;
  };
  using LocalState = std::variant<LitmusLocal, LitmusMem>;
};

using LProg = cimp::Program<LDomain>;

LitmusLocal &asThread(LDomain::LocalState &L) {
  auto *P = std::get_if<LitmusLocal>(&L);
  TSOGC_CHECK(P, "expected a litmus thread state");
  return *P;
}
const LitmusLocal &asThread(const LDomain::LocalState &L) {
  const auto *P = std::get_if<LitmusLocal>(&L);
  TSOGC_CHECK(P, "expected a litmus thread state");
  return *P;
}
const LitmusMem &asMem(const LDomain::LocalState &L) {
  const auto *P = std::get_if<LitmusMem>(&L);
  TSOGC_CHECK(P, "expected the litmus memory state");
  return *P;
}

void buildThread(LProg &Prog, const LitmusThread &T, ProcId Self) {
  std::vector<cimp::CmdId> Seq;
  for (const LitmusInstr &I : T.Code) {
    switch (I.K) {
    case LitmusInstr::Kind::Store:
      Seq.push_back(Prog.requestIgnore(
          format("t%u:store g%u=%u", Self, I.Var, I.Val),
          [Self, I](const LDomain::LocalState &) {
            return LDomain::Request{Self, LDomain::Request::Kind::Write,
                                    I.Var, I.Val};
          }));
      break;
    case LitmusInstr::Kind::Load:
      Seq.push_back(Prog.request(
          format("t%u:load r%u=g%u", Self, I.Reg, I.Var),
          [Self, I](const LDomain::LocalState &) {
            return LDomain::Request{Self, LDomain::Request::Kind::Read, I.Var,
                                    0};
          },
          [I](const LDomain::LocalState &L, const LDomain::Response &R,
              std::vector<LDomain::LocalState> &Out) {
            LDomain::LocalState Next = L;
            asThread(Next).Regs[I.Reg] = R.Val;
            Out.push_back(std::move(Next));
          }));
      break;
    case LitmusInstr::Kind::Mfence:
      Seq.push_back(Prog.requestIgnore(
          format("t%u:mfence", Self), [Self](const LDomain::LocalState &) {
            return LDomain::Request{Self, LDomain::Request::Kind::Mfence, 0,
                                    0};
          }));
      break;
    }
  }
  // Final barrier: a thread "retires" only when its buffer drained, so that
  // terminal states compare committed memory.
  Seq.push_back(Prog.requestIgnore(
      format("t%u:drain", Self), [Self](const LDomain::LocalState &) {
        return LDomain::Request{Self, LDomain::Request::Kind::Drained, 0, 0};
      }));
  Prog.setEntry(Prog.seq(std::move(Seq)));
}

void buildMemProcess(LProg &Prog, unsigned NumThreads) {
  cimp::CmdId Respond = Prog.response(
      "mem", [](const LDomain::Request &Req, const LDomain::LocalState &L,
                std::vector<std::pair<LDomain::LocalState, LDomain::Response>>
                    &Out) {
        const LitmusMem &S = asMem(L);
        switch (Req.K) {
        case LDomain::Request::Kind::Read: {
          if (S.Mem.isBlocked(Req.From))
            return;
          LDomain::Response R;
          R.Val = S.Mem.read(Req.From, MemLoc::globalVar(Req.Var)).Raw;
          Out.emplace_back(L, R);
          return;
        }
        case LDomain::Request::Kind::Write: {
          if (S.Mem.isBlocked(Req.From) || S.Mem.bufferFull(Req.From))
            return;
          LitmusMem Next = S;
          Next.Mem.write(Req.From, MemLoc::globalVar(Req.Var),
                         MemVal{Req.Val});
          Out.emplace_back(LDomain::LocalState(std::move(Next)),
                           LDomain::Response{});
          return;
        }
        case LDomain::Request::Kind::Mfence:
        case LDomain::Request::Kind::Drained:
          if (S.Mem.isBlocked(Req.From) || !S.Mem.bufferEmpty(Req.From))
            return;
          Out.emplace_back(L, LDomain::Response{});
          return;
        }
      });
  cimp::CmdId Commit = Prog.localOp(
      "mem:commit",
      [NumThreads](const LDomain::LocalState &L,
                   std::vector<LDomain::LocalState> &Out) {
        const LitmusMem &S = asMem(L);
        for (unsigned P = 0; P < NumThreads; ++P) {
          if (S.Mem.bufferEmpty(static_cast<ProcId>(P)) ||
              S.Mem.isBlocked(static_cast<ProcId>(P)))
            continue;
          LitmusMem Next = S;
          Next.Mem.commitOldest(static_cast<ProcId>(P));
          Out.push_back(LDomain::LocalState(std::move(Next)));
        }
      });
  Prog.setEntry(Prog.loop(Prog.choice({Respond, Commit})));
}

std::string encodeLitmus(const cimp::SystemState<LDomain> &S) {
  std::string Out;
  for (const auto &PS : S) {
    Out.push_back(static_cast<char>(PS.Stack.size()));
    for (cimp::CmdId Id : PS.Stack) {
      Out.push_back(static_cast<char>(Id & 0xff));
      Out.push_back(static_cast<char>(Id >> 8));
    }
    if (const auto *T = std::get_if<LitmusLocal>(&PS.Local)) {
      for (uint16_t R : T->Regs) {
        Out.push_back(static_cast<char>(R & 0xff));
        Out.push_back(static_cast<char>(R >> 8));
      }
    } else {
      asMem(PS.Local).Mem.encode(Out);
    }
  }
  return Out;
}

} // namespace

std::set<LitmusOutcome> tsogc::enumerateOutcomes(const LitmusTest &T,
                                                 unsigned BufferBound) {
  LitmusStats Stats;
  return enumerateOutcomes(T, BufferBound, Stats);
}

std::set<LitmusOutcome> tsogc::enumerateOutcomes(const LitmusTest &T,
                                                 unsigned BufferBound,
                                                 LitmusStats &Stats) {
  const unsigned N = static_cast<unsigned>(T.Threads.size());
  std::vector<std::unique_ptr<LProg>> Progs;
  for (unsigned I = 0; I < N; ++I) {
    Progs.push_back(std::make_unique<LProg>());
    buildThread(*Progs[I], T.Threads[I], static_cast<ProcId>(I));
  }
  Progs.push_back(std::make_unique<LProg>());
  buildMemProcess(*Progs.back(), N);

  std::vector<const LProg *> Ptrs;
  for (const auto &P : Progs)
    Ptrs.push_back(P.get());
  cimp::System<LDomain> Sys(std::move(Ptrs));

  std::vector<LDomain::LocalState> Locals;
  for (unsigned I = 0; I < N; ++I) {
    LitmusLocal L;
    L.Regs.assign(T.NumRegsPerThread, 0);
    Locals.emplace_back(std::move(L));
  }
  Locals.emplace_back(LitmusMem(N, T.NumVars, BufferBound));

  // Exhaustive DFS over the (finite) state space; record register files of
  // states where every thread has terminated.
  std::set<LitmusOutcome> Outcomes;
  std::unordered_set<std::string> Visited;
  std::vector<cimp::SystemState<LDomain>> Stack;
  Stack.push_back(Sys.initialState(std::move(Locals)));
  Visited.insert(encodeLitmus(Stack.back()));
  Stats = LitmusStats{};
  ++Stats.States;

  std::vector<cimp::Successor<LDomain>> Succs;
  while (!Stack.empty()) {
    cimp::SystemState<LDomain> S = std::move(Stack.back());
    Stack.pop_back();

    bool AllDone = true;
    for (unsigned I = 0; I < N; ++I)
      if (!S[I].terminated())
        AllDone = false;
    if (AllDone) {
      LitmusOutcome O;
      for (unsigned I = 0; I < N; ++I)
        O.Regs.push_back(asThread(S[I].Local).Regs);
      const LitmusMem &Mem = asMem(S[N].Local);
      for (unsigned V = 0; V < T.NumVars; ++V)
        O.FinalMem.push_back(
            Mem.Mem.memoryRead(MemLoc::globalVar(static_cast<uint8_t>(V)))
                .Raw);
      Outcomes.insert(std::move(O));
      continue;
    }

    Succs.clear();
    Sys.successors(S, Succs);
    for (auto &Succ : Succs) {
      ++Stats.Transitions;
      if (Visited.insert(encodeLitmus(Succ.State)).second) {
        ++Stats.States;
        Stack.push_back(std::move(Succ.State));
      }
    }
  }
  return Outcomes;
}

LitmusTest tsogc::makeSB() {
  LitmusTest T;
  T.Name = "SB";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}, {K::Load, 1, 0, 0}}},
      {{{K::Store, 1, 1, 0}, {K::Load, 0, 0, 0}}},
  };
  return T;
}

LitmusTest tsogc::makeSBFenced() {
  LitmusTest T;
  T.Name = "SB+mfence";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}, {K::Mfence, 0, 0, 0}, {K::Load, 1, 0, 0}}},
      {{{K::Store, 1, 1, 0}, {K::Mfence, 0, 0, 0}, {K::Load, 0, 0, 0}}},
  };
  return T;
}

LitmusTest tsogc::makeMP() {
  LitmusTest T;
  T.Name = "MP";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}, {K::Store, 1, 1, 0}}},
      {{{K::Load, 1, 0, 0}, {K::Load, 0, 0, 1}}},
  };
  return T;
}

LitmusTest tsogc::makeLB() {
  LitmusTest T;
  T.Name = "LB";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Load, 0, 0, 0}, {K::Store, 1, 1, 0}}},
      {{{K::Load, 1, 0, 0}, {K::Store, 0, 1, 0}}},
  };
  return T;
}

LitmusTest tsogc::makeCoRR() {
  LitmusTest T;
  T.Name = "CoRR";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}}},
      {{{K::Load, 0, 0, 0}, {K::Load, 0, 0, 1}}},
  };
  return T;
}

LitmusTest tsogc::makeR() {
  LitmusTest T;
  T.Name = "R";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}, {K::Store, 1, 1, 0}}},  // t0: x:=1; y:=1
      {{{K::Store, 1, 2, 0}, {K::Load, 0, 0, 0}}},   // t1: y:=2; r0:=x
  };
  return T;
}

LitmusTest tsogc::makeS() {
  LitmusTest T;
  T.Name = "S";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 2, 0}, {K::Store, 1, 1, 0}}},  // t0: x:=2; y:=1
      {{{K::Load, 1, 0, 0}, {K::Store, 0, 1, 0}}},   // t1: r0:=y; x:=1
  };
  return T;
}

LitmusTest tsogc::make2Plus2W() {
  LitmusTest T;
  T.Name = "2+2W";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}, {K::Store, 1, 2, 0}}},  // t0: x:=1; y:=2
      {{{K::Store, 1, 1, 0}, {K::Store, 0, 2, 0}}},  // t1: y:=1; x:=2
  };
  return T;
}

LitmusTest tsogc::makeIRIW() {
  LitmusTest T;
  T.Name = "IRIW";
  using K = LitmusInstr::Kind;
  T.Threads = {
      {{{K::Store, 0, 1, 0}}},                     // t0: x := 1
      {{{K::Store, 1, 1, 0}}},                     // t1: y := 1
      {{{K::Load, 0, 0, 0}, {K::Load, 1, 0, 1}}},  // t2: r0:=x; r1:=y
      {{{K::Load, 1, 0, 0}, {K::Load, 0, 0, 1}}},  // t3: r0:=y; r1:=x
  };
  return T;
}

std::string tsogc::outcomeToString(const LitmusOutcome &O) {
  std::vector<std::string> Threads;
  for (size_t T = 0; T < O.Regs.size(); ++T) {
    std::vector<std::string> Regs;
    for (size_t R = 0; R < O.Regs[T].size(); ++R)
      Regs.push_back(format("r%zu=%u", R, O.Regs[T][R]));
    Threads.push_back(format("t%zu:[%s]", T, join(Regs, ",").c_str()));
  }
  std::vector<std::string> Mem;
  for (size_t V = 0; V < O.FinalMem.size(); ++V)
    Mem.push_back(format("g%zu=%u", V, O.FinalMem[V]));
  return join(Threads, " ") + " mem:[" + join(Mem, ",") + "]";
}
