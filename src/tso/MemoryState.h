//===- tso/MemoryState.h - x86-TSO store buffers, lock, memory -----------===//
///
/// \file
/// The data state of the memory subsystem of Figure 9, following Sewell et
/// al.'s x86-TSO: one FIFO store buffer per hardware thread, a global bus
/// lock, and shared memory. Shared memory here is a set of global scalar
/// variables plus an embedded model Heap (object flags and fields are
/// ordinary memory cells subject to TSO, §3.1).
///
/// Deviations, both documented in DESIGN.md:
///  * store buffers are bounded by BufferBound to keep model instances
///    finite (a full buffer disables further writes until a commit);
///  * SC mode (BufferBound == 0) applies writes immediately, used as the
///    sequential-consistency ablation.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_TSO_MEMORYSTATE_H
#define TSOGC_TSO_MEMORYSTATE_H

#include "heap/Heap.h"
#include "tso/MemLoc.h"

#include <string>
#include <vector>

namespace tsogc {

/// Identifies a process/hardware thread in the model. The paper assumes
/// each software thread runs on its own core, i.e. owns a buffer (§4
/// "Representations").
using ProcId = uint8_t;

class MemoryState {
public:
  static constexpr int NoOwner = -1;

  /// \p NumProcs buffers; \p NumGlobals scalar cells; heap dimensions as in
  /// Heap. \p BufferBound caps each store buffer (0 = SC mode: stores
  /// commit immediately).
  MemoryState(unsigned NumProcs, unsigned NumGlobals, unsigned NumRefs,
              unsigned NumFields, unsigned BufferBound);

  unsigned numProcs() const { return static_cast<unsigned>(Buffers.size()); }
  bool scMode() const { return BufferBound == 0; }

  /// True iff \p P cannot take memory actions because another process holds
  /// the bus lock (Figure 9's not-blocked).
  bool isBlocked(ProcId P) const {
    return LockOwner != NoOwner && LockOwner != P;
  }

  bool bufferEmpty(ProcId P) const { return Buffers[P].empty(); }
  bool bufferFull(ProcId P) const {
    return !scMode() && Buffers[P].size() >= BufferBound;
  }
  const std::vector<PendingWrite> &buffer(ProcId P) const {
    return Buffers[P];
  }

  int lockOwner() const { return LockOwner; }
  bool lockHeldBy(ProcId P) const { return LockOwner == static_cast<int>(P); }

  /// TSO read: most recent pending write to \p Loc in P's own buffer, else
  /// shared memory. Requires !isBlocked(P).
  MemVal read(ProcId P, MemLoc Loc) const;

  /// TSO write: enqueue on P's buffer (or write through in SC mode).
  /// Requires !isBlocked(P) and !bufferFull(P).
  void write(ProcId P, MemLoc Loc, MemVal Val);

  /// Commit P's oldest pending write to shared memory (the system-internal
  /// sys-dequeue-write-buffer step). Requires a non-empty buffer and
  /// !isBlocked(P).
  void commitOldest(ProcId P);

  /// MFENCE/unlock enabling condition: P's buffer drained.
  bool canFence(ProcId P) const { return bufferEmpty(P); }

  /// Acquire/release the bus lock (locked instructions). acquire requires
  /// the lock free; release requires P to hold it with an empty buffer.
  void acquireLock(ProcId P);
  void releaseLock(ProcId P);

  /// Read/write that bypass the buffers (used by invariant checking to see
  /// the authoritative shared memory, never by modeled code).
  MemVal memoryRead(MemLoc Loc) const;
  void memoryWrite(MemLoc Loc, MemVal Val);

  /// Wholesale buffer/lock replacement, used only by the explorer's
  /// symmetry canonicalization (explore/Reduction.cpp) to rename mutators
  /// in a copied state — never by modeled code, which goes through
  /// write/commitOldest/acquireLock.
  void setBuffer(ProcId P, std::vector<PendingWrite> B) {
    Buffers[P] = std::move(B);
  }
  void setLockOwner(int Owner) { LockOwner = Owner; }

  /// The embedded heap (shared memory's object store).
  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }

  /// Count of reads/writes that addressed a freed object. Zero in every
  /// safe run; non-zero only in barrier-ablated configurations.
  uint64_t danglingAccesses() const { return DanglingAccesses; }

  /// Pending writes (all processes) that target \p Loc — used by invariants
  /// over insertions/deletions.
  std::vector<PendingWrite> pendingWritesTo(MemLoc Loc) const;

  /// Canonical byte encoding for visited-state sets.
  void encode(std::string &Out) const;

  bool operator==(const MemoryState &O) const;

private:
  Heap TheHeap;
  std::vector<uint16_t> Globals;
  std::vector<std::vector<PendingWrite>> Buffers;
  unsigned BufferBound;
  int LockOwner = NoOwner;
  uint64_t DanglingAccesses = 0;
};

} // namespace tsogc

#endif // TSOGC_TSO_MEMORYSTATE_H
