//===- tso/MemLoc.h - Memory locations and values for the TSO model ------===//
///
/// \file
/// Typed addresses and cell values for the x86-TSO memory subsystem
/// (Figure 9). The GC model puts the collector control variables (fA, fM,
/// phase) and all per-object state (mark flags, reference fields) under TSO
/// (§3.1); litmus tests use plain global variables. All three shapes are
/// covered by one MemLoc sum so one store-buffer mechanism serves both.
///
//===----------------------------------------------------------------------===//

#ifndef TSOGC_TSO_MEMLOC_H
#define TSOGC_TSO_MEMLOC_H

#include "heap/Ref.h"

#include <string>

namespace tsogc {

enum class MemLocKind : uint8_t {
  GlobalVar, ///< A named scalar (fA, fM, phase; x, y in litmus tests).
  ObjFlag,   ///< The mark flag of a heap object.
  ObjField,  ///< One reference field of a heap object.
};

/// An addressable memory cell.
struct MemLoc {
  MemLocKind Kind = MemLocKind::GlobalVar;
  uint8_t Var = 0;     ///< GlobalVar index.
  Ref R;               ///< ObjFlag/ObjField target.
  FieldId Field = 0;   ///< ObjField selector.

  static MemLoc globalVar(uint8_t V) {
    MemLoc L;
    L.Kind = MemLocKind::GlobalVar;
    L.Var = V;
    return L;
  }
  static MemLoc objFlag(Ref R) {
    MemLoc L;
    L.Kind = MemLocKind::ObjFlag;
    L.R = R;
    return L;
  }
  static MemLoc objField(Ref R, FieldId F) {
    MemLoc L;
    L.Kind = MemLocKind::ObjField;
    L.R = R;
    L.Field = F;
    return L;
  }

  bool operator==(const MemLoc &O) const = default;

  std::string toString() const;
};

/// A 16-bit cell value. Locations are typed by convention: booleans store
/// 0/1, references store Ref::raw(), small enums store their ordinal.
struct MemVal {
  uint16_t Raw = 0;

  static MemVal fromBool(bool B) { return MemVal{static_cast<uint16_t>(B)}; }
  static MemVal fromRef(Ref R) { return MemVal{R.raw()}; }
  static MemVal fromByte(uint8_t B) { return MemVal{B}; }

  bool asBool() const { return Raw != 0; }
  Ref asRef() const { return Ref::fromRaw(Raw); }
  uint8_t asByte() const { return static_cast<uint8_t>(Raw); }

  bool operator==(const MemVal &O) const = default;

  std::string toString() const;
};

/// One entry of a TSO store buffer.
struct PendingWrite {
  MemLoc Loc;
  MemVal Val;

  bool operator==(const PendingWrite &O) const = default;
};

} // namespace tsogc

#endif // TSOGC_TSO_MEMLOC_H
