//===- tso/MemoryState.cpp -------------------------------------------------===//

#include "tso/MemoryState.h"

#include "support/Assert.h"

using namespace tsogc;

MemoryState::MemoryState(unsigned NumProcs, unsigned NumGlobals,
                         unsigned NumRefs, unsigned NumFields,
                         unsigned BufferBound)
    : TheHeap(NumRefs, NumFields), Globals(NumGlobals, 0), Buffers(NumProcs),
      BufferBound(BufferBound) {
  TSOGC_CHECK(NumProcs > 0, "need at least one process");
}

MemVal MemoryState::read(ProcId P, MemLoc Loc) const {
  TSOGC_CHECK(!isBlocked(P), "read while blocked by the bus lock");
  // A load first consults the issuing thread's own store buffer: the most
  // recent pending store to the same location wins (§2.4).
  const auto &Buf = Buffers[P];
  for (auto It = Buf.rbegin(); It != Buf.rend(); ++It)
    if (It->Loc == Loc)
      return It->Val;
  return memoryRead(Loc);
}

void MemoryState::write(ProcId P, MemLoc Loc, MemVal Val) {
  TSOGC_CHECK(!isBlocked(P), "write while blocked by the bus lock");
  if (scMode()) {
    memoryWrite(Loc, Val);
    return;
  }
  TSOGC_CHECK(!bufferFull(P), "store buffer overflow (raise BufferBound)");
  Buffers[P].push_back(PendingWrite{Loc, Val});
}

void MemoryState::commitOldest(ProcId P) {
  TSOGC_CHECK(!Buffers[P].empty(), "no pending write to commit");
  TSOGC_CHECK(!isBlocked(P), "commit while blocked by the bus lock");
  PendingWrite W = Buffers[P].front();
  Buffers[P].erase(Buffers[P].begin());
  memoryWrite(W.Loc, W.Val);
}

void MemoryState::acquireLock(ProcId P) {
  TSOGC_CHECK(LockOwner == NoOwner, "bus lock already held");
  LockOwner = P;
}

void MemoryState::releaseLock(ProcId P) {
  TSOGC_CHECK(lockHeldBy(P), "releasing a lock the process does not hold");
  TSOGC_CHECK(bufferEmpty(P), "unlock requires a drained store buffer");
  LockOwner = NoOwner;
}

MemVal MemoryState::memoryRead(MemLoc Loc) const {
  switch (Loc.Kind) {
  case MemLocKind::GlobalVar:
    TSOGC_CHECK(Loc.Var < Globals.size(), "global variable out of range");
    return MemVal{Globals[Loc.Var]};
  case MemLocKind::ObjFlag:
    if (!TheHeap.isValid(Loc.R)) {
      ++const_cast<MemoryState *>(this)->DanglingAccesses;
      return MemVal::fromRef(Ref::null());
    }
    return MemVal::fromBool(TheHeap.markFlag(Loc.R));
  case MemLocKind::ObjField:
    if (!TheHeap.isValid(Loc.R)) {
      ++const_cast<MemoryState *>(this)->DanglingAccesses;
      return MemVal::fromRef(Ref::null());
    }
    return MemVal::fromRef(TheHeap.field(Loc.R, Loc.Field));
  }
  TSOGC_UNREACHABLE("bad MemLocKind");
}

void MemoryState::memoryWrite(MemLoc Loc, MemVal Val) {
  switch (Loc.Kind) {
  case MemLocKind::GlobalVar:
    TSOGC_CHECK(Loc.Var < Globals.size(), "global variable out of range");
    Globals[Loc.Var] = Val.Raw;
    return;
  case MemLocKind::ObjFlag:
    // A pending mark may commit after the sweep freed the object in
    // barrier-ablated runs; count it and drop the store.
    if (!TheHeap.isValid(Loc.R)) {
      ++DanglingAccesses;
      return;
    }
    TheHeap.setMarkFlag(Loc.R, Val.asBool());
    return;
  case MemLocKind::ObjField:
    if (!TheHeap.isValid(Loc.R)) {
      ++DanglingAccesses;
      return;
    }
    TheHeap.setField(Loc.R, Loc.Field, Val.asRef());
    return;
  }
  TSOGC_UNREACHABLE("bad MemLocKind");
}

std::vector<PendingWrite> MemoryState::pendingWritesTo(MemLoc Loc) const {
  std::vector<PendingWrite> Out;
  for (const auto &Buf : Buffers)
    for (const PendingWrite &W : Buf)
      if (W.Loc == Loc)
        Out.push_back(W);
  return Out;
}

void MemoryState::encode(std::string &Out) const {
  TheHeap.encode(Out);
  for (uint16_t G : Globals) {
    Out.push_back(static_cast<char>(G & 0xff));
    Out.push_back(static_cast<char>(G >> 8));
  }
  Out.push_back(static_cast<char>(LockOwner + 1));
  for (const auto &Buf : Buffers) {
    Out.push_back(static_cast<char>(Buf.size()));
    for (const PendingWrite &W : Buf) {
      Out.push_back(static_cast<char>(W.Loc.Kind));
      Out.push_back(static_cast<char>(W.Loc.Var));
      Out.push_back(static_cast<char>(W.Loc.R.raw() & 0xff));
      Out.push_back(static_cast<char>(W.Loc.R.raw() >> 8));
      Out.push_back(static_cast<char>(W.Loc.Field));
      Out.push_back(static_cast<char>(W.Val.Raw & 0xff));
      Out.push_back(static_cast<char>(W.Val.Raw >> 8));
    }
  }
}

bool MemoryState::operator==(const MemoryState &O) const {
  // DanglingAccesses is a diagnostic counter, deliberately excluded so it
  // does not split otherwise-identical states in the visited set.
  return TheHeap == O.TheHeap && Globals == O.Globals &&
         Buffers == O.Buffers && BufferBound == O.BufferBound &&
         LockOwner == O.LockOwner;
}
