//===- tso/MemLoc.cpp ------------------------------------------------------===//

#include "tso/MemLoc.h"

#include "support/StringUtils.h"

using namespace tsogc;

std::string MemLoc::toString() const {
  switch (Kind) {
  case MemLocKind::GlobalVar:
    return format("g%u", Var);
  case MemLocKind::ObjFlag:
    return format("flag(r%u)", R.index());
  case MemLocKind::ObjField:
    return format("r%u.f%u", R.index(), Field);
  }
  return "<bad-loc>";
}

std::string MemVal::toString() const {
  if (Raw == Ref::null().raw())
    return "null";
  return format("%u", Raw);
}
