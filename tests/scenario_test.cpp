//===- tests/scenario_test.cpp - §3.2's named interference scenarios ------===//
///
/// The paper recounts specific corner cases its proof uncovered. Each is
/// reproduced here as a guided schedule; the interesting ones show that the
/// algorithm tolerates the interference (the invariant gating is exactly
/// right), not that it fails.

#include "explore/Guided.h"
#include "invariants/GcPredicates.h"
#include "invariants/InvariantSuite.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0)
    return true;
  if (L.find("sys-dequeue-write-buffer") != std::string::npos)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

/// Neutral plus every step of one specific mutator (by pid prefix).
GuidedDriver::LabelFilter neutralPlus(const std::string &Pid) {
  return [Pid](const std::string &L) {
    return neutral(L) || L.rfind(Pid, 0) == 0;
  };
}

} // namespace

/// §3.2 hp_InitMark: "a mutator m that has yet to pass this handshake can
/// defeat the deletion barrier of a mutator m' which has passed the
/// handshake by inserting white references into objects": m (phase view
/// Idle) writes a white reference with no barrier; m' deletion-barrier
/// reads the *old* field value and marks it; m's white insertion commits in
/// between; m' overwrites it — the deleted reference was never marked. The
/// point of the H4 round and the marked_deletions gate (≥ H5) is exactly
/// that this is legal before H5 and harmless: the whole heap is still
/// white-or-grey, nothing is black, so safety is unaffected.
TEST(Scenario, InitMarkDeletionBarrierDefeat) {
  ModelConfig Cfg;
  Cfg.NumMutators = 2;
  Cfg.NumRefs = 4;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::SharedPair; // r0, r1 rooted
  Cfg.MutatorAlloc = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  GuidedDriver D(M);

  // Bring m0 (pid 1) past H3 — barriers armed — while m1 (pid 2) has only
  // completed H2 and still sees Idle.
  ASSERT_TRUE(D.advance(neutralPlus("p1:mut:hs"), [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H3PhaseInit &&
           M.mutator(S, 1).CompletedRound == HsRound::H2FlipFM;
  }));
  EXPECT_EQ(M.mutator(D.state(), 1).PhaseLocal, GcPhase::Idle);

  // m1 starts a white insertion r0.f := r1 with NO barrier activity (its
  // phase view is Idle) and leaves the write pending in its TSO buffer.
  ASSERT_TRUE(D.take("p2:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[2].Local);
    return Mu.TmpDst == R(1) && Mu.TmpSrc == R(0) && Mu.TmpFld == 0;
  }));
  // The deletion barrier reads the old value — null (SharedPair has no
  // edges) — so mark(NULL) is skipped entirely.
  ASSERT_TRUE(D.take("p2:mut:del-barrier-read"));
  EXPECT_TRUE(asMutator(D.state()[2].Local).DeletedRef.isNull());
  ASSERT_TRUE(D.take("p2:mut:ins-barrier-target"));
  ASSERT_TRUE(D.take("p2:mut:ins:mark-load-flag"));
  ASSERT_FALSE(D.take("p2:mut:ins:mark-cas-lock"));
  ASSERT_TRUE(D.take("p2:mut:ins:mark-done"));
  ASSERT_TRUE(D.take("p2:mut:store"));
  ASSERT_EQ(M.sysState(D.state()).Mem.buffer(2).size(), 1u);

  // m0 now runs its own store to r0.f: its deletion barrier reads the
  // *committed* value (null — SharedPair has no edges), not m1's pending
  // white insertion.
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0) && Mu.TmpFld == 0;
  }));
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  EXPECT_TRUE(M.mutator(D.state(), 0).DeletedRef.isNull())
      << "m0's barrier read the committed value, oblivious to m1's buffer";

  // m1's white insertion commits *between* m0's barrier and m0's store.
  ASSERT_TRUE(D.take("sys-dequeue-write-buffer"));
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().field(R(0), 0), R(1));

  // m0 completes: it overwrites r1's reference, which was never marked —
  // the deletion barrier was defeated.
  ASSERT_TRUE(D.take("p1:mut:ins-barrier-target"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-load-flag"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-cas-lock"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-cas-read"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-cas-store"));
  ASSERT_TRUE(D.take("sys-dequeue-write-buffer"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-cas-unlock"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-publish"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-done"));
  ASSERT_TRUE(D.take("p1:mut:store"));
  ASSERT_TRUE(D.take("sys-dequeue-write-buffer"));
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().field(R(0), 0), R(0));
  // r1 is unmarked — and that is fine here: it is still rooted by both
  // mutators and the cycle has not reached root marking. The invariant
  // suite agrees (marked_deletions is gated on ≥ H5).
  EXPECT_NE(M.sysState(D.state()).Mem.heap().markFlag(R(1)),
            GcModel::collector(D.state()).FM);
  auto V = Inv.check(D.state());
  EXPECT_FALSE(V.has_value()) << V->Name << ": " << V->Detail;

  // And the run remains safe to the end of the cycle: r1 is in the roots,
  // so root marking saves it.
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(1)));
}

/// §2.2: "It is possible for a mutator to report no grey roots, before
/// moving past the handshake and shading some objects" — mark-loop
/// termination still works because another mutator (or the collector)
/// holds the remaining grey. Driven flavor: after m0 reports an empty
/// work-list in a get-work round, m0 sheds a grey; the collector's next
/// round picks it up and the cycle still terminates with nothing lost.
TEST(Scenario, LateGreyAfterEmptyReport) {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  GuidedDriver D(M);

  // Run to the first get-work round with the mutator's W_m empty.
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.sysState(S).CurRound == HsRound::H6GetWork &&
           M.mutator(S, 0).CompletedRound == HsRound::H6GetWork &&
           M.mutator(S, 0).WM.empty();
  }));

  // Now the mutator deletes the r0 -> r1 edge. If r1 is still white (the
  // collector may not have scanned it yet) the barrier greys it *after*
  // the empty report. Either way the invariants hold and the cycle
  // completes with both objects retained.
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  auto Ops = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(Ops, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull();
  }));
  auto V = Inv.check(D.state());
  EXPECT_FALSE(V.has_value()) << V->Name << ": " << V->Detail;
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(0)));
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(1)));
}
