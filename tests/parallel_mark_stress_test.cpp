//===- tests/parallel_mark_stress_test.cpp - Parallel mark/sweep ----------===//
///
/// Covers RtConfig::MarkWorkers > 1: the work-stealing mark worker pool,
/// the idle-count termination detector, and the sharded sweep
/// (runtime/MarkerPool.h). Deterministic equivalence against the serial
/// collector, multi-threaded stress under epoch validation, and the
/// torture-mode differential against the stop-the-world baseline.
///
/// These are the parallel-mark TSan targets: build with
/// -DTSOGC_SANITIZE=thread and run this binary (see the top-level
/// CMakeLists sanitizer preset).

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig parCfg(uint32_t Workers) {
  RtConfig C;
  C.HeapObjects = 2048;
  C.NumFields = 2;
  C.MarkWorkers = Workers;
  return C;
}

/// Build one f0-linked chain of \p Len nodes on \p M by prepending; on
/// return the chain head is the mutator's highest root.
void buildChain(MutatorContext *M, unsigned Len) {
  int Head = M->alloc();
  ASSERT_GE(Head, 0);
  for (unsigned I = 1; I < Len; ++I) {
    int Node = M->alloc();
    ASSERT_GE(Node, 0);
    // node.f0 = head; the node replaces the head as the chain's root.
    M->store(static_cast<size_t>(Head), static_cast<size_t>(Node), 0);
    M->discard(static_cast<size_t>(Head));
  }
}

/// Audit the heap from a helper thread while this thread services the
/// park handshakes for \p Ms.
GcRuntime::HeapAudit auditServed(GcRuntime &Rt,
                                 const std::vector<MutatorContext *> &Ms) {
  Rt.HandshakeServicer = nullptr;
  GcRuntime::HeapAudit Audit;
  std::atomic<bool> Done{false};
  // Parked mutators block inside their handler, so each needs its own
  // servicing thread.
  std::vector<std::thread> Svc;
  std::thread Auditor([&] {
    Audit = Rt.auditHeap();
    Done.store(true);
  });
  for (MutatorContext *M : Ms)
    Svc.emplace_back([&Done, M] {
      while (!Done.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  Auditor.join();
  for (std::thread &T : Svc)
    T.join();
  return Audit;
}

struct WorkloadResult {
  CycleStats First;  ///< Cycle over 8 live chains + 128 fresh garbage.
  CycleStats Second; ///< Follow-up cycle (reclaims any floating garbage).
  uint32_t Live = 0; ///< Allocated objects after both cycles.
};

/// The equivalence workload: 8 rooted chains of 32 nodes plus 128 dropped
/// singletons, collected twice. Marking work, frees and retention are
/// fully determined by the graph, so every MarkWorkers setting must
/// produce identical counts.
WorkloadResult runEquivalenceWorkload(uint32_t Workers) {
  WorkloadResult R;
  GcRuntime Rt(parCfg(Workers));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  for (int C = 0; C < 8; ++C)
    buildChain(M, 32);
  for (int I = 0; I < 128; ++I) {
    int G = M->alloc();
    EXPECT_GE(G, 0);
    M->discard(static_cast<size_t>(G));
  }
  R.First = Rt.collectOnce();
  R.Second = Rt.collectOnce();
  R.Live = Rt.heap().allocatedCount();
  GcRuntime::HeapAudit Audit = auditServed(Rt, {M});
  EXPECT_TRUE(Audit.clean());
  EXPECT_EQ(Audit.Reachable, 8u * 32u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
  return R;
}

} // namespace

TEST(ParallelMark, MatchesSerialCollectorOnFixedGraph) {
  WorkloadResult Serial = runEquivalenceWorkload(1);
  ASSERT_EQ(Serial.Live, 8u * 32u);
  ASSERT_EQ(Serial.First.ObjectsFreed + Serial.Second.ObjectsFreed, 128u);
  for (uint32_t Workers : {2u, 4u}) {
    WorkloadResult Par = runEquivalenceWorkload(Workers);
    EXPECT_EQ(Par.Live, Serial.Live) << Workers << " workers";
    EXPECT_EQ(Par.First.ObjectsMarked, Serial.First.ObjectsMarked);
    EXPECT_EQ(Par.First.ObjectsFreed, Serial.First.ObjectsFreed);
    EXPECT_EQ(Par.First.ObjectsRetained, Serial.First.ObjectsRetained);
    EXPECT_EQ(Par.Second.ObjectsFreed, Serial.Second.ObjectsFreed);
    EXPECT_EQ(Par.Second.ObjectsRetained, Serial.Second.ObjectsRetained);
  }
}

TEST(ParallelMark, PerWorkerCountersSumToCycleTotals) {
  WorkloadResult R = runEquivalenceWorkload(4);
  const CycleStats &CS = R.First;
  EXPECT_EQ(CS.MarkWorkersUsed, 4u);
  ASSERT_EQ(CS.Workers.size(), 4u);
  uint64_t Marked = 0, Cas = 0, Taken = 0, Stolen = 0, Fails = 0,
           Published = 0, Freed = 0, Retained = 0;
  for (const MarkWorkerStats &W : CS.Workers) {
    Marked += W.Marked;
    Cas += W.Cas;
    Taken += W.ChainsTaken + W.ChainsStolen;
    Stolen += W.ChainsStolen;
    Fails += W.StealFails;
    Published += W.ChainsPublished;
    Freed += W.ObjectsFreed;
    Retained += W.ObjectsRetained;
  }
  EXPECT_EQ(Marked, CS.ObjectsMarked);
  EXPECT_EQ(Cas, CS.CollectorCas);
  EXPECT_EQ(Taken, CS.SharedChainsTaken);
  EXPECT_EQ(Stolen, CS.ChainsStolen);
  EXPECT_EQ(Fails, CS.StealFails);
  EXPECT_EQ(Published, CS.ChainsPublished);
  EXPECT_EQ(Freed, CS.ObjectsFreed);
  EXPECT_EQ(Retained, CS.ObjectsRetained);
  // Aggregate stats absorbed the per-cycle steal counters.
  EXPECT_EQ(CS.SpliceWalkSteps, 0u);
}

TEST(ParallelMark, SerialCycleLeavesPerWorkerVectorEmpty) {
  WorkloadResult R = runEquivalenceWorkload(1);
  EXPECT_EQ(R.First.MarkWorkersUsed, 1u);
  EXPECT_TRUE(R.First.Workers.empty());
  EXPECT_EQ(R.First.ChainsStolen, 0u);
  EXPECT_EQ(R.First.ChainsPublished, 0u);
}

namespace {

/// Randomized multi-mutator stress against a continuously running
/// parallel collector. Epoch validation (RtConfig::Validate, on by
/// default) aborts the process on any unsafe free, so surviving the run
/// is the assertion.
void stressRun(uint32_t Workers, uint32_t TortureLevel) {
  RtConfig C = parCfg(Workers);
  C.HeapObjects = 4096;
  C.LocalAllocPool = 16;
  C.TortureLevel = TortureLevel;
  GcRuntime Rt(C);
  constexpr int NumMuts = 3;
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < NumMuts; ++I)
    Ms.push_back(Rt.registerMutator());
  Rt.startCollector();
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumMuts; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = Ms[T];
      uint64_t Rng = 0x9e3779b97f4a7c15ULL * (T + 1);
      for (int I = 0; I < 20'000; ++I) {
        M->safepoint();
        Rng ^= Rng >> 12;
        Rng ^= Rng << 25;
        Rng ^= Rng >> 27;
        const size_t N = M->numRoots();
        const unsigned Op = (Rng >> 33) % 8;
        if (Op < 3 || N < 2) {
          M->alloc(); // may fail near exhaustion; validation still holds
        } else if (Op < 6) {
          M->store((Rng >> 20) % N, (Rng >> 40) % N,
                   static_cast<uint32_t>(Rng >> 10) % C.NumFields);
        } else {
          int L = M->load((Rng >> 20) % N,
                          static_cast<uint32_t>(Rng >> 10) % C.NumFields);
          if (L >= 0 && M->numRoots() > 8)
            M->discard(static_cast<size_t>(L));
        }
        while (M->numRoots() > 32)
          M->discard((Rng >> 16) % M->numRoots());
      }
      while (M->numRoots())
        M->discard(0);
    });
  for (std::thread &T : Ts)
    T.join();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      for (MutatorContext *M : Ms)
        M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  // Every root is gone: two quiescent cycles reclaim the entire heap.
  Rt.HandshakeServicer = [&Ms] {
    for (MutatorContext *M : Ms)
      M->safepoint();
  };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
  GcRuntime::HeapAudit Audit = auditServed(Rt, Ms);
  EXPECT_TRUE(Audit.clean());
  EXPECT_EQ(Audit.Unreachable, 0u);
  for (MutatorContext *M : Ms)
    Rt.deregisterMutator(M);
}

} // namespace

TEST(ParallelMarkStress, TwoWorkersConcurrentMutators) {
  stressRun(2, /*TortureLevel=*/0);
}

TEST(ParallelMarkStress, FourWorkersConcurrentMutators) {
  stressRun(4, /*TortureLevel=*/0);
}

// TLAB torture mode: allocation-dominated mutators bump through their
// TLABs while torture-mode yields land handshake acknowledgements between
// the refill and the bumps — the exact windows where a stale allocation
// color, a sweep walking a reserved run, or a lost TLAB tail would
// corrupt the heap. Epoch validation polices every access; afterwards the
// stop-the-world baseline and the whole-heap audit must agree with the
// on-the-fly collector. Runs under the tsan preset (see file header).
TEST(ParallelMarkStress, TlabTortureAllocationsStraddlingAcks) {
  RtConfig C = parCfg(4);
  C.HeapObjects = 2048;
  C.LocalAllocPool = 32;
  C.TortureLevel = 3;
  GcRuntime Rt(C);
  constexpr int NumMuts = 3;
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < NumMuts; ++I)
    Ms.push_back(Rt.registerMutator());
  Rt.startCollector();
  std::vector<std::thread> Ts;
  for (int T = 0; T < NumMuts; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = Ms[T];
      uint64_t Rng = 0xda942042e4dd58b5ULL * (T + 1);
      // ~6 of 8 ops allocate, so the threads live on the TLAB bump path
      // and refill mid-cycle; the root cap keeps garbage (and therefore
      // sweeps over recycled runs) flowing continuously.
      for (int I = 0; I < 20'000; ++I) {
        M->safepoint();
        Rng ^= Rng >> 12;
        Rng ^= Rng << 25;
        Rng ^= Rng >> 27;
        const unsigned Op = (Rng >> 33) % 8;
        if (Op < 6 || M->numRoots() < 2) {
          M->alloc(); // may fail near exhaustion; validation still holds
        } else {
          M->store((Rng >> 20) % M->numRoots(),
                   (Rng >> 40) % M->numRoots(),
                   static_cast<uint32_t>(Rng >> 10) % C.NumFields);
        }
        while (M->numRoots() > 24)
          M->discard((Rng >> 16) % M->numRoots());
      }
      while (M->numRoots())
        M->discard(0);
    });
  for (std::thread &T : Ts)
    T.join();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      for (MutatorContext *M : Ms)
        M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();

  // All roots dropped: two quiescent cycles reclaim everything that was
  // ever allocated (reserved TLAB tails are unallocated, not leaks).
  Rt.HandshakeServicer = [&Ms] {
    for (MutatorContext *M : Ms)
      M->safepoint();
  };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);

  // Differential: the STW baseline finds nothing further to free, and the
  // audit agrees the heap is clean.
  Rt.HandshakeServicer = nullptr;
  std::atomic<bool> SvcDone{false};
  std::vector<std::thread> Svc;
  for (MutatorContext *M : Ms)
    Svc.emplace_back([&SvcDone, M] {
      while (!SvcDone.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  CycleStats Stw = Rt.collectStw();
  GcRuntime::HeapAudit Audit = Rt.auditHeap();
  SvcDone.store(true);
  for (std::thread &T : Svc)
    T.join();
  EXPECT_EQ(Stw.ObjectsFreed, 0u);
  EXPECT_EQ(Stw.ObjectsRetained, 0u);
  EXPECT_TRUE(Audit.clean());
  EXPECT_EQ(Audit.Unreachable, 0u);

  for (MutatorContext *M : Ms)
    Rt.deregisterMutator(M);
  // The run actually exercised the fast path: folded counters show bump
  // hits dominating refills.
  EXPECT_GT(Rt.stats().TotalTlabHits.load(),
            Rt.stats().TotalTlabRefills.load());
}

// The torture-mode differential (mutators yield at every racy point, so
// stores keep straddling get-work acknowledgements mid-cycle): after the
// on-the-fly collector reaches a fixpoint, the stop-the-world baseline
// must find nothing further to free, and the whole-heap audit must be
// clean — the two collectors agree on reachability.
TEST(ParallelMarkStress, TortureStoresStraddlingGetWorkAcks) {
  RtConfig C = parCfg(4);
  C.HeapObjects = 1024;
  C.TortureLevel = 3;
  GcRuntime Rt(C);
  MutatorContext *M0 = Rt.registerMutator();
  MutatorContext *M1 = Rt.registerMutator();
  // A shared hub both mutators hammer: every store overwrites a hub field,
  // so the deletion barrier continuously greys the displaced values while
  // handshakes land between the stores.
  int Hub = M0->alloc();
  ASSERT_EQ(Hub, 0);
  ASSERT_EQ(M1->adoptRoot(M0->rootRef(0)), 0);
  Rt.startCollector();
  std::vector<std::thread> Ts;
  for (int T = 0; T < 2; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = T == 0 ? M0 : M1;
      uint64_t Rng = 0x2545f4914f6cdd1dULL * (T + 1);
      for (int I = 0; I < 15'000; ++I) {
        M->safepoint();
        Rng ^= Rng >> 12;
        Rng ^= Rng << 25;
        Rng ^= Rng >> 27;
        int N = M->alloc();
        if (N >= 0) {
          // hub.f = node (greys the old occupant), then drop our root:
          // the node stays reachable only through the hub, until the
          // other mutator's next store displaces it.
          M->store(static_cast<size_t>(N), 0,
                   static_cast<uint32_t>(Rng >> 7) % C.NumFields);
          M->discard(static_cast<size_t>(N));
        }
        int L = M->load(0, static_cast<uint32_t>(Rng >> 9) % C.NumFields);
        if (L >= 0)
          M->discard(static_cast<size_t>(L)); // validated hub chase
      }
    });
  for (std::thread &T : Ts)
    T.join();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M0->safepoint();
      M1->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();

  // Reach the on-the-fly fixpoint (hub + its current children live). Two
  // cycles reclaim the garbage plus any floating retention from residual
  // barrier greys; the third must find nothing.
  Rt.HandshakeServicer = [&] {
    M0->safepoint();
    M1->safepoint();
  };
  Rt.collectOnce();
  Rt.collectOnce();
  CycleStats Settled = Rt.collectOnce();
  EXPECT_EQ(Settled.ObjectsFreed, 0u) << "fixpoint not reached";
  const uint32_t Live = Rt.heap().allocatedCount();
  EXPECT_LE(Live, 1u + C.NumFields);

  // Differential: the STW baseline agrees — it frees nothing more and
  // retains exactly the on-the-fly live set.
  Rt.HandshakeServicer = nullptr;
  std::atomic<bool> SvcDone{false};
  std::vector<std::thread> Svc;
  for (MutatorContext *M : {M0, M1})
    Svc.emplace_back([&SvcDone, M] {
      while (!SvcDone.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  CycleStats Stw = Rt.collectStw();
  GcRuntime::HeapAudit Audit = Rt.auditHeap();
  SvcDone.store(true);
  for (std::thread &T : Svc)
    T.join();
  EXPECT_EQ(Stw.ObjectsFreed, 0u);
  EXPECT_EQ(Stw.ObjectsRetained, Live);
  EXPECT_TRUE(Audit.clean());
  EXPECT_EQ(Audit.Unreachable, 0u);
  EXPECT_EQ(Audit.Reachable, Live);

  while (M1->numRoots())
    M1->discard(0);
  Rt.deregisterMutator(M1);
  while (M0->numRoots())
    M0->discard(0);
  Rt.deregisterMutator(M0);
}
