//===- tests/invariants_test.cpp - The §3.2 predicates, unit-tested -------===//
///
/// Satisfiability (E13: the suite holds on non-trivial states, so the
/// invariants are not vacuous) and sensitivity: hand-corrupted states must
/// trip exactly the intended predicate.

#include "invariants/Describe.h"
#include "invariants/InvariantSuite.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

ModelConfig cfg(ModelConfig::InitHeap H = ModelConfig::InitHeap::Chain) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 4;
  C.NumFields = 2;
  C.BufferBound = 2;
  C.InitialHeap = H;
  return C;
}

class InvariantsTest : public ::testing::Test {
protected:
  InvariantsTest() : M(cfg()), Inv(M), S(M.initial()) {}

  MutatorLocal &mut(unsigned I) { return asMutator(S[1 + I].Local); }
  CollectorLocal &gc() { return asCollector(S[0].Local); }
  SysLocal &sys() { return asSys(S[M.config().NumMutators + 1].Local); }

  GcModel M;
  InvariantSuite Inv;
  GcSystemState S;
};

} // namespace

TEST_F(InvariantsTest, SatisfiableOnInitialStates) {
  // E13: a small but non-trivial concrete heap satisfies the whole suite.
  for (auto H : {ModelConfig::InitHeap::Empty, ModelConfig::InitHeap::Chain,
                 ModelConfig::InitHeap::SingleRoot,
                 ModelConfig::InitHeap::SharedPair}) {
    GcModel M2(cfg(H));
    InvariantSuite Inv2(M2);
    auto V = Inv2.check(M2.initial());
    EXPECT_FALSE(V.has_value()) << V->Name << ": " << V->Detail;
  }
}

TEST_F(InvariantsTest, HeadlineTripsOnDanglingRoot) {
  mut(0).Roots.insert(R(3)); // no object at r3
  auto V = Inv.checkSafetyHeadline(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "safety-headline");
}

TEST_F(InvariantsTest, HeadlineTripsOnDanglingHeapEdge) {
  sys().Mem.heap().setField(R(1), 0, R(3));
  ASSERT_TRUE(Inv.checkSafetyHeadline(S).has_value());
}

TEST_F(InvariantsTest, HeadlineIgnoresUnreachableDangling) {
  // A dangling reference in an unreachable corner is not a headline
  // violation (nothing reachable is broken)… there is no such corner in
  // the chain heap, so instead verify the clean state passes.
  EXPECT_FALSE(Inv.checkSafetyHeadline(S).has_value());
}

TEST_F(InvariantsTest, ValidRefsCoversWorklists) {
  gc().W.insert(R(3)); // dangling grey
  EXPECT_FALSE(Inv.checkSafetyHeadline(S).has_value());
  ASSERT_TRUE(Inv.checkValidRefs(S).has_value());
}

TEST_F(InvariantsTest, ValidRefsCoversDeletedRef) {
  mut(1).DeletedRef = R(3);
  ASSERT_TRUE(Inv.checkValidRefs(S).has_value());
}

TEST_F(InvariantsTest, ValidRefsCoversBufferedInsertions) {
  // A pending field write whose value dangles.
  sys().Mem.write(1, MemLoc::objField(R(0), 1), MemVal::fromRef(R(3)));
  ASSERT_TRUE(Inv.checkValidRefs(S).has_value());
}

TEST_F(InvariantsTest, StrongTricolorDetectsBlackToWhite) {
  // Initial heap is uniformly black; flip fM so everything is white, then
  // blacken r0 only: r0 -> r1 is black -> white.
  gc().FM = !gc().FM;
  sys().Mem.heap().setMarkFlag(R(0), gc().FM);
  auto V = Inv.checkStrongTricolor(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "strong-tricolor");
  // Weak tricolor also trips: r1 is not grey-protected (no greys at all).
  EXPECT_TRUE(Inv.checkWeakTricolor(S).has_value());
}

TEST_F(InvariantsTest, WeakTricolorAcceptsGreyProtectedWhite) {
  // black r0 -> white r1, but r1 is also on a work-list (grey): protected.
  gc().FM = !gc().FM;
  sys().Mem.heap().setMarkFlag(R(0), gc().FM);
  sys().Mem.heap().setMarkFlag(R(1), gc().FM); // mark so valid-W would hold
  gc().W.insert(R(1));
  EXPECT_FALSE(Inv.checkWeakTricolor(S).has_value());
  // With the strong invariant this state is still a violation — the edge
  // exists — but r1 being grey is exactly the allowance: strong tricolor
  // checks *white* targets only.
  EXPECT_FALSE(Inv.checkStrongTricolor(S).has_value());
}

TEST_F(InvariantsTest, ValidWRejectsUnmarkedWorklistEntry) {
  gc().FM = !gc().FM; // heap now white
  gc().W.insert(R(1)); // r1 unmarked yet on the work-list
  auto V = Inv.checkValidW(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "valid-W");
}

TEST_F(InvariantsTest, ValidWRejectsOverlappingWorklists) {
  // Both mutators claim r0 (marked, so the mark condition passes).
  mut(0).WM.insert(R(0));
  mut(1).WM.insert(R(0));
  auto V = Inv.checkValidW(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_NE(V->Detail.find("two work-lists"), std::string::npos);
}

TEST_F(InvariantsTest, ValidWAllowsUnmarkedHonoraryGreyUnderLock) {
  gc().FM = !gc().FM; // heap white
  mut(0).MS.GhostHonoraryGrey = R(1);
  // Without the lock: violation (the CAS must have committed).
  ASSERT_TRUE(Inv.checkValidW(S).has_value());
  // Holding the lock: the store may still be buffered; allowed.
  sys().Mem.acquireLock(1);
  EXPECT_FALSE(Inv.checkValidW(S).has_value());
}

TEST_F(InvariantsTest, ValidWRejectsWrongSenseMarkStore)  {
  sys().Mem.write(1, MemLoc::objFlag(R(0)),
                  MemVal::fromBool(!gc().FM));
  ASSERT_TRUE(Inv.checkValidW(S).has_value());
}

TEST_F(InvariantsTest, IdleUniformRejectsMixedHeap) {
  sys().Mem.heap().setMarkFlag(R(1), !gc().FA);
  auto V = Inv.checkIdleUniform(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "idle-uniform");
}

TEST_F(InvariantsTest, IdleUniformSkippedWhenActive) {
  gc().Phase = GcPhase::Mark;
  sys().Mem.heap().setMarkFlag(R(1), !gc().FA);
  EXPECT_FALSE(Inv.checkIdleUniform(S).has_value());
}

TEST_F(InvariantsTest, NoBlackWindowGatedByRound) {
  // A marked object exists while CurRound == H2: violation.
  gc().Phase = GcPhase::Init; // avoid tripping idle-uniform instead
  gc().FM = !gc().FM;
  sys().CurRound = HsRound::H2FlipFM;
  sys().Mem.heap().setMarkFlag(R(0), gc().FM);
  ASSERT_TRUE(Inv.checkNoBlackWindows(S).has_value());
  // Same state at H5: no gate, no violation from this check.
  sys().CurRound = HsRound::H5GetRoots;
  EXPECT_FALSE(Inv.checkNoBlackWindows(S).has_value());
}

TEST_F(InvariantsTest, MarkedInsertionsGatedByMutatorRound) {
  gc().FM = !gc().FM; // white heap
  sys().CurRound = HsRound::H5GetRoots;
  // Pending insertion of unmarked r1 by mutator 0.
  sys().Mem.write(1, MemLoc::objField(R(0), 0), MemVal::fromRef(R(1)));
  // Mutator 0 still at H2: not yet bound by marked_insertions.
  mut(0).CompletedRound = HsRound::H2FlipFM;
  EXPECT_FALSE(Inv.checkMarkedInsertions(S).has_value());
  // Past H3: bound.
  mut(0).CompletedRound = HsRound::H3PhaseInit;
  ASSERT_TRUE(Inv.checkMarkedInsertions(S).has_value());
}

TEST_F(InvariantsTest, MarkedDeletionsShadowsOwnBuffer) {
  gc().FM = !gc().FM;
  sys().CurRound = HsRound::H5GetRoots;
  // r0.f0 currently points at white r1: a pending overwrite deletes r1.
  sys().Mem.write(1, MemLoc::objField(R(0), 0), MemVal::fromRef(Ref::null()));
  ASSERT_TRUE(Inv.checkMarkedDeletions(S).has_value());
  // If r1 is marked, the deletion is fine.
  sys().Mem.heap().setMarkFlag(R(1), gc().FM);
  EXPECT_FALSE(Inv.checkMarkedDeletions(S).has_value());
}

TEST_F(InvariantsTest, ReachableSnapshotRequiresProtection) {
  gc().FM = !gc().FM; // everything white
  sys().CurRound = HsRound::H5GetRoots;
  mut(0).CompletedRound = HsRound::H5GetRoots;
  // Mutator 0 (black) reaches white unprotected r0: violation.
  auto V = Inv.checkReachableSnapshot(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "reachable-snapshot");
  // Grey-protect the chain head: both r0 and r1 become protected.
  sys().Mem.heap().setMarkFlag(R(0), gc().FM);
  gc().W.insert(R(0));
  EXPECT_FALSE(Inv.checkReachableSnapshot(S).has_value());
}

TEST_F(InvariantsTest, SweepNoGreyTrips) {
  gc().Phase = GcPhase::Sweep;
  sys().Mem.heap().setMarkFlag(R(0), gc().FM);
  gc().W.insert(R(0));
  auto V = Inv.checkSweepNoGrey(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "sweep-no-grey");
}

TEST_F(InvariantsTest, HandshakeRelationRejectsSkippedRound) {
  sys().CurRound = HsRound::H3PhaseInit;
  mut(0).CompletedRound = HsRound::H3PhaseInit;
  mut(1).CompletedRound = HsRound::H1Idle; // skipped H2
  ASSERT_TRUE(Inv.checkHandshakeRelation(S).has_value());
}

TEST_F(InvariantsTest, MutatorViewRelation) {
  sys().CurRound = HsRound::H3PhaseInit;
  mut(0).CompletedRound = HsRound::H3PhaseInit;
  mut(1).CompletedRound = HsRound::H2FlipFM;
  mut(0).PhaseLocal = GcPhase::Init;
  mut(1).PhaseLocal = GcPhase::Idle;
  mut(0).FMLocal = mut(1).FMLocal = gc().FM;
  EXPECT_FALSE(Inv.checkMutatorViews(S).has_value());
  // A mutator claiming Mark after only H3 is inconsistent.
  mut(0).PhaseLocal = GcPhase::Mark;
  ASSERT_TRUE(Inv.checkMutatorViews(S).has_value());
}

TEST_F(InvariantsTest, DescribeStateRendersKeyFacts) {
  std::string Desc = describeState(M, S);
  EXPECT_NE(Desc.find("gc: phase=Idle"), std::string::npos);
  EXPECT_NE(Desc.find("mut0:"), std::string::npos);
  EXPECT_NE(Desc.find("mut1:"), std::string::npos);
  EXPECT_NE(Desc.find("r0[0](r1,null)"), std::string::npos);
  EXPECT_NE(Desc.find("round=none"), std::string::npos);
}
