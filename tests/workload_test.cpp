//===- tests/workload_test.cpp - Workload library tests -------------------===//

#include "workload/Workloads.h"

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

class WorkloadTest : public ::testing::Test {
protected:
  WorkloadTest() {
    RtConfig Cfg;
    Cfg.HeapObjects = 2048;
    Cfg.NumFields = 2;
    Rt = std::make_unique<GcRuntime>(Cfg);
    M = Rt->registerMutator();
    Rt->HandshakeServicer = [this] { M->safepoint(); };
  }
  void TearDown() override {
    while (M->numRoots())
      M->discard(0);
    Rt->deregisterMutator(M);
  }
  std::unique_ptr<GcRuntime> Rt;
  MutatorContext *M = nullptr;
};

} // namespace

TEST_F(WorkloadTest, ListChurnBuildsBoundedLists) {
  wl::ListChurn W(*M, 1, /*ListLen=*/16, /*KeepLists=*/3);
  for (int I = 0; I < 200; ++I)
    W.step();
  EXPECT_LE(M->numRoots(), 4u); // kept heads + current head
  EXPECT_GT(Rt->heap().allocatedCount(), 3u);
  W.teardown();
  EXPECT_EQ(M->numRoots(), 0u);
  Rt->collectOnce();
  Rt->collectOnce();
  EXPECT_EQ(Rt->heap().allocatedCount(), 0u);
}

TEST_F(WorkloadTest, ListChurnKeptListsWalkable) {
  wl::ListChurn W(*M, 2, 8, 2);
  for (int I = 0; I < 100; ++I)
    W.step();
  Rt->collectOnce();
  // Walk a kept list through validated loads: every node live.
  ASSERT_GT(M->numRoots(), 0u);
  size_t Cur = 0;
  unsigned Len = 1;
  for (int Next; (Next = M->load(Cur, 0)) >= 0 && Len < 64; ++Len)
    Cur = static_cast<size_t>(Next);
  EXPECT_GE(Len, 8u);
}

TEST_F(WorkloadTest, TreeBuilderMakesCompleteTrees) {
  wl::TreeBuilder W(*M, 3, /*Depth=*/3, /*KeepTrees=*/2);
  ASSERT_TRUE(W.step());
  // A complete depth-3 binary tree has 2^4 - 1 = 15 nodes.
  EXPECT_EQ(Rt->heap().allocatedCount(), 15u);
  EXPECT_EQ(M->numRoots(), 1u);
  // Walk: root has two children, grandchildren exist.
  int L = M->load(0, 0);
  int R2 = M->load(0, 1);
  ASSERT_GE(L, 0);
  ASSERT_GE(R2, 0);
  EXPECT_GE(M->load(static_cast<size_t>(L), 0), 0);
  W.teardown();
}

TEST_F(WorkloadTest, TreeBuilderKeepsBoundedForest) {
  wl::TreeBuilder W(*M, 4, 3, 2);
  for (int I = 0; I < 20; ++I)
    W.step();
  EXPECT_LE(M->numRoots(), 2u);
  Rt->collectOnce();
  Rt->collectOnce();
  // Only the kept forest remains: ≤ 2 × 15 nodes.
  EXPECT_LE(Rt->heap().allocatedCount(), 30u);
  EXPECT_GT(Rt->heap().allocatedCount(), 0u);
}

TEST_F(WorkloadTest, GraphMutatorMaintainsWorkingSet) {
  wl::GraphMutator W(*M, 5, /*WorkingSet=*/12);
  for (int I = 0; I < 500; ++I)
    W.step();
  EXPECT_GE(M->numRoots(), 11u);
  EXPECT_LE(M->numRoots(), 14u);
  EXPECT_GT(M->stats().Stores, 100u);
  W.teardown();
}

TEST_F(WorkloadTest, WorkloadsSurviveConcurrentCollection) {
  Rt->HandshakeServicer = nullptr;
  Rt->startCollector();
  for (const char *Kind : {"list", "tree", "graph"}) {
    auto W = wl::makeWorkload(Kind, *M, 7);
    for (int I = 0; I < 3000; ++I)
      W->step(); // step() polls the safepoint; validation is armed
    W->teardown();
  }
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt->stopCollector();
  Done.store(true);
  Service.join();
  Rt->HandshakeServicer = [this] { M->safepoint(); };
  SUCCEED();
}

TEST_F(WorkloadTest, FactoryByName) {
  EXPECT_STREQ(wl::makeWorkload("list", *M, 1)->name(), "list-churn");
  EXPECT_STREQ(wl::makeWorkload("tree", *M, 1)->name(), "tree-builder");
  EXPECT_STREQ(wl::makeWorkload("graph", *M, 1)->name(), "graph-mutator");
  EXPECT_STREQ(wl::makeWorkload("unknown", *M, 1)->name(), "list-churn");
}
