//===- tests/observe_test.cpp - Observability layer -----------------------===//
///
/// The trace ring, the metrics registry, the JSON exporters, and the
/// end-to-end contract: with RtConfig::Trace on, one collection cycle
/// produces a parseable trace containing every phase transition and every
/// handshake round.

#include "observe/Export.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "runtime/GcRuntime.h"
#include "runtime/RtObserve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

using namespace tsogc;
using namespace tsogc::observe;

//===----------------------------------------------------------------------===//
// TraceBuffer ring semantics
//===----------------------------------------------------------------------===//

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer Buf(7, 64);
  EXPECT_EQ(Buf.tid(), 7u);
  Buf.record(EventKind::CycleBegin, 1);
  Buf.record(EventKind::MarkBegin, 2);
  Buf.record(EventKind::CycleEnd, 3);
  EXPECT_EQ(Buf.recorded(), 3u);
  EXPECT_EQ(Buf.dropped(), 0u);
  auto Events = Buf.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Kind, EventKind::CycleBegin);
  EXPECT_EQ(Events[1].Kind, EventKind::MarkBegin);
  EXPECT_EQ(Events[2].Kind, EventKind::CycleEnd);
  EXPECT_EQ(Events[0].A, 1u);
  EXPECT_EQ(Events[2].A, 3u);
  EXPECT_EQ(Events[0].Tid, 7u);
  // The shared steady clock is monotonic across events.
  EXPECT_LE(Events[0].TimeNs, Events[1].TimeNs);
  EXPECT_LE(Events[1].TimeNs, Events[2].TimeNs);
}

TEST(TraceBuffer, PayloadFieldsRoundTrip) {
  TraceBuffer Buf(3, 64);
  Buf.record(EventKind::HandshakeRequest, 0x12345678u, 0x9abcdef0u, 5);
  auto Events = Buf.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].A, 0x12345678u);
  EXPECT_EQ(Events[0].B, 0x9abcdef0u);
  EXPECT_EQ(Events[0].Arg, 5u);
}

TEST(TraceBuffer, WraparoundKeepsNewestAndCountsDropped) {
  TraceBuffer Buf(1, 64); // capacity rounds to exactly 64
  for (uint32_t I = 0; I < 100; ++I)
    Buf.record(EventKind::Alloc, I);
  EXPECT_EQ(Buf.recorded(), 100u);
  EXPECT_EQ(Buf.dropped(), 36u);
  auto Events = Buf.snapshot();
  ASSERT_EQ(Events.size(), 64u);
  // Oldest-first: the surviving window is [36, 100).
  EXPECT_EQ(Events.front().A, 36u);
  EXPECT_EQ(Events.back().A, 99u);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].A, Events[I - 1].A + 1);
}

TEST(TraceBuffer, MultipleWraparoundsKeepExactlyTheNewestWindow) {
  TraceBuffer Buf(1, 64);
  for (uint32_t I = 0; I < 1000; ++I) // wraps the 64-slot ring 15+ times
    Buf.record(EventKind::Alloc, I);
  EXPECT_EQ(Buf.recorded(), 1000u);
  EXPECT_EQ(Buf.dropped(), 936u);
  auto Events = Buf.snapshot();
  ASSERT_EQ(Events.size(), 64u);
  EXPECT_EQ(Events.front().A, 936u);
  EXPECT_EQ(Events.back().A, 999u);
  for (size_t I = 1; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].A, Events[I - 1].A + 1);
    EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs);
  }
}

TEST(TraceBuffer, TinyCapacityRoundsUpToMinimum) {
  TraceBuffer Buf(0, 1);
  for (uint32_t I = 0; I < 64; ++I)
    Buf.record(EventKind::Free, I);
  EXPECT_EQ(Buf.dropped(), 0u) << "minimum capacity is 64";
  EXPECT_EQ(Buf.snapshot().size(), 64u);
}

TEST(TraceBuffer, NullBufferTraceIsNoop) {
  trace(nullptr, EventKind::BarrierMark, 1, 2, 3); // must not crash
  TraceBuffer Buf(0, 64);
  trace(&Buf, EventKind::BarrierMark, 1);
  EXPECT_EQ(Buf.recorded(), 1u);
}

TEST(TraceSink, OwnsBuffersAndAggregates) {
  TraceSink Sink(64);
  TraceBuffer *A = Sink.createBuffer(0);
  TraceBuffer *B = Sink.createBuffer(CollectorTid);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  A->record(EventKind::Alloc, 1);
  A->record(EventKind::Alloc, 2);
  B->record(EventKind::CycleBegin, 0);
  EXPECT_EQ(Sink.buffers().size(), 2u);
  EXPECT_EQ(Sink.totalRecorded(), 3u);
  EXPECT_EQ(Sink.totalDropped(), 0u);
}

TEST(TraceSink, EventKindNamesAreStable) {
  // Names are part of the export schema; spot-check the contract.
  EXPECT_STREQ(eventKindName(EventKind::CycleBegin), "cycle_begin");
  EXPECT_STREQ(eventKindName(EventKind::HandshakeAck), "handshake_ack");
  EXPECT_STREQ(eventKindName(EventKind::FrontierProgress),
               "frontier_progress");
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, CountersGaugesAndOrder) {
  MetricsRegistry Reg;
  EXPECT_TRUE(Reg.empty());
  Reg.counter("b.count", 10);
  Reg.gauge("a.rate", 2.5);
  Reg.addCounter("b.count", 5);
  auto Snap = Reg.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  // Insertion order, not lexicographic.
  EXPECT_EQ(Snap[0].Name, "b.count");
  EXPECT_EQ(Snap[0].Kind, MetricKind::Counter);
  EXPECT_EQ(Snap[0].Counter, 15u);
  EXPECT_EQ(Snap[1].Name, "a.rate");
  EXPECT_EQ(Snap[1].Kind, MetricKind::Gauge);
  EXPECT_DOUBLE_EQ(Snap[1].Gauge, 2.5);
  Reg.clear();
  EXPECT_TRUE(Reg.empty());
}

TEST(MetricsRegistry, HistogramAccumulates) {
  MetricsRegistry Reg;
  Reg.observeSample("lat", 1.0, 0.0, 10.0, 10);
  Reg.observeSample("lat", 9.5, 0.0, 10.0, 10);
  Reg.observeSample("lat", 42.0, 0.0, 10.0, 10); // overflow
  auto Snap = Reg.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(Snap[0].Kind, MetricKind::Histogram);
  EXPECT_EQ(Snap[0].Hist.Count, 3u);
  EXPECT_EQ(Snap[0].Hist.Overflow, 1u);
  EXPECT_DOUBLE_EQ(Snap[0].Hist.Max, 42.0);
  EXPECT_EQ(Snap[0].Hist.Buckets.size(), 10u);
}

//===----------------------------------------------------------------------===//
// JSON export and validation
//===----------------------------------------------------------------------===//

TEST(JsonExport, ValidateJsonAcceptsAndRejects) {
  EXPECT_TRUE(validateJson("{}"));
  EXPECT_TRUE(validateJson("[1, 2.5, -3e4, \"s\", true, false, null]"));
  EXPECT_TRUE(validateJson("{\"a\": {\"b\": [\"\\\"quoted\\\"\"]}}"));
  EXPECT_FALSE(validateJson(""));
  EXPECT_FALSE(validateJson("{"));
  EXPECT_FALSE(validateJson("{\"a\": 1,}"));
  EXPECT_FALSE(validateJson("{} trailing"));
  EXPECT_FALSE(validateJson("{\"a\" 1}"));
}

TEST(JsonExport, MetricsDocumentIsValidAndSchemaVersioned) {
  MetricsRegistry Reg;
  Reg.counter("gc.cycles", 3);
  Reg.gauge("mut.rate", 1.25);
  Reg.observeSample("lat", 2.0, 0.0, 4.0, 4);
  std::string Json = metricsToJson(Reg, "unit_test");
  EXPECT_TRUE(validateJson(Json)) << Json;
  EXPECT_NE(Json.find(BenchSchema), std::string::npos);
  EXPECT_NE(Json.find("\"unit_test\""), std::string::npos);
  EXPECT_NE(Json.find("gc.cycles"), std::string::npos);
  EXPECT_NE(Json.find("mut.rate"), std::string::npos);
}

TEST(JsonExport, ChromeTraceDocumentIsValid) {
  TraceSink Sink(64);
  TraceBuffer *C = Sink.createBuffer(CollectorTid);
  C->record(EventKind::CycleBegin, 0);
  C->record(EventKind::PhaseTransition, 0, 0, 1);
  C->record(EventKind::MarkBegin);
  C->record(EventKind::MarkEnd, 5);
  C->record(EventKind::CycleEnd, 2);
  TraceBuffer *M = Sink.createBuffer(0);
  M->record(EventKind::HandshakeAck, 1, 0, 2);
  M->record(EventKind::BarrierMark, 17);
  std::string Json = traceToChromeJson(Sink);
  EXPECT_TRUE(validateJson(Json)) << Json;
  EXPECT_NE(Json.find("traceEvents"), std::string::npos);
  EXPECT_NE(Json.find(TraceSchema), std::string::npos);
}

TEST(JsonExport, RuntimeStatsExportUnderStableNames) {
  rt::RtStats S;
  S.Cycles.store(2);
  S.TotalFreed.store(7);
  rt::CycleStats C;
  C.HandshakeRounds = 6;
  C.SharedChainsTaken = 1;
  rt::MutStats Mu;
  Mu.Allocs = 9;
  Mu.Parks = 1;
  Mu.ParkNs = 1000;
  Mu.MaxParkNs = 1000;
  MetricsRegistry Reg;
  rt::exportMetrics(S, Reg);
  rt::exportMetrics(C, Reg);
  rt::exportMetrics(Mu, Reg);
  auto Snap = Reg.snapshot();
  auto Has = [&Snap](const std::string &Name, uint64_t Want) {
    auto It = std::find_if(Snap.begin(), Snap.end(),
                           [&](const Metric &M) { return M.Name == Name; });
    ASSERT_NE(It, Snap.end()) << "missing metric " << Name;
    EXPECT_EQ(It->Counter, Want) << Name;
  };
  Has("gc.cycles", 2);
  Has("gc.freed_total", 7);
  Has("cycle.handshake_rounds", 6);
  Has("cycle.shared_chains_taken", 1);
  Has("cycle.splice_walk_steps", 0);
  Has("mut.allocs", 9);
  Has("mut.parks", 1);
  Has("mut.max_pause_ns", 1000);
  std::string Json = metricsToJson(Reg, "stats");
  EXPECT_TRUE(validateJson(Json));
}

//===----------------------------------------------------------------------===//
// End-to-end: a traced collection cycle
//===----------------------------------------------------------------------===//

namespace {

uint64_t countKind(const std::vector<TraceEvent> &Events, EventKind K) {
  return static_cast<uint64_t>(
      std::count_if(Events.begin(), Events.end(),
                    [K](const TraceEvent &E) { return E.Kind == K; }));
}

} // namespace

TEST(RuntimeTrace, DisabledByDefault) {
  rt::RtConfig Cfg;
  Cfg.HeapObjects = 64;
  rt::GcRuntime Rt(Cfg);
  EXPECT_EQ(Rt.traceSink(), nullptr);
  EXPECT_EQ(Rt.collectorTrace(), nullptr);
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  int R = M->alloc();
  ASSERT_GE(R, 0);
  Rt.collectOnce(); // hooks must all be no-ops
  M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(RuntimeTrace, FullCycleProducesCompleteTrace) {
  rt::RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.NumFields = 2;
  Cfg.Trace = true;
  Cfg.TraceBufferEvents = 1u << 12; // ample: nothing may drop
  rt::GcRuntime Rt(Cfg);
  ASSERT_NE(Rt.traceSink(), nullptr);
  ASSERT_NE(Rt.collectorTrace(), nullptr);
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };

  int A = M->alloc();
  int B = M->alloc();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  M->discard(static_cast<size_t>(B)); // garbage after this cycle pair
  rt::CycleStats C1 = Rt.collectOnce();
  rt::CycleStats C2 = Rt.collectOnce();
  ASSERT_EQ(C1.ObjectsFreed + C2.ObjectsFreed, 1u);

  EXPECT_EQ(Rt.traceSink()->totalDropped(), 0u);

  // Collector timeline: every phase transition and every handshake round
  // of both cycles is present.
  auto Col = Rt.collectorTrace()->snapshot();
  EXPECT_EQ(countKind(Col, EventKind::CycleBegin), 2u);
  EXPECT_EQ(countKind(Col, EventKind::CycleEnd), 2u);
  EXPECT_EQ(countKind(Col, EventKind::PhaseTransition), 8u)
      << "4 phase stores per cycle (Init, Mark, Sweep, Idle)";
  EXPECT_EQ(countKind(Col, EventKind::HandshakeRequest),
            C1.HandshakeRounds + C2.HandshakeRounds);
  EXPECT_EQ(countKind(Col, EventKind::MarkBegin), 2u);
  EXPECT_EQ(countKind(Col, EventKind::MarkEnd), 2u);
  EXPECT_GE(countKind(Col, EventKind::SweepBatch), 1u);
  for (const TraceEvent &E : Col)
    EXPECT_EQ(E.Tid, CollectorTid);

  // Mutator timeline: one ack per round (it was registered throughout),
  // and its allocations were traced.
  std::vector<TraceEvent> Mut;
  for (const TraceBuffer *Buf : Rt.traceSink()->buffers())
    if (Buf->tid() != CollectorTid)
      for (const TraceEvent &E : Buf->snapshot())
        Mut.push_back(E);
  EXPECT_EQ(countKind(Mut, EventKind::HandshakeAck),
            C1.HandshakeRounds + C2.HandshakeRounds);
  EXPECT_EQ(countKind(Mut, EventKind::Alloc), 2u);

  // The sweep's Free events name the freed object count.
  EXPECT_EQ(countKind(Col, EventKind::Free),
            C1.ObjectsFreed + C2.ObjectsFreed);

  // And the whole sink renders as one valid Chrome trace document.
  std::string Json = traceToChromeJson(*Rt.traceSink());
  EXPECT_TRUE(validateJson(Json));
  EXPECT_NE(Json.find("phase_transition"), std::string::npos);

  M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(RuntimeTrace, MidCycleOverflowCountsDropsAndKeepsOrder) {
  // Force the rings to wrap mid-cycle: the smallest legal capacity (64
  // events per thread) against cycles that emit hundreds. Overflow must be
  // loud (dropped accounting, trace.dropped_total) and non-corrupting
  // (each surviving window is the newest events, in order).
  rt::RtConfig Cfg;
  Cfg.HeapObjects = 256;
  Cfg.NumFields = 2;
  Cfg.Trace = true;
  Cfg.TraceBufferEvents = 1; // rounds up to the 64-slot minimum
  Cfg.MarkWorkers = 4;
  rt::GcRuntime Rt(Cfg);
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };

  // Enough allocation/discard churn to overflow the mutator ring too.
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    for (int I = 0; I < 100; ++I) {
      int R = M->alloc();
      if (R >= 0)
        M->discard(static_cast<size_t>(R));
    }
    Rt.collectOnce();
  }

  const TraceSink &Sink = *Rt.traceSink();
  EXPECT_GT(Sink.totalDropped(), 0u);

  // Per-buffer: dropped = recorded - retained; the retained window is
  // time-ordered (ring replay starts at the oldest surviving slot).
  uint64_t SumDropped = 0;
  bool SawWorkerTid = false;
  for (const TraceBuffer *Buf : Sink.buffers()) {
    auto Events = Buf->snapshot();
    EXPECT_EQ(Buf->dropped(),
              Buf->recorded() - static_cast<uint64_t>(Events.size()));
    SumDropped += Buf->dropped();
    for (size_t I = 1; I < Events.size(); ++I)
      EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs)
          << "tid " << Buf->tid() << " out of order after wraparound";
    for (const TraceEvent &E : Events)
      EXPECT_EQ(E.Tid, Buf->tid());
    if (Buf->tid() >= MarkWorkerTidBase && Buf->tid() < CollectorTid)
      SawWorkerTid = true;
  }
  EXPECT_EQ(Sink.totalDropped(), SumDropped);
  EXPECT_TRUE(SawWorkerTid) << "mark workers 1..3 trace under 0xff00+W";

  // The drop counter reaches the metrics document...
  MetricsRegistry Reg;
  exportTraceMetrics(Sink, Reg);
  auto Snap = Reg.snapshot();
  auto It = std::find_if(Snap.begin(), Snap.end(), [](const Metric &Mt) {
    return Mt.Name == "trace.dropped_total";
  });
  ASSERT_NE(It, Snap.end());
  EXPECT_EQ(It->Counter, Sink.totalDropped());
  EXPECT_TRUE(validateJson(metricsToJson(Reg, "overflow_test")));

  // ...and the truncated trace still exports as valid Chrome JSON.
  EXPECT_TRUE(validateJson(traceToChromeJson(Sink)));

  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(RuntimeTrace, StwCycleTracesParks) {
  rt::RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.Trace = true;
  rt::GcRuntime Rt(Cfg);
  rt::MutatorContext *M = Rt.registerMutator();
  int A = M->alloc();
  ASSERT_GE(A, 0);
  // STW parks block inside the handler, so the mutator needs its own
  // servicing thread (the HandshakeServicer hook cannot be used).
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  rt::CycleStats CS = Rt.collectStw();
  Done.store(true);
  Service.join();
  EXPECT_EQ(CS.ObjectsRetained, 1u);
  std::vector<TraceEvent> Mut;
  for (const TraceBuffer *Buf : Rt.traceSink()->buffers())
    if (Buf->tid() != CollectorTid)
      for (const TraceEvent &E : Buf->snapshot())
        Mut.push_back(E);
  EXPECT_EQ(countKind(Mut, EventKind::ParkBegin), 1u);
  EXPECT_EQ(countKind(Mut, EventKind::ParkEnd), 1u);
  EXPECT_EQ(M->stats().Parks, 1u);
  M->discard(0);
  Rt.deregisterMutator(M);
}
