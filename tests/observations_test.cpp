//===- tests/observations_test.cpp - Checking the §4 conjectures ----------===//
///
/// The paper closes with two unproved observations:
///   1. "two of the initialization handshakes can be removed on x86-TSO";
///   2. "the insertion barrier can be removed after roots have been marked
///      … in exchange for an extra branch in the store barrier".
/// The authors "have yet to prove this". Here both variants are checked by
/// exhausting finite instances — the same evidence the verified baseline
/// gets — plus randomized sweeps on larger ones.

#include "explore/Explorer.h"
#include "invariants/Describe.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

ModelConfig baseCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  return C;
}

void expectExhaustsCleanly(const ModelConfig &Cfg, const char *What) {
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 60'000'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << What << ": " << Res.Bug->Name << " — " << Res.Bug->Detail
      << (Res.BadState ? "\n" + describeState(M, *Res.BadState) : "");
  EXPECT_FALSE(Res.Truncated) << What << ": state space not exhausted";
  EXPECT_GT(Res.StatesVisited, 1000u);
}

} // namespace

TEST(Observations, MergedInitHandshakesExhaustsSafely) {
  ModelConfig Cfg = baseCfg();
  Cfg.MergedInitHandshakes = true;
  expectExhaustsCleanly(Cfg, "conjecture 1 (merged handshakes)");
}

TEST(Observations, MergedInitHandshakesChainHeap) {
  ModelConfig Cfg = baseCfg();
  Cfg.MergedInitHandshakes = true;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.MutatorAlloc = false;
  expectExhaustsCleanly(Cfg, "conjecture 1, chain heap");
}

TEST(Observations, MergedInitHandshakesTwoMutators) {
  ModelConfig Cfg = baseCfg();
  Cfg.MergedInitHandshakes = true;
  Cfg.NumMutators = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.MutatorAlloc = false;
  Cfg.MutatorLoad = false;
  Cfg.MutatorDiscard = false;
  expectExhaustsCleanly(Cfg, "conjecture 1, two mutators");
}

TEST(Observations, InsertionElisionExhaustsSafely) {
  ModelConfig Cfg = baseCfg();
  Cfg.InsertionBarrierElideAfterRoots = true;
  expectExhaustsCleanly(Cfg, "conjecture 2 (insertion elision)");
}

TEST(Observations, InsertionElisionChainHeap) {
  ModelConfig Cfg = baseCfg();
  Cfg.InsertionBarrierElideAfterRoots = true;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.MutatorAlloc = false;
  expectExhaustsCleanly(Cfg, "conjecture 2, chain heap");
}

TEST(Observations, BothVariantsTogether) {
  ModelConfig Cfg = baseCfg();
  Cfg.MergedInitHandshakes = true;
  Cfg.InsertionBarrierElideAfterRoots = true;
  expectExhaustsCleanly(Cfg, "both §4 variants combined");
}

TEST(Observations, VariantsRandomSweep) {
  for (uint64_t Seed : {5u, 6u, 7u}) {
    ModelConfig Cfg;
    Cfg.NumMutators = 2;
    Cfg.NumRefs = 4;
    Cfg.NumFields = 2;
    Cfg.BufferBound = 2;
    Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
    Cfg.MergedInitHandshakes = true;
    Cfg.InsertionBarrierElideAfterRoots = true;
    GcModel M(Cfg);
    InvariantSuite Inv(M);
    WalkOptions Opts;
    Opts.Steps = 40'000;
    Opts.Seed = Seed;
    WalkResult Res = exploreRandomWalk(M, Inv, Opts);
    ASSERT_FALSE(Res.Bug.has_value())
        << "seed " << Seed << ": " << Res.Bug->Name << " — "
        << Res.Bug->Detail;
    EXPECT_EQ(Res.Deadlocks, 0u);
  }
}

TEST(Observations, MergedVariantRunsFewerRounds) {
  // Merged cycles initiate exactly two fewer rounds; visible through the
  // system's ghost: CurRound never reads H2/H4.
  ModelConfig Cfg = baseCfg();
  Cfg.MergedInitHandshakes = true;
  Cfg.MutatorLoad = Cfg.MutatorStore = Cfg.MutatorAlloc =
      Cfg.MutatorDiscard = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  StateChecker NoH2H4 = [](const GcSystemState &S) -> std::optional<Violation> {
    HsRound R = asSys(S.back().Local).CurRound;
    if (R == HsRound::H2FlipFM || R == HsRound::H4PhaseMark)
      return Violation{"merged-mode", "H2/H4 round initiated"};
    return std::nullopt;
  };
  ExploreResult Res = exploreExhaustive(M, NoH2H4);
  EXPECT_TRUE(Res.exhaustedCleanly());
}
