//===- tests/export_test.cpp - DOT/JSON export tests ----------------------===//

#include "explore/Export.h"
#include "observe/Export.h"
#include "explore/Guided.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

ModelConfig cfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  return C;
}

} // namespace

TEST(Export, DotContainsObjectsAndEdges) {
  GcModel M(cfg());
  std::string Dot = heapToDot(M, M.initial());
  EXPECT_NE(Dot.find("digraph heap"), std::string::npos);
  EXPECT_NE(Dot.find("r0 ["), std::string::npos);
  EXPECT_NE(Dot.find("r1 ["), std::string::npos);
  EXPECT_NE(Dot.find("r0 -> r1 [label=f0]"), std::string::npos);
  EXPECT_NE(Dot.find("mut0 -> r0"), std::string::npos);
  // Initial heap is black (flag == fM).
  EXPECT_NE(Dot.find("fillcolor=black"), std::string::npos);
}

TEST(Export, DotShowsBufferedWriteAsDashedEdge) {
  GcModel M(cfg());
  GuidedDriver D(M);
  // Drive a store to the point where the write sits in the buffer.
  EXPECT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == Ref(0) && Mu.TmpSrc == Ref(0);
  }));
  auto Ops = [](const std::string &L) {
    return true && L.find("sys-dequeue") == std::string::npos;
  };
  EXPECT_TRUE(D.advance(Ops, [&M](const GcSystemState &S) {
    return !M.sysState(S).Mem.buffer(1).empty();
  }));
  std::string Dot = heapToDot(M, D.state());
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("buf(mut0)"), std::string::npos);
}

TEST(Export, StateJsonHasAllSections) {
  GcModel M(cfg());
  std::string J = stateToJson(M, M.initial());
  EXPECT_NE(J.find("\"collector\":{\"phase\":\"Idle\""), std::string::npos);
  EXPECT_NE(J.find("\"mutators\":[{\"roots\":[0]"), std::string::npos);
  EXPECT_NE(J.find("\"heap\":[{\"ref\":0"), std::string::npos);
  EXPECT_NE(J.find("\"round\":\"none\""), std::string::npos);
  // Crude balance check.
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
  EXPECT_EQ(std::count(J.begin(), J.end(), '['),
            std::count(J.begin(), J.end(), ']'));
}

TEST(Export, CleanResultJson) {
  GcModel M(cfg());
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 500;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  std::string J = exploreResultToJson(M, Res);
  EXPECT_NE(J.find("\"violation\":null"), std::string::npos);
  EXPECT_NE(J.find("\"truncated\":true"), std::string::npos);
}

TEST(Export, ViolationResultJsonCarriesTrace) {
  ModelConfig C = cfg();
  C.DeletionBarrier = false;
  C.MutatorAlloc = false;
  C.BufferBound = 1;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 2'000'000;
  ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  std::string J = exploreResultToJson(M, Res);
  EXPECT_NE(J.find("\"violation\":{\"name\":\"safety-headline\""),
            std::string::npos);
  EXPECT_NE(J.find("\"trace\":[\""), std::string::npos);
  EXPECT_NE(J.find("\"badState\":{"), std::string::npos);
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
}

TEST(Export, ExploreMetricsRegisterAndSerialize) {
  GcModel M(cfg());
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 500;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  observe::MetricsRegistry Reg;
  exportMetrics(Res, /*ElapsedSec=*/2.0, Reg);
  auto Snap = Reg.snapshot();
  auto Find = [&Snap](const std::string &Name) {
    for (const observe::Metric &Mt : Snap)
      if (Mt.Name == Name)
        return &Mt;
    return static_cast<const observe::Metric *>(nullptr);
  };
  ASSERT_NE(Find("explore.states"), nullptr);
  EXPECT_EQ(Find("explore.states")->Counter, Res.StatesVisited);
  ASSERT_NE(Find("explore.truncated"), nullptr);
  EXPECT_EQ(Find("explore.truncated")->Counter, 1u);
  ASSERT_NE(Find("explore.states_per_sec"), nullptr);
  EXPECT_DOUBLE_EQ(Find("explore.states_per_sec")->Gauge,
                   static_cast<double>(Res.StatesVisited) / 2.0);
  std::string J = observe::metricsToJson(Reg, "explore_run");
  EXPECT_TRUE(observe::validateJson(J)) << J;
}
