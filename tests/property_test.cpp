//===- tests/property_test.cpp - Parameterized property sweeps ------------===//
///
/// Structural properties checked across a grid of model configurations
/// (bounded exploration) and runtime configurations (deterministic
/// workloads): no deadlock, canonical-encoding injectivity along
/// transitions, work-list disjointness, and reclamation/retention laws.

#include "explore/Explorer.h"
#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

struct ModelParam {
  unsigned Mutators, Refs, Fields, Buffer;
  ModelConfig::InitHeap Heap;
  bool Merged, Elide;
};

std::vector<ModelParam> modelGrid() {
  std::vector<ModelParam> Out;
  for (unsigned Muts : {1u, 2u})
    for (unsigned Buf : {0u, 1u, 2u})
      for (auto Heap : {ModelConfig::InitHeap::Chain,
                        ModelConfig::InitHeap::SharedPair})
        Out.push_back({Muts, 3, 1, Buf, Heap, false, false});
  Out.push_back({1, 3, 2, 1, ModelConfig::InitHeap::Chain, false, false});
  Out.push_back({1, 3, 1, 1, ModelConfig::InitHeap::Chain, true, false});
  Out.push_back({1, 3, 1, 1, ModelConfig::InitHeap::Chain, false, true});
  return Out;
}

ModelConfig toConfig(const ModelParam &P) {
  ModelConfig C;
  C.NumMutators = P.Mutators;
  C.NumRefs = P.Refs;
  C.NumFields = P.Fields;
  C.BufferBound = P.Buffer;
  C.InitialHeap = P.Heap;
  C.MergedInitHandshakes = P.Merged;
  C.InsertionBarrierElideAfterRoots = P.Elide;
  return C;
}

std::string paramName(const ::testing::TestParamInfo<ModelParam> &I) {
  const ModelParam &P = I.param;
  return format("m%u_b%u_h%u_f%u%s%s_%zu", P.Mutators, P.Buffer,
                static_cast<unsigned>(P.Heap), P.Fields,
                P.Merged ? "_merged" : "", P.Elide ? "_elide" : "", I.index);
}

class ModelProperties : public ::testing::TestWithParam<ModelParam> {};

} // namespace

TEST_P(ModelProperties, NoDeadlockInBoundedPrefix) {
  GcModel M(toConfig(GetParam()));
  // Walk a pseudo-random path; every state along it must have successors
  // (the system semantics never wedges: at minimum a handshake poll or a
  // collector step is enabled).
  GcSystemState S = M.initial();
  uint64_t X = 0x9e3779b97f4a7c15ULL;
  for (int Step = 0; Step < 400; ++Step) {
    auto Succs = M.system().successors(S);
    ASSERT_FALSE(Succs.empty()) << "deadlock at step " << Step;
    X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    S = std::move(Succs[X % Succs.size()].State);
  }
}

TEST_P(ModelProperties, EncodingSeparatesTransitions) {
  GcModel M(toConfig(GetParam()));
  GcSystemState S = M.initial();
  uint64_t X = 12345;
  for (int Step = 0; Step < 60; ++Step) {
    auto Succs = M.system().successors(S);
    ASSERT_FALSE(Succs.empty());
    // Distinct successor states encode distinctly; equal states equal.
    for (size_t I = 0; I < Succs.size(); ++I)
      for (size_t J = I + 1; J < Succs.size(); ++J) {
        bool SameEnc =
            M.encode(Succs[I].State) == M.encode(Succs[J].State);
        bool SameState = Succs[I].State == Succs[J].State;
        EXPECT_EQ(SameEnc, SameState)
            << Succs[I].Label << " vs " << Succs[J].Label;
      }
    X = X * 6364136223846793005ULL + 1;
    S = std::move(Succs[X % Succs.size()].State);
  }
}

TEST_P(ModelProperties, LabelsIdentifyActingProcess) {
  GcModel M(toConfig(GetParam()));
  auto Succs = M.system().successors(M.initial());
  for (const auto &Succ : Succs) {
    ASSERT_GE(Succ.Label.size(), 3u);
    EXPECT_EQ(Succ.Label[0], 'p');
    EXPECT_EQ(Succ.Label.substr(0, format("p%u", Succ.P).size()),
              format("p%u", Succ.P));
  }
}

TEST_P(ModelProperties, InvariantsHoldOnBoundedPrefix) {
  GcModel M(toConfig(GetParam()));
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 30'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  EXPECT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail;
}

INSTANTIATE_TEST_SUITE_P(Grid, ModelProperties,
                         ::testing::ValuesIn(modelGrid()), paramName);

//===----------------------------------------------------------------------===//
// Runtime property sweeps.
//===----------------------------------------------------------------------===//

namespace {

struct RtParam {
  uint32_t HeapObjects;
  uint32_t Fields;
  uint32_t Pool;
  bool Merged;
  bool Elide;
};

std::vector<RtParam> rtGrid() {
  std::vector<RtParam> Out;
  for (uint32_t Pool : {0u, 8u})
    for (bool Merged : {false, true})
      Out.push_back({256, 2, Pool, Merged, false});
  Out.push_back({256, 1, 0, false, true});
  Out.push_back({64, 1, 4, true, true});
  return Out;
}

class RuntimeProperties : public ::testing::TestWithParam<RtParam> {};

rt::RtConfig toRtConfig(const RtParam &P) {
  rt::RtConfig C;
  C.HeapObjects = P.HeapObjects;
  C.NumFields = P.Fields;
  C.LocalAllocPool = P.Pool;
  C.MergedInitHandshakes = P.Merged;
  C.InsertionBarrierElideAfterRoots = P.Elide;
  return C;
}

} // namespace

TEST_P(RuntimeProperties, RootedSurviveUnrootedDieWithinTwoCycles) {
  rt::GcRuntime Rt(toRtConfig(GetParam()));
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  // 8 rooted, 24 garbage.
  for (int I = 0; I < 8; ++I)
    ASSERT_GE(M->alloc(), 0);
  for (int I = 0; I < 24; ++I) {
    int Idx = M->alloc();
    ASSERT_GE(Idx, 0);
    M->discard(static_cast<size_t>(Idx));
  }
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 8u);
  // Every root still validates.
  for (size_t I = 0; I < M->numRoots(); ++I)
    M->load(I, 0);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST_P(RuntimeProperties, HeapDrainsCompletely) {
  rt::GcRuntime Rt(toRtConfig(GetParam()));
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  // Build then abandon a deep chain.
  int Head = M->alloc();
  ASSERT_GE(Head, 0);
  size_t HeadIdx = static_cast<size_t>(Head);
  for (int I = 0; I < 30; ++I) {
    int N = M->alloc();
    ASSERT_GE(N, 0);
    M->store(HeadIdx, static_cast<size_t>(N), 0);
    M->discard(HeadIdx);
  }
  while (M->numRoots())
    M->discard(0);
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
  Rt.deregisterMutator(M);
}

TEST_P(RuntimeProperties, MergedVariantRunsFewerHandshakes) {
  const RtParam &P = GetParam();
  rt::GcRuntime Rt(toRtConfig(P));
  rt::MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  rt::CycleStats CS = Rt.collectOnce();
  // Baseline: 4 noop + 1 get-roots + ≥1 get-work = ≥6 rounds; merged saves
  // exactly two noop rounds.
  if (P.Merged)
    EXPECT_EQ(CS.HandshakeRounds, 4u + CS.TerminationRounds - 1);
  else
    EXPECT_EQ(CS.HandshakeRounds, 6u + CS.TerminationRounds - 1);
  Rt.deregisterMutator(M);
}

INSTANTIATE_TEST_SUITE_P(Grid, RuntimeProperties,
                         ::testing::ValuesIn(rtGrid()),
                         [](const ::testing::TestParamInfo<RtParam> &I) {
                           const RtParam &P = I.param;
                           return format("h%u_f%u_p%u%s%s", P.HeapObjects,
                                         P.Fields, P.Pool,
                                         P.Merged ? "_merged" : "",
                                         P.Elide ? "_elide" : "");
                         });
