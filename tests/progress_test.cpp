//===- tests/progress_test.cpp - Bounded progress (the liveness §4 owes) --===//
///
/// The paper proves safety only: "We know that garbage is collected within
/// two cycles of the collector's outer loop, up to liveness of the
/// mutators and hardware, but again we owe this a proof." Here is a
/// bounded check of the progress side: from arbitrary reachable states —
/// sampled by random walks — a schedule exists that completes the current
/// collection cycle. That is, the composed system is never wedged in a
/// state from which the collector cannot finish (no lost-wakeup, no
/// deadlocked handshake, no stuck CAS).

#include "explore/Explorer.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <unordered_map>

using namespace tsogc;

namespace {

struct ProgressParam {
  unsigned Mutators;
  unsigned Refs;
  unsigned Buffer;
  uint64_t Seed;
};

class Progress : public ::testing::TestWithParam<ProgressParam> {};

} // namespace

TEST_P(Progress, CycleCompletionReachableFromSampledStates) {
  const ProgressParam &P = GetParam();
  ModelConfig Cfg;
  Cfg.NumMutators = P.Mutators;
  Cfg.NumRefs = P.Refs;
  Cfg.NumFields = 1;
  Cfg.BufferBound = P.Buffer;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(Cfg);

  // Sample states along a random walk, then from each show that some
  // schedule strictly advances the cycle counter.
  Xoshiro256 Rng(P.Seed);
  GcSystemState S = M.initial();
  std::vector<GcSuccessor> Succs;
  unsigned Sampled = 0;
  for (int Step = 0; Step < 3000 && Sampled < 8; ++Step) {
    Succs.clear();
    M.system().successors(S, Succs);
    ASSERT_FALSE(Succs.empty());
    S = std::move(Succs[Rng.nextBelow(Succs.size())].State);
    if (Step % 400 != 399)
      continue;
    ++Sampled;
    const uint32_t Before = GcModel::collector(S).CycleCount;
    // DFS from the sampled state until some path bumps the counter.
    std::vector<GcSystemState> Frontier{S};
    std::unordered_map<std::string, bool> Seen;
    Seen[M.encode(S)] = true;
    bool Reached = false;
    uint64_t Budget = 400'000;
    std::vector<GcSuccessor> Next;
    while (!Frontier.empty() && Budget && !Reached) {
      GcSystemState Cur = std::move(Frontier.back());
      Frontier.pop_back();
      Next.clear();
      M.system().successors(Cur, Next);
      for (auto &Succ : Next) {
        if (GcModel::collector(Succ.State).CycleCount > Before) {
          Reached = true;
          break;
        }
        auto Key = M.encode(Succ.State);
        if (Seen.emplace(std::move(Key), true).second) {
          Frontier.push_back(std::move(Succ.State));
          --Budget;
          if (!Budget)
            break;
        }
      }
    }
    EXPECT_TRUE(Reached) << "no cycle-completing schedule found from a "
                            "state sampled at step "
                         << Step;
  }
  EXPECT_GE(Sampled, 7u);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, Progress,
    ::testing::Values(ProgressParam{1, 3, 1, 101},
                      ProgressParam{1, 3, 2, 202},
                      ProgressParam{2, 3, 1, 303}),
    [](const ::testing::TestParamInfo<ProgressParam> &I) {
      return format("m%u_r%u_b%u", I.param.Mutators, I.param.Refs,
                    I.param.Buffer);
    });
