//===- tests/stw_test.cpp - The stop-the-world baseline (E11) -------------===//

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc::rt;

namespace {

/// Run one STW cycle with real mutator threads parked at safepoints.
/// \p Mutate is executed by each mutator thread before the cycle.
CycleStats stwCycleWith(GcRuntime &Rt, std::vector<MutatorContext *> &Ms,
                        const std::function<void(MutatorContext *)> &Mutate) {
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Ready{0};
  for (auto *M : Ms)
    Threads.emplace_back([&, M] {
      Mutate(M);
      Ready.fetch_add(1);
      while (!Done.load(std::memory_order_relaxed)) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  while (Ready.load() < Ms.size())
    std::this_thread::yield();
  CycleStats CS = Rt.collectStw();
  Done.store(true);
  for (auto &T : Threads)
    T.join();
  return CS;
}

} // namespace

TEST(StwCollector, RootedSurviveGarbageDies) {
  RtConfig Cfg;
  Cfg.HeapObjects = 512;
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms{Rt.registerMutator()};
  CycleStats CS = stwCycleWith(Rt, Ms, [](MutatorContext *M) {
    for (int I = 0; I < 10; ++I)
      ASSERT_GE(M->alloc(), 0);
    for (int I = 0; I < 20; ++I) {
      int Idx = M->alloc();
      ASSERT_GE(Idx, 0);
      M->discard(static_cast<size_t>(Idx));
    }
  });
  // STW collects *everything* unreachable in one cycle: no snapshot, no
  // floating garbage.
  EXPECT_EQ(CS.ObjectsFreed, 20u);
  EXPECT_EQ(CS.ObjectsRetained, 10u);
  EXPECT_EQ(Rt.heap().allocatedCount(), 10u);
  // The parked mutator saw exactly the park handshake (plus the resume,
  // folded into the same handler).
  EXPECT_GE(Ms[0]->stats().HandshakesSeen, 1u);
  while (Ms[0]->numRoots())
    Ms[0]->discard(0);
  Rt.deregisterMutator(Ms[0]);
}

TEST(StwCollector, TracesHeapChains) {
  RtConfig Cfg;
  Cfg.HeapObjects = 512;
  Cfg.NumFields = 1;
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms{Rt.registerMutator()};
  CycleStats CS = stwCycleWith(Rt, Ms, [](MutatorContext *M) {
    // Chain of 8 with only the head rooted.
    int Head = M->alloc();
    ASSERT_GE(Head, 0);
    size_t HeadIdx = static_cast<size_t>(Head);
    for (int I = 0; I < 7; ++I) {
      int N = M->alloc();
      ASSERT_GE(N, 0);
      M->store(HeadIdx, static_cast<size_t>(N), 0);
      M->discard(HeadIdx);
    }
  });
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  EXPECT_EQ(Rt.heap().allocatedCount(), 8u);
  while (Ms[0]->numRoots())
    Ms[0]->discard(0);
  Rt.deregisterMutator(Ms[0]);
}

TEST(StwCollector, MultipleMutatorsAllParked) {
  RtConfig Cfg;
  Cfg.HeapObjects = 512;
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < 3; ++I)
    Ms.push_back(Rt.registerMutator());
  CycleStats CS = stwCycleWith(Rt, Ms, [](MutatorContext *M) {
    ASSERT_GE(M->alloc(), 0);
  });
  EXPECT_EQ(CS.ObjectsRetained, 3u);
  for (auto *M : Ms) {
    EXPECT_GE(M->stats().MaxHandshakeNs, 1u)
        << "park time must be recorded as a pause";
    while (M->numRoots())
      M->discard(0);
    Rt.deregisterMutator(M);
  }
}

TEST(StwCollector, AlternatingWithOnTheFlyCycles) {
  // The two collectors share the mark-sense machinery; alternating them
  // must preserve safety and reclaim everything.
  RtConfig Cfg;
  Cfg.HeapObjects = 512;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  int Keep = M->alloc();
  ASSERT_GE(Keep, 0);
  for (int I = 0; I < 50; ++I) {
    int Idx = M->alloc();
    ASSERT_GE(Idx, 0);
    M->discard(static_cast<size_t>(Idx));
  }
  Rt.collectOnce(); // on-the-fly
  // STW requires parked threads; emulate single-threaded by running it
  // with no *other* threads: the servicer cannot park, so spawn a thread.
  std::vector<MutatorContext *> Ms{M};
  Rt.HandshakeServicer = nullptr;
  CycleStats CS = stwCycleWith(Rt, Ms, [](MutatorContext *) {});
  (void)CS;
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 1u);
  EXPECT_EQ(M->load(0, 0), -1); // still valid
  M->discard(0);
  Rt.deregisterMutator(M);
}
