//===- tests/handshake_test.cpp - Soft handshakes in the model (Figs 3, 4) -===//

#include "explore/Guided.h"
#include "invariants/InvariantSuite.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

/// Config-independent neutral schedule: the collector, the system's commit
/// step, and every mutator's handshake handling (but no Figure 6 ops).
bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0)
    return true;
  if (L.find("sys-dequeue-write-buffer") != std::string::npos)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

ModelConfig twoMutCfg() {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  return C;
}

ModelConfig oneMutCfg() {
  ModelConfig C = twoMutCfg();
  C.NumMutators = 1;
  return C;
}

} // namespace

TEST(Handshake, RoundsProgressInOrder) {
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  const HsRound Seq[] = {HsRound::H1Idle,      HsRound::H2FlipFM,
                         HsRound::H3PhaseInit, HsRound::H4PhaseMark,
                         HsRound::H5GetRoots,  HsRound::H6GetWork};
  for (HsRound R : Seq)
    ASSERT_TRUE(D.advance(neutral, [&M, R](const GcSystemState &S) {
      return M.mutator(S, 0).CompletedRound == R;
    })) << "round " << hsRoundName(R);
}

TEST(Handshake, CollectorBlocksUntilMutatorAcks) {
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  // Allow only collector and system: the collector can initiate H1 but can
  // never complete the round because the mutator never acknowledges.
  auto NoMutator = [](const std::string &L) {
    return L.rfind("p0:", 0) == 0 ||
           L.find("sys-dequeue-write-buffer") != std::string::npos;
  };
  EXPECT_FALSE(D.advance(
      NoMutator,
      [&M](const GcSystemState &S) {
        return GcModel::collector(S).FM != false; // the post-H1 fM flip
      },
      50'000));
}

TEST(Handshake, MutatorLearnsPhaseOnlyAtHandshake) {
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  // Run to the point where the collector set phase=Init in memory but the
  // mutator has only completed H2.
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.sysState(S).Mem.memoryRead(MemLoc::globalVar(GVarPhase))
                   .asByte() == static_cast<uint8_t>(GcPhase::Init) &&
           M.mutator(S, 0).CompletedRound == HsRound::H2FlipFM;
  }));
  // The mutator still sees Idle (its barriers are off).
  EXPECT_EQ(M.mutator(D.state(), 0).PhaseLocal, GcPhase::Idle);
  // After completing H3 it sees Init.
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H3PhaseInit;
  }));
  EXPECT_EQ(M.mutator(D.state(), 0).PhaseLocal, GcPhase::Init);
}

TEST(Handshake, RaggedRounds) {
  // With two mutators, one can be a full round ahead of the other: m0 has
  // completed H5 while m1 is still at H4 — and m0 keeps mutating.
  GcModel M(twoMutCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H4PhaseMark &&
           M.mutator(S, 1).CompletedRound == HsRound::H4PhaseMark &&
           M.sysState(S).CurRound == HsRound::H5GetRoots &&
           M.sysState(S).HsPending[0] && M.sysState(S).HsPending[1];
  }));
  // Let only m0 (and collector/sys) advance through its H5; m1 (pid 2)
  // never polls.
  auto M0Only = [](const std::string &L) {
    if (L.rfind("p0:", 0) == 0 ||
        L.find("sys-dequeue-write-buffer") != std::string::npos)
      return true;
    return L.rfind("p1:mut:hs-", 0) == 0 || L.rfind("p1:mut:root", 0) == 0;
  };
  ASSERT_TRUE(D.advance(M0Only, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H5GetRoots;
  }));
  EXPECT_EQ(M.mutator(D.state(), 1).CompletedRound, HsRound::H4PhaseMark);
  // The handshake-phase relation of §3.2 still holds in this ragged state.
  InvariantSuite Inv(M);
  EXPECT_FALSE(Inv.checkHandshakeRelation(D.state()).has_value());
}

TEST(Handshake, FenceForcesControlWritesBeforeBits) {
  // When a mutator observes its pending bit for H2, the fM store has
  // already committed: the H2 fence-initiate drained the collector buffer.
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.sysState(S).CurRound == HsRound::H2FlipFM &&
           M.sysState(S).HsPending[0];
  }));
  const SysLocal &Sys = M.sysState(D.state());
  EXPECT_TRUE(Sys.Mem.bufferEmpty(0)) << "collector buffer must be drained";
  EXPECT_EQ(Sys.Mem.memoryRead(MemLoc::globalVar(GVarFM)).asBool(),
            GcModel::collector(D.state()).FM);
}

TEST(Handshake, WorklistTransferredAtGetRoots) {
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  // After the mutator completes H5, its private work-list is empty and the
  // shared (or already-taken) work-list holds its root.
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H5GetRoots;
  }));
  EXPECT_TRUE(M.mutator(D.state(), 0).WM.empty());
  const auto &Shared = M.sysState(D.state()).SharedW;
  const auto &W = GcModel::collector(D.state()).W;
  EXPECT_TRUE(Shared.count(Ref(0)) || W.count(Ref(0)));
}

TEST(Handshake, TerminationRoundRunsAtLeastOnce) {
  GcModel M(oneMutCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  // CurRound after a completed cycle is the last round initiated: get-work.
  EXPECT_EQ(M.sysState(D.state()).CurRound, HsRound::H6GetWork);
}

TEST(Handshake, PendingBitsClearBetweenRounds) {
  GcModel M(twoMutCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.sysState(S).CurRound == HsRound::H3PhaseInit &&
           !M.sysState(S).HsPending[0] && !M.sysState(S).HsPending[1] &&
           M.mutator(S, 0).CompletedRound == HsRound::H3PhaseInit &&
           M.mutator(S, 1).CompletedRound == HsRound::H3PhaseInit;
  }));
  SUCCEED();
}
