//===- tests/support_test.cpp - Unit tests for the support library --------===//

#include "support/HashCombine.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace tsogc;

TEST(HashCombine, MixChangesWithValue) {
  EXPECT_NE(hashMix(0, 1), hashMix(0, 2));
  EXPECT_NE(hashMix(1, 1), hashMix(2, 1));
}

TEST(HashCombine, BytesOrderSensitive) {
  const char A[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const char B[] = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_NE(hashBytes(A, sizeof(A)), hashBytes(B, sizeof(B)));
}

TEST(HashCombine, BytesLengthSensitive) {
  const char A[] = {0, 0, 0, 0};
  EXPECT_NE(hashBytes(A, 3), hashBytes(A, 4));
}

TEST(HashCombine, TailBytesMatter) {
  // Nine bytes: the ninth lands in the tail word.
  char A[9] = {};
  char B[9] = {};
  B[8] = 1;
  EXPECT_NE(hashBytes(A, 9), hashBytes(B, 9));
}

TEST(Random, Deterministic) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, SeedsDiffer) {
  Xoshiro256 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(Random, NextBelowInRange) {
  Xoshiro256 R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Random, NextBelowCoversAllResidues) {
  Xoshiro256 R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 R(3);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BoolRoughlyFair) {
  Xoshiro256 R(11);
  int Heads = 0;
  for (int I = 0; I < 10000; ++I)
    Heads += R.nextBool() ? 1 : 0;
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(RunningStat, Basics) {
  RunningStat S;
  S.add(1.0);
  S.add(2.0);
  S.add(3.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
  EXPECT_DOUBLE_EQ(S.variance(), 1.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat S;
  S.add(5.0);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 5.0);
  EXPECT_DOUBLE_EQ(S.max(), 5.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram H(0.0, 10.0, 10);
  for (int I = 0; I < 100; ++I)
    H.add(static_cast<double>(I % 10) + 0.5);
  EXPECT_EQ(H.total(), 100u);
  for (unsigned B = 0; B < 10; ++B)
    EXPECT_EQ(H.bucketCount(B), 10u);
  EXPECT_NEAR(H.quantile(0.5), 5.0, 1.01);
  EXPECT_NEAR(H.quantile(0.95), 10.0, 1.01);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram H(0.0, 1.0, 4);
  H.add(-5.0);
  H.add(5.0);
  H.add(0.5);
  EXPECT_EQ(H.total(), 3u);
  std::string R = H.render();
  EXPECT_NE(R.find("underflow=1"), std::string::npos);
  EXPECT_NE(R.find("overflow=1"), std::string::npos);
}

TEST(StringUtils, Format) {
  EXPECT_EQ(format("a%db", 7), "a7b");
  EXPECT_EQ(format("%s-%s", "x", "y"), "x-y");
  EXPECT_EQ(format("plain"), "plain");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}
