//===- tests/policy_test.cpp - Collector scheduling policy ----------------===//
///
/// The paper "omits scheduling decisions (i.e., when to trigger a
/// collection)"; the runtime provides the minimal occupancy policy an
/// adopter needs. These tests pin its semantics.

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig cfg() {
  RtConfig C;
  C.HeapObjects = 256;
  C.NumFields = 1;
  return C;
}

} // namespace

TEST(CollectorPolicy, NoCyclesBelowTrigger) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::CollectorPolicy P;
  P.OccupancyTrigger = 0.5; // 128 objects
  Rt.startCollector(P);
  // Far below the trigger: the collector stays idle.
  for (int I = 0; I < 10; ++I) {
    int Idx = M->alloc();
    ASSERT_GE(Idx, 0);
    M->safepoint();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Rt.stats().Cycles.load(), 0u);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

// Regression: on a tiny heap a small positive trigger truncated to a
// threshold of zero, which the collector loop reads as "collect
// continuously" — the exact opposite of the requested policy. A positive
// trigger is now clamped to at least one object.
TEST(CollectorPolicy, TinyHeapPositiveTriggerStillIdles) {
  RtConfig C = cfg();
  C.HeapObjects = 10;
  GcRuntime Rt(C);
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::CollectorPolicy P;
  P.OccupancyTrigger = 0.05; // 0.5 objects: truncates to 0 pre-fix
  P.IdlePollUs = 10;
  Rt.startCollector(P);
  // Empty heap, positive trigger: the collector must idle. Pre-fix it
  // started a cycle immediately (a zero threshold reads as continuous
  // mode) and sat mid-cycle blocked on the cycle's first unserviced
  // handshake — completed-cycle count alone cannot see that, but the
  // handshake sequence counter can: an idle collector initiates no rounds.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Rt.stats().Cycles.load(), 0u)
      << "a positive trigger must never mean collect-continuously";
  EXPECT_EQ(Rt.HsSeq.load(), 0u)
      << "collector initiated a handshake below the clamped trigger";
  // One allocation reaches the clamped one-object threshold.
  int Idx = M->alloc();
  ASSERT_GE(Idx, 0);
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (Rt.stats().Cycles.load() == 0 &&
         std::chrono::steady_clock::now() < Deadline)
    M->safepoint();
  EXPECT_GE(Rt.stats().Cycles.load(), 1u) << "clamped trigger never fired";
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(CollectorPolicy, TriggersUnderPressure) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::CollectorPolicy P;
  P.OccupancyTrigger = 0.25; // 64 objects
  P.IdlePollUs = 10;
  Rt.startCollector(P);
  // Produce garbage past the trigger and keep servicing safepoints until
  // the collector has reclaimed it.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool Reclaimed = false;
  while (std::chrono::steady_clock::now() < Deadline) {
    M->safepoint();
    int Idx = M->alloc();
    if (Idx >= 0)
      M->discard(static_cast<size_t>(Idx));
    if (Rt.stats().Cycles.load() >= 2 &&
        Rt.stats().TotalFreed.load() > 0) {
      Reclaimed = true;
      break;
    }
  }
  EXPECT_TRUE(Reclaimed) << "occupancy trigger never fired";
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
}

TEST(CollectorPolicy, ContinuousModeIsDefault) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector(); // trigger 0: back-to-back cycles
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  while (Rt.stats().Cycles.load() < 3 &&
         std::chrono::steady_clock::now() < Deadline)
    M->safepoint();
  EXPECT_GE(Rt.stats().Cycles.load(), 3u);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
}
