//===- tests/policy_test.cpp - Collector scheduling policy ----------------===//
///
/// The paper "omits scheduling decisions (i.e., when to trigger a
/// collection)"; the runtime provides the minimal occupancy policy an
/// adopter needs. These tests pin its semantics.

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig cfg() {
  RtConfig C;
  C.HeapObjects = 256;
  C.NumFields = 1;
  return C;
}

} // namespace

TEST(CollectorPolicy, NoCyclesBelowTrigger) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::CollectorPolicy P;
  P.OccupancyTrigger = 0.5; // 128 objects
  Rt.startCollector(P);
  // Far below the trigger: the collector stays idle.
  for (int I = 0; I < 10; ++I) {
    int Idx = M->alloc();
    ASSERT_GE(Idx, 0);
    M->safepoint();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Rt.stats().Cycles.load(), 0u);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(CollectorPolicy, TriggersUnderPressure) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::CollectorPolicy P;
  P.OccupancyTrigger = 0.25; // 64 objects
  P.IdlePollUs = 10;
  Rt.startCollector(P);
  // Produce garbage past the trigger and keep servicing safepoints until
  // the collector has reclaimed it.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool Reclaimed = false;
  while (std::chrono::steady_clock::now() < Deadline) {
    M->safepoint();
    int Idx = M->alloc();
    if (Idx >= 0)
      M->discard(static_cast<size_t>(Idx));
    if (Rt.stats().Cycles.load() >= 2 &&
        Rt.stats().TotalFreed.load() > 0) {
      Reclaimed = true;
      break;
    }
  }
  EXPECT_TRUE(Reclaimed) << "occupancy trigger never fired";
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
}

TEST(CollectorPolicy, ContinuousModeIsDefault) {
  GcRuntime Rt(cfg());
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector(); // trigger 0: back-to-back cycles
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  while (Rt.stats().Cycles.load() < 3 &&
         std::chrono::steady_clock::now() < Deadline)
    M->safepoint();
  EXPECT_GE(Rt.stats().Cycles.load(), 3u);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
}
