//===- tests/runtime_pool_test.cpp - The §4 allocation-pool extension -----===//

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig poolCfg(uint32_t Pool) {
  RtConfig C;
  C.HeapObjects = 256;
  C.NumFields = 1;
  C.LocalAllocPool = Pool;
  return C;
}

} // namespace

TEST(AllocPool, ReserveBatchTakesSlots) {
  RtHeap H(poolCfg(0));
  std::vector<RtRef> Pool;
  EXPECT_EQ(H.reserveBatch(Pool, 16), 16u);
  EXPECT_EQ(Pool.size(), 16u);
  // Reserved slots are not allocated and not visible to plain alloc: after
  // draining the rest of the heap, alloc fails even though 16 reserved
  // slots exist.
  for (unsigned I = 0; I < 256 - 16; ++I)
    EXPECT_NE(H.alloc(false), RtNull);
  EXPECT_EQ(H.alloc(false), RtNull);
  EXPECT_EQ(H.allocatedCount(), 256u - 16u);
  H.unreserve(Pool);
  EXPECT_NE(H.alloc(false), RtNull);
}

TEST(AllocPool, ReserveBatchPartialWhenShort) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 8;
  RtHeap H(C);
  std::vector<RtRef> Pool;
  EXPECT_EQ(H.reserveBatch(Pool, 16), 8u);
  EXPECT_EQ(H.reserveBatch(Pool, 1), 0u);
}

TEST(AllocPool, AllocFromReservedInitializes) {
  RtHeap H(poolCfg(0));
  std::vector<RtRef> Pool;
  H.reserveBatch(Pool, 1);
  RtRef R = H.allocFromReserved(Pool[0], true);
  EXPECT_TRUE(H.isAllocated(R));
  EXPECT_TRUE(H.markFlag(R));
  EXPECT_EQ(H.field(R, 0), RtNull);
}

TEST(AllocPool, MutatorAllocUsesPool) {
  GcRuntime Rt(poolCfg(32));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  for (int I = 0; I < 100; ++I)
    ASSERT_GE(M->alloc(), 0);
  EXPECT_EQ(Rt.heap().allocatedCount(), 100u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M); // returns the residual pool
  // Everything is reclaimable afterwards: 100 garbage objects.
  MutatorContext *M2 = Rt.registerMutator();
  Rt.HandshakeServicer = [M2] { M2->safepoint(); };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
  Rt.deregisterMutator(M2);
}

TEST(AllocPool, PooledObjectsSurviveCollection) {
  GcRuntime Rt(poolCfg(32));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  int A = M->alloc();
  ASSERT_GE(A, 0);
  Rt.collectOnce();
  Rt.collectOnce();
  // The rooted pooled allocation survives; its reserved siblings are not
  // swept (they are unallocated).
  EXPECT_EQ(Rt.heap().allocatedCount(), 1u);
  EXPECT_EQ(M->load(0, 0), -1); // validated access succeeds
  M->discard(0);
  Rt.deregisterMutator(M);
}

// Regression: near exhaustion, one thread's pool refill used to reserve
// up to the free list's whole tail, failing peers' allocations while free
// slots sat idle in a pool that never used them. Refills are now capped
// to a quarter of the remaining free slots (and allocation falls back to
// the global list when the pool cannot be refilled at all).
TEST(AllocPool, NearFullHeapDoesNotStrandFreeSlotsInPools) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 32;
  GcRuntime Rt(C);
  MutatorContext *M1 = Rt.registerMutator();
  MutatorContext *M2 = Rt.registerMutator();
  // M2 allocates once — refilling its pool — then goes idle, stranding the
  // unused reserve. Pre-fix the refill grabbed min(PoolSize, free) = 16 of
  // the 32 slots for a single allocation.
  ASSERT_GE(M2->alloc(), 0);
  // M1 must still reach the bulk of the heap through its own capped
  // refills: at most a quarter of the free list is at risk per refill, so
  // well over 20 of the remaining 31 slots stay allocatable (pre-fix M1
  // topped out at 16).
  int Ok = 0;
  for (int I = 0; I < 31; ++I)
    if (M1->alloc() >= 0)
      ++Ok;
  EXPECT_GE(Ok, 20);
  EXPECT_EQ(Rt.heap().allocatedCount(), static_cast<uint32_t>(Ok) + 1u);
  while (M1->numRoots())
    M1->discard(0);
  while (M2->numRoots())
    M2->discard(0);
  Rt.deregisterMutator(M1);
  Rt.deregisterMutator(M2);
}

TEST(AllocPool, ConcurrentPooledAllocators) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 4096;
  GcRuntime Rt(C);
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < 4; ++I)
    Ms.push_back(Rt.registerMutator());
  std::vector<std::thread> Ts;
  std::atomic<uint32_t> Allocated{0};
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = Ms[T];
      for (int I = 0; I < 512; ++I) {
        if (M->alloc() >= 0)
          Allocated.fetch_add(1);
        M->safepoint();
      }
      while (M->numRoots())
        M->discard(0);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Allocated.load(), 4u * 512u);
  EXPECT_EQ(Rt.heap().allocatedCount(), 4u * 512u);
  for (auto *M : Ms)
    Rt.deregisterMutator(M);
}

TEST(AllocPool, StressWithConcurrentCollection) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 1024;
  GcRuntime Rt(C);
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector();
  for (int I = 0; I < 20'000; ++I) {
    M->safepoint();
    int Idx = M->alloc();
    if (Idx >= 0 && M->numRoots() > 16)
      M->discard(0);
  }
  while (M->numRoots())
    M->discard(0);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
  SUCCEED(); // validation would have aborted on any unsafe free
}
