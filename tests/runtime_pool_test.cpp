//===- tests/runtime_pool_test.cpp - The §4 allocation-pool extension -----===//

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig poolCfg(uint32_t Pool) {
  RtConfig C;
  C.HeapObjects = 256;
  C.NumFields = 1;
  C.LocalAllocPool = Pool;
  return C;
}

} // namespace

TEST(AllocPool, ReserveBatchTakesSlots) {
  RtHeap H(poolCfg(0));
  std::vector<RtRef> Pool;
  EXPECT_EQ(H.reserveBatch(Pool, 16), 16u);
  EXPECT_EQ(Pool.size(), 16u);
  // Reserved slots are not allocated and not visible to plain alloc: after
  // draining the rest of the heap, alloc fails even though 16 reserved
  // slots exist.
  for (unsigned I = 0; I < 256 - 16; ++I)
    EXPECT_NE(H.alloc(false), RtNull);
  EXPECT_EQ(H.alloc(false), RtNull);
  EXPECT_EQ(H.allocatedCount(), 256u - 16u);
  H.unreserve(Pool);
  EXPECT_NE(H.alloc(false), RtNull);
}

TEST(AllocPool, ReserveBatchPartialWhenShort) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 8;
  RtHeap H(C);
  std::vector<RtRef> Pool;
  EXPECT_EQ(H.reserveBatch(Pool, 16), 8u);
  EXPECT_EQ(H.reserveBatch(Pool, 1), 0u);
}

TEST(AllocPool, AllocFromReservedInitializes) {
  RtHeap H(poolCfg(0));
  std::vector<RtRef> Pool;
  H.reserveBatch(Pool, 1);
  RtRef R = H.allocFromReserved(Pool[0], true);
  EXPECT_TRUE(H.isAllocated(R));
  EXPECT_TRUE(H.markFlag(R));
  EXPECT_EQ(H.field(R, 0), RtNull);
}

TEST(AllocPool, MutatorAllocUsesPool) {
  GcRuntime Rt(poolCfg(32));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  for (int I = 0; I < 100; ++I)
    ASSERT_GE(M->alloc(), 0);
  EXPECT_EQ(Rt.heap().allocatedCount(), 100u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M); // returns the residual pool
  // Everything is reclaimable afterwards: 100 garbage objects.
  MutatorContext *M2 = Rt.registerMutator();
  Rt.HandshakeServicer = [M2] { M2->safepoint(); };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
  Rt.deregisterMutator(M2);
}

TEST(AllocPool, PooledObjectsSurviveCollection) {
  GcRuntime Rt(poolCfg(32));
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [M] { M->safepoint(); };
  int A = M->alloc();
  ASSERT_GE(A, 0);
  Rt.collectOnce();
  Rt.collectOnce();
  // The rooted pooled allocation survives; its reserved siblings are not
  // swept (they are unallocated).
  EXPECT_EQ(Rt.heap().allocatedCount(), 1u);
  EXPECT_EQ(M->load(0, 0), -1); // validated access succeeds
  M->discard(0);
  Rt.deregisterMutator(M);
}

// Regression: near exhaustion, one thread's pool refill used to reserve
// up to the free list's whole tail, failing peers' allocations while free
// slots sat idle in a pool that never used them. Refills are now capped
// to a quarter of the remaining free slots (and allocation falls back to
// the global list when the pool cannot be refilled at all).
TEST(AllocPool, NearFullHeapDoesNotStrandFreeSlotsInPools) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 32;
  GcRuntime Rt(C);
  MutatorContext *M1 = Rt.registerMutator();
  MutatorContext *M2 = Rt.registerMutator();
  // M2 allocates once — refilling its pool — then goes idle, stranding the
  // unused reserve. Pre-fix the refill grabbed min(PoolSize, free) = 16 of
  // the 32 slots for a single allocation.
  ASSERT_GE(M2->alloc(), 0);
  // M1 must still reach the bulk of the heap through its own capped
  // refills: at most a quarter of the free list is at risk per refill, so
  // well over 20 of the remaining 31 slots stay allocatable (pre-fix M1
  // topped out at 16).
  int Ok = 0;
  for (int I = 0; I < 31; ++I)
    if (M1->alloc() >= 0)
      ++Ok;
  EXPECT_GE(Ok, 20);
  EXPECT_EQ(Rt.heap().allocatedCount(), static_cast<uint32_t>(Ok) + 1u);
  while (M1->numRoots())
    M1->discard(0);
  while (M2->numRoots())
    M2->discard(0);
  Rt.deregisterMutator(M1);
  Rt.deregisterMutator(M2);
}

//===----------------------------------------------------------------------===//
// TLAB runs: contiguous reservation, claim-time capping, recycling.
//===----------------------------------------------------------------------===//

TEST(AllocPool, ReserveRunClaimsContiguousVirginSpace) {
  RtHeap H(poolCfg(0));
  RtHeap::FreeRun A = H.reserveRun(16);
  ASSERT_EQ(A.Len, 16u);
  EXPECT_EQ(A.Base, 0u);
  RtHeap::FreeRun B = H.reserveRun(16);
  ASSERT_EQ(B.Len, 16u);
  EXPECT_EQ(B.Base, 16u); // runs never overlap: the bump CAS is the claim
  // Reserved slots are invisible to plain alloc: the other 224 slots drain
  // and then allocation fails even though 32 reserved slots exist.
  for (unsigned I = 0; I < 256 - 32; ++I)
    ASSERT_NE(H.alloc(false), RtNull);
  EXPECT_EQ(H.alloc(false), RtNull);
  H.unreserveRun(A);
  H.unreserveRun(B);
  for (unsigned I = 0; I < 32; ++I)
    EXPECT_NE(H.alloc(false), RtNull);
  EXPECT_EQ(H.alloc(false), RtNull);
}

TEST(AllocPool, ReserveRunCapsAtQuarterOfFreeAtClaimTime) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 64;
  RtHeap H(C);
  // 64 free → at most 16 per refill regardless of the ask.
  RtHeap::FreeRun A = H.reserveRun(64);
  EXPECT_EQ(A.Len, 16u);
  // The next claim sees 48 free → capped at 12; the cap shrinks with the
  // heap instead of being frozen at the first refill's snapshot.
  RtHeap::FreeRun B = H.reserveRun(64);
  EXPECT_EQ(B.Len, 12u);
  // Near exhaustion the cap floors at one slot — a refill returns empty
  // only when nothing is actually left.
  RtHeap::FreeRun Last = A;
  for (;;) {
    RtHeap::FreeRun R = H.reserveRun(64);
    if (R.Len == 0)
      break;
    Last = R;
  }
  EXPECT_GE(Last.Len, 1u);
  EXPECT_EQ(H.freeListSize(), 0u);
}

TEST(AllocPool, ReserveRunPrefersBestFitRecycledRun) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 64;
  RtHeap H(C);
  // Exhaust virgin space entirely, then recycle two runs of known shape.
  std::vector<RtHeap::FreeRun> All;
  for (;;) {
    RtHeap::FreeRun R = H.reserveRun(64);
    if (R.Len == 0)
      break;
    All.push_back(R);
  }
  H.unreserveRun(RtHeap::FreeRun{0, 4});   // short run
  H.unreserveRun(RtHeap::FreeRun{32, 16}); // long run
  // Want 8: the len-4 run cannot hold it; the len-16 run is split at 8.
  RtHeap::FreeRun R = H.reserveRun(8);
  EXPECT_EQ(R.Base, 32u);
  EXPECT_EQ(R.Len, 5u); // quarter cap: 20 free at claim time → 5
}

TEST(AllocPool, ReserveRunScatterTopUpOnFragmentedHeap) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 64;
  RtHeap H(C);
  while (H.reserveRun(64).Len != 0)
    ;
  // Recycle 8 isolated singles — maximal fragmentation.
  for (RtRef R = 0; R < 16; R += 2)
    H.unreserveRun(RtHeap::FreeRun{R, 1});
  std::vector<RtRef> Scatter;
  RtHeap::FreeRun Run = H.reserveRun(8, &Scatter);
  // The best run is a single, but the refill still hands back a quarter of
  // the free slots (8/4 = 2) in one lock acquisition: run + scatter.
  EXPECT_EQ(Run.Len, 1u);
  EXPECT_EQ(Scatter.size(), 1u);
}

TEST(AllocPool, SweepOrderFreesCoalesceIntoRuns) {
  RtConfig C = poolCfg(0);
  C.HeapObjects = 64;
  RtHeap H(C);
  while (H.reserveRun(64).Len != 0)
    ;
  // returnFreeSlots receives ascending refs (sweep order) and must rebuild
  // contiguous runs, not 24 singles: 10..29 re-forms a 20-slot run.
  std::vector<RtRef> Swept;
  for (RtRef R = 10; R < 30; ++R)
    Swept.push_back(R);
  for (RtRef R = 40; R < 48; R += 2)
    Swept.push_back(R);
  H.returnFreeSlots(Swept);
  // A TLAB-sized ask carves its run out of the coalesced block. Had the
  // frees been binned as singles, the best "run" would have length 1.
  RtHeap::FreeRun R = H.reserveRun(6);
  EXPECT_EQ(R.Base, 10u);
  EXPECT_EQ(R.Len, 6u); // 24 free → quarter cap 6; split off the 20-run
}

//===----------------------------------------------------------------------===//
// Regression (deregister leak): a departing mutator must return its unused
// TLAB tail. Pre-fix, the tail slots stayed reserved forever — invisible to
// both allocators and the sweep — and register/alloc/deregister churn
// exhausted a heap with almost nothing allocated in it.
//===----------------------------------------------------------------------===//

TEST(AllocPool, DeregisterChurnDoesNotLeakTlabTails) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 64;
  GcRuntime Rt(C);
  // 40 one-allocation mutator lifetimes. Each refill reserves up to 16
  // slots; leaking the ~15-slot tail would exhaust the heap by the fifth
  // iteration. Post-fix all 40 allocations succeed.
  for (int I = 0; I < 40; ++I) {
    MutatorContext *M = Rt.registerMutator();
    ASSERT_GE(M->alloc(), 0) << "spurious exhaustion at churn " << I;
    while (M->numRoots())
      M->discard(0);
    Rt.deregisterMutator(M);
  }
  EXPECT_EQ(Rt.heap().allocatedCount(), 40u);
  // The TLAB counters folded into the runtime totals at deregistration.
  EXPECT_EQ(Rt.stats().TotalTlabRefills.load(), 40u);
  EXPECT_EQ(Rt.stats().TotalAllocFallbacks.load(), 0u);
}

//===----------------------------------------------------------------------===//
// Regression (stale-snapshot refill cap): the quarter cap is computed from
// the counts current at claim time, and the mutator slow path retries once
// and then falls back to a direct allocation — so two mutators racing on a
// near-full heap allocate every last slot instead of spuriously reporting
// exhaustion while free slots exist.
//===----------------------------------------------------------------------===//

TEST(AllocPool, TwoMutatorsDrainNearFullHeapExactly) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 32;
  GcRuntime Rt(C);
  MutatorContext *M1 = Rt.registerMutator();
  MutatorContext *M2 = Rt.registerMutator();
  // Alternate single allocations until the heap is truly full. Every one
  // of the 32 slots must be reachable by somebody: a refill that comes
  // back empty while slots remain (or strands them in the peer's TLAB
  // without the fallback) shows up as Failures > 0 before slot 32.
  int Ok = 0, Failures = 0;
  for (int I = 0; I < 32; ++I) {
    MutatorContext *M = (I & 1) ? M2 : M1;
    if (M->alloc() >= 0)
      ++Ok;
    else
      ++Failures;
  }
  // Both TLABs may still hold reserved (unallocated) tails; the peer
  // cannot reach those, so drain each mutator's own reserve too.
  while (M1->alloc() >= 0)
    ++Ok;
  while (M2->alloc() >= 0)
    ++Ok;
  EXPECT_EQ(Failures, 0);
  EXPECT_EQ(Ok, 32);
  EXPECT_EQ(Rt.heap().allocatedCount(), 32u);
  EXPECT_EQ(Rt.heap().freeListSize(), 0u);
  while (M1->numRoots())
    M1->discard(0);
  while (M2->numRoots())
    M2->discard(0);
  Rt.deregisterMutator(M1);
  Rt.deregisterMutator(M2);
}

TEST(AllocPool, ConcurrentPooledAllocators) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 4096;
  GcRuntime Rt(C);
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < 4; ++I)
    Ms.push_back(Rt.registerMutator());
  std::vector<std::thread> Ts;
  std::atomic<uint32_t> Allocated{0};
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&, T] {
      MutatorContext *M = Ms[T];
      for (int I = 0; I < 512; ++I) {
        if (M->alloc() >= 0)
          Allocated.fetch_add(1);
        M->safepoint();
      }
      while (M->numRoots())
        M->discard(0);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Allocated.load(), 4u * 512u);
  EXPECT_EQ(Rt.heap().allocatedCount(), 4u * 512u);
  for (auto *M : Ms)
    Rt.deregisterMutator(M);
}

TEST(AllocPool, StressWithConcurrentCollection) {
  RtConfig C = poolCfg(16);
  C.HeapObjects = 1024;
  GcRuntime Rt(C);
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector();
  for (int I = 0; I < 20'000; ++I) {
    M->safepoint();
    int Idx = M->alloc();
    if (Idx >= 0 && M->numRoots() > 16)
      M->discard(0);
  }
  while (M->numRoots())
    M->discard(0);
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
  SUCCEED(); // validation would have aborted on any unsafe free
}
