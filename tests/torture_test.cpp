//===- tests/torture_test.cpp - Fault-injection stress ---------------------===//
///
/// Runs the concurrent workloads with torture mode on: mutators yield the
/// CPU at the algorithm's racy points (inside the barriers, around the
/// marking CAS, after handshake view refreshes), maximally widening the
/// windows the §3.2 invariants reason about. Epoch validation is armed:
/// any ordering bug becomes an abort.

#include "runtime/GcRuntime.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

void tortureRun(RtConfig Cfg, unsigned NumMutators, const char *Kind,
                uint64_t Steps) {
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < NumMutators; ++I)
    Ms.push_back(Rt.registerMutator());
  Rt.startCollector();

  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumMutators; ++I)
    Threads.emplace_back([&, I] {
      auto W = wl::makeWorkload(Kind, *Ms[I], 500 + I);
      for (uint64_t S = 0; S < Steps; ++S)
        W->step();
      W->teardown();
    });
  for (auto &T : Threads)
    T.join();

  std::atomic<bool> Done{false};
  std::vector<std::thread> Service;
  for (auto *M : Ms)
    Service.emplace_back([&Done, M] {
      while (!Done.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  Rt.stopCollector();
  Done.store(true);
  for (auto &T : Service)
    T.join();

  // Everything unrooted must drain after two clean cycles.
  Rt.HandshakeServicer = [&Ms] {
    for (auto *M : Ms)
      M->safepoint();
  };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
  EXPECT_GE(Rt.stats().Cycles.load(), 3u);
  for (auto *M : Ms)
    Rt.deregisterMutator(M);
}

RtConfig tortureCfg(uint32_t Level) {
  RtConfig C;
  C.HeapObjects = 1024;
  C.NumFields = 2;
  C.TortureLevel = Level;
  return C;
}

} // namespace

TEST(Torture, GraphWorkloadHighInjection) {
  tortureRun(tortureCfg(2), 2, "graph", 8'000);
}

TEST(Torture, ListWorkloadModerateInjection) {
  tortureRun(tortureCfg(8), 2, "list", 8'000);
}

TEST(Torture, TreeWorkloadWithPools) {
  RtConfig Cfg = tortureCfg(4);
  Cfg.LocalAllocPool = 8;
  tortureRun(Cfg, 2, "tree", 800);
}

TEST(Torture, MergedHandshakeVariantUnderTorture) {
  RtConfig Cfg = tortureCfg(4);
  Cfg.MergedInitHandshakes = true;
  tortureRun(Cfg, 2, "graph", 8'000);
}

TEST(Torture, InsertionElisionVariantUnderTorture) {
  RtConfig Cfg = tortureCfg(4);
  Cfg.InsertionBarrierElideAfterRoots = true;
  tortureRun(Cfg, 2, "graph", 8'000);
}

TEST(Torture, ThreeMutatorsEverythingOn) {
  RtConfig Cfg = tortureCfg(3);
  Cfg.LocalAllocPool = 4;
  Cfg.MergedInitHandshakes = true;
  tortureRun(Cfg, 3, "graph", 5'000);
}
