//===- tests/litmus_test.cpp - x86-TSO litmus validation (Figure 9) -------===//
///
/// Validates the TSO encoding against the published x86-TSO results
/// (Sewell et al.): SB relaxes, SB+MFENCE does not, MP/LB/CoRR anomalies
/// are forbidden, and SC mode forbids the SB relaxation.

#include "litmus/Litmus.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

bool hasOutcome(const std::set<LitmusOutcome> &Os, uint16_t T0R0,
                uint16_t T1R0) {
  for (const LitmusOutcome &O : Os)
    if (O.Regs[0][0] == T0R0 && O.Regs[1][0] == T1R0)
      return true;
  return false;
}

} // namespace

TEST(Litmus, SBRelaxationAllowedUnderTSO) {
  auto Os = enumerateOutcomes(makeSB(), /*BufferBound=*/2);
  // The famous relaxed outcome: both loads read 0.
  EXPECT_TRUE(hasOutcome(Os, 0, 0));
  // SC-style outcomes remain possible too.
  EXPECT_TRUE(hasOutcome(Os, 1, 1));
  EXPECT_TRUE(hasOutcome(Os, 0, 1));
  EXPECT_TRUE(hasOutcome(Os, 1, 0));
  EXPECT_EQ(Os.size(), 4u);
}

TEST(Litmus, SBRelaxationForbiddenUnderSC) {
  auto Os = enumerateOutcomes(makeSB(), /*BufferBound=*/0);
  EXPECT_FALSE(hasOutcome(Os, 0, 0));
  EXPECT_EQ(Os.size(), 3u);
}

TEST(Litmus, MfenceRestoresSC) {
  auto Os = enumerateOutcomes(makeSBFenced(), /*BufferBound=*/2);
  EXPECT_FALSE(hasOutcome(Os, 0, 0));
  EXPECT_EQ(Os.size(), 3u);
}

TEST(Litmus, BufferBoundOneStillRelaxesSB) {
  // A single buffer slot per thread already exhibits the SB relaxation —
  // this justifies using small bounds in the GC model's exhaustive runs.
  auto Os = enumerateOutcomes(makeSB(), /*BufferBound=*/1);
  EXPECT_TRUE(hasOutcome(Os, 0, 0));
}

TEST(Litmus, MessagePassingIsSafeOnTSO) {
  // t0: x:=1; y:=1.  t1: r0:=y; r1:=x.  Forbidden: r0=1 ∧ r1=0
  // (stores commit in order, loads are not reordered).
  auto Os = enumerateOutcomes(makeMP(), 2);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.Regs[1][0] == 1 && O.Regs[1][1] == 0)
        << "MP anomaly: " << outcomeToString(O);
  // All three legal observations occur.
  EXPECT_EQ(Os.size(), 3u);
}

TEST(Litmus, LoadBufferingForbidden) {
  // t0: r0:=x; y:=1.  t1: r1:=y; x:=1.  Forbidden: r0=1 ∧ r1=1.
  auto Os = enumerateOutcomes(makeLB(), 2);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.Regs[0][0] == 1 && O.Regs[1][0] == 1)
        << "LB anomaly: " << outcomeToString(O);
}

TEST(Litmus, CoherentReadRead) {
  // t1 reads x twice; the second read may not see an older value.
  auto Os = enumerateOutcomes(makeCoRR(), 2);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.Regs[1][0] == 1 && O.Regs[1][1] == 0)
        << "CoRR anomaly: " << outcomeToString(O);
}

TEST(Litmus, IRIWReadersAgreeOnWriteOrder) {
  // t2 sees x then ¬y while t3 sees y then ¬x would mean the two readers
  // observed the independent writes in opposite orders — forbidden on TSO
  // (stores become visible to everyone at a single commit point).
  auto Os = enumerateOutcomes(makeIRIW(), 1);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.Regs[2][0] == 1 && O.Regs[2][1] == 0 &&
                 O.Regs[3][0] == 1 && O.Regs[3][1] == 0)
        << "IRIW anomaly: " << outcomeToString(O);
  EXPECT_GT(Os.size(), 4u);
}

TEST(Litmus, RRelaxationAllowedOnTsoOnly) {
  // R: t0{x:=1; y:=1}  t1{y:=2; r0:=x}. The outcome (final y = 2 ∧
  // r0 = 0) IS observable on x86-TSO — t1's load runs while its y:=2 is
  // still buffered — but is impossible under SC.
  auto HasAnomaly = [](const std::set<LitmusOutcome> &Os) {
    for (const LitmusOutcome &O : Os)
      if (O.FinalMem[1] == 2 && O.Regs[1][0] == 0)
        return true;
    return false;
  };
  EXPECT_TRUE(HasAnomaly(enumerateOutcomes(makeR(), 2)));
  EXPECT_FALSE(HasAnomaly(enumerateOutcomes(makeR(), 0)));
}

TEST(Litmus, SForbidsWriteReorderAgainstRead) {
  // S: t0{x:=2; y:=1}  t1{r0:=y; x:=1}. Forbidden: r0 = 1 (t1 saw y:=1,
  // so t0's x:=2 already committed) with final x = 2 (t1's later x:=1
  // cannot be overtaken by the earlier x:=2).
  auto Os = enumerateOutcomes(makeS(), 2);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.Regs[1][0] == 1 && O.FinalMem[0] == 2)
        << "S anomaly: " << outcomeToString(O);
}

TEST(Litmus, TwoPlusTwoWCoherence) {
  // 2+2W: t0{x:=1; y:=2}  t1{y:=1; x:=2}. Forbidden: final x = 1 ∧
  // final y = 1 (each location would have ordered the threads' stores
  // oppositely — impossible with FIFO buffers and a single commit order
  // per thread).
  auto Os = enumerateOutcomes(make2Plus2W(), 2);
  for (const LitmusOutcome &O : Os)
    EXPECT_FALSE(O.FinalMem[0] == 1 && O.FinalMem[1] == 1)
        << "2+2W anomaly: " << outcomeToString(O);
  // Both "one thread entirely last" outcomes exist.
  bool SawXY21 = false, SawXY12 = false;
  for (const LitmusOutcome &O : Os) {
    SawXY21 |= O.FinalMem[0] == 2 && O.FinalMem[1] == 1;
    SawXY12 |= O.FinalMem[0] == 1 && O.FinalMem[1] == 2;
  }
  EXPECT_TRUE(SawXY21);
  EXPECT_TRUE(SawXY12);
}

TEST(Litmus, FinalMemoryRecorded) {
  auto Os = enumerateOutcomes(makeSB(), 1);
  for (const LitmusOutcome &O : Os) {
    ASSERT_EQ(O.FinalMem.size(), 2u);
    // Both stores always commit before retirement.
    EXPECT_EQ(O.FinalMem[0], 1);
    EXPECT_EQ(O.FinalMem[1], 1);
  }
}

TEST(Litmus, StatsAreReported) {
  LitmusStats Stats;
  enumerateOutcomes(makeSB(), 2, Stats);
  EXPECT_GT(Stats.States, 10u);
  EXPECT_GT(Stats.Transitions, Stats.States - 1);
}

TEST(Litmus, OutcomeToString) {
  LitmusOutcome O;
  O.Regs = {{1, 2}, {3, 4}};
  O.FinalMem = {1, 0};
  EXPECT_EQ(outcomeToString(O),
            "t0:[r0=1,r1=2] t1:[r0=3,r1=4] mem:[g0=1,g1=0]");
}

TEST(Litmus, ScAndTsoAgreeOnFencedPrograms) {
  auto Tso = enumerateOutcomes(makeSBFenced(), 4);
  auto Sc = enumerateOutcomes(makeSBFenced(), 0);
  EXPECT_EQ(Tso, Sc);
}
