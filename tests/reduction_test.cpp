//===- tests/reduction_test.cpp - State-space reduction soundness ---------===//
///
/// Differential soundness for every reduction/compression mode against the
/// plain sequential explorer as oracle: ample-set partial-order reduction,
/// mutator-symmetry canonicalization, 64-bit fingerprint visited sets and
/// the swarm walker — on stock configurations *and* the deletion-barrier
/// ablation, where a real counterexample must survive reduction and replay
/// through `replayChoices` to a genuinely violating state. Plus the direct
/// properties behind those modes: permutation-invariant canonical
/// encodings, collision-free fingerprints at test scale, bloom-filter
/// accounting, and the fingerprint keying of ShardedVisitedSet (concurrent
/// stress, rehash id-stability, footprint).
///
//===----------------------------------------------------------------------===//

#include "explore/Fingerprint.h"
#include "explore/ParallelExplorer.h"
#include "explore/Reduction.h"
#include "support/Random.h"
#include "support/ShardedVisitedSet.h"

#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <unordered_set>

using namespace tsogc;

namespace {

struct Seed {
  const char *Name;
  ModelConfig Cfg;
};

/// The same small, fully-exhaustible grid the parallel-explorer
/// differential uses (tests/parallel_explorer_test.cpp).
std::vector<Seed> seeds() {
  std::vector<Seed> Out;
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"handshakes-only", C});
  }
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-only-chain", C});
  }
  {
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"2mut-handshakes", C});
  }
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 2;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-buf2", C});
  }
  return Out;
}

/// The bench ablation instance (BM_DeletionAblationCounterexample): the
/// deletion barrier off, a reachable unsafe-free counterexample.
ModelConfig ablated() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  C.DeletionBarrier = false;
  C.MutatorAlloc = false;
  return C;
}

StateChecker cycleDone() {
  return [](const GcSystemState &S) -> std::optional<Violation> {
    if (GcModel::collector(S).CycleCount >= 1)
      return Violation{"planted", "cycle completed"};
    return std::nullopt;
  };
}

/// Label-path validity: candidate-set replay (labels may be shared by
/// nondeterministic siblings) must reach a state the checker rejects.
bool pathReplays(const GcModel &M, const std::vector<std::string> &Path,
                 const StateChecker &Violates) {
  std::vector<GcSystemState> Cands{M.initial()};
  for (const std::string &Label : Path) {
    std::vector<GcSystemState> Next;
    for (const GcSystemState &S : Cands)
      for (GcSuccessor &Succ : M.system().successors(S))
        if (Succ.Label == Label)
          Next.push_back(std::move(Succ.State));
    if (Next.empty())
      return false;
    Cands = std::move(Next);
  }
  for (const GcSystemState &S : Cands)
    if (Violates(S))
      return true;
  return false;
}

/// Strong validation of a recorded counterexample: the choice trace must
/// replay from the initial state to a state \p Violates rejects, and each
/// step's chosen successor must carry the reported path label. Linear in
/// the path length — unlike `pathReplays`, whose candidate sets can grow
/// combinatorially on the thousands-step DFS/swarm paths this suite
/// produces (label-matching is only for short BFS paths).
bool choicesReplayTo(const GcModel &M, const ExploreResult &Res,
                     const StateChecker &Violates) {
  if (Res.Path.size() != Res.Choices.size())
    return false;
  ReplayResult Rep = replayChoices(M, Res.Choices);
  if (!Rep.ok() || Rep.States.size() != Res.Choices.size() + 1)
    return false;
  for (size_t I = 0; I < Res.Choices.size(); ++I) {
    std::vector<GcSuccessor> Succs = M.system().successors(Rep.States[I]);
    if (Res.Choices[I] >= Succs.size() ||
        Succs[Res.Choices[I]].Label != Res.Path[I])
      return false;
  }
  return Violates(Rep.States.back()).has_value();
}

/// Every reachable canonical encoding, by plain BFS inside the test (no
/// explorer involvement, so fingerprint properties are checked against an
/// independently computed state set).
std::vector<std::string> allEncodings(const GcModel &M) {
  std::unordered_set<std::string> Seen;
  std::deque<GcSystemState> Frontier;
  GcSystemState S0 = M.initial();
  Seen.insert(M.encode(S0));
  Frontier.push_back(std::move(S0));
  std::vector<GcSuccessor> Succs;
  while (!Frontier.empty()) {
    GcSystemState S = std::move(Frontier.front());
    Frontier.pop_front();
    Succs.clear();
    M.system().successors(S, Succs);
    for (GcSuccessor &Succ : Succs)
      if (Seen.insert(M.encode(Succ.State)).second)
        Frontier.push_back(std::move(Succ.State));
  }
  return {Seen.begin(), Seen.end()};
}

/// Sampled reachable states along a seeded random walk (for properties
/// that need states, not encodings).
std::vector<GcSystemState> walkStates(const GcModel &M, uint64_t Seed,
                                      unsigned Steps) {
  std::vector<GcSystemState> Out;
  Xoshiro256 Rng(Seed);
  GcSystemState S = M.initial();
  Out.push_back(S);
  for (unsigned I = 0; I < Steps; ++I) {
    std::vector<GcSuccessor> Succs = M.system().successors(S);
    if (Succs.empty())
      break;
    S = std::move(Succs[Rng.nextBelow(Succs.size())].State);
    Out.push_back(S);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ample-set partial-order reduction
//===----------------------------------------------------------------------===//

TEST(AmpleReduction, DifferentialAgreesOnEverySeedConfiguration) {
  uint64_t TotalPruned = 0;
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    ExploreResult Full = exploreExhaustive(M, Inv);
    ASSERT_TRUE(Full.exhaustedCleanly()) << Sd.Name;
    ExploreOptions AO;
    AO.AmpleReduction = true;
    ExploreResult Amp = exploreExhaustive(M, Inv, AO);
    EXPECT_TRUE(Amp.exhaustedCleanly()) << Sd.Name;
    // The reduced reachable set is a subset of the full one.
    EXPECT_LE(Amp.StatesVisited, Full.StatesVisited) << Sd.Name;
    EXPECT_LE(Amp.TransitionsExplored, Full.TransitionsExplored) << Sd.Name;
    // Ample reduction alone is a sound mode, not a probabilistic one.
    EXPECT_FALSE(Amp.ProbabilisticVerdict) << Sd.Name;
    TotalPruned += Amp.TransitionsPruned;
  }
  // The reduction must actually fire somewhere on this grid (handshake
  // snapshot/pop steps, insertion-barrier latches under stores).
  EXPECT_GT(TotalPruned, 0u);
}

TEST(AmpleReduction, DifferentialAgreesOnAblatedGrid) {
  // With the deletion barrier off, unsafe frees make freed cells reusable
  // and the reachable space explodes past what BFS can exhaust; hunt the
  // counterexample the way the bench does — DFS with the headline checker
  // — and require full and reduced search to agree on the verdict.
  for (const Seed &Sd : seeds()) {
    ModelConfig Cfg = Sd.Cfg;
    Cfg.DeletionBarrier = false;
    GcModel M(Cfg);
    InvariantSuite Inv(M);
    ExploreOptions Opts;
    Opts.Dfs = true;
    Opts.MaxStates = 500'000;
    ExploreResult Full = exploreExhaustive(M, headlineChecker(Inv), Opts);
    ExploreOptions AO = Opts;
    AO.AmpleReduction = true;
    ExploreResult Amp = exploreExhaustive(M, headlineChecker(Inv), AO);
    EXPECT_EQ(Amp.Bug.has_value(), Full.Bug.has_value()) << Sd.Name;
    if (Full.Bug) {
      EXPECT_EQ(Amp.Bug->Name, Full.Bug->Name) << Sd.Name;
      // A reduced-mode counterexample must replay to a violating state.
      EXPECT_TRUE(choicesReplayTo(M, Amp, headlineChecker(Inv))) << Sd.Name;
    }
  }
}

TEST(AmpleReduction, ReducedCounterexampleReplaysViaChoices) {
  GcModel M(ablated());
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.AmpleReduction = true;
  Opts.MaxStates = 5'000'000;
  ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  ASSERT_FALSE(Res.Choices.empty());
  EXPECT_GT(Res.TransitionsPruned, 0u);

  // Choices index the *full* successor enumeration, so a reduced-mode
  // trace replays through the unreduced model unchanged — to a genuinely
  // violating state, with every step's label matching the reported path.
  EXPECT_TRUE(choicesReplayTo(M, Res, headlineChecker(Inv)));
}

//===----------------------------------------------------------------------===//
// Mutator-symmetry canonicalization
//===----------------------------------------------------------------------===//

TEST(SymmetryReduction, CanonicalEncodingIsPermutationInvariant) {
  // Plain handshakes and the TSO-handshake refinement (which moves the
  // handshake words — and buffered stores targeting them — into memory, so
  // the permutation has to rename buffered targets too).
  for (bool Tso : {false, true}) {
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    C.TsoHandshakes = Tso;
    GcModel M(C);
    const std::vector<unsigned> Swap{1, 0};
    for (const GcSystemState &S : walkStates(M, /*Seed=*/11, /*Steps=*/400)) {
      GcSystemState P = permuteMutators(M, S, Swap);
      // The canonical encoding is the lexicographic minimum over the
      // orbit, so both orbit members canonicalize identically, and the
      // minimum is exactly min(encode(S), encode(P)).
      std::string Min = std::min(M.encode(S), M.encode(P));
      EXPECT_EQ(canonicalEncoding(M, S), Min) << "tso=" << Tso;
      EXPECT_EQ(canonicalEncoding(M, P), Min) << "tso=" << Tso;
      // Swapping twice is the identity.
      EXPECT_EQ(M.encode(permuteMutators(M, P, Swap)), M.encode(S))
          << "tso=" << Tso;
    }
  }
}

TEST(SymmetryReduction, DifferentialVerdictAgreesAndFoldsStates) {
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  InvariantSuite Inv(M);

  ExploreResult Full = exploreExhaustive(M, Inv);
  ASSERT_TRUE(Full.exhaustedCleanly());
  ExploreOptions SO;
  SO.SymmetryReduction = true;
  ExploreResult Sym = exploreExhaustive(M, Inv, SO);
  EXPECT_TRUE(Sym.exhaustedCleanly());
  // Canonicalization must fold at least the mirror-image states away,
  // and can never invent new ones.
  EXPECT_LT(Sym.StatesVisited, Full.StatesVisited);
  // Virtual (not exact) symmetry: the clean verdict is probabilistic.
  EXPECT_TRUE(Sym.ProbabilisticVerdict);

  // Verdict agreement on a planted violation as well.
  ExploreResult FullBug = exploreExhaustive(M, cycleDone());
  ExploreResult SymBug = exploreExhaustive(M, cycleDone(), SO);
  ASSERT_EQ(SymBug.Bug.has_value(), FullBug.Bug.has_value());
  ASSERT_TRUE(SymBug.Bug.has_value());
  EXPECT_TRUE(pathReplays(M, SymBug.Path, cycleDone()));
}

//===----------------------------------------------------------------------===//
// 64-bit fingerprint visited set
//===----------------------------------------------------------------------===//

TEST(Fingerprint, DifferentialAgreesOnEverySeedConfiguration) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    ExploreResult Exact = exploreExhaustive(M, Inv);
    ASSERT_TRUE(Exact.exhaustedCleanly()) << Sd.Name;
    ExploreOptions FO;
    FO.Fingerprint64 = true;
    ExploreResult Fp = exploreExhaustive(M, Inv, FO);
    EXPECT_TRUE(Fp.exhaustedCleanly()) << Sd.Name;
    // Zero fingerprint collisions at this scale: identical counts.
    EXPECT_EQ(Fp.StatesVisited, Exact.StatesVisited) << Sd.Name;
    EXPECT_EQ(Fp.TransitionsExplored, Exact.TransitionsExplored) << Sd.Name;
    EXPECT_TRUE(Fp.ProbabilisticVerdict) << Sd.Name;
    // The point of the mode: strictly smaller visited-set footprint.
    EXPECT_LT(Fp.VisitedBytes, Exact.VisitedBytes) << Sd.Name;
  }
}

TEST(Fingerprint, DistinctStatesHaveDistinctFingerprints) {
  // Independent BFS collects every reachable encoding; the fingerprint map
  // must be injective on them (zero collisions at test scale).
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  std::vector<std::string> Encs = allEncodings(M);
  ASSERT_GT(Encs.size(), 100u);
  std::unordered_set<uint64_t> Fps;
  for (const std::string &E : Encs)
    Fps.insert(fingerprint64(E));
  EXPECT_EQ(Fps.size(), Encs.size());
}

TEST(Fingerprint, BloomFilterAccounting) {
  StripedBloomFilter B(1ull << 20);
  EXPECT_EQ(B.bits() % 64, 0u);
  Xoshiro256 Rng(42);
  std::vector<uint64_t> Fps;
  for (int I = 0; I < 1000; ++I)
    Fps.push_back(Rng.next());
  unsigned Fresh = 0;
  for (uint64_t Fp : Fps)
    Fresh += B.testAndSet(Fp) ? 1 : 0;
  // Essentially everything is fresh at this fill (deterministic seed, so
  // the tolerance only covers genuine probe collisions).
  EXPECT_GE(Fresh, 995u);
  // Re-query is never fresh: the bloom has no false negatives.
  for (uint64_t Fp : Fps)
    EXPECT_FALSE(B.testAndSet(Fp));
  EXPECT_GT(B.bitCount(), 0u);
  EXPECT_LE(B.bitCount(), 2u * Fps.size()); // ≤ NumProbes bits per insert
  EXPECT_GT(B.fillRatio(), 0.0);
  EXPECT_LT(B.fillRatio(), 0.01);
  EXPECT_DOUBLE_EQ(B.estimatedFalsePositiveRate(),
                   B.fillRatio() * B.fillRatio());
}

//===----------------------------------------------------------------------===//
// Swarm exploration
//===----------------------------------------------------------------------===//

TEST(Swarm, SingleWalkerMatchesSequentialOnTinyInstance) {
  GcModel M(seeds()[0].Cfg);
  InvariantSuite Inv(M);
  ExploreResult Seq = exploreExhaustive(M, Inv);
  ASSERT_TRUE(Seq.exhaustedCleanly());

  SwarmOptions SO;
  SO.Walkers = 1;
  SO.Seed = 7;
  SO.BloomBits = 1ull << 22;
  ExploreResult Res = exploreSwarm(M, Inv, SO);
  EXPECT_FALSE(Res.Bug.has_value());
  EXPECT_FALSE(Res.Truncated);
  // One walker has no claim races: the claimed count is exact (modulo
  // bloom false positives, negligible at 4M bits for ~1k states — and
  // deterministic under the fixed seed).
  EXPECT_EQ(Res.StatesVisited, Seq.StatesVisited);
  EXPECT_TRUE(Res.ProbabilisticVerdict);
  EXPECT_EQ(Res.BloomBits, SO.BloomBits);
  EXPECT_GT(Res.BloomBitsSet, 0u);
  EXPECT_LT(Res.BloomEstFpRate, 1e-3);
  EXPECT_EQ(Res.VisitedBytes, SO.BloomBits / 8);
}

TEST(Swarm, MultiWalkerCoverageWithinClaimRaceSlack) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    ExploreResult Seq = exploreExhaustive(M, Inv);
    ASSERT_TRUE(Seq.exhaustedCleanly()) << Sd.Name;

    SwarmOptions SO;
    SO.Walkers = 4;
    SO.Seed = 3;
    SO.BloomBits = 1ull << 22;
    ExploreResult Res = exploreSwarm(M, Inv, SO);
    EXPECT_FALSE(Res.Bug.has_value()) << Sd.Name;
    // Coverage within the documented slack: racing walkers can
    // double-claim through disjoint probe bits (overcount), and bloom
    // false positives drop a handful of states at this fill — ~7e-5 per
    // query, a few states per ten thousand (undercount). Both effects are
    // small; exactness is the single-walker test above.
    EXPECT_GE(Res.StatesVisited, Seq.StatesVisited * 99 / 100) << Sd.Name;
    EXPECT_LE(Res.StatesVisited, Seq.StatesVisited * 11 / 10) << Sd.Name;
    EXPECT_TRUE(Res.ProbabilisticVerdict) << Sd.Name;
    EXPECT_GT(Res.BloomBitsSet, 0u) << Sd.Name;
  }
}

TEST(Swarm, FindsAblationViolationAndReplays) {
  GcModel M(ablated());
  InvariantSuite Inv(M);
  SwarmOptions SO;
  SO.Walkers = 4;
  SO.Seed = 5;
  SO.BloomBits = 1ull << 22;
  ExploreResult Res = exploreSwarm(M, headlineChecker(Inv), SO);
  ASSERT_TRUE(Res.Bug.has_value());
  ASSERT_FALSE(Res.Path.empty());
  EXPECT_TRUE(choicesReplayTo(M, Res, headlineChecker(Inv)));
}

//===----------------------------------------------------------------------===//
// ShardedVisitedSet fingerprint keying
//===----------------------------------------------------------------------===//

TEST(ShardedVisitedSetFp, ConcurrentInsertStress) {
  // Four threads racing fully-overlapping fingerprint ranges: exactly one
  // fresh insert per distinct fingerprint, metadata uniquely determined.
  constexpr unsigned N = 30'000;
  ShardedVisitedSet<uint32_t> Set(16);
  std::atomic<uint64_t> Fresh{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&Set, &Fresh, T] {
      uint64_t Mine = 0;
      // Stagger start points so the threads collide on different keys.
      for (unsigned I = 0; I < N; ++I) {
        unsigned K = (I + T * (N / 4)) % N;
        auto [Id, New] = Set.insertFp(hashMix(0x1234, K), K);
        (void)Id;
        Mine += New ? 1 : 0;
      }
      Fresh.fetch_add(Mine);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Fresh.load(), N);
  EXPECT_EQ(Set.size(), N);
  // Every key's metadata is the value every thread agreed to store.
  for (unsigned K = 0; K < N; K += 97) {
    auto [Id, New] = Set.insertFp(hashMix(0x1234, K), 0);
    EXPECT_FALSE(New);
    EXPECT_EQ(Set.meta(Id), K);
  }
}

TEST(ShardedVisitedSetFp, RehashKeepsIdsStable) {
  // A single shard forces many FpMap rehashes as occupancy grows; node ids
  // index the side arena and must stay valid throughout.
  constexpr unsigned N = 10'000;
  ShardedVisitedSet<uint32_t> Set(1);
  std::vector<uint64_t> Ids;
  Ids.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    auto [Id, New] = Set.insertFp(hashMix(0x9999, I), I);
    ASSERT_TRUE(New);
    Ids.push_back(Id);
  }
  for (unsigned I = 0; I < N; ++I)
    ASSERT_EQ(Set.meta(Ids[I]), I);
  auto St = Set.stats();
  EXPECT_EQ(St.Nodes, N);
  EXPECT_EQ(St.MaxShardNodes, N);
  EXPECT_EQ(St.ExactKeyBytes, 0u); // fingerprint keying stores no strings
  EXPECT_GT(St.MemoryBytes, 0u);
}

TEST(ShardedVisitedSetFp, FingerprintModeShrinksFootprint) {
  // The same logical key set, keyed exactly vs by fingerprint: the whole
  // point of the mode is a hard footprint cut.
  constexpr unsigned N = 5'000;
  ShardedVisitedSet<uint32_t> Exact(16);
  ShardedVisitedSet<uint32_t> Fp(16);
  for (unsigned I = 0; I < N; ++I) {
    std::string Key(96, 'x');
    Key += std::to_string(I);
    Fp.insertFp(fingerprint64(Key), I);
    Exact.insert(std::move(Key), I);
  }
  uint64_t ExactBytes = Exact.memoryBytes();
  uint64_t FpBytes = Fp.memoryBytes();
  EXPECT_EQ(Exact.size(), N);
  EXPECT_EQ(Fp.size(), N);
  EXPECT_LT(FpBytes * 3, ExactBytes);
}
