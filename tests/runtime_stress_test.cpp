//===- tests/runtime_stress_test.cpp - Concurrent GC stress ---------------===//
///
/// Real threads: mutators continuously build and drop linked structures
/// while the collector runs back-to-back on-the-fly cycles. Epoch
/// validation is on, so any unsafe free aborts the test process. This is
/// the runtime counterpart of the model's randomized exploration.

#include "runtime/GcRuntime.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

struct StressResult {
  uint64_t Ops = 0;
  uint64_t AllocFailures = 0;
};

/// One mutator thread's workload: random Figure 6 operations over a
/// bounded shadow stack, with a safepoint per iteration.
StressResult mutatorWorkload(GcRuntime &Rt, MutatorContext *M, uint64_t Seed,
                             uint64_t Iters, size_t MaxRoots) {
  Xoshiro256 Rng(Seed);
  StressResult Res;
  for (uint64_t I = 0; I < Iters; ++I) {
    M->safepoint();
    ++Res.Ops;
    const uint64_t Pick = Rng.nextBelow(100);
    const size_t N = M->numRoots();
    if (Pick < 35 || N == 0) {
      if (N < MaxRoots) {
        if (M->alloc() < 0)
          ++Res.AllocFailures;
      } else {
        M->discard(Rng.nextBelow(N));
      }
    } else if (Pick < 55 && N >= 2) {
      // Link two rooted objects.
      M->store(Rng.nextBelow(N), Rng.nextBelow(N),
               static_cast<uint32_t>(
                   Rng.nextBelow(Rt.config().NumFields)));
    } else if (Pick < 75) {
      int Idx = M->load(Rng.nextBelow(N),
                        static_cast<uint32_t>(
                            Rng.nextBelow(Rt.config().NumFields)));
      if (Idx >= 0 && M->numRoots() > MaxRoots)
        M->discard(static_cast<size_t>(Idx));
    } else {
      M->discard(Rng.nextBelow(N));
    }
  }
  while (M->numRoots() > 0)
    M->discard(0);
  return Res;
}

void runStress(RtConfig Cfg, unsigned NumMutators, uint64_t Iters,
               bool StopTheWorld) {
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < NumMutators; ++I)
    Ms.push_back(Rt.registerMutator());

  Rt.startCollector(StopTheWorld);
  std::vector<std::thread> Threads;
  std::vector<StressResult> Results(NumMutators);
  for (unsigned I = 0; I < NumMutators; ++I)
    Threads.emplace_back([&, I] {
      Results[I] = mutatorWorkload(Rt, Ms[I], 1000 + I, Iters, 24);
    });
  for (auto &T : Threads)
    T.join();
  // Mutators must keep servicing handshakes until the collector stops.
  // One service thread per mutator: a parked mutator (STW mode) blocks
  // inside its handler, so they cannot share a thread.
  std::atomic<bool> Done{false};
  std::vector<std::thread> Service;
  for (auto *M : Ms)
    Service.emplace_back([&Done, M] {
      while (!Done.load()) {
        M->safepoint();
        std::this_thread::yield();
      }
    });
  Rt.stopCollector();
  Done.store(true);
  for (auto &T : Service)
    T.join();

  for (auto *M : Ms)
    Rt.deregisterMutator(M);

  uint64_t TotalOps = 0;
  for (const auto &R : Results)
    TotalOps += R.Ops;
  EXPECT_EQ(TotalOps, Iters * NumMutators);
  EXPECT_GE(Rt.stats().Cycles.load(), 1u);

  // After the final cycles, everything unrooted must eventually be
  // reclaimable: run two clean cycles and check the heap drains.
  Rt.HandshakeServicer = [&Ms] {
    for (auto *M : Ms)
      M->safepoint();
  };
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
}

} // namespace

TEST(RuntimeStress, TwoMutatorsOnTheFly) {
  RtConfig Cfg;
  Cfg.HeapObjects = 2048;
  Cfg.NumFields = 2;
  runStress(Cfg, 2, 30'000, /*StopTheWorld=*/false);
}

TEST(RuntimeStress, FourMutatorsOnTheFly) {
  RtConfig Cfg;
  Cfg.HeapObjects = 4096;
  Cfg.NumFields = 2;
  runStress(Cfg, 4, 15'000, /*StopTheWorld=*/false);
}

TEST(RuntimeStress, SmallHeapHighPressure) {
  // A tight heap forces constant reclamation; allocation failures are
  // expected but the runtime must stay safe and keep recovering memory.
  RtConfig Cfg;
  Cfg.HeapObjects = 128;
  Cfg.NumFields = 1;
  runStress(Cfg, 2, 20'000, /*StopTheWorld=*/false);
}

TEST(RuntimeStress, StopTheWorldBaseline) {
  RtConfig Cfg;
  Cfg.HeapObjects = 2048;
  Cfg.NumFields = 2;
  runStress(Cfg, 2, 15'000, /*StopTheWorld=*/true);
}

TEST(RuntimeStress, MutatorChurnDuringCycles) {
  // Threads register, mutate and deregister continuously while the
  // collector runs back-to-back cycles: every handshake round races slot
  // reuse. Regression cover for the stale-acknowledgement stall (a
  // re-registered slot must never be awaited under the old occupant's
  // sequence) — before the generation check this test hung.
  RtConfig Cfg;
  Cfg.HeapObjects = 1024;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *Anchor = Rt.registerMutator();
  Rt.startCollector();

  std::atomic<bool> Done{false};
  std::thread AnchorThread([&] {
    // Keeps the heap busy so cycles do real marking during the churn.
    Xoshiro256 Rng(7);
    while (!Done.load()) {
      Anchor->safepoint();
      if (Anchor->numRoots() < 8) {
        Anchor->alloc();
      } else {
        Anchor->discard(Rng.nextBelow(Anchor->numRoots()));
      }
    }
    while (Anchor->numRoots() > 0)
      Anchor->discard(0);
  });

  constexpr unsigned NumChurners = 2;
  std::vector<std::thread> Churners;
  for (unsigned C = 0; C < NumChurners; ++C)
    Churners.emplace_back([&Rt, C] {
      for (int Round = 0; Round < 150; ++Round) {
        MutatorContext *M = Rt.registerMutator();
        // Slot reuse: with 1 anchor + NumChurners concurrent mutators the
        // registry must never grow past that watermark.
        EXPECT_LT(M->index(), 1 + NumChurners);
        for (int I = 0; I < 40; ++I) {
          M->safepoint();
          int R = M->alloc();
          if (R >= 0 && M->numRoots() > 4)
            M->discard(0);
          (void)C;
        }
        while (M->numRoots() > 0)
          M->discard(0);
        Rt.deregisterMutator(M);
      }
    });
  for (auto &T : Churners)
    T.join();

  // Collector still alive and making progress after all the churn.
  uint64_t CyclesBefore = Rt.stats().Cycles.load();
  while (Rt.stats().Cycles.load() < CyclesBefore + 2)
    std::this_thread::yield();

  // The anchor thread keeps servicing safepoints through the shutdown
  // handshakes; Done is only set once the collector has fully stopped.
  Rt.stopCollector();
  Done.store(true);
  AnchorThread.join();
  Rt.deregisterMutator(Anchor);

  // Everything was unrooted on the way out: two clean cycles drain it.
  Rt.collectOnce();
  Rt.collectOnce();
  EXPECT_EQ(Rt.heap().allocatedCount(), 0u);
}

TEST(RuntimeStress, SingleFieldListChurn) {
  // List-building workload: long singly linked lists built and abandoned.
  RtConfig Cfg;
  Cfg.HeapObjects = 1024;
  Cfg.NumFields = 1;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.startCollector();
  for (int List = 0; List < 200; ++List) {
    int Head = M->alloc();
    if (Head < 0) {
      M->safepoint();
      continue;
    }
    // Build: new node, link old head behind it, drop old head root.
    for (int I = 0; I < 20; ++I) {
      M->safepoint();
      int Node = M->alloc();
      if (Node < 0)
        break;
      // node.f0 = head; then the new node becomes the only root.
      M->store(0, static_cast<size_t>(Node), 0);
      M->discard(0);
    }
    // Abandon the whole list.
    while (M->numRoots() > 0)
      M->discard(0);
  }
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  Rt.stopCollector();
  Done.store(true);
  Service.join();
  Rt.deregisterMutator(M);
  SUCCEED();
}
