//===- tests/tso_test.cpp - x86-TSO memory subsystem tests ----------------===//

#include "tso/MemoryState.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

class TsoTest : public ::testing::Test {
protected:
  // 2 procs, 3 globals, 4 refs, 1 field, buffer bound 4.
  MemoryState M{2, 3, 4, 1, 4};
};

} // namespace

TEST_F(TsoTest, StoresAreBufferedNotVisible) {
  M.write(0, MemLoc::globalVar(0), MemVal{42});
  // Shared memory still has the old value…
  EXPECT_EQ(M.memoryRead(MemLoc::globalVar(0)).Raw, 0);
  // …and another thread reads the old value…
  EXPECT_EQ(M.read(1, MemLoc::globalVar(0)).Raw, 0);
  // …but the issuing thread sees its own store (store forwarding).
  EXPECT_EQ(M.read(0, MemLoc::globalVar(0)).Raw, 42);
}

TEST_F(TsoTest, CommitMakesStoreVisible) {
  M.write(0, MemLoc::globalVar(0), MemVal{42});
  M.commitOldest(0);
  EXPECT_EQ(M.read(1, MemLoc::globalVar(0)).Raw, 42);
  EXPECT_TRUE(M.bufferEmpty(0));
}

TEST_F(TsoTest, BufferIsFifo) {
  M.write(0, MemLoc::globalVar(0), MemVal{1});
  M.write(0, MemLoc::globalVar(0), MemVal{2});
  M.commitOldest(0);
  EXPECT_EQ(M.memoryRead(MemLoc::globalVar(0)).Raw, 1);
  M.commitOldest(0);
  EXPECT_EQ(M.memoryRead(MemLoc::globalVar(0)).Raw, 2);
}

TEST_F(TsoTest, ForwardingReturnsMostRecentStore) {
  M.write(0, MemLoc::globalVar(1), MemVal{1});
  M.write(0, MemLoc::globalVar(1), MemVal{2});
  EXPECT_EQ(M.read(0, MemLoc::globalVar(1)).Raw, 2);
}

TEST_F(TsoTest, ForwardingIsPerLocation) {
  M.write(0, MemLoc::globalVar(0), MemVal{7});
  EXPECT_EQ(M.read(0, MemLoc::globalVar(1)).Raw, 0);
}

TEST_F(TsoTest, BuffersArePerThread) {
  M.write(0, MemLoc::globalVar(0), MemVal{1});
  M.write(1, MemLoc::globalVar(0), MemVal{2});
  EXPECT_EQ(M.read(0, MemLoc::globalVar(0)).Raw, 1);
  EXPECT_EQ(M.read(1, MemLoc::globalVar(0)).Raw, 2);
}

TEST_F(TsoTest, BufferBoundEnforced) {
  for (int I = 0; I < 4; ++I) {
    EXPECT_FALSE(M.bufferFull(0));
    M.write(0, MemLoc::globalVar(0), MemVal{1});
  }
  EXPECT_TRUE(M.bufferFull(0));
}

TEST_F(TsoTest, LockBlocksOthers) {
  M.acquireLock(0);
  EXPECT_TRUE(M.lockHeldBy(0));
  EXPECT_FALSE(M.isBlocked(0));
  EXPECT_TRUE(M.isBlocked(1));
  M.releaseLock(0);
  EXPECT_FALSE(M.isBlocked(1));
}

TEST_F(TsoTest, CanFenceOnlyWhenDrained) {
  EXPECT_TRUE(M.canFence(0));
  M.write(0, MemLoc::globalVar(0), MemVal{1});
  EXPECT_FALSE(M.canFence(0));
  M.commitOldest(0);
  EXPECT_TRUE(M.canFence(0));
}

TEST_F(TsoTest, ObjectCellsAreMemory) {
  M.heap().allocAt(R(0), false);
  M.write(0, MemLoc::objFlag(R(0)), MemVal::fromBool(true));
  // Unflushed: heap still shows unmarked; owner sees marked.
  EXPECT_FALSE(M.heap().markFlag(R(0)));
  EXPECT_TRUE(M.read(0, MemLoc::objFlag(R(0))).asBool());
  M.commitOldest(0);
  EXPECT_TRUE(M.heap().markFlag(R(0)));
}

TEST_F(TsoTest, FieldWritesThroughBuffer) {
  M.heap().allocAt(R(0), false);
  M.heap().allocAt(R(1), false);
  M.write(1, MemLoc::objField(R(0), 0), MemVal::fromRef(R(1)));
  EXPECT_TRUE(M.heap().field(R(0), 0).isNull());
  M.commitOldest(1);
  EXPECT_EQ(M.heap().field(R(0), 0), R(1));
}

TEST_F(TsoTest, DanglingAccessesCountedAndDropped) {
  EXPECT_EQ(M.danglingAccesses(), 0u);
  // Write to a freed object: dropped, counted.
  M.write(0, MemLoc::objFlag(R(2)), MemVal::fromBool(true));
  M.commitOldest(0);
  EXPECT_EQ(M.danglingAccesses(), 1u);
  // Read of a freed object yields null.
  EXPECT_EQ(M.read(0, MemLoc::objField(R(2), 0)).asRef(), Ref::null());
  EXPECT_EQ(M.danglingAccesses(), 2u);
}

TEST_F(TsoTest, PendingWritesToQuery) {
  M.write(0, MemLoc::globalVar(2), MemVal{9});
  M.write(1, MemLoc::globalVar(2), MemVal{8});
  M.write(0, MemLoc::globalVar(1), MemVal{7});
  auto Ws = M.pendingWritesTo(MemLoc::globalVar(2));
  ASSERT_EQ(Ws.size(), 2u);
}

TEST_F(TsoTest, EncodeReflectsBuffers) {
  std::string A, B;
  M.encode(A);
  M.write(0, MemLoc::globalVar(0), MemVal{1});
  M.encode(B);
  EXPECT_NE(A, B);
}

TEST_F(TsoTest, EqualityIgnoresDiagnostics) {
  MemoryState A{1, 1, 1, 1, 1}, B{1, 1, 1, 1, 1};
  // Trip the dangling counter on A only.
  A.read(0, MemLoc::objFlag(R(0)));
  EXPECT_EQ(A.danglingAccesses(), 1u);
  EXPECT_TRUE(A == B);
}

TEST(TsoScMode, WritesCommitImmediately) {
  MemoryState M{2, 1, 1, 1, /*BufferBound=*/0};
  EXPECT_TRUE(M.scMode());
  M.write(0, MemLoc::globalVar(0), MemVal{5});
  EXPECT_EQ(M.read(1, MemLoc::globalVar(0)).Raw, 5);
  EXPECT_TRUE(M.bufferEmpty(0));
  EXPECT_FALSE(M.bufferFull(0));
}
