//===- tests/refined_handshake_test.cpp - §3.1's atomicity refinement ------===//
///
/// The paper models handshake state outside TSO and calls resolving that
/// "a later atomicity refinement step". This file checks that refinement:
/// with TsoHandshakes on, the per-mutator request and acknowledgement
/// words are ordinary TSO memory cells — the request store sits in the
/// collector's buffer, the ack store sits in the mutator's — and the full
/// invariant suite still holds over exhaustively-explored instances.

#include "explore/Explorer.h"
#include "explore/Guided.h"
#include "invariants/Describe.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

ModelConfig refinedCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 2; // request + control words can be buffered together
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.TsoHandshakes = true;
  return C;
}

bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0)
    return true;
  if (L.find("sys-dequeue-write-buffer") != std::string::npos)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

} // namespace

TEST(HsWord, EncodingRoundTrips) {
  for (uint8_t Seq : {0, 3, 7})
    for (HsRound R : {HsRound::H1Idle, HsRound::H5GetRoots,
                      HsRound::H6GetWork})
      for (HsType T : {HsType::Noop, HsType::GetRoots, HsType::GetWork}) {
        uint16_t W = hsword::encode(Seq, R, T);
        EXPECT_EQ(hsword::seqOf(W), Seq);
        EXPECT_EQ(hsword::roundOf(W), R);
        EXPECT_EQ(hsword::typeOf(W), T);
      }
}

TEST(HsWord, ConsecutiveSequencesDiffer) {
  // The mutator detects a fresh round by word inequality; consecutive
  // sequence numbers (mod 8) never collide.
  for (unsigned S = 0; S < 16; ++S)
    EXPECT_NE(hsword::encode(S & 7, HsRound::H6GetWork, HsType::GetWork),
              hsword::encode((S + 1) & 7, HsRound::H6GetWork,
                             HsType::GetWork));
}

TEST(RefinedHandshake, RequestWordTravelsThroughBuffer) {
  GcModel M(refinedCfg());
  GuidedDriver D(M);
  // The collector fences, then issues the H1 request store: it must sit in
  // its TSO buffer (pending ghost already set), invisible to the mutator
  // until the commit.
  ASSERT_TRUE(D.take("p0:H1-idle:fence-initiate"));
  ASSERT_TRUE(D.take("p0:H1-idle:store-request"));
  {
    const SysLocal &Sys = M.sysState(D.state());
    EXPECT_TRUE(Sys.HsPending[0]);
    EXPECT_EQ(Sys.CurRound, HsRound::H1Idle);
    EXPECT_EQ(Sys.Mem.buffer(0).size(), 1u);
    EXPECT_EQ(Sys.Mem.memoryRead(MemLoc::globalVar(gvarHsReq(0))).Raw, 0)
        << "the request word must not be visible before the commit";
  }
  // The mutator polls and sees nothing yet.
  ASSERT_TRUE(D.take("p1:mut:hs-poll"));
  EXPECT_FALSE(M.mutator(D.state(), 0).HsBitSet);
  // Commit; now the poll observes the fresh word.
  ASSERT_TRUE(D.take("sys-dequeue-write-buffer"));
  ASSERT_TRUE(D.take("p1:mut:hs-poll"));
  EXPECT_TRUE(M.mutator(D.state(), 0).HsBitSet);
  EXPECT_EQ(M.mutator(D.state(), 0).HsPendingType, HsType::Noop);
  EXPECT_EQ(M.mutator(D.state(), 0).HsPendingRound, HsRound::H1Idle);
}

TEST(RefinedHandshake, AckWordGatesTheCollector) {
  GcModel M(refinedCfg());
  GuidedDriver D(M);
  // Run the mutator through the whole H1 handler but stop before the ack
  // store commits: the collector must still be polling.
  auto NoCommitOfMutator = [](const std::string &L) {
    // Allow everything except committing the mutator's (p1's) buffer when
    // it holds the ack… commits are not distinguishable by label, so
    // instead just drive deterministically below.
    return neutral(L);
  };
  (void)NoCommitOfMutator;
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H1Idle;
  }));
  // Full cycle still completes under the refined protocol.
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  SUCCEED();
}

TEST(RefinedHandshake, ExhaustsCleanlyHandshakesOnly) {
  ModelConfig Cfg = refinedCfg();
  Cfg.MutatorLoad = Cfg.MutatorStore = Cfg.MutatorAlloc =
      Cfg.MutatorDiscard = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreResult Res = exploreExhaustive(M, Inv);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail
      << (Res.BadState ? "\n" + describeState(M, *Res.BadState) : "");
  EXPECT_FALSE(Res.Truncated);
  EXPECT_GT(Res.StatesVisited, 500u);
}

TEST(RefinedHandshake, ExhaustsCleanlyAllocDiscard) {
  // Alloc/discard + handshakes; the refined protocol's extra buffered
  // words make the all-ops instance too large for a test budget, so ops
  // are split across this and the chain-stores instance.
  ModelConfig Cfg = refinedCfg();
  Cfg.BufferBound = 1;
  Cfg.MutatorLoad = false;
  Cfg.MutatorStore = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 60'000'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail
      << (Res.BadState ? "\n" + describeState(M, *Res.BadState) : "");
  EXPECT_FALSE(Res.Truncated);
}

TEST(RefinedHandshake, ExhaustsCleanlyChainStores) {
  ModelConfig Cfg = refinedCfg();
  Cfg.BufferBound = 1;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.MutatorAlloc = false;
  Cfg.MutatorDiscard = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 60'000'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail;
  EXPECT_FALSE(Res.Truncated);
}

TEST(RefinedHandshake, RandomSweepTwoMutators) {
  ModelConfig Cfg = refinedCfg();
  Cfg.NumMutators = 2;
  Cfg.NumRefs = 4;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  for (uint64_t Seed : {71u, 72u}) {
    WalkOptions Opts;
    Opts.Steps = 40'000;
    Opts.Seed = Seed;
    WalkResult Res = exploreRandomWalk(M, Inv, Opts);
    ASSERT_FALSE(Res.Bug.has_value())
        << "seed " << Seed << ": " << Res.Bug->Name << " — "
        << Res.Bug->Detail;
    EXPECT_EQ(Res.Deadlocks, 0u);
  }
}

TEST(RefinedHandshake, CombinesWithMergedRounds) {
  ModelConfig Cfg = refinedCfg();
  Cfg.MergedInitHandshakes = true;
  Cfg.MutatorLoad = Cfg.MutatorDiscard = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 60'000'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail;
  EXPECT_FALSE(Res.Truncated);
}
