//===- tests/validation_test.cpp - The runtime safety net, tested ---------===//
///
/// The epoch-validation layer is the runtime's enforcement of the headline
/// property: accessing a freed object through a stale root handle must
/// abort loudly. These death tests prove the net actually catches — and
/// that a runtime with an ablated deletion barrier walks into it on the
/// Figure 1 schedule.

#include "runtime/GcRuntime.h"

#include <gtest/gtest.h>

using namespace tsogc::rt;

namespace {

RtConfig smallCfg() {
  RtConfig C;
  C.HeapObjects = 64;
  C.NumFields = 1;
  return C;
}

} // namespace

TEST(ValidationDeath, AccessAfterManualFreeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GcRuntime Rt(smallCfg());
  MutatorContext *M = Rt.registerMutator();
  int A = M->alloc();
  ASSERT_GE(A, 0);
  // Simulate a collector bug: free the rooted object behind the mutator's
  // back. The very next access must abort with the safety diagnostic.
  Rt.heap().free(M->rootRef(static_cast<size_t>(A)));
  EXPECT_DEATH(M->load(static_cast<size_t>(A), 0), "GC SAFETY VIOLATION");
}

TEST(ValidationDeath, EpochCatchesRecycledSlot) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GcRuntime Rt(smallCfg());
  MutatorContext *M = Rt.registerMutator();
  int A = M->alloc();
  ASSERT_GE(A, 0);
  RtRef Raw = M->rootRef(static_cast<size_t>(A));
  // Free and reallocate the same slot: it is allocated again, but with a
  // bumped epoch — the stale handle must still be rejected.
  Rt.heap().free(Raw);
  RtRef Again = Rt.heap().alloc(false);
  ASSERT_EQ(Again, Raw);
  EXPECT_DEATH(M->store(static_cast<size_t>(A), static_cast<size_t>(A), 0),
               "GC SAFETY VIOLATION");
}

TEST(ValidationDeath, DeletionBarrierAblationUnsafeFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The runtime counterpart of the model's E2 counterexample, driven
  // deterministically: with the deletion barrier OFF, a reference loaded
  // after root marking and then hidden by overwriting its only heap edge
  // is freed while still rooted; the next access aborts.
  auto Scenario = [] {
    RtConfig Cfg = smallCfg();
    Cfg.DeletionBarrier = false;
    GcRuntime Rt(Cfg);
    MutatorContext *M = Rt.registerMutator();
    // Heap: a (rooted) -> b.
    int A = M->alloc();
    int B = M->alloc();
    M->store(static_cast<size_t>(B), static_cast<size_t>(A), 0);
    M->discard(static_cast<size_t>(B));
    int BIdx = -1;
    bool Hidden = false;
    Rt.HandshakeServicer = [&] {
      M->safepoint();
      // Right after this mutator's roots were marked (phase is Mark and
      // the root-marking handshake has run), load b and delete the edge:
      // with no deletion barrier, b is never greyed.
      if (!Hidden && M->stats().RootsMarked > 0) {
        BIdx = M->load(0, 0); // b joins the roots — behind the snapshot
        if (BIdx >= 0) {
          M->store(0, 0, 0); // a.f0 := a — b's only heap edge is gone
          Hidden = true;
        }
      }
    };
    Rt.collectOnce(); // sweeps b even though it is rooted
    if (BIdx >= 0)
      M->load(static_cast<size_t>(BIdx), 0); // must abort
  };
  EXPECT_DEATH(Scenario(), "GC SAFETY VIOLATION");
}

TEST(Validation, SameScheduleSafeWithDeletionBarrier) {
  // Control: identical schedule with the barrier on; b is greyed by the
  // deletion barrier, survives, and the access is fine.
  RtConfig Cfg = smallCfg();
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  int A = M->alloc();
  int B = M->alloc();
  M->store(static_cast<size_t>(B), static_cast<size_t>(A), 0);
  M->discard(static_cast<size_t>(B));
  (void)A;
  int BIdx = -1;
  bool Hidden = false;
  Rt.HandshakeServicer = [&] {
    M->safepoint();
    if (!Hidden && M->stats().RootsMarked > 0) {
      BIdx = M->load(0, 0);
      if (BIdx >= 0) {
        M->store(0, 0, 0);
        Hidden = true;
      }
    }
  };
  CycleStats CS = Rt.collectOnce();
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  ASSERT_GE(BIdx, 0);
  M->load(static_cast<size_t>(BIdx), 0); // b is alive
  EXPECT_EQ(Rt.heap().allocatedCount(), 2u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(Validation, CanBeDisabled) {
  RtConfig Cfg = smallCfg();
  Cfg.Validate = false;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  int A = M->alloc();
  Rt.heap().free(M->rootRef(static_cast<size_t>(A)));
  // No abort with validation off (the production configuration); the read
  // returns whatever the slot holds.
  M->load(static_cast<size_t>(A), 0);
  SUCCEED();
}
