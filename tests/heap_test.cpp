//===- tests/heap_test.cpp - Heap, reachability, tricolor tests -----------===//

#include "heap/Color.h"
#include "heap/Heap.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

class HeapTest : public ::testing::Test {
protected:
  Heap H{8, 2};
};

} // namespace

TEST(RefTest, NullBehaviour) {
  Ref N;
  EXPECT_TRUE(N.isNull());
  EXPECT_EQ(N, Ref::null());
  EXPECT_NE(N, R(0));
  EXPECT_EQ(Ref::fromRaw(N.raw()), N);
}

TEST(RefTest, Ordering) {
  EXPECT_LT(R(1), R(2));
  EXPECT_LT(R(2), Ref::null()); // null encodes as the max raw value
}

TEST_F(HeapTest, AllocFreeRoundTrip) {
  EXPECT_EQ(H.numAllocated(), 0u);
  H.allocAt(R(3), true);
  EXPECT_TRUE(H.isValid(R(3)));
  EXPECT_FALSE(H.isValid(R(2)));
  EXPECT_EQ(H.numAllocated(), 1u);
  EXPECT_TRUE(H.markFlag(R(3)));
  H.free(R(3));
  EXPECT_FALSE(H.isValid(R(3)));
  EXPECT_EQ(H.numAllocated(), 0u);
}

TEST_F(HeapTest, NullIsNeverValid) {
  EXPECT_FALSE(H.isValid(Ref::null()));
}

TEST_F(HeapTest, FreshObjectFieldsAreNull) {
  H.allocAt(R(0), false);
  EXPECT_TRUE(H.field(R(0), 0).isNull());
  EXPECT_TRUE(H.field(R(0), 1).isNull());
}

TEST_F(HeapTest, FirstFreeSkipsAllocated) {
  H.allocAt(R(0), false);
  H.allocAt(R(1), false);
  EXPECT_EQ(H.firstFreeRef(), R(2));
  EXPECT_EQ(H.freeRefs().size(), 6u);
}

TEST_F(HeapTest, FullHeapHasNoFreeRef) {
  Heap Small(2, 1);
  Small.allocAt(R(0), false);
  Small.allocAt(R(1), false);
  EXPECT_TRUE(Small.firstFreeRef().isNull());
  EXPECT_TRUE(Small.freeRefs().empty());
}

TEST_F(HeapTest, FieldWriteRead) {
  H.allocAt(R(0), false);
  H.allocAt(R(1), false);
  H.setField(R(0), 1, R(1));
  EXPECT_EQ(H.field(R(0), 1), R(1));
  EXPECT_TRUE(H.field(R(0), 0).isNull());
}

TEST_F(HeapTest, ReachabilityFollowsChains) {
  for (unsigned I = 0; I < 4; ++I)
    H.allocAt(R(I), false);
  H.setField(R(0), 0, R(1));
  H.setField(R(1), 0, R(2));
  // r3 is disconnected.
  auto Reached = H.reachableFrom({R(0)});
  EXPECT_EQ(Reached, (std::vector<Ref>{R(0), R(1), R(2)}));
}

TEST_F(HeapTest, ReachabilityHandlesCycles) {
  H.allocAt(R(0), false);
  H.allocAt(R(1), false);
  H.setField(R(0), 0, R(1));
  H.setField(R(1), 0, R(0));
  auto Reached = H.reachableFrom({R(0)});
  EXPECT_EQ(Reached.size(), 2u);
}

TEST_F(HeapTest, DanglingRootIsReportedButNotFollowed) {
  H.allocAt(R(0), false);
  // R(5) has no object: it is itself "reachable" (it is a root) but reaches
  // nothing — this is exactly the shape of a safety violation.
  auto Reached = H.reachableFrom({R(0), R(5)});
  EXPECT_EQ(Reached, (std::vector<Ref>{R(0), R(5)}));
  EXPECT_FALSE(H.isValid(R(5)));
}

TEST_F(HeapTest, ReachableFromEmptyRootsIsEmpty) {
  H.allocAt(R(0), false);
  EXPECT_TRUE(H.reachableFrom({}).empty());
}

TEST_F(HeapTest, WhiteReachableZeroLength) {
  H.allocAt(R(0), false);
  EXPECT_TRUE(H.whiteReachable(R(0), R(0), true));
}

TEST_F(HeapTest, WhiteReachableThroughWhiteChainOnly) {
  // Mark sense = true; flag false = white.
  for (unsigned I = 0; I < 4; ++I)
    H.allocAt(R(I), false);
  H.setField(R(0), 0, R(1));
  H.setField(R(1), 0, R(2));
  H.setField(R(2), 0, R(3));
  EXPECT_TRUE(H.whiteReachable(R(0), R(3), true));
  // Blacken the middle of the chain: the path no longer counts as a white
  // chain (a black node interrupts grey protection).
  H.setMarkFlag(R(1), true);
  EXPECT_FALSE(H.whiteReachable(R(0), R(3), true));
  // Direct edges are always usable regardless of target color.
  EXPECT_TRUE(H.whiteReachable(R(0), R(1), true));
}

TEST_F(HeapTest, EncodeDistinguishesStates) {
  Heap A(4, 1), B(4, 1);
  A.allocAt(R(0), false);
  B.allocAt(R(0), true);
  std::string EA, EB;
  A.encode(EA);
  B.encode(EB);
  EXPECT_NE(EA, EB);
  std::string EA2;
  A.encode(EA2);
  EXPECT_EQ(EA, EA2);
}

TEST(ColorViewTest, BasicColors) {
  Heap H(4, 1);
  H.allocAt(R(0), true);  // marked
  H.allocAt(R(1), false); // unmarked
  H.allocAt(R(2), true);  // marked but grey (on a work-list)
  ColorView CV(H, /*MarkSense=*/true, {R(2)});
  EXPECT_TRUE(CV.isBlack(R(0)));
  EXPECT_FALSE(CV.isWhite(R(0)));
  EXPECT_TRUE(CV.isWhite(R(1)));
  EXPECT_FALSE(CV.isBlack(R(1)));
  EXPECT_TRUE(CV.isGrey(R(2)));
  EXPECT_FALSE(CV.isBlack(R(2)));
  EXPECT_EQ(CV.color(R(0)), Color::Black);
  EXPECT_EQ(CV.color(R(1)), Color::White);
  EXPECT_EQ(CV.color(R(2)), Color::Grey);
}

TEST(ColorViewTest, WhiteAndGreyOverlap) {
  // During the CAS window an object can be white (unmarked on the heap) yet
  // grey (honorary); the dominant color is grey.
  Heap H(2, 1);
  H.allocAt(R(0), false);
  ColorView CV(H, true, {R(0)});
  EXPECT_TRUE(CV.isWhite(R(0)));
  EXPECT_TRUE(CV.isGrey(R(0)));
  EXPECT_FALSE(CV.isBlack(R(0)));
  EXPECT_EQ(CV.color(R(0)), Color::Grey);
}

TEST(ColorViewTest, GreyProtection) {
  // G(grey) -> w1 -> w2 ; B(black) -> w2 : w2 is grey-protected (Figure 1).
  Heap H(5, 2);
  for (unsigned I = 0; I < 4; ++I)
    H.allocAt(R(I), false);
  H.setMarkFlag(R(0), true); // G is marked, on the work-list
  H.setMarkFlag(R(3), true); // B is black
  H.setField(R(0), 0, R(1));
  H.setField(R(1), 0, R(2));
  H.setField(R(3), 0, R(2));
  ColorView CV(H, true, {R(0)});
  EXPECT_TRUE(CV.isGreyProtected(R(2)));
  EXPECT_TRUE(CV.isGreyProtected(R(1)));
  // Deleting the chain edge removes protection.
  H.setField(R(1), 0, Ref::null());
  ColorView CV2(H, true, {R(0)});
  EXPECT_FALSE(CV2.isGreyProtected(R(2)));
}

TEST(ColorViewTest, GreysAreDeduplicatedAndNullFree) {
  Heap H(2, 1);
  H.allocAt(R(0), true);
  ColorView CV(H, true, {R(0), R(0), Ref::null()});
  EXPECT_EQ(CV.greys().size(), 1u);
}
