//===- tests/safety_exhaustive_test.cpp - The headline theorem (E1) --------===//
///
/// GC ∥ M1 ∥ … ∥ Sys ⊨ □(∀r. reachable r → valid_ref r), checked by
/// exhausting the reachable state space of finite instances and evaluating
/// the complete §3.2 invariant suite in every state. Parameterized over a
/// family of instances; each must exhaust cleanly.

#include "explore/Explorer.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

struct Instance {
  const char *Name;
  ModelConfig Cfg;
};

std::vector<Instance> instances() {
  std::vector<Instance> Out;

  // The canonical small instance: one mutator over a two-object chain,
  // all Figure 6 operations enabled, TSO buffer bound 1.
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    Out.push_back({"1mut-2refs-full", C});
  }
  // Chain heap: the grey-protection shapes of Figure 1 arise.
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorAlloc = false; // keep the space tight; allocation is covered
                            // by 1mut-2refs-full
    Out.push_back({"1mut-chain-noalloc", C});
  }
  // Deeper TSO buffers: more pending-write interleavings.
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 3;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorAlloc = false;
    C.MutatorDiscard = false;
    Out.push_back({"1mut-chain-buf3", C});
  }
  // Two mutators: ragged handshakes, racy stores, the full combinatorics
  // of §3.2's "most intricate" scenarios — ops narrowed to stores.
  {
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorAlloc = false;
    C.MutatorLoad = false;
    C.MutatorDiscard = false;
    Out.push_back({"2mut-stores-only", C});
  }
  // Spontaneous mutator MFENCEs: extra fence steps must not disturb any
  // invariant (they only restrict behaviours, but the model path is new).
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorMfence = true;
    C.MutatorAlloc = false;
    C.MutatorDiscard = false;
    Out.push_back({"1mut-mfence", C});
  }
  // Nondeterministic allocation-slot choice (the paper's "arbitrary free
  // reference"), alloc/discard only.
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 3;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Empty;
    C.AllocNondet = true;
    C.MutatorLoad = false;
    C.MutatorStore = false;
    Out.push_back({"1mut-alloc-nondet", C});
  }
  // Sequential consistency ablation: the algorithm is also safe without
  // store buffers (SC is a special case of TSO).
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 0;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    Out.push_back({"1mut-sc", C});
  }
  // Two fields per object: branching heap shapes.
  {
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 2;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorAlloc = false;
    C.MutatorDiscard = false;
    Out.push_back({"1mut-2fields", C});
  }
  return Out;
}

class SafetyExhaustive : public ::testing::TestWithParam<Instance> {};

} // namespace

TEST_P(SafetyExhaustive, FullSuiteHoldsEverywhere) {
  const Instance &I = GetParam();
  GcModel M(I.Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.MaxStates = 60'000'000;
  ExploreResult Res = exploreExhaustive(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail << "\npath length "
      << Res.Path.size();
  EXPECT_FALSE(Res.Truncated) << "state space not exhausted; raise the limit";
  RecordProperty("states", static_cast<int>(Res.StatesVisited));
  // Sanity: these instances are small but genuinely concurrent.
  EXPECT_GT(Res.StatesVisited, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Instances, SafetyExhaustive,
                         ::testing::ValuesIn(instances()),
                         [](const ::testing::TestParamInfo<Instance> &I) {
                           std::string Name = I.param.Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });
