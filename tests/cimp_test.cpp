//===- tests/cimp_test.cpp - CIMP language semantics tests ----------------===//
///
/// Exercises the Figure 7/8 semantics on a toy domain: integer local
/// states, integer request/response values.

#include "cimp/System.h"

#include <gtest/gtest.h>

using namespace tsogc;
using namespace tsogc::cimp;

namespace {

struct IntDomain {
  using LocalState = int;
  using Request = int;
  using Response = int;
};

using IProg = Program<IntDomain>;
using IState = SystemState<IntDomain>;

/// Deterministic +K local op.
CmdId add(IProg &P, int K, std::string Label = "add") {
  return P.localDet(std::move(Label), [K](int &S) { S += K; });
}

} // namespace

TEST(CimpNormalize, SeqUnfoldsInOrder) {
  IProg P;
  P.setEntry(P.seq({add(P, 1, "a"), add(P, 2, "b"), add(P, 4, "c")}));
  System<IntDomain> Sys({&P});
  IState S = Sys.initialState({0});

  for (int Expected : {1, 3, 7}) {
    auto Succs = Sys.successors(S);
    ASSERT_EQ(Succs.size(), 1u);
    S = Succs[0].State;
    EXPECT_EQ(S[0].Local, Expected);
  }
  EXPECT_TRUE(Sys.successors(S).empty());
  EXPECT_TRUE(S[0].terminated());
}

TEST(CimpNormalize, ChoiceBranches) {
  IProg P;
  P.setEntry(P.choice({add(P, 1), add(P, 10), add(P, 100)}));
  System<IntDomain> Sys({&P});
  auto Succs = Sys.successors(Sys.initialState({0}));
  ASSERT_EQ(Succs.size(), 3u);
  EXPECT_EQ(Succs[0].State[0].Local, 1);
  EXPECT_EQ(Succs[1].State[0].Local, 10);
  EXPECT_EQ(Succs[2].State[0].Local, 100);
}

TEST(CimpNormalize, NondeterministicLocalOp) {
  IProg P;
  P.setEntry(P.localOp("pick", [](const int &S, std::vector<int> &Out) {
    Out.push_back(S + 1);
    Out.push_back(S + 2);
  }));
  System<IntDomain> Sys({&P});
  auto Succs = Sys.successors(Sys.initialState({5}));
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0].State[0].Local, 6);
  EXPECT_EQ(Succs[1].State[0].Local, 7);
}

TEST(CimpNormalize, EmptyLocalOpBlocks) {
  IProg P;
  P.setEntry(P.localOp("stuck", [](const int &, std::vector<int> &) {}));
  System<IntDomain> Sys({&P});
  EXPECT_TRUE(Sys.successors(Sys.initialState({0})).empty());
}

TEST(CimpNormalize, IfSelectsBranchOnLocalState) {
  IProg P;
  P.setEntry(P.ifThenElse([](const int &S) { return S > 0; },
                          add(P, 100, "then"), add(P, -100, "else")));
  System<IntDomain> Sys({&P});

  auto SuccsPos = Sys.successors(Sys.initialState({1}));
  ASSERT_EQ(SuccsPos.size(), 1u);
  EXPECT_EQ(SuccsPos[0].State[0].Local, 101);

  auto SuccsNeg = Sys.successors(Sys.initialState({0}));
  ASSERT_EQ(SuccsNeg.size(), 1u);
  EXPECT_EQ(SuccsNeg[0].State[0].Local, -100);
}

TEST(CimpNormalize, IfThenWithoutElseIsSkippable) {
  IProg P;
  P.setEntry(P.seq({P.ifThen([](const int &S) { return S > 0; },
                             add(P, 100, "then")),
                    add(P, 1, "after")}));
  System<IntDomain> Sys({&P});
  // Guard false: the skip is erased during normalization, so the single
  // successor is directly the "after" step.
  auto Succs = Sys.successors(Sys.initialState({0}));
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0].State[0].Local, 1);
  EXPECT_TRUE(Succs[0].State[0].terminated());
}

TEST(CimpNormalize, WhileIterates) {
  IProg P;
  P.setEntry(P.whileLoop([](const int &S) { return S < 3; }, add(P, 1)));
  System<IntDomain> Sys({&P});
  IState S = Sys.initialState({0});
  int Steps = 0;
  for (;;) {
    auto Succs = Sys.successors(S);
    if (Succs.empty())
      break;
    ASSERT_EQ(Succs.size(), 1u);
    S = Succs[0].State;
    ++Steps;
  }
  EXPECT_EQ(S[0].Local, 3);
  EXPECT_EQ(Steps, 3);
}

TEST(CimpNormalize, LoopNeverTerminates) {
  IProg P;
  P.setEntry(P.loop(add(P, 1)));
  System<IntDomain> Sys({&P});
  IState S = Sys.initialState({0});
  for (int I = 0; I < 10; ++I) {
    auto Succs = Sys.successors(S);
    ASSERT_EQ(Succs.size(), 1u);
    S = Succs[0].State;
  }
  EXPECT_EQ(S[0].Local, 10);
  // The control stack stays bounded (Loop re-expands, it does not grow).
  EXPECT_LE(S[0].Stack.size(), 3u);
}

TEST(CimpRendezvous, RequestPairsWithResponse) {
  // Client sends its value; server doubles it and sends it back.
  IProg Client, Server;
  Client.setEntry(Client.request(
      "ask", [](const int &S) { return S; },
      [](const int &, const int &Rsp, std::vector<int> &Out) {
        Out.push_back(Rsp);
      }));
  Server.setEntry(Server.response(
      "serve", [](const int &Req, const int &S,
                  std::vector<std::pair<int, int>> &Out) {
        Out.emplace_back(S + 1, Req * 2);
      }));
  System<IntDomain> Sys({&Client, &Server});
  auto Succs = Sys.successors(Sys.initialState({21, 0}));
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_TRUE(Succs[0].IsRendezvous);
  EXPECT_EQ(Succs[0].State[0].Local, 42); // client got 21*2
  EXPECT_EQ(Succs[0].State[1].Local, 1);  // server state advanced
}

TEST(CimpRendezvous, BlockedResponseDisablesTransition) {
  IProg Client, Server;
  Client.setEntry(Client.requestIgnore("ask", [](const int &S) { return S; }));
  // The server only accepts even requests.
  Server.setEntry(Server.response(
      "serve", [](const int &Req, const int &S,
                  std::vector<std::pair<int, int>> &Out) {
        if (Req % 2 == 0)
          Out.emplace_back(S, 0);
      }));
  System<IntDomain> Sys({&Client, &Server});
  EXPECT_TRUE(Sys.successors(Sys.initialState({3, 0})).empty());
  EXPECT_EQ(Sys.successors(Sys.initialState({4, 0})).size(), 1u);
}

TEST(CimpRendezvous, NondeterministicResponseFansOut) {
  IProg Client, Server;
  Client.setEntry(Client.request(
      "ask", [](const int &) { return 0; },
      [](const int &, const int &Rsp, std::vector<int> &Out) {
        Out.push_back(Rsp);
      }));
  Server.setEntry(Server.response(
      "serve", [](const int &, const int &S,
                  std::vector<std::pair<int, int>> &Out) {
        Out.emplace_back(S, 1);
        Out.emplace_back(S, 2);
      }));
  System<IntDomain> Sys({&Client, &Server});
  auto Succs = Sys.successors(Sys.initialState({0, 0}));
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0].State[0].Local, 1);
  EXPECT_EQ(Succs[1].State[0].Local, 2);
}

TEST(CimpRendezvous, TwoRequestersInterleave) {
  IProg C1, C2, Server;
  for (IProg *C : {&C1, &C2})
    C->setEntry(C->requestIgnore("ask", [](const int &S) { return S; }));
  Server.setEntry(Server.loop(Server.response(
      "serve", [](const int &, const int &S,
                  std::vector<std::pair<int, int>> &Out) {
        Out.emplace_back(S + 1, 0);
      })));
  System<IntDomain> Sys({&C1, &C2, &Server});
  auto Succs = Sys.successors(Sys.initialState({0, 0, 0}));
  // Either client can rendezvous first.
  EXPECT_EQ(Succs.size(), 2u);
}

TEST(CimpRendezvous, ResponsesDoNotPairWithEachOther) {
  IProg S1, S2;
  for (IProg *S : {&S1, &S2})
    S->setEntry(S->response("serve",
                            [](const int &, const int &,
                               std::vector<std::pair<int, int>> &) {}));
  System<IntDomain> Sys({&S1, &S2});
  EXPECT_TRUE(Sys.successors(Sys.initialState({0, 0})).empty());
}

TEST(CimpInterleaving, LocalStepsOfDifferentProcsBothEnabled) {
  IProg P1, P2;
  P1.setEntry(add(P1, 1));
  P2.setEntry(add(P2, 1));
  System<IntDomain> Sys({&P1, &P2});
  auto Succs = Sys.successors(Sys.initialState({0, 0}));
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0].P, 0);
  EXPECT_EQ(Succs[1].P, 1);
}

TEST(CimpProgram, DumpRendersStructure) {
  IProg P;
  CmdId Body = P.seq({add(P, 1, "inc"), P.nop("skip")});
  P.setEntry(P.loop(Body));
  std::string D = P.dump(P.entry());
  EXPECT_NE(D.find("LOOP"), std::string::npos);
  EXPECT_NE(D.find("SEQ"), std::string::npos);
  EXPECT_NE(D.find("{inc} LOCALOP"), std::string::npos);
  EXPECT_NE(D.find("{skip} SKIP"), std::string::npos);
}

TEST(CimpProgram, LabelsAppearInSuccessors) {
  IProg P;
  P.setEntry(add(P, 1, "mystep"));
  System<IntDomain> Sys({&P});
  auto Succs = Sys.successors(Sys.initialState({0}));
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0].Label, "p0:mystep");
}
