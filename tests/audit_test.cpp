//===- tests/audit_test.cpp - Whole-heap runtime audits -------------------===//
///
/// GcRuntime::auditHeap parks the world and checks the runtime analogue of
/// valid_refs_inv: every reference reachable from any root names an
/// allocated object. Unlike the per-access epoch checks, this sweeps the
/// entire reachable graph at once.

#include "runtime/GcRuntime.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc;
using namespace tsogc::rt;

namespace {

/// Run \p Body on a worker thread while this thread keeps the mutator
/// parked-and-resumable; returns the audit taken mid-run.
GcRuntime::HeapAudit auditWhile(GcRuntime &Rt, MutatorContext *M,
                                const std::function<void()> &Prepare) {
  Prepare();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load()) {
      M->safepoint();
      std::this_thread::yield();
    }
  });
  GcRuntime::HeapAudit A = Rt.auditHeap();
  Done.store(true);
  Service.join();
  return A;
}

} // namespace

TEST(HeapAudit, CleanOnLiveGraph) {
  RtConfig Cfg;
  Cfg.HeapObjects = 256;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::HeapAudit A = auditWhile(Rt, M, [&] {
    int X = M->alloc();
    int Y = M->alloc();
    int Z = M->alloc();
    M->store(static_cast<size_t>(Y), static_cast<size_t>(X), 0);
    M->store(static_cast<size_t>(Z), static_cast<size_t>(Y), 1);
    M->discard(static_cast<size_t>(Z));
    M->discard(static_cast<size_t>(Y));
    // Plus one unreachable object.
    int G = M->alloc();
    M->discard(static_cast<size_t>(G));
  });
  EXPECT_TRUE(A.clean());
  EXPECT_EQ(A.Reachable, 3u);
  EXPECT_EQ(A.Unreachable, 1u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(HeapAudit, DetectsDanglingRoot) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.Validate = false; // let the bug exist without tripping epoch checks
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::HeapAudit A = auditWhile(Rt, M, [&] {
    int X = M->alloc();
    Rt.heap().free(M->rootRef(static_cast<size_t>(X))); // simulated GC bug
  });
  EXPECT_FALSE(A.clean());
  EXPECT_EQ(A.DanglingRoots, 1u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(HeapAudit, DetectsDanglingField) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.Validate = false;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::HeapAudit A = auditWhile(Rt, M, [&] {
    int X = M->alloc();
    int Y = M->alloc();
    M->store(static_cast<size_t>(Y), static_cast<size_t>(X), 0); // x.f0 = y
    RtRef YRef = M->rootRef(static_cast<size_t>(Y));
    M->discard(static_cast<size_t>(Y));
    Rt.heap().free(YRef); // y freed while x.f0 still points at it
  });
  EXPECT_FALSE(A.clean());
  EXPECT_EQ(A.DanglingFields, 1u);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(HeapAudit, CountsWorklistEntriesAndPolicesTheMarkSense) {
  // The audit shares the snapshot translation with the observatory, so the
  // worklist half of valid_W_inv is checked too: entries on the shared
  // transfer stripes must be allocated, and — while a cycle is in Init or
  // Mark — marked with the current sense.
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();

  int X = M->alloc();
  RtRef XRef = M->rootRef(static_cast<size_t>(X));
  Rt.heap().spliceShared(XRef, XRef, /*Hint=*/0); // fake a published grey

  // Idle: the entry is counted but its (stale) sense is legal.
  GcRuntime::HeapAudit A = auditWhile(Rt, M, [] {});
  EXPECT_TRUE(A.clean());
  EXPECT_EQ(A.WorklistEntries, 1u);
  EXPECT_EQ(A.UnmarkedWorklist, 0u);
  EXPECT_EQ(A.DanglingWorklist, 0u);

  // Mid-mark with the sense flipped, the same entry is a protocol bug: it
  // sits on a grey list without having won a mark CAS this cycle.
  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Mark));
  Rt.FM.store(1);
  A = auditWhile(Rt, M, [] {});
  EXPECT_FALSE(A.clean());
  EXPECT_EQ(A.WorklistEntries, 1u);
  EXPECT_EQ(A.UnmarkedWorklist, 1u);

  // Matching sense again: clean.
  Rt.FM.store(0);
  A = auditWhile(Rt, M, [] {});
  EXPECT_TRUE(A.clean());
  EXPECT_EQ(A.UnmarkedWorklist, 0u);

  Rt.Phase.store(static_cast<uint32_t>(RtPhase::Idle));
  Rt.heap().takeShared(0);
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(HeapAudit, DetectsDanglingWorklistEntry) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.Validate = false;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  GcRuntime::HeapAudit A = auditWhile(Rt, M, [&] {
    int X = M->alloc();
    RtRef XRef = M->rootRef(static_cast<size_t>(X));
    M->discard(static_cast<size_t>(X));
    Rt.heap().spliceShared(XRef, XRef, /*Hint=*/0);
    Rt.heap().free(XRef); // freed while still on a grey worklist
  });
  EXPECT_FALSE(A.clean());
  EXPECT_EQ(A.WorklistEntries, 1u);
  EXPECT_EQ(A.DanglingWorklist, 1u);
  Rt.heap().takeShared(0);
  Rt.deregisterMutator(M);
}

TEST(HeapAudit, CleanAcrossCollectionCycles) {
  // Interleave real collection cycles with audits under a live workload:
  // the collector must never create a dangling reachable reference.
  RtConfig Cfg;
  Cfg.HeapObjects = 1024;
  Cfg.NumFields = 2;
  Cfg.TortureLevel = 4;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();

  std::atomic<bool> Done{false};
  std::thread Worker([&] {
    wl::GraphMutator W(*M, 9, 16);
    while (!Done.load())
      W.step();
    W.teardown();
  });

  for (int Round = 0; Round < 10; ++Round) {
    Rt.collectOnce();
    GcRuntime::HeapAudit A = Rt.auditHeap();
    EXPECT_TRUE(A.clean())
        << "round " << Round << ": roots=" << A.DanglingRoots
        << " fields=" << A.DanglingFields;
  }
  Done.store(true);
  Worker.join();
  Rt.deregisterMutator(M);
}
