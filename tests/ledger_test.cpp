//===- tests/ledger_test.cpp - Ledger workload tests ----------------------===//
///
/// \file
/// The ledger service as a test subject: deterministic load generation,
/// the conservation invariant (sum of balances == minted, cross-checked
/// against a clean heap audit), TrimHistory manufacturing floating garbage
/// that the next cycles reclaim, and a short observatory soak asserting
/// zero §3.2 invariant violations under real ledger traffic.
///
//===----------------------------------------------------------------------===//

#include "workload/ledger/Slo.h"

#include "runtime/InvariantObservatory.h"

#include <gtest/gtest.h>

using namespace tsogc;
using namespace tsogc::ledger;
using rt::GcRuntime;
using rt::MutatorContext;
using rt::RtConfig;

namespace {

/// Single-threaded fixture: one mutator context, collector driven
/// explicitly via collectOnce with the HandshakeServicer hook.
struct SingleThreadLedger {
  explicit SingleThreadLedger(uint32_t HeapObjects = 1u << 12,
                              uint32_t HistoryLimit = 4)
      : Rt([&] {
          RtConfig C;
          C.HeapObjects = HeapObjects;
          return C;
        }()),
        Svc([&] {
          LedgerConfig C;
          C.MaxAccounts = 64;
          C.HistoryLimit = HistoryLimit;
          return C;
        }()) {
    M = Rt.registerMutator();
    Rt.HandshakeServicer = [this] { M->safepoint(); };
  }
  ~SingleThreadLedger() {
    while (M->numRoots() > 0)
      M->discard(M->numRoots() - 1);
    Rt.deregisterMutator(M);
  }

  GcRuntime Rt;
  LedgerService Svc;
  MutatorContext *M = nullptr;
};

TEST(LoadGenTest, DeterministicUnderFixedSeed) {
  LoadGenConfig Cfg;
  Cfg.RatePerSec = 1000;
  LoadGen A(Cfg, /*Seed=*/7, /*Stream=*/1, /*NumStreams=*/4);
  LoadGen B(Cfg, /*Seed=*/7, /*Stream=*/1, /*NumStreams=*/4);
  for (int I = 0; I < 2000; ++I) {
    OpRequest Ra = A.next(), Rb = B.next();
    ASSERT_EQ(Ra.Kind, Rb.Kind);
    ASSERT_EQ(Ra.A, Rb.A);
    ASSERT_EQ(Ra.B, Rb.B);
    ASSERT_EQ(Ra.Amount, Rb.Amount);
    ASSERT_EQ(Ra.ArrivalNs, Rb.ArrivalNs);
    ASSERT_EQ(Ra.Seq, Rb.Seq);
  }
  // A different seed diverges (sanity that the seed is actually used).
  LoadGen C(Cfg, /*Seed=*/8, /*Stream=*/1, /*NumStreams=*/4);
  bool Diverged = false;
  for (int I = 0; I < 100 && !Diverged; ++I) {
    OpRequest Ra = A.next(), Rc = C.next();
    Diverged = Ra.Kind != Rc.Kind || Ra.A != Rc.A ||
               Ra.ArrivalNs != Rc.ArrivalNs;
  }
  EXPECT_TRUE(Diverged);
}

TEST(LoadGenTest, ArrivalsMatchConfiguredRate) {
  LoadGenConfig Cfg;
  Cfg.RatePerSec = 10000;
  LoadGen Gen(Cfg, 42);
  OpRequest Last;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Last = Gen.next();
  // Mean inter-arrival of an exponential at 10k/s is 100us; over 20k
  // arrivals the clock should land near N/rate seconds (±15%).
  const double Sec = static_cast<double>(Last.ArrivalNs) / 1e9;
  EXPECT_NEAR(Sec, N / Cfg.RatePerSec, 0.15 * N / Cfg.RatePerSec);
}

TEST(LoadGenTest, CreatesArePartitionedAcrossStreams) {
  LoadGenConfig Cfg;
  Cfg.Mix.Create = 1.0; // creates only
  Cfg.Mix.Transfer = Cfg.Mix.TrimHistory = Cfg.Mix.Query = 0.0;
  Cfg.PreCreated = 10;
  Cfg.MaxAccounts = 64;
  LoadGen S0(Cfg, 1, 0, 2), S1(Cfg, 1, 1, 2);
  std::vector<AccountId> Ids;
  for (int I = 0; I < 5; ++I) {
    Ids.push_back(S0.next().A);
    Ids.push_back(S1.next().A);
  }
  // Stream 0 creates 10,12,14...; stream 1 creates 11,13,15...
  for (int I = 0; I < 5; ++I) {
    EXPECT_EQ(Ids[2 * I], 10u + 2 * I);
    EXPECT_EQ(Ids[2 * I + 1], 11u + 2 * I);
  }
}

TEST(LedgerServiceTest, ConservationUnderSingleThreadTraffic) {
  SingleThreadLedger L;
  for (AccountId Id = 0; Id < 16; ++Id)
    ASSERT_EQ(L.Svc.createAccount(*L.M, Id), OpResult::Ok);
  ASSERT_EQ(L.Svc.mintedTotal(), 16u * 1000u);

  LoadGenConfig Cfg;
  Cfg.RatePerSec = 1000;
  Cfg.PreCreated = 16;
  Cfg.MaxAccounts = 64;
  Cfg.Mix.Create = 0; // keep the account set fixed
  LoadGen Gen(Cfg, 99);
  uint64_t Applied = 0;
  for (int I = 0; I < 3000; ++I) {
    OpResult R = executeOp(L.Svc, *L.M, Gen.next());
    Applied += R == OpResult::Ok;
    if (I % 512 == 0)
      L.Rt.collectOnce(); // interleave real cycles with the traffic
  }
  EXPECT_GT(Applied, 1000u);

  // Conservation, checked against the audit: the heap must be consistent
  // (no dangling roots/fields) AND the money must all still be there.
  auto Audit = L.Rt.auditHeap();
  EXPECT_TRUE(Audit.clean());
  EXPECT_EQ(L.Svc.sumBalances(*L.M), L.Svc.mintedTotal());
}

TEST(LedgerServiceTest, ValidationRejectionsAreNormalResponses) {
  SingleThreadLedger L;
  ASSERT_EQ(L.Svc.createAccount(*L.M, 0), OpResult::Ok);
  ASSERT_EQ(L.Svc.createAccount(*L.M, 1), OpResult::Ok);
  EXPECT_EQ(L.Svc.createAccount(*L.M, 0), OpResult::AccountExists);
  EXPECT_EQ(L.Svc.transfer(*L.M, 0, 0, 5, 1), OpResult::SelfTransfer);
  EXPECT_EQ(L.Svc.transfer(*L.M, 0, 1, 0, 2), OpResult::InvalidAmount);
  EXPECT_EQ(L.Svc.transfer(*L.M, 0, 63, 5, 3), OpResult::NoSuchAccount);
  EXPECT_EQ(L.Svc.transfer(*L.M, 0, 1, 100000, 4),
            OpResult::InsufficientFunds);
  uint64_t Bal = 0;
  EXPECT_EQ(L.Svc.queryBalance(*L.M, 0, &Bal), OpResult::Ok);
  EXPECT_EQ(Bal, 1000u);
  ASSERT_EQ(L.Svc.transfer(*L.M, 0, 1, 250, 5), OpResult::Ok);
  EXPECT_EQ(L.Svc.queryBalance(*L.M, 0, &Bal), OpResult::Ok);
  EXPECT_EQ(Bal, 750u);
  EXPECT_EQ(L.Svc.queryBalance(*L.M, 1, &Bal), OpResult::Ok);
  EXPECT_EQ(Bal, 1250u);
  // The root stack only holds the two permanent account roots.
  EXPECT_EQ(L.M->numRoots(), 2u);
}

TEST(LedgerServiceTest, TrimHistoryMakesGarbageThatCyclesReclaim) {
  SingleThreadLedger L(1u << 12, /*HistoryLimit=*/4);
  ASSERT_EQ(L.Svc.createAccount(*L.M, 0), OpResult::Ok);
  ASSERT_EQ(L.Svc.createAccount(*L.M, 1), OpResult::Ok);

  // 12 transfers build a 12-node history on each side (and displace 12
  // balance entries per account along the way).
  for (uint64_t S = 1; S <= 12; ++S)
    ASSERT_EQ(L.Svc.transfer(*L.M, 0, 1, 1, S), OpResult::Ok);
  ASSERT_EQ(L.Svc.historyLength(*L.M, 0), 12u);

  // The displaced entries and (after trim) the history tails are floating
  // garbage: allocated, unreachable, not yet collected.
  auto Before = L.Rt.auditHeap();
  EXPECT_TRUE(Before.clean());
  EXPECT_GT(Before.Unreachable, 0u);

  uint32_t Trimmed = 0;
  ASSERT_EQ(L.Svc.trimHistory(*L.M, 0, &Trimmed), OpResult::Ok);
  EXPECT_EQ(Trimmed, 8u);
  EXPECT_EQ(L.Svc.historyLength(*L.M, 0), 4u);
  auto AfterTrim = L.Rt.auditHeap();
  EXPECT_GE(AfterTrim.Unreachable, Before.Unreachable + 8);

  // Two full cycles reclaim everything (one may have raced the trim).
  L.Rt.collectOnce();
  L.Rt.collectOnce();
  auto AfterGc = L.Rt.auditHeap();
  EXPECT_TRUE(AfterGc.clean());
  EXPECT_EQ(AfterGc.Unreachable, 0u);
  // Live: 2 accounts + 2 entries + 4 + 12 history nodes.
  EXPECT_EQ(AfterGc.Reachable, 2u + 2u + 4u + 12u);
  EXPECT_EQ(L.Svc.sumBalances(*L.M), L.Svc.mintedTotal());
}

TEST(LedgerHarnessTest, MultiThreadedRunMeetsInvariantsAndConserves) {
  LedgerRunConfig Cfg;
  Cfg.Rt.HeapObjects = 1u << 13;
  Cfg.Ledger.MaxAccounts = 96;
  Cfg.Ledger.HistoryLimit = 6;
  Cfg.Load.RatePerSec = 4000;
  Cfg.Load.PreCreated = 32;
  Cfg.Threads = 2;
  Cfg.Seconds = 0.5;
  Cfg.OccupancyTrigger = 0.4;

  LedgerRunResult R = runLedger(Cfg);
  EXPECT_GT(R.OpsApplied, 100u);
  EXPECT_TRUE(R.AuditClean);
  EXPECT_TRUE(R.ConservationOk);
  EXPECT_TRUE(R.Drained);
  EXPECT_TRUE(R.DrainedClean);
  EXPECT_EQ(R.UnreclaimedAfterDrain, 0u);
  EXPECT_GT(R.ThroughputOpsPerSec, 0.0);
  EXPECT_GE(R.P99Us, R.P50Us);
  EXPECT_GE(R.MaxUs, R.P99Us);
}

/// The observatory soak of the issue: a short fuzzed multi-threaded run
/// with live §3.2 checking must report zero invariant violations.
TEST(LedgerObservatoryTest, SoakReportsZeroInvariantViolations) {
  LedgerRunConfig Cfg;
  Cfg.Rt.HeapObjects = 1u << 13;
  Cfg.Rt.Observatory = true;
  Cfg.Rt.FuzzSchedules = 7; // seeded schedule fuzzing
  Cfg.Ledger.MaxAccounts = 96;
  Cfg.Ledger.HistoryLimit = 6;
  Cfg.Load.RatePerSec = 4000;
  Cfg.Load.PreCreated = 32;
  Cfg.Threads = 2;
  Cfg.Seconds = 1.0;
  Cfg.OccupancyTrigger = 0.3;

  LedgerHarness H(Cfg);
  LedgerRunResult R = H.run();
  EXPECT_GT(R.OpsApplied, 50u);
  ASSERT_NE(H.runtime().observatory(), nullptr);
  EXPECT_GT(R.InvariantChecks, 0u);
  EXPECT_EQ(R.InvariantViolations, 0u);
  for (const auto &V : H.runtime().observatory()->violations())
    ADD_FAILURE() << "invariant violation: " << V.Name << ": " << V.Detail;
  EXPECT_TRUE(R.ConservationOk);
  EXPECT_TRUE(R.AuditClean);
}

TEST(SloTest, CheckerFlagsEachViolation) {
  LedgerRunResult R;
  R.OpsTotal = 1000;
  R.OpsApplied = 900;
  R.OfferedOpsPerSec = 1000;
  R.ThroughputOpsPerSec = 900;
  R.P50Us = 100;
  R.P99Us = 1000;
  R.MaxUs = 5000;
  R.MaxPauseNs = 1'000'000;
  R.FloatingGarbageRatio = 0.1;
  R.ConservationOk = true;
  R.AuditClean = true;
  SloTarget T;
  EXPECT_TRUE(checkSlo(T, R).Pass);

  LedgerRunResult Bad = R;
  Bad.P99Us = T.MaxP99Us + 1;
  Bad.MaxPauseNs = static_cast<uint64_t>(T.MaxPauseUs * 1e3) + 1000;
  Bad.ConservationOk = false;
  SloVerdict V = checkSlo(T, Bad);
  EXPECT_FALSE(V.Pass);
  EXPECT_EQ(V.Violations.size(), 3u);
  EXPECT_NE(V.summary().find("SLO FAIL"), std::string::npos);

  LedgerRunResult Empty;
  EXPECT_FALSE(checkSlo(T, Empty).Pass); // no ops completed
}

} // namespace
