//===- tests/parallel_explorer_test.cpp - Parallel vs sequential ----------===//
///
/// The sequential explorer is the oracle: on every seed configuration the
/// parallel explorer must agree with it on StatesVisited, Transitions and
/// the bug/no-bug verdict (the reachable set is order-independent, so a
/// full exhaustion is deterministic regardless of worker count). Violation
/// paths are valid-but-not-necessarily-shortest; validity is checked by
/// replaying the labels against the model.
///
//===----------------------------------------------------------------------===//

#include "explore/ParallelExplorer.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

struct Seed {
  const char *Name;
  ModelConfig Cfg;
};

/// Small, fully-exhaustible seed configurations: every mutator-op subset
/// that keeps the space below ~100k states, over both initial heaps.
std::vector<Seed> seeds() {
  std::vector<Seed> Out;
  {
    // Handshakes only — the canonical tiny instance.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"handshakes-only", C});
  }
  {
    // Stores over a chain: deletion-barrier traffic, TSO buffer activity.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-only-chain", C});
  }
  {
    // Two mutators, handshakes only: ragged handshake interleavings.
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"2mut-handshakes", C});
  }
  {
    // Deeper buffer: more pending-store interleavings.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 2;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-buf2", C});
  }
  return Out;
}

StateChecker neverFails() {
  return [](const GcSystemState &) { return std::optional<Violation>(); };
}

StateChecker cycleDone() {
  return [](const GcSystemState &S) -> std::optional<Violation> {
    if (GcModel::collector(S).CycleCount >= 1)
      return Violation{"planted", "cycle completed"};
    return std::nullopt;
  };
}

/// A label path is valid iff, following successors whose labels match it
/// step by step (a label can be shared by several nondeterministic
/// siblings, so a set of candidate states is tracked), at least one final
/// candidate exists — and for a violation path, violates the checker.
bool pathReplays(const GcModel &M, const std::vector<std::string> &Path,
                 const StateChecker &Violates) {
  std::vector<GcSystemState> Cands{M.initial()};
  for (const std::string &Label : Path) {
    std::vector<GcSystemState> Next;
    for (const GcSystemState &S : Cands)
      for (GcSuccessor &Succ : M.system().successors(S))
        if (Succ.Label == Label)
          Next.push_back(std::move(Succ.State));
    if (Next.empty())
      return false;
    Cands = std::move(Next);
  }
  for (const GcSystemState &S : Cands)
    if (Violates(S))
      return true;
  return false;
}

} // namespace

TEST(ParallelExplorer, DifferentialAgreesOnEverySeedConfiguration) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    ExploreResult Seq = exploreExhaustive(M, Inv);
    ASSERT_TRUE(Seq.exhaustedCleanly()) << Sd.Name;

    for (unsigned Workers : {1u, 4u}) {
      ParallelExploreOptions PO;
      PO.Workers = Workers;
      ExploreResult Par = exploreParallel(M, Inv, PO);
      EXPECT_TRUE(Par.exhaustedCleanly()) << Sd.Name << " w=" << Workers;
      EXPECT_EQ(Par.StatesVisited, Seq.StatesVisited)
          << Sd.Name << " w=" << Workers;
      EXPECT_EQ(Par.TransitionsExplored, Seq.TransitionsExplored)
          << Sd.Name << " w=" << Workers;
      // Discovery depth is racy (a state may first be reached via a
      // non-minimal path), but can never undercut the BFS-minimal depth
      // of the deepest state.
      EXPECT_GE(Par.MaxDepthSeen, Seq.MaxDepthSeen)
          << Sd.Name << " w=" << Workers;
    }
  }
}

TEST(ParallelExplorer, DifferentialAgreesOnVerdictWithPlantedViolation) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    ExploreResult Seq = exploreExhaustive(M, cycleDone());
    ParallelExploreOptions PO;
    PO.Workers = 4;
    ExploreResult Par = exploreParallel(M, cycleDone(), PO);
    ASSERT_EQ(Seq.Bug.has_value(), Par.Bug.has_value()) << Sd.Name;
    if (Par.Bug) {
      EXPECT_EQ(Par.Bug->Name, Seq.Bug->Name) << Sd.Name;
      ASSERT_TRUE(Par.BadState.has_value()) << Sd.Name;
      EXPECT_GE(GcModel::collector(*Par.BadState).CycleCount, 1u) << Sd.Name;
    }
  }
}

TEST(ParallelExplorer, ViolationPathIsValid) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);

  ParallelExploreOptions PO;
  PO.Workers = 4;
  ExploreResult Res = exploreParallel(M, cycleDone(), PO);
  ASSERT_TRUE(Res.Bug.has_value());
  ASSERT_FALSE(Res.Path.empty());
  // Valid, not necessarily shortest: the labels must replay from the
  // initial state to a state the checker rejects.
  EXPECT_TRUE(pathReplays(M, Res.Path, cycleDone()));
  // And never shorter than the BFS-minimal counterexample.
  ExploreResult Seq = exploreExhaustive(M, cycleDone());
  EXPECT_GE(Res.Path.size(), Seq.Path.size());
}

TEST(ParallelExplorer, ViolationInInitialState) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  StateChecker Always = [](const GcSystemState &) {
    return std::optional<Violation>(Violation{"always", ""});
  };
  ExploreResult Res = exploreParallel(M, Always, ParallelExploreOptions{});
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_TRUE(Res.Path.empty());
  EXPECT_EQ(Res.StatesVisited, 1u);
}

TEST(ParallelExplorer, StateBudgetTruncates) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  ParallelExploreOptions PO;
  PO.Workers = 4;
  PO.MaxStates = 50;
  ExploreResult Res = exploreParallel(M, neverFails(), PO);
  EXPECT_TRUE(Res.Truncated);
  // The truncated prefix is racy; the count cap is not.
  EXPECT_LE(Res.StatesVisited, 50u);
  EXPECT_GE(Res.StatesVisited, 1u);
}

TEST(ParallelExplorer, CompactVisitedAgreesWithExact) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  ParallelExploreOptions Exact;
  Exact.Workers = 4;
  ParallelExploreOptions Compact = Exact;
  Compact.CompactVisited = true;
  Compact.TrackPaths = false; // scouting mode
  ExploreResult A = exploreParallel(M, neverFails(), Exact);
  ExploreResult B = exploreParallel(M, neverFails(), Compact);
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
  EXPECT_EQ(A.TransitionsExplored, B.TransitionsExplored);
}
