//===- tests/parallel_explorer_test.cpp - Parallel vs sequential ----------===//
///
/// The sequential explorer is the oracle: on every seed configuration the
/// parallel explorer must agree with it on StatesVisited, Transitions and
/// the bug/no-bug verdict (the reachable set is order-independent, so a
/// full exhaustion is deterministic regardless of worker count). Violation
/// paths are valid-but-not-necessarily-shortest; validity is checked by
/// replaying the labels against the model.
///
//===----------------------------------------------------------------------===//

#include "explore/ParallelExplorer.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

struct Seed {
  const char *Name;
  ModelConfig Cfg;
};

/// Small, fully-exhaustible seed configurations: every mutator-op subset
/// that keeps the space below ~100k states, over both initial heaps.
std::vector<Seed> seeds() {
  std::vector<Seed> Out;
  {
    // Handshakes only — the canonical tiny instance.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"handshakes-only", C});
  }
  {
    // Stores over a chain: deletion-barrier traffic, TSO buffer activity.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-only-chain", C});
  }
  {
    // Two mutators, handshakes only: ragged handshake interleavings.
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 1;
    C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
    C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"2mut-handshakes", C});
  }
  {
    // Deeper buffer: more pending-store interleavings.
    ModelConfig C;
    C.NumMutators = 1;
    C.NumRefs = 2;
    C.NumFields = 1;
    C.BufferBound = 2;
    C.InitialHeap = ModelConfig::InitHeap::Chain;
    C.MutatorLoad = C.MutatorAlloc = C.MutatorDiscard = false;
    Out.push_back({"stores-buf2", C});
  }
  return Out;
}

StateChecker neverFails() {
  return [](const GcSystemState &) { return std::optional<Violation>(); };
}

StateChecker cycleDone() {
  return [](const GcSystemState &S) -> std::optional<Violation> {
    if (GcModel::collector(S).CycleCount >= 1)
      return Violation{"planted", "cycle completed"};
    return std::nullopt;
  };
}

/// A label path is valid iff, following successors whose labels match it
/// step by step (a label can be shared by several nondeterministic
/// siblings, so a set of candidate states is tracked), at least one final
/// candidate exists — and for a violation path, violates the checker.
bool pathReplays(const GcModel &M, const std::vector<std::string> &Path,
                 const StateChecker &Violates) {
  std::vector<GcSystemState> Cands{M.initial()};
  for (const std::string &Label : Path) {
    std::vector<GcSystemState> Next;
    for (const GcSystemState &S : Cands)
      for (GcSuccessor &Succ : M.system().successors(S))
        if (Succ.Label == Label)
          Next.push_back(std::move(Succ.State));
    if (Next.empty())
      return false;
    Cands = std::move(Next);
  }
  for (const GcSystemState &S : Cands)
    if (Violates(S))
      return true;
  return false;
}

/// Choice-trace validation for long counterexamples (swarm dives can run
/// to thousands of steps, where pathReplays' candidate sets explode):
/// replay the recorded successor indices, require each step's label to
/// match the reported path, and the final state to violate the checker.
bool choicesReplayTo(const GcModel &M, const ExploreResult &Res,
                     const StateChecker &Violates) {
  if (Res.Path.size() != Res.Choices.size())
    return false;
  ReplayResult Rep = replayChoices(M, Res.Choices);
  if (!Rep.ok() || Rep.States.size() != Res.Choices.size() + 1)
    return false;
  for (size_t I = 0; I < Res.Choices.size(); ++I) {
    std::vector<GcSuccessor> Succs = M.system().successors(Rep.States[I]);
    if (Res.Choices[I] >= Succs.size() ||
        Succs[Res.Choices[I]].Label != Res.Path[I])
      return false;
  }
  return Violates(Rep.States.back()).has_value();
}

} // namespace

TEST(ParallelExplorer, DifferentialAgreesOnEverySeedConfiguration) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    ExploreResult Seq = exploreExhaustive(M, Inv);
    ASSERT_TRUE(Seq.exhaustedCleanly()) << Sd.Name;

    for (unsigned Workers : {1u, 4u}) {
      ParallelExploreOptions PO;
      PO.Workers = Workers;
      ExploreResult Par = exploreParallel(M, Inv, PO);
      EXPECT_TRUE(Par.exhaustedCleanly()) << Sd.Name << " w=" << Workers;
      EXPECT_EQ(Par.StatesVisited, Seq.StatesVisited)
          << Sd.Name << " w=" << Workers;
      EXPECT_EQ(Par.TransitionsExplored, Seq.TransitionsExplored)
          << Sd.Name << " w=" << Workers;
      // Discovery depth is racy (a state may first be reached via a
      // non-minimal path), but can never undercut the BFS-minimal depth
      // of the deepest state.
      EXPECT_GE(Par.MaxDepthSeen, Seq.MaxDepthSeen)
          << Sd.Name << " w=" << Workers;
    }
  }
}

TEST(ParallelExplorer, DifferentialAgreesOnVerdictWithPlantedViolation) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    ExploreResult Seq = exploreExhaustive(M, cycleDone());
    ParallelExploreOptions PO;
    PO.Workers = 4;
    ExploreResult Par = exploreParallel(M, cycleDone(), PO);
    ASSERT_EQ(Seq.Bug.has_value(), Par.Bug.has_value()) << Sd.Name;
    if (Par.Bug) {
      EXPECT_EQ(Par.Bug->Name, Seq.Bug->Name) << Sd.Name;
      ASSERT_TRUE(Par.BadState.has_value()) << Sd.Name;
      EXPECT_GE(GcModel::collector(*Par.BadState).CycleCount, 1u) << Sd.Name;
    }
  }
}

TEST(ParallelExplorer, ViolationPathIsValid) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);

  ParallelExploreOptions PO;
  PO.Workers = 4;
  ExploreResult Res = exploreParallel(M, cycleDone(), PO);
  ASSERT_TRUE(Res.Bug.has_value());
  ASSERT_FALSE(Res.Path.empty());
  // Valid, not necessarily shortest: the labels must replay from the
  // initial state to a state the checker rejects.
  EXPECT_TRUE(pathReplays(M, Res.Path, cycleDone()));
  // And never shorter than the BFS-minimal counterexample.
  ExploreResult Seq = exploreExhaustive(M, cycleDone());
  EXPECT_GE(Res.Path.size(), Seq.Path.size());
}

TEST(ParallelExplorer, ViolationInInitialState) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  StateChecker Always = [](const GcSystemState &) {
    return std::optional<Violation>(Violation{"always", ""});
  };
  ExploreResult Res = exploreParallel(M, Always, ParallelExploreOptions{});
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_TRUE(Res.Path.empty());
  EXPECT_EQ(Res.StatesVisited, 1u);
}

TEST(ParallelExplorer, StateBudgetTruncates) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  ParallelExploreOptions PO;
  PO.Workers = 4;
  PO.MaxStates = 50;
  ExploreResult Res = exploreParallel(M, neverFails(), PO);
  EXPECT_TRUE(Res.Truncated);
  // The truncated prefix is racy; the count cap is not.
  EXPECT_LE(Res.StatesVisited, 50u);
  EXPECT_GE(Res.StatesVisited, 1u);
}

TEST(ParallelExplorer, ReducedModesAgreeWithSequentialReducedOracle) {
  // Ample reduction and fingerprint keying are pure functions of the
  // state, so the reduced reachable set is order-independent too: the
  // reduced parallel run must agree exactly with the reduced sequential
  // run (and fingerprint runs with the unreduced count, collision-free at
  // this scale). Symmetry is checked separately below — its representative
  // choice is order-dependent.
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    for (bool Ample : {true, false}) {
      for (bool Fp64 : {false, true}) {
        if (!Ample && !Fp64)
          continue;
        ExploreOptions SeqO;
        SeqO.AmpleReduction = Ample;
        SeqO.Fingerprint64 = Fp64;
        ExploreResult Seq = exploreExhaustive(M, Inv, SeqO);
        ASSERT_TRUE(Seq.exhaustedCleanly()) << Sd.Name;

        ParallelExploreOptions PO;
        PO.Workers = 4;
        PO.AmpleReduction = Ample;
        PO.Fingerprint64 = Fp64;
        ExploreResult Par = exploreParallel(M, Inv, PO);
        EXPECT_TRUE(Par.exhaustedCleanly())
            << Sd.Name << " ample=" << Ample << " fp64=" << Fp64;
        EXPECT_EQ(Par.StatesVisited, Seq.StatesVisited)
            << Sd.Name << " ample=" << Ample << " fp64=" << Fp64;
        EXPECT_EQ(Par.TransitionsExplored, Seq.TransitionsExplored)
            << Sd.Name << " ample=" << Ample << " fp64=" << Fp64;
        EXPECT_EQ(Par.TransitionsPruned, Seq.TransitionsPruned)
            << Sd.Name << " ample=" << Ample << " fp64=" << Fp64;
        EXPECT_EQ(Par.ProbabilisticVerdict, Seq.ProbabilisticVerdict)
            << Sd.Name << " ample=" << Ample << " fp64=" << Fp64;
      }
    }
  }
}

TEST(ParallelExplorer, SymmetryReductionAgreesOnVerdict) {
  // The model is only virtually symmetric, so which orbit representative
  // gets expanded — and hence the canonical state count — can depend on
  // discovery order. Across worker counts only the verdict is comparable,
  // plus the guarantee that canonicalization never grows the space.
  ModelConfig C;
  C.NumMutators = 2;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  InvariantSuite Inv(M);
  ExploreResult Full = exploreExhaustive(M, Inv);
  ASSERT_TRUE(Full.exhaustedCleanly());
  for (unsigned Workers : {1u, 4u}) {
    ParallelExploreOptions PO;
    PO.Workers = Workers;
    PO.SymmetryReduction = true;
    ExploreResult Sym = exploreParallel(M, Inv, PO);
    EXPECT_TRUE(Sym.exhaustedCleanly()) << "w=" << Workers;
    EXPECT_LE(Sym.StatesVisited, Full.StatesVisited) << "w=" << Workers;
    EXPECT_TRUE(Sym.ProbabilisticVerdict) << "w=" << Workers;
  }
}

TEST(ParallelExplorer, SwarmAgreesOnVerdictAcrossSeeds) {
  for (const Seed &Sd : seeds()) {
    GcModel M(Sd.Cfg);
    InvariantSuite Inv(M);
    SwarmOptions SO;
    SO.Walkers = 4;
    SO.Seed = 9;
    SO.BloomBits = 1ull << 22;
    // Clean configurations stay clean under swarm exploration…
    ExploreResult Clean = exploreSwarm(M, Inv, SO);
    EXPECT_FALSE(Clean.Bug.has_value()) << Sd.Name;
    EXPECT_TRUE(Clean.ProbabilisticVerdict) << Sd.Name;
    // …and a reachable planted violation is found (the swarm drains the
    // whole space at this scale), with a replayable label path.
    ExploreResult Bug = exploreSwarm(M, cycleDone(), SO);
    ASSERT_TRUE(Bug.Bug.has_value()) << Sd.Name;
    EXPECT_TRUE(choicesReplayTo(M, Bug, cycleDone())) << Sd.Name;
  }
}

TEST(ParallelExplorer, CompactVisitedAgreesWithExact) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  GcModel M(C);
  ParallelExploreOptions Exact;
  Exact.Workers = 4;
  ParallelExploreOptions Compact = Exact;
  Compact.CompactVisited = true;
  Compact.TrackPaths = false; // scouting mode
  ExploreResult A = exploreParallel(M, neverFails(), Exact);
  ExploreResult B = exploreParallel(M, neverFails(), Compact);
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
  EXPECT_EQ(A.TransitionsExplored, B.TransitionsExplored);
}
