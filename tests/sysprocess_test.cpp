//===- tests/sysprocess_test.cpp - The system response function (Fig 9) ---===//
///
/// Direct unit tests of respondSys: enabling conditions (blocking on the
/// bus lock, full buffers, undrained fences) and the effects of every
/// request kind, without going through the composed system.

#include "gcmodel/SysProcess.h"

#include "gcmodel/MarkSeq.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

class SysProcessTest : public ::testing::Test {
protected:
  SysProcessTest() : S(cfg()) {}

  static ModelConfig cfg() {
    ModelConfig C;
    C.NumMutators = 2;
    C.NumRefs = 4;
    C.NumFields = 1;
    C.BufferBound = 2;
    return C;
  }

  using Result = std::vector<std::pair<GcLocal, GcResponse>>;

  Result respond(GcRequest Req) {
    Result Out;
    respondSys(cfg(), Req, S, Out);
    return Out;
  }

  GcRequest req(ProcId From, ReqKind K) {
    GcRequest Q;
    Q.From = From;
    Q.Kind = K;
    return Q;
  }

  SysLocal S;
};

} // namespace

TEST_F(SysProcessTest, ReadReturnsMemoryValue) {
  S.Mem.memoryWrite(MemLoc::globalVar(GVarPhase), MemVal::fromByte(2));
  GcRequest Q = req(1, ReqKind::Read);
  Q.Loc = MemLoc::globalVar(GVarPhase);
  auto Out = respond(Q);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].second.Val.asByte(), 2);
}

TEST_F(SysProcessTest, ReadBlockedByForeignLock) {
  S.Mem.acquireLock(2);
  GcRequest Q = req(1, ReqKind::Read);
  Q.Loc = MemLoc::globalVar(GVarFM);
  EXPECT_TRUE(respond(Q).empty());
  // The lock owner itself is not blocked.
  Q.From = 2;
  EXPECT_EQ(respond(Q).size(), 1u);
}

TEST_F(SysProcessTest, WriteBuffersAndBlocksWhenFull) {
  GcRequest Q = req(1, ReqKind::Write);
  Q.Loc = MemLoc::globalVar(GVarFM);
  Q.Val = MemVal::fromBool(true);
  auto Out = respond(Q);
  ASSERT_EQ(Out.size(), 1u);
  const SysLocal &Next = asSys(Out[0].first);
  EXPECT_EQ(Next.Mem.buffer(1).size(), 1u);
  EXPECT_FALSE(Next.Mem.memoryRead(MemLoc::globalVar(GVarFM)).asBool());
  // Fill the buffer (bound 2): third write is disabled.
  S = Next;
  S.Mem.write(1, Q.Loc, Q.Val);
  EXPECT_TRUE(respond(Q).empty());
}

TEST_F(SysProcessTest, MfenceRequiresDrainedBuffer) {
  EXPECT_EQ(respond(req(1, ReqKind::Mfence)).size(), 1u);
  S.Mem.write(1, MemLoc::globalVar(GVarFM), MemVal::fromBool(true));
  EXPECT_TRUE(respond(req(1, ReqKind::Mfence)).empty());
  S.Mem.commitOldest(1);
  EXPECT_EQ(respond(req(1, ReqKind::Mfence)).size(), 1u);
}

TEST_F(SysProcessTest, LockUnlockProtocol) {
  auto Out = respond(req(1, ReqKind::Lock));
  ASSERT_EQ(Out.size(), 1u);
  S = asSys(Out[0].first);
  EXPECT_TRUE(S.Mem.lockHeldBy(1));
  // Second lock blocked; foreign unlock blocked.
  EXPECT_TRUE(respond(req(2, ReqKind::Lock)).empty());
  EXPECT_TRUE(respond(req(2, ReqKind::Unlock)).empty());
  // Unlock with a pending write blocked until commit.
  S.Mem.write(1, MemLoc::globalVar(GVarFM), MemVal::fromBool(true));
  EXPECT_TRUE(respond(req(1, ReqKind::Unlock)).empty());
  S.Mem.commitOldest(1);
  auto Out2 = respond(req(1, ReqKind::Unlock));
  ASSERT_EQ(Out2.size(), 1u);
  EXPECT_EQ(asSys(Out2[0].first).Mem.lockOwner(), MemoryState::NoOwner);
}

TEST_F(SysProcessTest, AllocDeterministicPicksLowestSlot) {
  GcRequest Q = req(1, ReqKind::Alloc);
  Q.AllocFlag = true;
  auto Out = respond(Q);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].second.Val.asRef(), R(0));
  const Heap &H = asSys(Out[0].first).Mem.heap();
  EXPECT_TRUE(H.isValid(R(0)));
  EXPECT_TRUE(H.markFlag(R(0)));
}

TEST_F(SysProcessTest, AllocRespondsNullWhenFull) {
  for (unsigned I = 0; I < 4; ++I)
    S.Mem.heap().allocAt(R(I), false);
  auto Out = respond(req(1, ReqKind::Alloc));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0].second.Val.asRef().isNull());
}

TEST_F(SysProcessTest, AllocNondetEnumeratesFreeSlots) {
  ModelConfig C = cfg();
  C.AllocNondet = true;
  S.Mem.heap().allocAt(R(1), false);
  std::vector<std::pair<GcLocal, GcResponse>> Out;
  respondSys(C, req(1, ReqKind::Alloc), S, Out);
  ASSERT_EQ(Out.size(), 3u); // slots 0, 2, 3
}

TEST_F(SysProcessTest, FreeRemovesObject) {
  S.Mem.heap().allocAt(R(2), false);
  GcRequest Q = req(0, ReqKind::Free);
  Q.Loc = MemLoc::objFlag(R(2));
  auto Out = respond(Q);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FALSE(asSys(Out[0].first).Mem.heap().isValid(R(2)));
}

TEST_F(SysProcessTest, HeapSnapshotListsAllocated) {
  S.Mem.heap().allocAt(R(1), false);
  S.Mem.heap().allocAt(R(3), false);
  auto Out = respond(req(0, ReqKind::HeapSnapshot));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].second.Refs, (std::vector<Ref>{R(1), R(3)}));
}

TEST_F(SysProcessTest, HandshakeLifecycle) {
  // Initiate for mutator 1.
  GcRequest Init = req(0, ReqKind::HsInitiate);
  Init.Mut = 1;
  Init.Hs = HsType::GetRoots;
  Init.Round = HsRound::H5GetRoots;
  auto Out = respond(Init);
  ASSERT_EQ(Out.size(), 1u);
  S = asSys(Out[0].first);
  EXPECT_TRUE(S.HsPending[1]);
  EXPECT_EQ(S.CurRound, HsRound::H5GetRoots);

  // Poll-all reports outstanding work.
  auto Poll = respond(req(0, ReqKind::HsPollAll));
  EXPECT_FALSE(Poll[0].second.Flag);

  // The mutator's own poll sees its bit plus type and round.
  GcRequest Get = req(2, ReqKind::HsGetType);
  Get.Mut = 1;
  auto GetOut = respond(Get);
  EXPECT_TRUE(GetOut[0].second.Flag);
  EXPECT_EQ(GetOut[0].second.Hs, HsType::GetRoots);
  EXPECT_EQ(GetOut[0].second.Round, HsRound::H5GetRoots);

  // Completion transfers the work-list and clears the bit.
  GcRequest Done = req(2, ReqKind::HsComplete);
  Done.Mut = 1;
  Done.Refs = {R(0), R(2)};
  auto DoneOut = respond(Done);
  S = asSys(DoneOut[0].first);
  EXPECT_FALSE(S.HsPending[1]);
  EXPECT_EQ(S.SharedW, (std::set<Ref>{R(0), R(2)}));
  EXPECT_TRUE(respond(req(0, ReqKind::HsPollAll))[0].second.Flag);

  // TakeW drains the staging list.
  auto Take = respond(req(0, ReqKind::TakeW));
  EXPECT_EQ(Take[0].second.Refs, (std::vector<Ref>{R(0), R(2)}));
  EXPECT_TRUE(asSys(Take[0].first).SharedW.empty());
}

TEST_F(SysProcessTest, CommitStepMatchesBufferOrder) {
  // Through the composed program: the commit LocalOp offers one successor
  // per process with pending writes.
  GcProg Prog;
  buildSysProgram(Prog, cfg());
  S.Mem.write(0, MemLoc::globalVar(GVarFM), MemVal::fromBool(true));
  S.Mem.write(2, MemLoc::globalVar(GVarFA), MemVal::fromBool(true));
  // Find the commit command and run it.
  std::vector<cimp::PendingStep<GcDomain>> Heads;
  cimp::normalize(Prog, {Prog.entry()}, GcLocal(S), Heads);
  bool FoundCommit = false;
  for (const auto &H : Heads) {
    const auto &Cmd = Prog.cmd(H.Head);
    if (Cmd.Kind != cimp::CmdKind::LocalOp)
      continue;
    FoundCommit = true;
    std::vector<GcLocal> Succs;
    Cmd.Local(GcLocal(S), Succs);
    EXPECT_EQ(Succs.size(), 2u); // procs 0 and 2 have pending writes
  }
  EXPECT_TRUE(FoundCommit);
}
