//===- tests/runtime_collector_test.cpp - Deterministic collector cycles --===//
///
/// Single-threaded deterministic tests: the collector runs on this thread
/// and the HandshakeServicer hook services the mutators' safepoints while
/// the collector waits, giving fully reproducible cycles.

#include "runtime/GcRuntime.h"
#include "runtime/RtCollector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace tsogc::rt;

namespace {

class RtCollectorTest : public ::testing::Test {
protected:
  void init(RtConfig Cfg = {}) {
    Cfg.HeapObjects = 256;
    Cfg.NumFields = 2;
    Rt = std::make_unique<GcRuntime>(Cfg);
    M = Rt->registerMutator();
    Rt->HandshakeServicer = [this] { M->safepoint(); };
  }

  void TearDown() override {
    if (Rt && M) {
      while (M->numRoots() > 0)
        M->discard(0);
      Rt->deregisterMutator(M);
    }
  }

  std::unique_ptr<GcRuntime> Rt;
  MutatorContext *M = nullptr;
};

} // namespace

TEST_F(RtCollectorTest, EmptyHeapCycle) {
  init();
  CycleStats CS = Rt->collectOnce();
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  EXPECT_EQ(CS.ObjectsRetained, 0u);
  EXPECT_GE(CS.TerminationRounds, 1u);
  EXPECT_GE(CS.HandshakeRounds, 6u);
}

TEST_F(RtCollectorTest, RootedObjectsSurvive) {
  init();
  int A = M->alloc();
  int B = M->alloc();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  CycleStats CS = Rt->collectOnce();
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  EXPECT_EQ(CS.ObjectsRetained, 2u);
  // Access after collection validates the epoch: no unsafe free occurred.
  EXPECT_EQ(M->load(static_cast<size_t>(A), 0), -1);
}

TEST_F(RtCollectorTest, UnreachableObjectsAreFreedWithinTwoCycles) {
  init();
  int A = M->alloc();
  ASSERT_GE(A, 0);
  M->discard(static_cast<size_t>(A));
  EXPECT_EQ(Rt->heap().allocatedCount(), 1u);
  // §4: garbage is collected within two cycles of the outer loop.
  CycleStats C1 = Rt->collectOnce();
  CycleStats C2 = Rt->collectOnce();
  EXPECT_EQ(C1.ObjectsFreed + C2.ObjectsFreed, 1u);
  EXPECT_EQ(Rt->heap().allocatedCount(), 0u);
}

TEST_F(RtCollectorTest, ChainReachabilityThroughHeap) {
  init();
  // root -> a -> b -> c, only a rooted.
  int A = M->alloc();
  int B = M->alloc();
  int C = M->alloc();
  M->store(static_cast<size_t>(B), static_cast<size_t>(A), 0); // a.f0 = b
  M->store(static_cast<size_t>(C), static_cast<size_t>(B), 0); // b.f0 = c
  M->discard(static_cast<size_t>(C));
  M->discard(static_cast<size_t>(B)); // indices shift: discard by value order
  // After discards only the chain head remains rooted; all three objects
  // stay reachable through the heap.
  ASSERT_EQ(M->numRoots(), 1u);
  Rt->collectOnce();
  Rt->collectOnce();
  EXPECT_EQ(Rt->heap().allocatedCount(), 3u);
  // Walk the chain through validated loads.
  int B2 = M->load(0, 0);
  ASSERT_GE(B2, 0);
  int C2 = M->load(static_cast<size_t>(B2), 0);
  ASSERT_GE(C2, 0);
  while (M->numRoots() > 1)
    M->discard(M->numRoots() - 1);
}

TEST_F(RtCollectorTest, DroppedSubgraphIsReclaimed) {
  init();
  int A = M->alloc();
  int B = M->alloc();
  M->store(static_cast<size_t>(B), static_cast<size_t>(A), 0);
  // Drop the edge: a.f0 = a (self loop), b unreachable once unrooted.
  M->store(static_cast<size_t>(A), static_cast<size_t>(A), 0);
  M->discard(static_cast<size_t>(B));
  Rt->collectOnce();
  Rt->collectOnce();
  EXPECT_EQ(Rt->heap().allocatedCount(), 1u);
}

TEST_F(RtCollectorTest, CyclicGarbageIsReclaimed) {
  init();
  // Tracing collectors reclaim cycles (unlike reference counting).
  int A = M->alloc();
  int B = M->alloc();
  M->store(static_cast<size_t>(B), static_cast<size_t>(A), 0); // a -> b
  M->store(static_cast<size_t>(A), static_cast<size_t>(B), 0); // b -> a
  M->discard(1);
  M->discard(0);
  EXPECT_EQ(M->numRoots(), 0u);
  Rt->collectOnce();
  Rt->collectOnce();
  EXPECT_EQ(Rt->heap().allocatedCount(), 0u);
}

TEST_F(RtCollectorTest, AllocationRecoversAfterCollection) {
  RtConfig Cfg;
  init(Cfg);
  // Exhaust the heap with garbage.
  for (int I = 0; I < 256; ++I) {
    int R = M->alloc();
    ASSERT_GE(R, 0);
    M->discard(static_cast<size_t>(R));
  }
  EXPECT_EQ(M->alloc(), -1);
  Rt->collectOnce();
  Rt->collectOnce();
  int R = M->alloc();
  EXPECT_GE(R, 0);
  M->discard(static_cast<size_t>(R));
}

TEST_F(RtCollectorTest, MarkSenseFlipsEachCycle) {
  init();
  int A = M->alloc();
  (void)A;
  bool Fm0 = Rt->FM.load() != 0;
  Rt->collectOnce();
  bool Fm1 = Rt->FM.load() != 0;
  Rt->collectOnce();
  bool Fm2 = Rt->FM.load() != 0;
  EXPECT_NE(Fm0, Fm1);
  EXPECT_NE(Fm1, Fm2);
  // The surviving object is re-marked each cycle without ever resetting
  // flags in bulk (the Lamport sense-flip trick).
  EXPECT_EQ(Rt->heap().allocatedCount(), 1u);
}

TEST_F(RtCollectorTest, PhaseReturnsToIdle) {
  init();
  Rt->collectOnce();
  EXPECT_EQ(static_cast<RtPhase>(Rt->Phase.load()), RtPhase::Idle);
  EXPECT_EQ(static_cast<RtPhase>(Rt->Phase.load()), RtPhase::Idle);
}

TEST_F(RtCollectorTest, StatsAccumulate) {
  init();
  int A = M->alloc();
  (void)A;
  Rt->collectOnce();
  Rt->collectOnce();
  EXPECT_EQ(Rt->stats().Cycles.load(), 2u);
  EXPECT_GE(Rt->stats().TotalTerminationRounds.load(), 2u);
  EXPECT_GE(Rt->stats().TotalCycleNs.load(), 1u);
  EXPECT_EQ(Rt->cycleLog().size(), 2u);
}

TEST_F(RtCollectorTest, BarrierMarksCountedDuringMutation) {
  init();
  int A = M->alloc();
  int B = M->alloc();
  (void)A;
  (void)B;
  uint64_t Before = M->stats().BarrierMarks;
  // Mutate between cycles while phase is Idle: barriers off, no marks.
  M->store(1, 0, 0);
  EXPECT_EQ(M->stats().BarrierMarks, Before);
}

TEST(RtCollectorEdge, ManyMutatorsHandshake) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < 5; ++I)
    Ms.push_back(Rt.registerMutator());
  Rt.HandshakeServicer = [&Ms] {
    for (auto *M : Ms)
      M->safepoint();
  };
  for (auto *M : Ms) {
    int R = M->alloc();
    ASSERT_GE(R, 0);
  }
  CycleStats CS = Rt.collectOnce();
  EXPECT_EQ(CS.ObjectsRetained, 5u);
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  for (auto *M : Ms) {
    M->discard(0);
    Rt.deregisterMutator(M);
  }
}

TEST(RtCollectorEdge, DeregisteredMutatorsDoNotBlockCycles) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.deregisterMutator(M);
  // No active mutators: a cycle completes trivially.
  CycleStats CS = Rt.collectOnce();
  EXPECT_EQ(CS.ObjectsFreed, 0u);
}

// Regression: a park wait used to be charged to HandshakeNs as well as the
// park itself (double counting), which inflated the on-the-fly pause metric
// with stop-the-world park times. The park must land in ParkNs exactly once
// and never in HandshakeNs.
TEST(RtCollectorEdge, ParkWaitCountedOnceInParkNs) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  HsChannel &Ch = Rt.channelOf(M->index());

  // Act as the collector by hand: park the mutator, hold it for a known
  // interval, release it.
  const uint32_t ParkSeq = 1, ResumeSeq = 2;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Ch.Request.store(HsChannel::encode(ParkSeq, RtHsType::Park),
                   std::memory_order_release);
  std::thread T([M] { M->safepoint(); }); // blocks inside the park handler
  while (Ch.Acked.load(std::memory_order_acquire) != ParkSeq)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Ch.Request.store(HsChannel::encode(ResumeSeq, RtHsType::Noop),
                   std::memory_order_release);
  T.join();

  const MutStats &S = M->stats();
  EXPECT_EQ(S.Parks, 1u);
  EXPECT_GE(S.ParkNs, 20'000'000u) << "the ~30ms park must be in ParkNs";
  EXPECT_EQ(S.MaxParkNs, S.ParkNs);
  // Two handler activations (park ack + resume), each microseconds: the
  // park wait itself must not leak into the handshake pause metric.
  EXPECT_LT(S.HandshakeNs, 20'000'000u);
  EXPECT_LT(S.MaxHandshakeNs, 20'000'000u);
  EXPECT_EQ(S.maxPauseNs(), S.MaxParkNs);
  Rt.deregisterMutator(M);
}

// Regression: taking the shared work-list used to walk the collector's
// entire private list to find its tail — O(n²) over a cycle. The tracked
// tail makes every splice O(1); SpliceWalkSteps pins that contract.
TEST(RtCollectorEdge, SharedWorkSpliceIsConstantTime) {
  RtConfig Cfg;
  Cfg.HeapObjects = 256;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  std::vector<MutatorContext *> Ms;
  for (int I = 0; I < 3; ++I)
    Ms.push_back(Rt.registerMutator());
  Rt.HandshakeServicer = [&Ms] {
    for (auto *M : Ms)
      M->safepoint();
  };
  // Each mutator roots the head of a 10-object list (built by prepending),
  // so get-roots publishes three multi-object grey chains for the
  // collector to splice while marking.
  for (auto *M : Ms) {
    int Head = M->alloc();
    ASSERT_GE(Head, 0);
    for (int I = 0; I < 9; ++I) {
      int Node = M->alloc();
      ASSERT_GE(Node, 1);
      // node.f0 = head; the new node becomes the only root.
      M->store(0, static_cast<size_t>(Node), 0);
      M->discard(0);
    }
    ASSERT_EQ(M->numRoots(), 1u);
  }
  CycleStats CS = Rt.collectOnce();
  EXPECT_EQ(CS.ObjectsRetained, 30u);
  EXPECT_EQ(CS.ObjectsFreed, 0u);
  EXPECT_GE(CS.SharedChainsTaken, 1u);
  EXPECT_EQ(CS.SpliceWalkSteps, 0u)
      << "splice must use the tracked tail, not a list walk";
  for (auto *M : Ms) {
    while (M->numRoots() > 0)
      M->discard(0);
    Rt.deregisterMutator(M);
  }
}

// Regression: a mutator whose deletion barrier greyed objects and which
// then deregistered mid-Mark used to abandon its private work-list. The
// greyed object itself survives (greying marks it), but it is never
// scanned, so everything reachable only through it is swept while still
// reachable — a lost grey, and a dangling field. Deregistration must
// publish the residual work-list before the slot goes inactive.
TEST(RtCollectorEdge, DeregisterMidMarkPublishesResidualGreys) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  Cfg.NumFields = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M1 = Rt.registerMutator();
  MutatorContext *M2 = Rt.registerMutator();

  // Build X -> A -> B on M2, then hand the whole structure to M1 via X.
  int Xi = M2->alloc();
  int Ai = M2->alloc();
  int Bi = M2->alloc();
  ASSERT_GE(Xi, 0);
  ASSERT_GE(Ai, 0);
  ASSERT_GE(Bi, 0);
  M2->store(static_cast<size_t>(Ai), static_cast<size_t>(Xi), 0); // X.f0 = A
  M2->store(static_cast<size_t>(Bi), static_cast<size_t>(Ai), 0); // A.f0 = B
  const RtRef Xref = M2->rootRef(static_cast<size_t>(Xi));
  const RtRef Aref = M2->rootRef(static_cast<size_t>(Ai));
  const RtRef Bref = M2->rootRef(static_cast<size_t>(Bi));
  while (M2->numRoots() > 0)
    M2->discard(0);
  ASSERT_GE(M1->adoptRoot(Xref), 0); // M1 now holds the only root.

  // With the default (non-merged) config the get-roots round is the 5th
  // handshake each mutator sees. Right after M2 acknowledges it — roots
  // already collected, marking under way — M2 overwrites X.f0, whose
  // deletion barrier greys A onto M2's *private* work-list, and leaves.
  // M1 keeps A reachable (it loaded it out of band before the overwrite).
  bool Deed = false;
  Rt.HandshakeServicer = [&] {
    M1->safepoint();
    if (!Deed)
      M2->safepoint();
    if (!Deed && M2->stats().HandshakesSeen == 5) {
      Deed = true;
      int X2 = M2->adoptRoot(Xref);
      ASSERT_GE(X2, 0);
      M2->store(static_cast<size_t>(X2), static_cast<size_t>(X2),
                0); // X.f0 = X; barrier greys A
      M2->discard(static_cast<size_t>(X2));
      Rt.deregisterMutator(M2);
      ASSERT_GE(M1->adoptRoot(Aref), 0);
    }
  };
  Rt.collectOnce();
  ASSERT_TRUE(Deed);

  // A was greyed (hence marked, hence retained) but, pre-fix, never
  // scanned: B was swept while reachable through A.f0.
  EXPECT_TRUE(Rt.heap().isAllocated(Bref))
      << "lost grey: deregistering mutator's work-list was dropped";
  EXPECT_EQ(Rt.heap().allocatedCount(), 3u);

  // Independent whole-heap verification (parks M1 from a helper thread
  // while this thread services the park).
  Rt.HandshakeServicer = nullptr;
  GcRuntime::HeapAudit Audit;
  std::atomic<bool> Done{false};
  std::thread Auditor([&] {
    Audit = Rt.auditHeap();
    Done.store(true);
  });
  while (!Done.load())
    M1->safepoint();
  Auditor.join();
  EXPECT_EQ(Audit.DanglingFields, 0u);
  EXPECT_EQ(Audit.DanglingRoots, 0u);
  EXPECT_EQ(Audit.Reachable, 3u);

  while (M1->numRoots() > 0)
    M1->discard(0);
  Rt.deregisterMutator(M1);
}

// Regression: a slot deregistered and re-registered while a handshake
// round was in flight used to stall the round forever — the new occupant
// starts from the current request and never acknowledges the in-flight
// sequence. The collector now snapshots the slot generation and stops
// waiting once it changes.
TEST(RtCollectorEdge, ReRegisteredSlotDoesNotStallHandshakeRound) {
  RtConfig Cfg;
  Cfg.HeapObjects = 64;
  GcRuntime Rt(Cfg);
  MutatorContext *M1 = Rt.registerMutator();
  MutatorContext *M2 = Rt.registerMutator();
  const unsigned ChurnedIndex = M2->index();
  MutatorContext *M3 = nullptr;
  bool Churned = false;
  Rt.HandshakeServicer = [&] {
    M1->safepoint();
    if (!Churned) {
      // Mid-round churn: M2 leaves and a new mutator takes its slot. M2
      // never acknowledged the in-flight request, and M3 never will.
      Churned = true;
      Rt.deregisterMutator(M2);
      M3 = Rt.registerMutator();
    }
    if (M3)
      M3->safepoint();
  };
  int A = M1->alloc();
  ASSERT_GE(A, 0);
  // Before the generation check this spun forever inside the first round.
  CycleStats CS = Rt.collectOnce();
  EXPECT_GE(CS.HandshakeRounds, 6u);
  EXPECT_EQ(CS.ObjectsRetained, 1u);
  ASSERT_NE(M3, nullptr);
  EXPECT_EQ(M3->index(), ChurnedIndex) << "slot (and index) must be reused";
  M1->discard(0);
  Rt.deregisterMutator(M1);
  Rt.deregisterMutator(M3);
}
