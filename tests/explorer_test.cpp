//===- tests/explorer_test.cpp - Explorer machinery tests -----------------===//

#include "explore/Explorer.h"
#include "explore/Guided.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

ModelConfig tinyCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  // Narrow the mutator to handshakes only: a small, fully-exhaustible space.
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  return C;
}

StateChecker neverFails() {
  return [](const GcSystemState &) { return std::optional<Violation>(); };
}

/// A planted "violation": trips once the collector completed a cycle.
StateChecker cycleDone() {
  return [](const GcSystemState &S) -> std::optional<Violation> {
    if (GcModel::collector(S).CycleCount >= 1)
      return Violation{"planted", "cycle completed"};
    return std::nullopt;
  };
}

} // namespace

TEST(Explorer, ExhaustiveIsDeterministic) {
  GcModel M(tinyCfg());
  ExploreResult A = exploreExhaustive(M, neverFails());
  ExploreResult B = exploreExhaustive(M, neverFails());
  EXPECT_TRUE(A.exhaustedCleanly());
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
  EXPECT_EQ(A.TransitionsExplored, B.TransitionsExplored);
  EXPECT_EQ(A.MaxDepthSeen, B.MaxDepthSeen);
  EXPECT_GT(A.StatesVisited, 100u);
}

TEST(Explorer, DfsVisitsSameStateSet) {
  GcModel M(tinyCfg());
  ExploreOptions Dfs;
  Dfs.Dfs = true;
  ExploreResult A = exploreExhaustive(M, neverFails());
  ExploreResult B = exploreExhaustive(M, neverFails(), Dfs);
  EXPECT_TRUE(B.exhaustedCleanly());
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
}

TEST(Explorer, StateLimitTruncates) {
  GcModel M(tinyCfg());
  ExploreOptions Opts;
  Opts.MaxStates = 10;
  ExploreResult Res = exploreExhaustive(M, neverFails(), Opts);
  EXPECT_TRUE(Res.Truncated);
  EXPECT_EQ(Res.StatesVisited, 10u);
}

TEST(Explorer, DepthLimitTruncates) {
  GcModel M(tinyCfg());
  ExploreOptions Opts;
  Opts.MaxDepth = 3;
  ExploreResult Res = exploreExhaustive(M, neverFails(), Opts);
  EXPECT_TRUE(Res.Truncated);
  EXPECT_LE(Res.MaxDepthSeen, 3u);
}

TEST(Explorer, BfsFindsViolationWithPath) {
  GcModel M(tinyCfg());
  ExploreResult Res = exploreExhaustive(M, cycleDone());
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_EQ(Res.Bug->Name, "planted");
  ASSERT_TRUE(Res.BadState.has_value());
  EXPECT_GE(GcModel::collector(*Res.BadState).CycleCount, 1u);
  // BFS path length equals the state's depth and is minimal; replaying the
  // labels is possible in principle — here check shape only.
  EXPECT_FALSE(Res.Path.empty());
  EXPECT_EQ(Res.Path.size(), Res.MaxDepthSeen);
}

TEST(Explorer, BfsPathNoLongerThanDfsPath) {
  GcModel M(tinyCfg());
  ExploreOptions Dfs;
  Dfs.Dfs = true;
  ExploreResult B = exploreExhaustive(M, cycleDone());
  ExploreResult D = exploreExhaustive(M, cycleDone(), Dfs);
  ASSERT_TRUE(B.Bug && D.Bug);
  EXPECT_LE(B.Path.size(), D.Path.size());
}

TEST(Explorer, ViolationInInitialState) {
  GcModel M(tinyCfg());
  StateChecker Always = [](const GcSystemState &) {
    return std::optional<Violation>(Violation{"always", ""});
  };
  ExploreResult Res = exploreExhaustive(M, Always);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_TRUE(Res.Path.empty());
  EXPECT_EQ(Res.StatesVisited, 1u);
}

TEST(Explorer, CompactVisitedMatchesExact) {
  // Hash compaction must visit exactly the same state set on instances
  // far below the collision regime.
  GcModel M(tinyCfg());
  ExploreOptions Compact;
  Compact.CompactVisited = true;
  ExploreResult Exact = exploreExhaustive(M, neverFails());
  ExploreResult Hashed = exploreExhaustive(M, neverFails(), Compact);
  EXPECT_TRUE(Hashed.exhaustedCleanly());
  EXPECT_EQ(Exact.StatesVisited, Hashed.StatesVisited);
  EXPECT_EQ(Exact.TransitionsExplored, Hashed.TransitionsExplored);
}

TEST(Explorer, RandomWalkDeterministicPerSeed) {
  GcModel M(tinyCfg());
  WalkOptions Opts;
  Opts.Steps = 2000;
  Opts.Seed = 7;
  WalkResult A = exploreRandomWalk(M, neverFails(), Opts);
  WalkResult B = exploreRandomWalk(M, neverFails(), Opts);
  EXPECT_EQ(A.StepsTaken, B.StepsTaken);
  EXPECT_EQ(A.TailPath, B.TailPath);
  EXPECT_FALSE(A.Bug.has_value());
  EXPECT_EQ(A.Deadlocks, 0u);
}

TEST(Explorer, RandomWalkFindsPlantedViolation) {
  GcModel M(tinyCfg());
  WalkOptions Opts;
  Opts.Steps = 200'000;
  Opts.Seed = 3;
  WalkResult Res = exploreRandomWalk(M, cycleDone(), Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_FALSE(Res.TailPath.empty());
}

TEST(Explorer, GuidedTakeRespectsPredicates) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  // The first collector step exists…
  EXPECT_TRUE(D.take("p0:H1-idle:fence-initiate"));
  // …but a nonsense label does not.
  EXPECT_FALSE(D.take("no-such-label"));
}

TEST(Explorer, GuidedAdvanceBoundedFailure) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  // An unreachable goal under a filter that allows nothing.
  EXPECT_FALSE(D.advance([](const std::string &) { return false; },
                         [](const GcSystemState &S) {
                           return GcModel::collector(S).CycleCount > 0;
                         },
                         1000));
}

TEST(Explorer, GuidedAdvanceReachesCycle) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  EXPECT_TRUE(D.advance([](const std::string &) { return true; },
                        [](const GcSystemState &S) {
                          return GcModel::collector(S).CycleCount >= 1;
                        },
                        500'000));
}
