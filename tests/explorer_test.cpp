//===- tests/explorer_test.cpp - Explorer machinery tests -----------------===//

#include "explore/Explorer.h"
#include "explore/Guided.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace tsogc;

namespace {

ModelConfig tinyCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 2;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  // Narrow the mutator to handshakes only: a small, fully-exhaustible space.
  C.MutatorLoad = C.MutatorStore = C.MutatorAlloc = C.MutatorDiscard = false;
  return C;
}

StateChecker neverFails() {
  return [](const GcSystemState &) { return std::optional<Violation>(); };
}

/// A planted "violation": trips once the collector completed a cycle.
StateChecker cycleDone() {
  return [](const GcSystemState &S) -> std::optional<Violation> {
    if (GcModel::collector(S).CycleCount >= 1)
      return Violation{"planted", "cycle completed"};
    return std::nullopt;
  };
}

/// Synthetic one-process states for driving the exploration cores directly:
/// the state's identity is a number carried in the control stack. Used to
/// exercise behaviours the GC model never exhibits (deadlocks, violations
/// exactly at the state budget boundary).
GcSystemState synthState(uint32_t N) {
  cimp::ProcState<GcDomain> PS;
  PS.Stack = {N};
  PS.Local = CollectorLocal{};
  return {PS};
}

uint32_t synthId(const GcSystemState &S) {
  return S[0].Stack.empty() ? ~0u : S[0].Stack[0];
}

GcSuccessor synthSucc(uint32_t From, uint32_t To) {
  GcSuccessor Succ;
  Succ.Label = "s" + std::to_string(From) + "->" + std::to_string(To);
  Succ.State = synthState(To);
  return Succ;
}

std::string synthEncode(const GcSystemState &S) {
  return std::to_string(synthId(S));
}

} // namespace

TEST(Explorer, ExhaustiveIsDeterministic) {
  GcModel M(tinyCfg());
  ExploreResult A = exploreExhaustive(M, neverFails());
  ExploreResult B = exploreExhaustive(M, neverFails());
  EXPECT_TRUE(A.exhaustedCleanly());
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
  EXPECT_EQ(A.TransitionsExplored, B.TransitionsExplored);
  EXPECT_EQ(A.MaxDepthSeen, B.MaxDepthSeen);
  EXPECT_GT(A.StatesVisited, 100u);
}

TEST(Explorer, DfsVisitsSameStateSet) {
  GcModel M(tinyCfg());
  ExploreOptions Dfs;
  Dfs.Dfs = true;
  ExploreResult A = exploreExhaustive(M, neverFails());
  ExploreResult B = exploreExhaustive(M, neverFails(), Dfs);
  EXPECT_TRUE(B.exhaustedCleanly());
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
}

TEST(Explorer, StateLimitTruncates) {
  GcModel M(tinyCfg());
  ExploreOptions Opts;
  Opts.MaxStates = 10;
  ExploreResult Res = exploreExhaustive(M, neverFails(), Opts);
  EXPECT_TRUE(Res.Truncated);
  EXPECT_EQ(Res.StatesVisited, 10u);
}

TEST(Explorer, DepthLimitTruncates) {
  GcModel M(tinyCfg());
  ExploreOptions Opts;
  Opts.MaxDepth = 3;
  ExploreResult Res = exploreExhaustive(M, neverFails(), Opts);
  EXPECT_TRUE(Res.Truncated);
  EXPECT_LE(Res.MaxDepthSeen, 3u);
}

TEST(Explorer, BfsFindsViolationWithPath) {
  GcModel M(tinyCfg());
  ExploreResult Res = exploreExhaustive(M, cycleDone());
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_EQ(Res.Bug->Name, "planted");
  ASSERT_TRUE(Res.BadState.has_value());
  EXPECT_GE(GcModel::collector(*Res.BadState).CycleCount, 1u);
  // BFS path length equals the state's depth and is minimal; replaying the
  // labels is possible in principle — here check shape only.
  EXPECT_FALSE(Res.Path.empty());
  EXPECT_EQ(Res.Path.size(), Res.MaxDepthSeen);
}

TEST(Explorer, BfsPathNoLongerThanDfsPath) {
  GcModel M(tinyCfg());
  ExploreOptions Dfs;
  Dfs.Dfs = true;
  ExploreResult B = exploreExhaustive(M, cycleDone());
  ExploreResult D = exploreExhaustive(M, cycleDone(), Dfs);
  ASSERT_TRUE(B.Bug && D.Bug);
  EXPECT_LE(B.Path.size(), D.Path.size());
}

TEST(Explorer, ViolationInInitialState) {
  GcModel M(tinyCfg());
  StateChecker Always = [](const GcSystemState &) {
    return std::optional<Violation>(Violation{"always", ""});
  };
  ExploreResult Res = exploreExhaustive(M, Always);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_TRUE(Res.Path.empty());
  EXPECT_EQ(Res.StatesVisited, 1u);
}

TEST(Explorer, CompactVisitedMatchesExact) {
  // Hash compaction must visit exactly the same state set on instances
  // far below the collision regime.
  GcModel M(tinyCfg());
  ExploreOptions Compact;
  Compact.CompactVisited = true;
  ExploreResult Exact = exploreExhaustive(M, neverFails());
  ExploreResult Hashed = exploreExhaustive(M, neverFails(), Compact);
  EXPECT_TRUE(Hashed.exhaustedCleanly());
  EXPECT_EQ(Exact.StatesVisited, Hashed.StatesVisited);
  EXPECT_EQ(Exact.TransitionsExplored, Hashed.TransitionsExplored);
}

TEST(Explorer, OptionMatrixAgreesOnStateCount) {
  // All 8 combinations of Dfs × TrackPaths × CompactVisited must visit the
  // identical state set, and Truncated must be set exactly when a limit
  // actually bit.
  GcModel M(tinyCfg());
  ExploreResult Base = exploreExhaustive(M, neverFails());
  ASSERT_TRUE(Base.exhaustedCleanly());
  for (bool Dfs : {false, true})
    for (bool Track : {false, true})
      for (bool Compact : {false, true}) {
        ExploreOptions O;
        O.Dfs = Dfs;
        O.TrackPaths = Track;
        O.CompactVisited = Compact;
        std::string Tag = std::string("dfs=") + (Dfs ? "1" : "0") +
                          " track=" + (Track ? "1" : "0") +
                          " compact=" + (Compact ? "1" : "0");
        ExploreResult R = exploreExhaustive(M, neverFails(), O);
        EXPECT_EQ(R.StatesVisited, Base.StatesVisited) << Tag;
        EXPECT_EQ(R.TransitionsExplored, Base.TransitionsExplored) << Tag;
        EXPECT_FALSE(R.Truncated) << Tag; // no limit configured

        ExploreOptions Tight = O;
        Tight.MaxStates = Base.StatesVisited / 2;
        EXPECT_TRUE(exploreExhaustive(M, neverFails(), Tight).Truncated)
            << Tag;

        ExploreOptions Loose = O;
        Loose.MaxStates = Base.StatesVisited + 1000;
        EXPECT_FALSE(exploreExhaustive(M, neverFails(), Loose).Truncated)
            << Tag;
      }
}

TEST(Explorer, ViolationAtStateBudgetBoundaryIsStillReported) {
  // Regression: exploreExhaustive used to return the moment MaxStates was
  // reached, discarding already-generated sibling successors unchecked — a
  // violation one transition past the budget boundary was silently missed.
  // Synthetic space: 0 -> {1, 2}, where 2 violates. MaxStates=2 is
  // exhausted by {0, 1}; the final sibling 2 must still be checked.
  auto Init = [] { return synthState(0); };
  auto Succs = [](const GcSystemState &S, std::vector<GcSuccessor> &Out) {
    if (synthId(S) == 0) {
      Out.push_back(synthSucc(0, 1));
      Out.push_back(synthSucc(0, 2));
    }
  };
  StateChecker BadTwo = [](const GcSystemState &S) -> std::optional<Violation> {
    if (synthId(S) == 2)
      return Violation{"boundary", "one past the budget"};
    return std::nullopt;
  };
  ExploreOptions Opts;
  Opts.MaxStates = 2;
  ExploreResult Res =
      detail::exhaustiveImpl(Init, Succs, synthEncode, BadTwo, Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_EQ(Res.Bug->Name, "boundary");
  EXPECT_TRUE(Res.Truncated);
  EXPECT_EQ(Res.StatesVisited, Opts.MaxStates);
  ASSERT_EQ(Res.Path.size(), 1u);
  EXPECT_EQ(Res.Path[0], "s0->2");
}

TEST(Explorer, RandomWalkDeterministicPerSeed) {
  GcModel M(tinyCfg());
  WalkOptions Opts;
  Opts.Steps = 2000;
  Opts.Seed = 7;
  WalkResult A = exploreRandomWalk(M, neverFails(), Opts);
  WalkResult B = exploreRandomWalk(M, neverFails(), Opts);
  EXPECT_EQ(A.StepsTaken, B.StepsTaken);
  EXPECT_EQ(A.TailPath, B.TailPath);
  EXPECT_FALSE(A.Bug.has_value());
  EXPECT_EQ(A.Deadlocks, 0u);
}

TEST(Explorer, RandomWalkFindsPlantedViolation) {
  GcModel M(tinyCfg());
  WalkOptions Opts;
  Opts.Steps = 200'000;
  Opts.Seed = 3;
  WalkResult Res = exploreRandomWalk(M, cycleDone(), Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_FALSE(Res.TailPath.empty());
}

TEST(Explorer, RandomWalkTailClearedOnDeadlockRestart) {
  // Regression: the walk used to carry its trace tail across deadlock
  // restarts, so TailPath could splice labels from before the restart onto
  // labels after it — a trace that replays to nothing from the initial
  // state. Synthetic chain 0 -> 1 -> 2 -> (deadlock); the checker trips on
  // the second visit to state 1, i.e. right after the restart.
  auto Init = [] { return synthState(0); };
  auto Succs = [](const GcSystemState &S, std::vector<GcSuccessor> &Out) {
    uint32_t N = synthId(S);
    if (N < 2)
      Out.push_back(synthSucc(N, N + 1));
    // state 2: no successors — deadlock.
  };
  auto SeenOne = std::make_shared<int>(0);
  StateChecker SecondVisitToOne =
      [SeenOne](const GcSystemState &S) -> std::optional<Violation> {
    if (synthId(S) == 1 && ++*SeenOne >= 2)
      return Violation{"post-restart", "second visit to state 1"};
    return std::nullopt;
  };
  WalkOptions Opts;
  Opts.Steps = 100;
  WalkResult Res = detail::randomWalkImpl(Init, Succs, SecondVisitToOne, Opts);
  ASSERT_TRUE(Res.Bug.has_value());
  EXPECT_EQ(Res.Deadlocks, 1u);
  // Only the post-restart label survives; the buggy behaviour reported
  // {"s0->1", "s1->2", "s0->1"}.
  ASSERT_EQ(Res.TailPath.size(), 1u);
  EXPECT_EQ(Res.TailPath[0], "s0->1");
}

TEST(Explorer, GuidedTakeRespectsPredicates) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  // The first collector step exists…
  EXPECT_TRUE(D.take("p0:H1-idle:fence-initiate"));
  // …but a nonsense label does not.
  EXPECT_FALSE(D.take("no-such-label"));
}

TEST(Explorer, GuidedAdvanceBoundedFailure) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  // An unreachable goal under a filter that allows nothing.
  EXPECT_FALSE(D.advance([](const std::string &) { return false; },
                         [](const GcSystemState &S) {
                           return GcModel::collector(S).CycleCount > 0;
                         },
                         1000));
}

TEST(Explorer, GuidedAdvanceReachesCycle) {
  GcModel M(tinyCfg());
  GuidedDriver D(M);
  EXPECT_TRUE(D.advance([](const std::string &) { return true; },
                        [](const GcSystemState &S) {
                          return GcModel::collector(S).CycleCount >= 1;
                        },
                        500'000));
}
