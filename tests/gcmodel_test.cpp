//===- tests/gcmodel_test.cpp - Model assembly and state plumbing ---------===//

#include "explore/Explorer.h"
#include "gcmodel/GcModel.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

ModelConfig cfg(ModelConfig::InitHeap H = ModelConfig::InitHeap::Chain) {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 1;
  C.InitialHeap = H;
  return C;
}

} // namespace

TEST(GcModelInit, ChainHeap) {
  GcModel M(cfg());
  GcSystemState S = M.initial();
  const Heap &H = M.sysState(S).Mem.heap();
  EXPECT_EQ(H.numAllocated(), 2u);
  EXPECT_EQ(H.field(R(0), 0), R(1));
  EXPECT_EQ(M.mutator(S, 0).Roots, std::set<Ref>{R(0)});
  // Everything black: flag == fM == fA == false.
  EXPECT_FALSE(H.markFlag(R(0)));
  EXPECT_FALSE(H.markFlag(R(1)));
}

TEST(GcModelInit, EmptyHeap) {
  GcModel M(cfg(ModelConfig::InitHeap::Empty));
  GcSystemState S = M.initial();
  EXPECT_EQ(M.sysState(S).Mem.heap().numAllocated(), 0u);
  EXPECT_TRUE(M.mutator(S, 0).Roots.empty());
}

TEST(GcModelInit, SharedPairHeap) {
  GcModel M(cfg(ModelConfig::InitHeap::SharedPair));
  GcSystemState S = M.initial();
  EXPECT_EQ(M.sysState(S).Mem.heap().numAllocated(), 2u);
  EXPECT_EQ(M.mutator(S, 0).Roots.size(), 2u);
}

TEST(GcModelInit, ViewsStartSynchronized) {
  GcModel M(cfg());
  GcSystemState S = M.initial();
  const CollectorLocal &C = GcModel::collector(S);
  const MutatorLocal &Mu = M.mutator(S, 0);
  EXPECT_EQ(C.Phase, GcPhase::Idle);
  EXPECT_EQ(Mu.PhaseLocal, GcPhase::Idle);
  EXPECT_EQ(Mu.FMLocal, C.FM);
  EXPECT_EQ(Mu.FALocal, C.FA);
  EXPECT_EQ(Mu.CompletedRound, HsRound::None);
  EXPECT_EQ(M.sysState(S).CurRound, HsRound::None);
}

TEST(GcModelInit, MultipleMutatorsShareRoots) {
  ModelConfig C = cfg();
  C.NumMutators = 3;
  GcModel M(C);
  GcSystemState S = M.initial();
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(M.mutator(S, I).Roots, std::set<Ref>{R(0)});
}

TEST(GcModelState, EncodeIsDeterministic) {
  GcModel M(cfg());
  EXPECT_EQ(M.encode(M.initial()), M.encode(M.initial()));
}

TEST(GcModelState, EncodeSeparatesDistinctStates) {
  GcModel M(cfg());
  GcSystemState S = M.initial();
  auto Succs = M.system().successors(S);
  ASSERT_FALSE(Succs.empty());
  for (const auto &Succ : Succs)
    EXPECT_NE(M.encode(Succ.State), M.encode(S)) << Succ.Label;
}

TEST(GcModelState, ProcNames) {
  GcModel M(cfg());
  EXPECT_EQ(M.procName(0), "gc");
  EXPECT_EQ(M.procName(1), "mut0");
  EXPECT_EQ(M.procName(2), "sys");
}

TEST(GcModelState, InitialSuccessorsSaneLabels) {
  GcModel M(cfg());
  auto Succs = M.system().successors(M.initial());
  ASSERT_FALSE(Succs.empty());
  // The collector's first step is the H1 store fence; the mutator can act.
  bool SawCollector = false, SawMutator = false;
  for (const auto &S : Succs) {
    if (S.Label.find("p0:H1-idle:fence-initiate") != std::string::npos)
      SawCollector = true;
    if (S.Label.find("p1:mut:") != std::string::npos)
      SawMutator = true;
  }
  EXPECT_TRUE(SawCollector);
  EXPECT_TRUE(SawMutator);
}

TEST(GcModelState, ReplayIsDeterministic) {
  GcModel M(cfg());
  // Record a valid choice sequence by walking, then replay it twice.
  std::vector<uint32_t> Choices;
  GcSystemState S = M.initial();
  for (int I = 0; I < 12; ++I) {
    auto Succs = M.system().successors(S);
    ASSERT_FALSE(Succs.empty());
    uint32_t Pick = static_cast<uint32_t>(I % Succs.size());
    Choices.push_back(Pick);
    S = Succs[Pick].State;
  }
  ReplayResult A = replayChoices(M, Choices);
  ReplayResult B = replayChoices(M, Choices);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  ASSERT_EQ(A.States.size(), 13u);
  for (size_t I = 0; I < A.States.size(); ++I)
    EXPECT_EQ(M.encode(A.States[I]), M.encode(B.States[I]));
  EXPECT_EQ(M.encode(A.States.back()), M.encode(S));
}

TEST(GcModelState, ReplayReportsOutOfRangeChoice) {
  // A bad trace must come back as a diagnosable error naming the failing
  // step, not an abort, and the valid prefix must be preserved.
  GcModel M(cfg());
  std::vector<uint32_t> Choices{0, 9999};
  ReplayResult R = replayChoices(M, Choices);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->find("step 1"), std::string::npos);
  EXPECT_NE(R.Error->find("9999"), std::string::npos);
  EXPECT_EQ(R.States.size(), 2u); // initial state + the one valid step
}

TEST(GcModelState, NoDeadlockNearInitialState) {
  // Every state within a few steps of the initial state has successors
  // (the composed system never wedges).
  GcModel M(cfg());
  std::vector<GcSystemState> Layer{M.initial()};
  for (int Depth = 0; Depth < 4; ++Depth) {
    std::vector<GcSystemState> Next;
    for (const auto &S : Layer) {
      auto Succs = M.system().successors(S);
      EXPECT_FALSE(Succs.empty());
      for (auto &Succ : Succs)
        Next.push_back(std::move(Succ.State));
    }
    Layer = std::move(Next);
  }
}

TEST(GcModelState, AllocNondetFansOut) {
  ModelConfig C = cfg(ModelConfig::InitHeap::Empty);
  C.AllocNondet = true;
  C.MutatorLoad = C.MutatorStore = C.MutatorDiscard = false;
  GcModel M(C);
  // The only mutator ops are handshake poll and alloc; find the alloc
  // successors: one per free slot.
  auto Succs = M.system().successors(M.initial());
  unsigned AllocBranches = 0;
  for (const auto &S : Succs)
    if (S.Label.find("mut:alloc") != std::string::npos)
      ++AllocBranches;
  EXPECT_EQ(AllocBranches, 3u);
}

TEST(GcModelState, DeterministicAllocSingleBranch) {
  ModelConfig C = cfg(ModelConfig::InitHeap::Empty);
  C.MutatorLoad = C.MutatorStore = C.MutatorDiscard = false;
  GcModel M(C);
  auto Succs = M.system().successors(M.initial());
  unsigned AllocBranches = 0;
  for (const auto &S : Succs)
    if (S.Label.find("mut:alloc") != std::string::npos)
      ++AllocBranches;
  EXPECT_EQ(AllocBranches, 1u);
}
