//===- tests/collector_model_test.cpp - Figure 2 line-comment claims ------===//
///
/// Drives the collector model through full cycles and checks the per-line
/// claims of Figure 2: heap colors at the phase boundaries, mark-loop
/// termination (Grey = ∅ at sweep), floating garbage lifetime, and sweep
/// correctness.

#include "explore/Guided.h"
#include "invariants/GcPredicates.h"
#include "invariants/InvariantSuite.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0)
    return true;
  if (L.find("sys-dequeue-write-buffer") != std::string::npos)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

ModelConfig chainCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  return C;
}

} // namespace

TEST(CollectorModel, HeapTurnsWhiteAfterFlip) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.sysState(S).CurRound == HsRound::H2FlipFM;
  }));
  ColorView CV = colorView(M, D.state());
  EXPECT_TRUE(CV.isWhite(R(0)));
  EXPECT_TRUE(CV.isWhite(R(1)));
}

TEST(CollectorModel, NoGreysAtSweep) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).Phase == GcPhase::Sweep;
  }));
  EXPECT_TRUE(greyRefs(M, D.state()).empty());
  // reachable_snapshot_inv has collapsed to "reachable ⊆ Black".
  ColorView CV = colorView(M, D.state());
  const Heap &H = M.sysState(D.state()).Mem.heap();
  for (Ref Reached : H.reachableFrom(mutatorRoots(M, D.state())))
    EXPECT_TRUE(CV.isBlack(Reached));
}

TEST(CollectorModel, ReachableChainSurvivesEveryCycle) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  for (uint32_t Cycle = 1; Cycle <= 3; ++Cycle) {
    ASSERT_TRUE(D.advance(neutral, [Cycle](const GcSystemState &S) {
      return GcModel::collector(S).CycleCount >= Cycle;
    }));
    const Heap &H = M.sysState(D.state()).Mem.heap();
    EXPECT_TRUE(H.isValid(R(0)));
    EXPECT_TRUE(H.isValid(R(1)));
  }
}

TEST(CollectorModel, GarbageBeforeBarriersFreedInFirstCycle) {
  // Delete the r0 -> r1 edge while the collector is idle (barriers off,
  // nothing marked): r1 is garbage and the first cycle frees it.
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  auto WithOps = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(WithOps, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull();
  }));
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  const Heap &H = M.sysState(D.state()).Mem.heap();
  EXPECT_TRUE(H.isValid(R(0)));
  EXPECT_FALSE(H.isValid(R(1))) << "unreachable r1 must be reclaimed";
}

TEST(CollectorModel, FloatingGarbageSurvivesExactlyOneExtraCycle) {
  // Delete the edge after root marking: the deletion barrier greys r1, so
  // it floats through cycle 1 and is reclaimed by cycle 2 (§2 "Timeliness",
  // §4 "garbage is collected within two cycles").
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H5GetRoots;
  }));
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  auto WithOps = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(WithOps, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull();
  }));
  // Cycle 1 completes: r1 was greyed by the deletion barrier, so it is
  // retained (floating garbage).
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(1)))
      << "snapshot retention: r1 floats through the cycle of the deletion";
  // Cycle 2 reclaims it.
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 2;
  }));
  EXPECT_FALSE(M.sysState(D.state()).Mem.heap().isValid(R(1)))
      << "floating garbage must not survive a second cycle";
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(0)));
}

TEST(CollectorModel, AllocDuringMarkIsBlackAndSurvives) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == HsRound::H5GetRoots;
  }));
  ASSERT_TRUE(D.take("p1:mut:alloc"));
  // Allocated black (fA == fM in the mutator's view after H4).
  ColorView CV = colorView(M, D.state());
  EXPECT_TRUE(CV.isBlack(R(2)));
  // Drop it immediately: although unreachable, it is black and floats.
  ASSERT_TRUE(D.take("p1:mut:discard", [](const GcSystemState &S) {
    return asMutator(S[1].Local).Roots.count(R(2)) == 0;
  }));
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  EXPECT_TRUE(M.sysState(D.state()).Mem.heap().isValid(R(2)));
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 2;
  }));
  EXPECT_FALSE(M.sysState(D.state()).Mem.heap().isValid(R(2)));
}

TEST(CollectorModel, InvariantSuiteHoldsAlongDrivenCycle) {
  // Sample the full suite along one driven cycle (cheap spot check; the
  // exhaustive tests cover every state).
  GcModel M(chainCfg());
  InvariantSuite Inv(M);
  GuidedDriver D(M);
  for (HsRound Round :
       {HsRound::H1Idle, HsRound::H2FlipFM, HsRound::H3PhaseInit,
        HsRound::H4PhaseMark, HsRound::H5GetRoots}) {
    ASSERT_TRUE(D.advance(neutral, [&M, Round](const GcSystemState &S) {
      return M.mutator(S, 0).CompletedRound == Round;
    }));
    auto V = Inv.check(D.state());
    EXPECT_FALSE(V.has_value())
        << "at " << hsRoundName(Round) << ": " << V->Name << " " << V->Detail;
  }
}

TEST(CollectorModel, AtLabelTracksControlLocations) {
  GcModel M(chainCfg());
  GcSystemState S = M.initial();
  // At the cycle top the collector is at the H1 initiation fence.
  EXPECT_TRUE(M.atLabel(S, 0, "H1-idle:fence-initiate"));
  EXPECT_FALSE(M.atLabel(S, 0, "sweep:free"));
  // The mutator's Choice exposes several locations at once.
  auto Labels = M.nextLabels(S, 1);
  EXPECT_GT(Labels.size(), 2u);
  bool SawPoll = false;
  for (const auto &L : Labels)
    SawPoll |= L == "mut:hs-poll";
  EXPECT_TRUE(SawPoll);
}

TEST(CollectorModel, FreePreconditionAtExactLocation) {
  // Make garbage (delete the edge while idle), then drive the collector to
  // the free instruction itself and check the Fig 2 line 42 assertion
  // machinery: clean on the real state, violated if the doomed object were
  // still rooted.
  GcModel M(chainCfg());
  InvariantSuite Inv(M);
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  auto WithOps = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(WithOps, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull();
  }));
  // Advance until the collector is at sweep:free with r1 as the target.
  ASSERT_TRUE(D.advance(neutral, [&M](const GcSystemState &S) {
    if (!M.atLabel(S, 0, "sweep:free"))
      return false;
    return GcModel::collector(S).SweepRefs.back() == R(1);
  }));
  EXPECT_FALSE(Inv.checkFreePrecondition(D.state()).has_value());
  // Corrupt: root the doomed object; the at-ℓ assertion must trip.
  GcSystemState Bad = D.state();
  asMutator(Bad[1].Local).Roots.insert(R(1));
  auto V = Inv.checkFreePrecondition(Bad);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "free-precondition");
}

TEST(CollectorModel, EmptyHeapCycleCompletes) {
  ModelConfig C = chainCfg();
  C.InitialHeap = ModelConfig::InitHeap::Empty;
  C.MutatorAlloc = false;
  GcModel M(C);
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().numAllocated(), 0u);
}
