//===- tests/runtime_heap_test.cpp - RtHeap unit tests --------------------===//

#include "runtime/RtHeap.h"

#include <gtest/gtest.h>

#include <thread>

using namespace tsogc::rt;

namespace {

RtConfig smallCfg() {
  RtConfig C;
  C.HeapObjects = 64;
  C.NumFields = 2;
  return C;
}

} // namespace

TEST(RtHeapTest, AllocInitializesObject) {
  RtHeap H(smallCfg());
  RtRef R = H.alloc(true);
  ASSERT_NE(R, RtNull);
  EXPECT_TRUE(H.isAllocated(R));
  EXPECT_TRUE(H.markFlag(R));
  EXPECT_EQ(H.field(R, 0), RtNull);
  EXPECT_EQ(H.field(R, 1), RtNull);
  EXPECT_EQ(H.allocatedCount(), 1u);
}

TEST(RtHeapTest, ExhaustionReturnsNull) {
  RtConfig C = smallCfg();
  C.HeapObjects = 4;
  RtHeap H(C);
  for (int I = 0; I < 4; ++I)
    EXPECT_NE(H.alloc(false), RtNull);
  EXPECT_EQ(H.alloc(false), RtNull);
}

TEST(RtHeapTest, FreeBumpsEpochAndRecycles) {
  RtConfig C = smallCfg();
  C.HeapObjects = 1;
  RtHeap H(C);
  RtRef R = H.alloc(false);
  uint32_t E0 = H.epoch(R);
  H.free(R);
  EXPECT_FALSE(H.isAllocated(R));
  EXPECT_EQ(H.epoch(R), E0 + 1);
  RtRef R2 = H.alloc(false);
  EXPECT_EQ(R2, R); // only one slot
  EXPECT_EQ(H.epoch(R2), E0 + 1);
}

TEST(RtHeapTest, FieldsResetOnRealloc) {
  RtConfig C = smallCfg();
  C.HeapObjects = 2;
  RtHeap H(C);
  RtRef A = H.alloc(false);
  RtRef B = H.alloc(false);
  H.setField(A, 0, B);
  H.free(A);
  RtRef A2 = H.alloc(false);
  EXPECT_EQ(A2, A);
  EXPECT_EQ(H.field(A2, 0), RtNull);
}

TEST(RtHeapTest, MarkFastPathWhenAlreadyMarked) {
  RtHeap H(smallCfg());
  // fm = true; object allocated already-marked: no CAS, no win.
  RtRef R = H.alloc(true);
  uint64_t Cas = 0;
  EXPECT_FALSE(H.mark(R, /*FmLocal=*/true, true, &Cas));
  EXPECT_EQ(Cas, 0u);
}

TEST(RtHeapTest, MarkWinsOnceOnly) {
  RtHeap H(smallCfg());
  RtRef R = H.alloc(false); // white relative to fm=true
  uint64_t Cas = 0;
  EXPECT_TRUE(H.mark(R, true, true, &Cas));
  EXPECT_EQ(Cas, 1u);
  EXPECT_TRUE(H.markFlag(R));
  // Second marker loses on the fast path.
  EXPECT_FALSE(H.mark(R, true, true, &Cas));
  EXPECT_EQ(Cas, 1u);
}

TEST(RtHeapTest, MarkDisabledWhenIdle) {
  RtHeap H(smallCfg());
  RtRef R = H.alloc(false);
  EXPECT_FALSE(H.mark(R, true, /*BarriersActive=*/false));
  EXPECT_FALSE(H.markFlag(R));
}

TEST(RtHeapTest, MarkOfNullIsNoop) {
  RtHeap H(smallCfg());
  EXPECT_FALSE(H.mark(RtNull, true, true));
}

TEST(RtHeapTest, ConcurrentMarkersExactlyOneWinner) {
  // The Figure 5 race: many threads mark the same object; exactly one wins.
  RtConfig C = smallCfg();
  RtHeap H(C);
  for (int Round = 0; Round < 20; ++Round) {
    RtRef R = H.alloc(false);
    std::atomic<int> Winners{0};
    std::atomic<bool> Go{false};
    std::vector<std::thread> Ts;
    for (int T = 0; T < 4; ++T)
      Ts.emplace_back([&] {
        while (!Go.load())
          std::this_thread::yield();
        if (H.mark(R, true, true))
          Winners.fetch_add(1);
      });
    Go.store(true);
    for (auto &T : Ts)
      T.join();
    EXPECT_EQ(Winners.load(), 1) << "round " << Round;
    EXPECT_TRUE(H.markFlag(R));
    H.free(R);
  }
}

TEST(RtHeapTest, SpliceAndTakeSharedChain) {
  RtHeap H(smallCfg());
  RtRef A = H.alloc(false), B = H.alloc(false), C2 = H.alloc(false);
  // Chain A -> B.
  H.setWorkNext(A, B);
  H.setWorkNext(B, RtNull);
  H.spliceShared(A, B);
  // Splice a second chain (just C2).
  H.setWorkNext(C2, RtNull);
  H.spliceShared(C2, C2);
  RtRef Got = H.takeShared();
  // C2 spliced last, so it heads the list: C2 -> A -> B.
  EXPECT_EQ(Got, C2);
  EXPECT_EQ(H.workNext(Got), A);
  EXPECT_EQ(H.workNext(A), B);
  EXPECT_EQ(H.workNext(B), RtNull);
  // The shared list is now empty.
  EXPECT_EQ(H.takeShared(), RtNull);
}

TEST(RtHeapTest, ConcurrentSplices) {
  RtConfig C = smallCfg();
  C.HeapObjects = 4096;
  RtHeap H(C);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&H] {
      for (int I = 0; I < 256; ++I) {
        RtRef R = H.alloc(false);
        ASSERT_NE(R, RtNull);
        H.setWorkNext(R, RtNull);
        H.spliceShared(R, R);
      }
    });
  for (auto &T : Ts)
    T.join();
  // Every spliced node is on the shared chain exactly once.
  unsigned Count = 0;
  for (RtRef R = H.takeShared(); R != RtNull; R = H.workNext(R))
    ++Count;
  EXPECT_EQ(Count, 4u * 256u);
}
