//===- tests/observatory_test.cpp - Live §3.2 invariant checking ----------===//
///
/// Three layers under test:
///
///   1. invariants/RtAdapter.h over crafted snapshots — each runtime check
///      fires on exactly the state its model counterpart forbids, and
///      checkSnapshot applies the boundary gating table.
///   2. The InvariantObservatory wired into real collection cycles — clean
///      on the verified configuration, and catching the deletion-barrier
///      ablation deterministically under the HandshakeServicer schedule.
///   3. The metrics / trace surface: invariant.* counters, gc.snapshots*,
///      SnapshotBegin/End and InvariantViolation events.

#include "invariants/Describe.h"
#include "invariants/RtAdapter.h"
#include "observe/Export.h"
#include "runtime/GcRuntime.h"
#include "runtime/InvariantObservatory.h"
#include "runtime/RtObserve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

using namespace tsogc;
using namespace tsogc::rt;
namespace ob = tsogc::observe;

namespace {

/// A blank quiescent snapshot: Cap empty slots, one mutator, one shared
/// stripe, everything null.
ob::RtSnapshot makeSnap(ob::RtHsBoundary B, uint32_t Cap = 8,
                        uint32_t Fields = 2) {
  ob::RtSnapshot S;
  S.Boundary = B;
  S.Capacity = Cap;
  S.NumFields = Fields;
  S.Allocated.assign(Cap, 0);
  S.Marks.assign(Cap, 0);
  S.Fields.assign(static_cast<size_t>(Cap) * Fields, ob::RtSnapNull);
  S.Mutators.emplace_back();
  S.SharedStripes.resize(1);
  return S;
}

void put(ob::RtSnapshot &S, uint32_t R, bool Marked) {
  S.Allocated[R] = 1;
  S.Marks[R] = Marked ? 1 : 0;
}

void link(ob::RtSnapshot &S, uint32_t R, uint32_t F, uint32_t To) {
  S.Fields[R * S.NumFields + F] = To;
}

std::optional<Violation> check(const ob::RtSnapshot &S) {
  return checkSnapshot(liftSnapshot(S));
}

} // namespace

//===----------------------------------------------------------------------===//
// Layer 1: the adapter checks over crafted snapshots.
//===----------------------------------------------------------------------===//

TEST(RtAdapter, DanglingRootIsTheHeadlineViolation) {
  auto S = makeSnap(ob::RtHsBoundary::Audit);
  put(S, 0, false);
  S.Mutators[0].Roots = {0, 5}; // r5 was never allocated
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "safety-headline");
  EXPECT_NE(V->Detail.find("r5"), std::string::npos);
}

TEST(RtAdapter, DanglingFieldIsValidRefs) {
  auto S = makeSnap(ob::RtHsBoundary::Audit);
  put(S, 0, false);
  link(S, 0, 1, 6); // r0.f1 -> freed r6
  S.Mutators[0].Roots = {0};
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "valid-refs");
}

TEST(RtAdapter, DanglingWorklistEntryIsValidRefs) {
  auto S = makeSnap(ob::RtHsBoundary::Audit);
  S.SharedStripes[0] = {3}; // r3 has no object
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "valid-refs");
}

TEST(RtAdapter, UnmarkedWorklistEntryFailsValidWOnceMarkingStarted) {
  auto S = makeSnap(ob::RtHsBoundary::H5GetRoots);
  S.FM = true;
  S.Phase = 2;
  put(S, 0, false); // allocated but carries the stale sense
  S.Mutators[0].Worklist = {0};
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "valid-W");

  // The same list is legal at an Idle-phase audit: stale-sense residue is
  // only policed while a cycle is marking.
  S.Boundary = ob::RtHsBoundary::Audit;
  S.Phase = 0;
  EXPECT_FALSE(check(S).has_value());
}

TEST(RtAdapter, DuplicateAcrossWorklistsFailsValidW) {
  auto S = makeSnap(ob::RtHsBoundary::H5GetRoots);
  S.FM = true;
  S.Phase = 2;
  put(S, 0, true);
  S.Mutators[0].Worklist = {0};
  S.SharedStripes[0] = {0}; // torn chain: r0 on two lists
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "valid-W");
  EXPECT_NE(V->Detail.find("W_m0"), std::string::npos);
}

TEST(RtAdapter, MarkedObjectDuringH2IsNoBlackWindow) {
  auto S = makeSnap(ob::RtHsBoundary::H2FlipFM);
  S.FM = true; // flip done: heap must be uniformly white
  put(S, 1, true);
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "no-black-window");
}

TEST(RtAdapter, BlackObjectDuringH3IsNoBlackWindow) {
  auto S = makeSnap(ob::RtHsBoundary::H3PhaseInit);
  S.FM = true;
  S.Phase = 1;
  put(S, 1, true); // marked, on no worklist: black
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "no-black-window");

  // Marked AND grey is fine during Init: grey is what barriers produce.
  S.Mutators[0].Worklist = {1};
  EXPECT_FALSE(check(S).has_value());
}

TEST(RtAdapter, BlackToWhiteEdgeFailsStrongTricolor) {
  auto S = makeSnap(ob::RtHsBoundary::H4PhaseMark);
  S.FM = true;
  S.Phase = 2;
  put(S, 0, true);  // black
  put(S, 1, false); // white
  link(S, 0, 0, 1);
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "strong-tricolor");
}

TEST(RtAdapter, ElisionDowngradesToWeakTricolorWithGreyProtection) {
  auto S = makeSnap(ob::RtHsBoundary::H4PhaseMark);
  S.FM = true;
  S.Phase = 2;
  S.InsertionElide = true;
  put(S, 0, true);  // black
  put(S, 1, false); // white, referenced by black r0
  link(S, 0, 0, 1);
  // Unprotected: the weak invariant fails too.
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "weak-tricolor");
  // Grey r2 reaching r1 through white chains protects it (Figure 1).
  put(S, 2, true);
  link(S, 2, 0, 1);
  S.SharedStripes[0] = {2};
  EXPECT_FALSE(check(S).has_value());
}

TEST(RtAdapter, RootedWhiteAfterGetRootsFailsReachableSnapshot) {
  auto S = makeSnap(ob::RtHsBoundary::H5GetRoots);
  S.FM = true;
  S.Phase = 2;
  put(S, 1, false); // white, held only as a root — the hidden object
  S.Mutators[0].Roots = {1};
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "reachable-snapshot");
}

TEST(RtAdapter, GreyResidueAtSweepFailsSweepNoGrey) {
  auto S = makeSnap(ob::RtHsBoundary::SweepBegin);
  S.FM = true;
  S.Phase = 3;
  put(S, 2, true);
  S.SharedStripes[0] = {2};
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "sweep-no-grey");
}

TEST(RtAdapter, ReachableWhiteAtSweepFailsFreePrecondition) {
  auto S = makeSnap(ob::RtHsBoundary::SweepBegin);
  S.FM = true;
  S.Phase = 3;
  put(S, 0, true);
  put(S, 1, false);
  link(S, 0, 0, 1);
  S.Mutators[0].Roots = {0};
  auto V = check(S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Name, "free-precondition");
}

TEST(RtAdapter, NonUniformIdleHeapFailsIdleUniform) {
  for (ob::RtHsBoundary B :
       {ob::RtHsBoundary::H1Idle, ob::RtHsBoundary::CycleEnd}) {
    auto S = makeSnap(B);
    S.FA = true; // allocation color says marked...
    put(S, 0, false); // ...but r0 is not
    auto V = check(S);
    ASSERT_TRUE(V.has_value()) << ob::rtHsBoundaryName(B);
    EXPECT_EQ(V->Name, "idle-uniform");
  }
}

TEST(RtAdapter, AuditBoundaryIsStructuralOnly) {
  // A rooted white object mid-sweep is a color-protocol statement, not a
  // structural one; an audit snapshot may land in any phase and must not
  // second-guess it.
  auto S = makeSnap(ob::RtHsBoundary::Audit);
  S.FM = true;
  S.Phase = 3;
  put(S, 1, false);
  S.Mutators[0].Roots = {1};
  EXPECT_FALSE(check(S).has_value());
}

TEST(RtAdapter, AuditCountsAgreeWithTheCraftedGraph) {
  auto S = makeSnap(ob::RtHsBoundary::Audit);
  S.FM = true;
  S.Phase = 2;
  put(S, 0, true);
  put(S, 1, false);
  put(S, 2, false); // unreachable
  put(S, 3, true);  // grey, marked
  put(S, 4, false); // grey, NOT marked
  link(S, 0, 0, 1);
  link(S, 1, 1, 6); // dangling field
  S.Mutators[0].Roots = {0, 7}; // r7 dangling root
  S.Mutators[0].Worklist = {3, 4};
  RtAuditCounts C = rtAudit(liftSnapshot(S));
  EXPECT_EQ(C.Reachable, 2u);
  EXPECT_EQ(C.Unreachable, 3u); // r2, r3, r4
  EXPECT_EQ(C.DanglingRoots, 1u);
  EXPECT_EQ(C.DanglingFields, 1u);
  EXPECT_EQ(C.WorklistEntries, 2u);
  EXPECT_EQ(C.DanglingWorklist, 0u);
  EXPECT_EQ(C.UnmarkedWorklist, 1u);
}

TEST(RtAdapter, DescribeSnapshotRendersTheState) {
  auto S = makeSnap(ob::RtHsBoundary::H5GetRoots);
  S.FM = true;
  S.Phase = 2;
  put(S, 0, true);
  put(S, 1, false);
  link(S, 0, 0, 1);
  S.Mutators[0].Roots = {0};
  S.SharedStripes[0] = {0};
  std::string D = describeSnapshot(S, /*FocusRef=*/1);
  EXPECT_NE(D.find("h5-get-roots"), std::string::npos);
  EXPECT_NE(D.find("phase=Mark"), std::string::npos);
  EXPECT_NE(D.find("mut0"), std::string::npos);
  EXPECT_NE(D.find("r1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Layer 2: the observatory on real cycles.
//===----------------------------------------------------------------------===//

namespace {

RtConfig observatoryConfig() {
  RtConfig Cfg;
  Cfg.HeapObjects = 256;
  Cfg.NumFields = 2;
  Cfg.Observatory = true;
  Cfg.Trace = true;
  return Cfg;
}

uint64_t countEvents(const ob::TraceSink &Sink, ob::EventKind K) {
  uint64_t N = 0;
  for (const ob::TraceBuffer *B : Sink.buffers())
    for (const ob::TraceEvent &E : B->snapshot())
      if (E.Kind == K)
        ++N;
  return N;
}

} // namespace

TEST(Observatory, StockCyclesAreCleanAndMeasured) {
  GcRuntime Rt(observatoryConfig());
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [&] { M->safepoint(); };

  int X = M->alloc();
  int Y = M->alloc();
  M->store(Y, static_cast<size_t>(X), 0);
  M->discard(static_cast<size_t>(Y));
  for (int I = 0; I < 3; ++I)
    Rt.collectOnce();

  InvariantObservatory *Obs = Rt.observatory();
  ASSERT_NE(Obs, nullptr);
  EXPECT_EQ(Obs->violationCount(), 0u);
  EXPECT_GT(Obs->snapshotCount(), 0u);
  EXPECT_EQ(Obs->checked(), Obs->snapshotCount());
  EXPECT_GT(Obs->snapshotNsTotal(), 0u);
  EXPECT_GE(Obs->maxSnapshotNs(), 1u);

  // The per-cycle and total stats carry the same accounting.
  EXPECT_EQ(Rt.stats().TotalSnapshots.load(), Obs->snapshotCount());
  EXPECT_EQ(Rt.stats().TotalInvariantViolations.load(), 0u);
  uint64_t FromLog = 0;
  for (const CycleStats &CS : Rt.cycleLog()) {
    EXPECT_GT(CS.Snapshots, 0u);
    EXPECT_GT(CS.SnapshotNs, 0u);
    FromLog += CS.Snapshots;
  }
  EXPECT_EQ(FromLog, Obs->snapshotCount());

  // Metrics surface: invariant.* plus the runtime totals.
  ob::MetricsRegistry Reg;
  Obs->exportMetrics(Reg);
  exportMetrics(Rt.stats(), Reg, "gc.");
  std::set<std::string> Names;
  for (const ob::Metric &Mt : Reg.snapshot())
    Names.insert(Mt.Name);
  EXPECT_TRUE(Names.count("invariant.checked"));
  EXPECT_TRUE(Names.count("invariant.snapshots"));
  EXPECT_TRUE(Names.count("invariant.violations"));
  EXPECT_TRUE(Names.count("invariant.snapshot_ns_total"));
  EXPECT_TRUE(Names.count("gc.snapshots_total"));
  EXPECT_TRUE(Names.count("gc.invariant_violations_total"));

  // Trace surface: paired begin/end events, no violations, valid Chrome
  // export mentioning the snapshot slices.
  ASSERT_NE(Rt.traceSink(), nullptr);
  EXPECT_EQ(countEvents(*Rt.traceSink(), ob::EventKind::SnapshotBegin),
            Obs->snapshotCount());
  EXPECT_EQ(countEvents(*Rt.traceSink(), ob::EventKind::SnapshotEnd),
            Obs->snapshotCount());
  EXPECT_EQ(countEvents(*Rt.traceSink(), ob::EventKind::InvariantViolation),
            0u);
  std::string Chrome = ob::traceToChromeJson(*Rt.traceSink());
  EXPECT_TRUE(ob::validateJson(Chrome));
  EXPECT_NE(Chrome.find("snapshot"), std::string::npos);

  while (M->numRoots())
    M->discard(0);
  Rt.HandshakeServicer = nullptr;
  Rt.deregisterMutator(M);
}

namespace {

/// Drive one cycle under the deterministic single-threaded schedule in
/// which the mutator hides an object right after its roots are collected:
/// load B.f0 (no barrier), overwrite B.f0. With the deletion barrier the
/// overwrite greys the old value; without it the object survives only in
/// the already-scanned root set. Returns the hidden object's ref.
RtRef runHidingSchedule(GcRuntime &Rt, MutatorContext *M) {
  int B = M->alloc();
  int W = M->alloc();
  M->store(static_cast<size_t>(W), static_cast<size_t>(B), 0);
  RtRef WRef = M->rootRef(static_cast<size_t>(W));
  M->discard(static_cast<size_t>(W));

  bool Raced = false;
  Rt.HandshakeServicer = [&] {
    const uint64_t Before = M->stats().RootsMarked;
    M->safepoint();
    if (!Raced && M->stats().RootsMarked != Before) {
      int Ri = M->load(static_cast<size_t>(B), 0);
      int Xi = M->alloc();
      M->store(static_cast<size_t>(Xi), static_cast<size_t>(B), 0);
      M->discard(static_cast<size_t>(Xi));
      (void)Ri; // held across the cycle; discarded in teardown
      Raced = true;
    }
  };
  Rt.collectOnce();
  EXPECT_TRUE(Raced);
  Rt.HandshakeServicer = nullptr;
  while (M->numRoots())
    M->discard(0);
  return WRef;
}

} // namespace

TEST(Observatory, CatchesTheDeletionBarrierAblation) {
  RtConfig Cfg = observatoryConfig();
  Cfg.DeletionBarrier = false; // the ablation under test
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  RtRef WRef = runHidingSchedule(Rt, M);

  InvariantObservatory *Obs = Rt.observatory();
  auto Violations = Obs->violations();
  ASSERT_FALSE(Violations.empty());

  // The detection sequence the model explorer predicts, by name.
  EXPECT_EQ(Violations.front().Name, "reachable-snapshot");
  EXPECT_EQ(Violations.front().Boundary, ob::RtHsBoundary::H5GetRoots);
  EXPECT_EQ(Violations.front().OffendingRef, WRef);
  EXPECT_NE(Violations.front().Dump.find("snapshot @"), std::string::npos);
  std::set<std::string> Names;
  for (const auto &V : Violations)
    Names.insert(V.Name);
  EXPECT_TRUE(Names.count("free-precondition"));
  EXPECT_TRUE(Names.count("safety-headline"));

  // The violation also reached the trace ring and the stats.
  EXPECT_EQ(countEvents(*Rt.traceSink(), ob::EventKind::InvariantViolation),
            Obs->violationCount());
  EXPECT_EQ(Rt.stats().TotalInvariantViolations.load(),
            Obs->violationCount());

  Rt.deregisterMutator(M);
}

TEST(Observatory, SameScheduleWithBarrierIsClean) {
  GcRuntime Rt(observatoryConfig()); // DeletionBarrier stays on
  MutatorContext *M = Rt.registerMutator();
  runHidingSchedule(Rt, M);
  EXPECT_EQ(Rt.observatory()->violationCount(), 0u);
  Rt.deregisterMutator(M);
}

// Regression pin for the TLAB allocation-color contract: the allocation
// color is re-read from the local fA view at every bump. A TLAB claimed
// while the collector was idle (pre-flip) must NOT keep minting that
// stale color once the mark phase's handshakes have refreshed the view —
// a batch-snapshotted color would allocate white during Mark, and the
// sweep would free rooted objects (free-precondition / safety-headline,
// then an epoch abort on first access).
TEST(Observatory, TlabFilledWhileIdleAllocatesCurrentColorDuringMark) {
  RtConfig Cfg = observatoryConfig();
  Cfg.LocalAllocPool = 16;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();

  // Fill the TLAB while the collector is idle: the refill reserves a run
  // under the pre-cycle allocation color.
  int Seed = M->alloc();
  ASSERT_GE(Seed, 0);

  std::vector<size_t> DuringMark;
  bool Raced = false;
  Rt.HandshakeServicer = [&] {
    const uint64_t Before = M->stats().RootsMarked;
    M->safepoint();
    if (!Raced && M->stats().RootsMarked != Before) {
      // Roots just handed over: the cycle is marking and this thread's
      // view (fM, fA, phase) is refreshed. Bump straight through the
      // pre-flip TLAB — every allocation must take the CURRENT color.
      for (int I = 0; I < 8; ++I) {
        int R = M->alloc();
        ASSERT_GE(R, 0);
        DuringMark.push_back(static_cast<size_t>(R));
      }
      Raced = true;
    }
  };
  Rt.collectOnce();
  ASSERT_TRUE(Raced);
  EXPECT_EQ(Rt.observatory()->violationCount(), 0u);

  // The rooted mid-mark allocations survived the cycle's sweep (epoch
  // validation would abort here had they been freed) — and survive a
  // second full cycle too.
  Rt.HandshakeServicer = [&] { M->safepoint(); };
  for (size_t R : DuringMark)
    EXPECT_EQ(M->loadData(R), 0u);
  Rt.collectOnce();
  for (size_t R : DuringMark)
    EXPECT_EQ(M->loadData(R), 0u);
  EXPECT_EQ(Rt.observatory()->violationCount(), 0u);

  Rt.HandshakeServicer = nullptr;
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}

TEST(Observatory, PeriodGatesWhichCyclesAreSampled) {
  RtConfig Cfg = observatoryConfig();
  Cfg.ObservatoryPeriod = 2;
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  Rt.HandshakeServicer = [&] { M->safepoint(); };

  Rt.collectOnce(); // cycle ordinal 0: sampled
  const uint64_t AfterFirst = Rt.observatory()->snapshotCount();
  EXPECT_GT(AfterFirst, 0u);
  Rt.collectOnce(); // ordinal 1: skipped
  EXPECT_EQ(Rt.observatory()->snapshotCount(), AfterFirst);
  Rt.collectOnce(); // ordinal 2: sampled again
  EXPECT_GT(Rt.observatory()->snapshotCount(), AfterFirst);

  Rt.HandshakeServicer = nullptr;
  Rt.deregisterMutator(M);
}

TEST(Observatory, CleanUnderThreadsWorkersAndFuzzer) {
  // The whole apparatus at once: real mutator threads, parallel mark
  // workers, the schedule fuzzer injecting delays, the observatory parking
  // the world at every boundary — and still zero violations on the
  // verified configuration.
  RtConfig Cfg;
  Cfg.HeapObjects = 512;
  Cfg.NumFields = 2;
  Cfg.MarkWorkers = 2;
  Cfg.Observatory = true;
  Cfg.FuzzSchedules = 1234;
  Cfg.FuzzMaxDelayUs = 2;
  GcRuntime Rt(Cfg);

  constexpr unsigned NumMuts = 2;
  std::vector<MutatorContext *> Ms;
  for (unsigned I = 0; I < NumMuts; ++I)
    Ms.push_back(Rt.registerMutator());
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumMuts; ++I)
    Threads.emplace_back([&, I] {
      MutatorContext *M = Ms[I];
      uint64_t K = 0;
      while (!Done.load(std::memory_order_relaxed)) {
        M->safepoint();
        if (M->numRoots() < 16) {
          M->alloc();
        } else if (M->numRoots() >= 2 && (K & 1)) {
          M->store(0, M->numRoots() - 1, static_cast<uint32_t>(K % 2));
          M->discard(M->numRoots() - 1);
        } else {
          M->discard(K % M->numRoots());
        }
        ++K;
      }
      while (M->numRoots())
        M->discard(0);
    });

  for (int I = 0; I < 5; ++I)
    Rt.collectOnce();
  Done.store(true);
  for (auto &T : Threads)
    T.join();
  for (auto *M : Ms)
    Rt.deregisterMutator(M);

  EXPECT_EQ(Rt.observatory()->violationCount(), 0u);
  EXPECT_GT(Rt.observatory()->snapshotCount(), 0u);
}

TEST(Observatory, StwCyclesSnapshotInsideThePark) {
  RtConfig Cfg = observatoryConfig();
  GcRuntime Rt(Cfg);
  MutatorContext *M = Rt.registerMutator();
  std::atomic<bool> Done{false};
  std::thread Service([&] {
    while (!Done.load())
      M->safepoint();
  });
  int X = M->alloc();
  (void)X;
  Rt.collectStw();
  Done.store(true);
  Service.join();

  EXPECT_EQ(Rt.observatory()->violationCount(), 0u);
  EXPECT_EQ(Rt.observatory()->snapshotCount(), 2u); // post-mark + post-sweep
  while (M->numRoots())
    M->discard(0);
  Rt.deregisterMutator(M);
}
