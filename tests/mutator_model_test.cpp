//===- tests/mutator_model_test.cpp - Figure 6 operation semantics --------===//

#include "explore/Guided.h"
#include "invariants/GcPredicates.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0)
    return true;
  if (L.find("sys-dequeue-write-buffer") != std::string::npos)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

ModelConfig cfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  return C;
}

} // namespace

TEST(MutatorModel, LoadAddsFieldValueToRoots) {
  GcModel M(cfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-load", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpSrc == R(0) && Mu.TmpFld == 0;
  }));
  ASSERT_TRUE(D.take("p1:mut:load"));
  const MutatorLocal &Mu = M.mutator(D.state(), 0);
  EXPECT_TRUE(Mu.Roots.count(R(1)));
  EXPECT_EQ(Mu.Roots.size(), 2u);
  // Scratch registers released.
  EXPECT_TRUE(Mu.TmpSrc.isNull());
}

TEST(MutatorModel, LoadOfNullFieldAddsNothing) {
  ModelConfig C = cfg();
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  GcModel M(C);
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-load"));
  ASSERT_TRUE(D.take("p1:mut:load"));
  EXPECT_EQ(M.mutator(D.state(), 0).Roots.size(), 1u);
}

TEST(MutatorModel, StoreWritesThroughTsoBuffer) {
  GcModel M(cfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0) && Mu.TmpFld == 0;
  }));
  // Idle phase: barriers read but do not mark; heap is black so the fast
  // path is taken. Walk to the store step.
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-load-flag"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-done"));
  ASSERT_TRUE(D.take("p1:mut:ins-barrier-target"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-load-flag"));
  ASSERT_TRUE(D.take("p1:mut:ins:mark-done"));
  ASSERT_TRUE(D.take("p1:mut:store"));
  // The write is pending, not committed: the heap still shows r0.f = r1,
  // and the buffered value r0 is an extended root.
  const SysLocal &Sys = M.sysState(D.state());
  EXPECT_EQ(Sys.Mem.heap().field(R(0), 0), R(1));
  EXPECT_EQ(Sys.Mem.buffer(1).size(), 1u);
  auto Ins = pendingInsertions(M, D.state(), 1);
  ASSERT_EQ(Ins.size(), 1u);
  EXPECT_EQ(Ins[0], R(0));
  // Commit makes it visible.
  ASSERT_TRUE(D.take("sys-dequeue-write-buffer"));
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().field(R(0), 0), R(0));
}

TEST(MutatorModel, DeletionBarrierGhostRootLifetime) {
  GcModel M(cfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  EXPECT_EQ(M.mutator(D.state(), 0).DeletedRef, R(1));
  // Finish the op; the ghost root is released at the store.
  auto Ops = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(Ops, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull();
  }));
  EXPECT_TRUE(M.mutator(D.state(), 0).DeletedRef.isNull());
}

TEST(MutatorModel, AllocFailsGracefullyWhenFull) {
  ModelConfig C = cfg();
  C.NumRefs = 2; // chain fills the heap completely
  GcModel M(C);
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:alloc"));
  // Roots unchanged (null response), and the mutator is not stuck: another
  // alloc attempt is still enabled.
  EXPECT_EQ(M.mutator(D.state(), 0).Roots.size(), 1u);
  EXPECT_TRUE(D.take("p1:mut:alloc"));
}

TEST(MutatorModel, AllocUsesLocalFaView) {
  GcModel M(cfg());
  GuidedDriver D(M);
  // Before any handshake the local fA is false: allocation is black
  // (fA == fM == false).
  ASSERT_TRUE(D.take("p1:mut:alloc"));
  const GcSystemState &S = D.state();
  EXPECT_TRUE(M.sysState(S).Mem.heap().isValid(R(2)));
  EXPECT_EQ(M.sysState(S).Mem.heap().markFlag(R(2)), false);
  ColorView CV = colorView(M, S);
  EXPECT_TRUE(CV.isBlack(R(2)));
}

TEST(MutatorModel, DiscardSheddingAllRoots) {
  GcModel M(cfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.take("p1:mut:discard"));
  EXPECT_TRUE(M.mutator(D.state(), 0).Roots.empty());
  // With no roots, Load/Store/Discard enumerate no choices; only alloc and
  // the handshake poll remain.
  auto Succs = M.system().successors(D.state());
  for (const auto &Succ : Succs) {
    EXPECT_EQ(Succ.Label.find("choose-load"), std::string::npos);
    EXPECT_EQ(Succ.Label.find("choose-store"), std::string::npos);
    EXPECT_EQ(Succ.Label.find("mut:discard"), std::string::npos);
  }
}

TEST(MutatorModel, StoreChoicesCoverRootsSquared) {
  ModelConfig C = cfg();
  C.InitialHeap = ModelConfig::InitHeap::SharedPair;
  GcModel M(C);
  auto Succs = M.system().successors(M.initial());
  unsigned StoreChoices = 0;
  for (const auto &Succ : Succs)
    if (Succ.Label.find("choose-store") != std::string::npos)
      ++StoreChoices;
  // dst ∈ {r0,r1} × src ∈ {r0,r1} × fld ∈ {0} = 4.
  EXPECT_EQ(StoreChoices, 4u);
}

TEST(MutatorModel, RootsNeverContainNull) {
  // Structural sweep: across a bounded exploration, no mutator root set
  // ever contains the null reference.
  GcModel M(cfg());
  StateChecker NoNullRoot =
      [&M](const GcSystemState &S) -> std::optional<Violation> {
    for (unsigned I = 0; I < M.config().NumMutators; ++I)
      if (M.mutator(S, I).Roots.count(Ref::null()))
        return Violation{"null-root", "null in a root set"};
    return std::nullopt;
  };
  ExploreOptions Opts;
  Opts.MaxStates = 150'000;
  ExploreResult Res = exploreExhaustive(M, NoNullRoot, Opts);
  EXPECT_FALSE(Res.Bug.has_value());
}
