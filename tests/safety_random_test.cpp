//===- tests/safety_random_test.cpp - Randomized safety sweeps ------------===//
///
/// Probabilistic coverage of instances too large to exhaust: long random
/// walks over bigger heaps, more mutators, deeper buffers and both initial
/// heap shapes, evaluating the full invariant suite at every step.
/// Parameterized over (configuration × seed).

#include "explore/Explorer.h"
#include "invariants/Describe.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

struct WalkCase {
  const char *Name;
  unsigned Mutators;
  unsigned Refs;
  unsigned Fields;
  unsigned BufferBound;
  ModelConfig::InitHeap Heap;
  uint64_t Seed;
};

std::vector<WalkCase> cases() {
  std::vector<WalkCase> Out;
  unsigned Id = 0;
  for (uint64_t Seed : {11u, 22u, 33u}) {
    Out.push_back({"2mut_4refs", 2, 4, 2, 2, ModelConfig::InitHeap::Chain,
                   Seed + Id++});
    Out.push_back({"3mut_5refs", 3, 5, 1, 2, ModelConfig::InitHeap::SharedPair,
                   Seed + Id++});
    Out.push_back({"2mut_deepbuf", 2, 4, 1, 4, ModelConfig::InitHeap::Chain,
                   Seed + Id++});
    Out.push_back({"2mut_empty_heap", 2, 4, 2, 2, ModelConfig::InitHeap::Empty,
                   Seed + Id++});
  }
  return Out;
}

class SafetyRandom : public ::testing::TestWithParam<WalkCase> {};

} // namespace

TEST_P(SafetyRandom, LongWalkHoldsInvariants) {
  const WalkCase &W = GetParam();
  ModelConfig Cfg;
  Cfg.NumMutators = W.Mutators;
  Cfg.NumRefs = W.Refs;
  Cfg.NumFields = W.Fields;
  Cfg.BufferBound = W.BufferBound;
  Cfg.InitialHeap = W.Heap;
  GcModel M(Cfg);
  InvariantSuite Inv(M);

  WalkOptions Opts;
  Opts.Steps = 60'000;
  Opts.Seed = W.Seed;
  WalkResult Res = exploreRandomWalk(M, Inv, Opts);
  ASSERT_FALSE(Res.Bug.has_value())
      << Res.Bug->Name << ": " << Res.Bug->Detail << "\n"
      << (Res.BadState ? describeState(M, *Res.BadState) : std::string());
  EXPECT_EQ(Res.Deadlocks, 0u) << "the composed model must never wedge";
  EXPECT_EQ(Res.StepsTaken, Opts.Steps);
}

INSTANTIATE_TEST_SUITE_P(
    Walks, SafetyRandom, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<WalkCase> &I) {
      return std::string(I.param.Name) + "_seed" +
             std::to_string(I.param.Seed);
    });
