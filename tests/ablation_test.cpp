//===- tests/ablation_test.cpp - Barrier-necessity counterexamples --------===//
///
/// The proof's contrapositive, checked mechanically: removing either write
/// barrier admits executions in which the collector frees a reachable
/// object (the headline safety property fails). With both barriers on, the
/// very same schedules are harmless.

#include "explore/Explorer.h"
#include "explore/Guided.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

/// Neutral schedule: collector, system, and mutator handshake handling may
/// run; mutator *operations* (Figure 6) only when scripted.
bool neutralLabel(const std::string &L) {
  if (L.rfind("p0:", 0) == 0 || L.rfind("p2:", 0) == 0)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

ModelConfig smallConfig() {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 2;
  Cfg.InitialHeap = ModelConfig::InitHeap::SingleRoot;
  return Cfg;
}

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

/// Drive the insertion-barrier violation scenario of §2 ("On-the-Fly"):
///   * W is allocated white (the mutator's fA view is stale: it has
///     completed H3 but not H4);
///   * B is allocated black (after H4);
///   * W is stored into B's field — with no insertion barrier W stays
///     unmarked — and dropped from the roots;
///   * root marking (H5) marks B, but B is already marked, so B is never
///     greyed and its fields are never scanned;
///   * the sweep frees W even though roots → B → W.
/// Returns the first headline violation encountered, if any; \p Survived is
/// set if a full cycle completes with W still allocated.
std::optional<Violation> driveInsertionScenario(const GcModel &M,
                                                bool &Survived) {
  InvariantSuite Inv(M);
  GuidedDriver D(M);
  Survived = false;

  auto MutDone = [&M](HsRound Round) {
    return [&M, Round](const GcSystemState &S) {
      return M.mutator(S, 0).CompletedRound == Round;
    };
  };
  auto Violated = [&Inv](const GcSystemState &S) {
    return Inv.checkSafetyHeadline(S).has_value();
  };

  // Let the cycle progress until the mutator has completed H3 (its phase
  // view is Init; its fA view is still the old sense).
  EXPECT_TRUE(D.advance(neutralLabel, MutDone(HsRound::H3PhaseInit)));

  // Allocate W = r1, white.
  EXPECT_TRUE(D.take("p1:mut:alloc"));
  EXPECT_TRUE(M.mutator(D.state(), 0).Roots.count(R(1)));
  EXPECT_NE(M.sysState(D.state()).Mem.heap().markFlag(R(1)),
            GcModel::collector(D.state()).FM)
      << "W must be allocated white (stale fA view)";

  // Complete H4; allocations are black from here on.
  EXPECT_TRUE(D.advance(neutralLabel, MutDone(HsRound::H4PhaseMark)));

  // Allocate B = r2, black.
  EXPECT_TRUE(D.take("p1:mut:alloc"));
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().markFlag(R(2)),
            GcModel::collector(D.state()).FM)
      << "B must be allocated black";

  // Store W into B's field: B.f := W (dst = r1, src = r2).
  EXPECT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(1) && Mu.TmpSrc == R(2) && Mu.TmpFld == 0;
  }));
  // Run the store operation to completion (barrier sub-steps included when
  // the barriers are configured on).
  auto StoreSteps = [](const std::string &L) {
    return neutralLabel(L) || L.find("p1:mut:del") != std::string::npos ||
           L.find("p1:mut:ins") != std::string::npos ||
           L.find("p1:mut:store") != std::string::npos;
  };
  EXPECT_TRUE(D.advance(StoreSteps, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull() && // op finished
           M.sysState(S).Mem.heap().field(R(2), 0) == R(1); // committed
  }));

  // Drop W from the roots; it now lives only in B.f.
  EXPECT_TRUE(D.take("p1:mut:discard", [](const GcSystemState &S) {
    return asMutator(S[1].Local).Roots.count(R(1)) == 0;
  }));

  // Complete root marking; from here the schedule is fully neutral.
  EXPECT_TRUE(D.advance(neutralLabel, MutDone(HsRound::H5GetRoots)));

  // Hunt for a headline violation along neutral schedules (mark loop
  // termination and sweep).
  if (D.advance(neutralLabel, Violated, 300'000))
    return Inv.checkSafetyHeadline(D.state());

  // No violation: confirm the cycle completed and W survived.
  EXPECT_TRUE(D.advance(neutralLabel, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  Survived = M.sysState(D.state()).Mem.heap().isValid(R(1));
  return std::nullopt;
}

} // namespace

TEST(Ablation, NoDeletionBarrierViolatesSafety) {
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 1;
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.DeletionBarrier = false;
  Cfg.MutatorAlloc = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 2'000'000;
  ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
  ASSERT_TRUE(Res.Bug.has_value())
      << "deletion-barrier ablation must violate safety";
  EXPECT_EQ(Res.Bug->Name, "safety-headline");
  EXPECT_FALSE(Res.Path.empty());
}

TEST(Ablation, NoInsertionBarrierViolatesSafety) {
  ModelConfig Cfg = smallConfig();
  Cfg.InsertionBarrier = false;
  GcModel M(Cfg);
  bool Survived = false;
  auto Bug = driveInsertionScenario(M, Survived);
  ASSERT_TRUE(Bug.has_value())
      << "insertion-barrier ablation must admit the §2 violation scenario";
  EXPECT_EQ(Bug->Name, "safety-headline");
}

TEST(Ablation, SameScheduleSafeWithBothBarriers) {
  GcModel M(smallConfig());
  bool Survived = false;
  auto Bug = driveInsertionScenario(M, Survived);
  EXPECT_FALSE(Bug.has_value())
      << "with both barriers the schedule must be safe: " << Bug->Detail;
  EXPECT_TRUE(Survived) << "W must survive the cycle (it is reachable)";
}

TEST(Ablation, DeletionAblationSafeUnderSCIsFalse) {
  // The deletion-barrier violation is not a TSO artifact: it exists under
  // sequential consistency too (the race is at the algorithmic level).
  ModelConfig Cfg;
  Cfg.NumMutators = 1;
  Cfg.NumRefs = 3;
  Cfg.NumFields = 1;
  Cfg.BufferBound = 0; // SC
  Cfg.InitialHeap = ModelConfig::InitHeap::Chain;
  Cfg.DeletionBarrier = false;
  Cfg.MutatorAlloc = false;
  GcModel M(Cfg);
  InvariantSuite Inv(M);
  ExploreOptions Opts;
  Opts.Dfs = true;
  Opts.MaxStates = 2'000'000;
  ExploreResult Res = exploreExhaustive(M, headlineChecker(Inv), Opts);
  EXPECT_TRUE(Res.Bug.has_value());
}
