//===- tests/mark_test.cpp - The mark procedure in the model (Figure 5) ---===//
///
/// Drives the marking protocol step by step with the guided driver and
/// inspects the intermediate states: the unsynchronized fast path, the CAS
/// window with its honorary-grey ghost, winner-only publication, and the
/// barrier gate on the (possibly stale) phase view.

#include "explore/Guided.h"
#include "invariants/GcPredicates.h"

#include <gtest/gtest.h>

using namespace tsogc;

namespace {

Ref R(unsigned I) { return Ref(static_cast<uint16_t>(I)); }

bool neutral(const std::string &L) {
  if (L.rfind("p0:", 0) == 0 || L.rfind("p2:", 0) == 0)
    return true;
  return L.find(":mut:hs-") != std::string::npos ||
         L.find(":mut:root") != std::string::npos;
}

ModelConfig chainCfg() {
  ModelConfig C;
  C.NumMutators = 1;
  C.NumRefs = 3;
  C.NumFields = 1;
  C.BufferBound = 2;
  C.InitialHeap = ModelConfig::InitHeap::Chain;
  return C;
}

/// Advance until the mutator has completed the given round.
void toRound(const GcModel &M, GuidedDriver &D, HsRound Round) {
  ASSERT_TRUE(D.advance(neutral, [&M, Round](const GcSystemState &S) {
    return M.mutator(S, 0).CompletedRound == Round;
  })) << "could not reach round " << hsRoundName(Round);
}

} // namespace

TEST(MarkModel, DeletionBarrierCasPathStepByStep) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  // Reach the Mark phase (mutator past H4: barriers armed, fM flipped, so
  // r1 — flag false — is white).
  toRound(M, D, HsRound::H4PhaseMark);

  // Store r0.f := r0 (deleting the edge to white r1).
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));

  // Deletion barrier reads the victim: r1.
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  {
    const MutatorLocal &Mu = M.mutator(D.state(), 0);
    EXPECT_EQ(Mu.DeletedRef, R(1));
    EXPECT_EQ(Mu.MS.Target, R(1));
  }

  // Fig 5 line 3: the plain flag load sees "unmarked".
  ASSERT_TRUE(D.take("p1:mut:del:mark-load-flag"));
  EXPECT_EQ(M.mutator(D.state(), 0).MS.FlagRead,
            !GcModel::collector(D.state()).FM);

  // The CAS: lock, re-read, conditional store, unlock.
  ASSERT_TRUE(D.take("p1:mut:del:mark-cas-lock"));
  EXPECT_TRUE(M.sysState(D.state()).Mem.lockHeldBy(1));
  ASSERT_TRUE(D.take("p1:mut:del:mark-cas-read"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-cas-store"));
  {
    const GcSystemState &S = D.state();
    const MutatorLocal &Mu = M.mutator(S, 0);
    // We won; the honorary-grey ghost bridges the CAS window: the store is
    // still buffered, the object is still white on the heap, yet it is
    // already grey for the invariants.
    EXPECT_TRUE(Mu.MS.Winner);
    EXPECT_EQ(Mu.MS.GhostHonoraryGrey, R(1));
    EXPECT_NE(M.sysState(S).Mem.heap().markFlag(R(1)),
              GcModel::collector(S).FM);
    ColorView CV = colorView(M, S);
    EXPECT_TRUE(CV.isGrey(R(1)));
    EXPECT_TRUE(CV.isWhite(R(1))); // the transient white∧grey overlap
  }

  // Unlock requires the flag store to commit first (the locked CMPXCHG's
  // flush); the system's dequeue step provides it.
  ASSERT_FALSE(D.take("p1:mut:del:mark-cas-unlock"))
      << "unlock must be blocked while the CAS store is buffered";
  ASSERT_TRUE(D.take("p2:sys-dequeue-write-buffer"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-cas-unlock"));
  EXPECT_EQ(M.sysState(D.state()).Mem.lockOwner(), MemoryState::NoOwner);
  EXPECT_EQ(M.sysState(D.state()).Mem.heap().markFlag(R(1)),
            GcModel::collector(D.state()).FM);

  // Winner publishes the grey; the ghost is released in the same step.
  ASSERT_TRUE(D.take("p1:mut:del:mark-publish"));
  {
    const MutatorLocal &Mu = M.mutator(D.state(), 0);
    EXPECT_TRUE(Mu.WM.count(R(1)));
    EXPECT_TRUE(Mu.MS.GhostHonoraryGrey.isNull());
  }
}

TEST(MarkModel, FastPathSkipsCasWhenAlreadyMarked) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  toRound(M, D, HsRound::H4PhaseMark);
  // First store marks r1 via the deletion barrier (full CAS path).
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  auto StoreOp = [](const std::string &L) {
    return neutral(L) || L.find("p1:mut:") != std::string::npos;
  };
  ASSERT_TRUE(D.advance(StoreOp, [&M](const GcSystemState &S) {
    return M.mutator(S, 0).TmpSrc.isNull(); // store finished
  }));
  ASSERT_TRUE(M.mutator(D.state(), 0).WM.count(R(1)));

  // Second store deleting r0.f (now r0): its target r0 was already marked
  // by the insertion barrier of the first store… instead pick dst=r0 again;
  // the deletion barrier reads r0 (marked). After the plain load the mark
  // procedure must fall through: no lock step may be enabled.
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-load-flag"));
  EXPECT_FALSE(D.take("p1:mut:del:mark-cas-lock"))
      << "marked objects must take the fast path (no CAS)";
}

TEST(MarkModel, BarrierDisabledWhilePhaseViewIdle) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  // Only H1 completed: the mutator's phase view is Idle; barriers off.
  toRound(M, D, HsRound::H1Idle);
  ASSERT_TRUE(D.take("p1:mut:choose-store", [](const GcSystemState &S) {
    const MutatorLocal &Mu = asMutator(S[1].Local);
    return Mu.TmpDst == R(0) && Mu.TmpSrc == R(0);
  }));
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  ASSERT_TRUE(D.take("p1:mut:del:mark-load-flag"));
  // Heap is still black here (flag == fM), so the load already bails; in
  // either case no CAS may start while the view is Idle.
  EXPECT_FALSE(D.take("p1:mut:del:mark-cas-lock"));
}

TEST(MarkModel, MarkOfNullFieldIsSkipped) {
  // Deleting a null field runs no mark steps at all.
  ModelConfig C = chainCfg();
  C.InitialHeap = ModelConfig::InitHeap::SingleRoot; // r0 with null field
  GcModel M(C);
  GuidedDriver D(M);
  toRound(M, D, HsRound::H4PhaseMark);
  ASSERT_TRUE(D.take("p1:mut:choose-store"));
  ASSERT_TRUE(D.take("p1:mut:del-barrier-read"));
  EXPECT_TRUE(M.mutator(D.state(), 0).DeletedRef.isNull());
  EXPECT_FALSE(D.take("p1:mut:del:mark-load-flag"))
      << "mark(NULL) must be a no-op";
  // The next mutator step is directly the insertion barrier.
  EXPECT_TRUE(D.take("p1:mut:ins-barrier-target"));
}

TEST(MarkModel, CollectorMarkLoopScansFields) {
  // Drive a full cycle and verify the collector traced r0 -> r1: both
  // survive the sweep.
  GcModel M(chainCfg());
  GuidedDriver D(M);
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).CycleCount >= 1;
  }));
  const Heap &H = M.sysState(D.state()).Mem.heap();
  EXPECT_TRUE(H.isValid(R(0)));
  EXPECT_TRUE(H.isValid(R(1)));
  EXPECT_EQ(H.numAllocated(), 2u);
}

TEST(MarkModel, RootMarkingPopulatesWorklist) {
  GcModel M(chainCfg());
  GuidedDriver D(M);
  // Let everything run until the collector has taken the root work: its W
  // must contain r0 (the only root).
  ASSERT_TRUE(D.advance(neutral, [](const GcSystemState &S) {
    return GcModel::collector(S).W.count(R(0)) > 0;
  }));
  EXPECT_EQ(M.sysState(D.state()).CurRound, HsRound::H5GetRoots);
}
