# Empty compiler generated dependencies file for counterexample_hunt.
# This may be replaced when dependencies are built.
