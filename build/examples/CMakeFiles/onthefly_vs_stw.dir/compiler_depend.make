# Empty compiler generated dependencies file for onthefly_vs_stw.
# This may be replaced when dependencies are built.
