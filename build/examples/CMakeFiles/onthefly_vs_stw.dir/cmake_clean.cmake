file(REMOVE_RECURSE
  "CMakeFiles/onthefly_vs_stw.dir/onthefly_vs_stw.cpp.o"
  "CMakeFiles/onthefly_vs_stw.dir/onthefly_vs_stw.cpp.o.d"
  "onthefly_vs_stw"
  "onthefly_vs_stw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onthefly_vs_stw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
