file(REMOVE_RECURSE
  "CMakeFiles/realtime_latency.dir/realtime_latency.cpp.o"
  "CMakeFiles/realtime_latency.dir/realtime_latency.cpp.o.d"
  "realtime_latency"
  "realtime_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
