file(REMOVE_RECURSE
  "CMakeFiles/model_explore.dir/model_explore.cpp.o"
  "CMakeFiles/model_explore.dir/model_explore.cpp.o.d"
  "model_explore"
  "model_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
