# Empty compiler generated dependencies file for model_explore.
# This may be replaced when dependencies are built.
