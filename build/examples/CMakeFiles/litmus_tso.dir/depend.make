# Empty dependencies file for litmus_tso.
# This may be replaced when dependencies are built.
