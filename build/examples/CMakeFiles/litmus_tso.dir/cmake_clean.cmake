file(REMOVE_RECURSE
  "CMakeFiles/litmus_tso.dir/litmus_tso.cpp.o"
  "CMakeFiles/litmus_tso.dir/litmus_tso.cpp.o.d"
  "litmus_tso"
  "litmus_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
