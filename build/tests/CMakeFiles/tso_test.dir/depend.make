# Empty dependencies file for tso_test.
# This may be replaced when dependencies are built.
