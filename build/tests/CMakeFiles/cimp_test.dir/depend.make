# Empty dependencies file for cimp_test.
# This may be replaced when dependencies are built.
