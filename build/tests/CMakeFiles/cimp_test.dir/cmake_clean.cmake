file(REMOVE_RECURSE
  "CMakeFiles/cimp_test.dir/cimp_test.cpp.o"
  "CMakeFiles/cimp_test.dir/cimp_test.cpp.o.d"
  "cimp_test"
  "cimp_test.pdb"
  "cimp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
