# Empty dependencies file for stw_test.
# This may be replaced when dependencies are built.
