file(REMOVE_RECURSE
  "CMakeFiles/stw_test.dir/stw_test.cpp.o"
  "CMakeFiles/stw_test.dir/stw_test.cpp.o.d"
  "stw_test"
  "stw_test.pdb"
  "stw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
