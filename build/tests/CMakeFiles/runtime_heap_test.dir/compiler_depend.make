# Empty compiler generated dependencies file for runtime_heap_test.
# This may be replaced when dependencies are built.
