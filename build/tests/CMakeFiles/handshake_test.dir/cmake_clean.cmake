file(REMOVE_RECURSE
  "CMakeFiles/handshake_test.dir/handshake_test.cpp.o"
  "CMakeFiles/handshake_test.dir/handshake_test.cpp.o.d"
  "handshake_test"
  "handshake_test.pdb"
  "handshake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
