file(REMOVE_RECURSE
  "CMakeFiles/safety_exhaustive_test.dir/safety_exhaustive_test.cpp.o"
  "CMakeFiles/safety_exhaustive_test.dir/safety_exhaustive_test.cpp.o.d"
  "safety_exhaustive_test"
  "safety_exhaustive_test.pdb"
  "safety_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
