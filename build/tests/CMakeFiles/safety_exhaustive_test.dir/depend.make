# Empty dependencies file for safety_exhaustive_test.
# This may be replaced when dependencies are built.
