file(REMOVE_RECURSE
  "CMakeFiles/mark_test.dir/mark_test.cpp.o"
  "CMakeFiles/mark_test.dir/mark_test.cpp.o.d"
  "mark_test"
  "mark_test.pdb"
  "mark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
