# Empty dependencies file for mark_test.
# This may be replaced when dependencies are built.
