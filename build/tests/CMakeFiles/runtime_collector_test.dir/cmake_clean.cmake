file(REMOVE_RECURSE
  "CMakeFiles/runtime_collector_test.dir/runtime_collector_test.cpp.o"
  "CMakeFiles/runtime_collector_test.dir/runtime_collector_test.cpp.o.d"
  "runtime_collector_test"
  "runtime_collector_test.pdb"
  "runtime_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
