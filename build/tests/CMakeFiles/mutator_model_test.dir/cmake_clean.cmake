file(REMOVE_RECURSE
  "CMakeFiles/mutator_model_test.dir/mutator_model_test.cpp.o"
  "CMakeFiles/mutator_model_test.dir/mutator_model_test.cpp.o.d"
  "mutator_model_test"
  "mutator_model_test.pdb"
  "mutator_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutator_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
