# Empty compiler generated dependencies file for mutator_model_test.
# This may be replaced when dependencies are built.
