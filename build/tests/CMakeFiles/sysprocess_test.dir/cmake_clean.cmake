file(REMOVE_RECURSE
  "CMakeFiles/sysprocess_test.dir/sysprocess_test.cpp.o"
  "CMakeFiles/sysprocess_test.dir/sysprocess_test.cpp.o.d"
  "sysprocess_test"
  "sysprocess_test.pdb"
  "sysprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
