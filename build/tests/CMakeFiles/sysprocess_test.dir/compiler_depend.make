# Empty compiler generated dependencies file for sysprocess_test.
# This may be replaced when dependencies are built.
