# Empty dependencies file for refined_handshake_test.
# This may be replaced when dependencies are built.
