file(REMOVE_RECURSE
  "CMakeFiles/refined_handshake_test.dir/refined_handshake_test.cpp.o"
  "CMakeFiles/refined_handshake_test.dir/refined_handshake_test.cpp.o.d"
  "refined_handshake_test"
  "refined_handshake_test.pdb"
  "refined_handshake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refined_handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
