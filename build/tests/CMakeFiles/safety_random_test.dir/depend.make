# Empty dependencies file for safety_random_test.
# This may be replaced when dependencies are built.
