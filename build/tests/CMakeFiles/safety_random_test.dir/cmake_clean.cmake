file(REMOVE_RECURSE
  "CMakeFiles/safety_random_test.dir/safety_random_test.cpp.o"
  "CMakeFiles/safety_random_test.dir/safety_random_test.cpp.o.d"
  "safety_random_test"
  "safety_random_test.pdb"
  "safety_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
