# Empty dependencies file for collector_model_test.
# This may be replaced when dependencies are built.
