file(REMOVE_RECURSE
  "CMakeFiles/collector_model_test.dir/collector_model_test.cpp.o"
  "CMakeFiles/collector_model_test.dir/collector_model_test.cpp.o.d"
  "collector_model_test"
  "collector_model_test.pdb"
  "collector_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
