file(REMOVE_RECURSE
  "CMakeFiles/observations_test.dir/observations_test.cpp.o"
  "CMakeFiles/observations_test.dir/observations_test.cpp.o.d"
  "observations_test"
  "observations_test.pdb"
  "observations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
