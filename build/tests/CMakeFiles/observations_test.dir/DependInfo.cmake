
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/observations_test.cpp" "tests/CMakeFiles/observations_test.dir/observations_test.cpp.o" "gcc" "tests/CMakeFiles/observations_test.dir/observations_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explore/CMakeFiles/tsogc_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/invariants/CMakeFiles/tsogc_invariants.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tso/CMakeFiles/tsogc_tso.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/tsogc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tsogc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
