# Empty dependencies file for runtime_pool_test.
# This may be replaced when dependencies are built.
