file(REMOVE_RECURSE
  "CMakeFiles/runtime_pool_test.dir/runtime_pool_test.cpp.o"
  "CMakeFiles/runtime_pool_test.dir/runtime_pool_test.cpp.o.d"
  "runtime_pool_test"
  "runtime_pool_test.pdb"
  "runtime_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
